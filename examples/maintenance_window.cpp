// A "rolling maintenance window" on the message-level simulator: nodes of
// a Q7 machine die one by one while application unicasts keep flowing.
// After each failure, the state-change-driven GS discipline (Section 2.2)
// re-stabilizes the safety levels with a small message cascade — this
// example prints how cheap those cascades are compared to periodic
// re-floods, and how unicast quality degrades as damage accumulates.
//
//   $ ./maintenance_window [dimension=7] [failures=12] [seed=7]
#include <cstdio>
#include <cstdlib>

#include "common/format.hpp"
#include "sim/protocol_gs.hpp"
#include "sim/protocol_unicast.hpp"
#include "workload/pair_sampler.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 7;
  const unsigned failures =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 12;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 7;

  const topo::Hypercube cube(n);
  sim::Network net(cube, fault::FaultSet(cube.num_nodes()));
  Xoshiro256ss rng(seed);

  // The periodic discipline would cost this much per wave:
  const std::uint64_t wave_cost = cube.num_nodes() * cube.dimension();
  std::printf("Q%u: one periodic announcement wave = %llu messages\n\n", n,
              static_cast<unsigned long long>(wave_cost));
  std::printf("%8s %10s %12s %12s %10s %10s\n", "failure", "cascade",
              "quiesce_at", "delivered", "optimal", "refused");

  for (unsigned step = 1; step <= failures; ++step) {
    // Pick a healthy victim and let the state-change cascade run.
    NodeId victim;
    do {
      victim = static_cast<NodeId>(rng.below(cube.num_nodes()));
    } while (net.faults().is_faulty(victim));
    const auto cascade = sim::stabilize_after_failures(net, {victim});

    // Application traffic: 200 random unicasts on the stabilized machine.
    unsigned delivered = 0, optimal = 0, refused = 0, sent = 0;
    for (int t = 0; t < 200; ++t) {
      const auto pair = workload::sample_uniform_pair(net.faults(), rng);
      if (!pair) break;
      ++sent;
      const auto r = sim::route_unicast_sim(net, pair->s, pair->d);
      switch (r.status) {
        case sim::SimRouteStatus::kDelivered:
          ++delivered;
          optimal += r.path.size() - 1 == cube.distance(pair->s, pair->d)
                         ? 1u
                         : 0u;
          break;
        case sim::SimRouteStatus::kRefused:
          ++refused;
          break;
        default:
          break;
      }
    }
    char ratio[16];
    std::snprintf(ratio, sizeof ratio, "%u/%u", delivered, sent);
    std::printf("%8s %10llu %12llu %12s %10u %10u\n",
                to_bits(victim, n).c_str(),
                static_cast<unsigned long long>(cascade.messages),
                static_cast<unsigned long long>(cascade.quiesced_at),
                ratio, optimal, refused);
  }

  std::printf("\ntotal level-update messages across the whole window: %llu "
              "(vs %llu for per-failure periodic floods)\n",
              static_cast<unsigned long long>(
                  net.stats().level_updates_sent),
              static_cast<unsigned long long>(wave_cost * failures));
  return 0;
}
