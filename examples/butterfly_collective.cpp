// A real parallel-algorithm use case: an FFT-style butterfly exchange on
// a faulty hypercube. The fault-free algorithm runs n rounds; in round k
// every node exchanges a value with its dimension-k neighbor — on a
// faulty machine those partners may be dead or only reachable indirectly,
// so each exchange becomes a safety-level unicast (1 hop when the partner
// link works, a rerouted path otherwise is impossible for H = 1 pairs
// whose partner is faulty: the algorithm must degrade).
//
// This example runs the butterfly as an all-reduce (sum) over the healthy
// nodes: dead partners contribute the identity, and any value a healthy
// node cannot obtain directly is fetched with a unicast from the
// partner's component if possible. It reports, per round, how many
// exchanges were direct, rerouted, or lost — and whether the surviving
// nodes agree on the final reduction (they do whenever the healthy
// subgraph is connected).
//
//   $ ./butterfly_collective [dimension=7] [faults=9] [seed=5]
#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include "analysis/components.hpp"
#include "common/format.hpp"
#include "core/global_status.hpp"
#include "core/unicast.hpp"
#include "fault/injection.hpp"
#include "topology/topology_view.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 7;
  const auto fc =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 9;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 5;

  const topo::Hypercube cube(n);
  const topo::HypercubeView view(cube);
  Xoshiro256ss rng(seed);
  const fault::FaultSet faults = fault::inject_uniform(cube, fc, rng);
  const auto levels = core::compute_safety_levels(cube, faults);
  const auto comps = analysis::connected_components(view, faults);

  // Every healthy node contributes value = its own id + 1; the all-reduce
  // target is the sum over its connected component.
  std::vector<std::uint64_t> value(
      static_cast<std::size_t>(cube.num_nodes()), 0);
  // Each node also tracks WHICH contributions its partial sum contains,
  // so rerouted fetches never double-count.
  std::vector<std::set<NodeId>> have(
      static_cast<std::size_t>(cube.num_nodes()));
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_healthy(a)) {
      value[a] = a + 1;
      have[a] = {a};
    }
  }

  std::printf("Q%u, %llu faults — butterfly all-reduce over %zu "
              "component(s)\n\n",
              n, static_cast<unsigned long long>(fc), comps.count());
  std::printf("%6s %10s %10s %8s\n", "round", "direct", "rerouted", "lost");

  for (Dim k = 0; k < n; ++k) {
    unsigned direct = 0, rerouted = 0, lost = 0;
    // Snapshot: classic butterfly semantics exchange the contribution
    // sets held at the START of the round.
    const auto have_snapshot = have;
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (faults.is_faulty(a)) continue;
      const NodeId partner = cube.neighbor(a, k);
      if (faults.is_healthy(partner)) {
        ++direct;  // one-hop exchange over the healthy link
        for (const NodeId c : have_snapshot[partner]) {
          if (have[a].insert(c).second) value[a] += c + 1;
        }
        continue;
      }
      // The partner is dead: the opposite half's contributions must come
      // from its survivors directly. Fetch (via safety-level unicasts)
      // from every survivor over there whose contribution set still adds
      // something — more traffic than the single lost exchange, which is
      // exactly the degradation worth measuring.
      bool fetched = false;
      for (NodeId b = 0; b < cube.num_nodes(); ++b) {
        if (faults.is_faulty(b) || !bits::test(b ^ a, k)) continue;
        bool adds = false;
        for (const NodeId c : have_snapshot[b]) {
          if (!have[a].contains(c)) {
            adds = true;
            break;
          }
        }
        if (!adds) continue;
        const auto r = core::route_unicast(cube, faults, levels, b, a);
        if (!r.delivered()) continue;
        for (const NodeId c : have_snapshot[b]) {
          if (have[a].insert(c).second) value[a] += c + 1;
        }
        fetched = true;
      }
      if (fetched) {
        ++rerouted;
      } else {
        ++lost;  // nothing new reachable in the opposite half
      }
    }
    std::printf("%6u %10u %10u %8u\n", k, direct, rerouted, lost);
  }

  // Verification: inside each component every survivor must hold the
  // component-wide sum.
  std::vector<std::uint64_t> expected(comps.count(), 0);
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_healthy(a)) expected[comps.component[a]] += a + 1;
  }
  unsigned agree = 0, total = 0;
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_faulty(a)) continue;
    ++total;
    agree += value[a] == expected[comps.component[a]] ? 1u : 0u;
  }
  std::printf("\nsurvivors holding their component's full sum: %u/%u%s\n",
              agree, total,
              agree == total
                  ? "  (all-reduce complete)"
                  : "  (fault pattern broke subcube locality: partial "
                    "sums remain)");
  return 0;
}
