// Section 4.2 live: safety levels and routing in a generalized hypercube.
// Replays the paper's 2x3x2 Fig. 5 walk-through, then scales the same
// workflow up to a larger mixed-radix machine with random faults.
//
//   $ ./generalized_hypercube
#include <cstdio>

#include "common/format.hpp"
#include "core/gh_safety.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"

namespace {

void print_gh_state(const slcube::topo::GeneralizedHypercube& gh,
                    const slcube::fault::FaultSet& faults,
                    const slcube::core::SafetyLevels& levels) {
  for (slcube::NodeId a = 0; a < gh.num_nodes(); ++a) {
    std::printf("  %s -> %d%s\n",
                slcube::to_digits(gh.coordinates(a)).c_str(),
                int{levels[a]}, faults.is_faulty(a) ? "  (faulty)" : "");
  }
}

}  // namespace

int main() {
  using namespace slcube;

  // --- Part 1: the paper's Fig. 5 (2 x 3 x 2 GH, 4 faults). ---
  const auto sc = fault::scenario::fig5();
  const auto gs = core::run_gs_gh(sc.gh, sc.faults);
  std::printf("Fig. 5: 2x3x2 generalized hypercube, faults "
              "{011, 100, 111, 120}\n");
  std::printf("levels after %u round(s):\n", gs.rounds_to_stabilize);
  print_gh_state(sc.gh, sc.faults, gs.levels);

  const NodeId s = sc.gh.encode({0, 1, 0});  // 010
  const NodeId d = sc.gh.encode({1, 0, 1});  // 101
  const auto r = core::route_unicast_gh(sc.gh, sc.faults, gs.levels, s, d);
  std::printf("\nroute 010 -> 101: %s, path:", core::to_string(r.status));
  for (const NodeId hop : r.path) {
    std::printf(" %s", to_digits(sc.gh.coordinates(hop)).c_str());
  }
  std::printf("  (%u hops, coordinate distance %u)\n\n", r.hops(),
              sc.gh.distance(s, d));

  // --- Part 2: a bigger mixed-radix machine. ---
  const topo::GeneralizedHypercube big({4, 3, 4, 2});  // 96 nodes
  Xoshiro256ss rng(99);
  const auto faults = fault::inject_uniform_gh(big, 8, rng);
  const auto big_gs = core::run_gs_gh(big, faults);
  std::printf("GH(2x4x3x4): 96 nodes, 8 random faults, levels stable "
              "after %u round(s)\n",
              big_gs.rounds_to_stabilize);

  unsigned delivered = 0, optimal = 0, refused = 0;
  const unsigned trials = 3000;
  for (unsigned t = 0; t < trials; ++t) {
    const auto a = static_cast<NodeId>(rng.below(big.num_nodes()));
    const auto b = static_cast<NodeId>(rng.below(big.num_nodes()));
    if (a == b || faults.is_faulty(a) || faults.is_faulty(b)) continue;
    const auto rr = core::route_unicast_gh(big, faults, big_gs.levels, a, b);
    if (rr.delivered()) {
      ++delivered;
      optimal += rr.hops() == big.distance(a, b) ? 1u : 0u;
    } else {
      ++refused;
    }
  }
  std::printf("random unicasts: %u delivered (%u optimal), %u refused\n",
              delivered, optimal, refused);
  return 0;
}
