// Head-to-head on one random faulty cube: the safety-level router against
// all six baselines, on the same fault set and the same unicast pairs.
// Prints per-router delivery/optimality/traffic — the single-machine view
// of what bench_router_comparison sweeps systematically.
//
//   $ ./routing_comparison [dimension=7] [faults=10] [pairs=2000] [seed=1]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "analysis/bfs.hpp"
#include "baselines/chiu_wu.hpp"
#include "baselines/dfs_backtrack.hpp"
#include "baselines/ecube.hpp"
#include "baselines/greedy_local.hpp"
#include "baselines/lee_hayes.hpp"
#include "baselines/safety_level_router.hpp"
#include "baselines/sidetrack.hpp"
#include "common/table.hpp"
#include "fault/injection.hpp"
#include "topology/topology_view.hpp"
#include "workload/metrics.hpp"
#include "workload/pair_sampler.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 7;
  const auto faults_count =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 10;
  const int pairs = argc > 3 ? std::atoi(argv[3]) : 2000;
  const std::uint64_t seed =
      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;

  const topo::Hypercube cube(n);
  const topo::HypercubeView view(cube);
  Xoshiro256ss rng(seed);
  const fault::FaultSet faults =
      fault::inject_uniform(cube, faults_count, rng);

  std::vector<std::unique_ptr<routing::Router>> routers;
  routers.push_back(std::make_unique<baselines::SafetyLevelRouter>());
  routers.push_back(std::make_unique<baselines::LeeHayesRouter>());
  routers.push_back(std::make_unique<baselines::ChiuWuRouter>());
  routers.push_back(std::make_unique<baselines::DfsBacktrackRouter>());
  routers.push_back(std::make_unique<baselines::SidetrackRouter>(seed + 1));
  routers.push_back(std::make_unique<baselines::GreedyLocalRouter>());
  routers.push_back(std::make_unique<baselines::EcubeRouter>());

  std::vector<workload::RoutingMetrics> metrics(routers.size());
  for (auto& r : routers) r->prepare(cube, faults);

  for (int p = 0; p < pairs; ++p) {
    const auto pair = workload::sample_uniform_pair(faults, rng);
    if (!pair) break;
    const auto dist = analysis::bfs_distances(view, faults, pair->s);
    const unsigned h = cube.distance(pair->s, pair->d);
    for (std::size_t i = 0; i < routers.size(); ++i) {
      metrics[i].record(routers[i]->route(pair->s, pair->d), h,
                        dist[pair->d]);
    }
  }

  // Built with += rather than chained operator+: GCC 12 emits a spurious
  // -Wrestrict for the temporary concatenation chain (PR105651).
  std::string title = "Q";
  title += std::to_string(n);
  title += ", ";
  title += std::to_string(faults_count);
  title += " uniform faults, ";
  title += std::to_string(pairs);
  title += " unicasts";
  Table table(std::move(title),
              {"router", "delivered%", "optimal%", "<=H+2%", "avg hops",
               "max hops", "refused%", "prep rounds"});
  for (std::size_t c = 1; c <= 6; ++c) table.set_precision(c, 2);
  for (std::size_t i = 0; i < routers.size(); ++i) {
    const auto& m = metrics[i];
    table.row() << std::string(routers[i]->name())
                << m.delivered.percent() << m.optimal.percent()
                << m.bound_h2.percent() << m.traffic.mean()
                << m.traffic.max() << m.refused.percent()
                << std::int64_t{routers[i]->prepare_rounds()};
  }
  table.print(std::cout);
  return 0;
}
