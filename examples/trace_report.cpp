// trace_report — audit a saved JSONL trace and emit the AuditReport,
// as human text tables by default or as one machine-readable JSON object
// with --json (schema documented in EXPERIMENTS.md, AUDIT section).
//
//   $ ./trace_report sweep.jsonl                # text tables
//   $ ./trace_report sweep.jsonl --json         # one-line JSON report
//   $ ./trace_report sweep.jsonl --dim 6        # + cube-width/GS-bound checks
//
// Exit status: 0 clean, 1 the trace violated an invariant (or could not
// be read), 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/audit.hpp"

int main(int argc, char** argv) {
  using namespace slcube;

  std::string path;
  bool json = false;
  obs::AuditConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--dim") == 0 && i + 1 < argc) {
      config.dimension = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--no-level-check") == 0) {
      config.check_hop_levels = false;
    } else if (std::strcmp(argv[i], "--allow-stuck") == 0) {
      config.stuck_is_violation = false;
    } else if (argv[i][0] == '-' || !path.empty()) {
      std::fprintf(stderr,
                   "usage: %s <trace.jsonl> [--json] [--dim N] "
                   "[--no-level-check] [--allow-stuck]\n",
                   argv[0]);
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <trace.jsonl> [--json] [--dim N] "
                 "[--no-level-check] [--allow-stuck]\n",
                 argv[0]);
    return 2;
  }
  if (!std::ifstream(path).good()) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", path.c_str());
    return 1;
  }

  std::size_t malformed = 0, unknown = 0;
  const obs::AuditReport report =
      obs::audit_jsonl_file(path, config, &malformed, &unknown);

  if (json) {
    report.write_json(std::cout);
    std::cout << '\n';
  } else {
    std::printf("trace_report: %s — %llu event(s)",
                path.c_str(), static_cast<unsigned long long>(report.events));
    if (malformed > 0) std::printf(", %zu malformed line(s)", malformed);
    if (unknown > 0) std::printf(", %zu unknown event kind(s)", unknown);
    std::printf("\n\n");
    report.render_text(std::cout);
  }
  return report.clean() ? 0 : 1;
}
