// inspect — a command-line workbench for one faulty hypercube: pass a
// dimension, a comma-separated fault list (bit-string node labels), and
// optionally a source/destination pair. Prints the safety levels, safety
// vectors, safe-node classifications, component structure, and — when a
// pair is given — the full source decision and the routed path.
//
//   $ ./inspect 4 0011,0100,0110,1001            # the Fig. 1 machine
//   $ ./inspect 4 0011,0100,0110,1001 1110 0001  # + route a unicast
//   $ ./inspect 4 ... 1110 0001 --trace t.jsonl  # + write & replay trace
//   $ ./inspect --replay t.jsonl                 # narrate a saved trace
//   $ ./inspect --audit t.jsonl                  # invariant-check a trace
//   $ ./inspect --dash telemetry.jsonl           # render a telemetry dash
//   $ ./inspect --timeline t.jsonl               # -> t.trace.json (Perfetto)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/components.hpp"
#include "common/format.hpp"
#include "obs/audit.hpp"
#include "obs/dashboard.hpp"
#include "core/global_status.hpp"
#include "core/safe_node.hpp"
#include "core/safety_vector.hpp"
#include "core/unicast.hpp"
#include "obs/jsonl.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "topology/topology_view.hpp"

namespace {

using namespace slcube;

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Node label for the narrative: bit string when the dimension is known
/// (the --trace path), decimal otherwise (standalone --replay).
std::string node_label(std::int64_t a, unsigned n) {
  if (n > 0) return to_bits(static_cast<NodeId>(a), n);
  return std::to_string(a);
}

/// Render a JSONL trace as a hop-by-hop narrative.
int replay_trace(const std::string& path, unsigned n) {
  if (!std::ifstream(path).good()) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.c_str());
    return 1;
  }
  std::size_t malformed = 0;
  const auto events = obs::read_jsonl_file(path, &malformed);
  std::printf("replay: %s — %zu event(s)", path.c_str(), events.size());
  if (malformed > 0) std::printf(", %zu malformed line(s)", malformed);
  std::printf("\n");
  if (events.empty()) return malformed > 0 ? 1 : 0;

  for (const auto& ev : events) {
    const auto kind = ev.kind();
    if (kind == "source_decision") {
      std::printf("source %s -> %s: H=%lld C1=%d C2=%d C3=%d",
                  node_label(ev.integer("source"), n).c_str(),
                  node_label(ev.integer("dest"), n).c_str(),
                  static_cast<long long>(ev.integer("h")),
                  ev.boolean("c1"), ev.boolean("c2"), ev.boolean("c3"));
      const auto dim = ev.integer("chosen_dim", -1);
      if (dim >= 0) {
        std::printf(" | launch on dim %lld (%s",
                    static_cast<long long>(dim),
                    ev.boolean("spare") ? "spare detour" : "preferred");
        if (ev.integer("ties") > 1) {
          std::printf(", %lld-way tie",
                      static_cast<long long>(ev.integer("ties")));
        }
        std::printf(")");
      } else {
        std::printf(" | no hop taken");
      }
      std::printf("\n");
    } else if (kind == "hop") {
      std::printf("  %s -(dim %lld, level %lld)-> %s  nav %llu -> %llu%s\n",
                  node_label(ev.integer("from"), n).c_str(),
                  static_cast<long long>(ev.integer("dim")),
                  static_cast<long long>(ev.integer("level")),
                  node_label(ev.integer("to"), n).c_str(),
                  static_cast<unsigned long long>(ev.integer("nav_before")),
                  static_cast<unsigned long long>(ev.integer("nav_after")),
                  ev.boolean("preferred", true) ? "" : "  [spare detour]");
    } else if (kind == "route_done") {
      std::printf("  => %s after %lld hop(s)\n",
                  std::string(ev.str("status", "?")).c_str(),
                  static_cast<long long>(ev.integer("hops")));
    } else if (kind == "gs_round") {
      std::printf("%s round %lld: %lld level change(s), %lld message(s)\n",
                  ev.boolean("egs") ? "egs" : "gs",
                  static_cast<long long>(ev.integer("round")),
                  static_cast<long long>(ev.integer("changed")),
                  static_cast<long long>(ev.integer("messages")));
    } else if (kind == "send") {
      std::printf("t=%lld send %s -> %s (%s)\n",
                  static_cast<long long>(ev.integer("time")),
                  node_label(ev.integer("from"), n).c_str(),
                  node_label(ev.integer("to"), n).c_str(),
                  std::string(ev.str("kind", "?")).c_str());
    } else if (kind == "drop") {
      std::printf("t=%lld DROP %s -> %s (%s: %s)\n",
                  static_cast<long long>(ev.integer("time")),
                  node_label(ev.integer("from"), n).c_str(),
                  node_label(ev.integer("to"), n).c_str(),
                  std::string(ev.str("kind", "?")).c_str(),
                  std::string(ev.str("reason", "?")).c_str());
    } else if (kind == "node_fail" || kind == "node_recover") {
      std::printf("t=%lld node %s %s\n",
                  static_cast<long long>(ev.integer("time")),
                  node_label(ev.integer("node"), n).c_str(),
                  kind == "node_fail" ? "failed" : "recovered");
    } else if (kind == "span") {
      std::printf("span %s: %.0f us (%lld item(s))\n",
                  std::string(ev.str("name", "?")).c_str(), ev.num("micros"),
                  static_cast<long long>(ev.integer("items")));
    } else if (kind == "sweep_point") {
      std::printf("sweep %s: faults=%lld wall=%.1f ms util=%.2f "
                  "trial p50/p90/p99=%.0f/%.0f/%.0f us\n",
                  std::string(ev.str("sweep", "?")).c_str(),
                  static_cast<long long>(ev.integer("fault_count")),
                  ev.num("wall_ms"), ev.num("utilization"),
                  ev.num("trial_p50_us"), ev.num("trial_p90_us"),
                  ev.num("trial_p99_us"));
    } else {
      std::printf("(%s event)\n", std::string(kind).c_str());
    }
  }
  return 0;
}

/// Render a telemetry flight record (bench --telemetry output) as a
/// terminal dashboard: stage breakdown, throughput sparkline, interval
/// percentiles, per-dimension hop heatmap.
int dash_telemetry(const std::string& path) {
  if (!std::ifstream(path).good()) {
    std::fprintf(stderr, "dash: cannot open %s\n", path.c_str());
    return 1;
  }
  std::size_t malformed = 0;
  const auto events = obs::read_jsonl_file(path, &malformed);
  if (malformed > 0) {
    std::fprintf(stderr, "dash: %zu malformed line(s) in %s\n", malformed,
                 path.c_str());
  }
  const std::size_t samples = obs::render_dashboard(std::cout, events);
  if (samples == 0 && events.empty()) {
    std::fprintf(stderr, "dash: %s holds no telemetry events\n", path.c_str());
    return 1;
  }
  return 0;
}

/// Export a saved serving trace as a Chrome-trace / Perfetto timeline
/// next to the input (foo.jsonl -> foo.trace.json).
int timeline_trace(const std::string& path) {
  if (!std::ifstream(path).good()) {
    std::fprintf(stderr, "timeline: cannot open %s\n", path.c_str());
    return 1;
  }
  std::size_t malformed = 0;
  const std::vector<obs::ParsedEvent> events =
      obs::read_jsonl_file(path, &malformed);
  std::string out_path = path;
  const std::size_t dot = out_path.rfind(".jsonl");
  if (dot != std::string::npos && dot == out_path.size() - 6) {
    out_path.resize(dot);
  }
  out_path += ".trace.json";
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "timeline: cannot write %s\n", out_path.c_str());
    return 1;
  }
  const obs::TimelineStats stats = obs::write_chrome_trace(out, events);
  std::printf(
      "timeline: %s -> %s — %llu epoch slice(s), %llu promoted route(s), "
      "%llu breadcrumb tick(s)\n",
      path.c_str(), out_path.c_str(),
      static_cast<unsigned long long>(stats.epoch_slices),
      static_cast<unsigned long long>(stats.route_slices),
      static_cast<unsigned long long>(stats.breadcrumb_instants));
  if (malformed > 0) std::printf("timeline: %zu malformed line(s)\n", malformed);
  if (stats.epoch_slices + stats.route_slices + stats.breadcrumb_instants ==
      0) {
    std::fprintf(stderr, "timeline: nothing to plot in %s\n", path.c_str());
    return 1;
  }
  return 0;
}

/// Stream a saved trace through the audit engine and report violations.
int audit_trace(const std::string& path) {
  if (!std::ifstream(path).good()) {
    std::fprintf(stderr, "audit: cannot open %s\n", path.c_str());
    return 1;
  }
  std::size_t malformed = 0, unknown = 0;
  const auto report = obs::audit_jsonl_file(path, {}, &malformed, &unknown);
  std::printf("audit: %s — %llu event(s), %llu route(s)", path.c_str(),
              static_cast<unsigned long long>(report.events),
              static_cast<unsigned long long>(report.routes));
  if (malformed > 0) std::printf(", %zu malformed line(s)", malformed);
  if (unknown > 0) std::printf(", %zu unknown event kind(s)", unknown);
  std::printf("\n");
  if (report.clean()) {
    std::printf("audit: clean — every checked invariant held\n");
    return 0;
  }
  std::printf("audit: %llu VIOLATION(S)\n",
              static_cast<unsigned long long>(report.violations_total));
  for (const auto& v : report.details) {
    std::printf("  [%s] %s\n", obs::to_string(v.kind), v.detail.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slcube;

  // Pull the flag arguments out; what remains is positional.
  std::string trace_file, replay_file, audit_file, dash_file, timeline_file;
  std::vector<char*> pos;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace" && i + 1 < argc) {
      trace_file = argv[++i];
    } else if (std::string(argv[i]) == "--replay" && i + 1 < argc) {
      replay_file = argv[++i];
    } else if (std::string(argv[i]) == "--audit" && i + 1 < argc) {
      audit_file = argv[++i];
    } else if (std::string(argv[i]) == "--dash" && i + 1 < argc) {
      dash_file = argv[++i];
    } else if (std::string(argv[i]) == "--timeline" && i + 1 < argc) {
      timeline_file = argv[++i];
    } else {
      pos.push_back(argv[i]);
    }
  }
  if (!timeline_file.empty() && pos.empty()) {
    return timeline_trace(timeline_file);
  }
  if (!dash_file.empty() && pos.empty()) {
    return dash_telemetry(dash_file);
  }
  if (!audit_file.empty() && pos.empty()) {
    return audit_trace(audit_file);
  }
  if (!replay_file.empty() && pos.empty()) {
    return replay_trace(replay_file, 0);
  }

  if (pos.size() != 2 && pos.size() != 4) {
    std::fprintf(stderr,
                 "usage: %s <dimension> <faults: b1,b2,...|none> "
                 "[<source bits> <dest bits>] [--trace FILE]\n"
                 "       %s --replay FILE\n"
                 "       %s --audit FILE\n"
                 "       %s --dash FILE\n"
                 "       %s --timeline FILE\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  const unsigned n = static_cast<unsigned>(std::atoi(pos[0]));
  if (n < 1 || n > 16) {
    std::fprintf(stderr, "dimension must be in 1..16\n");
    return 2;
  }
  const topo::Hypercube cube(n);
  fault::FaultSet faults(cube.num_nodes());
  if (std::string(pos[1]) != "none") {
    for (const auto& bits_str : split_commas(pos[1])) {
      if (bits_str.size() != n) {
        std::fprintf(stderr, "fault '%s' is not %u bits\n",
                     bits_str.c_str(), n);
        return 2;
      }
      faults.mark_faulty(from_bits(bits_str));
    }
  }

  const auto gs = core::run_gs(cube, faults);
  const auto vectors = core::compute_safety_vectors(cube, faults);
  const auto lh = core::compute_safe_nodes(cube, faults,
                                           core::SafeNodeRule::kLeeHayes);
  const auto wf = core::compute_safe_nodes(cube, faults,
                                           core::SafeNodeRule::kWuFernandez);
  const topo::HypercubeView view(cube);
  const auto comps = analysis::connected_components(view, faults);

  std::printf("Q%u | %llu faults | GS stable after %u round(s) | "
              "%zu healthy component(s)%s\n\n",
              n, static_cast<unsigned long long>(faults.count()),
              gs.rounds_to_stabilize, comps.count(),
              comps.disconnected() ? "  ** DISCONNECTED **" : "");

  if (n <= 8) {
    std::printf("%-*s %6s %-*s %8s %8s %10s\n", int(n) + 1, "node", "level",
                int(n) + 1, "vector", "LH-safe", "WF-safe", "component");
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      std::string vec(n, '0');
      for (unsigned k = 1; k <= n; ++k) {
        if (faults.is_healthy(a) && vectors.bit(a, k)) vec[n - k] = '1';
      }
      std::printf("%-*s %6d %-*s %8s %8s %10s\n", int(n) + 1,
                  to_bits(a, n).c_str(), int{gs.levels[a]}, int(n) + 1,
                  vec.c_str(), faults.is_faulty(a) ? "-"
                  : lh.safe[a]                     ? "yes"
                                                   : "no",
                  faults.is_faulty(a) ? "-"
                  : wf.safe[a]        ? "yes"
                                      : "no",
                  faults.is_faulty(a)
                      ? "-"
                      : std::to_string(comps.component[a]).c_str());
    }
  } else {
    std::printf("(%llu nodes: per-node table suppressed; safe nodes: "
                "level-n %zu, WF %llu, LH %llu)\n",
                static_cast<unsigned long long>(cube.num_nodes()),
                gs.levels.safe_nodes().size(),
                static_cast<unsigned long long>(wf.safe_count()),
                static_cast<unsigned long long>(lh.safe_count()));
  }

  if (pos.size() == 4) {
    const NodeId s = from_bits(pos[2]), d = from_bits(pos[3]);
    if (faults.is_faulty(s) || faults.is_faulty(d)) {
      std::fprintf(stderr, "\nsource/destination must be healthy\n");
      return 1;
    }
    const auto dec = core::decide_at_source(cube, gs.levels, s, d);
    std::printf("\nunicast %s -> %s: H = %u | C1=%d C2=%d C3=%d\n",
                to_bits(s, n).c_str(), to_bits(d, n).c_str(), dec.hamming,
                dec.c1, dec.c2, dec.c3);
    core::UnicastOptions uo;
    std::unique_ptr<obs::JsonlSink> sink;
    if (!trace_file.empty()) {
      sink = std::make_unique<obs::JsonlSink>(trace_file);
      uo.trace = sink.get();
    }
    const auto r = core::route_unicast(cube, faults, gs.levels, s, d, uo);
    std::printf("levels : %s — %s\n", core::to_string(r.status),
                analysis::format_path(r.path, n).c_str());
    const auto rv = core::route_unicast_sv(cube, faults, vectors, s, d);
    std::printf("vectors: %s — %s\n", core::to_string(rv.status),
                analysis::format_path(rv.path, n).c_str());
    if (sink != nullptr) {
      sink.reset();  // flush before reading the file back
      std::printf("\n");
      return replay_trace(trace_file, n);
    }
  } else if (!replay_file.empty()) {
    std::printf("\n");
    return replay_trace(replay_file, n);
  }
  return 0;
}
