// inspect — a command-line workbench for one faulty hypercube: pass a
// dimension, a comma-separated fault list (bit-string node labels), and
// optionally a source/destination pair. Prints the safety levels, safety
// vectors, safe-node classifications, component structure, and — when a
// pair is given — the full source decision and the routed path.
//
//   $ ./inspect 4 0011,0100,0110,1001            # the Fig. 1 machine
//   $ ./inspect 4 0011,0100,0110,1001 1110 0001  # + route a unicast
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "analysis/components.hpp"
#include "common/format.hpp"
#include "core/global_status.hpp"
#include "core/safe_node.hpp"
#include "core/safety_vector.hpp"
#include "core/unicast.hpp"
#include "topology/topology_view.hpp"

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slcube;
  if (argc != 3 && argc != 5) {
    std::fprintf(stderr,
                 "usage: %s <dimension> <faults: b1,b2,...|none> "
                 "[<source bits> <dest bits>]\n",
                 argv[0]);
    return 2;
  }
  const unsigned n = static_cast<unsigned>(std::atoi(argv[1]));
  if (n < 1 || n > 16) {
    std::fprintf(stderr, "dimension must be in 1..16\n");
    return 2;
  }
  const topo::Hypercube cube(n);
  fault::FaultSet faults(cube.num_nodes());
  if (std::string(argv[2]) != "none") {
    for (const auto& bits_str : split_commas(argv[2])) {
      if (bits_str.size() != n) {
        std::fprintf(stderr, "fault '%s' is not %u bits\n",
                     bits_str.c_str(), n);
        return 2;
      }
      faults.mark_faulty(from_bits(bits_str));
    }
  }

  const auto gs = core::run_gs(cube, faults);
  const auto vectors = core::compute_safety_vectors(cube, faults);
  const auto lh = core::compute_safe_nodes(cube, faults,
                                           core::SafeNodeRule::kLeeHayes);
  const auto wf = core::compute_safe_nodes(cube, faults,
                                           core::SafeNodeRule::kWuFernandez);
  const topo::HypercubeView view(cube);
  const auto comps = analysis::connected_components(view, faults);

  std::printf("Q%u | %llu faults | GS stable after %u round(s) | "
              "%zu healthy component(s)%s\n\n",
              n, static_cast<unsigned long long>(faults.count()),
              gs.rounds_to_stabilize, comps.count(),
              comps.disconnected() ? "  ** DISCONNECTED **" : "");

  if (n <= 8) {
    std::printf("%-*s %6s %-*s %8s %8s %10s\n", int(n) + 1, "node", "level",
                int(n) + 1, "vector", "LH-safe", "WF-safe", "component");
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      std::string vec(n, '0');
      for (unsigned k = 1; k <= n; ++k) {
        if (faults.is_healthy(a) && vectors.bit(a, k)) vec[n - k] = '1';
      }
      std::printf("%-*s %6d %-*s %8s %8s %10s\n", int(n) + 1,
                  to_bits(a, n).c_str(), int{gs.levels[a]}, int(n) + 1,
                  vec.c_str(), faults.is_faulty(a) ? "-"
                  : lh.safe[a]                     ? "yes"
                                                   : "no",
                  faults.is_faulty(a) ? "-"
                  : wf.safe[a]        ? "yes"
                                      : "no",
                  faults.is_faulty(a)
                      ? "-"
                      : std::to_string(comps.component[a]).c_str());
    }
  } else {
    std::printf("(%llu nodes: per-node table suppressed; safe nodes: "
                "level-n %zu, WF %llu, LH %llu)\n",
                static_cast<unsigned long long>(cube.num_nodes()),
                gs.levels.safe_nodes().size(),
                static_cast<unsigned long long>(wf.safe_count()),
                static_cast<unsigned long long>(lh.safe_count()));
  }

  if (argc == 5) {
    const NodeId s = from_bits(argv[3]), d = from_bits(argv[4]);
    if (faults.is_faulty(s) || faults.is_faulty(d)) {
      std::fprintf(stderr, "\nsource/destination must be healthy\n");
      return 1;
    }
    const auto dec = core::decide_at_source(cube, gs.levels, s, d);
    std::printf("\nunicast %s -> %s: H = %u | C1=%d C2=%d C3=%d\n",
                to_bits(s, n).c_str(), to_bits(d, n).c_str(), dec.hamming,
                dec.c1, dec.c2, dec.c3);
    const auto r = core::route_unicast(cube, faults, gs.levels, s, d);
    std::printf("levels : %s — %s\n", core::to_string(r.status),
                analysis::format_path(r.path, n).c_str());
    const auto rv = core::route_unicast_sv(cube, faults, vectors, s, d);
    std::printf("vectors: %s — %s\n", core::to_string(rv.status),
                analysis::format_path(rv.path, n).c_str());
  }
  return 0;
}
