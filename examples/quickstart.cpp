// Quickstart: the whole safety-level workflow on the paper's Fig. 1 cube
// in ~60 lines — build a faulty hypercube, compute safety levels with GS,
// check feasibility at a source, and route a unicast.
//
//   $ ./quickstart
#include <cstdio>

#include "common/format.hpp"
#include "core/global_status.hpp"
#include "core/unicast.hpp"
#include "fault/fault_set.hpp"
#include "topology/hypercube.hpp"

int main() {
  using namespace slcube;

  // A 4-dimensional hypercube with the four faulty nodes of the paper's
  // Fig. 1.
  const topo::Hypercube cube(4);
  fault::FaultSet faults(cube.num_nodes());
  for (const char* f : {"0011", "0100", "0110", "1001"}) {
    faults.mark_faulty(from_bits(f));
  }

  // Safety levels: the (n-1)-round GS fixed point.
  const core::GsResult gs = core::run_gs(cube, faults);
  std::printf("safety levels after %u round(s) of GS:\n",
              gs.rounds_to_stabilize);
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    std::printf("  %s -> %d%s\n", to_bits(a, 4).c_str(), int{gs.levels[a]},
                faults.is_faulty(a)       ? "  (faulty)"
                : gs.levels.is_safe(a)    ? "  (safe)"
                                          : "");
  }

  // Source-side feasibility: decidable locally from the source's level,
  // its neighbors' levels, and the Hamming distance.
  const NodeId s = from_bits("1110"), d = from_bits("0001");
  const auto dec = core::decide_at_source(cube, gs.levels, s, d);
  std::printf("\nunicast %s -> %s: H = %u, C1=%d C2=%d C3=%d\n",
              to_bits(s, 4).c_str(), to_bits(d, 4).c_str(), dec.hamming,
              dec.c1, dec.c2, dec.c3);

  // Route it. C1 holds, so the path is optimal (exactly H hops).
  const auto route = core::route_unicast(cube, faults, gs.levels, s, d);
  std::printf("status: %s\npath:   %s  (%u hops)\n",
              core::to_string(route.status),
              analysis::format_path(route.path, 4).c_str(), route.hops());

  // A unicast the source must refuse does not exist here (H <= 4 and the
  // cube is well connected); see the disconnected_partition example for
  // source-side failure detection.
  return 0;
}
