// Disconnected hypercubes (Section 3.3) — the paper's headline scenario.
//
// A maintenance accident kills every neighbor of one node, splitting the
// machine in two. This example shows:
//   * component analysis of the healthy subgraph,
//   * Theorem 4: the Lee-Hayes and Wu-Fernandez safe sets are EMPTY, so
//     the earlier schemes cannot route at all,
//   * the safety-level scheme routing normally inside each part and
//     refusing cross-partition unicasts AT THE SOURCE, without sending a
//     single message.
//
//   $ ./disconnected_partition [dimension=6] [seed=2024]
#include <cstdio>
#include <cstdlib>

#include "analysis/components.hpp"
#include "baselines/safety_level_router.hpp"
#include "common/format.hpp"
#include "core/properties.hpp"
#include "core/safe_node.hpp"
#include "fault/injection.hpp"
#include "topology/topology_view.hpp"
#include "workload/pair_sampler.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 2024;

  const topo::Hypercube cube(n);
  const topo::HypercubeView view(cube);
  Xoshiro256ss rng(seed);

  NodeId victim = 0;
  const fault::FaultSet faults =
      fault::inject_isolation(cube, /*extra_count=*/2, rng, victim);
  std::printf("Q%u, %llu faults isolate node %s\n", n,
              static_cast<unsigned long long>(faults.count()),
              to_bits(victim, n).c_str());

  const auto comps = analysis::connected_components(view, faults);
  std::printf("healthy subgraph: %zu components, sizes:", comps.count());
  for (const auto size : comps.size) {
    std::printf(" %llu", static_cast<unsigned long long>(size));
  }
  std::printf("\n\n");

  // Theorem 4: the competing safe-node schemes are dead in the water.
  const auto lh =
      core::compute_safe_nodes(cube, faults, core::SafeNodeRule::kLeeHayes);
  const auto wf = core::compute_safe_nodes(cube, faults,
                                           core::SafeNodeRule::kWuFernandez);
  std::printf("Theorem 4: LH safe nodes = %llu, WF safe nodes = %llu "
              "(both must be 0)\n",
              static_cast<unsigned long long>(lh.safe_count()),
              static_cast<unsigned long long>(wf.safe_count()));

  baselines::SafetyLevelRouter router;
  router.prepare(cube, faults);

  // Cross-partition unicasts: refused at the source, zero traffic.
  unsigned refused = 0, attempts = 0;
  for (NodeId s = 0; s < cube.num_nodes(); ++s) {
    if (faults.is_faulty(s) || s == victim) continue;
    ++attempts;
    const auto a = router.route(s, victim);
    refused += a.refused ? 1u : 0u;
  }
  std::printf("\ncross-partition unicasts toward %s: %u/%u refused at the "
              "source (0 messages sent)\n",
              to_bits(victim, n).c_str(), refused, attempts);

  // Intra-component unicasts keep working.
  unsigned delivered = 0, optimal = 0, total = 0;
  for (int t = 0; t < 2000; ++t) {
    const auto pair = workload::sample_uniform_pair(faults, rng);
    if (!pair || !comps.same_component(pair->s, pair->d)) continue;
    ++total;
    const auto a = router.route(pair->s, pair->d);
    delivered += a.delivered ? 1u : 0u;
    optimal +=
        (a.delivered && a.hops() == cube.distance(pair->s, pair->d)) ? 1u
                                                                     : 0u;
  }
  std::printf("intra-component unicasts: %u/%u delivered (%u optimal)\n",
              delivered, total, optimal);
  return 0;
}
