// timeline_report — convert a saved JSONL serving trace into a
// Chrome-trace / Perfetto timeline (Trace Event Format JSON) that
// chrome://tracing and ui.perfetto.dev open directly.
//
//   $ ./timeline_report sample.jsonl                    # -> sample.trace.json
//   $ ./timeline_report sample.jsonl -o timeline.json   # explicit output
//   $ ./timeline_report sample.jsonl --no-breadcrumbs   # promoted routes only
//
// The input is the same JSONL dialect the audit reads: epoch_publish
// lineage from svc::SnapshotOracle, promoted route chains and
// route_summary records from obs::SamplingSink. Lines with no timeline
// shape (hops, sends, gs rounds, ...) are skipped and counted, not
// treated as errors.
//
// Exit status: 0 wrote a timeline, 1 input unreadable or nothing to
// plot, 2 usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/jsonl.hpp"
#include "obs/timeline.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.jsonl> [-o out.json] [--no-breadcrumbs] "
               "[--name LABEL]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slcube;

  std::string path;
  std::string out_path;
  std::string process_name;
  obs::TimelineOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-breadcrumbs") == 0) {
      options.include_breadcrumbs = false;
    } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      process_name = argv[++i];
      options.process_name = process_name.c_str();
    } else if (argv[i][0] == '-' || !path.empty()) {
      return usage(argv[0]);
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) return usage(argv[0]);
  if (out_path.empty()) {
    // sweep.jsonl -> sweep.trace.json (next to the input)
    out_path = path;
    const std::size_t dot = out_path.rfind(".jsonl");
    if (dot != std::string::npos && dot == out_path.size() - 6) {
      out_path.resize(dot);
    }
    out_path += ".trace.json";
  }

  if (!std::ifstream(path).good()) {
    std::fprintf(stderr, "timeline_report: cannot open %s\n", path.c_str());
    return 1;
  }
  std::size_t malformed = 0;
  const std::vector<obs::ParsedEvent> events =
      obs::read_jsonl_file(path, &malformed);

  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "timeline_report: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  const obs::TimelineStats stats =
      obs::write_chrome_trace(out, events, options);
  out.close();

  std::printf(
      "timeline_report: %s -> %s\n"
      "  epoch slices      %llu\n"
      "  churn instants    %llu\n"
      "  promoted routes   %llu\n"
      "  breadcrumb ticks  %llu\n"
      "  skipped events    %llu\n",
      path.c_str(), out_path.c_str(),
      static_cast<unsigned long long>(stats.epoch_slices),
      static_cast<unsigned long long>(stats.churn_instants),
      static_cast<unsigned long long>(stats.route_slices),
      static_cast<unsigned long long>(stats.breadcrumb_instants),
      static_cast<unsigned long long>(stats.events_skipped));
  if (malformed > 0) {
    std::printf("  malformed lines   %zu\n", malformed);
  }
  std::printf("  open in chrome://tracing or https://ui.perfetto.dev\n");

  const bool plotted = stats.epoch_slices + stats.route_slices +
                           stats.breadcrumb_instants >
                       0;
  if (!plotted) {
    std::fprintf(stderr, "timeline_report: nothing to plot in %s\n",
                 path.c_str());
    return 1;
  }
  return 0;
}
