// render_cube — emit a Graphviz DOT drawing of a faulty hypercube:
// nodes annotated with their safety level (faulty nodes filled black,
// safe nodes green, unsafe shades of orange), optionally with a routed
// unicast highlighted in blue.
//
//   $ ./render_cube 4 0011,0100,0110,1001 1110 0001 | dot -Tsvg > fig1.svg
//   $ ./render_cube 4 none                           # fault-free cube
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>

#include "common/format.hpp"
#include "core/global_status.hpp"
#include "core/unicast.hpp"
#include "fault/fault_set.hpp"
#include "topology/hypercube.hpp"

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

const char* fill_for_level(slcube::core::Level level, unsigned n) {
  if (level == 0) return "black";
  if (level == n) return "palegreen";
  return level + 1u >= n ? "khaki" : "sandybrown";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slcube;
  if (argc != 3 && argc != 5) {
    std::fprintf(stderr,
                 "usage: %s <dimension<=6> <faults: b1,b2,...|none> "
                 "[<source> <dest>]\n",
                 argv[0]);
    return 2;
  }
  const unsigned n = static_cast<unsigned>(std::atoi(argv[1]));
  if (n < 1 || n > 6) {
    std::fprintf(stderr, "renderable dimensions: 1..6\n");
    return 2;
  }
  const topo::Hypercube cube(n);
  fault::FaultSet faults(cube.num_nodes());
  if (std::string(argv[2]) != "none") {
    for (const auto& b : split_commas(argv[2])) {
      faults.mark_faulty(from_bits(b));
    }
  }
  const auto levels = core::compute_safety_levels(cube, faults);

  // Route edges to highlight.
  std::set<std::pair<NodeId, NodeId>> route_edges;
  std::string route_note;
  if (argc == 5) {
    const NodeId s = from_bits(argv[3]), d = from_bits(argv[4]);
    const auto r = core::route_unicast(cube, faults, levels, s, d);
    route_note = std::string(argv[3]) + " -> " + argv[4] + ": " +
                 core::to_string(r.status);
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      const NodeId a = std::min(r.path[i], r.path[i + 1]);
      const NodeId b = std::max(r.path[i], r.path[i + 1]);
      route_edges.insert({a, b});
    }
  }

  std::printf("graph Q%u {\n", n);
  std::printf("  layout=neato; overlap=false; splines=true;\n");
  std::printf("  label=\"Q%u, %llu faults%s%s\"; fontsize=20;\n", n,
              static_cast<unsigned long long>(faults.count()),
              route_note.empty() ? "" : "\\n", route_note.c_str());
  std::printf("  node [style=filled, fontname=monospace];\n");
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    std::printf("  \"%s\" [label=\"%s\\nS=%d\", fillcolor=%s%s];\n",
                to_bits(a, n).c_str(), to_bits(a, n).c_str(),
                int{levels[a]}, fill_for_level(levels[a], n),
                faults.is_faulty(a) ? ", fontcolor=white" : "");
  }
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    cube.for_each_neighbor(a, [&](Dim, NodeId b) {
      if (a >= b) return;  // each undirected edge once
      const bool on_route = route_edges.contains({a, b});
      std::printf("  \"%s\" -- \"%s\"%s;\n", to_bits(a, n).c_str(),
                  to_bits(b, n).c_str(),
                  on_route ? " [color=blue, penwidth=3]" : "");
    });
  }
  std::printf("}\n");
  return 0;
}
