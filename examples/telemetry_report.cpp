// telemetry_report — render a telemetry flight record (the JSONL a bench
// writes under --telemetry, see EXPERIMENTS.md TELEMETRY) as a terminal
// dashboard: run metadata, per-stage time breakdown with self/total
// attribution, throughput-over-time sparkline, interval latency
// percentiles, and a per-dimension hop-utilization heatmap.
//
//   $ ./telemetry_report telemetry.jsonl
//   $ ./telemetry_report telemetry.jsonl --width 100
//
// Exit status: 0 rendered, 1 the file could not be read or held no
// telemetry events, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/dashboard.hpp"
#include "obs/jsonl.hpp"

int main(int argc, char** argv) {
  using namespace slcube;

  std::string path;
  obs::DashboardOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--width") == 0 && i + 1 < argc) {
      opts.width = static_cast<std::size_t>(std::atoi(argv[++i]));
      if (opts.width < 8) opts.width = 8;
    } else if (argv[i][0] == '-' || !path.empty()) {
      std::fprintf(stderr, "usage: %s <telemetry.jsonl> [--width N]\n",
                   argv[0]);
      return 2;
    } else {
      path = argv[i];
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s <telemetry.jsonl> [--width N]\n", argv[0]);
    return 2;
  }
  if (!std::ifstream(path).good()) {
    std::fprintf(stderr, "telemetry_report: cannot open %s\n", path.c_str());
    return 1;
  }

  std::size_t malformed = 0;
  const auto events = obs::read_jsonl_file(path, &malformed);
  if (malformed > 0) {
    std::fprintf(stderr, "telemetry_report: %zu malformed line(s) in %s\n",
                 malformed, path.c_str());
  }
  const std::size_t samples = obs::render_dashboard(std::cout, events, opts);
  if (events.empty()) {
    std::fprintf(stderr, "telemetry_report: %s holds no telemetry events\n",
                 path.c_str());
    return 1;
  }
  if (samples == 0) {
    std::fprintf(stderr,
                 "telemetry_report: no ts_sample events — was the bench run "
                 "with --telemetry?\n");
  }
  return 0;
}
