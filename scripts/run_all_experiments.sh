#!/usr/bin/env sh
# Regenerate every experiment in EXPERIMENTS.md. Outputs (tables + CSV)
# land in experiments_out/. Usage:
#   scripts/run_all_experiments.sh [build-dir]
set -eu
BUILD="${1:-build}"
OUT=experiments_out
mkdir -p "$OUT"

for bench in "$BUILD"/bench/bench_*; do
  name=$(basename "$bench")
  [ "$name" = bench_perf_micro ] && continue
  echo "== $name"
  "$bench" | tee "$OUT/$name.txt"
  "$bench" --csv > "$OUT/$name.csv"
done

echo "== bench_perf_micro"
"$BUILD"/bench/bench_perf_micro \
  --benchmark_out="$OUT/bench_perf_micro.json" \
  --benchmark_out_format=json | tee "$OUT/bench_perf_micro.txt"

echo "All experiment outputs written to $OUT/"
