#!/usr/bin/env sh
# Regenerate every experiment in EXPERIMENTS.md. Outputs (tables + CSV +
# JSONL sweep traces where a bench supports --jsonl) land in
# experiments_out/. Usage:
#   scripts/run_all_experiments.sh [build-dir]
set -eu
BUILD="${1:-build}"
OUT=experiments_out
mkdir -p "$OUT"

# Benches whose sweeps emit per-point obs events; the rest reject --jsonl.
jsonl_flag() {
  case "$1" in
    bench_router_comparison|bench_fig2_rounds|bench_safe_sets)
      printf -- '--jsonl %s' "$OUT/$1.jsonl" ;;
    *) printf '' ;;
  esac
}

for bench in "$BUILD"/bench/bench_*; do
  name=$(basename "$bench")
  [ "$name" = bench_perf_micro ] && continue
  echo "== $name"
  # One run produces both artifacts: the human table on stdout (captured
  # to .txt) and the CSV via --csv-file. Previously each bench ran twice.
  # shellcheck disable=SC2046
  "$bench" --csv-file "$OUT/$name.csv" $(jsonl_flag "$name") \
    | tee "$OUT/$name.txt"
done

echo "== bench_perf_micro"
"$BUILD"/bench/bench_perf_micro \
  --benchmark_out="$OUT/bench_perf_micro.json" \
  --benchmark_out_format=json | tee "$OUT/bench_perf_micro.txt"

echo "All experiment outputs written to $OUT/"
