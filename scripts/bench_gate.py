#!/usr/bin/env python3
"""CI perf-regression gate: compare a fresh --bench-json artifact against
a checked-in baseline (e.g. BENCH_SWEEP_ENGINE.json).

Two classes of field, two severities:

* Correctness fields (bench name, sweep parameters, the deterministic
  outcome digest, the tallies_identical flag) are machine-independent:
  any difference is a HARD FAILURE (exit 1). A digest mismatch means the
  routing outcomes themselves changed — that is a correctness regression,
  not noise.
* Timing fields (*_ms, speedup_*) depend on the host: a slowdown beyond
  --tolerance is reported, as a warning by default (CI runners are
  noisy) or as a failure with --strict-timing.

Exit status: 0 clean or warnings only, 1 hard failure (or timing
regression under --strict-timing), 2 usage / unreadable input.
Stdlib only — no pip installs.
"""

import argparse
import json
import sys

# Host-dependent fields: never compared.
IGNORED = {"workers"}


def classify(key):
    if key in IGNORED:
        return "ignored"
    if key.endswith("_ms"):
        return "time"  # lower is better
    if key.startswith("speedup"):
        return "speedup"  # higher is better
    return "exact"


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"bench_gate: {path} is not a JSON object", file=sys.stderr)
        sys.exit(2)
    return data


def main():
    parser = argparse.ArgumentParser(
        description="compare bench --bench-json output against a baseline")
    parser.add_argument("--baseline", required=True,
                        help="checked-in reference JSON")
    parser.add_argument("--current", required=True,
                        help="freshly produced JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative timing regression "
                             "(0.30 = 30%% slower; default %(default)s)")
    parser.add_argument("--strict-timing", action="store_true",
                        help="timing regressions fail instead of warn")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures, warnings = [], []

    for key in sorted(set(baseline) | set(current)):
        kind = classify(key)
        if kind == "ignored":
            continue
        if key not in current:
            failures.append(f"{key}: missing from current run")
            continue
        if key not in baseline:
            warnings.append(f"{key}: not in baseline (new field?)")
            continue
        base, cur = baseline[key], current[key]
        if kind == "exact":
            if base != cur:
                failures.append(f"{key}: baseline {base!r} != current {cur!r}")
        elif kind == "time":
            if base > 0 and cur > base * (1.0 + args.tolerance):
                warnings.append(
                    f"{key}: {cur:.3f} ms vs baseline {base:.3f} ms "
                    f"(+{(cur / base - 1.0) * 100.0:.1f}%, "
                    f"tolerance {args.tolerance * 100.0:.0f}%)")
        elif kind == "speedup":
            if base > 0 and cur < base * (1.0 - args.tolerance):
                warnings.append(
                    f"{key}: {cur:.2f}x vs baseline {base:.2f}x "
                    f"(-{(1.0 - cur / base) * 100.0:.1f}%)")

    for msg in warnings:
        print(f"bench_gate: WARNING {msg}")
    for msg in failures:
        print(f"bench_gate: FAIL    {msg}")

    if failures:
        print(f"bench_gate: {len(failures)} hard mismatch(es) — "
              "parameters or the outcome digest changed")
        return 1
    if warnings and args.strict_timing:
        print(f"bench_gate: {len(warnings)} timing regression(s) "
              "with --strict-timing")
        return 1
    verdict = "clean" if not warnings else f"{len(warnings)} warning(s)"
    print(f"bench_gate: {verdict} "
          f"({args.current} vs {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
