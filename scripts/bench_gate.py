#!/usr/bin/env python3
"""CI perf-regression gate: compare a fresh --bench-json artifact against
a checked-in baseline (e.g. BENCH_SWEEP_ENGINE.json).

Two classes of field, two severities:

* Correctness fields (bench name, sweep parameters, the deterministic
  outcome digest, the tallies_identical flag) are machine-independent:
  any difference is a HARD FAILURE (exit 1). A digest mismatch means the
  routing outcomes themselves changed — that is a correctness regression,
  not noise.
* Timing fields (*_ms, *_us, speedup_*) and throughput rates (*_per_sec)
  depend on the host: a regression beyond --tolerance is reported, as a
  warning by default (CI runners are noisy) or as a failure with
  --strict-timing.
* Run-dependent service counts (stale_*, epochs_*, outcome_* — produced
  by bench_service, whose outcomes depend on live thread interleaving)
  are never compared: only their self-consistency flags
  (snapshots_consistent etc.) gate, as exact fields.

Telemetry fields ("telemetry_*", present only when the bench ran with
--telemetry) are never compared against the baseline. Instead each
telemetry_X timing is compared against its untelemetered counterpart X
*from the same run*: more than --telemetry-overhead relative slowdown
warns, because the recorder is supposed to be nearly free. With
--telemetry-only the baseline comparison is skipped entirely (no
--baseline needed) and only this intra-run overhead check runs.

Sampled-tracing runs (bench_service --sample, baseline
BENCH_SAMPLING.json) add one more intra-run check: the bench's own
"sampling_overhead_pct" (sampled vs untraced throughput, measured as
the best paired ratio across interleaved reps) warns past
--sampling-overhead percent. It is never compared against the baseline
— it is host noise — while the deterministic sampling_* fields
(promoted digest, promotion counts, the retention / invariance /
audit-clean verdict flags) gate exactly: a digest mismatch means the
promoted route *set* changed, which is a correctness regression in the
sampler, the scripted workload, or the serving path.

Mega-cube runs (bench_mega_cube, baseline BENCH_MEGA_CUBE.json, plus the
Q14-bounded BENCH_MEGA_CUBE_SMOKE.json the CI smoke gates against) add
per-dimension correctness fields: table_digest_qN / routes_qN_digest
(the packed fixed point and the fold-homomorphic route digest),
build_qN_rounds, the outcome tallies, and bytes_per_node_qN (the packed
5-bit SoA footprint). All gate exactly; build_qN_*_ms and
routes_qN_per_sec are host timing/rate fields as usual.

Exact fields that carry floats (bytes_per_node_qN) compare with a 1e-9
relative tolerance: the quantity is deterministic but travels through
decimal formatting, and a printf-precision change must not read as a
correctness regression. Integer exact fields (digests, counts, rounds)
still compare strictly.

Exit status: 0 clean or warnings only, 1 hard failure (or timing
regression under --strict-timing), 2 usage / unreadable input.
Stdlib only — no pip installs.
"""

import argparse
import json
import math
import sys

# Host-dependent fields: never compared.
IGNORED = {"workers"}
# Run-dependent count families: outcomes of live multi-threaded serving
# (bench_service) depend on thread interleaving, so only their
# self-consistency flags are gateable.
IGNORED_PREFIXES = ("stale_", "epochs_", "outcome_")

TELEMETRY_PREFIX = "telemetry_"
# Intra-run measurement from bench_service --sample: checked against the
# --sampling-overhead budget, never against the baseline.
SAMPLING_OVERHEAD_KEY = "sampling_overhead_pct"


def classify(key):
    if key in IGNORED or key.startswith(IGNORED_PREFIXES):
        return "ignored"
    if key == SAMPLING_OVERHEAD_KEY:
        return "overhead"  # intra-run budget check only, never vs baseline
    if key.startswith(TELEMETRY_PREFIX):
        return "telemetry"  # intra-run check only, never vs baseline
    if key.endswith("_ms") or key.endswith("_us"):
        return "time"  # lower is better
    if key.startswith("speedup") or key.endswith("_per_sec"):
        return "rate"  # higher is better
    return "exact"


def exact_equal(base, cur):
    """Strict equality, except float-valued exact fields get a 1e-9
    relative tolerance so a formatting-precision change in the bench's
    JSON writer is not misread as a correctness regression. bool is an
    int subclass in Python; both compare strictly."""
    if isinstance(base, float) or isinstance(cur, float):
        if not isinstance(base, (int, float)) or \
                not isinstance(cur, (int, float)):
            return base == cur
        return math.isclose(base, cur, rel_tol=1e-9, abs_tol=1e-12)
    return base == cur


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"bench_gate: {path} is not a JSON object", file=sys.stderr)
        sys.exit(2)
    return data


def compare_to_baseline(baseline, current, tolerance, failures, warnings):
    for key in sorted(set(baseline) | set(current)):
        kind = classify(key)
        if kind in ("ignored", "telemetry", "overhead"):
            continue
        if key not in current:
            failures.append(f"{key}: missing from current run")
            continue
        if key not in baseline:
            warnings.append(f"{key}: not in baseline (new field?)")
            continue
        base, cur = baseline[key], current[key]
        if kind == "exact":
            if not exact_equal(base, cur):
                failures.append(f"{key}: baseline {base!r} != current {cur!r}")
        elif kind == "time":
            if base > 0 and cur > base * (1.0 + tolerance):
                warnings.append(
                    f"{key}: {cur:.3f} vs baseline {base:.3f} "
                    f"(+{(cur / base - 1.0) * 100.0:.1f}%, "
                    f"tolerance {tolerance * 100.0:.0f}%)")
        elif kind == "rate":
            if base > 0 and cur < base * (1.0 - tolerance):
                warnings.append(
                    f"{key}: {cur:.2f} vs baseline {base:.2f} "
                    f"(-{(1.0 - cur / base) * 100.0:.1f}%)")


def check_telemetry_overhead(current, overhead, warnings):
    """Each telemetry_X timing vs its untelemetered X from the same run."""
    checked = 0
    for key in sorted(current):
        if not key.startswith(TELEMETRY_PREFIX):
            continue
        plain_key = key[len(TELEMETRY_PREFIX):]
        plain = current.get(plain_key)
        cur = current[key]
        if not isinstance(plain, (int, float)) or \
                not isinstance(cur, (int, float)) or plain <= 0:
            continue
        checked += 1
        if cur > plain * (1.0 + overhead):
            warnings.append(
                f"{key}: {cur:.3f} vs untelemetered {plain_key} "
                f"{plain:.3f} (+{(cur / plain - 1.0) * 100.0:.1f}%, "
                f"telemetry overhead budget {overhead * 100.0:.0f}%)")
    return checked


def check_sampling_overhead(current, budget_pct, warnings):
    """The sampler's own sampled-vs-untraced overhead vs the budget.

    bench_service --sample measures this intra-run (best paired ratio
    over interleaved reps), so the gate only has to compare the reported
    percentage against the budget — a warning, like all timing checks,
    because shared CI runners can blow any throughput ratio."""
    pct = current.get(SAMPLING_OVERHEAD_KEY)
    if not isinstance(pct, (int, float)):
        return False
    if pct > budget_pct:
        warnings.append(
            f"{SAMPLING_OVERHEAD_KEY}: {pct:.1f}% sampled-vs-untraced "
            f"slowdown exceeds the {budget_pct:.0f}% budget")
    return True


def main():
    parser = argparse.ArgumentParser(
        description="compare bench --bench-json output against a baseline")
    parser.add_argument("--baseline",
                        help="checked-in reference JSON (required unless "
                             "--telemetry-only)")
    parser.add_argument("--current", required=True,
                        help="freshly produced JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed relative timing regression "
                             "(0.30 = 30%% slower; default %(default)s)")
    parser.add_argument("--telemetry-overhead", type=float, default=0.05,
                        help="allowed telemetry-on vs telemetry-off slowdown "
                             "within one run (default %(default)s)")
    parser.add_argument("--telemetry-only", action="store_true",
                        help="skip the baseline comparison; only check the "
                             "intra-run telemetry overhead")
    parser.add_argument("--sampling-overhead", type=float, default=5.0,
                        help="allowed sampled-vs-untraced slowdown percent "
                             "for bench_service --sample runs "
                             "(default %(default)s)")
    parser.add_argument("--strict-timing", action="store_true",
                        help="timing regressions fail instead of warn")
    args = parser.parse_args()

    if args.baseline is None and not args.telemetry_only:
        parser.error("--baseline is required unless --telemetry-only")

    current = load(args.current)

    failures, warnings = [], []

    if not args.telemetry_only:
        compare_to_baseline(load(args.baseline), current, args.tolerance,
                            failures, warnings)

    checked = check_telemetry_overhead(current, args.telemetry_overhead,
                                       warnings)
    check_sampling_overhead(current, args.sampling_overhead, warnings)
    if args.telemetry_only and checked == 0:
        print("bench_gate: WARNING no telemetry_* timing fields in "
              f"{args.current} — was the bench run with --telemetry?")

    for msg in warnings:
        print(f"bench_gate: WARNING {msg}")
    for msg in failures:
        print(f"bench_gate: FAIL    {msg}")

    if failures:
        print(f"bench_gate: {len(failures)} hard mismatch(es) — "
              "parameters or the outcome digest changed")
        return 1
    if warnings and args.strict_timing:
        print(f"bench_gate: {len(warnings)} timing regression(s) "
              "with --strict-timing")
        return 1
    verdict = "clean" if not warnings else f"{len(warnings)} warning(s)"
    against = args.baseline if not args.telemetry_only else "itself"
    print(f"bench_gate: {verdict} ({args.current} vs {against})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
