// ENGINE — wall-clock accounting for the two PR-2 performance layers:
// the exp::SweepEngine thread pool and the incremental core::SafetyOracle.
//
// Three runs of the *same* availability-style sweep — each trial is a
// mission on an initially fault-free cube where nodes fail and recover
// one event at a time, the safety-level fixed point is refreshed after
// every event, and application unicasts are routed on it — differing
// only in machinery:
//   A  serial  + from-scratch compute_safety_levels per event (seed loop)
//   B  serial  + incremental SafetyOracle add_fault/remove_fault
//   C  N-way   + incremental SafetyOracle
// All three consume the identical counter-based RNG substreams, so their
// outcome tallies (folded into an order-sensitive digest) must match
// bit-for-bit — the run aborts loudly if they do not. Reported speedups
// are therefore apples-to-apples; --bench-json writes them as the
// BENCH_SWEEP_ENGINE.json artifact checked against the >=3x acceptance
// bar at dim >= 10 (the default run is Q14 since the mega-cube PR).
#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "core/safety_oracle.hpp"
#include "core/unicast.hpp"
#include "exp/sweep_engine.hpp"
#include "fault/fault_set.hpp"
#include "workload/pair_sampler.hpp"

namespace {

using namespace slcube;

struct Tally {
  std::uint64_t optimal = 0;
  std::uint64_t suboptimal = 0;
  std::uint64_t refused = 0;
  std::uint64_t stuck = 0;
};

struct RunResult {
  double wall_ms = 0.0;
  double utilization = 0.0;
  std::uint64_t digest = 0;  ///< order-sensitive fold over mission tallies
  unsigned workers = 1;
  Tally totals;
};

/// One full sweep of `missions` independent missions; `use_oracle` picks
/// incremental level maintenance vs from-scratch per event, `threads`
/// picks the engine width. With telemetry hooks the run is split into
/// batches via map()'s trial_offset — every trial keeps its substream,
/// so the digest must still match the unbatched runs — with a recorder
/// tick at each batch boundary.
RunResult run_sweep(const topo::Hypercube& cube, unsigned missions,
                    unsigned events, unsigned pairs, std::uint64_t seed,
                    unsigned threads, bool use_oracle,
                    obs::InstrumentationHooks hooks = {}) {
  exp::SweepEngine engine({threads, seed, hooks.registry, hooks.profiler});
  RunResult result;
  result.workers = static_cast<unsigned>(
      std::max<std::size_t>(1, engine.workers()));

  const std::uint64_t fault_ceiling = 3 * cube.dimension();
  const auto body = [&](exp::TrialContext& ctx) {
        Tally out;
        fault::FaultSet f(cube.num_nodes());
        core::SafetyOracle oracle(cube);  // fault-free start: O(N) fill
        core::SafetyLevels scratch = oracle.levels();
        for (unsigned e = 0; e < events; ++e) {
          const bool repair =
              f.count() >= fault_ceiling ||
              (f.count() > 4 && ctx.rng.chance(0.3));
          if (repair) {
            const auto faulty = f.faulty_nodes();
            const NodeId back = faulty[ctx.rng.below(faulty.size())];
            f.mark_healthy(back);
            if (use_oracle) oracle.remove_fault(back);
          } else {
            NodeId victim;
            do {
              victim = static_cast<NodeId>(ctx.rng.below(cube.num_nodes()));
            } while (f.is_faulty(victim));
            f.mark_faulty(victim);
            if (use_oracle) oracle.add_fault(victim);
          }
          if (!use_oracle) scratch = core::compute_safety_levels(cube, f);
          const core::SafetyLevels& lv =
              use_oracle ? oracle.levels() : scratch;
          for (unsigned p = 0; p < pairs; ++p) {
            const auto pair = workload::sample_uniform_pair(f, ctx.rng);
            if (!pair) break;
            const auto r = core::route_unicast(cube, f, lv, pair->s, pair->d);
            out.optimal += r.status == core::RouteStatus::kDeliveredOptimal;
            out.suboptimal +=
                r.status == core::RouteStatus::kDeliveredSuboptimal;
            out.refused += r.status == core::RouteStatus::kSourceRefused;
            out.stuck += r.status == core::RouteStatus::kStuck;
          }
        }
        return out;
  };

  exp::EngineTiming timing;
  std::vector<Tally> tallies;
  if (!hooks.enabled()) {
    tallies = engine.map<Tally>(0, missions, body, &timing);
  } else {
    timing.trial_latency_us = obs::HistogramData(exp::trial_latency_bounds());
    const std::size_t batch = std::max<std::size_t>(1, (missions + 7) / 8);
    double util_weighted = 0.0;
    hooks.tick();  // baseline sample: deltas start at the run's t0
    for (std::size_t off = 0; off < missions; off += batch) {
      const std::size_t n = std::min<std::size_t>(batch, missions - off);
      exp::EngineTiming bt;
      auto part = engine.map<Tally>(0, n, body, &bt, off);
      tallies.insert(tallies.end(), part.begin(), part.end());
      timing.wall_ms += bt.wall_ms;
      util_weighted += bt.utilization * bt.wall_ms;
      timing.trial_latency_us.merge(bt.trial_latency_us);
      hooks.tick();
    }
    timing.utilization =
        timing.wall_ms > 0.0 ? util_weighted / timing.wall_ms : 0.0;
  }
  result.wall_ms = timing.wall_ms;
  result.utilization = timing.utilization;
  for (const Tally& t : tallies) {
    result.digest = exp::mix64(result.digest ^ t.optimal);
    result.digest = exp::mix64(result.digest ^ t.suboptimal);
    result.digest = exp::mix64(result.digest ^ t.refused);
    result.digest = exp::mix64(result.digest ^ t.stuck);
    result.totals.optimal += t.optimal;
    result.totals.suboptimal += t.suboptimal;
    result.totals.refused += t.refused;
    result.totals.stuck += t.stuck;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned dim = opt.dim ? opt.dim : 14;
  const unsigned missions = opt.trials ? opt.trials : 40;
  const unsigned events = 50;
  const unsigned pairs = 8;
  const std::uint64_t seed = opt.seed ? opt.seed : 0xE26155;

  const topo::Hypercube cube(dim);

  bench::TelemetrySession telemetry(opt);

  const auto serial_scratch =
      run_sweep(cube, missions, events, pairs, seed, 1, false);
  const auto serial_oracle =
      run_sweep(cube, missions, events, pairs, seed, 1, true);
  const auto parallel_oracle =
      run_sweep(cube, missions, events, pairs, seed, opt.threads, true);

  const bool identical = serial_scratch.digest == serial_oracle.digest &&
                         serial_oracle.digest == parallel_oracle.digest;
  if (!identical) {
    std::cerr << "FATAL: tallies diverged between runs — the oracle or the "
                 "engine is not deterministic\n";
    return 1;
  }

  const unsigned workers = parallel_oracle.workers;
  const double speedup_oracle =
      serial_scratch.wall_ms / serial_oracle.wall_ms;
  const double speedup_threads =
      serial_oracle.wall_ms / parallel_oracle.wall_ms;
  const double speedup_total =
      serial_scratch.wall_ms / parallel_oracle.wall_ms;

  Table table("ENGINE: availability-style sweep, Q" + std::to_string(dim) +
                  " (" + std::to_string(missions) + " missions x " +
                  std::to_string(events) + " events x " +
                  std::to_string(pairs) + " pairs, " +
                  std::to_string(workers) + " workers available)",
              {"configuration", "wall ms", "utilization", "speedup vs A"});
  table.set_precision(1, 1);
  table.set_precision(2, 2);
  table.set_precision(3, 2);
  table.row() << "A serial + scratch levels" << serial_scratch.wall_ms
              << serial_scratch.utilization << 1.0;
  table.row() << "B serial + oracle" << serial_oracle.wall_ms
              << serial_oracle.utilization << speedup_oracle;
  table.row() << "C parallel + oracle" << parallel_oracle.wall_ms
              << parallel_oracle.utilization << speedup_total;
  bench::emit(table, opt);

  std::cout << "tallies identical across A/B/C: yes (digest "
            << serial_scratch.digest << ")\n"
            << "speedup (oracle alone) " << speedup_oracle
            << "x, (threads alone) " << speedup_threads << "x, (total) "
            << speedup_total << "x\n";

  // Run D: configuration C again with the flight recorder attached. Same
  // substreams (batching shifts only trial_offset), so the digest must
  // match — telemetry that changes results is a bug worth failing on.
  double telemetry_ms = 0.0;
  if (telemetry.enabled()) {
    const auto telemetered = run_sweep(cube, missions, events, pairs, seed,
                                       opt.threads, true, telemetry.hooks());
    if (telemetered.digest != parallel_oracle.digest) {
      std::cerr << "FATAL: telemetry-enabled run diverged from run C\n";
      return 1;
    }
    telemetry_ms = telemetered.wall_ms;
    if (!telemetry.finish(dim, telemetered.workers)) return 2;
    std::cout << "telemetry: digest matches run C, " << telemetry_ms
              << " ms vs " << parallel_oracle.wall_ms << " ms untelemetered ("
              << opt.telemetry_file << ")\n";
  }

  if (!opt.bench_json.empty()) {
    std::ofstream out(opt.bench_json, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << opt.bench_json << " for writing\n";
      return 2;
    }
    out << "{\n"
        << "  \"bench\": \"sweep_engine\",\n"
        << "  \"dim\": " << dim << ",\n"
        << "  \"missions\": " << missions << ",\n"
        << "  \"events_per_mission\": " << events << ",\n"
        << "  \"pairs_per_event\": " << pairs << ",\n"
        << "  \"workers\": " << workers << ",\n"
        << "  \"serial_scratch_ms\": " << serial_scratch.wall_ms << ",\n"
        << "  \"serial_oracle_ms\": " << serial_oracle.wall_ms << ",\n"
        << "  \"parallel_oracle_ms\": " << parallel_oracle.wall_ms << ",\n";
    if (telemetry.enabled()) {
      out << "  \"telemetry_parallel_oracle_ms\": " << telemetry_ms << ",\n";
    }
    out        << "  \"speedup_oracle\": " << speedup_oracle << ",\n"
        << "  \"speedup_threads\": " << speedup_threads << ",\n"
        << "  \"speedup_total\": " << speedup_total << ",\n"
        << "  \"tallies_identical\": true,\n"
        << "  \"digest\": " << serial_scratch.digest << "\n"
        << "}\n";
  }
  return 0;
}
