// EGS ORACLE — wall-clock accounting for the incremental two-view table
// (core::EgsOracle) against from-scratch run_egs, Section 4.1's analogue
// of the ENGINE bench.
//
// Three runs of the same mission sweep — each trial is a mission on an
// initially fault-free cube where node AND link fault events arrive one
// at a time (a coin picks the event class, repairs kick in near each
// ceiling), the EGS two-view tables are refreshed after every event, and
// application unicasts are routed on them — differing only in machinery:
//   A  serial  + from-scratch run_egs per event
//   B  serial  + incremental EgsOracle add/remove/fail/recover
//   C  N-way   + incremental EgsOracle
// All three consume the identical counter-based RNG substreams, so their
// outcome tallies (folded into an order-sensitive digest) must match
// bit-for-bit — the run aborts loudly if they do not. --bench-json
// writes the BENCH_EGS_ORACLE.json artifact the CI perf gate checks.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "core/egs.hpp"
#include "core/egs_oracle.hpp"
#include "exp/sweep_engine.hpp"
#include "fault/fault_set.hpp"
#include "fault/link_fault_set.hpp"
#include "workload/pair_sampler.hpp"

namespace {

using namespace slcube;

struct Tally {
  std::uint64_t optimal = 0;
  std::uint64_t suboptimal = 0;
  std::uint64_t refused = 0;
  std::uint64_t stuck = 0;
};

struct RunResult {
  double wall_ms = 0.0;
  double utilization = 0.0;
  std::uint64_t digest = 0;  ///< order-sensitive fold over mission tallies
  unsigned workers = 1;
  Tally totals;
};

/// One full sweep of `missions` independent missions; `use_oracle` picks
/// incremental two-view maintenance vs run_egs per event, `threads`
/// picks the engine width. Both modes draw the identical RNG sequence.
/// With telemetry hooks the run is split into batches via map()'s
/// trial_offset (substreams unchanged, so the digest still must match)
/// with a recorder tick at each batch boundary.
RunResult run_sweep(const topo::Hypercube& cube, unsigned missions,
                    unsigned events, unsigned pairs, std::uint64_t seed,
                    unsigned threads, bool use_oracle,
                    obs::InstrumentationHooks hooks = {}) {
  exp::SweepEngine engine({threads, seed, hooks.registry, hooks.profiler});
  RunResult result;
  result.workers =
      static_cast<unsigned>(std::max<std::size_t>(1, engine.workers()));

  const std::uint64_t node_ceiling = 2 * cube.dimension();
  const std::size_t link_ceiling = 2 * cube.dimension();
  const auto body = [&](exp::TrialContext& ctx) {
        Tally out;
        fault::FaultSet f(cube.num_nodes());
        fault::LinkFaultSet lf(cube);
        core::EgsOracle oracle(cube);  // fault-free start: O(N) fill
        core::EgsResult scratch;
        for (unsigned e = 0; e < events; ++e) {
          if (ctx.rng.chance(0.5)) {
            // Node event.
            const bool repair = f.count() >= node_ceiling ||
                                (f.count() > 4 && ctx.rng.chance(0.3));
            if (repair) {
              const auto faulty = f.faulty_nodes();
              const NodeId back = faulty[ctx.rng.below(faulty.size())];
              f.mark_healthy(back);
              if (use_oracle) oracle.remove_fault(back);
            } else {
              NodeId victim;
              do {
                victim =
                    static_cast<NodeId>(ctx.rng.below(cube.num_nodes()));
              } while (f.is_faulty(victim));
              f.mark_faulty(victim);
              if (use_oracle) oracle.add_fault(victim);
            }
          } else {
            // Link event.
            const bool repair = lf.count() >= link_ceiling ||
                                (lf.count() > 4 && ctx.rng.chance(0.3));
            if (repair) {
              const auto faulty = lf.faulty_links();
              const auto [a, d] = faulty[ctx.rng.below(faulty.size())];
              lf.mark_healthy(a, d);
              if (use_oracle) oracle.recover_link(a, d);
            } else {
              NodeId a;
              Dim d;
              do {
                a = static_cast<NodeId>(ctx.rng.below(cube.num_nodes()));
                d = static_cast<Dim>(ctx.rng.below(cube.dimension()));
              } while (lf.is_faulty(a, d));
              lf.mark_faulty(a, d);
              if (use_oracle) oracle.fail_link(a, d);
            }
          }
          if (!use_oracle) scratch = core::run_egs(cube, f, lf);
          const core::EgsViews views =
              use_oracle
                  ? oracle.views()
                  : core::EgsViews{scratch.public_view, scratch.self_view};
          for (unsigned p = 0; p < pairs; ++p) {
            const auto pair = workload::sample_uniform_pair(f, ctx.rng);
            if (!pair) break;
            const auto r = core::route_unicast_egs(cube, f, lf, views,
                                                   pair->s, pair->d);
            out.optimal += r.status == core::RouteStatus::kDeliveredOptimal;
            out.suboptimal +=
                r.status == core::RouteStatus::kDeliveredSuboptimal;
            out.refused += r.status == core::RouteStatus::kSourceRefused;
            out.stuck += r.status == core::RouteStatus::kStuck;
          }
        }
        return out;
  };

  exp::EngineTiming timing;
  std::vector<Tally> tallies;
  if (!hooks.enabled()) {
    tallies = engine.map<Tally>(0, missions, body, &timing);
  } else {
    timing.trial_latency_us = obs::HistogramData(exp::trial_latency_bounds());
    const std::size_t batch = std::max<std::size_t>(1, (missions + 7) / 8);
    double util_weighted = 0.0;
    hooks.tick();  // baseline sample: deltas start at the run's t0
    for (std::size_t off = 0; off < missions; off += batch) {
      const std::size_t n = std::min<std::size_t>(batch, missions - off);
      exp::EngineTiming bt;
      auto part = engine.map<Tally>(0, n, body, &bt, off);
      tallies.insert(tallies.end(), part.begin(), part.end());
      timing.wall_ms += bt.wall_ms;
      util_weighted += bt.utilization * bt.wall_ms;
      timing.trial_latency_us.merge(bt.trial_latency_us);
      hooks.tick();
    }
    timing.utilization =
        timing.wall_ms > 0.0 ? util_weighted / timing.wall_ms : 0.0;
  }
  result.wall_ms = timing.wall_ms;
  result.utilization = timing.utilization;
  for (const Tally& t : tallies) {
    result.digest = exp::mix64(result.digest ^ t.optimal);
    result.digest = exp::mix64(result.digest ^ t.suboptimal);
    result.digest = exp::mix64(result.digest ^ t.refused);
    result.digest = exp::mix64(result.digest ^ t.stuck);
    result.totals.optimal += t.optimal;
    result.totals.suboptimal += t.suboptimal;
    result.totals.refused += t.refused;
    result.totals.stuck += t.stuck;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned dim = opt.dim ? opt.dim : 14;
  const unsigned missions = opt.trials ? opt.trials : 40;
  const unsigned events = 50;
  const unsigned pairs = 8;
  const std::uint64_t seed = opt.seed ? opt.seed : 0xE6504AC;

  const topo::Hypercube cube(dim);

  bench::TelemetrySession telemetry(opt);

  const auto serial_scratch =
      run_sweep(cube, missions, events, pairs, seed, 1, false);
  const auto serial_oracle =
      run_sweep(cube, missions, events, pairs, seed, 1, true);
  const auto parallel_oracle =
      run_sweep(cube, missions, events, pairs, seed, opt.threads, true);

  const bool identical = serial_scratch.digest == serial_oracle.digest &&
                         serial_oracle.digest == parallel_oracle.digest;
  if (!identical) {
    std::cerr << "FATAL: tallies diverged between runs — the EGS oracle or "
                 "the engine is not deterministic\n";
    return 1;
  }

  const unsigned workers = parallel_oracle.workers;
  const double speedup_oracle = serial_scratch.wall_ms / serial_oracle.wall_ms;
  const double speedup_threads =
      serial_oracle.wall_ms / parallel_oracle.wall_ms;
  const double speedup_total =
      serial_scratch.wall_ms / parallel_oracle.wall_ms;

  Table table("EGS ORACLE: mixed node/link mission sweep, Q" +
                  std::to_string(dim) + " (" + std::to_string(missions) +
                  " missions x " + std::to_string(events) + " events x " +
                  std::to_string(pairs) + " pairs, " +
                  std::to_string(workers) + " workers available)",
              {"configuration", "wall ms", "utilization", "speedup vs A"});
  table.set_precision(1, 1);
  table.set_precision(2, 2);
  table.set_precision(3, 2);
  table.row() << "A serial + scratch run_egs" << serial_scratch.wall_ms
              << serial_scratch.utilization << 1.0;
  table.row() << "B serial + EGS oracle" << serial_oracle.wall_ms
              << serial_oracle.utilization << speedup_oracle;
  table.row() << "C parallel + EGS oracle" << parallel_oracle.wall_ms
              << parallel_oracle.utilization << speedup_total;
  bench::emit(table, opt);

  std::cout << "tallies identical across A/B/C: yes (digest "
            << serial_scratch.digest << ")\n"
            << "speedup (oracle alone) " << speedup_oracle
            << "x, (threads alone) " << speedup_threads << "x, (total) "
            << speedup_total << "x\n";

  // Run D: configuration C with the flight recorder attached; telemetry
  // must not change results, so the digest has to match run C.
  double telemetry_ms = 0.0;
  if (telemetry.enabled()) {
    const auto telemetered = run_sweep(cube, missions, events, pairs, seed,
                                       opt.threads, true, telemetry.hooks());
    if (telemetered.digest != parallel_oracle.digest) {
      std::cerr << "FATAL: telemetry-enabled run diverged from run C\n";
      return 1;
    }
    telemetry_ms = telemetered.wall_ms;
    if (!telemetry.finish(dim, telemetered.workers)) return 2;
    std::cout << "telemetry: digest matches run C, " << telemetry_ms
              << " ms vs " << parallel_oracle.wall_ms << " ms untelemetered ("
              << opt.telemetry_file << ")\n";
  }

  if (!opt.bench_json.empty()) {
    std::ofstream out(opt.bench_json, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << opt.bench_json << " for writing\n";
      return 2;
    }
    out << "{\n"
        << "  \"bench\": \"egs_oracle\",\n"
        << "  \"dim\": " << dim << ",\n"
        << "  \"missions\": " << missions << ",\n"
        << "  \"events_per_mission\": " << events << ",\n"
        << "  \"pairs_per_event\": " << pairs << ",\n"
        << "  \"workers\": " << workers << ",\n"
        << "  \"serial_scratch_ms\": " << serial_scratch.wall_ms << ",\n"
        << "  \"serial_oracle_ms\": " << serial_oracle.wall_ms << ",\n"
        << "  \"parallel_oracle_ms\": " << parallel_oracle.wall_ms << ",\n";
    if (telemetry.enabled()) {
      out << "  \"telemetry_parallel_oracle_ms\": " << telemetry_ms << ",\n";
    }
    out        << "  \"speedup_oracle\": " << speedup_oracle << ",\n"
        << "  \"speedup_threads\": " << speedup_threads << ",\n"
        << "  \"speedup_total\": " << speedup_total << ",\n"
        << "  \"tallies_identical\": true,\n"
        << "  \"digest\": " << serial_scratch.digest << "\n"
        << "}\n";
  }
  return 0;
}
