// GUAR — Theorem 3 + Property 2: rates of optimal / suboptimal /
// detected-failure unicasts versus fault count and dimension.
//
// Paper claims to reproduce:
//   * faults < n  =>  100% delivery (optimal or H+2), zero refusals;
//   * beyond n-1 faults the scheme keeps working with fault-pattern-
//     dependent refusals, which are always *correct* (the destination is
//     truly unreachable or the guarantee genuinely unavailable), and the
//     delivered share degrades gracefully.
// Plus DESIGN.md ablation #3: spare selection max-level vs
// first-eligible (tie-break handling of C3) — measured via the random
// tie-break option.
#include <algorithm>
#include <iostream>

#include "analysis/bfs.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/global_status.hpp"
#include "core/unicast.hpp"
#include "fault/injection.hpp"
#include "topology/topology_view.hpp"
#include "workload/pair_sampler.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned trials = opt.trials ? opt.trials : 250;
  const std::uint64_t seed = opt.seed ? opt.seed : 0x6A12;
  bool ok = true;

  for (const unsigned n : {6u, 8u, 10u}) {
    const topo::Hypercube cube(n);
    const topo::HypercubeView view(cube);
    Xoshiro256ss rng(seed + n);
    Table t("GUAR: unicast outcome rates, Q" + std::to_string(n) + " (" +
                std::to_string(trials) + " fault sets/point, 32 pairs "
                "each; paper: faults < n never fails)",
            {"faults", "optimal%", "suboptimal%", "refused%",
             "refusal correct%", "stuck%"});
    for (std::size_t c = 1; c <= 5; ++c) t.set_precision(c, 2);

    std::vector<std::uint64_t> fault_counts = {
        0, n / 2, n - 1, n, 2 * n, 4 * n, cube.num_nodes() / 8,
        cube.num_nodes() / 4};
    std::sort(fault_counts.begin(), fault_counts.end());
    fault_counts.erase(
        std::unique(fault_counts.begin(), fault_counts.end()),
        fault_counts.end());
    for (const auto fc : fault_counts) {
      Ratio optimal, suboptimal, refused, refusal_correct, stuck;
      for (unsigned trial = 0; trial < trials; ++trial) {
        const auto f = fault::inject_uniform(cube, fc, rng);
        if (f.healthy_count() < 2) continue;
        const auto lv = core::compute_safety_levels(cube, f);
        for (int p = 0; p < 32; ++p) {
          const auto pair = workload::sample_uniform_pair(f, rng);
          if (!pair) break;
          const auto r = core::route_unicast(cube, f, lv, pair->s, pair->d);
          optimal.add(r.status == core::RouteStatus::kDeliveredOptimal);
          suboptimal.add(r.status ==
                         core::RouteStatus::kDeliveredSuboptimal);
          refused.add(r.status == core::RouteStatus::kSourceRefused);
          stuck.add(r.status == core::RouteStatus::kStuck);
          if (r.status == core::RouteStatus::kSourceRefused) {
            // A refusal is "correct" when no guarantee was available;
            // strongest verifiable form: destination unreachable OR no
            // optimal path of length H exists from the source.
            const auto dist = analysis::bfs_distances(view, f, pair->s);
            refusal_correct.add(dist[pair->d] >
                                cube.distance(pair->s, pair->d));
          }
        }
      }
      t.row() << static_cast<std::int64_t>(fc) << optimal.percent()
              << suboptimal.percent() << refused.percent()
              << refusal_correct.percent() << stuck.percent();
      if (fc < n) {
        ok &= refused.hits() == 0 && stuck.hits() == 0;
        ok &= optimal.hits() + suboptimal.hits() == optimal.total();
      }
      ok &= stuck.hits() == 0;  // consistent levels never strand a packet
    }
    bench::emit(t, opt);
  }

  // Ablation: what is the feasibility check worth? Route every pair the
  // checked algorithm refuses with the unchecked greedy walk and count
  // salvage vs mid-route death (wasted traffic).
  {
    const topo::Hypercube cube(8);
    Xoshiro256ss rng(seed ^ 0xAB1A7E);
    Table t("ABLATION: greedy 'route anyway' on pairs the source check "
            "refuses, Q8 (" + std::to_string(trials) + " trials/point)",
            {"faults", "refused pairs", "salvaged%", "died mid-route%",
             "avg wasted hops"});
    for (std::size_t c = 2; c <= 4; ++c) t.set_precision(c, 2);
    for (const std::uint64_t fc : {24ull, 40ull, 64ull}) {
      Ratio salvaged;
      RunningStat wasted;
      std::uint64_t refused_pairs = 0;
      for (unsigned trial = 0; trial < trials; ++trial) {
        const auto f = fault::inject_uniform(cube, fc, rng);
        if (f.healthy_count() < 2) continue;
        const auto lv = core::compute_safety_levels(cube, f);
        for (int p = 0; p < 32; ++p) {
          const auto pair = workload::sample_uniform_pair(f, rng);
          if (!pair) break;
          if (core::decide_at_source(cube, lv, pair->s, pair->d)
                  .feasible()) {
            continue;
          }
          ++refused_pairs;
          const auto g =
              core::route_unicast_greedy(cube, f, lv, pair->s, pair->d);
          salvaged.add(g.delivered());
          if (!g.delivered()) wasted.add(static_cast<double>(g.hops()));
        }
      }
      t.row() << static_cast<std::int64_t>(fc)
              << static_cast<std::int64_t>(refused_pairs)
              << salvaged.percent() << (100.0 - salvaged.percent())
              << wasted.mean();
    }
    bench::emit(t, opt);
  }

  std::cout << "GUAR claims (never fails below n faults; never stuck): "
            << (ok ? "HOLD" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
