// GUAR — Theorem 3 + Property 2: rates of optimal / suboptimal /
// detected-failure unicasts versus fault count and dimension.
//
// Paper claims to reproduce:
//   * faults < n  =>  100% delivery (optimal or H+2), zero refusals;
//   * beyond n-1 faults the scheme keeps working with fault-pattern-
//     dependent refusals, which are always *correct* (the destination is
//     truly unreachable or the guarantee genuinely unavailable), and the
//     delivered share degrades gracefully.
// Plus DESIGN.md ablation #3: spare selection max-level vs
// first-eligible (tie-break handling of C3) — measured via the random
// tie-break option.
//
// Trials run on the shared exp::SweepEngine; each worker keeps one
// core::SafetyOracle per cube and retargets it to the trial's fault set,
// so consecutive trials pay only the incremental cascade instead of a
// from-scratch level computation. Results are --threads-invariant.
#include <algorithm>
#include <iostream>
#include <memory>

#include "analysis/bfs.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/safety_oracle.hpp"
#include "core/unicast.hpp"
#include "exp/sweep_engine.hpp"
#include "fault/injection.hpp"
#include "topology/topology_view.hpp"
#include "workload/pair_sampler.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned trials = opt.trials ? opt.trials : 250;
  const std::uint64_t seed = opt.seed ? opt.seed : 0x6A12;
  bool ok = true;
  int audit_rc = 0;

  bench::TelemetrySession telemetry(opt);
  const obs::InstrumentationHooks hooks = telemetry.hooks();
  exp::SweepEngine engine(
      {opt.threads, seed, hooks.registry, hooks.profiler});
  const std::size_t slots = std::max<std::size_t>(1, engine.workers());
  std::uint64_t stream = 0;

  for (const unsigned n : {6u, 8u, 10u}) {
    // With --audit, every checked route streams through the invariant
    // oracle (the greedy ablation below stays untraced: it deliberately
    // routes without the feasibility guarantee the auditor enforces).
    const auto audit = opt.make_audit_sink(n);
    core::UnicastOptions route_options;
    route_options.trace = audit.get();
    const topo::Hypercube cube(n);
    const topo::HypercubeView view(cube);
    std::vector<std::unique_ptr<core::SafetyOracle>> oracles(slots);
    Table t("GUAR: unicast outcome rates, Q" + std::to_string(n) + " (" +
                std::to_string(trials) + " fault sets/point, 32 pairs "
                "each; paper: faults < n never fails)",
            {"faults", "optimal%", "suboptimal%", "refused%",
             "refusal correct%", "stuck%"});
    for (std::size_t c = 1; c <= 5; ++c) t.set_precision(c, 2);

    std::vector<std::uint64_t> fault_counts = {
        0, n / 2, n - 1, n, 2 * n, 4 * n, cube.num_nodes() / 8,
        cube.num_nodes() / 4};
    std::sort(fault_counts.begin(), fault_counts.end());
    fault_counts.erase(
        std::unique(fault_counts.begin(), fault_counts.end()),
        fault_counts.end());
    for (const auto fc : fault_counts) {
      struct TrialOut {
        Ratio optimal, suboptimal, refused, refusal_correct, stuck;
      };
      const auto results = engine.map<TrialOut>(
          stream++, trials, [&](exp::TrialContext& ctx) {
            TrialOut out;
            const auto f = fault::inject_uniform(cube, fc, ctx.rng);
            if (f.healthy_count() < 2) return out;
            auto& oracle = oracles[ctx.worker];
            if (!oracle) oracle = std::make_unique<core::SafetyOracle>(cube);
            oracle->retarget(f);
            const auto& lv = oracle->levels();
            for (int p = 0; p < 32; ++p) {
              const auto pair = workload::sample_uniform_pair(f, ctx.rng);
              if (!pair) break;
              const auto r = core::route_unicast(cube, f, lv, pair->s,
                                                 pair->d, route_options);
              out.optimal.add(r.status == core::RouteStatus::kDeliveredOptimal);
              out.suboptimal.add(r.status ==
                                 core::RouteStatus::kDeliveredSuboptimal);
              out.refused.add(r.status == core::RouteStatus::kSourceRefused);
              out.stuck.add(r.status == core::RouteStatus::kStuck);
              if (r.status == core::RouteStatus::kSourceRefused) {
                // A refusal is "correct" when no guarantee was available;
                // strongest verifiable form: destination unreachable OR no
                // optimal path of length H exists from the source.
                const auto dist = analysis::bfs_distances(view, f, pair->s);
                out.refusal_correct.add(dist[pair->d] >
                                        cube.distance(pair->s, pair->d));
              }
            }
            return out;
          });
      Ratio optimal, suboptimal, refused, refusal_correct, stuck;
      for (const TrialOut& r : results) {
        optimal.merge(r.optimal);
        suboptimal.merge(r.suboptimal);
        refused.merge(r.refused);
        refusal_correct.merge(r.refusal_correct);
        stuck.merge(r.stuck);
      }
      t.row() << static_cast<std::int64_t>(fc) << optimal.percent()
              << suboptimal.percent() << refused.percent()
              << refusal_correct.percent() << stuck.percent();
      if (fc < n) {
        ok &= refused.hits() == 0 && stuck.hits() == 0;
        ok &= optimal.hits() + suboptimal.hits() == optimal.total();
      }
      ok &= stuck.hits() == 0;  // consistent levels never strand a packet
      telemetry.tick();
    }
    bench::emit(t, opt);
    audit_rc |= bench::finish_audit(audit.get());
  }

  // Ablation: what is the feasibility check worth? Route every pair the
  // checked algorithm refuses with the unchecked greedy walk and count
  // salvage vs mid-route death (wasted traffic).
  {
    const topo::Hypercube cube(8);
    std::vector<std::unique_ptr<core::SafetyOracle>> oracles(slots);
    Table t("ABLATION: greedy 'route anyway' on pairs the source check "
            "refuses, Q8 (" + std::to_string(trials) + " trials/point)",
            {"faults", "refused pairs", "salvaged%", "died mid-route%",
             "avg wasted hops"});
    for (std::size_t c = 2; c <= 4; ++c) t.set_precision(c, 2);
    for (const std::uint64_t fc : {24ull, 40ull, 64ull}) {
      struct TrialOut {
        Ratio salvaged;
        RunningStat wasted;
        std::uint64_t refused_pairs = 0;
      };
      const auto results = engine.map<TrialOut>(
          stream++, trials, [&](exp::TrialContext& ctx) {
            TrialOut out;
            const auto f = fault::inject_uniform(cube, fc, ctx.rng);
            if (f.healthy_count() < 2) return out;
            auto& oracle = oracles[ctx.worker];
            if (!oracle) oracle = std::make_unique<core::SafetyOracle>(cube);
            oracle->retarget(f);
            const auto& lv = oracle->levels();
            for (int p = 0; p < 32; ++p) {
              const auto pair = workload::sample_uniform_pair(f, ctx.rng);
              if (!pair) break;
              if (core::decide_at_source(cube, lv, pair->s, pair->d)
                      .feasible()) {
                continue;
              }
              ++out.refused_pairs;
              const auto g =
                  core::route_unicast_greedy(cube, f, lv, pair->s, pair->d);
              out.salvaged.add(g.delivered());
              if (!g.delivered()) {
                out.wasted.add(static_cast<double>(g.hops()));
              }
            }
            return out;
          });
      Ratio salvaged;
      RunningStat wasted;
      std::uint64_t refused_pairs = 0;
      for (const TrialOut& r : results) {
        salvaged.merge(r.salvaged);
        wasted.merge(r.wasted);
        refused_pairs += r.refused_pairs;
      }
      t.row() << static_cast<std::int64_t>(fc)
              << static_cast<std::int64_t>(refused_pairs)
              << salvaged.percent() << (100.0 - salvaged.percent())
              << wasted.mean();
      telemetry.tick();
    }
    bench::emit(t, opt);
  }

  if (!telemetry.finish(10, static_cast<unsigned>(engine.workers()))) {
    return 2;
  }
  std::cout << "GUAR claims (never fails below n faults; never stuck): "
            << (ok ? "HOLD" : "VIOLATED") << "\n";
  return ok ? audit_rc : 1;
}
