// FIG1 — replay of the paper's Fig. 1 worked example: the level table of
// the 4-cube with faults {0011, 0100, 0110, 1001} and both routing
// walk-throughs, printed paper-value vs computed-value.
#include <iostream>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/global_status.hpp"
#include "core/unicast.hpp"
#include "fault/scenario.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const auto sc = fault::scenario::fig1();
  const auto gs = core::run_gs(sc.cube, sc.faults);

  Table levels("FIG1: safety levels, Q4 faults {0011,0100,0110,1001} "
               "(stable after " + std::to_string(gs.rounds_to_stabilize) +
               " rounds; paper: 2)",
               {"node", "paper", "computed", "match"});
  bool all_match = true;
  for (NodeId a = 0; a < sc.cube.num_nodes(); ++a) {
    const bool match = gs.levels[a] == sc.expected_levels[a];
    all_match &= match;
    levels.row() << to_bits(a, 4)
                 << static_cast<std::int64_t>(sc.expected_levels[a])
                 << static_cast<std::int64_t>(gs.levels[a])
                 << std::string(match ? "yes" : "NO");
  }
  bench::emit(levels, opt);

  Table routes("FIG1: routing walk-throughs",
               {"unicast", "paper path", "computed path", "status"});
  struct Case {
    const char *s, *d, *paper;
  };
  for (const Case c : {Case{"1110", "0001", "1110 -> 1111 -> 1101 -> 0101 "
                                            "-> 0001"},
                       Case{"0001", "1100", "0001 -> 0000 -> 1000 -> 1100"}}) {
    const auto r = core::route_unicast(sc.cube, sc.faults, gs.levels,
                                       from_bits(c.s), from_bits(c.d));
    routes.row() << (std::string(c.s) + " -> " + c.d)
                 << std::string(c.paper)
                 << analysis::format_path(r.path, 4)
                 << std::string(core::to_string(r.status));
    all_match &= analysis::format_path(r.path, 4) == c.paper;
  }
  bench::emit(routes, opt);

  std::cout << "FIG1 reproduction: " << (all_match ? "EXACT" : "MISMATCH")
            << "\n";
  return all_match ? 0 : 1;
}
