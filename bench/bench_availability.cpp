// AVAIL — a mission-style whole-system experiment on the message-level
// simulator: a Q8 machine runs a long maintenance mission during which
// nodes fail (and sometimes recover) as application unicasts keep
// flowing; levels are maintained purely by the state-change-driven
// discipline. Reports, per mission phase, the delivery/optimality rates,
// the refusal correctness, and the cumulative protocol overhead —
// the operational story behind the paper's cost argument.
//
// Missions are independent trials and run on the shared exp::SweepEngine:
// each draws its randomness from a counter-based substream keyed by the
// mission index, so the report is bit-identical at any --threads value.
#include <iostream>

#include "analysis/bfs.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "exp/sweep_engine.hpp"
#include "fault/fault_set.hpp"
#include "sim/protocol_gs.hpp"
#include "sim/protocol_unicast.hpp"
#include "topology/topology_view.hpp"
#include "workload/pair_sampler.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned missions = opt.trials ? opt.trials : 30;
  const std::uint64_t seed = opt.seed ? opt.seed : 0xA5A11;

  const topo::Hypercube cube(8);
  const topo::HypercubeView view(cube);
  // --audit: every mission's full event stream (GS rounds, cascade
  // sends/drops, fail/recover churn, per-route decisions) flows through
  // the invariant oracle; AuditSink keeps per-thread lanes, so parallel
  // missions interleave safely.
  const auto audit = opt.make_audit_sink(8);
  constexpr unsigned kPhases = 8;
  constexpr unsigned kEventsPerPhase = 6;   // fail/recover events
  constexpr unsigned kUnicastsPerPhase = 120;

  struct Phase {
    RunningStat live_faults;
    Ratio delivered, optimal, refused, refusal_ok;
    RunningStat cascade_msgs;
  };

  exp::SweepEngine engine({opt.threads, seed});
  exp::EngineTiming timing;
  const auto runs = engine.map<std::vector<Phase>>(
      0, missions,
      [&](exp::TrialContext& ctx) {
        std::vector<Phase> mine(kPhases);
        fault::FaultSet base(cube.num_nodes());
        sim::Network net(cube, base);
        if (audit) net.set_trace(audit.get());
        sim::run_gs_synchronous(net);

        for (unsigned ph = 0; ph < kPhases; ++ph) {
          Phase& acc = mine[ph];
          // Events: mostly failures, some repairs once damage accumulates.
          double cascade = 0;
          for (unsigned e = 0; e < kEventsPerPhase; ++e) {
            const bool repair =
                net.faults().count() > 4 && ctx.rng.chance(0.3);
            if (repair) {
              const auto faulty = net.faults().faulty_nodes();
              const NodeId back = faulty[ctx.rng.below(faulty.size())];
              cascade += static_cast<double>(
                  sim::stabilize_after_recoveries(net, {back}).messages);
            } else if (net.faults().healthy_count() > 2) {
              NodeId victim;
              do {
                victim =
                    static_cast<NodeId>(ctx.rng.below(cube.num_nodes()));
              } while (net.faults().is_faulty(victim));
              cascade += static_cast<double>(
                  sim::stabilize_after_failures(net, {victim}).messages);
            }
          }
          acc.cascade_msgs.add(cascade);
          acc.live_faults.add(static_cast<double>(net.faults().count()));

          // Application traffic on the stabilized machine.
          for (unsigned u = 0; u < kUnicastsPerPhase; ++u) {
            const auto pair =
                workload::sample_uniform_pair(net.faults(), ctx.rng);
            if (!pair) break;
            const auto r = sim::route_unicast_sim(net, pair->s, pair->d);
            const bool del = r.status == sim::SimRouteStatus::kDelivered;
            acc.delivered.add(del);
            if (del) {
              acc.optimal.add(r.path.size() - 1 ==
                              cube.distance(pair->s, pair->d));
            }
            const bool ref = r.status == sim::SimRouteStatus::kRefused;
            acc.refused.add(ref);
            if (ref) {
              const auto dist =
                  analysis::bfs_distances(view, net.faults(), pair->s);
              // Correct (non-wasteful) refusal: the destination really had
              // no optimal-length path, or none at all.
              acc.refusal_ok.add(dist[pair->d] >
                                 cube.distance(pair->s, pair->d));
            }
          }
        }
        return mine;
      },
      &timing);

  std::vector<Phase> phases(kPhases);
  for (const auto& mission : runs) {
    for (unsigned ph = 0; ph < kPhases; ++ph) {
      phases[ph].live_faults.merge(mission[ph].live_faults);
      phases[ph].delivered.merge(mission[ph].delivered);
      phases[ph].optimal.merge(mission[ph].optimal);
      phases[ph].refused.merge(mission[ph].refused);
      phases[ph].refusal_ok.merge(mission[ph].refusal_ok);
      phases[ph].cascade_msgs.merge(mission[ph].cascade_msgs);
    }
  }

  Table t("AVAIL: Q8 mission (" + std::to_string(missions) +
              " missions x " + std::to_string(kPhases) +
              " phases; state-change-driven GS only)",
          {"phase", "avg faults", "delivered%", "optimal%", "refused%",
           "refusal ok%", "cascade msgs"});
  for (std::size_t c = 1; c <= 6; ++c) t.set_precision(c, 2);
  for (unsigned ph = 0; ph < kPhases; ++ph) {
    const Phase& acc = phases[ph];
    t.row() << static_cast<std::int64_t>(ph + 1) << acc.live_faults.mean()
            << acc.delivered.percent() << acc.optimal.percent()
            << acc.refused.percent() << acc.refusal_ok.percent()
            << acc.cascade_msgs.mean();
  }
  bench::emit(t, opt);
  std::cerr << "[engine] workers=" << engine.workers()
            << " wall_ms=" << timing.wall_ms
            << " utilization=" << timing.utilization << "\n";
  return bench::finish_audit(audit.get());
}
