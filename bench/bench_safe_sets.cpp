// SEC23 / ROUNDS — the Section 2.3 comparison of the three node-status
// definitions:
//   1. the worked Q4 example {0000, 0110, 1111}: safe-set sizes 0 (LH),
//      8 (WF), 9 (safety level);
//   2. sweep: average safe-set sizes and stabilization rounds per
//      definition vs fault count, for 7-cubes — the containment chain
//      LH ⊆ WF ⊆ SL must hold at every point.
#include <iostream>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/global_status.hpp"
#include "core/safe_node.hpp"
#include "fault/scenario.hpp"
#include "workload/experiment.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const auto jsonl = opt.make_jsonl_sink();
  const unsigned dim = opt.dim ? opt.dim : 7;
  const unsigned trials = opt.trials ? opt.trials : 800;
  const std::uint64_t seed = opt.seed ? opt.seed : 0x5EC23;

  // Part 1: the paper's worked example.
  {
    const auto sc = fault::scenario::sec23();
    const auto lv = core::compute_safety_levels(sc.cube, sc.faults);
    const auto lh = core::compute_safe_nodes(sc.cube, sc.faults,
                                             core::SafeNodeRule::kLeeHayes);
    const auto wf = core::compute_safe_nodes(
        sc.cube, sc.faults, core::SafeNodeRule::kWuFernandez);
    Table t("SEC23 example: Q4 faults {0000, 0110, 1111} — safe-set sizes "
            "(paper: LH 0, WF 8, safety-level 9)",
            {"definition", "paper", "computed"});
    t.row() << std::string("Lee-Hayes (Def. 2)") << std::int64_t{0}
            << static_cast<std::int64_t>(lh.safe_count());
    t.row() << std::string("Wu-Fernandez (Def. 3)") << std::int64_t{8}
            << static_cast<std::int64_t>(wf.safe_count());
    t.row() << std::string("safety level (Def. 1)") << std::int64_t{9}
            << static_cast<std::int64_t>(lv.safe_nodes().size());
    bench::emit(t, opt);
  }

  // Part 2: the sweep (with --dim below 7, drop the points a smaller
  // cube cannot host).
  std::vector<std::uint64_t> fault_counts = {1, 2, 4, 6, 8, 12, 16,
                                             24, 32, 48};
  std::erase_if(fault_counts,
                [&](std::uint64_t f) { return f + 2 > (1ull << dim); });
  const auto points = workload::run_rounds_sweep(dim, fault_counts, trials,
                                                 seed, jsonl.get());
  Table t("SEC23 sweep: mean safe-set size and rounds per definition, " +
          std::to_string(dim) + "-cube, " + std::to_string(trials) +
          " trials/point",
          {"faults", "|LH|", "|WF|", "|SL|", "lh rounds", "wf rounds",
           "gs rounds"});
  for (std::size_t c = 1; c <= 6; ++c) t.set_precision(c, 2);
  bool containment = true;
  for (const auto& p : points) {
    t.row() << static_cast<std::int64_t>(p.fault_count) << p.safe_lh.mean()
            << p.safe_wf.mean() << p.safe_level_n.mean()
            << p.lh_rounds.mean() << p.wf_rounds.mean()
            << p.gs_rounds.mean();
    containment &= p.safe_lh.mean() <= p.safe_wf.mean() + 1e-9 &&
                   p.safe_wf.mean() <= p.safe_level_n.mean() + 1e-9;
  }
  bench::emit(t, opt);
  std::cout << "containment LH <= WF <= SL at every point: "
            << (containment ? "HOLDS" : "VIOLATED") << "\n";
  return containment ? 0 : 1;
}
