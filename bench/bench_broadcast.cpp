// Broadcast extension (reference [9]'s application): coverage and message
// overhead of safety-level-guided broadcasting vs fault count, from safe
// and from unsafe sources.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/broadcast.hpp"
#include "core/global_status.hpp"
#include "fault/injection.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned trials = opt.trials ? opt.trials : 300;
  const std::uint64_t seed = opt.seed ? opt.seed : 0xB12D;
  bool ok = true;

  const topo::Hypercube cube(8);
  Table t("BROADCAST: coverage/messages, Q8, level-guided binomial tree "
          "with unicast patching (" + std::to_string(trials) +
          " trials/point)",
          {"faults", "source", "coverage%", "avg messages",
           "msgs per reached"});
  t.set_precision(2, 3);
  t.set_precision(3, 1);
  t.set_precision(4, 3);

  Xoshiro256ss rng(seed);
  for (const std::uint64_t fc : {0ull, 4ull, 7ull, 16ull, 32ull, 64ull}) {
    for (const bool safe_source : {true, false}) {
      Ratio covered_all;
      RunningStat coverage, messages, per_reached;
      for (unsigned trial = 0; trial < trials; ++trial) {
        const auto f = fault::inject_uniform(cube, fc, rng);
        const auto lv = core::compute_safety_levels(cube, f);
        auto src = static_cast<NodeId>(cube.num_nodes());
        if (safe_source) {
          const auto safes = lv.safe_nodes();
          if (safes.empty()) continue;
          src = safes[rng.below(safes.size())];
        } else {
          // Any healthy source, biased toward unsafe ones when possible.
          for (int tries = 0; tries < 64; ++tries) {
            const auto c = static_cast<NodeId>(rng.below(cube.num_nodes()));
            if (f.is_faulty(c)) continue;
            src = c;
            if (!lv.is_safe(c)) break;
          }
          if (src == static_cast<NodeId>(cube.num_nodes())) continue;
        }
        const auto r = core::broadcast(cube, f, lv, src);
        const auto healthy = f.healthy_count();
        coverage.add(100.0 * static_cast<double>(r.reached_count()) /
                     static_cast<double>(healthy));
        covered_all.add(r.missed == 0);
        messages.add(static_cast<double>(r.messages));
        per_reached.add(static_cast<double>(r.messages) /
                        static_cast<double>(r.reached_count()));
      }
      if (coverage.count() == 0) {
        // No qualifying trials (e.g. no safe node exists at this fault
        // density) — print an explicit marker instead of misleading 0s.
        t.row() << static_cast<std::int64_t>(fc)
                << std::string(safe_source ? "safe" : "any")
                << std::string("n/a") << std::string("n/a")
                << std::string("n/a");
        continue;
      }
      t.row() << static_cast<std::int64_t>(fc)
              << std::string(safe_source ? "safe" : "any") << coverage.mean()
              << messages.mean() << per_reached.mean();
      if (fc < cube.dimension() && safe_source) {
        ok &= covered_all.total() == 0 || covered_all.value() == 1.0;
      }
    }
  }
  bench::emit(t, opt);
  std::cout << "BROADCAST claim (full coverage, safe source, < n faults): "
            << (ok ? "HOLDS" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
