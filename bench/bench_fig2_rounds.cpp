// FIG2 — "Average number of rounds of information exchange for
// seven-cubes" (the paper's only quantitative simulation figure).
//
// Paper claims to reproduce:
//   * the average number of GS rounds for 7-cubes is far below the
//     worst-case bound n - 1 = 6 at every fault count;
//   * with fewer than 7 faults the average is below 2 rounds.
//
// We sweep the number of uniform random faults and print the mean/max
// rounds over many trials, alongside the rounds the Lee-Hayes and
// Wu-Fernandez safe-node computations need on the same fault sets
// (the Section 2.3 cost comparison).
#include "bench_util.hpp"
#include "workload/experiment.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const auto jsonl = opt.make_jsonl_sink();
  const unsigned dim = opt.dim ? opt.dim : 7;
  const unsigned trials = opt.trials ? opt.trials : 2000;
  const std::uint64_t seed = opt.seed ? opt.seed : 0xF162;

  std::vector<std::uint64_t> fault_counts = {1,  2,  3,  4,  6,  8,
                                             10, 14, 20, 28, 40, 64};
  // With --dim below 7, drop the points a smaller cube cannot host.
  std::erase_if(fault_counts,
                [&](std::uint64_t f) { return f + 2 > (1ull << dim); });
  const auto points = workload::run_rounds_sweep(dim, fault_counts, trials,
                                                 seed, jsonl.get(),
                                                 opt.threads);

  Table table("FIG2: GS rounds to stabilize, " + std::to_string(dim) +
                  "-cube, " +
                  std::to_string(trials) + " trials/point (paper: avg < 2 "
                  "for < " + std::to_string(dim) + " faults; worst case " +
                  std::to_string(dim - 1) + ")",
              {"faults", "gs avg", "gs max", "lh avg", "wf avg",
               "disconnected%"});
  for (std::size_t c = 1; c <= 4; ++c) table.set_precision(c, 3);
  table.set_precision(5, 2);
  for (const auto& p : points) {
    table.row() << static_cast<std::int64_t>(p.fault_count)
                << p.gs_rounds.mean() << p.gs_rounds.max()
                << p.lh_rounds.mean() << p.wf_rounds.mean()
                << p.disconnected.percent();
  }
  bench::emit(table, opt);

  // The headline check, printed explicitly (bounds scale with --dim).
  bool claim_holds = true;
  for (const auto& p : points) {
    if (p.fault_count < dim && p.gs_rounds.mean() >= 2.0) claim_holds = false;
    if (p.gs_rounds.max() > static_cast<double>(dim - 1)) claim_holds = false;
  }
  std::cout << "paper claim (avg rounds < 2 when faults < " << dim
            << ", max <= " << dim - 1 << "): "
            << (claim_holds ? "HOLDS" : "VIOLATED") << "\n";
  return claim_holds ? 0 : 1;
}
