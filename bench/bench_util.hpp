// Shared plumbing for the experiment binaries: flag parsing (--csv emits
// machine-readable output on stdout, --csv-file writes the same CSV to a
// file in the same run, --jsonl streams per-point obs events,
// --dim/--trials/--seed override binary defaults, and --threads sets the
// sweep-engine worker count — results are bit-identical for every value)
// and table emission.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/table.hpp"
#include "obs/trace.hpp"

namespace slcube::bench {

struct Options {
  bool csv = false;
  unsigned trials = 0;     ///< 0 = binary default
  unsigned dim = 0;        ///< 0 = binary default
  std::uint64_t seed = 0;  ///< 0 = binary default
  /// Sweep-engine workers: 0 = one per hardware thread, 1 = serial.
  /// Changes wall time only, never results.
  unsigned threads = 0;
  std::string csv_file;    ///< empty = no CSV file artifact
  std::string jsonl_file;  ///< empty = no JSONL trace artifact
  std::string bench_json;  ///< empty = no summary JSON artifact

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        o.csv = true;
      } else if (std::strcmp(argv[i], "--csv-file") == 0 && i + 1 < argc) {
        o.csv_file = argv[++i];
      } else if (std::strcmp(argv[i], "--jsonl") == 0 && i + 1 < argc) {
        o.jsonl_file = argv[++i];
      } else if (std::strcmp(argv[i], "--dim") == 0 && i + 1 < argc) {
        o.dim = static_cast<unsigned>(std::atoi(argv[++i]));
      } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
        o.trials = static_cast<unsigned>(std::atoi(argv[++i]));
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        o.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        o.threads = static_cast<unsigned>(std::atoi(argv[++i]));
      } else if (std::strcmp(argv[i], "--bench-json") == 0 && i + 1 < argc) {
        o.bench_json = argv[++i];
      } else {
        std::cerr << "usage: " << argv[0]
                  << " [--csv] [--csv-file F] [--jsonl F] [--dim N]"
                     " [--trials N] [--seed S] [--threads N]"
                     " [--bench-json F]\n";
        std::exit(2);
      }
    }
    return o;
  }

  /// JSONL sink for --jsonl, or null when the flag is absent — the raw
  /// pointer of the result is safe to hand to SweepConfig::trace /
  /// run_rounds_sweep either way. The file is truncated on open.
  [[nodiscard]] std::unique_ptr<obs::JsonlSink> make_jsonl_sink() const {
    if (jsonl_file.empty()) return nullptr;
    return std::make_unique<obs::JsonlSink>(jsonl_file);
  }
};

/// Human table (or CSV with --csv) to stdout, plus a CSV file artifact
/// when --csv-file is set — both from the single run. The first emit of
/// the process truncates the file; later emits append, so binaries that
/// print two tables produce the same concatenated CSV that capturing
/// `--csv` stdout used to.
inline void emit(const Table& table, const Options& options) {
  if (options.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << '\n';
  if (!options.csv_file.empty()) {
    static bool appending = false;
    std::ofstream out(options.csv_file,
                      appending ? std::ios::app : std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << options.csv_file << " for writing\n";
      std::exit(2);
    }
    if (appending) out << '\n';
    appending = true;
    table.write_csv(out);
  }
}

}  // namespace slcube::bench
