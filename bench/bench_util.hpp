// Shared plumbing for the experiment binaries: flag parsing (--csv emits
// machine-readable output, --trials/--seed override defaults) and table
// emission.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hpp"

namespace slcube::bench {

struct Options {
  bool csv = false;
  unsigned trials = 0;     ///< 0 = binary default
  std::uint64_t seed = 0;  ///< 0 = binary default

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        o.csv = true;
      } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
        o.trials = static_cast<unsigned>(std::atoi(argv[++i]));
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        o.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
      } else {
        std::cerr << "usage: " << argv[0]
                  << " [--csv] [--trials N] [--seed S]\n";
        std::exit(2);
      }
    }
    return o;
  }
};

inline void emit(const Table& table, const Options& options) {
  if (options.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << '\n';
}

}  // namespace slcube::bench
