// Shared plumbing for the experiment binaries: flag parsing (--csv emits
// machine-readable output on stdout, --csv-file writes the same CSV to a
// file in the same run, --jsonl streams per-point obs events, --audit
// streams the same events through the invariant-checking AuditSink,
// --dim/--trials/--seed override binary defaults, and --threads sets the
// sweep-engine worker count — results are bit-identical for every value)
// and table emission.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "common/table.hpp"
#include "obs/audit.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace slcube::bench {

struct Options {
  bool csv = false;
  /// Tee every trace event through an obs::AuditSink so the bench
  /// self-verifies the paper invariants while it measures.
  bool audit = false;
  unsigned trials = 0;     ///< 0 = binary default
  unsigned dim = 0;        ///< 0 = binary default
  std::uint64_t seed = 0;  ///< 0 = binary default
  /// Sweep-engine workers: 0 = one per hardware thread, 1 = serial.
  /// Changes wall time only, never results.
  unsigned threads = 0;
  std::string csv_file;    ///< empty = no CSV file artifact
  std::string jsonl_file;  ///< empty = no JSONL trace artifact
  std::string bench_json;  ///< empty = no summary JSON artifact
  /// Telemetry recording (empty = off): the time-series + stage JSONL
  /// lands here, the final Prometheus scrape in "<file>.prom".
  std::string telemetry_file;
  /// Cadence of the telemetry sampler thread; 0 = explicit ticks only
  /// (deterministic output, the default). Ignored without --telemetry.
  unsigned sample_ms = 0;

  [[nodiscard]] static const char* usage() {
    return " [--csv] [--csv-file F] [--jsonl F] [--audit] [--dim N]"
           " [--trials N] [--seed S] [--threads N] [--bench-json F]"
           " [--telemetry F] [--sample-ms N]";
  }

  /// Testable core of parse(): fills `out` and returns true, or returns
  /// false with `error` naming the offending flag (unknown flag, or a
  /// trailing flag missing its value argument).
  [[nodiscard]] static bool try_parse(int argc, char** argv, Options& out,
                                      std::string& error) {
    const auto value = [&](int& i, const char** v) {
      if (i + 1 >= argc) {
        error = std::string("flag ") + argv[i] + " is missing its value";
        return false;
      }
      *v = argv[++i];
      return true;
    };
    const char* v = nullptr;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        out.csv = true;
      } else if (std::strcmp(argv[i], "--audit") == 0) {
        out.audit = true;
      } else if (std::strcmp(argv[i], "--csv-file") == 0) {
        if (!value(i, &v)) return false;
        out.csv_file = v;
      } else if (std::strcmp(argv[i], "--jsonl") == 0) {
        if (!value(i, &v)) return false;
        out.jsonl_file = v;
      } else if (std::strcmp(argv[i], "--dim") == 0) {
        if (!value(i, &v)) return false;
        out.dim = static_cast<unsigned>(std::atoi(v));
      } else if (std::strcmp(argv[i], "--trials") == 0) {
        if (!value(i, &v)) return false;
        out.trials = static_cast<unsigned>(std::atoi(v));
      } else if (std::strcmp(argv[i], "--seed") == 0) {
        if (!value(i, &v)) return false;
        out.seed = static_cast<std::uint64_t>(std::atoll(v));
      } else if (std::strcmp(argv[i], "--threads") == 0) {
        if (!value(i, &v)) return false;
        out.threads = static_cast<unsigned>(std::atoi(v));
      } else if (std::strcmp(argv[i], "--bench-json") == 0) {
        if (!value(i, &v)) return false;
        out.bench_json = v;
      } else if (std::strcmp(argv[i], "--telemetry") == 0) {
        if (!value(i, &v)) return false;
        out.telemetry_file = v;
      } else if (std::strcmp(argv[i], "--sample-ms") == 0) {
        if (!value(i, &v)) return false;
        out.sample_ms = static_cast<unsigned>(std::atoi(v));
      } else {
        error = std::string("unknown flag '") + argv[i] + "'";
        return false;
      }
    }
    return true;
  }

  /// Parse or die: prints the error and a usage line, then exits 2.
  static Options parse(int argc, char** argv) {
    Options o;
    std::string error;
    if (!try_parse(argc, argv, o, error)) {
      std::cerr << argv[0] << ": " << error << "\nusage: " << argv[0]
                << usage() << '\n';
      std::exit(2);
    }
    return o;
  }

  /// JSONL sink for --jsonl, or null when the flag is absent — the raw
  /// pointer of the result is safe to hand to SweepConfig::trace /
  /// run_rounds_sweep either way. The file is truncated on open.
  [[nodiscard]] std::unique_ptr<obs::JsonlSink> make_jsonl_sink() const {
    if (jsonl_file.empty()) return nullptr;
    return std::make_unique<obs::JsonlSink>(jsonl_file);
  }

  /// AuditSink for --audit (dimension-aware checks enabled), or null
  /// when the flag is absent.
  [[nodiscard]] std::unique_ptr<obs::AuditSink> make_audit_sink(
      unsigned dimension) const {
    if (!audit) return nullptr;
    obs::AuditConfig config;
    config.dimension = dimension;
    return std::make_unique<obs::AuditSink>(config);
  }
};

/// Close out a --audit run: print the verdict (with violation details on
/// failure) and return the process exit code — 0 clean or no audit,
/// 1 when any invariant broke, so audited benches fail loudly in CI.
inline int finish_audit(obs::AuditSink* audit) {
  if (audit == nullptr) return 0;
  audit->finish();
  const obs::AuditReport report = audit->report();
  std::cout << "audit: " << report.events << " event(s), " << report.routes
            << " route(s), " << report.gs_waves << " GS wave(s) — ";
  if (report.clean()) {
    std::cout << "clean\n";
    return 0;
  }
  std::cout << report.violations_total << " VIOLATION(S)\n";
  for (const auto& v : report.details) {
    std::cout << "  [" << obs::to_string(v.kind) << "] " << v.detail << '\n';
  }
  return 1;
}

/// One --telemetry recording for the lifetime of a bench run: owns the
/// registry, profiler, and recorder when the flag is set, and nothing at
/// all when it isn't — hooks() then hands out null pointers and every
/// instrumented call site stays on its untelemetered path. finish()
/// writes the flight record: one "telemetry_meta" line, the ts_sample
/// time series (wall times omitted in explicit-tick mode so the file is
/// byte-identical across --threads), the merged stage tree, and a final
/// Prometheus scrape next to it in "<file>.prom".
class TelemetrySession {
 public:
  explicit TelemetrySession(const Options& options)
      : file_(options.telemetry_file) {
    if (file_.empty()) return;
    registry_ = std::make_unique<obs::Registry>();
    profiler_ = std::make_unique<obs::Profiler>();
    obs::RecorderOptions rec;
    rec.sample_interval_ms = options.sample_ms;
    recorder_ = std::make_unique<obs::TimeSeriesRecorder>(*registry_, rec);
    recorder_->start();  // no-op unless --sample-ms > 0
  }

  [[nodiscard]] bool enabled() const { return recorder_ != nullptr; }

  /// The hooks to thread into sweep configs / EngineOptions; all null
  /// when telemetry is off.
  [[nodiscard]] obs::InstrumentationHooks hooks() const {
    obs::InstrumentationHooks h;
    h.registry = registry_.get();
    h.profiler = profiler_.get();
    h.recorder = recorder_.get();
    return h;
  }

  /// Deterministic sample point; call at barriers the bench controls.
  void tick() const {
    if (recorder_ != nullptr) recorder_->tick();
  }

  /// Stop sampling and write the telemetry artifacts. Returns false (with
  /// a message on stderr) if the output file cannot be opened.
  bool finish(unsigned dim, unsigned threads) {
    if (!enabled()) return true;
    recorder_->stop();
    std::ofstream out(file_, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << file_ << " for writing\n";
      return false;
    }
    out << "{\"event\":\"telemetry_meta\",\"dim\":" << dim
        << ",\"threads\":" << threads << ",\"mode\":\""
        << (recorder_->timed() ? "timed" : "ticks")
        << "\",\"samples\":" << recorder_->size()
        << ",\"ticks\":" << recorder_->total_ticks() << "}\n";
    obs::write_timeseries_jsonl(out, recorder_->samples(),
                                /*include_wall_time=*/recorder_->timed());
    obs::write_stage_jsonl(out, profiler_->report());
    std::ofstream prom(file_ + ".prom", std::ios::trunc);
    if (prom) obs::write_prometheus(prom, registry_->scrape());
    return true;
  }

 private:
  std::string file_;
  std::unique_ptr<obs::Registry> registry_;
  std::unique_ptr<obs::Profiler> profiler_;
  std::unique_ptr<obs::TimeSeriesRecorder> recorder_;
};

/// Human table (or CSV with --csv) to stdout, plus a CSV file artifact
/// when --csv-file is set — both from the single run. The first emit of
/// the process truncates the file; later emits append, so binaries that
/// print two tables produce the same concatenated CSV that capturing
/// `--csv` stdout used to.
inline void emit(const Table& table, const Options& options) {
  if (options.csv) {
    table.write_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << '\n';
  if (!options.csv_file.empty()) {
    static bool appending = false;
    std::ofstream out(options.csv_file,
                      appending ? std::ios::app : std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << options.csv_file << " for writing\n";
      std::exit(2);
    }
    if (appending) out << '\n';
    appending = true;
    table.write_csv(out);
  }
}

}  // namespace slcube::bench
