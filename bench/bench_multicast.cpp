// MCAST — the multicast extension: traffic of the level-guided multicast
// tree versus per-destination unicasts, and delivery coverage, as the
// destination-set size and fault count grow.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/global_status.hpp"
#include "core/multicast.hpp"
#include "core/unicast.hpp"
#include "fault/injection.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned trials = opt.trials ? opt.trials : 200;
  const std::uint64_t seed = opt.seed ? opt.seed : 0x3CA57;
  bool ok = true;

  const topo::Hypercube cube(8);
  Table t("MCAST: multicast tree vs separate unicasts, Q8 (" +
              std::to_string(trials) + " trials/point)",
          {"faults", "|D|", "delivered%", "tree traffic", "unicast sum",
           "savings%"});
  for (std::size_t c = 2; c <= 5; ++c) t.set_precision(c, 2);

  Xoshiro256ss rng(seed);
  for (const std::uint64_t fc : {0ull, 7ull, 20ull}) {
    for (const unsigned nd : {2u, 4u, 8u, 16u, 32u}) {
      Ratio delivered;
      RunningStat tree, unis, savings;
      for (unsigned trial = 0; trial < trials; ++trial) {
        const auto f = fault::inject_uniform(cube, fc, rng);
        const auto lv = core::compute_safety_levels(cube, f);
        NodeId src;
        do {
          src = static_cast<NodeId>(rng.below(cube.num_nodes()));
        } while (f.is_faulty(src));
        std::vector<NodeId> dests;
        while (dests.size() < nd) {
          const auto d = static_cast<NodeId>(rng.below(cube.num_nodes()));
          if (f.is_healthy(d) && d != src) dests.push_back(d);
        }
        const auto r = multicast(cube, f, lv, src, dests);
        std::uint64_t unicast_sum = 0;
        for (std::size_t i = 0; i < dests.size(); ++i) {
          delivered.add(r.delivered[i]);
          if (!r.delivered[i]) continue;
          const auto u = core::route_unicast(cube, f, lv, src, dests[i]);
          unicast_sum += u.hops();
        }
        tree.add(static_cast<double>(r.traffic));
        unis.add(static_cast<double>(unicast_sum));
        if (unicast_sum > 0) {
          savings.add(100.0 * (1.0 - static_cast<double>(r.traffic) /
                                         static_cast<double>(unicast_sum)));
          ok &= r.traffic <= unicast_sum;
        }
      }
      t.row() << static_cast<std::int64_t>(fc)
              << static_cast<std::int64_t>(nd) << delivered.percent()
              << tree.mean() << unis.mean() << savings.mean();
      if (fc == 0) ok &= delivered.value() == 1.0;
    }
  }
  bench::emit(t, opt);
  std::cout << "MCAST claims (tree traffic <= unicast sum; full delivery "
               "when fault-free): "
            << (ok ? "HOLD" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
