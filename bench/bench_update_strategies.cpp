// MSGS — the Section 2.2 update disciplines measured as real message
// traffic on the simulator: for a burst of node failures, how many
// LevelUpdate messages does each discipline cost to restore a stabilized
// level table?
//   * state-change-driven: only the affected cascade;
//   * periodic: whole-machine announcement waves, mostly wasted;
//   * synchronous (demand-driven rerun of GS): full waves until quiet.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/global_status.hpp"
#include "fault/injection.hpp"
#include "sim/protocol_gs.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned trials = opt.trials ? opt.trials : 60;
  const std::uint64_t seed = opt.seed ? opt.seed : 0x4661;
  bool ok = true;

  const topo::Hypercube cube(8);
  Table t("MSGS: LevelUpdate messages to re-stabilize Q8 after a failure "
          "burst (" + std::to_string(trials) + " trials/point)",
          {"burst size", "state-change avg", "periodic avg",
           "synchronous avg", "cascade/periodic%"});
  t.set_precision(1, 1);
  t.set_precision(2, 1);
  t.set_precision(3, 1);
  t.set_precision(4, 2);

  Xoshiro256ss rng(seed);
  for (const unsigned burst : {1u, 2u, 4u, 8u, 16u}) {
    RunningStat cascade_msgs, periodic_msgs, sync_msgs;
    for (unsigned trial = 0; trial < trials; ++trial) {
      const auto base = fault::inject_uniform(cube, 6, rng);
      std::vector<NodeId> victims;
      while (victims.size() < burst) {
        const auto v = static_cast<NodeId>(rng.below(cube.num_nodes()));
        if (base.is_healthy(v) &&
            std::find(victims.begin(), victims.end(), v) == victims.end()) {
          victims.push_back(v);
        }
      }

      // Discipline: state-change-driven.
      {
        sim::Network net(cube, base);
        sim::run_gs_synchronous(net);
        const auto before = net.stats().level_updates_sent;
        sim::stabilize_after_failures(net, victims);
        cascade_msgs.add(
            static_cast<double>(net.stats().level_updates_sent - before));
      }
      // Discipline: periodic (waves until the fixed point is restored;
      // n-1 waves always suffice).
      {
        sim::Network net(cube, base);
        sim::run_gs_synchronous(net);
        for (const NodeId v : victims) net.fail_node(v);
        const auto before = net.stats().level_updates_sent;
        sim::run_gs_periodic(net, 4, cube.dimension() - 1);
        periodic_msgs.add(
            static_cast<double>(net.stats().level_updates_sent - before));
      }
      // Discipline: demand-driven rerun of synchronous GS.
      {
        sim::Network net(cube, base);
        sim::run_gs_synchronous(net);
        for (const NodeId v : victims) net.fail_node(v);
        const auto before = net.stats().level_updates_sent;
        sim::run_gs_synchronous(net);
        sync_msgs.add(
            static_cast<double>(net.stats().level_updates_sent - before));
      }
    }
    t.row() << static_cast<std::int64_t>(burst) << cascade_msgs.mean()
            << periodic_msgs.mean() << sync_msgs.mean()
            << 100.0 * cascade_msgs.mean() /
                   std::max(1.0, periodic_msgs.mean());
    ok &= cascade_msgs.mean() <= periodic_msgs.mean();
  }
  bench::emit(t, opt);
  std::cout << "MSGS claim (state-change-driven cheapest): "
            << (ok ? "HOLDS" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
