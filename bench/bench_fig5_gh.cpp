// FIG5 / GHX — Section 4.2: generalized hypercubes.
//
// Part 1 replays Fig. 5 (2x3x2 GH, forced fault set {011,100,111,120}):
// level table (with the documented erratum on node 001) and the optimal
// route 010 -> 000 -> 001 -> 101. Part 2 sweeps random GH shapes and
// fault counts: Theorem 2' adherence, feasibility and optimality.
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/format.hpp"
#include "core/gh_safety.hpp"
#include "core/properties.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned trials = opt.trials ? opt.trials : 150;
  const std::uint64_t seed = opt.seed ? opt.seed : 0xF165;
  bool ok = true;

  // --- Part 1: Fig. 5. ---
  {
    const auto sc = fault::scenario::fig5();
    const auto gs = core::run_gs_gh(sc.gh, sc.faults);
    Table t("FIG5: 2x3x2 GH, faults {011,100,111,120} — levels "
            "(erratum: Def. 4 yields five 3-safe nodes incl. 001, paper "
            "figure says four and annotates 001 with 1; Theorem 2' holds "
            "for the computed values)",
            {"node", "computed level"});
    for (NodeId a = 0; a < sc.gh.num_nodes(); ++a) {
      t.row() << to_digits(sc.gh.coordinates(a))
              << static_cast<std::int64_t>(gs.levels[a]);
    }
    bench::emit(t, opt);
    ok &= core::check_theorem2_gh(sc.gh, sc.faults, gs.levels).empty();

    const NodeId s = sc.gh.encode({0, 1, 0}), d = sc.gh.encode({1, 0, 1});
    const auto r = core::route_unicast_gh(sc.gh, sc.faults, gs.levels, s, d);
    std::cout << "route 010 -> 101 (paper: 010 -> 000 -> 001 -> 101): ";
    for (std::size_t i = 0; i < r.path.size(); ++i) {
      std::cout << (i ? " -> " : "")
                << to_digits(sc.gh.coordinates(r.path[i]));
    }
    std::cout << "  [" << core::to_string(r.status) << "]\n\n";
    ok &= r.status == core::RouteStatus::kDeliveredOptimal;
  }

  // --- Part 2: shape sweep. ---
  Table t("GHX sweep: random faults in generalized hypercubes (" +
              std::to_string(trials) + " trials/point, 40 pairs each)",
          {"shape", "faults", "thm2' holds%", "delivered%", "optimal%",
           "refused%", "avg rounds"});
  for (std::size_t c = 2; c <= 6; ++c) t.set_precision(c, 2);

  struct ShapePoint {
    std::vector<std::uint32_t> radices;
    std::uint64_t faults;
  };
  Xoshiro256ss rng(seed);
  for (const ShapePoint& sp :
       {ShapePoint{{2, 3, 2}, 2}, {{3, 3, 3}, 3}, {{3, 3, 3}, 6},
        {{4, 4, 4}, 6}, {{2, 2, 2, 3}, 4}, {{4, 3, 4, 2}, 8}}) {
    const topo::GeneralizedHypercube gh(sp.radices);
    Ratio thm2, delivered, optimal, refused;
    RunningStat rounds;
    for (unsigned trial = 0; trial < trials; ++trial) {
      const auto f = fault::inject_uniform_gh(gh, sp.faults, rng);
      const auto gs = core::run_gs_gh(gh, f);
      rounds.add(gs.rounds_to_stabilize);
      thm2.add(core::check_theorem2_gh(gh, f, gs.levels).empty());
      for (int p = 0; p < 40; ++p) {
        const auto s = static_cast<NodeId>(rng.below(gh.num_nodes()));
        const auto d = static_cast<NodeId>(rng.below(gh.num_nodes()));
        if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
        const auto r = core::route_unicast_gh(gh, f, gs.levels, s, d);
        delivered.add(r.delivered());
        refused.add(r.status == core::RouteStatus::kSourceRefused);
        if (r.delivered()) {
          optimal.add(r.status == core::RouteStatus::kDeliveredOptimal);
        }
      }
    }
    std::string shape;
    for (auto it = sp.radices.rbegin(); it != sp.radices.rend(); ++it) {
      shape += (shape.empty() ? "" : "x") + std::to_string(*it);
    }
    t.row() << shape << static_cast<std::int64_t>(sp.faults)
            << thm2.percent() << delivered.percent() << optimal.percent()
            << refused.percent() << rounds.mean();
    ok &= thm2.value() == 1.0;
  }
  bench::emit(t, opt);
  std::cout << "FIG5/GHX claims: " << (ok ? "HOLD" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
