// SERVICE — routing-as-a-service under live fault churn: the epoch layer
// (svc::SnapshotOracle) serving a thread-pool of router workers while one
// writer keeps publishing new fault configurations.
//
// Workload: `--readers` worker threads split `--requests` route requests;
// each request acquires the current snapshot, samples a healthy pair from
// it, and serves the route with svc::serve_route — decisions on the
// acquired (possibly already stale) epoch, every traversal judged against
// the latest published one. Meanwhile the churn writer applies one
// node/link event every `--churn-pause-us` (bench_egs_oracle's repair
// policy: ceilings at 2n faults, coin-flip repairs past 4), publishing
// one epoch per event and emitting node_fail/node_recover trace events.
//
// Reported: routes/sec, serve-latency p50/p90/p99/p999 (obs histograms),
// epochs published + epochs/sec, and the STALENESS split — of the routes
// that ran against a ground epoch newer than their decision epoch, how
// many were delivered anyway, delivered on the H+2 spare detour, or
// dropped in flight (every drop is stale by construction: ground ==
// decision cannot block a hop the decision tables allowed).
//
// Self-checks: every `--verify-every` requests each reader bit-compares
// its current snapshot's two views against a from-scratch run_egs of the
// snapshot's own fault configuration (the RCU guarantee), the outcome
// counts must sum to the request count, and --audit streams every route
// through the invariant-checking AuditSink. Outcome counts are
// interleaving-dependent, so the JSON baseline gates only the
// self-consistency flags, latencies, and rates (see scripts/bench_gate.py).
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/egs.hpp"
#include "exp/sweep_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/sampling.hpp"
#include "svc/serve.hpp"
#include "svc/snapshot_oracle.hpp"
#include "workload/pair_sampler.hpp"
#include "workload/service_script.hpp"

namespace {

using namespace slcube;
using Clock = std::chrono::steady_clock;

struct ServiceOptions {
  unsigned readers = 4;
  std::uint64_t requests = 1'000'000;
  unsigned churn_pause_us = 200;
  std::uint64_t verify_every = 8192;  ///< 0 = no in-flight verification
  // --sample: the deterministic tail-sampled tracing benchmark (see
  // run_sample_mode below) instead of the live churn workload.
  bool sample = false;
  std::uint64_t script_epochs = 64;  ///< scripted churn events
  std::uint32_t head_every = 1024;   ///< 1-in-N head sample modulus
};

/// Split off the service-specific flags, leaving everything else for
/// bench::Options::parse (whose parser is strict about unknown flags).
ServiceOptions take_service_flags(int& argc, char** argv) {
  ServiceOptions svc;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": flag " << flag
                  << " is missing its value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--readers") == 0) {
      svc.readers = static_cast<unsigned>(std::atoi(value("--readers")));
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      svc.requests =
          static_cast<std::uint64_t>(std::atoll(value("--requests")));
    } else if (std::strcmp(argv[i], "--churn-pause-us") == 0) {
      svc.churn_pause_us =
          static_cast<unsigned>(std::atoi(value("--churn-pause-us")));
    } else if (std::strcmp(argv[i], "--verify-every") == 0) {
      svc.verify_every =
          static_cast<std::uint64_t>(std::atoll(value("--verify-every")));
    } else if (std::strcmp(argv[i], "--sample") == 0) {
      svc.sample = true;
    } else if (std::strcmp(argv[i], "--script-epochs") == 0) {
      svc.script_epochs =
          static_cast<std::uint64_t>(std::atoll(value("--script-epochs")));
    } else if (std::strcmp(argv[i], "--head-every") == 0) {
      svc.head_every =
          static_cast<std::uint32_t>(std::atoll(value("--head-every")));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (svc.readers == 0) svc.readers = 1;
  return svc;
}

/// Per-reader outcome tallies; merged after the join.
struct Tally {
  std::uint64_t optimal = 0;
  std::uint64_t suboptimal = 0;
  std::uint64_t refused = 0;
  std::uint64_t stuck = 0;
  std::uint64_t dropped_source = 0;
  std::uint64_t dropped_node = 0;
  std::uint64_t dropped_link = 0;
  std::uint64_t no_pair = 0;  ///< < 2 healthy nodes at sample time
  // The staleness split: routes whose ground epoch outran their decision
  // epoch mid-flight, by what the staleness cost them.
  std::uint64_t stale_delivered = 0;  ///< delivered anyway, H hops
  std::uint64_t stale_detour = 0;     ///< delivered on the H+2 spare detour
  std::uint64_t stale_dropped = 0;    ///< died against the newer epoch
  std::uint64_t verifications = 0;

  void merge(const Tally& o) {
    optimal += o.optimal;
    suboptimal += o.suboptimal;
    refused += o.refused;
    stuck += o.stuck;
    dropped_source += o.dropped_source;
    dropped_node += o.dropped_node;
    dropped_link += o.dropped_link;
    no_pair += o.no_pair;
    stale_delivered += o.stale_delivered;
    stale_detour += o.stale_detour;
    stale_dropped += o.stale_dropped;
    verifications += o.verifications;
  }
  [[nodiscard]] std::uint64_t total() const {
    return optimal + suboptimal + refused + stuck + dropped_source +
           dropped_node + dropped_link + no_pair;
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_source + dropped_node + dropped_link;
  }
};

/// The RCU contract, checked in flight: the snapshot's two views must be
/// bit-identical to a from-scratch run_egs of the snapshot's OWN fault
/// configuration, no matter how far the writer has moved on.
bool snapshot_matches_scratch(const topo::Hypercube& cube,
                              const svc::Snapshot& snap) {
  const core::EgsResult scratch = core::run_egs(cube, snap.faults, snap.links);
  return scratch.public_view == snap.public_view &&
         scratch.self_view == snap.self_view;
}

/// Swallows everything: the downstream for sampler passes that measure
/// promotion cost without paying for a consumer.
class NullSink final : public obs::TraceSink {
 public:
  void on_event(const obs::TraceEvent&) override {}
};

// ---------------------------------------------------------------------------
// --sample: the tail-sampled tracing benchmark. Replaces the racing
// churn writer with a workload::ServiceScript (every request a pure
// function of its index) so the SamplingSink's promotion decisions are
// interleaving-free, then runs four passes over the same requests:
//
//   A  untraced              -> the baseline routes/sec;
//   B  sampled, null sink    -> sampled routes/sec (the <5% overhead
//                               gate) and the promoted-route digest;
//   C  sampled, other thread
//      count                 -> digest must be bit-identical (the
//                               thread-invariance gate);
//   D  sampled, AuditSink    -> every promoted chain re-checked against
//      (+ --jsonl tee)          the paper invariants, sampler counters
//                               reconciled, 100% anomaly retention
//                               verified; digest must match B.
// ---------------------------------------------------------------------------

/// Per-thread tallies for one scripted pass.
struct SampleTally {
  std::uint64_t served = 0;
  std::uint64_t no_pair = 0;
  std::uint64_t anomalies = 0;  ///< dropped || detour || stale
  std::uint64_t dropped = 0;
  std::uint64_t detour = 0;
  std::uint64_t stale = 0;
  void merge(const SampleTally& o) {
    served += o.served;
    no_pair += o.no_pair;
    anomalies += o.anomalies;
    dropped += o.dropped;
    detour += o.detour;
    stale += o.stale;
  }
};

/// Run all requests through `body(i)` on `nthreads` threads (contiguous
/// static split, same as the live bench); returns wall ms.
template <typename Body>
double run_scripted_pass(std::uint64_t requests, unsigned nthreads,
                         const Body& body) {
  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(nthreads);
  std::uint64_t start = 0;
  for (unsigned r = 0; r < nthreads; ++r) {
    const std::uint64_t share =
        requests / nthreads + (r < requests % nthreads ? 1 : 0);
    pool.emplace_back([&body, r, start, share] {
      for (std::uint64_t i = start; i < start + share; ++i) body(r, i);
    });
    start += share;
  }
  for (auto& t : pool) t.join();
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Buffers a regenerated chain for SamplingSink::replay_chain.
class ChainCollector final : public obs::TraceSink {
 public:
  std::vector<obs::TraceEvent> events;
  void on_event(const obs::TraceEvent& ev) override { events.push_back(ev); }
};

void fold(const obs::RouteSummary& summary, SampleTally& tally) {
  ++tally.served;
  if (summary.dropped) ++tally.dropped;
  if (summary.detour) ++tally.detour;
  if (summary.stale()) ++tally.stale;
  if (summary.dropped || summary.detour || summary.stale()) ++tally.anomalies;
}

/// Replay mode (the measured configuration): serve untraced, offer the
/// summary; only a promoted route is re-served traced to regenerate its
/// chain — unpromoted routes never pay event construction.
void serve_replay(const workload::ServiceScript& script, std::uint64_t i,
                  std::uint64_t requests, obs::SamplingSink& sampler,
                  ChainCollector& collector, SampleTally& tally) {
  const auto req = script.request(i, requests);
  if (!req.has_pair) {
    ++tally.no_pair;
    return;
  }
  const svc::ServeResult res = script.serve(req);
  const obs::RouteSummary summary = workload::ServiceScript::summarize(req, res);
  const obs::SamplingSink::Offer offer = sampler.offer(summary);
  if (offer.promoted) {
    collector.events.clear();
    svc::ServeOptions serve_opt;
    serve_opt.trace = &collector;
    (void)script.serve(req, serve_opt);  // deterministic: same chain
    sampler.replay_chain(summary, offer.reason, collector.events);
  }
  fold(summary, tally);
}

/// Buffered mode (the audited pass): every event buffers through the
/// sampler, promoted chains forward at end_route.
void serve_buffered(const workload::ServiceScript& script, std::uint64_t i,
                    std::uint64_t requests, obs::SamplingSink& sampler,
                    SampleTally& tally) {
  const auto req = script.request(i, requests);
  if (!req.has_pair) {
    ++tally.no_pair;
    return;
  }
  sampler.begin_route(req.route_id);
  svc::ServeOptions serve_opt;
  serve_opt.trace = &sampler;
  const svc::ServeResult res = script.serve(req, serve_opt);
  const obs::RouteSummary summary = workload::ServiceScript::summarize(req, res);
  sampler.end_route(summary);
  fold(summary, tally);
}

obs::SamplingConfig make_sampling_config(const ServiceOptions& svc_opt,
                                         bool breadcrumb_summaries) {
  obs::SamplingConfig cfg;
  cfg.head_every = svc_opt.head_every;
  cfg.budget.unlimited = true;  // the deterministic (gated) configuration
  cfg.emit_breadcrumb_summaries = breadcrumb_summaries;
  return cfg;
}

int run_sample_mode(const ServiceOptions& svc_opt, const bench::Options& opt,
                    unsigned dim, std::uint64_t seed) {
  const unsigned readers = svc_opt.readers;
  const std::uint64_t requests = svc_opt.requests;

  workload::ServiceScriptConfig script_cfg;
  script_cfg.dim = dim;
  script_cfg.seed = seed;
  script_cfg.epochs = svc_opt.script_epochs;
  const workload::ServiceScript script(script_cfg);

  // --- passes A + B: untraced baseline vs sampled (replay mode, null
  // downstream) — the overhead measurement. The per-route delta under
  // test (~tens of ns) is smaller than run-to-run machine noise, so the
  // timing discipline matters: an untimed warmup pass burns off the
  // cold-start turbo/page-fault transient, then each rep times both
  // passes back to back with the order mirrored every other rep (A,B /
  // B,A / ...) so monotonic frequency drift cannot systematically favor
  // one side; the minima are compared. The workload is a pure function
  // of the request index, so every rep serves identical routes; the
  // sampler is rebuilt per rep because its promoted digest is an xor
  // fold (a repeated promotion would cancel itself).
  constexpr int kTimingReps = 4;
  std::vector<SampleTally> untraced_tallies(readers);
  std::vector<SampleTally> sampled_tallies(readers);
  NullSink null_b;
  std::unique_ptr<obs::SamplingSink> sampler_b;
  double untraced_ms = std::numeric_limits<double>::infinity();
  double sampled_ms = std::numeric_limits<double>::infinity();

  const auto run_untraced = [&]() -> double {
    std::vector<SampleTally> untraced_rep(readers);
    const double ms =
        run_scripted_pass(requests, readers, [&](unsigned r, std::uint64_t i) {
          const auto req = script.request(i, requests);
          if (!req.has_pair) {
            ++untraced_rep[r].no_pair;
            return;
          }
          const svc::ServeResult res = script.serve(req);
          SampleTally& tally = untraced_rep[r];
          ++tally.served;
          if (res.dropped()) ++tally.dropped;
          if (res.status == svc::ServeStatus::kDeliveredSuboptimal)
            ++tally.detour;
          if (res.stale()) ++tally.stale;
          if (res.dropped() ||
              res.status == svc::ServeStatus::kDeliveredSuboptimal ||
              res.stale())
            ++tally.anomalies;
        });
    untraced_ms = std::min(untraced_ms, ms);
    untraced_tallies = std::move(untraced_rep);
    return ms;
  };
  const auto run_sampled = [&]() -> double {
    sampler_b = std::make_unique<obs::SamplingSink>(
        &null_b, make_sampling_config(svc_opt, false));
    script.emit_epoch_events(*sampler_b, requests);
    std::vector<SampleTally> sampled_rep(readers);
    std::vector<ChainCollector> collectors_b(readers);
    const double ms =
        run_scripted_pass(requests, readers, [&](unsigned r, std::uint64_t i) {
          serve_replay(script, i, requests, *sampler_b, collectors_b[r],
                       sampled_rep[r]);
        });
    sampled_ms = std::min(sampled_ms, ms);
    sampled_tallies = std::move(sampled_rep);
    return ms;
  };

  {  // warmup: untimed, half the requests through each path
    const std::uint64_t warm = std::max<std::uint64_t>(requests / 2, 1);
    run_scripted_pass(warm, readers, [&](unsigned, std::uint64_t i) {
      const auto req = script.request(i, requests);
      if (req.has_pair) (void)script.serve(req);
    });
  }
  // Overhead is judged per rep pair (the two passes run back to back,
  // so a machine-wide slowdown epoch hits both sides of a pair equally)
  // and the best pair wins — far more robust against multi-hundred-ms
  // noise than comparing two global minima taken seconds apart.
  double overhead_ratio = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kTimingReps; ++rep) {
    double a_ms = 0.0;
    double b_ms = 0.0;
    if (rep % 2 == 0) {
      a_ms = run_untraced();
      b_ms = run_sampled();
    } else {
      b_ms = run_sampled();
      a_ms = run_untraced();
    }
    if (a_ms > 0) overhead_ratio = std::min(overhead_ratio, b_ms / a_ms);
  }
  const obs::SamplingSink::Stats stats = sampler_b->stats();
  const std::uint64_t digest = sampler_b->promoted_digest();

  // --- pass C: same workload, different thread count -> same digest ----
  const unsigned alt_readers = readers == 1 ? 4 : 1;
  NullSink null_c;
  obs::SamplingSink sampler_c(&null_c, make_sampling_config(svc_opt, false));
  std::vector<SampleTally> alt_tallies(alt_readers);
  std::vector<ChainCollector> collectors_c(alt_readers);
  run_scripted_pass(requests, alt_readers, [&](unsigned r, std::uint64_t i) {
    serve_replay(script, i, requests, sampler_c, collectors_c[r],
                 alt_tallies[r]);
  });
  const bool digest_invariant = sampler_c.promoted_digest() == digest;

  // --- pass D: sampled stream through the audit engine -----------------
  obs::AuditConfig audit_cfg;
  audit_cfg.dimension = dim;
  obs::AuditSink audit(audit_cfg);
  std::unique_ptr<obs::LockedJsonlSink> jsonl;
  if (!opt.jsonl_file.empty()) {
    jsonl = std::make_unique<obs::LockedJsonlSink>(opt.jsonl_file);
  }
  std::vector<obs::TraceSink*> fanout{&audit};
  if (jsonl != nullptr) fanout.push_back(jsonl.get());
  obs::TeeSink tee(fanout);
  // Breadcrumb summaries on when a JSONL artifact is requested, so the
  // exported timeline shows the unpromoted remainder too.
  // Buffered mode here: the audited pass exercises the second
  // integration path, and its digest must match the replay passes'.
  obs::SamplingSink sampler_d(
      &tee, make_sampling_config(svc_opt, jsonl != nullptr));
  script.emit_epoch_events(sampler_d, requests);
  std::vector<SampleTally> audited_tallies(readers);
  run_scripted_pass(requests, readers, [&](unsigned r, std::uint64_t i) {
    serve_buffered(script, i, requests, sampler_d, audited_tallies[r]);
  });
  const obs::SamplingSink::Stats audited = sampler_d.stats();
  audit.reconcile_sampling(audited.promoted, audited.breadcrumb_only,
                           audited.shed_events);
  audit.finish();
  const obs::AuditReport report = audit.report();
  const bool audit_clean = report.clean();
  const bool digest_audited_same = sampler_d.promoted_digest() == digest;

  // --- verdicts ---------------------------------------------------------
  SampleTally untraced_total, sampled_total;
  for (const auto& t : untraced_tallies) untraced_total.merge(t);
  for (const auto& t : sampled_tallies) sampled_total.merge(t);

  const auto reason_count = [&](obs::PromoteReason r) {
    return stats.promoted_by_reason[static_cast<std::size_t>(r)];
  };
  const std::uint64_t promoted_anomalies =
      reason_count(obs::PromoteReason::kDrop) +
      reason_count(obs::PromoteReason::kDetour) +
      reason_count(obs::PromoteReason::kStale) +
      reason_count(obs::PromoteReason::kMisroute);
  // 100% tail retention: every anomalous route kept its full chain (no
  // budget sheds, no chain overflows, counts agree with ground truth).
  const bool retention_full = promoted_anomalies == sampled_total.anomalies &&
                              stats.shed_routes == 0 &&
                              stats.overflow_routes == 0;
  // Pass A and pass B saw the same workload (the script is a pure
  // function of the request index).
  const bool passes_identical =
      untraced_total.anomalies == sampled_total.anomalies &&
      untraced_total.served == sampled_total.served &&
      untraced_total.no_pair == sampled_total.no_pair;

  const double untraced_rate =
      untraced_ms > 0 ? 1000.0 * static_cast<double>(requests) / untraced_ms
                      : 0.0;
  const double sampled_rate =
      sampled_ms > 0 ? 1000.0 * static_cast<double>(requests) / sampled_ms
                     : 0.0;
  const double overhead_pct = std::isfinite(overhead_ratio)
                                  ? (overhead_ratio - 1.0) * 100.0
                                  : 0.0;

  Table throughput("SAMPLING: tail-sampled tracing vs untraced, Q" +
                       std::to_string(dim) + " (" + std::to_string(requests) +
                       " scripted requests, " +
                       std::to_string(script.num_epochs()) + " epochs, " +
                       std::to_string(readers) + " readers)",
                   {"metric", "value"});
  throughput.set_precision(1, 1);
  throughput.row() << "untraced routes / sec" << untraced_rate;
  throughput.row() << "sampled routes / sec" << sampled_rate;
  throughput.row() << "sampling overhead %" << overhead_pct;
  throughput.row() << "untraced wall ms" << untraced_ms;
  throughput.row() << "sampled wall ms" << sampled_ms;
  bench::emit(throughput, opt);

  const auto cell = [](std::uint64_t v) {
    return static_cast<std::int64_t>(v);
  };
  Table promo("SAMPLING: promotion (" + std::to_string(stats.routes) +
                  " routes, head 1-in-" + std::to_string(svc_opt.head_every) +
                  ")",
              {"reason", "promoted"});
  promo.row() << "head sample" << cell(reason_count(obs::PromoteReason::kHead));
  promo.row() << "drop" << cell(reason_count(obs::PromoteReason::kDrop));
  promo.row() << "H+2 detour"
              << cell(reason_count(obs::PromoteReason::kDetour));
  promo.row() << "stale epoch"
              << cell(reason_count(obs::PromoteReason::kStale));
  promo.row() << "total promoted" << cell(stats.promoted);
  promo.row() << "breadcrumb only" << cell(stats.breadcrumb_only);
  promo.row() << "shed (budget)" << cell(stats.shed_routes);
  bench::emit(promo, opt);

  std::cout << "promoted digest: " << digest << " — thread counts "
            << readers << "/" << alt_readers << "/audited "
            << (digest_invariant && digest_audited_same ? "bit-identical"
                                                        : "MISMATCH")
            << '\n'
            << "tail retention: " << promoted_anomalies << " of "
            << sampled_total.anomalies
            << " anomalous routes kept as full chains — "
            << (retention_full ? "complete" : "INCOMPLETE") << '\n'
            << "audit: " << report.events << " event(s), " << report.routes
            << " promoted route(s), " << report.breadcrumb_routes
            << " breadcrumb route(s) reconciled — "
            << (audit_clean ? "clean" : "VIOLATIONS") << '\n';
  if (!audit_clean) {
    for (const auto& v : report.details) {
      std::cout << "  [" << obs::to_string(v.kind) << "] " << v.detail
                << '\n';
    }
  }

  if (!opt.bench_json.empty()) {
    std::ofstream out(opt.bench_json, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << opt.bench_json << " for writing\n";
      return 2;
    }
    // Everything prefixed sampling_ is deterministic (scripted workload,
    // unlimited budget) and exact-gated except the *_per_sec rates; the
    // intra-run overhead check compares sampling_routes_per_sec against
    // untraced_routes_per_sec (scripts/bench_gate.py --sampling-overhead).
    out << "{\n"
        << "  \"bench\": \"sampling\",\n"
        << "  \"dim\": " << dim << ",\n"
        << "  \"readers\": " << readers << ",\n"
        << "  \"requests\": " << requests << ",\n"
        << "  \"script_epochs\": " << svc_opt.script_epochs << ",\n"
        << "  \"head_every\": " << svc_opt.head_every << ",\n"
        << "  \"untraced_wall_ms\": " << untraced_ms << ",\n"
        << "  \"sampled_wall_ms\": " << sampled_ms << ",\n"
        << "  \"untraced_routes_per_sec\": " << untraced_rate << ",\n"
        << "  \"sampling_routes_per_sec\": " << sampled_rate << ",\n"
        << "  \"sampling_overhead_pct\": " << overhead_pct << ",\n"
        << "  \"sampling_promoted_digest\": " << digest << ",\n"
        << "  \"sampling_routes\": " << stats.routes << ",\n"
        << "  \"sampling_promoted\": " << stats.promoted << ",\n"
        << "  \"sampling_breadcrumb_only\": " << stats.breadcrumb_only << ",\n"
        << "  \"sampling_promoted_head\": "
        << reason_count(obs::PromoteReason::kHead) << ",\n"
        << "  \"sampling_promoted_drop\": "
        << reason_count(obs::PromoteReason::kDrop) << ",\n"
        << "  \"sampling_promoted_detour\": "
        << reason_count(obs::PromoteReason::kDetour) << ",\n"
        << "  \"sampling_promoted_stale\": "
        << reason_count(obs::PromoteReason::kStale) << ",\n"
        << "  \"sampling_shed_routes\": " << stats.shed_routes << ",\n"
        << "  \"sampling_overflow_routes\": " << stats.overflow_routes
        << ",\n"
        << "  \"sampling_retention_full\": "
        << (retention_full ? "true" : "false") << ",\n"
        << "  \"sampling_digest_thread_invariant\": "
        << (digest_invariant && digest_audited_same ? "true" : "false")
        << ",\n"
        << "  \"sampling_audit_clean\": " << (audit_clean ? "true" : "false")
        << ",\n"
        << "  \"sampling_passes_identical\": "
        << (passes_identical ? "true" : "false") << "\n"
        << "}\n";
  }

  int rc = 0;
  if (!audit_clean) {
    std::cerr << "FATAL: sampled-stream audit found violations\n";
    rc = 1;
  }
  if (!retention_full) {
    std::cerr << "FATAL: anomalous routes lost their full chains\n";
    rc = 1;
  }
  if (!digest_invariant || !digest_audited_same) {
    std::cerr << "FATAL: promoted digest depends on the thread count\n";
    rc = 1;
  }
  if (!passes_identical) {
    std::cerr << "FATAL: scripted passes disagree on the workload\n";
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const ServiceOptions svc_opt = take_service_flags(argc, argv);
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned dim = opt.dim ? opt.dim : 10;
  const std::uint64_t seed = opt.seed ? opt.seed : 0x5E51CE;
  const unsigned readers = svc_opt.readers;
  const std::uint64_t requests = svc_opt.requests;

  if (svc_opt.sample) return run_sample_mode(svc_opt, opt, dim, seed);

  const topo::Hypercube cube(dim);
  svc::SnapshotOracle oracle(cube);

  bench::TelemetrySession telemetry(opt);
  obs::Counter routes_counter;
  obs::Counter epochs_counter;
  obs::Histogram route_us_metric;
  if (telemetry.enabled()) {
    obs::Registry& reg = *telemetry.hooks().registry;
    routes_counter = reg.counter("svc.routes");
    epochs_counter = reg.counter("svc.epochs");
    route_us_metric =
        reg.histogram("svc.route_us", obs::exponential_bounds(0.05, 1.3, 48));
  }

  const auto audit = opt.make_audit_sink(dim);
  // Whole-line-locked JSONL so reader threads may share the file. Lanes
  // still interleave in the output — replaying a multi-reader file
  // through the single-lane JSONL auditor will report broken chains; use
  // --jsonl with --readers 1 for replays.
  std::unique_ptr<obs::LockedJsonlSink> locked_jsonl;
  if (!opt.jsonl_file.empty()) {
    locked_jsonl = std::make_unique<obs::LockedJsonlSink>(opt.jsonl_file);
  }
  std::vector<obs::TraceSink*> fanout;
  if (audit != nullptr) fanout.push_back(audit.get());
  if (locked_jsonl != nullptr) fanout.push_back(locked_jsonl.get());
  obs::TeeSink tee(fanout);
  obs::TraceSink* const trace = fanout.empty() ? nullptr : &tee;

  // --- churn writer -----------------------------------------------------
  std::atomic<bool> stop_churn{false};
  std::atomic<bool> consistent{true};
  std::thread writer([&] {
    Xoshiro256ss rng = exp::substream(seed, /*stream=*/0, /*trial=*/0);
    fault::FaultSet faults(cube.num_nodes());
    fault::LinkFaultSet links(cube);
    const std::uint64_t node_ceiling = 2 * cube.dimension();
    const std::size_t link_ceiling = 2 * cube.dimension();
    while (!stop_churn.load(std::memory_order_relaxed)) {
      if (rng.chance(0.5)) {
        const bool repair = faults.count() >= node_ceiling ||
                            (faults.count() > 4 && rng.chance(0.3));
        if (repair) {
          const auto faulty = faults.faulty_nodes();
          const NodeId back = faulty[rng.below(faulty.size())];
          faults.mark_healthy(back);
          oracle.remove_fault(back);
          if (trace != nullptr) {
            obs::NodeRecoverEvent ev;
            ev.time = oracle.epoch();
            ev.node = back;
            trace->on_event(ev);
          }
        } else {
          NodeId victim;
          do {
            victim = static_cast<NodeId>(rng.below(cube.num_nodes()));
          } while (faults.is_faulty(victim));
          faults.mark_faulty(victim);
          oracle.add_fault(victim);
          if (trace != nullptr) {
            obs::NodeFailEvent ev;
            ev.time = oracle.epoch();
            ev.node = victim;
            trace->on_event(ev);
          }
        }
      } else {
        const bool repair = links.count() >= link_ceiling ||
                            (links.count() > 4 && rng.chance(0.3));
        if (repair) {
          const auto faulty = links.faulty_links();
          const auto [a, d] = faulty[rng.below(faulty.size())];
          links.mark_healthy(a, d);
          oracle.recover_link(a, d);
        } else {
          NodeId a;
          Dim d;
          do {
            a = static_cast<NodeId>(rng.below(cube.num_nodes()));
            d = static_cast<Dim>(rng.below(cube.dimension()));
          } while (links.is_faulty(a, d));
          links.mark_faulty(a, d);
          oracle.fail_link(a, d);
        }
      }
      if (telemetry.enabled()) epochs_counter.inc();
      if (svc_opt.churn_pause_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(svc_opt.churn_pause_us));
      }
    }
  });

  // --- router workers ---------------------------------------------------
  const auto latency_bounds = obs::exponential_bounds(0.05, 1.3, 48);
  std::vector<Tally> tallies(readers);
  std::vector<obs::HistogramData> latencies(readers,
                                            obs::HistogramData(latency_bounds));
  telemetry.tick();  // baseline sample before the serving phase
  const auto t0 = Clock::now();
  {
    std::vector<std::thread> pool;
    pool.reserve(readers);
    for (unsigned r = 0; r < readers; ++r) {
      const std::uint64_t share =
          requests / readers + (r < requests % readers ? 1 : 0);
      pool.emplace_back([&, r, share] {
        Xoshiro256ss rng = exp::substream(seed, /*stream=*/1 + r, 0);
        Tally& tally = tallies[r];
        obs::HistogramData& lat = latencies[r];
        svc::ServeOptions serve_opt;
        serve_opt.trace = trace;
        for (std::uint64_t i = 0; i < share; ++i) {
          const svc::SnapshotPtr snap = oracle.acquire();
          if (svc_opt.verify_every > 0 && i % svc_opt.verify_every == 0) {
            if (!snapshot_matches_scratch(cube, *snap)) {
              consistent.store(false, std::memory_order_relaxed);
            }
            ++tally.verifications;
          }
          const auto pair = workload::sample_uniform_pair(snap->faults, rng);
          if (!pair) {
            ++tally.no_pair;
            continue;
          }
          const auto start = Clock::now();
          const svc::ServeResult res =
              svc::serve_route(oracle, snap, pair->s, pair->d, serve_opt);
          const double us =
              std::chrono::duration<double, std::micro>(Clock::now() - start)
                  .count();
          lat.observe(us);
          if (telemetry.enabled()) {
            route_us_metric.observe(us);
            routes_counter.inc();
          }
          switch (res.status) {
            case svc::ServeStatus::kDeliveredOptimal:
              ++tally.optimal;
              break;
            case svc::ServeStatus::kDeliveredSuboptimal:
              ++tally.suboptimal;
              break;
            case svc::ServeStatus::kRefused:
              ++tally.refused;
              break;
            case svc::ServeStatus::kStuck:
              ++tally.stuck;
              break;
            case svc::ServeStatus::kDroppedSource:
              ++tally.dropped_source;
              break;
            case svc::ServeStatus::kDroppedNode:
              ++tally.dropped_node;
              break;
            case svc::ServeStatus::kDroppedLink:
              ++tally.dropped_link;
              break;
          }
          if (res.stale()) {
            if (res.status == svc::ServeStatus::kDeliveredOptimal) {
              ++tally.stale_delivered;
            } else if (res.status == svc::ServeStatus::kDeliveredSuboptimal) {
              ++tally.stale_detour;
            } else if (res.dropped()) {
              ++tally.stale_dropped;
            }
          }
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  stop_churn.store(true);
  writer.join();
  telemetry.tick();

  // Final consistency probe on the last published epoch.
  const svc::SnapshotPtr last = oracle.acquire();
  if (!snapshot_matches_scratch(cube, *last)) {
    consistent.store(false);
  }

  Tally total;
  obs::HistogramData latency(latency_bounds);
  for (unsigned r = 0; r < readers; ++r) {
    total.merge(tallies[r]);
    latency.merge(latencies[r]);
  }
  const std::uint64_t epochs = oracle.stats().epochs_published;
  const double wall_s = wall_ms / 1000.0;
  const double routes_per_sec =
      wall_s > 0.0 ? static_cast<double>(requests) / wall_s : 0.0;
  const double epochs_per_sec =
      wall_s > 0.0 ? static_cast<double>(epochs) / wall_s : 0.0;
  const std::uint64_t stale_total =
      total.stale_delivered + total.stale_detour + total.stale_dropped;
  const bool accounted = total.total() == requests;

  Table throughput("SERVICE: " + std::to_string(readers) + " readers vs 1 "
                       "churn writer, Q" + std::to_string(dim) + " (" +
                       std::to_string(requests) + " requests, epoch " +
                       std::to_string(last->epoch) + " final)",
                   {"metric", "value"});
  throughput.set_precision(1, 1);
  throughput.row() << "wall ms" << wall_ms;
  throughput.row() << "routes / sec" << routes_per_sec;
  throughput.row() << "epochs published" << static_cast<std::int64_t>(epochs);
  throughput.row() << "epochs / sec" << epochs_per_sec;
  bench::emit(throughput, opt);

  Table latency_table("SERVICE: serve latency (us)",
                      {"p50", "p90", "p99", "p999", "max"});
  for (unsigned c = 0; c < 5; ++c) latency_table.set_precision(c, 3);
  latency_table.row() << latency.quantile(0.5) << latency.quantile(0.9)
                      << latency.quantile(0.99) << latency.quantile(0.999)
                      << latency.max_seen;
  bench::emit(latency_table, opt);

  const auto cell = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
  Table outcomes("SERVICE: outcomes and staleness",
                 {"outcome", "count", "of which stale"});
  outcomes.row() << "delivered optimal" << cell(total.optimal)
                 << cell(total.stale_delivered);
  outcomes.row() << "delivered H+2 detour" << cell(total.suboptimal)
                 << cell(total.stale_detour);
  outcomes.row() << "source refused" << cell(total.refused) << 0;
  outcomes.row() << "dropped (source dead)" << cell(total.dropped_source)
                 << cell(total.dropped_source);
  outcomes.row() << "dropped (node died)" << cell(total.dropped_node)
                 << cell(total.dropped_node);
  outcomes.row() << "dropped (link died)" << cell(total.dropped_link)
                 << cell(total.dropped_link);
  outcomes.row() << "stuck" << cell(total.stuck) << 0;
  outcomes.row() << "no healthy pair" << cell(total.no_pair) << 0;
  bench::emit(outcomes, opt);

  std::cout << "snapshot consistency: " << total.verifications
            << " in-flight verification(s) + final epoch vs run_egs — "
            << (consistent.load() ? "bit-identical" : "MISMATCH") << '\n'
            << "staleness: " << stale_total << " of " << requests
            << " routes decided on an epoch older than the one they ran "
               "against\n";

  if (!telemetry.finish(dim, readers)) return 2;

  if (!opt.bench_json.empty()) {
    std::ofstream out(opt.bench_json, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << opt.bench_json << " for writing\n";
      return 2;
    }
    // Exact-gated fields are the run parameters and self-consistency
    // flags; latencies/rates gate as warnings; stale_*/epochs_*/outcome_*
    // are interleaving-dependent and ignored (scripts/bench_gate.py).
    out << "{\n"
        << "  \"bench\": \"service\",\n"
        << "  \"dim\": " << dim << ",\n"
        << "  \"readers\": " << readers << ",\n"
        << "  \"requests\": " << requests << ",\n"
        << "  \"churn_pause_us_param\": " << svc_opt.churn_pause_us << ",\n"
        << "  \"wall_ms\": " << wall_ms << ",\n"
        << "  \"routes_per_sec\": " << routes_per_sec << ",\n"
        << "  \"p50_us\": " << latency.quantile(0.5) << ",\n"
        << "  \"p99_us\": " << latency.quantile(0.99) << ",\n"
        << "  \"p999_us\": " << latency.quantile(0.999) << ",\n"
        << "  \"epochs_published\": " << epochs << ",\n"
        << "  \"epochs_per_sec\": " << epochs_per_sec << ",\n"
        << "  \"outcome_delivered_optimal\": " << total.optimal << ",\n"
        << "  \"outcome_delivered_suboptimal\": " << total.suboptimal << ",\n"
        << "  \"outcome_refused\": " << total.refused << ",\n"
        << "  \"outcome_stuck\": " << total.stuck << ",\n"
        << "  \"outcome_dropped\": " << total.dropped() << ",\n"
        << "  \"outcome_no_pair\": " << total.no_pair << ",\n"
        << "  \"stale_total\": " << stale_total << ",\n"
        << "  \"stale_delivered\": " << total.stale_delivered << ",\n"
        << "  \"stale_detour\": " << total.stale_detour << ",\n"
        << "  \"stale_dropped\": " << total.stale_dropped << ",\n"
        << "  \"stale_verifications\": " << total.verifications << ",\n"
        << "  \"snapshots_consistent\": "
        << (consistent.load() ? "true" : "false") << ",\n"
        << "  \"outcomes_accounted\": " << (accounted ? "true" : "false")
        << ",\n"
        << "  \"stuck_free\": " << (total.stuck == 0 ? "true" : "false")
        << "\n"
        << "}\n";
  }

  int rc = bench::finish_audit(audit.get());
  if (!consistent.load()) {
    std::cerr << "FATAL: a snapshot diverged from its from-scratch table\n";
    rc = 1;
  }
  if (!accounted) {
    std::cerr << "FATAL: outcome counts do not sum to the request count\n";
    rc = 1;
  }
  if (total.stuck != 0) {
    // Within one immutable snapshot the table is a true fixed point, so
    // a mid-route dead end is impossible — staleness only ever drops.
    std::cerr << "FATAL: " << total.stuck << " route(s) stuck on an "
              << "immutable snapshot\n";
    rc = 1;
  }
  return rc;
}
