// SERVICE — routing-as-a-service under live fault churn: the epoch layer
// (svc::SnapshotOracle) serving a thread-pool of router workers while one
// writer keeps publishing new fault configurations.
//
// Workload: `--readers` worker threads split `--requests` route requests;
// each request acquires the current snapshot, samples a healthy pair from
// it, and serves the route with svc::serve_route — decisions on the
// acquired (possibly already stale) epoch, every traversal judged against
// the latest published one. Meanwhile the churn writer applies one
// node/link event every `--churn-pause-us` (bench_egs_oracle's repair
// policy: ceilings at 2n faults, coin-flip repairs past 4), publishing
// one epoch per event and emitting node_fail/node_recover trace events.
//
// Reported: routes/sec, serve-latency p50/p90/p99/p999 (obs histograms),
// epochs published + epochs/sec, and the STALENESS split — of the routes
// that ran against a ground epoch newer than their decision epoch, how
// many were delivered anyway, delivered on the H+2 spare detour, or
// dropped in flight (every drop is stale by construction: ground ==
// decision cannot block a hop the decision tables allowed).
//
// Self-checks: every `--verify-every` requests each reader bit-compares
// its current snapshot's two views against a from-scratch run_egs of the
// snapshot's own fault configuration (the RCU guarantee), the outcome
// counts must sum to the request count, and --audit streams every route
// through the invariant-checking AuditSink. Outcome counts are
// interleaving-dependent, so the JSON baseline gates only the
// self-consistency flags, latencies, and rates (see scripts/bench_gate.py).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/egs.hpp"
#include "exp/sweep_engine.hpp"
#include "obs/metrics.hpp"
#include "svc/serve.hpp"
#include "svc/snapshot_oracle.hpp"
#include "workload/pair_sampler.hpp"

namespace {

using namespace slcube;
using Clock = std::chrono::steady_clock;

struct ServiceOptions {
  unsigned readers = 4;
  std::uint64_t requests = 1'000'000;
  unsigned churn_pause_us = 200;
  std::uint64_t verify_every = 8192;  ///< 0 = no in-flight verification
};

/// Split off the service-specific flags, leaving everything else for
/// bench::Options::parse (whose parser is strict about unknown flags).
ServiceOptions take_service_flags(int& argc, char** argv) {
  ServiceOptions svc;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << argv[0] << ": flag " << flag
                  << " is missing its value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--readers") == 0) {
      svc.readers = static_cast<unsigned>(std::atoi(value("--readers")));
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      svc.requests =
          static_cast<std::uint64_t>(std::atoll(value("--requests")));
    } else if (std::strcmp(argv[i], "--churn-pause-us") == 0) {
      svc.churn_pause_us =
          static_cast<unsigned>(std::atoi(value("--churn-pause-us")));
    } else if (std::strcmp(argv[i], "--verify-every") == 0) {
      svc.verify_every =
          static_cast<std::uint64_t>(std::atoll(value("--verify-every")));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (svc.readers == 0) svc.readers = 1;
  return svc;
}

/// Per-reader outcome tallies; merged after the join.
struct Tally {
  std::uint64_t optimal = 0;
  std::uint64_t suboptimal = 0;
  std::uint64_t refused = 0;
  std::uint64_t stuck = 0;
  std::uint64_t dropped_source = 0;
  std::uint64_t dropped_node = 0;
  std::uint64_t dropped_link = 0;
  std::uint64_t no_pair = 0;  ///< < 2 healthy nodes at sample time
  // The staleness split: routes whose ground epoch outran their decision
  // epoch mid-flight, by what the staleness cost them.
  std::uint64_t stale_delivered = 0;  ///< delivered anyway, H hops
  std::uint64_t stale_detour = 0;     ///< delivered on the H+2 spare detour
  std::uint64_t stale_dropped = 0;    ///< died against the newer epoch
  std::uint64_t verifications = 0;

  void merge(const Tally& o) {
    optimal += o.optimal;
    suboptimal += o.suboptimal;
    refused += o.refused;
    stuck += o.stuck;
    dropped_source += o.dropped_source;
    dropped_node += o.dropped_node;
    dropped_link += o.dropped_link;
    no_pair += o.no_pair;
    stale_delivered += o.stale_delivered;
    stale_detour += o.stale_detour;
    stale_dropped += o.stale_dropped;
    verifications += o.verifications;
  }
  [[nodiscard]] std::uint64_t total() const {
    return optimal + suboptimal + refused + stuck + dropped_source +
           dropped_node + dropped_link + no_pair;
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_source + dropped_node + dropped_link;
  }
};

/// The RCU contract, checked in flight: the snapshot's two views must be
/// bit-identical to a from-scratch run_egs of the snapshot's OWN fault
/// configuration, no matter how far the writer has moved on.
bool snapshot_matches_scratch(const topo::Hypercube& cube,
                              const svc::Snapshot& snap) {
  const core::EgsResult scratch = core::run_egs(cube, snap.faults, snap.links);
  return scratch.public_view == snap.public_view &&
         scratch.self_view == snap.self_view;
}

/// Serializes a non-thread-safe sink (JsonlSink) behind one mutex so
/// reader threads may share it. Lanes still interleave in the output —
/// replaying a multi-reader file through the single-lane JSONL auditor
/// will report broken chains; use --jsonl with --readers 1 for replays.
class LockedSink final : public obs::TraceSink {
 public:
  explicit LockedSink(obs::TraceSink& inner) : inner_(inner) {}
  void on_event(const obs::TraceEvent& ev) override {
    const std::lock_guard lock(mutex_);
    inner_.on_event(ev);
  }

 private:
  std::mutex mutex_;
  obs::TraceSink& inner_;
};

}  // namespace

int main(int argc, char** argv) {
  const ServiceOptions svc_opt = take_service_flags(argc, argv);
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned dim = opt.dim ? opt.dim : 10;
  const std::uint64_t seed = opt.seed ? opt.seed : 0x5E51CE;
  const unsigned readers = svc_opt.readers;
  const std::uint64_t requests = svc_opt.requests;

  const topo::Hypercube cube(dim);
  svc::SnapshotOracle oracle(cube);

  bench::TelemetrySession telemetry(opt);
  obs::Counter routes_counter;
  obs::Counter epochs_counter;
  obs::Histogram route_us_metric;
  if (telemetry.enabled()) {
    obs::Registry& reg = *telemetry.hooks().registry;
    routes_counter = reg.counter("svc.routes");
    epochs_counter = reg.counter("svc.epochs");
    route_us_metric =
        reg.histogram("svc.route_us", obs::exponential_bounds(0.05, 1.3, 48));
  }

  const auto audit = opt.make_audit_sink(dim);
  const auto jsonl = opt.make_jsonl_sink();
  std::unique_ptr<LockedSink> locked_jsonl;
  if (jsonl != nullptr) locked_jsonl = std::make_unique<LockedSink>(*jsonl);
  std::vector<obs::TraceSink*> fanout;
  if (audit != nullptr) fanout.push_back(audit.get());
  if (locked_jsonl != nullptr) fanout.push_back(locked_jsonl.get());
  obs::TeeSink tee(fanout);
  obs::TraceSink* const trace = fanout.empty() ? nullptr : &tee;

  // --- churn writer -----------------------------------------------------
  std::atomic<bool> stop_churn{false};
  std::atomic<bool> consistent{true};
  std::thread writer([&] {
    Xoshiro256ss rng = exp::substream(seed, /*stream=*/0, /*trial=*/0);
    fault::FaultSet faults(cube.num_nodes());
    fault::LinkFaultSet links(cube);
    const std::uint64_t node_ceiling = 2 * cube.dimension();
    const std::size_t link_ceiling = 2 * cube.dimension();
    while (!stop_churn.load(std::memory_order_relaxed)) {
      if (rng.chance(0.5)) {
        const bool repair = faults.count() >= node_ceiling ||
                            (faults.count() > 4 && rng.chance(0.3));
        if (repair) {
          const auto faulty = faults.faulty_nodes();
          const NodeId back = faulty[rng.below(faulty.size())];
          faults.mark_healthy(back);
          oracle.remove_fault(back);
          if (trace != nullptr) {
            obs::NodeRecoverEvent ev;
            ev.time = oracle.epoch();
            ev.node = back;
            trace->on_event(ev);
          }
        } else {
          NodeId victim;
          do {
            victim = static_cast<NodeId>(rng.below(cube.num_nodes()));
          } while (faults.is_faulty(victim));
          faults.mark_faulty(victim);
          oracle.add_fault(victim);
          if (trace != nullptr) {
            obs::NodeFailEvent ev;
            ev.time = oracle.epoch();
            ev.node = victim;
            trace->on_event(ev);
          }
        }
      } else {
        const bool repair = links.count() >= link_ceiling ||
                            (links.count() > 4 && rng.chance(0.3));
        if (repair) {
          const auto faulty = links.faulty_links();
          const auto [a, d] = faulty[rng.below(faulty.size())];
          links.mark_healthy(a, d);
          oracle.recover_link(a, d);
        } else {
          NodeId a;
          Dim d;
          do {
            a = static_cast<NodeId>(rng.below(cube.num_nodes()));
            d = static_cast<Dim>(rng.below(cube.dimension()));
          } while (links.is_faulty(a, d));
          links.mark_faulty(a, d);
          oracle.fail_link(a, d);
        }
      }
      if (telemetry.enabled()) epochs_counter.inc();
      if (svc_opt.churn_pause_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(svc_opt.churn_pause_us));
      }
    }
  });

  // --- router workers ---------------------------------------------------
  const auto latency_bounds = obs::exponential_bounds(0.05, 1.3, 48);
  std::vector<Tally> tallies(readers);
  std::vector<obs::HistogramData> latencies(readers,
                                            obs::HistogramData(latency_bounds));
  telemetry.tick();  // baseline sample before the serving phase
  const auto t0 = Clock::now();
  {
    std::vector<std::thread> pool;
    pool.reserve(readers);
    for (unsigned r = 0; r < readers; ++r) {
      const std::uint64_t share =
          requests / readers + (r < requests % readers ? 1 : 0);
      pool.emplace_back([&, r, share] {
        Xoshiro256ss rng = exp::substream(seed, /*stream=*/1 + r, 0);
        Tally& tally = tallies[r];
        obs::HistogramData& lat = latencies[r];
        svc::ServeOptions serve_opt;
        serve_opt.trace = trace;
        for (std::uint64_t i = 0; i < share; ++i) {
          const svc::SnapshotPtr snap = oracle.acquire();
          if (svc_opt.verify_every > 0 && i % svc_opt.verify_every == 0) {
            if (!snapshot_matches_scratch(cube, *snap)) {
              consistent.store(false, std::memory_order_relaxed);
            }
            ++tally.verifications;
          }
          const auto pair = workload::sample_uniform_pair(snap->faults, rng);
          if (!pair) {
            ++tally.no_pair;
            continue;
          }
          const auto start = Clock::now();
          const svc::ServeResult res =
              svc::serve_route(oracle, snap, pair->s, pair->d, serve_opt);
          const double us =
              std::chrono::duration<double, std::micro>(Clock::now() - start)
                  .count();
          lat.observe(us);
          if (telemetry.enabled()) {
            route_us_metric.observe(us);
            routes_counter.inc();
          }
          switch (res.status) {
            case svc::ServeStatus::kDeliveredOptimal:
              ++tally.optimal;
              break;
            case svc::ServeStatus::kDeliveredSuboptimal:
              ++tally.suboptimal;
              break;
            case svc::ServeStatus::kRefused:
              ++tally.refused;
              break;
            case svc::ServeStatus::kStuck:
              ++tally.stuck;
              break;
            case svc::ServeStatus::kDroppedSource:
              ++tally.dropped_source;
              break;
            case svc::ServeStatus::kDroppedNode:
              ++tally.dropped_node;
              break;
            case svc::ServeStatus::kDroppedLink:
              ++tally.dropped_link;
              break;
          }
          if (res.stale()) {
            if (res.status == svc::ServeStatus::kDeliveredOptimal) {
              ++tally.stale_delivered;
            } else if (res.status == svc::ServeStatus::kDeliveredSuboptimal) {
              ++tally.stale_detour;
            } else if (res.dropped()) {
              ++tally.stale_dropped;
            }
          }
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  stop_churn.store(true);
  writer.join();
  telemetry.tick();

  // Final consistency probe on the last published epoch.
  const svc::SnapshotPtr last = oracle.acquire();
  if (!snapshot_matches_scratch(cube, *last)) {
    consistent.store(false);
  }

  Tally total;
  obs::HistogramData latency(latency_bounds);
  for (unsigned r = 0; r < readers; ++r) {
    total.merge(tallies[r]);
    latency.merge(latencies[r]);
  }
  const std::uint64_t epochs = oracle.stats().epochs_published;
  const double wall_s = wall_ms / 1000.0;
  const double routes_per_sec =
      wall_s > 0.0 ? static_cast<double>(requests) / wall_s : 0.0;
  const double epochs_per_sec =
      wall_s > 0.0 ? static_cast<double>(epochs) / wall_s : 0.0;
  const std::uint64_t stale_total =
      total.stale_delivered + total.stale_detour + total.stale_dropped;
  const bool accounted = total.total() == requests;

  Table throughput("SERVICE: " + std::to_string(readers) + " readers vs 1 "
                       "churn writer, Q" + std::to_string(dim) + " (" +
                       std::to_string(requests) + " requests, epoch " +
                       std::to_string(last->epoch) + " final)",
                   {"metric", "value"});
  throughput.set_precision(1, 1);
  throughput.row() << "wall ms" << wall_ms;
  throughput.row() << "routes / sec" << routes_per_sec;
  throughput.row() << "epochs published" << static_cast<std::int64_t>(epochs);
  throughput.row() << "epochs / sec" << epochs_per_sec;
  bench::emit(throughput, opt);

  Table latency_table("SERVICE: serve latency (us)",
                      {"p50", "p90", "p99", "p999", "max"});
  for (unsigned c = 0; c < 5; ++c) latency_table.set_precision(c, 3);
  latency_table.row() << latency.quantile(0.5) << latency.quantile(0.9)
                      << latency.quantile(0.99) << latency.quantile(0.999)
                      << latency.max_seen;
  bench::emit(latency_table, opt);

  const auto cell = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
  Table outcomes("SERVICE: outcomes and staleness",
                 {"outcome", "count", "of which stale"});
  outcomes.row() << "delivered optimal" << cell(total.optimal)
                 << cell(total.stale_delivered);
  outcomes.row() << "delivered H+2 detour" << cell(total.suboptimal)
                 << cell(total.stale_detour);
  outcomes.row() << "source refused" << cell(total.refused) << 0;
  outcomes.row() << "dropped (source dead)" << cell(total.dropped_source)
                 << cell(total.dropped_source);
  outcomes.row() << "dropped (node died)" << cell(total.dropped_node)
                 << cell(total.dropped_node);
  outcomes.row() << "dropped (link died)" << cell(total.dropped_link)
                 << cell(total.dropped_link);
  outcomes.row() << "stuck" << cell(total.stuck) << 0;
  outcomes.row() << "no healthy pair" << cell(total.no_pair) << 0;
  bench::emit(outcomes, opt);

  std::cout << "snapshot consistency: " << total.verifications
            << " in-flight verification(s) + final epoch vs run_egs — "
            << (consistent.load() ? "bit-identical" : "MISMATCH") << '\n'
            << "staleness: " << stale_total << " of " << requests
            << " routes decided on an epoch older than the one they ran "
               "against\n";

  if (!telemetry.finish(dim, readers)) return 2;

  if (!opt.bench_json.empty()) {
    std::ofstream out(opt.bench_json, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << opt.bench_json << " for writing\n";
      return 2;
    }
    // Exact-gated fields are the run parameters and self-consistency
    // flags; latencies/rates gate as warnings; stale_*/epochs_*/outcome_*
    // are interleaving-dependent and ignored (scripts/bench_gate.py).
    out << "{\n"
        << "  \"bench\": \"service\",\n"
        << "  \"dim\": " << dim << ",\n"
        << "  \"readers\": " << readers << ",\n"
        << "  \"requests\": " << requests << ",\n"
        << "  \"churn_pause_us_param\": " << svc_opt.churn_pause_us << ",\n"
        << "  \"wall_ms\": " << wall_ms << ",\n"
        << "  \"routes_per_sec\": " << routes_per_sec << ",\n"
        << "  \"p50_us\": " << latency.quantile(0.5) << ",\n"
        << "  \"p99_us\": " << latency.quantile(0.99) << ",\n"
        << "  \"p999_us\": " << latency.quantile(0.999) << ",\n"
        << "  \"epochs_published\": " << epochs << ",\n"
        << "  \"epochs_per_sec\": " << epochs_per_sec << ",\n"
        << "  \"outcome_delivered_optimal\": " << total.optimal << ",\n"
        << "  \"outcome_delivered_suboptimal\": " << total.suboptimal << ",\n"
        << "  \"outcome_refused\": " << total.refused << ",\n"
        << "  \"outcome_stuck\": " << total.stuck << ",\n"
        << "  \"outcome_dropped\": " << total.dropped() << ",\n"
        << "  \"outcome_no_pair\": " << total.no_pair << ",\n"
        << "  \"stale_total\": " << stale_total << ",\n"
        << "  \"stale_delivered\": " << total.stale_delivered << ",\n"
        << "  \"stale_detour\": " << total.stale_detour << ",\n"
        << "  \"stale_dropped\": " << total.stale_dropped << ",\n"
        << "  \"stale_verifications\": " << total.verifications << ",\n"
        << "  \"snapshots_consistent\": "
        << (consistent.load() ? "true" : "false") << ",\n"
        << "  \"outcomes_accounted\": " << (accounted ? "true" : "false")
        << ",\n"
        << "  \"stuck_free\": " << (total.stuck == 0 ? "true" : "false")
        << "\n"
        << "}\n";
  }

  int rc = bench::finish_audit(audit.get());
  if (!consistent.load()) {
    std::cerr << "FATAL: a snapshot diverged from its from-scratch table\n";
    rc = 1;
  }
  if (!accounted) {
    std::cerr << "FATAL: outcome counts do not sum to the request count\n";
    rc = 1;
  }
  if (total.stuck != 0) {
    // Within one immutable snapshot the table is a true fixed point, so
    // a mid-route dead end is impossible — staleness only ever drops.
    std::cerr << "FATAL: " << total.stuck << " route(s) stuck on an "
              << "immutable snapshot\n";
    rc = 1;
  }
  return rc;
}
