// PERF — google-benchmark microbenchmarks: throughput of the GS fixed
// point, a single routing decision, a full unicast, the safe-node fixed
// points, and the simulator's event loop. These quantify the paper's
// cost argument (safety levels are cheap limited-global information) in
// wall-clock terms on this machine.
#include <benchmark/benchmark.h>

#include "core/global_status.hpp"
#include "core/safe_node.hpp"
#include "core/unicast.hpp"
#include "fault/injection.hpp"
#include "sim/protocol_gs.hpp"
#include "sim/protocol_unicast.hpp"
#include "workload/pair_sampler.hpp"

namespace {

using namespace slcube;

void BM_GsFixedPoint(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const topo::Hypercube cube(n);
  Xoshiro256ss rng(1);
  const auto faults = fault::inject_uniform(cube, 2 * n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_gs(cube, faults));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(cube.num_nodes()));
}
BENCHMARK(BM_GsFixedPoint)->DenseRange(6, 14, 2);

void BM_SafeNodeFixedPoint(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const topo::Hypercube cube(n);
  Xoshiro256ss rng(2);
  const auto faults = fault::inject_uniform(cube, 2 * n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_safe_nodes(
        cube, faults, core::SafeNodeRule::kWuFernandez));
  }
}
BENCHMARK(BM_SafeNodeFixedPoint)->DenseRange(6, 14, 2);

void BM_SourceDecision(benchmark::State& state) {
  const topo::Hypercube cube(10);
  Xoshiro256ss rng(3);
  const auto faults = fault::inject_uniform(cube, 20, rng);
  const auto levels = core::compute_safety_levels(cube, faults);
  NodeId s = 1, d = 1022;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decide_at_source(cube, levels, s, d));
    s = (s + 7) & 1023;
    d = (d + 13) & 1023;
  }
}
BENCHMARK(BM_SourceDecision);

void BM_RouteUnicast(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const topo::Hypercube cube(n);
  Xoshiro256ss rng(4);
  const auto faults = fault::inject_uniform(cube, n - 1, rng);
  const auto levels = core::compute_safety_levels(cube, faults);
  std::vector<workload::Pair> pairs;
  for (int i = 0; i < 256; ++i) {
    pairs.push_back(*workload::sample_uniform_pair(faults, rng));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = pairs[i++ & 255];
    benchmark::DoNotOptimize(
        core::route_unicast(cube, faults, levels, p.s, p.d));
  }
}
BENCHMARK(BM_RouteUnicast)->DenseRange(6, 14, 2);

void BM_DistributedGsRound(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const topo::Hypercube cube(n);
  Xoshiro256ss rng(5);
  const auto faults = fault::inject_uniform(cube, 2 * n, rng);
  for (auto _ : state) {
    sim::Network net(cube, faults);
    benchmark::DoNotOptimize(sim::run_gs_synchronous(net));
  }
}
BENCHMARK(BM_DistributedGsRound)->DenseRange(6, 10, 2);

void BM_SimUnicast(benchmark::State& state) {
  const topo::Hypercube cube(8);
  Xoshiro256ss rng(6);
  const auto faults = fault::inject_uniform(cube, 7, rng);
  sim::Network net(cube, faults);
  sim::run_gs_synchronous(net);
  std::vector<workload::Pair> pairs;
  for (int i = 0; i < 256; ++i) {
    pairs.push_back(*workload::sample_uniform_pair(faults, rng));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = pairs[i++ & 255];
    benchmark::DoNotOptimize(sim::route_unicast_sim(net, p.s, p.d));
  }
}
BENCHMARK(BM_SimUnicast);

void BM_ConstructiveAssignment(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const topo::Hypercube cube(n);
  Xoshiro256ss rng(7);
  const auto faults = fault::inject_uniform(cube, 2 * n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::constructive_assignment(cube, faults));
  }
}
BENCHMARK(BM_ConstructiveAssignment)->DenseRange(6, 12, 2);

}  // namespace
