// MEGA_CUBE — the Q16–Q20 scaling story for the bit-packed safety tables.
//
// Two measurements per run:
//
//  * Table build: for each dim in {14,16,18,20} (capped by --dim), sample
//    a deterministic max(2n, N/50)-fault set and run the GS fixed point
//    twice — once serial, once over the thread pool. The fixed points must be
//    bit-identical (packed_digest compares whole words, spare bits and
//    all); the run aborts if any dim disagrees. Reported per dim: rounds
//    to stabilize, serial/parallel build wall, and bytes/node of the
//    packed table (5 bits x 12 levels per u64 word ≈ 0.667 at any dim).
//
//  * Route sweep: for each dim in {14,16} (capped by --dim), route
//    --trials uniform healthy pairs on the stabilized table through the
//    sweep engine's map_fold — no per-trial result vector, just a tally
//    plus an xor-of-per-trial-mixes digest, which is a fold homomorphism
//    and therefore bit-identical at any --threads value. The smallest
//    route dim is re-run serial and compared as a self-check. Reported
//    per dim: outcome tallies and routes/sec.
//
// --bench-json writes BENCH_MEGA_CUBE.json: digests, rounds, tallies and
// bytes/node are exact fields under scripts/bench_gate.py; *_ms and
// *_per_sec are rate/time fields (warn-only drift).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/global_status.hpp"
#include "core/packed_levels.hpp"
#include "core/unicast.hpp"
#include "exp/sweep_engine.hpp"
#include "fault/fault_set.hpp"
#include "obs/span.hpp"
#include "workload/pair_sampler.hpp"

namespace {

using namespace slcube;

/// Deterministic fault set for dim d: max(2d, N/50) distinct victims from
/// the dim's own substream, independent of thread count and of the other
/// dims. 2% density keeps a mega-cube's GS cascade non-trivial (a 2n-fault
/// set in Q20 stabilizes in zero rounds) and puts faults on real routes —
/// past ~5% the paper's conservative source conditions refuse nearly
/// every request, so 2% is the densest setting that still routes.
fault::FaultSet sample_faults(const topo::Hypercube& cube,
                              std::uint64_t seed) {
  auto rng = exp::substream(seed, /*stream=*/cube.dimension(), /*trial=*/0);
  fault::FaultSet f(cube.num_nodes());
  const std::uint64_t want =
      std::max<std::uint64_t>(2 * cube.dimension(), cube.num_nodes() / 50);
  while (f.count() < want) {
    const auto victim = static_cast<NodeId>(rng.below(cube.num_nodes()));
    if (f.is_healthy(victim)) f.mark_faulty(victim);
  }
  return f;
}

struct BuildRow {
  unsigned dim = 0;
  unsigned rounds = 0;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  std::uint64_t digest = 0;
  double bytes_per_node = 0.0;
};

/// Build the fixed point serial and parallel; abort on any divergence —
/// rounds, per-round change counts, or table words.
BuildRow build_tables(const topo::Hypercube& cube,
                      const fault::FaultSet& faults, unsigned threads) {
  BuildRow row;
  row.dim = cube.dimension();

  core::GsOptions serial_opt;
  serial_opt.threads = 1;
  const obs::Stopwatch serial_clock;
  const auto serial = core::run_gs(cube, faults, serial_opt);
  row.serial_ms = serial_clock.millis();

  core::GsOptions parallel_opt;
  parallel_opt.threads = threads;
  const obs::Stopwatch parallel_clock;
  const auto parallel = core::run_gs(cube, faults, parallel_opt);
  row.parallel_ms = parallel_clock.millis();

  if (serial.levels.packed() != parallel.levels.packed() ||
      serial.rounds_to_stabilize != parallel.rounds_to_stabilize ||
      serial.changes_per_round != parallel.changes_per_round) {
    std::cerr << "FATAL: serial and parallel GS diverged at Q" << row.dim
              << " — the parallel rounds are not deterministic\n";
    std::exit(1);
  }

  row.rounds = serial.rounds_to_stabilize;
  row.digest = core::packed_digest(serial.levels.packed());
  row.bytes_per_node =
      static_cast<double>(serial.levels.packed().storage_bytes()) /
      static_cast<double>(cube.num_nodes());
  return row;
}

struct RouteTally {
  std::uint64_t optimal = 0;
  std::uint64_t suboptimal = 0;
  std::uint64_t refused = 0;
  std::uint64_t stuck = 0;
  std::uint64_t hops = 0;
  std::uint64_t digest = 0;  ///< xor of per-trial mixes (order-free)

  void add(const RouteTally& o) {
    optimal += o.optimal;
    suboptimal += o.suboptimal;
    refused += o.refused;
    stuck += o.stuck;
    hops += o.hops;
    digest ^= o.digest;
  }
};

struct RouteRow {
  unsigned dim = 0;
  double wall_ms = 0.0;
  double utilization = 0.0;
  double routes_per_sec = 0.0;
  RouteTally tally;
};

/// Route `requests` uniform healthy pairs on a fixed table. The digest
/// xors one mix per trial, so map_fold's chunk merge is order-free and
/// the result is bit-identical at any worker count.
RouteRow run_routes(const topo::Hypercube& cube, const fault::FaultSet& faults,
                    const core::SafetyLevels& levels, std::size_t requests,
                    std::uint64_t seed, unsigned threads) {
  exp::SweepEngine engine({threads, seed, nullptr, nullptr});
  RouteRow row;
  row.dim = cube.dimension();

  const auto body = [&](exp::TrialContext& ctx) {
    RouteTally t;
    const auto pair = workload::sample_uniform_pair(faults, ctx.rng);
    if (!pair) return t;  // cannot happen: 2% faults never exhaust Q14+
    const auto r = core::route_unicast(cube, faults, levels, pair->s, pair->d);
    t.optimal += r.status == core::RouteStatus::kDeliveredOptimal;
    t.suboptimal += r.status == core::RouteStatus::kDeliveredSuboptimal;
    t.refused += r.status == core::RouteStatus::kSourceRefused;
    t.stuck += r.status == core::RouteStatus::kStuck;
    const std::uint64_t hops = r.delivered() ? r.hops() : 0;
    t.hops += hops;
    t.digest = exp::mix64(
        (ctx.trial + 1) * 0x9e3779b97f4a7c15ull ^
        (static_cast<std::uint64_t>(r.status) + 1) * 0xbf58476d1ce4e5b9ull ^
        hops);
    return t;
  };

  exp::EngineTiming timing;
  row.tally = engine.map_fold<RouteTally>(
      /*stream=*/100 + cube.dimension(), requests, body,
      [](RouteTally& acc, const RouteTally& t) { acc.add(t); },
      [](RouteTally& acc, const RouteTally& t) { acc.add(t); }, &timing);
  row.wall_ms = timing.wall_ms;
  row.utilization = timing.utilization;
  row.routes_per_sec = timing.wall_ms > 0.0
                           ? static_cast<double>(requests) /
                                 (timing.wall_ms / 1000.0)
                           : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned max_dim =
      std::min(opt.dim ? opt.dim : 20u, topo::Hypercube::kMaxDimension);
  const std::size_t requests = opt.trials ? opt.trials : 200000;
  const std::uint64_t seed = opt.seed ? opt.seed : 0x3E6AC0BEull;

  std::vector<unsigned> build_dims;
  for (unsigned d : {14u, 16u, 18u, 20u}) {
    if (d <= max_dim) build_dims.push_back(d);
  }
  if (build_dims.empty()) build_dims.push_back(max_dim);
  std::vector<unsigned> route_dims;
  for (unsigned d : {14u, 16u}) {
    if (d <= max_dim) route_dims.push_back(d);
  }
  if (route_dims.empty()) route_dims.push_back(max_dim);

  std::vector<BuildRow> builds;
  for (unsigned d : build_dims) {
    const topo::Hypercube cube(d);
    builds.push_back(
        build_tables(cube, sample_faults(cube, seed), opt.threads));
  }

  std::vector<RouteRow> routes;
  for (unsigned d : route_dims) {
    const topo::Hypercube cube(d);
    const auto faults = sample_faults(cube, seed);
    const auto levels = core::compute_safety_levels(cube, faults, opt.threads);
    routes.push_back(
        run_routes(cube, faults, levels, requests, seed, opt.threads));
  }

  // Self-check: the smallest route sweep, re-run serial, must reproduce
  // the threaded digest and tallies exactly (map_fold homomorphism).
  {
    const unsigned d = route_dims.front();
    const topo::Hypercube cube(d);
    const auto faults = sample_faults(cube, seed);
    const auto levels = core::compute_safety_levels(cube, faults, 1);
    const auto serial = run_routes(cube, faults, levels, requests, seed, 1);
    const RouteRow& threaded = routes.front();
    if (serial.tally.digest != threaded.tally.digest ||
        serial.tally.optimal != threaded.tally.optimal ||
        serial.tally.hops != threaded.tally.hops) {
      std::cerr << "FATAL: serial and threaded route sweeps diverged at Q"
                << d << " — map_fold is not thread-invariant\n";
      return 1;
    }
  }

  const unsigned workers = static_cast<unsigned>(std::max<std::size_t>(
      1, exp::SweepEngine({opt.threads, seed, nullptr, nullptr}).workers()));

  Table build_table(
      "MEGA_CUBE: packed GS fixed point, max(2n, 2%) faults, " +
          std::to_string(workers) + " workers",
      {"dim", "nodes", "rounds", "serial ms", "parallel ms", "speedup",
       "bytes/node", "digest"});
  build_table.set_precision(3, 1);
  build_table.set_precision(4, 1);
  build_table.set_precision(5, 2);
  build_table.set_precision(6, 3);
  for (const BuildRow& b : builds) {
    build_table.row() << b.dim << (std::uint64_t{1} << b.dim) << b.rounds
                      << b.serial_ms << b.parallel_ms
                      << (b.parallel_ms > 0.0 ? b.serial_ms / b.parallel_ms
                                              : 0.0)
                      << b.bytes_per_node << std::to_string(b.digest);
  }
  bench::emit(build_table, opt);

  Table route_table(
      "MEGA_CUBE: unicast sweep on the packed table (" +
          std::to_string(requests) + " requests/dim)",
      {"dim", "optimal", "suboptimal", "refused", "stuck", "wall ms",
       "routes/s"});
  route_table.set_precision(5, 1);
  route_table.set_precision(6, 0);
  for (const RouteRow& r : routes) {
    route_table.row() << r.dim << r.tally.optimal << r.tally.suboptimal
                      << r.tally.refused << r.tally.stuck << r.wall_ms
                      << r.routes_per_sec;
  }
  bench::emit(route_table, opt);

  std::cout << "serial/parallel tables identical at every dim: yes\n"
            << "serial/threaded route digests identical at Q"
            << route_dims.front() << ": yes\n";

  if (!opt.bench_json.empty()) {
    std::ofstream out(opt.bench_json, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << opt.bench_json << " for writing\n";
      return 2;
    }
    out << "{\n"
        << "  \"bench\": \"mega_cube\",\n"
        << "  \"max_dim\": " << max_dim << ",\n"
        << "  \"route_requests\": " << requests << ",\n"
        << "  \"workers\": " << workers << ",\n"
        << "  \"tables_identical\": true,\n";
    for (const BuildRow& b : builds) {
      const std::string q = "q" + std::to_string(b.dim);
      out << "  \"build_" << q << "_rounds\": " << b.rounds << ",\n"
          << "  \"build_" << q << "_serial_ms\": " << b.serial_ms << ",\n"
          << "  \"build_" << q << "_parallel_ms\": " << b.parallel_ms << ",\n"
          << "  \"table_digest_" << q << "\": " << b.digest << ",\n"
          << "  \"bytes_per_node_" << q << "\": " << b.bytes_per_node
          << ",\n";
    }
    bool first = true;
    for (const RouteRow& r : routes) {
      const std::string q = "q" + std::to_string(r.dim);
      out << (first ? "" : ",\n") << "  \"routes_" << q
          << "_optimal\": " << r.tally.optimal << ",\n"
          << "  \"routes_" << q << "_suboptimal\": " << r.tally.suboptimal
          << ",\n"
          << "  \"routes_" << q << "_refused\": " << r.tally.refused << ",\n"
          << "  \"routes_" << q << "_stuck\": " << r.tally.stuck << ",\n"
          << "  \"routes_" << q << "_hops\": " << r.tally.hops << ",\n"
          << "  \"routes_" << q << "_digest\": " << r.tally.digest << ",\n"
          << "  \"routes_" << q << "_wall_ms\": " << r.wall_ms << ",\n"
          << "  \"routes_" << q << "_per_sec\": " << r.routes_per_sec;
      first = false;
    }
    out << "\n}\n";
  }
  return 0;
}
