// PATTERNS — the communication kernels real hypercube algorithms
// generate (bit-complement, bit-reversal, transpose, shuffle, dimension
// exchange, random permutation), routed with the safety-level scheme on
// faulty Q8 machines. Patterns stress routing very differently from
// uniform pairs: bit-complement puts every packet at H = n, so the
// source needs a full level-n certificate, while dimension exchange
// (H = 1) is nearly indestructible. The health-metrics columns report
// what the fault pattern does to the machine itself (healthy diameter /
// stretch), bounding what any router could achieve.
#include <iostream>

#include "analysis/fault_metrics.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/global_status.hpp"
#include "core/unicast.hpp"
#include "fault/injection.hpp"
#include "topology/topology_view.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned trials = opt.trials ? opt.trials : 60;
  const std::uint64_t seed = opt.seed ? opt.seed : 0xBA77;
  bool ok = true;

  const topo::Hypercube cube(8);
  const topo::HypercubeView view(cube);
  Xoshiro256ss rng(seed);

  for (const std::uint64_t fc : {4ull, 7ull, 16ull, 32ull}) {
    Table t("PATTERNS: safety-level routing under traffic kernels, Q8, " +
                std::to_string(fc) + " faults (" + std::to_string(trials) +
                " trials/pattern)",
            {"pattern", "avg H", "delivered%", "optimal%", "suboptimal%",
             "refused%"});
    for (std::size_t c = 1; c <= 5; ++c) t.set_precision(c, 2);

    RunningStat diameter, stretch;
    for (const workload::Pattern p : workload::kAllPatterns) {
      RunningStat hamming;
      Ratio delivered, optimal, suboptimal, refused;
      for (unsigned trial = 0; trial < trials; ++trial) {
        const auto f = fault::inject_uniform(cube, fc, rng);
        const auto lv = core::compute_safety_levels(cube, f);
        if (p == workload::kAllPatterns[0]) {
          const auto hm = analysis::compute_health_metrics(view, f);
          diameter.add(hm.diameter);
          stretch.add(hm.avg_stretch);
        }
        for (const auto& pair :
             workload::generate_pattern(cube, f, p, rng)) {
          hamming.add(cube.distance(pair.s, pair.d));
          const auto r = core::route_unicast(cube, f, lv, pair.s, pair.d);
          delivered.add(r.delivered());
          refused.add(r.status == core::RouteStatus::kSourceRefused);
          if (r.delivered()) {
            optimal.add(r.status == core::RouteStatus::kDeliveredOptimal);
            suboptimal.add(r.status ==
                           core::RouteStatus::kDeliveredSuboptimal);
          }
        }
      }
      t.row() << std::string(workload::to_string(p)) << hamming.mean()
              << delivered.percent() << optimal.percent()
              << suboptimal.percent() << refused.percent();
      if (fc < cube.dimension()) ok &= delivered.value() == 1.0;
    }
    bench::emit(t, opt);
    std::cout << "machine health at " << fc
              << " faults: healthy diameter avg " << diameter.mean()
              << " (fault-free: 8), forced stretch avg " << stretch.mean()
              << "\n\n";
  }
  std::cout << "PATTERNS claim (full delivery below n faults on every "
               "kernel): "
            << (ok ? "HOLDS" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
