// DIAGNOSIS — routing on beliefs: ground-truth vs diagnosed vs
// adversarial fault pictures (src/diag + exp::adversarial_search).
//
// Arms, all through the identical run_diagnosis_sweep code path:
//   ground   — presumed == ground truth (the control; misroutes must be 0)
//   pmc-rand — PMC tests, faulty testers flip coins
//   pmc-adv  — PMC tests, faulty testers lie adversarially
//   mm-adv   — MM* comparison tests, adversarial liars
//   adv-place— pmc-adv on the WORST fault placement the adversarial
//              search finds (vs its own random-placement control)
// The pmc-adv arm runs twice, serial and at --threads, and the run
// aborts if the digests differ — the determinism witness. With --audit
// every route's trace (including its misroute postmortem) streams
// through obs::AuditSink, and the audit's per-class misroute counts are
// cross-checked against the sweep's own tallies. --bench-json writes
// BENCH_DIAG.json for the CI perf gate; --telemetry reruns pmc-adv with
// the flight recorder attached and digest-checks it too.
#include <fstream>
#include <iostream>
#include <map>
#include <memory>

#include "bench_util.hpp"
#include "exp/adversarial.hpp"
#include "workload/experiment.hpp"

using namespace slcube;

namespace {

struct ArmResult {
  std::string name;
  std::vector<workload::DiagSweepPoint> points;
  std::uint64_t digest = 0;
  double wall_ms = 0.0;
  std::uint64_t attempts = 0;
  std::uint64_t delivered = 0;
  std::uint64_t misrouted = 0;
  std::uint64_t false_rejects = 0;
  std::uint64_t optimism_drops = 0;
  std::uint64_t pessimism_detours = 0;
};

ArmResult run_arm(const std::string& name, workload::DiagSweepConfig config) {
  ArmResult arm;
  arm.name = name;
  arm.points = run_diagnosis_sweep(config);
  for (const auto& p : arm.points) {
    arm.digest = exp::mix64(arm.digest ^ p.digest);
    arm.wall_ms += p.timing.wall_ms;
    arm.attempts += p.delivered.total();
    arm.delivered += p.delivered.hits();
    arm.misrouted += p.misrouted.hits();
    arm.false_rejects += p.false_rejects;
    arm.optimism_drops += p.optimism_drops;
    arm.pessimism_detours += p.pessimism_detours;
  }
  return arm;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const std::vector<unsigned> dims =
      opt.dim ? std::vector<unsigned>{opt.dim} : std::vector<unsigned>{5, 6, 7};
  const unsigned trials = opt.trials ? opt.trials : 120;
  const unsigned pairs = 24;
  const std::uint64_t seed = opt.seed ? opt.seed : 0xD1A6;

  // The audit's structural checks are dimension-aware, so each swept
  // dimension gets its own sink; reports are merged at the end.
  const auto jsonl = opt.make_jsonl_sink();
  std::vector<std::unique_ptr<obs::AuditSink>> audits;
  std::vector<std::unique_ptr<obs::TeeSink>> tees;
  for (const unsigned dim : dims) {
    audits.push_back(opt.make_audit_sink(dim));
    std::vector<obs::TraceSink*> fan;
    if (jsonl) fan.push_back(jsonl.get());
    if (audits.back()) fan.push_back(audits.back().get());
    tees.push_back(fan.empty() ? nullptr
                               : std::make_unique<obs::TeeSink>(fan));
  }

  bench::TelemetrySession telemetry(opt);

  const auto base_config = [&](std::size_t di) {
    const unsigned dim = dims[di];
    workload::DiagSweepConfig c;
    c.dimension = dim;
    const std::uint64_t n = dim;
    const std::uint64_t nodes = std::uint64_t{1} << dim;
    c.fault_counts = {n, nodes / 8, nodes / 4};
    c.trials = trials;
    c.pairs = pairs;
    c.seed = seed + dim;  // per-dim substream family
    c.threads = opt.threads;
    c.trace = tees[di].get();
    // Per-route events stream only into the (internally synchronized)
    // audit sink; JsonlSink is single-threaded and gets point events only.
    c.route_trace = audits[di].get();
    return c;
  };

  ArmResult ground, pmc_rand, pmc_adv, mm_adv;
  std::uint64_t pmc_adv_serial_digest = 0;
  for (std::size_t di = 0; di < dims.size(); ++di) {
    const auto accumulate = [&](ArmResult& into, const ArmResult& part) {
      into.name = part.name;
      into.digest = exp::mix64(into.digest ^ part.digest);
      into.wall_ms += part.wall_ms;
      into.attempts += part.attempts;
      into.delivered += part.delivered;
      into.misrouted += part.misrouted;
      into.false_rejects += part.false_rejects;
      into.optimism_drops += part.optimism_drops;
      into.pessimism_detours += part.pessimism_detours;
      for (const auto& p : part.points) into.points.push_back(p);
    };

    {
      auto c = base_config(di);
      c.ground_truth_arm = true;
      accumulate(ground, run_arm("ground", c));
    }
    {
      auto c = base_config(di);
      c.syndrome = {diag::TestModel::kPmc, diag::LiarPolicy::kRandom};
      accumulate(pmc_rand, run_arm("pmc-rand", c));
    }
    {
      auto c = base_config(di);
      c.syndrome = {diag::TestModel::kPmc, diag::LiarPolicy::kAdversarial};
      accumulate(pmc_adv, run_arm("pmc-adv", c));
      // Determinism witness: the identical sweep, serial, without the
      // shared sinks (tracing cannot change results; skipping it keeps
      // the audit stream free of duplicate routes).
      c.threads = 1;
      c.trace = nullptr;
      c.route_trace = nullptr;
      const ArmResult serial = run_arm("pmc-adv-serial", c);
      pmc_adv_serial_digest = exp::mix64(pmc_adv_serial_digest ^ serial.digest);
    }
    {
      auto c = base_config(di);
      c.syndrome = {diag::TestModel::kMmStar, diag::LiarPolicy::kAdversarial};
      accumulate(mm_adv, run_arm("mm-adv", c));
    }
  }

  if (pmc_adv.digest != pmc_adv_serial_digest) {
    std::cerr << "FATAL: pmc-adv digests diverged between --threads and "
                 "serial — the diagnosis sweep is not deterministic\n";
    return 1;
  }

  // Adversarial placement search on one dimension (the first), both
  // objectives, then a diagnosed sweep pinned to the worst placement.
  const unsigned adv_dim = dims.front();
  const topo::Hypercube adv_cube(adv_dim);
  exp::AdversarialConfig adv;
  adv.fault_count = 2 * adv_dim;
  adv.seed = seed;
  adv.threads = opt.threads;
  adv.objective = exp::Objective::kSourceRejects;
  const exp::AdversarialResult rejects =
      exp::adversarial_search(adv_cube, adv);
  adv.objective = exp::Objective::kDetours;
  const exp::AdversarialResult detours =
      exp::adversarial_search(adv_cube, adv);
  const bool beats_random = rejects.best_score > rejects.random_best &&
                            detours.best_score > detours.random_best;

  ArmResult adv_place;
  {
    auto c = base_config(0);
    c.syndrome = {diag::TestModel::kPmc, diag::LiarPolicy::kAdversarial};
    c.fault_counts = {adv.fault_count};
    c.fixed_faults = &rejects.best;
    adv_place = run_arm("adv-place", c);
  }

  const std::vector<const ArmResult*> arms = {&ground, &pmc_rand, &pmc_adv,
                                              &mm_adv, &adv_place};
  Table table(
      "DIAGNOSIS: routing on the believed fault set (dims " +
          std::to_string(dims.front()) + ".." + std::to_string(dims.back()) +
          ", " + std::to_string(trials) + " trials x " +
          std::to_string(pairs) + " pairs per point)",
      {"arm", "attempts", "delivered", "misrouted", "false rej", "opt drop",
       "pess detour", "wall ms"});
  table.set_precision(7, 1);
  for (const ArmResult* a : arms) {
    table.row() << a->name.c_str() << static_cast<std::int64_t>(a->attempts)
                << static_cast<std::int64_t>(a->delivered)
                << static_cast<std::int64_t>(a->misrouted)
                << static_cast<std::int64_t>(a->false_rejects)
                << static_cast<std::int64_t>(a->optimism_drops)
                << static_cast<std::int64_t>(a->pessimism_detours)
                << a->wall_ms;
  }
  bench::emit(table, opt);

  Table search("ADVERSARIAL SEARCH: worst " + std::to_string(adv.fault_count) +
                   "-fault placement, Q" + std::to_string(adv_dim) + " (" +
                   std::to_string(adv.probes) + " probes, " +
                   std::to_string(adv.restarts) + " restarts)",
               {"objective", "best", "random best", "random mean", "evals"});
  search.set_precision(3, 2);
  search.row() << "source-rejects"
               << static_cast<std::int64_t>(rejects.best_score)
               << static_cast<std::int64_t>(rejects.random_best)
               << rejects.random_mean
               << static_cast<std::int64_t>(rejects.evals);
  search.row() << "detours" << static_cast<std::int64_t>(detours.best_score)
               << static_cast<std::int64_t>(detours.random_best)
               << detours.random_mean
               << static_cast<std::int64_t>(detours.evals);
  bench::emit(search, opt);

  std::cout << "pmc-adv digest identical at --threads and serial: yes ("
            << pmc_adv.digest << ")\n"
            << "adversarial search beats random placement: "
            << (beats_random ? "yes" : "NO") << "\n";

  int audit_rc = 0;
  if (opt.audit) {
    // The audited arms' own tallies must reappear, class by class, in
    // the merged per-dimension audit attribution — every misroute
    // accounted for and classified.
    std::uint64_t misroutes = 0;
    std::map<std::string, std::uint64_t> by_class;
    for (const auto& audit : audits) {
      const int rc = bench::finish_audit(audit.get());
      if (rc != 0) audit_rc = rc;
      const obs::AuditReport report = audit->report();
      misroutes += report.misroutes;
      for (const auto& [cls, n] : report.misroutes_by_class) {
        by_class[cls] += n;
      }
    }
    std::uint64_t want_fr = 0, want_od = 0, want_pd = 0, want_attempts = 0;
    for (const ArmResult* a : arms) {
      want_fr += a->false_rejects;
      want_od += a->optimism_drops;
      want_pd += a->pessimism_detours;
      want_attempts += a->attempts;
    }
    const bool attribution_ok =
        by_class["false-reject-source"] == want_fr &&
        by_class["optimism-drop"] == want_od &&
        by_class["pessimism-detour"] == want_pd &&
        misroutes == want_fr + want_od + want_pd &&
        by_class["none"] == want_attempts - (want_fr + want_od + want_pd);
    std::cout << "audit attribution matches sweep tallies: "
              << (attribution_ok ? "yes" : "NO") << "\n";
    if (!attribution_ok) {
      std::cerr << "FATAL: audit misroute attribution disagrees with the "
                   "sweep tallies\n";
      return 1;
    }
  }

  double telemetry_ms = 0.0;
  if (telemetry.enabled()) {
    auto c = base_config(0);
    c.syndrome = {diag::TestModel::kPmc, diag::LiarPolicy::kAdversarial};
    c.trace = nullptr;
    c.route_trace = nullptr;
    c.instrumentation = telemetry.hooks();
    const ArmResult telemetered = run_arm("pmc-adv-telemetry", c);
    std::uint64_t want = 0;
    {
      auto plain = base_config(0);
      plain.syndrome = {diag::TestModel::kPmc, diag::LiarPolicy::kAdversarial};
      plain.trace = nullptr;
      plain.route_trace = nullptr;
      want = run_arm("pmc-adv-plain", plain).digest;
    }
    if (telemetered.digest != want) {
      std::cerr << "FATAL: telemetry-enabled run diverged\n";
      return 1;
    }
    telemetry_ms = telemetered.wall_ms;
    if (!telemetry.finish(dims.front(), opt.threads)) return 2;
    std::cout << "telemetry: digest matches untelemetered run ("
              << opt.telemetry_file << ")\n";
  }

  if (!opt.bench_json.empty()) {
    std::ofstream out(opt.bench_json, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot open " << opt.bench_json << " for writing\n";
      return 2;
    }
    out << "{\n"
        << "  \"bench\": \"diagnosis\",\n"
        << "  \"dims\": \"" << dims.front() << ".." << dims.back() << "\",\n"
        << "  \"trials\": " << trials << ",\n"
        << "  \"pairs\": " << pairs << ",\n";
    for (const ArmResult* a : arms) {
      std::string key = a->name;
      for (char& ch : key) {
        if (ch == '-') ch = '_';
      }
      out << "  \"" << key << "_attempts\": " << a->attempts << ",\n"
          << "  \"" << key << "_delivered\": " << a->delivered << ",\n"
          << "  \"" << key << "_misrouted\": " << a->misrouted << ",\n"
          << "  \"" << key << "_false_rejects\": " << a->false_rejects
          << ",\n"
          << "  \"" << key << "_optimism_drops\": " << a->optimism_drops
          << ",\n"
          << "  \"" << key << "_pessimism_detours\": " << a->pessimism_detours
          << ",\n"
          << "  \"" << key << "_digest\": " << a->digest << ",\n"
          << "  \"" << key << "_wall_ms\": " << a->wall_ms << ",\n";
    }
    if (telemetry.enabled()) {
      out << "  \"telemetry_wall_ms\": " << telemetry_ms << ",\n";
    }
    out << "  \"adv_fault_count\": " << adv.fault_count << ",\n"
        << "  \"adv_rejects_best\": " << rejects.best_score << ",\n"
        << "  \"adv_rejects_random_best\": " << rejects.random_best << ",\n"
        << "  \"adv_detours_best\": " << detours.best_score << ",\n"
        << "  \"adv_detours_random_best\": " << detours.random_best << ",\n"
        << "  \"adv_evals\": " << rejects.evals + detours.evals << ",\n"
        << "  \"adversarial_beats_random\": "
        << (beats_random ? "true" : "false") << ",\n"
        << "  \"threads_invariant\": true\n"
        << "}\n";
  }

  if (audit_rc != 0) return audit_rc;
  return beats_random ? 0 : 1;
}
