// COMP — the Section 1 qualitative comparison made quantitative: the
// safety-level router against all six baselines on identical fault sets
// and unicast pairs. Reports delivery, optimality, bound adherence,
// traffic, refusal correctness and preparation rounds per fault count.
// Also runs DESIGN.md ablation #1 (lowest-dim vs random tie-break).
#include <iostream>

#include "baselines/chiu_wu.hpp"
#include "baselines/dfs_backtrack.hpp"
#include "baselines/ecube.hpp"
#include "baselines/greedy_local.hpp"
#include "baselines/lee_hayes.hpp"
#include "baselines/safety_level_router.hpp"
#include "baselines/sidetrack.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "workload/experiment.hpp"

namespace {

using namespace slcube;

// The safety-level router is the only baseline that traces (and the only
// one whose invariants the auditor knows); `trace` may be null.
workload::RouterFactory full_factory(obs::TraceSink* trace) {
  return [trace](std::uint64_t seed) {
    core::UnicastOptions traced;
    traced.trace = trace;
    std::vector<std::unique_ptr<routing::Router>> v;
    v.push_back(std::make_unique<baselines::SafetyLevelRouter>(traced));
    v.push_back(std::make_unique<baselines::LeeHayesRouter>());
    v.push_back(std::make_unique<baselines::ChiuWuRouter>());
    v.push_back(std::make_unique<baselines::DfsBacktrackRouter>());
    v.push_back(std::make_unique<baselines::SidetrackRouter>(seed * 2 + 1));
    v.push_back(std::make_unique<baselines::GreedyLocalRouter>());
    v.push_back(std::make_unique<baselines::EcubeRouter>());
    return v;
  };
}

void print_point(const workload::SweepPoint& point,
                 const bench::Options& opt, const std::string& title) {
  Table t(title,
          {"router", "delivered%", "optimal%", "<=H+2%", "avg traffic",
           "refused%", "refusal ok%"});
  for (std::size_t c = 1; c <= 6; ++c) t.set_precision(c, 2);
  for (const auto& [name, m] : point.per_router) {
    t.row() << name << m.delivered.percent() << m.optimal.percent()
            << m.bound_h2.percent() << m.traffic.mean()
            << m.refused.percent() << m.refusal_correct.percent();
  }
  bench::emit(t, opt);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const auto jsonl = opt.make_jsonl_sink();

  workload::SweepConfig cfg;
  cfg.dimension = opt.dim ? opt.dim : 7;
  const auto audit = opt.make_audit_sink(cfg.dimension);
  // Sweep points go to both sinks; route events from the safety-level
  // router reach the auditor through the factory below.
  obs::TeeSink tee({jsonl.get(), audit.get()});
  // With --dim below 7, drop the points a smaller cube cannot host.
  cfg.fault_counts = {2, 6, 10, 16, 24, 40};
  std::erase_if(cfg.fault_counts, [&](std::uint64_t f) {
    return f + 2 > (1ull << cfg.dimension);
  });
  cfg.trials = opt.trials ? opt.trials : 120;
  cfg.pairs = 24;
  cfg.seed = opt.seed ? opt.seed : 0xC0111;
  cfg.threads = opt.threads;
  cfg.trace = &tee;
  bench::TelemetrySession telemetry(opt);
  cfg.instrumentation = telemetry.hooks();
  const std::string cube = "Q" + std::to_string(cfg.dimension);

  const auto points = workload::run_routing_sweep(cfg, full_factory(audit.get()));
  for (const auto& p : points) {
    print_point(p, opt,
                "COMP: " + cube + " uniform faults = " +
                    std::to_string(p.fault_count) +
                    " (" + std::to_string(cfg.trials) + " fault sets, " +
                    std::to_string(cfg.pairs) + " pairs each, disconnected " +
                    percent(p.disconnected.value()) + ")");
  }

  // Clustered faults stress locality.
  cfg.injection = workload::InjectionKind::kClustered;
  cfg.fault_counts = {10, 24};
  std::erase_if(cfg.fault_counts, [&](std::uint64_t f) {
    return f + 2 > (1ull << cfg.dimension);
  });
  const auto clustered = workload::run_routing_sweep(cfg, full_factory(audit.get()));
  for (const auto& p : clustered) {
    print_point(p, opt,
                "COMP (clustered faults = " + std::to_string(p.fault_count) +
                    ")");
  }

  // Ablation #1: tie-break policy of the safety-level router.
  workload::SweepConfig ab = cfg;
  ab.injection = workload::InjectionKind::kUniform;
  ab.fault_counts = {10, 24};
  std::erase_if(ab.fault_counts, [&](std::uint64_t f) {
    return f + 2 > (1ull << ab.dimension);
  });
  const auto ablation = workload::run_routing_sweep(
      ab, [&audit](std::uint64_t seed) {
        core::UnicastOptions traced;
        traced.trace = audit.get();
        std::vector<std::unique_ptr<routing::Router>> v;
        v.push_back(std::make_unique<baselines::SafetyLevelRouter>(traced));
        auto random_tie =
            baselines::SafetyLevelRouter::with_random_tie_break(seed);
        v.push_back(std::make_unique<baselines::SafetyLevelRouter>(
            std::move(random_tie)));
        return v;
      });
  for (const auto& p : ablation) {
    Table t("ABLATION #1: tie-break (both rows are the safety-level "
            "router), faults = " + std::to_string(p.fault_count),
            {"variant", "delivered%", "optimal%", "avg traffic"});
    for (std::size_t c = 1; c <= 3; ++c) t.set_precision(c, 2);
    const char* names[] = {"lowest-dim", "random"};
    for (std::size_t i = 0; i < p.per_router.size(); ++i) {
      const auto& m = p.per_router[i].second;
      t.row() << std::string(names[i]) << m.delivered.percent()
              << m.optimal.percent() << m.traffic.mean();
    }
    bench::emit(t, opt);
  }
  if (!telemetry.finish(cfg.dimension, cfg.threads)) return 2;
  return bench::finish_audit(audit.get());
}
