// ROUNDS — the cost-of-information comparison behind Section 2.3 and the
// Corollary:
//   * GS always stabilizes within n-1 rounds (checked for adversarial
//     patterns, not just uniform ones);
//   * the Lee-Hayes / Wu-Fernandez safe-node computations can need far
//     more rounds (the paper cites O(n^2) worst case) — we construct
//     cascading "staircase" patterns that push them well past n-1;
//   * DESIGN.md ablation #2: optimistic (paper) vs pessimistic GS start.
#include <algorithm>
#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/global_status.hpp"
#include "core/safe_node.hpp"
#include "fault/injection.hpp"

namespace {

using namespace slcube;

/// A fault pattern engineered to cascade: faults along a Gray-code walk
/// so each new unsafe classification enables the next.
fault::FaultSet staircase(const topo::Hypercube& cube, unsigned pairs) {
  fault::FaultSet f(cube.num_nodes());
  NodeId walk = 0;
  for (unsigned i = 0; i < pairs; ++i) {
    // Two adjacent faults per step seed a Lee-Hayes unsafe wave.
    f.mark_faulty(walk);
    f.mark_faulty(bits::flip(walk, 0));
    walk = bits::flip(bits::flip(walk, i % cube.dimension()),
                      (i + 1) % cube.dimension());
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned trials = opt.trials ? opt.trials : 400;
  const std::uint64_t seed = opt.seed ? opt.seed : 0x20175;
  bool ok = true;

  // Part 1: worst observed rounds per dimension, three fault regimes.
  Table t("ROUNDS: worst observed stabilization rounds (bound for GS is "
          "n-1; LH/WF have no such bound)",
          {"n", "regime", "gs worst", "lh worst", "wf worst"});
  for (const unsigned n : {5u, 6u, 7u, 8u}) {
    const topo::Hypercube cube(n);
    Xoshiro256ss rng(seed + n);
    struct Regime {
      const char* name;
      std::function<fault::FaultSet()> gen;
    };
    const Regime regimes[] = {
        {"uniform n", [&] { return fault::inject_uniform(cube, n, rng); }},
        {"uniform N/4",
         [&] { return fault::inject_uniform(cube, cube.num_nodes() / 4, rng); }},
        {"clustered 2n",
         [&] { return fault::inject_clustered(cube, 2 * n, rng); }},
        {"staircase",
         [&] { return staircase(cube, n); }},
    };
    for (const auto& regime : regimes) {
      double gs_worst = 0, lh_worst = 0, wf_worst = 0;
      const unsigned reps = regime.name == std::string("staircase")
                                ? 1u
                                : trials / 4;
      for (unsigned r = 0; r < reps; ++r) {
        const auto f = regime.gen();
        const auto gs = core::run_gs(cube, f);
        gs_worst = std::max<double>(gs_worst, gs.rounds_to_stabilize);
        lh_worst = std::max<double>(
            lh_worst, core::compute_safe_nodes(
                          cube, f, core::SafeNodeRule::kLeeHayes)
                          .rounds_to_stabilize);
        wf_worst = std::max<double>(
            wf_worst, core::compute_safe_nodes(
                          cube, f, core::SafeNodeRule::kWuFernandez)
                          .rounds_to_stabilize);
        ok &= gs.rounds_to_stabilize <= n - 1;
      }
      t.row() << static_cast<std::int64_t>(n) << std::string(regime.name)
              << gs_worst << lh_worst << wf_worst;
    }
  }
  for (std::size_t c = 2; c <= 4; ++c) t.set_precision(c, 0);
  bench::emit(t, opt);

  // Part 2: ablation #2 — initialization direction.
  Table ab("ABLATION #2: GS start value (same fixed point either way; "
           "rounds differ — the paper's n-start costs nothing when the "
           "cube is healthy)",
           {"n", "faults", "rounds from n (paper)", "rounds from 0"});
  for (const unsigned n : {5u, 7u}) {
    const topo::Hypercube cube(n);
    Xoshiro256ss rng(seed * 3 + n);
    for (const std::uint64_t fc :
         std::initializer_list<std::uint64_t>{0, n, 3ull * n}) {
      RunningStat from_n, from_0;
      for (unsigned r = 0; r < 50; ++r) {
        const auto f = fault::inject_uniform(cube, fc, rng);
        from_n.add(core::run_gs(cube, f).rounds_to_stabilize);
        core::GsOptions pess;
        pess.pessimistic_start = true;
        from_0.add(core::run_gs(cube, f, pess).rounds_to_stabilize);
      }
      ab.row() << static_cast<std::int64_t>(n)
               << static_cast<std::int64_t>(fc) << from_n.mean()
               << from_0.mean();
    }
  }
  ab.set_precision(2, 2);
  ab.set_precision(3, 2);
  bench::emit(ab, opt);

  std::cout << "ROUNDS claim (GS <= n-1 everywhere): "
            << (ok ? "HOLDS" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
