// FIG3 / THM4 — disconnected hypercubes.
//
// Part 1 replays the paper's Fig. 3 walk-throughs (Q4, faults {0110,
// 1010, 1100, 1111}, node 1110 isolated). Part 2 sweeps random
// *disconnecting* fault patterns and measures: Theorem 4 (LH/WF safe sets
// empty), source-side refusal correctness, and intra-component delivery
// — the claims that make this "the first attempt to address unicasting
// in disconnected hypercubes".
#include <iostream>

#include "analysis/bfs.hpp"
#include "analysis/components.hpp"
#include "baselines/safety_level_router.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/global_status.hpp"
#include "core/properties.hpp"
#include "core/unicast.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"
#include "topology/topology_view.hpp"
#include "workload/metrics.hpp"
#include "workload/pair_sampler.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned trials = opt.trials ? opt.trials : 300;
  const std::uint64_t seed = opt.seed ? opt.seed : 0xF163;
  bool ok = true;

  // --- Part 1: Fig. 3 walk-throughs. ---
  {
    const auto sc = fault::scenario::fig3();
    const auto lv = core::compute_safety_levels(sc.cube, sc.faults);
    Table t("FIG3: Q4 faults {0110,1010,1100,1111} (1110 isolated)",
            {"unicast", "paper outcome", "computed", "path"});
    struct Case {
      const char *s, *d, *paper;
    };
    for (const Case c :
         {Case{"0101", "0000", "optimal (C1)"},
          Case{"0111", "1011", "optimal via preferred 0011 (C2)"},
          Case{"0111", "1110", "aborted at source (C1,C2,C3 fail)"},
          Case{"1110", "0001", "aborted at source (isolated)"}}) {
      const auto r = core::route_unicast(sc.cube, sc.faults, lv,
                                         from_bits(c.s), from_bits(c.d));
      t.row() << (std::string(c.s) + " -> " + c.d) << std::string(c.paper)
              << std::string(core::to_string(r.status))
              << analysis::format_path(r.path, 4);
    }
    bench::emit(t, opt);
    ok &= core::check_theorem4(sc.cube, sc.faults).empty();
  }

  // --- Part 2: random disconnecting patterns. ---
  const topo::Hypercube cube(7);
  const topo::HypercubeView view(cube);
  Xoshiro256ss rng(seed);
  Table t("THM4 sweep: isolation faults in Q7, " + std::to_string(trials) +
              " trials — Theorem 4 + refusal correctness",
          {"extra faults", "thm4 holds%", "refusal correct%",
           "delivered when reachable%", "refused when unreachable%"});
  for (std::size_t c = 1; c <= 4; ++c) t.set_precision(c, 2);

  for (const std::uint64_t extra : {0ull, 4ull, 8ull, 16ull}) {
    Ratio thm4;
    workload::RoutingMetrics m;
    Ratio refused_when_unreachable;
    for (unsigned trial = 0; trial < trials; ++trial) {
      NodeId victim = 0;
      const auto f = fault::inject_isolation(cube, extra, rng, victim);
      thm4.add(core::check_theorem4(cube, f).empty());
      baselines::SafetyLevelRouter router;
      router.prepare(cube, f);
      for (int p = 0; p < 24; ++p) {
        const auto pair = workload::sample_uniform_pair(f, rng);
        if (!pair) break;
        const auto dist = analysis::bfs_distances(view, f, pair->s);
        const auto a = router.route(pair->s, pair->d);
        m.record(a, cube.distance(pair->s, pair->d), dist[pair->d]);
        if (dist[pair->d] == analysis::kUnreachable) {
          refused_when_unreachable.add(a.refused);
        }
      }
    }
    t.row() << static_cast<std::int64_t>(extra) << thm4.percent()
            << m.refusal_correct.percent()
            << m.delivered_when_reachable.percent()
            << refused_when_unreachable.percent();
    ok &= thm4.value() == 1.0;
    // Theorem 2 makes C1/C2/C3 sufficient for reachability, so an
    // unreachable destination can never pass the source check: every
    // cross-partition unicast must be refused, with zero traffic.
    ok &= refused_when_unreachable.total() == 0 ||
          refused_when_unreachable.value() == 1.0;
  }
  bench::emit(t, opt);
  std::cout << "FIG3/THM4 claims: " << (ok ? "HOLD" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
