// TIGHT — how conservative is the safety level? Three estimators of the
// per-node optimal-reach radius, compared against the exact oracle:
//
//   scalar safety level  (the paper)        — n-1 exchange rounds
//   safety vector prefix (follow-on work)   — n-1 exchange rounds
//   exact optimal reach  (oracle)           — global knowledge
//
// plus the unicast consequence: the fraction of (source, destination)
// pairs whose optimal feasibility each estimator certifies, versus the
// fraction that is truly optimally reachable.
#include <iostream>

#include "analysis/optimal_reach.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/global_status.hpp"
#include "core/safety_vector.hpp"
#include "fault/injection.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned trials = opt.trials ? opt.trials : 120;
  const std::uint64_t seed = opt.seed ? opt.seed : 0x7167;
  bool ok = true;

  const topo::Hypercube cube(7);
  Table t("TIGHT: estimator quality vs exact optimal reach, Q7 (" +
              std::to_string(trials) + " trials/point)",
          {"faults", "level tight%", "vector tight%", "level exact-match%",
           "vector exact-match%", "pairs: level%", "pairs: vector%",
           "pairs: exact%"});
  for (std::size_t c = 1; c <= 7; ++c) t.set_precision(c, 2);

  Xoshiro256ss rng(seed);
  for (const std::uint64_t fc : {3ull, 7ull, 14ull, 24ull, 40ull}) {
    RunningStat lvl_tight, vec_tight, lvl_match, vec_match;
    Ratio lvl_pairs, vec_pairs, exact_pairs;
    for (unsigned trial = 0; trial < trials; ++trial) {
      const auto f = fault::inject_uniform(cube, fc, rng);
      const auto levels = core::compute_safety_levels(cube, f);
      const auto vectors = core::compute_safety_vectors(cube, f);
      const auto exact = analysis::optimal_reach(cube, f);
      const auto relation = analysis::optimal_reach_relation(cube, f);

      std::vector<unsigned> lvl_est(cube.num_nodes()),
          vec_est(cube.num_nodes());
      for (NodeId a = 0; a < cube.num_nodes(); ++a) {
        lvl_est[a] = levels[a];
        vec_est[a] = f.is_faulty(a) ? 0 : vectors.prefix_reach(a);
      }
      const auto ls = analysis::compare_to_exact(cube, f, exact, lvl_est);
      const auto vs = analysis::compare_to_exact(cube, f, exact, vec_est);
      lvl_tight.add(100.0 * ls.tightness());
      vec_tight.add(100.0 * vs.tightness());
      lvl_match.add(100.0 * static_cast<double>(ls.exact_matches) /
                    static_cast<double>(ls.healthy_nodes));
      vec_match.add(100.0 * static_cast<double>(vs.exact_matches) /
                    static_cast<double>(vs.healthy_nodes));

      // Pairwise optimal-feasibility coverage (sampled).
      for (int p = 0; p < 200; ++p) {
        const auto s = static_cast<NodeId>(rng.below(cube.num_nodes()));
        const auto d = static_cast<NodeId>(rng.below(cube.num_nodes()));
        if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
        lvl_pairs.add(
            core::decide_at_source(cube, levels, s, d).optimal_feasible());
        vec_pairs.add(core::decide_at_source_sv(cube, vectors, s, d)
                          .optimal_feasible());
        exact_pairs.add(relation[s][d]);
      }
    }
    t.row() << static_cast<std::int64_t>(fc) << lvl_tight.mean()
            << vec_tight.mean() << lvl_match.mean() << vec_match.mean()
            << lvl_pairs.percent() << vec_pairs.percent()
            << exact_pairs.percent();
    // The dominance chain must show up in the aggregates.
    ok &= lvl_pairs.value() <= vec_pairs.value() + 1e-9;
    ok &= vec_pairs.value() <= exact_pairs.value() + 1e-9;
    ok &= lvl_tight.mean() <= vec_tight.mean() + 1e-9;
  }
  bench::emit(t, opt);
  std::cout << "TIGHT chain (level <= vector <= exact): "
            << (ok ? "HOLDS" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
