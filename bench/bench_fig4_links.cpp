// FIG4 / LINKS — Section 4.1: node + link faults under EGS.
//
// Part 1 replays the Fig. 4 walk-through (reconstructed fault set, see
// DESIGN.md errata): two-view levels of 1000/1001 and the suboptimal
// route 1101 -> 1111 -> 1011 -> 1010 -> 1000. Part 2 sweeps mixed
// node/link fault counts in a 7-cube and reports feasibility and path
// quality of EGS routing.
#include <iostream>

#include "analysis/path.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/format.hpp"
#include "core/egs.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"
#include "workload/pair_sampler.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned trials = opt.trials ? opt.trials : 200;
  const std::uint64_t seed = opt.seed ? opt.seed : 0xF164;
  bool ok = true;

  // --- Part 1: Fig. 4. ---
  {
    const auto sc = fault::scenario::fig4();
    const auto egs = core::run_egs(sc.cube, sc.faults, sc.link_faults);
    Table t("FIG4: Q4, faults {0000,0101,1100,1110} + link (1000,1001) "
            "[reconstructed placement, all prose facts hold]",
            {"quantity", "paper", "computed"});
    t.row() << std::string("self level of 1000") << std::int64_t{1}
            << static_cast<std::int64_t>(egs.self_view[from_bits("1000")]);
    t.row() << std::string("self level of 1001") << std::int64_t{2}
            << static_cast<std::int64_t>(egs.self_view[from_bits("1001")]);
    t.row() << std::string("public level of 1111") << std::int64_t{4}
            << static_cast<std::int64_t>(
                   egs.public_view[from_bits("1111")]);
    const auto r =
        core::route_unicast_egs(sc.cube, sc.faults, sc.link_faults, egs,
                                from_bits("1101"), from_bits("1000"));
    t.row() << std::string("route 1101 -> 1000")
            << std::string("1101 -> 1111 -> 1011 -> 1010 -> 1000")
            << analysis::format_path(r.path, 4);
    bench::emit(t, opt);
    ok &= r.status == core::RouteStatus::kDeliveredSuboptimal;
    ok &= analysis::format_path(r.path, 4) ==
          "1101 -> 1111 -> 1011 -> 1010 -> 1000";
  }

  // --- Part 2: mixed-fault sweep in Q7. ---
  const topo::Hypercube cube(7);
  Xoshiro256ss rng(seed);
  Table t("LINKS sweep: EGS routing in Q7 (" + std::to_string(trials) +
              " trials/point, 24 pairs each)",
          {"node faults", "link faults", "delivered%", "optimal%",
           "suboptimal%", "refused%", "valid paths%"});
  for (std::size_t c = 2; c <= 6; ++c) t.set_precision(c, 2);
  for (const auto& [nf, lf_count] :
       {std::pair<std::uint64_t, std::uint64_t>{2, 2}, {4, 4}, {6, 6},
        {4, 12}, {12, 4}, {10, 10}}) {
    Ratio delivered, optimal, suboptimal, refused, valid;
    for (unsigned trial = 0; trial < trials; ++trial) {
      const auto faults = fault::inject_uniform(cube, nf, rng);
      const auto links = fault::inject_links_uniform(cube, lf_count, rng);
      const auto egs = core::run_egs(cube, faults, links);
      for (int p = 0; p < 24; ++p) {
        const auto pair = workload::sample_uniform_pair(faults, rng);
        if (!pair) break;
        const auto r = core::route_unicast_egs(cube, faults, links, egs,
                                               pair->s, pair->d);
        delivered.add(r.delivered());
        refused.add(r.status == core::RouteStatus::kSourceRefused);
        if (r.delivered()) {
          optimal.add(r.status == core::RouteStatus::kDeliveredOptimal);
          suboptimal.add(r.status ==
                         core::RouteStatus::kDeliveredSuboptimal);
          valid.add(analysis::check_path_with_links(cube, faults, links,
                                                    r.path)
                        .cls != analysis::PathClass::kInvalid);
        }
      }
    }
    t.row() << static_cast<std::int64_t>(nf)
            << static_cast<std::int64_t>(lf_count) << delivered.percent()
            << optimal.percent() << suboptimal.percent()
            << refused.percent() << valid.percent();
    ok &= valid.total() == 0 || valid.value() == 1.0;
  }
  bench::emit(t, opt);
  std::cout << "FIG4/LINKS claims: " << (ok ? "HOLD" : "VIOLATED") << "\n";
  return ok ? 0 : 1;
}
