// FIG4 / LINKS — Section 4.1: node + link faults under EGS.
//
// Part 1 replays the Fig. 4 walk-through (reconstructed fault set, see
// DESIGN.md errata): two-view levels of 1000/1001 and the suboptimal
// route 1101 -> 1111 -> 1011 -> 1010 -> 1000. Part 2 sweeps mixed
// node/link fault counts through workload::run_link_routing_sweep — the
// shared sweep engine (worker-cached incremental EgsOracle, per-trial
// RNG substreams, bit-identical at any --threads), with --jsonl emitting
// per-point sweep events and --audit checking every routed path against
// the Section-4.1 invariants.
#include <iostream>

#include "analysis/path.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/egs.hpp"
#include "fault/scenario.hpp"
#include "workload/experiment.hpp"

int main(int argc, char** argv) {
  using namespace slcube;
  const auto opt = bench::Options::parse(argc, argv);
  const unsigned trials = opt.trials ? opt.trials : 200;
  const std::uint64_t seed = opt.seed ? opt.seed : 0xF164;
  const unsigned dim = opt.dim ? opt.dim : 7;
  bool ok = true;

  // --- Part 1: Fig. 4. ---
  {
    const auto sc = fault::scenario::fig4();
    const auto egs = core::run_egs(sc.cube, sc.faults, sc.link_faults);
    Table t("FIG4: Q4, faults {0000,0101,1100,1110} + link (1000,1001) "
            "[reconstructed placement, all prose facts hold]",
            {"quantity", "paper", "computed"});
    t.row() << std::string("self level of 1000") << std::int64_t{1}
            << static_cast<std::int64_t>(egs.self_view[from_bits("1000")]);
    t.row() << std::string("self level of 1001") << std::int64_t{2}
            << static_cast<std::int64_t>(egs.self_view[from_bits("1001")]);
    t.row() << std::string("public level of 1111") << std::int64_t{4}
            << static_cast<std::int64_t>(
                   egs.public_view[from_bits("1111")]);
    const auto r =
        core::route_unicast_egs(sc.cube, sc.faults, sc.link_faults, egs,
                                from_bits("1101"), from_bits("1000"));
    t.row() << std::string("route 1101 -> 1000")
            << std::string("1101 -> 1111 -> 1011 -> 1010 -> 1000")
            << analysis::format_path(r.path, 4);
    bench::emit(t, opt);
    ok &= r.status == core::RouteStatus::kDeliveredSuboptimal;
    ok &= analysis::format_path(r.path, 4) ==
          "1101 -> 1111 -> 1011 -> 1010 -> 1000";
  }

  // --- Part 2: mixed-fault sweep on the shared engine. ---
  const auto jsonl = opt.make_jsonl_sink();
  const auto audit = opt.make_audit_sink(dim);

  workload::LinkSweepConfig config;
  config.dimension = dim;
  config.points = {{2, 2}, {4, 4}, {6, 6}, {4, 12}, {12, 4}, {10, 10}};
  config.trials = trials;
  config.pairs = 24;
  config.seed = seed;
  config.threads = opt.threads;
  config.trace = jsonl.get();
  config.route_trace = audit.get();  // AuditSink synchronizes internally
  bench::TelemetrySession telemetry(opt);
  config.instrumentation = telemetry.hooks();
  const auto points = workload::run_link_routing_sweep(config);

  Table t("LINKS sweep: EGS routing in Q" + std::to_string(dim) + " (" +
              std::to_string(trials) + " trials/point, 24 pairs each)",
          {"node faults", "link faults", "|N2| mean", "delivered%",
           "optimal%", "suboptimal%", "refused%", "stuck%", "valid paths%"});
  t.set_precision(2, 1);
  for (std::size_t c = 3; c <= 8; ++c) t.set_precision(c, 2);
  for (const auto& p : points) {
    t.row() << static_cast<std::int64_t>(p.node_faults)
            << static_cast<std::int64_t>(p.link_faults) << p.n2_nodes.mean()
            << p.delivered.percent() << p.optimal.percent()
            << p.suboptimal.percent() << p.refused.percent()
            << p.stuck.percent() << p.valid_paths.percent();
    ok &= p.valid_paths.total() == 0 || p.valid_paths.value() == 1.0;
  }
  bench::emit(t, opt);

  if (!telemetry.finish(dim, config.threads)) return 2;
  const int audit_rc = bench::finish_audit(audit.get());
  std::cout << "FIG4/LINKS claims: " << (ok ? "HOLD" : "VIOLATED") << "\n";
  return (ok && audit_rc == 0) ? 0 : 1;
}
