#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace slcube {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 1234567 from the public-domain reference
  // implementation (Vigna).
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ull);
  EXPECT_EQ(sm.next(), 3203168211198807973ull);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256ss a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256ss rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro, BelowOneAlwaysZero) {
  Xoshiro256ss rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, RangeInclusive) {
  Xoshiro256ss rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, Uniform01InHalfOpenInterval) {
  Xoshiro256ss rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, BelowIsRoughlyUniform) {
  Xoshiro256ss rng(17);
  std::array<int, 8> counts{};
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(8)];
  for (const int c : counts) {
    EXPECT_NEAR(c, trials / 8, trials / 8 * 0.1);
  }
}

TEST(Xoshiro, ChanceExtremes) {
  Xoshiro256ss rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro, ForkIsIndependentStream) {
  Xoshiro256ss parent(23);
  Xoshiro256ss child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += parent() == child() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Shuffle, PreservesMultiset) {
  Xoshiro256ss rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Shuffle, ActuallyPermutes) {
  Xoshiro256ss rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  shuffle(v, rng);
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += v[static_cast<std::size_t>(i)] != i;
  EXPECT_GT(moved, 50);
}

TEST(Sample, WithoutReplacementDistinct) {
  Xoshiro256ss rng(37);
  for (std::uint64_t pop : {10ull, 128ull, 1000ull}) {
    for (std::uint64_t k :
         std::initializer_list<std::uint64_t>{0, 1, 5, pop / 2, pop}) {
      auto s = sample_without_replacement(pop, k, rng);
      EXPECT_EQ(s.size(), k);
      std::set<std::uint64_t> uniq(s.begin(), s.end());
      EXPECT_EQ(uniq.size(), k);
      for (const auto v : s) EXPECT_LT(v, pop);
    }
  }
}

TEST(Sample, FullPopulationIsPermutation) {
  Xoshiro256ss rng(41);
  auto s = sample_without_replacement(64, 64, rng);
  std::sort(s.begin(), s.end());
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(s[i], i);
}

TEST(Sample, CoversWholePopulationEventually) {
  Xoshiro256ss rng(43);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) {
    for (const auto v : sample_without_replacement(16, 4, rng)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 16u);
}

}  // namespace
}  // namespace slcube
