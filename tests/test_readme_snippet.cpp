// The README's 60-second tour, compiled and executed verbatim so the
// documentation cannot rot.
#include <gtest/gtest.h>

#include "core/global_status.hpp"
#include "core/unicast.hpp"

TEST(Readme, SixtySecondTour) {
  using namespace slcube;
  topo::Hypercube cube(7);  // Q7, 128 nodes
  fault::FaultSet faults(cube.num_nodes(), {3, 77, 90});
  core::GsResult gs = core::run_gs(cube, faults);  // <= n-1 rounds
  auto r =
      core::route_unicast(cube, faults, gs.levels, /*s=*/0, /*d=*/127);

  // What the README promises about the result:
  EXPECT_LE(gs.rounds_to_stabilize, 6u);
  EXPECT_TRUE(r.status == core::RouteStatus::kDeliveredOptimal ||
              r.status == core::RouteStatus::kDeliveredSuboptimal ||
              r.status == core::RouteStatus::kSourceRefused);
  if (r.delivered()) {
    const unsigned h = cube.distance(0, 127);
    EXPECT_TRUE(r.hops() == h || r.hops() == h + 2);
  }
  // Three faults < n = 7: the never-fails guarantee applies.
  EXPECT_TRUE(r.delivered());
}
