// slcube::obs — the trace audit engine: zero violations on everything
// the real producers emit (core router sweeps dims 3-8 with fault loads
// up to disconnection, sim missions with GS waves, churn and periodic
// refresh), and exactly the right violation on hand-corrupted synthetic
// traces (wrong nav bit, H+1 spare route, out-of-order GS rounds, ...).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/egs.hpp"
#include "core/global_status.hpp"
#include "core/unicast.hpp"
#include "fault/injection.hpp"
#include "obs/audit.hpp"
#include "sim/protocol_gs.hpp"
#include "sim/protocol_unicast.hpp"
#include "workload/pair_sampler.hpp"

namespace slcube::obs {
namespace {

std::uint64_t kind_count(const AuditReport& r, ViolationKind k) {
  return r.violations_by_kind[static_cast<std::size_t>(k)];
}

// --- the oracle accepts every real producer ------------------------------

TEST(Audit, CoreRoutingSweepIsCleanDims3To8) {
  Xoshiro256ss rng(0xA0D17);
  for (unsigned n = 3; n <= 8; ++n) {
    const topo::Hypercube cube(n);
    AuditConfig config;
    config.dimension = n;
    AuditSink audit(config);
    core::UnicastOptions uo;
    uo.trace = &audit;
    // Fault loads from none to cube-shattering (half the nodes dead).
    const std::uint64_t loads[] = {0, 1, n - 1, n, 2ull * n,
                                   cube.num_nodes() / 2};
    std::uint64_t routed = 0;
    for (const std::uint64_t fc : loads) {
      for (int trial = 0; trial < 8; ++trial) {
        const auto f = fault::inject_uniform(cube, fc, rng);
        if (f.healthy_count() < 2) continue;
        const auto lv = core::compute_safety_levels(cube, f);
        for (int p = 0; p < 16; ++p) {
          const auto pair = workload::sample_uniform_pair(f, rng);
          if (!pair) break;
          (void)core::route_unicast(cube, f, lv, pair->s, pair->d, uo);
          ++routed;
        }
      }
    }
    audit.finish();
    const AuditReport report = audit.report();
    EXPECT_EQ(report.violations_total, 0u)
        << "dim " << n << ": " << (report.details.empty()
                                       ? std::string("(no detail)")
                                       : report.details.front().detail);
    EXPECT_EQ(report.routes, routed);
    EXPECT_TRUE(report.clean());
  }
}

TEST(Audit, SimMissionWithChurnAndPeriodicGsIsClean) {
  Xoshiro256ss rng(0x51171);
  for (unsigned n = 3; n <= 6; ++n) {
    const topo::Hypercube cube(n);
    AuditConfig config;
    config.dimension = n;
    AuditSink audit(config);
    fault::FaultSet none(cube.num_nodes());
    sim::Network net(cube, none);
    net.set_trace(&audit);
    sim::run_gs_synchronous(net);

    for (int phase = 0; phase < 4; ++phase) {
      // Kill a node, stabilize, route, revive it, stabilize, route again.
      NodeId victim;
      do {
        victim = static_cast<NodeId>(rng.below(cube.num_nodes()));
      } while (net.faults().is_faulty(victim));
      sim::stabilize_after_failures(net, {victim});
      for (int p = 0; p < 8; ++p) {
        const auto pair = workload::sample_uniform_pair(net.faults(), rng);
        if (!pair) break;
        (void)sim::route_unicast_sim(net, pair->s, pair->d);
      }
      sim::stabilize_after_recoveries(net, {victim});
      for (int p = 0; p < 8; ++p) {
        const auto pair = workload::sample_uniform_pair(net.faults(), rng);
        if (!pair) break;
        (void)sim::route_unicast_sim(net, pair->s, pair->d);
      }
    }
    sim::run_gs_periodic(net, /*period=*/16, /*periods=*/3);

    audit.finish();
    const AuditReport report = audit.report();
    EXPECT_EQ(report.violations_total, 0u)
        << "dim " << n << ": " << (report.details.empty()
                                       ? std::string("(no detail)")
                                       : report.details.front().detail);
    EXPECT_GT(report.gs_waves, 0u);
    EXPECT_GT(report.routes, 0u);
  }
}

TEST(Audit, EgsLinkRoutingSweepIsCleanDims3To6) {
  // The Section-4.1 producer: route_unicast_egs emits two-view context
  // (egs / self_level / dest_link_faulty) the auditor cross-checks.
  Xoshiro256ss rng(0xE6A0D17);
  for (unsigned n = 3; n <= 6; ++n) {
    const topo::Hypercube cube(n);
    AuditConfig config;
    config.dimension = n;
    AuditSink audit(config);
    core::UnicastOptions uo;
    uo.trace = &audit;
    std::uint64_t routed = 0;
    for (int trial = 0; trial < 20; ++trial) {
      const auto f = fault::inject_uniform(cube, rng.below(n), rng);
      const auto lf = fault::inject_links_uniform(cube, rng.below(n), rng);
      if (f.healthy_count() < 2) continue;
      const auto egs = core::run_egs(cube, f, lf);
      for (int p = 0; p < 16; ++p) {
        const auto pair = workload::sample_uniform_pair(f, rng);
        if (!pair) break;
        (void)core::route_unicast_egs(cube, f, lf, egs, pair->s, pair->d,
                                      uo);
        ++routed;
      }
    }
    audit.finish();
    const AuditReport report = audit.report();
    EXPECT_EQ(report.violations_total, 0u)
        << "dim " << n << ": " << (report.details.empty()
                                       ? std::string("(no detail)")
                                       : report.details.front().detail);
    EXPECT_EQ(report.routes, routed);
  }
}

TEST(Audit, MidRouteFailuresNeverFalsePositive) {
  // Scheduled mid-route deaths produce lost/stuck outcomes; the churn
  // events in the stream must suppress the "stuck is impossible" rule.
  Xoshiro256ss rng(0xDEAD5);
  const topo::Hypercube cube(5);
  AuditConfig config;
  config.dimension = 5;
  AuditSink audit(config);
  for (int trial = 0; trial < 40; ++trial) {
    fault::FaultSet none(cube.num_nodes());
    sim::Network net(cube, none);
    net.set_trace(&audit);
    sim::run_gs_synchronous(net);
    const auto pair = workload::sample_uniform_pair(net.faults(), rng);
    ASSERT_TRUE(pair.has_value());
    const NodeId mid = static_cast<NodeId>(rng.below(cube.num_nodes()));
    std::vector<sim::ScheduledFailure> failures;
    failures.push_back({/*time=*/1 + rng.below(4), /*node=*/mid});
    (void)sim::route_unicast_sim(net, pair->s, pair->d, failures);
  }
  audit.finish();
  const AuditReport report = audit.report();
  EXPECT_EQ(report.violations_total, 0u)
      << (report.details.empty() ? std::string("(no detail)")
                                 : report.details.front().detail);
}

// --- corrupted synthetic traces: each tamper is caught and classified ----

AuditConfig dim3_config() {
  AuditConfig config;
  config.dimension = 3;
  return config;
}

TEST(Audit, DetectsWrongNavBit) {
  AuditSink audit(dim3_config());
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b011;
  src.hamming = 2;
  src.c1 = true;
  src.chosen_dim = 0;
  audit.on_event(src);
  HopEvent hop;
  hop.from = 0;
  hop.to = 0b001;
  hop.dim = 0;
  hop.level = 3;
  hop.nav_before = 0b011;
  hop.nav_after = 0b011;  // tampered: bit 0 not cleared
  audit.on_event(hop);
  audit.finish();
  const AuditReport report = audit.report();
  EXPECT_GE(kind_count(report, ViolationKind::kNavBitNotToggled), 1u);
}

TEST(Audit, DetectsSpareRouteDeliveredInWrongHopCount) {
  // A spare launch must land in exactly H + 2 hops; this forged route
  // reports H + 1 and is flagged as a hop-count violation.
  AuditSink audit(dim3_config());
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b001;  // H = 1
  src.hamming = 1;
  src.c3 = true;
  src.spare = true;
  src.chosen_dim = 1;
  audit.on_event(src);
  HopEvent spare;
  spare.from = 0;
  spare.to = 0b010;
  spare.dim = 1;
  spare.level = 3;
  spare.nav_before = 0b001;
  spare.nav_after = 0b011;  // detour sets bit 1
  spare.preferred = false;
  audit.on_event(spare);
  HopEvent h2;
  h2.from = 0b010;
  h2.to = 0b011;
  h2.dim = 0;
  h2.level = 3;
  h2.nav_before = 0b011;
  h2.nav_after = 0b010;
  audit.on_event(h2);
  audit.on_event(RouteDoneEvent{0, 0b001, "delivered-suboptimal", 2});
  audit.finish();
  const AuditReport report = audit.report();
  EXPECT_GE(kind_count(report, ViolationKind::kHopCountMismatch), 1u);
}

TEST(Audit, AcceptsTheLegalSpareRoute) {
  // The same scenario routed correctly (H + 2 hops, detour repaid) must
  // pass — the detector keys on the tamper, not on spare routes per se.
  AuditSink audit(dim3_config());
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b001;
  src.hamming = 1;
  src.c3 = true;
  src.spare = true;
  src.chosen_dim = 1;
  audit.on_event(src);
  HopEvent spare;
  spare.from = 0;
  spare.to = 0b010;
  spare.dim = 1;
  spare.level = 3;
  spare.nav_before = 0b001;
  spare.nav_after = 0b011;
  spare.preferred = false;
  audit.on_event(spare);
  HopEvent h2;
  h2.from = 0b010;
  h2.to = 0b011;
  h2.dim = 0;
  h2.level = 2;
  h2.nav_before = 0b011;
  h2.nav_after = 0b010;
  audit.on_event(h2);
  HopEvent h3;
  h3.from = 0b011;
  h3.to = 0b001;
  h3.dim = 1;
  h3.level = 1;
  h3.nav_before = 0b010;
  h3.nav_after = 0;
  audit.on_event(h3);
  audit.on_event(RouteDoneEvent{0, 0b001, "delivered-suboptimal", 3});
  audit.finish();
  EXPECT_EQ(audit.report().violations_total, 0u);
}

TEST(Audit, DetectsEgsC1SelfLevelInconsistency) {
  // C1 must equal "self-view level covers the distance" when the
  // destination is not across a dead link; this source lies about it.
  AuditSink audit(dim3_config());
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b011;
  src.hamming = 2;
  src.egs = true;
  src.self_level = 1;  // 1 < H = 2, yet C1 claims optimal feasibility
  src.c1 = true;
  src.chosen_dim = 0;
  audit.on_event(src);
  audit.finish();
  EXPECT_GE(kind_count(audit.report(), ViolationKind::kFlagsInconsistent),
            1u);
}

TEST(Audit, DetectsEgsDeadLinkDestinationWithC1) {
  // Footnote 3: a destination across the source's own faulty link is
  // outside the self-view guarantee, so asserting C1 is a contradiction.
  AuditSink audit(dim3_config());
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b001;
  src.hamming = 1;
  src.egs = true;
  src.self_level = 3;
  src.dest_link_faulty = true;
  src.c1 = true;
  src.chosen_dim = 0;
  audit.on_event(src);
  audit.finish();
  EXPECT_GE(kind_count(audit.report(), ViolationKind::kFlagsInconsistent),
            1u);
}

TEST(Audit, DetectsEgsDeadLinkDeliveryWithoutSpareDetour) {
  // The direct link to the destination is dead: a delivery whose first
  // hop is not the spare detour must have crossed it. This forged route
  // claims an optimal one-hop delivery.
  AuditSink audit(dim3_config());
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b001;
  src.hamming = 1;
  src.egs = true;
  src.self_level = 2;
  src.dest_link_faulty = true;
  src.c2 = true;
  src.chosen_dim = 0;
  audit.on_event(src);
  HopEvent hop;
  hop.from = 0;
  hop.to = 0b001;
  hop.dim = 0;
  hop.level = 2;
  hop.nav_before = 0b001;
  hop.nav_after = 0;
  audit.on_event(hop);
  audit.on_event(RouteDoneEvent{0, 0b001, "delivered-optimal", 1});
  audit.finish();
  EXPECT_GE(kind_count(audit.report(), ViolationKind::kSpareMisuse), 1u);
}

TEST(Audit, AcceptsEgsDeadLinkDeliveryViaSpareDetour) {
  // The same mission routed legally: spare detour out, H + 2 home.
  AuditSink audit(dim3_config());
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b001;
  src.hamming = 1;
  src.egs = true;
  src.self_level = 2;
  src.dest_link_faulty = true;
  src.c3 = true;
  src.spare = true;
  src.chosen_dim = 1;
  audit.on_event(src);
  HopEvent spare;
  spare.from = 0;
  spare.to = 0b010;
  spare.dim = 1;
  spare.level = 3;
  spare.nav_before = 0b001;
  spare.nav_after = 0b011;
  spare.preferred = false;
  audit.on_event(spare);
  HopEvent h2;
  h2.from = 0b010;
  h2.to = 0b011;
  h2.dim = 0;
  h2.level = 2;
  h2.nav_before = 0b011;
  h2.nav_after = 0b010;
  audit.on_event(h2);
  HopEvent h3;
  h3.from = 0b011;
  h3.to = 0b001;
  h3.dim = 1;
  h3.level = 1;
  h3.nav_before = 0b010;
  h3.nav_after = 0;
  audit.on_event(h3);
  audit.on_event(RouteDoneEvent{0, 0b001, "delivered-suboptimal", 3});
  audit.finish();
  EXPECT_EQ(audit.report().violations_total, 0u)
      << audit.report().details.front().detail;
}

TEST(Audit, DetectsOutOfOrderGsRound) {
  AuditSink audit(dim3_config());
  audit.on_event(GsRoundEvent{0, 5, 24, 1});
  audit.on_event(GsRoundEvent{2, 3, 12, 2});  // tampered: round 1 missing
  audit.on_event(GsRoundEvent{3, 0, 0, 3});
  audit.finish();
  const AuditReport report = audit.report();
  EXPECT_GE(kind_count(report, ViolationKind::kGsRoundOrder), 1u);
}

TEST(Audit, DetectsGsBoundExceeded) {
  // n = 3 allows at most n - 1 = 2 changing rounds in a quiet network.
  AuditSink audit(dim3_config());
  for (unsigned r = 0; r < 4; ++r) {
    audit.on_event(GsRoundEvent{r, r < 3 ? 2u : 0u, 8, r});
  }
  audit.finish();
  EXPECT_GE(kind_count(audit.report(), ViolationKind::kGsBoundExceeded), 1u);
}

TEST(Audit, GsBoundRelaxedUnderFaultChurnAndForPeriodicWaves) {
  {
    AuditSink audit(dim3_config());
    audit.on_event(GsRoundEvent{0, 2, 8, 0});
    audit.on_event(NodeFailEvent{1, 5});  // mid-wave churn
    for (unsigned r = 1; r < 4; ++r) {
      audit.on_event(GsRoundEvent{r, r < 3 ? 2u : 0u, 8, r});
    }
    audit.finish();
    EXPECT_EQ(audit.report().violations_total, 0u);
  }
  {
    AuditSink audit(dim3_config());
    for (unsigned r = 0; r < 6; ++r) {
      GsRoundEvent ev{r, r % 2, 4, r};
      ev.periodic = true;
      audit.on_event(ev);
    }
    audit.finish();
    EXPECT_EQ(audit.report().violations_total, 0u);
  }
}

TEST(Audit, DetectsDropWithoutSendAndMatchesRealPairs) {
  AuditSink audit(dim3_config());
  audit.on_event(MessageSendEvent{1, 2, 3, MsgKind::kLevelUpdate});
  audit.on_event(MessageDropEvent{2, 2, 3, MsgKind::kLevelUpdate,
                                  "dead-node"});  // matched
  audit.on_event(MessageDropEvent{3, 2, 3, MsgKind::kUnicast,
                                  "faulty-link"});  // kind mismatch
  audit.finish();
  const AuditReport report = audit.report();
  EXPECT_EQ(kind_count(report, ViolationKind::kDropWithoutSend), 1u);
  EXPECT_EQ(report.sends, 1u);
  EXPECT_EQ(report.drops, 2u);
}

TEST(Audit, DetectsStuckRouteAndTruncatedStream) {
  AuditSink audit(dim3_config());
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b111;
  src.hamming = 3;
  src.c1 = true;
  src.chosen_dim = 0;
  audit.on_event(src);
  audit.on_event(RouteDoneEvent{0, 0b111, "stuck", 0});
  // Second route never closes.
  src.dest = 0b101;
  src.hamming = 2;
  audit.on_event(src);
  audit.finish();
  const AuditReport report = audit.report();
  EXPECT_EQ(kind_count(report, ViolationKind::kStuckRoute), 1u);
  EXPECT_EQ(kind_count(report, ViolationKind::kTruncatedRoute), 1u);
}

TEST(Audit, DetectsRefusalWithFlagsSetInCoreDialect) {
  AuditSink audit(dim3_config());
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b001;
  src.hamming = 1;
  src.c2 = true;  // tampered: core refuses only when no condition holds
  audit.on_event(src);
  audit.on_event(RouteDoneEvent{0, 0b001, "source-refused", 0});
  audit.finish();
  EXPECT_GE(kind_count(audit.report(), ViolationKind::kFlagsInconsistent),
            1u);
}

TEST(Audit, DetectsHopLevelBelowTheoremTwoFloor) {
  AuditSink audit(dim3_config());
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b011;
  src.hamming = 2;
  src.c1 = true;
  src.chosen_dim = 0;
  audit.on_event(src);
  HopEvent h1;
  h1.from = 0;
  h1.to = 0b001;
  h1.dim = 0;
  h1.level = 0;  // tampered: must cover the 1 remaining nav bit
  h1.nav_before = 0b011;
  h1.nav_after = 0b010;
  audit.on_event(h1);
  HopEvent h2;
  h2.from = 0b001;
  h2.to = 0b011;
  h2.dim = 1;
  h2.level = 1;
  h2.nav_before = 0b010;
  h2.nav_after = 0;
  audit.on_event(h2);
  audit.on_event(RouteDoneEvent{0, 0b011, "delivered-optimal", 2});
  audit.finish();
  EXPECT_EQ(kind_count(audit.report(), ViolationKind::kHopLevelTooLow), 1u);
}

// --- offline: JSONL round trip through audit_jsonl_file ------------------

TEST(Audit, JsonlFileAuditRoundTrip) {
  const std::string path = ::testing::TempDir() + "slcube_audit_rt.jsonl";
  {
    // A real traced route, serialized exactly as producers write it.
    const topo::Hypercube q(4);
    const fault::FaultSet none(q.num_nodes());
    const auto lv = core::compute_safety_levels(q, none);
    JsonlSink sink(path);
    core::UnicastOptions uo;
    uo.trace = &sink;
    const auto r = core::route_unicast(q, none, lv, 0b1110, 0b0001, uo);
    ASSERT_EQ(r.status, core::RouteStatus::kDeliveredOptimal);
  }
  std::size_t malformed = 0, unknown = 0;
  AuditConfig config;
  config.dimension = 4;
  const AuditReport report =
      audit_jsonl_file(path, config, &malformed, &unknown);
  EXPECT_EQ(malformed, 0u);
  EXPECT_EQ(unknown, 0u);
  EXPECT_EQ(report.routes, 1u);
  EXPECT_EQ(report.hops, 4u);
  EXPECT_EQ(report.violations_total, 0u);
  std::remove(path.c_str());
}

TEST(Audit, JsonlFileAuditCountsMalformedAndUnknownLines) {
  const std::string path = ::testing::TempDir() + "slcube_audit_bad.jsonl";
  {
    std::ofstream os(path);
    os << "{\"event\":\"node_fail\",\"time\":1,\"node\":2}\n";
    os << "this is not json\n";
    os << "{\"event\":\"martian\",\"x\":1}\n";
  }
  std::size_t malformed = 0, unknown = 0;
  const AuditReport report =
      audit_jsonl_file(path, AuditConfig{}, &malformed, &unknown);
  EXPECT_EQ(malformed, 1u);
  EXPECT_EQ(unknown, 1u);
  EXPECT_EQ(report.events, 1u);
  std::remove(path.c_str());
}

TEST(Audit, ToTraceEventReconstructsEveryKindAndRejectsUnknown) {
  // Serialize one of each alternative, parse it back, re-serialize, and
  // require byte-identical JSON — proves to_trace_event inverts
  // write_json over the full schema.
  std::vector<TraceEvent> originals;
  SourceDecisionEvent src;
  src.source = 3;
  src.dest = 9;
  src.hamming = 2;
  src.c2 = true;
  src.c3 = true;
  src.chosen_dim = 1;
  src.ties = 2;
  src.spare = true;
  src.egs = true;
  src.self_level = 3;
  src.dest_link_faulty = true;
  originals.emplace_back(src);
  HopEvent hop;
  hop.from = 3;
  hop.to = 1;
  hop.dim = 1;
  hop.level = 4;
  hop.nav_before = 10;
  hop.nav_after = 8;
  hop.preferred = false;
  hop.ties = 1;
  originals.emplace_back(hop);
  originals.emplace_back(RouteDoneEvent{3, 9, "delivered-suboptimal", 4});
  GsRoundEvent round{2, 7, 31, 99, true};
  round.periodic = true;
  originals.emplace_back(round);
  originals.emplace_back(MessageSendEvent{5, 1, 2, MsgKind::kUnicast});
  originals.emplace_back(
      MessageDropEvent{6, 1, 2, MsgKind::kLevelUpdate, "faulty-link"});
  originals.emplace_back(NodeFailEvent{7, 4});
  originals.emplace_back(NodeRecoverEvent{8, 4});
  originals.emplace_back(SpanEvent{"phase \"x\"", 12.5, 3});
  MisrouteEvent mis;
  mis.source = 3;
  mis.dest = 9;
  mis.cls = "optimism-drop";
  mis.drop_node = 5;
  mis.hops_taken = 1;
  mis.ground_feasible = true;
  originals.emplace_back(mis);
  SweepPointEvent sp;
  sp.sweep = "routing";
  sp.fault_count = 6;
  sp.wall_ms = 1.25;
  sp.utilization = 0.5;
  sp.threads = 4;
  sp.trial_p50_us = 1;
  sp.trial_p90_us = 2;
  sp.trial_p99_us = 3;
  sp.values = {{"delivered_pct", 99.5}, {"optimal_pct", 90.25}};
  originals.emplace_back(sp);

  for (const TraceEvent& ev : originals) {
    std::ostringstream first;
    write_json(first, ev);
    const auto parsed = parse_jsonl_line(first.str());
    ASSERT_TRUE(parsed.has_value()) << first.str();
    TraceEvent rebuilt;
    ASSERT_TRUE(to_trace_event(*parsed, rebuilt)) << first.str();
    EXPECT_EQ(rebuilt.index(), ev.index());
    std::ostringstream second;
    write_json(second, rebuilt);
    EXPECT_EQ(second.str(), first.str());
  }

  ParsedEvent unknown;
  unknown.fields.emplace("event", std::string("martian"));
  TraceEvent out;
  EXPECT_FALSE(to_trace_event(unknown, out));
}

// --- report plumbing -----------------------------------------------------

TEST(Audit, ReportRendersTextAndParseableJson) {
  AuditSink audit(dim3_config());
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b001;
  src.hamming = 1;
  src.c1 = true;
  src.chosen_dim = 0;
  audit.on_event(src);
  HopEvent hop;
  hop.from = 0;
  hop.to = 1;
  hop.dim = 0;
  hop.level = 3;
  hop.nav_before = 1;
  hop.nav_after = 0;
  audit.on_event(hop);
  audit.on_event(RouteDoneEvent{0, 1, "delivered-optimal", 1});
  audit.finish();
  const AuditReport report = audit.report();

  std::ostringstream text;
  report.render_text(text);
  EXPECT_NE(text.str().find("AUDIT SUMMARY"), std::string::npos);
  EXPECT_NE(text.str().find("delivered-optimal"), std::string::npos);

  std::ostringstream js;
  report.write_json(js);
  const auto parsed = parse_jsonl_line(js.str());
  ASSERT_TRUE(parsed.has_value()) << js.str();
  EXPECT_EQ(parsed->kind(), "audit_report");
  EXPECT_EQ(parsed->integer("routes"), 1);
  EXPECT_EQ(parsed->integer("hops"), 1);
  EXPECT_EQ(parsed->integer("violations_total"), 0);
  EXPECT_EQ(parsed->integer("status.delivered-optimal"), 1);
}

TEST(Audit, ReportMergeSumsCounters) {
  AuditReport a, b;
  a.events = 3;
  a.routes = 1;
  a.violations_total = 1;
  a.violations_by_kind[0] = 1;
  a.gs_curve[0] = {4, 1};
  b.events = 5;
  b.routes = 2;
  b.gs_curve[0] = {2, 1};
  b.gs_curve[1] = {1, 1};
  a.merge(b);
  EXPECT_EQ(a.events, 8u);
  EXPECT_EQ(a.routes, 3u);
  EXPECT_EQ(a.violations_total, 1u);
  EXPECT_EQ(a.gs_curve[0].first, 6u);
  EXPECT_EQ(a.gs_curve[0].second, 2u);
  EXPECT_EQ(a.gs_curve[1].second, 1u);
}

// --- concurrency: one sink, many producer threads ------------------------

TEST(Audit, ConcurrentProducersKeepLanesSeparate) {
  AuditSink audit(dim3_config());
  constexpr unsigned kThreads = 4, kRoutesPerThread = 200;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&audit] {
      for (unsigned i = 0; i < kRoutesPerThread; ++i) {
        SourceDecisionEvent src;
        src.source = 0;
        src.dest = 0b001;
        src.hamming = 1;
        src.c1 = true;
        src.chosen_dim = 0;
        audit.on_event(src);
        HopEvent hop;
        hop.from = 0;
        hop.to = 1;
        hop.dim = 0;
        hop.level = 3;
        hop.nav_before = 1;
        hop.nav_after = 0;
        audit.on_event(hop);
        audit.on_event(RouteDoneEvent{0, 1, "delivered-optimal", 1});
      }
    });
  }
  for (auto& w : workers) w.join();
  audit.finish();
  const AuditReport report = audit.report();
  EXPECT_EQ(report.routes, kThreads * kRoutesPerThread);
  EXPECT_EQ(report.violations_total, 0u)
      << (report.details.empty() ? std::string("(no detail)")
                                 : report.details.front().detail);
}

// --- sampled-stream reconciliation ----------------------------------------

namespace {

/// One clean delivered route (chain + promoted summary) into `audit`.
void emit_promoted_route(AuditSink& audit, std::uint64_t route_id,
                         const char* reason) {
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b001;
  src.hamming = 1;
  src.c1 = true;
  src.chosen_dim = 0;
  audit.on_event(src);
  HopEvent hop;
  hop.from = 0;
  hop.to = 1;
  hop.dim = 0;
  hop.level = 3;
  hop.nav_before = 1;
  hop.nav_after = 0;
  audit.on_event(hop);
  audit.on_event(RouteDoneEvent{0, 1, "delivered-optimal", 1});
  audit.on_event(RouteSummaryEvent{route_id, /*decision_epoch=*/4,
                                   /*ground_epoch=*/4, "delivered-optimal",
                                   /*hops=*/1, /*latency_us=*/-1.0,
                                   /*promoted=*/true, reason});
}

}  // namespace

TEST(Audit, ReconcileSamplingAcceptsAConsistentSampledStream) {
  AuditSink audit(dim3_config());
  emit_promoted_route(audit, 12, "head");
  emit_promoted_route(audit, 40, "drop");
  // One breadcrumb-only summary (emit_breadcrumb_summaries mode): no
  // chain precedes it, and that must NOT read as a truncated route.
  audit.on_event(RouteSummaryEvent{13, 4, 4, "delivered-optimal", 1, -1.0,
                                   /*promoted=*/false, "none"});
  audit.finish();
  audit.reconcile_sampling(/*promoted=*/2, /*breadcrumb_only=*/1,
                           /*shed_events=*/5);
  const AuditReport report = audit.report();
  EXPECT_TRUE(report.clean())
      << (report.details.empty() ? std::string("(no detail)")
                                 : report.details.front().detail);
  EXPECT_EQ(report.routes, 2u);
  EXPECT_EQ(report.promoted_routes, 2u);
  EXPECT_EQ(report.breadcrumb_routes, 1u);
  EXPECT_EQ(report.events_lost, 5u);  // budget sheds, explained
  EXPECT_EQ(report.promoted_by_reason.at("head"), 1u);
  EXPECT_EQ(report.promoted_by_reason.at("drop"), 1u);
}

TEST(Audit, ReconcileSamplingTakesTheSamplerCountWhenNoSummariesFlowed) {
  // The default (<5%-overhead) configuration emits no breadcrumb
  // summaries: the remainder reaches the report only via the sampler's
  // counter, never as violations.
  AuditSink audit(dim3_config());
  emit_promoted_route(audit, 8, "detour");
  audit.finish();
  audit.reconcile_sampling(/*promoted=*/1, /*breadcrumb_only=*/1234);
  const AuditReport report = audit.report();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.breadcrumb_routes, 1234u);
}

TEST(Audit, ReconcileSamplingFlagsCounterDrift) {
  AuditSink audit(dim3_config());
  emit_promoted_route(audit, 3, "stale");
  audit.finish();
  // The sampler claims two promotions; the stream only carries one full
  // chain + summary. Both promoted-count checks must fire.
  audit.reconcile_sampling(/*promoted=*/2, /*breadcrumb_only=*/0);
  const AuditReport report = audit.report();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.violations_by_kind[static_cast<std::size_t>(
                ViolationKind::kSummaryMismatch)],
            2u);
}

TEST(Audit, PromotedSummaryWithoutChainIsAMismatch) {
  AuditSink audit(dim3_config());
  audit.on_event(RouteSummaryEvent{99, 4, 4, "delivered-optimal", 1, -1.0,
                                   /*promoted=*/true, "head"});
  audit.finish();
  const AuditReport report = audit.report();
  EXPECT_GE(report.violations_by_kind[static_cast<std::size_t>(
                ViolationKind::kSummaryMismatch)],
            1u);
}

TEST(Audit, SummaryContradictingItsChainIsAMismatch) {
  AuditSink audit(dim3_config());
  SourceDecisionEvent src;
  src.source = 0;
  src.dest = 0b001;
  src.hamming = 1;
  src.c1 = true;
  src.chosen_dim = 0;
  audit.on_event(src);
  HopEvent hop;
  hop.from = 0;
  hop.to = 1;
  hop.dim = 0;
  hop.level = 3;
  hop.nav_before = 1;
  hop.nav_after = 0;
  audit.on_event(hop);
  audit.on_event(RouteDoneEvent{0, 1, "delivered-optimal", 1});
  // Summary lies about the hop count.
  audit.on_event(RouteSummaryEvent{5, 4, 4, "delivered-optimal", /*hops=*/3,
                                   -1.0, /*promoted=*/true, "head"});
  audit.finish();
  const AuditReport report = audit.report();
  EXPECT_GE(report.violations_by_kind[static_cast<std::size_t>(
                ViolationKind::kSummaryMismatch)],
            1u);
}

TEST(Audit, RingEvictionsFoldIntoEventsLost) {
  // audit_ring must report the flight recorder's clipping as explained
  // loss (events_lost), sourced from RingBufferSink::dropped().
  RingBufferSink ring(/*capacity=*/2);
  for (std::uint32_t i = 0; i < 6; ++i) {
    ring.on_event(NodeFailEvent{i, i});
  }
  const AuditReport report = audit_ring(ring, dim3_config());
  EXPECT_EQ(report.events_lost, 4u);
  EXPECT_EQ(report.events, 2u);
}

}  // namespace
}  // namespace slcube::obs
