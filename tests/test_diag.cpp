// src/diag: syndromes, the majority decoder and its reachable failure
// modes, diagnosed routing with misroute attribution, and the
// thread-invariance of run_diagnosis_sweep.
#include <gtest/gtest.h>

#include "core/global_status.hpp"
#include "diag/decoder.hpp"
#include "diag/routing.hpp"
#include "fault/injection.hpp"
#include "obs/audit.hpp"
#include "workload/experiment.hpp"

namespace slcube::diag {
namespace {

core::SafetyLevels levels_of(const topo::Hypercube& cube,
                             const fault::FaultSet& faults) {
  return core::compute_safety_levels(cube, faults);
}

// --- syndromes ---

TEST(Syndrome, PairSlotEnumeratesEveryUnorderedPairOnce) {
  for (const unsigned n : {2u, 3u, 5u, 8u}) {
    std::vector<bool> seen(n * (n - 1) / 2, false);
    for (unsigned d1 = 0; d1 < n; ++d1) {
      for (unsigned d2 = d1 + 1; d2 < n; ++d2) {
        const unsigned slot = Syndrome::pair_slot(d1, d2, n);
        ASSERT_LT(slot, seen.size());
        EXPECT_FALSE(seen[slot]) << "pair (" << d1 << "," << d2 << ")";
        seen[slot] = true;
      }
    }
  }
}

TEST(Syndrome, HealthyCubeProducesNoAccusations) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  Xoshiro256ss rng(1);
  for (const TestModel model : {TestModel::kPmc, TestModel::kMmStar}) {
    const Syndrome syn =
        generate_syndrome(q, none, {model, LiarPolicy::kAdversarial}, rng);
    for (NodeId u = 0; u < q.num_nodes(); ++u) {
      for (unsigned slot = 0; slot < syn.slots_per_node(); ++slot) {
        ASSERT_FALSE(syn.test(u, slot)) << to_string(model);
      }
    }
  }
}

TEST(Syndrome, DeterministicUnderFixedSeedEvenWithRandomLiars) {
  const topo::Hypercube q(5);
  Xoshiro256ss inject_rng(7);
  const fault::FaultSet ground = fault::inject_uniform(q, 6, inject_rng);
  for (const TestModel model : {TestModel::kPmc, TestModel::kMmStar}) {
    Xoshiro256ss a(42), b(42);
    const SyndromeConfig config{model, LiarPolicy::kRandom};
    const Syndrome sa = generate_syndrome(q, ground, config, a);
    const Syndrome sb = generate_syndrome(q, ground, config, b);
    for (NodeId u = 0; u < q.num_nodes(); ++u) {
      for (unsigned slot = 0; slot < sa.slots_per_node(); ++slot) {
        ASSERT_EQ(sa.test(u, slot), sb.test(u, slot));
      }
    }
  }
}

// --- decoding ---

// The anchor case from decoder.hpp: a single fault has n honest,
// unanimous accusers, so every model/policy combination nails it.
TEST(Decoder, SingleFaultIsAlwaysDiagnosedExactly) {
  for (const unsigned dim : {3u, 4u, 5u}) {
    const topo::Hypercube q(dim);
    for (const TestModel model : {TestModel::kPmc, TestModel::kMmStar}) {
      for (const LiarPolicy liars :
           {LiarPolicy::kRandom, LiarPolicy::kAdversarial,
            LiarPolicy::kAllPass}) {
        const NodeId target = 5;  // exists in every dim >= 3 cube
        fault::FaultSet ground(q.num_nodes());
        ground.mark_faulty(target);
        Xoshiro256ss rng(9);
        const Diagnosis diag =
            diagnose(q, ground, {model, liars}, {}, rng);
        EXPECT_TRUE(diag.exact())
            << "dim " << dim << " " << to_string(model) << "/"
            << to_string(liars);
        EXPECT_TRUE(diag.presumed.is_faulty(target));
        EXPECT_EQ(diag.presumed.count(), 1u)
            << "dim " << dim << " " << to_string(model) << "/"
            << to_string(liars);
      }
    }
  }
}

// A failed k-subcube with k > n - k: every member has more faulty
// neighbors (its accomplices, silently passing every test) than honest
// accusers, so the majority decoder clears the whole block.
TEST(Decoder, LargeSubcubeWithSilentLiarsIsMissedEntirely) {
  const topo::Hypercube q(6);
  Xoshiro256ss inject_rng(3);
  const fault::FaultSet ground = fault::inject_subcube(q, 4, inject_rng);
  ASSERT_EQ(ground.count(), 16u);
  Xoshiro256ss rng(11);
  const Diagnosis diag = diagnose(
      q, ground, {TestModel::kPmc, LiarPolicy::kAllPass}, {}, rng);
  EXPECT_EQ(diag.missed.size(), 16u);
  EXPECT_TRUE(diag.false_accusations.empty());
  EXPECT_TRUE(diag.presumed.empty());
}

// The isolation victim: every tester it has is faulty and lies, so the
// vote is unanimous against a healthy node — and refinement cannot help,
// because no presumed-healthy tester covers the victim at all.
TEST(Decoder, IsolationVictimIsFalselyAccusedUnderAdversarialLiars) {
  const topo::Hypercube q(4);
  Xoshiro256ss inject_rng(5);
  NodeId victim = 0;
  const fault::FaultSet ground =
      fault::inject_isolation(q, 0, inject_rng, victim);
  for (unsigned passes = 0; passes <= 3; ++passes) {
    Xoshiro256ss rng(13);
    DecoderConfig config;
    config.refinement_passes = passes;
    const Diagnosis diag = diagnose(
        q, ground, {TestModel::kPmc, LiarPolicy::kAdversarial}, config, rng);
    EXPECT_FALSE(diag.exact());
    ASSERT_EQ(diag.false_accusations.size(), 1u) << passes << " passes";
    EXPECT_EQ(diag.false_accusations.front(), victim);
    EXPECT_TRUE(diag.missed.empty());
  }
}

TEST(Decoder, TiePolicyDecidesDeadlockedVotes) {
  // Q2 with node 1 faulty and adversarial: the healthy corners 0 and 3
  // each have one honest clearer (node 2) and one liar accusing them
  // (node 1) — a dead 1-1 tie only the tie policy can break. Node 1
  // itself has two honest accusers, node 2 two honest clearers.
  const topo::Hypercube q(2);
  fault::FaultSet ground(q.num_nodes());
  ground.mark_faulty(1);
  Xoshiro256ss rng(1);
  const Syndrome syn = generate_syndrome(
      q, ground, {TestModel::kPmc, LiarPolicy::kAdversarial}, rng);
  DecoderConfig optimist;
  optimist.ties = TiePolicy::kBenefitOfDoubt;
  optimist.refinement_passes = 0;
  const fault::FaultSet trusting = decode_syndrome(q, syn, optimist);
  EXPECT_EQ(trusting.count(), 1u);
  EXPECT_TRUE(trusting.is_faulty(1));
  DecoderConfig pessimist;
  pessimist.ties = TiePolicy::kTrustAccusation;
  pessimist.refinement_passes = 0;
  const fault::FaultSet condemning = decode_syndrome(q, syn, pessimist);
  EXPECT_EQ(condemning.count(), 3u);
  EXPECT_TRUE(condemning.is_faulty(0));
  EXPECT_TRUE(condemning.is_faulty(1));
  EXPECT_TRUE(condemning.is_faulty(3));
  EXPECT_FALSE(condemning.is_faulty(2));
}

// --- diagnosed routing: the three misroute classes ---

TEST(DiagnosedRouting, ExactDiagnosisNeverMisroutes) {
  const topo::Hypercube q(4);
  Xoshiro256ss inject_rng(17);
  const fault::FaultSet ground = fault::inject_uniform(q, 3, inject_rng);
  const core::SafetyLevels levels = levels_of(q, ground);
  for (NodeId s = 0; s < q.num_nodes(); ++s) {
    for (NodeId d = 0; d < q.num_nodes(); ++d) {
      if (s == d || ground.is_faulty(s) || ground.is_faulty(d)) continue;
      const DiagnosedRouteResult r =
          route_diagnosed(q, ground, levels, ground, levels, s, d);
      EXPECT_EQ(r.misroute, MisrouteClass::kNone);
      EXPECT_EQ(r.delivered, r.planned.delivered());
      EXPECT_FALSE(r.dropped);
    }
  }
}

TEST(DiagnosedRouting, FalselyAccusedDestinationIsAFalseReject) {
  const topo::Hypercube q(4);
  const fault::FaultSet ground(q.num_nodes());  // nothing actually broken
  const core::SafetyLevels ground_levels = levels_of(q, ground);
  fault::FaultSet diagnosed(q.num_nodes());
  diagnosed.mark_faulty(9);
  const core::SafetyLevels diag_levels = levels_of(q, diagnosed);
  const DiagnosedRouteResult r =
      route_diagnosed(q, ground, ground_levels, diagnosed, diag_levels, 0, 9);
  EXPECT_EQ(r.misroute, MisrouteClass::kFalseRejectAtSource);
  EXPECT_EQ(r.planned.status, core::RouteStatus::kSourceRefused);
  EXPECT_FALSE(r.delivered);
  EXPECT_TRUE(r.ground_decision.feasible());
}

TEST(DiagnosedRouting, MissedFaultDropsTheMessageMidRoute) {
  // Ground truth kills both interior nodes of the 0 -> 3 square; the
  // diagnosis missed them, so the plan confidently walks into one.
  const topo::Hypercube q(3);
  fault::FaultSet ground(q.num_nodes());
  ground.mark_faulty(1);
  ground.mark_faulty(2);
  const core::SafetyLevels ground_levels = levels_of(q, ground);
  const fault::FaultSet diagnosed(q.num_nodes());  // believes all healthy
  const core::SafetyLevels diag_levels = levels_of(q, diagnosed);
  const DiagnosedRouteResult r =
      route_diagnosed(q, ground, ground_levels, diagnosed, diag_levels, 0, 3);
  EXPECT_EQ(r.misroute, MisrouteClass::kOptimismDrop);
  EXPECT_TRUE(r.planned.delivered());  // the PLAN believed it would land
  EXPECT_FALSE(r.delivered);
  EXPECT_TRUE(r.dropped);
  EXPECT_TRUE(r.drop_node == 1 || r.drop_node == 2);
  EXPECT_LT(r.hops_taken, r.planned.hops());
}

TEST(DiagnosedRouting, FalseAccusationForcesAPessimismDetour) {
  // Ground truth: nothing is broken, every pair has an optimal route.
  // Diagnosed: a few healthy nodes condemned. Some pair must be pushed
  // onto the H+2 spare detour, and every such pair must be classified
  // as a pessimism detour (delivered, two hops of pure diagnosis tax).
  const topo::Hypercube q(4);
  const fault::FaultSet ground(q.num_nodes());
  const core::SafetyLevels ground_levels = levels_of(q, ground);
  fault::FaultSet diagnosed(q.num_nodes());
  diagnosed.mark_faulty(1);
  diagnosed.mark_faulty(2);
  const core::SafetyLevels diag_levels = levels_of(q, diagnosed);
  unsigned detours = 0;
  for (NodeId s = 0; s < q.num_nodes(); ++s) {
    for (NodeId d = 0; d < q.num_nodes(); ++d) {
      if (s == d || diagnosed.is_faulty(s) || diagnosed.is_faulty(d)) continue;
      const DiagnosedRouteResult r = route_diagnosed(
          q, ground, ground_levels, diagnosed, diag_levels, s, d);
      if (r.planned.status != core::RouteStatus::kDeliveredSuboptimal) {
        continue;
      }
      ++detours;
      EXPECT_EQ(r.misroute, MisrouteClass::kPessimismDetour);
      EXPECT_TRUE(r.delivered);
      EXPECT_EQ(r.hops_taken, r.planned.decision.hamming + 2);
    }
  }
  EXPECT_GT(detours, 0u) << "construction failed to force any H+2 detour";
}

// --- audit attribution ---

TEST(DiagnosedRouting, AuditAttributesEveryMisrouteClass) {
  const topo::Hypercube q(4);
  obs::AuditConfig audit_config;
  audit_config.dimension = q.dimension();
  obs::AuditSink audit(audit_config);
  core::UnicastOptions options;
  options.trace = &audit;

  const fault::FaultSet none(q.num_nodes());
  const core::SafetyLevels none_levels = levels_of(q, none);

  // false-reject-source: destination falsely accused, ground all-clear.
  fault::FaultSet accuse_dest(q.num_nodes());
  accuse_dest.mark_faulty(9);
  (void)route_diagnosed(q, none, none_levels, accuse_dest,
                        levels_of(q, accuse_dest), 0, 9, options);

  // optimism-drop: ground kills the square's interior, diagnosis missed.
  fault::FaultSet square(q.num_nodes());
  square.mark_faulty(1);
  square.mark_faulty(2);
  (void)route_diagnosed(q, square, levels_of(q, square), none, none_levels, 0,
                        3, options);

  // pessimism-detour + none: ground clean, two false accusations.
  fault::FaultSet accused(q.num_nodes());
  accused.mark_faulty(1);
  accused.mark_faulty(2);
  const core::SafetyLevels accused_levels = levels_of(q, accused);
  std::uint64_t detours = 0, clean = 0;
  for (NodeId s = 0; s < q.num_nodes(); ++s) {
    for (NodeId d = 0; d < q.num_nodes(); ++d) {
      if (s == d || accused.is_faulty(s) || accused.is_faulty(d)) continue;
      const DiagnosedRouteResult r = route_diagnosed(
          q, none, none_levels, accused, accused_levels, s, d, options);
      (r.misroute == MisrouteClass::kPessimismDetour ? detours : clean) += 1;
    }
  }
  ASSERT_GT(detours, 0u);

  audit.finish();
  const obs::AuditReport report = audit.report();
  EXPECT_TRUE(report.clean()) << report.violations_total << " violations";
  EXPECT_EQ(report.misroutes, 2 + detours);
  EXPECT_EQ(report.misroutes_by_class.at("false-reject-source"), 1u);
  EXPECT_EQ(report.misroutes_by_class.at("optimism-drop"), 1u);
  EXPECT_EQ(report.misroutes_by_class.at("pessimism-detour"), detours);
  EXPECT_EQ(report.misroutes_by_class.at("none"), clean);
}

// --- the sweep driver ---

TEST(DiagnosisSweep, DigestIsThreadCountInvariant) {
  workload::DiagSweepConfig config;
  config.dimension = 5;
  config.fault_counts = {4, 8};
  config.trials = 24;
  config.pairs = 8;
  config.syndrome = {TestModel::kMmStar, LiarPolicy::kAdversarial};
  config.threads = 1;
  const auto serial = run_diagnosis_sweep(config);
  config.threads = 4;
  const auto parallel = run_diagnosis_sweep(config);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].digest, parallel[i].digest);
    EXPECT_EQ(serial[i].delivered.hits(), parallel[i].delivered.hits());
    EXPECT_EQ(serial[i].false_rejects, parallel[i].false_rejects);
    EXPECT_EQ(serial[i].optimism_drops, parallel[i].optimism_drops);
    EXPECT_EQ(serial[i].pessimism_detours, parallel[i].pessimism_detours);
  }
}

TEST(DiagnosisSweep, GroundTruthArmNeverMisroutes) {
  workload::DiagSweepConfig config;
  config.dimension = 5;
  config.fault_counts = {6};
  config.trials = 16;
  config.pairs = 8;
  config.ground_truth_arm = true;
  config.threads = 2;
  const auto points = run_diagnosis_sweep(config);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].misrouted.hits(), 0u);
  EXPECT_EQ(points[0].exact_diagnosis.value(), 1.0);
  EXPECT_EQ(points[0].false_rejects, 0u);
  EXPECT_EQ(points[0].optimism_drops, 0u);
  EXPECT_EQ(points[0].pessimism_detours, 0u);
}

TEST(DiagnosisSweep, FixedFaultsArmUsesTheExactPlacement) {
  const topo::Hypercube q(5);
  fault::FaultSet placement(q.num_nodes());
  for (const NodeId a : {1u, 2u, 4u, 8u, 16u}) placement.mark_faulty(a);
  workload::DiagSweepConfig config;
  config.dimension = 5;
  config.fault_counts = {placement.count()};
  config.trials = 8;
  config.pairs = 8;
  config.ground_truth_arm = true;
  config.fixed_faults = &placement;
  config.threads = 1;
  const auto points = run_diagnosis_sweep(config);
  ASSERT_EQ(points.size(), 1u);
  // Node 0 is fully surrounded, so some attempted pairs must refuse.
  EXPECT_GT(points[0].refused.hits(), 0u);
  EXPECT_EQ(points[0].misrouted.hits(), 0u);  // ground arm stays clean
}

}  // namespace
}  // namespace slcube::diag
