// The paper's properties and theorems as executable checks: Theorem 2
// (exhaustive + randomized), Property 1 with its Corollary, Property 2
// (including the paper's own example), and Theorem 4 on disconnected
// cubes.
#include "core/properties.hpp"

#include <gtest/gtest.h>

#include "core/global_status.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"

namespace slcube::core {
namespace {

TEST(Theorem2, HoldsOnFig1) {
  const auto sc = fault::scenario::fig1();
  EXPECT_EQ(check_theorem2(sc.cube, sc.faults,
                           compute_safety_levels(sc.cube, sc.faults)),
            "");
}

TEST(Theorem2, HoldsOnFig3Disconnected) {
  const auto sc = fault::scenario::fig3();
  EXPECT_EQ(check_theorem2(sc.cube, sc.faults,
                           compute_safety_levels(sc.cube, sc.faults)),
            "");
}

TEST(Theorem2, ExhaustiveQ4UpTo5Faults) {
  const topo::Hypercube q(4);
  for (std::uint32_t mask = 0; mask < (1u << 16); ++mask) {
    if (bits::popcount(mask) > 5) continue;
    fault::FaultSet f(q.num_nodes());
    for (NodeId a = 0; a < 16; ++a) {
      if ((mask >> a) & 1u) f.mark_faulty(a);
    }
    ASSERT_EQ(check_theorem2(q, f, compute_safety_levels(q, f)), "")
        << "mask " << mask;
  }
}

class Theorem2Sweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(Theorem2Sweep, RandomFaultSets) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 4711);
  for (int t = 0; t < 15; ++t) {
    const auto f = fault::inject_uniform(q, rng.below(q.num_nodes()), rng);
    ASSERT_EQ(check_theorem2(q, f, compute_safety_levels(q, f)), "");
  }
}

INSTANTIATE_TEST_SUITE_P(Dims3To7, Theorem2Sweep,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u));

TEST(Theorem2, ClusteredAndIsolationFaults) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(606);
  for (int t = 0; t < 10; ++t) {
    const auto fc = fault::inject_clustered(q, 12, rng);
    ASSERT_EQ(check_theorem2(q, fc, compute_safety_levels(q, fc)), "");
    NodeId victim = 0;
    const auto fi = fault::inject_isolation(q, 3, rng, victim);
    ASSERT_EQ(check_theorem2(q, fi, compute_safety_levels(q, fi)), "");
  }
}

class Property1Sweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(Property1Sweep, StabilizationRoundBounds) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 17);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, rng.below(q.num_nodes()), rng);
    ASSERT_EQ(check_property1(q, f), "");
  }
}

INSTANTIATE_TEST_SUITE_P(Dims2To7, Property1Sweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u));

TEST(Property1, StabilizationRoundsVector) {
  const auto sc = fault::scenario::fig1();
  const auto rounds = gs_stabilization_rounds(sc.cube, sc.faults);
  // Level-1 nodes settle in round 1; the two level-2 nodes in round 2;
  // level-4 nodes never change.
  EXPECT_EQ(rounds[0b0001], 1u);
  EXPECT_EQ(rounds[0b0111], 1u);
  EXPECT_EQ(rounds[0b0000], 2u);
  EXPECT_EQ(rounds[0b0101], 2u);
  EXPECT_EQ(rounds[0b1111], 0u);
  EXPECT_EQ(rounds[0b1000], 0u);
}

TEST(Property2, PaperExample) {
  // "in the faulty four-cube with three faulty nodes: 0000, 0110, and
  // 1101, all nonfaulty but unsafe nodes have at least one safe neighbor."
  const auto sc = fault::scenario::property2_example();
  EXPECT_EQ(check_property2(sc.cube, sc.faults,
                            compute_safety_levels(sc.cube, sc.faults)),
            "");
}

class Property2Sweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(Property2Sweep, FewerThanNFaults) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 23);
  for (int t = 0; t < 20; ++t) {
    const auto f = fault::inject_uniform(q, n - 1, rng);
    ASSERT_EQ(check_property2(q, f, compute_safety_levels(q, f)), "");
  }
}

INSTANTIATE_TEST_SUITE_P(Dims2To9, Property2Sweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u));

TEST(Property2, ExhaustiveQ4ThreeFaults) {
  const topo::Hypercube q(4);
  for (std::uint32_t mask = 0; mask < (1u << 16); ++mask) {
    if (bits::popcount(mask) != 3) continue;
    fault::FaultSet f(q.num_nodes());
    for (NodeId a = 0; a < 16; ++a) {
      if ((mask >> a) & 1u) f.mark_faulty(a);
    }
    ASSERT_EQ(check_property2(q, f, compute_safety_levels(q, f)), "")
        << "mask " << mask;
  }
}

TEST(Theorem4, Fig3Disconnected) {
  const auto sc = fault::scenario::fig3();
  EXPECT_EQ(check_theorem4(sc.cube, sc.faults), "");
  // And the safe sets are indeed empty, not just the check passing
  // vacuously:
  EXPECT_EQ(compute_safe_nodes(sc.cube, sc.faults,
                               SafeNodeRule::kLeeHayes)
                .safe_count(),
            0u);
  EXPECT_EQ(compute_safe_nodes(sc.cube, sc.faults,
                               SafeNodeRule::kWuFernandez)
                .safe_count(),
            0u);
}

class Theorem4Sweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(Theorem4Sweep, IsolationAlwaysEmptiesSafeSets) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 5150);
  for (int t = 0; t < 15; ++t) {
    NodeId victim = 0;
    const auto f =
        fault::inject_isolation(q, rng.below(4), rng, victim);
    ASSERT_EQ(check_theorem4(q, f), "");
  }
}

INSTANTIATE_TEST_SUITE_P(Dims3To8, Theorem4Sweep,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u));

TEST(Theorem4, RandomFaultsNeverViolate) {
  // check_theorem4 passes vacuously on connected cubes and substantively
  // on disconnected ones; either way it must never report a violation.
  const topo::Hypercube q(6);
  Xoshiro256ss rng(66);
  for (int t = 0; t < 40; ++t) {
    const auto f = fault::inject_uniform(q, rng.below(40), rng);
    ASSERT_EQ(check_theorem4(q, f), "");
  }
}

TEST(Checkers, ReportCounterexamples) {
  // A fabricated bad level table must produce a nonempty diagnosis.
  const topo::Hypercube q(3);
  const fault::FaultSet f(q.num_nodes(), {0b000, 0b011, 0b101});
  SafetyLevels lie(3, 8, 3);  // claims everyone is 3-safe
  for (const NodeId a : f.faulty_nodes()) lie[a] = 0;
  // Node 001 has faulty neighbors 000, 011, 101 — all three! It cannot
  // reach distance-3 nodes optimally, so claiming 3-safe breaks Thm 2.
  EXPECT_NE(check_theorem2(q, f, lie), "");
}

}  // namespace
}  // namespace slcube::core
