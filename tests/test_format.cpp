#include "common/format.hpp"

#include <gtest/gtest.h>

namespace slcube {
namespace {

TEST(Format, ToBitsMsbFirst) {
  EXPECT_EQ(to_bits(0b0101, 4), "0101");
  EXPECT_EQ(to_bits(0, 4), "0000");
  EXPECT_EQ(to_bits(15, 4), "1111");
  EXPECT_EQ(to_bits(1, 7), "0000001");
}

TEST(Format, FromBitsInverse) {
  for (std::uint32_t v = 0; v < 64; ++v) {
    EXPECT_EQ(from_bits(to_bits(v, 6)), v);
  }
}

TEST(Format, FromBitsExplicit) {
  EXPECT_EQ(from_bits("1101"), 13u);
  EXPECT_EQ(from_bits("0"), 0u);
  EXPECT_EQ(from_bits("1"), 1u);
}

TEST(Format, ToDigitsCompact) {
  // coords[0] is dimension 0, printed last (paper order a2 a1 a0).
  EXPECT_EQ(to_digits({1, 2, 0}), "021");
  EXPECT_EQ(to_digits({0, 0, 0}), "000");
}

TEST(Format, ToDigitsWideRadixUsesDots) {
  EXPECT_EQ(to_digits({0, 12, 3}), "3.12.0");
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(0.5), "50.00%");
  EXPECT_EQ(percent(1.0, 0), "100%");
  EXPECT_EQ(percent(0.12345, 1), "12.3%");
}

}  // namespace
}  // namespace slcube
