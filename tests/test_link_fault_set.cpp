#include "fault/link_fault_set.hpp"

#include <gtest/gtest.h>

#include <type_traits>

namespace slcube::fault {
namespace {

TEST(LinkFaultSet, EmptyByDefault) {
  LinkFaultSet lf((topo::Hypercube(4)));
  EXPECT_TRUE(lf.empty());
  EXPECT_EQ(lf.count(), 0u);
  EXPECT_FALSE(lf.is_faulty(0, 0));
}

TEST(LinkFaultSet, SymmetricFromBothEndpoints) {
  const topo::Hypercube q(4);
  LinkFaultSet lf(q);
  // The Fig. 4 link: between 1000 and 1001, i.e. dimension 0.
  lf.mark_faulty(0b1000, 0);
  EXPECT_TRUE(lf.is_faulty(0b1000, 0));
  EXPECT_TRUE(lf.is_faulty(0b1001, 0));  // same link, other end
  EXPECT_FALSE(lf.is_faulty(0b1000, 1));
  EXPECT_EQ(lf.count(), 1u);
}

TEST(LinkFaultSet, MarkFromUpperEndpointCanonicalizes) {
  const topo::Hypercube q(3);
  LinkFaultSet lf(q);
  lf.mark_faulty(0b101, 2);  // link (001, 101) marked from the upper end
  EXPECT_TRUE(lf.is_faulty(0b001, 2));
  EXPECT_EQ(lf.count(), 1u);
  lf.mark_faulty(0b001, 2);  // same link from the lower end: no duplicate
  EXPECT_EQ(lf.count(), 1u);
}

TEST(LinkFaultSet, Repair) {
  const topo::Hypercube q(3);
  LinkFaultSet lf(q);
  lf.mark_faulty(0, 1);
  lf.mark_healthy(0b010, 1);  // repair via the other endpoint
  EXPECT_FALSE(lf.is_faulty(0, 1));
  EXPECT_TRUE(lf.empty());
}

TEST(LinkFaultSet, TouchesIdentifiesN2Membership) {
  const topo::Hypercube q(4);
  LinkFaultSet lf(q);
  lf.mark_faulty(0b1000, 0);
  EXPECT_TRUE(lf.touches(0b1000));
  EXPECT_TRUE(lf.touches(0b1001));
  EXPECT_FALSE(lf.touches(0b1010));
  EXPECT_FALSE(lf.touches(0b0000));
}

// A LinkFaultSet is only meaningful relative to one concrete cube, so
// the placeholder-cube default constructor is gone for good.
static_assert(!std::is_default_constructible_v<LinkFaultSet>);

TEST(LinkFaultSet, AdjacentCountsTrackBothEndpoints) {
  const topo::Hypercube q(4);
  LinkFaultSet lf(q);
  EXPECT_EQ(lf.adjacent_faulty(0b0000), 0u);
  lf.mark_faulty(0b0000, 0);
  lf.mark_faulty(0b0000, 1);
  EXPECT_EQ(lf.adjacent_faulty(0b0000), 2u);
  EXPECT_EQ(lf.adjacent_faulty(0b0001), 1u);
  EXPECT_EQ(lf.adjacent_faulty(0b0010), 1u);
  EXPECT_EQ(lf.adjacent_faulty(0b0011), 0u);
  lf.mark_healthy(0b0001, 0);  // repair via the other endpoint
  EXPECT_EQ(lf.adjacent_faulty(0b0000), 1u);
  EXPECT_EQ(lf.adjacent_faulty(0b0001), 0u);
  EXPECT_FALSE(lf.touches(0b0001));
  EXPECT_TRUE(lf.touches(0b0010));
}

TEST(LinkFaultSet, DoubleMarkIsIdempotent) {
  const topo::Hypercube q(3);
  LinkFaultSet lf(q);
  lf.mark_faulty(0b000, 2);
  lf.mark_faulty(0b100, 2);  // same link from the other end: no recount
  EXPECT_EQ(lf.count(), 1u);
  EXPECT_EQ(lf.adjacent_faulty(0b000), 1u);
  EXPECT_EQ(lf.adjacent_faulty(0b100), 1u);
  lf.mark_healthy(0b000, 2);
  lf.mark_healthy(0b000, 2);  // double repair: counts must not underflow
  EXPECT_EQ(lf.adjacent_faulty(0b000), 0u);
  EXPECT_EQ(lf.adjacent_faulty(0b100), 0u);
  EXPECT_FALSE(lf.touches(0b000));
}

TEST(LinkFaultSet, FaultyLinksSortedCanonical) {
  const topo::Hypercube q(4);
  LinkFaultSet lf(q);
  lf.mark_faulty(0b1001, 1);  // canonical lower end 1001 (bit 1 clear)
  lf.mark_faulty(0b0111, 3);  // canonical lower end 0111
  const auto links = lf.faulty_links();
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], (std::pair<NodeId, Dim>{0b0111, 3u}));
  EXPECT_EQ(links[1], (std::pair<NodeId, Dim>{0b1001, 1u}));
}

}  // namespace
}  // namespace slcube::fault
