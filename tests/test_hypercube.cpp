#include "topology/hypercube.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace slcube::topo {
namespace {

TEST(Hypercube, SizesAndDegree) {
  for (unsigned n = 1; n <= 10; ++n) {
    const Hypercube q(n);
    EXPECT_EQ(q.dimension(), n);
    EXPECT_EQ(q.num_nodes(), std::uint64_t{1} << n);
    EXPECT_EQ(q.degree(), n);
  }
}

TEST(Hypercube, Contains) {
  const Hypercube q(3);
  EXPECT_TRUE(q.contains(0));
  EXPECT_TRUE(q.contains(7));
  EXPECT_FALSE(q.contains(8));
}

TEST(Hypercube, NeighborFlipsOneBit) {
  const Hypercube q(4);
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    for (Dim d = 0; d < 4; ++d) {
      const NodeId b = q.neighbor(a, d);
      EXPECT_EQ(q.distance(a, b), 1u);
      EXPECT_EQ(a ^ b, bits::unit(d));
      EXPECT_EQ(q.neighbor(b, d), a);  // symmetric edge
    }
  }
}

TEST(Hypercube, NeighborsAreDistinct) {
  const Hypercube q(5);
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    std::set<NodeId> nbrs;
    q.for_each_neighbor(a, [&](Dim, NodeId b) { nbrs.insert(b); });
    EXPECT_EQ(nbrs.size(), 5u);
    EXPECT_FALSE(nbrs.contains(a));
  }
}

TEST(Hypercube, DistanceIsHamming) {
  const Hypercube q(4);
  EXPECT_EQ(q.distance(0b0000, 0b1111), 4u);
  EXPECT_EQ(q.distance(0b1010, 0b1000), 1u);
  EXPECT_EQ(q.distance(0b0110, 0b0110), 0u);
}

TEST(Hypercube, NavigationVectorMarksPreferredDims) {
  const Hypercube q(4);
  const auto nav = q.navigation_vector(0b1110, 0b0001);
  EXPECT_EQ(nav, 0b1111u);
  EXPECT_EQ(bits::popcount(nav), q.distance(0b1110, 0b0001));
}

TEST(Hypercube, PreferredNeighborsReduceDistance) {
  const Hypercube q(6);
  const NodeId s = 0b101010, d = 0b010110;
  const auto nav = q.navigation_vector(s, d);
  unsigned count = 0;
  q.for_each_preferred(s, nav, [&](Dim, NodeId b) {
    EXPECT_EQ(q.distance(b, d), q.distance(s, d) - 1);
    ++count;
  });
  EXPECT_EQ(count, q.distance(s, d));
}

TEST(Hypercube, SpareNeighborsIncreaseDistance) {
  const Hypercube q(6);
  const NodeId s = 0b101010, d = 0b010110;
  const auto nav = q.navigation_vector(s, d);
  unsigned count = 0;
  q.for_each_spare(s, nav, [&](Dim, NodeId b) {
    EXPECT_EQ(q.distance(b, d), q.distance(s, d) + 1);
    ++count;
  });
  EXPECT_EQ(count, q.dimension() - q.distance(s, d));
}

TEST(Hypercube, PreferredPlusSpareIsAllNeighbors) {
  const Hypercube q(5);
  for (NodeId s = 0; s < q.num_nodes(); s += 3) {
    for (NodeId d = 0; d < q.num_nodes(); d += 5) {
      const auto nav = q.navigation_vector(s, d);
      std::set<NodeId> together;
      q.for_each_preferred(s, nav,
                           [&](Dim, NodeId b) { together.insert(b); });
      q.for_each_spare(s, nav, [&](Dim, NodeId b) { together.insert(b); });
      EXPECT_EQ(together.size(), q.dimension());
    }
  }
}

TEST(Hypercube, AllNodesEnumeratesEverything) {
  const Hypercube q(4);
  const auto all = q.all_nodes();
  ASSERT_EQ(all.size(), 16u);
  for (NodeId i = 0; i < 16; ++i) EXPECT_EQ(all[i], i);
}

TEST(Hypercube, Equality) {
  EXPECT_EQ(Hypercube(3), Hypercube(3));
  EXPECT_NE(Hypercube(3), Hypercube(4));
}

/// Property sweep: Q_n is vertex-transitive and bipartite; parity of the
/// label's popcount 2-colors it.
class HypercubeDims : public ::testing::TestWithParam<unsigned> {};

TEST_P(HypercubeDims, BipartiteByParity) {
  const Hypercube q(GetParam());
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    q.for_each_neighbor(a, [&](Dim, NodeId b) {
      EXPECT_NE(bits::popcount(a) % 2, bits::popcount(b) % 2);
    });
  }
}

TEST_P(HypercubeDims, EdgeCountMatchesFormula) {
  const Hypercube q(GetParam());
  std::uint64_t half_edges = 0;
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    q.for_each_neighbor(a, [&](Dim, NodeId) { ++half_edges; });
  }
  EXPECT_EQ(half_edges, q.num_nodes() * q.dimension());
}

INSTANTIATE_TEST_SUITE_P(Dims1To8, HypercubeDims,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace slcube::topo
