// svc::SnapshotOracle + svc::serve_route — the epoch layer's three
// load-bearing guarantees:
//
//  1. Every published snapshot is bit-identical to a from-scratch
//     run_egs of that snapshot's own fault configuration, and stays so
//     (immutable) no matter how far the writer churns ahead.
//  2. With ground == decision (no churn) serve_route reproduces
//     core::route_unicast_egs exactly: same terminal status, same path.
//  3. Under churn, staleness is classified soundly: a route is dropped
//     only at a hop the *newer* epoch faulted, every drop is stale
//     (equal epochs mean identical tables, which cannot block their own
//     choices), and delivered/detour routes that raced a publication are
//     counted as stale without being harmed.
//
// The multi-reader/single-writer tests at the bottom are the TSan
// targets: real std::threads hammering acquire()/serve_route() against
// a live writer, each acquired snapshot re-verified against run_egs.
#include "svc/snapshot_oracle.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/egs.hpp"
#include "fault/injection.hpp"
#include "obs/audit.hpp"
#include "svc/serve.hpp"
#include "workload/pair_sampler.hpp"

namespace slcube::svc {
namespace {

void expect_snapshot_matches_scratch(const Snapshot& snap, const char* what) {
  const core::EgsResult scratch =
      core::run_egs(snap.links.cube(), snap.faults, snap.links);
  ASSERT_EQ(snap.public_view, scratch.public_view)
      << what << ": epoch " << snap.epoch
      << " public view diverged from run_egs";
  ASSERT_EQ(snap.self_view, scratch.self_view)
      << what << ": epoch " << snap.epoch
      << " self view diverged from run_egs";
}

TEST(SnapshotOracle, EpochZeroIsPublishedByConstruction) {
  const topo::Hypercube q(4);
  const SnapshotOracle oracle(q);
  const SnapshotPtr snap = oracle.acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch, 0u);
  EXPECT_EQ(oracle.epoch(), 0u);
  EXPECT_EQ(oracle.stats().epochs_published, 0u)
      << "construction's epoch 0 must not count as a post-construction "
         "publish";
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    EXPECT_EQ(snap->public_view[a], 4);
    EXPECT_EQ(snap->self_view[a], 4);
  }
}

TEST(SnapshotOracle, ArbitraryStartConfigurationMatchesScratch) {
  Xoshiro256ss rng(0x5AFE01);
  for (unsigned dim = 3; dim <= 6; ++dim) {
    const topo::Hypercube q(dim);
    for (int t = 0; t < 10; ++t) {
      const auto faults =
          fault::inject_uniform(q, rng.below(q.num_nodes() / 4), rng);
      const auto links = fault::inject_links_uniform(q, rng.below(dim), rng);
      const SnapshotOracle oracle(q, faults, links);
      const SnapshotPtr snap = oracle.acquire();
      EXPECT_EQ(snap->faults, faults);
      expect_snapshot_matches_scratch(*snap, "arbitrary start");
    }
  }
}

TEST(SnapshotOracle, EveryWriterOpPublishesOneMatchingEpoch) {
  const topo::Hypercube q(5);
  SnapshotOracle oracle(q);
  Xoshiro256ss rng(0xC0FFEE5);
  std::uint64_t expected_epoch = 0;
  for (int op = 0; op < 60; ++op) {
    const auto faults = oracle.writer_oracle().faults();
    switch (rng.below(4)) {
      case 0: {
        const auto healthy = faults.healthy_nodes();
        if (healthy.empty()) continue;
        oracle.add_fault(healthy[rng.below(healthy.size())]);
        break;
      }
      case 1: {
        const auto faulty = faults.faulty_nodes();
        if (faulty.empty()) continue;
        oracle.remove_fault(faulty[rng.below(faulty.size())]);
        break;
      }
      case 2: {
        const auto a = static_cast<NodeId>(rng.below(q.num_nodes()));
        const auto d = static_cast<Dim>(rng.below(q.dimension()));
        if (oracle.writer_oracle().links().is_faulty(a, d)) continue;
        oracle.fail_link(a, d);
        break;
      }
      default: {
        const auto faulty = oracle.writer_oracle().links().faulty_links();
        if (faulty.empty()) continue;
        const auto [a, d] = faulty[rng.below(faulty.size())];
        oracle.recover_link(a, d);
        break;
      }
    }
    ++expected_epoch;
    const SnapshotPtr snap = oracle.acquire();
    ASSERT_EQ(snap->epoch, expected_epoch) << "op " << op;
    ASSERT_EQ(oracle.epoch(), expected_epoch);
    ASSERT_EQ(oracle.stats().epochs_published, expected_epoch);
    expect_snapshot_matches_scratch(*snap, "writer op");
  }
}

TEST(SnapshotOracle, HeldSnapshotsAreImmutableAcrossChurn) {
  const topo::Hypercube q(4);
  SnapshotOracle oracle(q);
  oracle.add_fault(3);
  const SnapshotPtr held = oracle.acquire();
  const fault::FaultSet held_faults = held->faults;
  const core::SafetyLevels held_public = held->public_view;
  const core::SafetyLevels held_self = held->self_view;
  // Churn far past the held epoch, including toggles of the same state.
  oracle.remove_fault(3);
  oracle.add_fault(7);
  oracle.fail_link(0, 2);
  oracle.add_fault(3);
  EXPECT_EQ(oracle.epoch(), 5u);
  EXPECT_EQ(held->epoch, 1u);
  EXPECT_EQ(held->faults, held_faults);
  EXPECT_EQ(held->public_view, held_public);
  EXPECT_EQ(held->self_view, held_self);
  expect_snapshot_matches_scratch(*held, "held epoch");
}

TEST(SnapshotOracle, ApplyBatchAndRetargetPublishOnce) {
  const topo::Hypercube q(5);
  SnapshotOracle oracle(q);
  const NodeId nodes[] = {1, 2, 9};
  const core::EgsOracle::LinkToggle links[] = {{4, 0}, {12, 3}};
  oracle.apply(nodes, links);
  EXPECT_EQ(oracle.epoch(), 1u);
  expect_snapshot_matches_scratch(*oracle.acquire(), "apply batch");
  Xoshiro256ss rng(0x7A96E7);
  const auto target_f = fault::inject_uniform(q, 6, rng);
  const auto target_l = fault::inject_links_uniform(q, 4, rng);
  oracle.retarget(target_f, target_l);
  EXPECT_EQ(oracle.epoch(), 2u);
  const SnapshotPtr snap = oracle.acquire();
  EXPECT_EQ(snap->faults, target_f);
  expect_snapshot_matches_scratch(*snap, "retarget");
  // Retarget is a publication barrier even with nothing to change.
  oracle.retarget(target_f, target_l);
  EXPECT_EQ(oracle.epoch(), 3u);
}

// Guarantee 2: with ground == decision the serving path IS the paper's
// routing algorithm — same status, same path, across randomized
// configurations and every healthy pair of a small cube.
TEST(Serve, MatchesRouteUnicastEgsWhenGroundEqualsDecision) {
  Xoshiro256ss rng(0x0DD5EED);
  for (unsigned dim = 3; dim <= 5; ++dim) {
    const topo::Hypercube q(dim);
    for (int t = 0; t < 30; ++t) {
      const auto faults =
          fault::inject_uniform(q, rng.below(q.num_nodes() / 3), rng);
      const auto links = fault::inject_links_uniform(q, rng.below(dim), rng);
      const SnapshotOracle oracle(q, faults, links);
      const SnapshotPtr snap = oracle.acquire();
      for (const auto& [s, d] : workload::all_healthy_pairs(faults)) {
        const core::RouteResult expected = core::route_unicast_egs(
            q, faults, links, snap->views(), s, d);
        const ServeResult got = serve_route(*snap, *snap, s, d);
        ASSERT_EQ(got.path, expected.path)
            << "dim " << dim << " trial " << t << " s=" << s << " d=" << d;
        ASSERT_FALSE(got.stale());
        switch (expected.status) {
          case core::RouteStatus::kDeliveredOptimal:
            ASSERT_EQ(got.status, ServeStatus::kDeliveredOptimal);
            break;
          case core::RouteStatus::kDeliveredSuboptimal:
            ASSERT_EQ(got.status, ServeStatus::kDeliveredSuboptimal);
            break;
          case core::RouteStatus::kSourceRefused:
            ASSERT_EQ(got.status, ServeStatus::kRefused);
            break;
          case core::RouteStatus::kStuck:
            FAIL() << "fixed-point tables cannot produce kStuck";
        }
      }
    }
  }
}

// Guarantee 3, constructed cases. Fault-free Q3, s=0, d=7: the default
// lowest-dim preference walks 0 -> 1 -> 3 -> 7.
TEST(Serve, StalenessDropsAtTheExactFaultedHop) {
  const topo::Hypercube q(3);
  SnapshotOracle oracle(q);
  const SnapshotPtr decision = oracle.acquire();

  {  // First-hop link dies after the decision snapshot was acquired.
    oracle.fail_link(0, 0);
    const ServeResult res =
        serve_route(*decision, *oracle.acquire(), 0, 7);
    EXPECT_EQ(res.status, ServeStatus::kDroppedLink);
    EXPECT_TRUE(res.stale());
    EXPECT_EQ(res.path, (analysis::Path{0}));  // died leaving the source
    EXPECT_EQ(res.decision_epoch, 0u);
    EXPECT_EQ(res.ground_epoch, 1u);
    oracle.recover_link(0, 0);
  }
  {  // Second node on the path dies: one hop lands, the next drops.
    oracle.add_fault(3);
    const ServeResult res =
        serve_route(*decision, *oracle.acquire(), 0, 7);
    EXPECT_EQ(res.status, ServeStatus::kDroppedNode);
    EXPECT_TRUE(res.stale());
    EXPECT_EQ(res.path, (analysis::Path{0, 1}));
    oracle.remove_fault(3);
  }
  {  // The source itself is dead in the live epoch: nothing is sent.
    oracle.add_fault(0);
    const ServeResult res =
        serve_route(*decision, *oracle.acquire(), 0, 7);
    EXPECT_EQ(res.status, ServeStatus::kDroppedSource);
    EXPECT_TRUE(res.stale());
    EXPECT_EQ(res.hops(), 0u);
    oracle.remove_fault(0);
  }
  {  // A fault off the path: the stale route is delivered anyway.
    oracle.add_fault(6);
    const ServeResult res =
        serve_route(*decision, *oracle.acquire(), 0, 7);
    EXPECT_EQ(res.status, ServeStatus::kDeliveredOptimal);
    EXPECT_TRUE(res.stale());
    EXPECT_EQ(res.path, (analysis::Path{0, 1, 3, 7}));
  }
}

// Randomized churn between decision and ground: drops imply staleness
// (the contrapositive of "identical tables cannot block their own
// choices"), and the fatal hop is always ground-faulty.
TEST(Serve, EveryDropIsStale) {
  Xoshiro256ss rng(0xD20BB5);
  const topo::Hypercube q(5);
  SnapshotOracle oracle(q);
  std::uint64_t drops = 0;
  for (int t = 0; t < 400; ++t) {
    const SnapshotPtr decision = oracle.acquire();
    // 0-3 churn events between decision and serve.
    const int churn = static_cast<int>(rng.below(4));
    for (int c = 0; c < churn; ++c) {
      const auto faults = oracle.writer_oracle().faults();
      if (faults.count() >= q.num_nodes() / 3 || rng.chance(0.3)) {
        const auto faulty = faults.faulty_nodes();
        if (!faulty.empty()) {
          oracle.remove_fault(faulty[rng.below(faulty.size())]);
          continue;
        }
      }
      if (rng.chance(0.5)) {
        const auto healthy = faults.healthy_nodes();
        oracle.add_fault(healthy[rng.below(healthy.size())]);
      } else {
        const auto a = static_cast<NodeId>(rng.below(q.num_nodes()));
        const auto d = static_cast<Dim>(rng.below(q.dimension()));
        if (!oracle.writer_oracle().links().is_faulty(a, d)) {
          oracle.fail_link(a, d);
        }
      }
    }
    const auto pair = workload::sample_uniform_pair(decision->faults, rng);
    ASSERT_TRUE(pair.has_value());
    const ServeResult res = serve_route(oracle, decision, pair->s, pair->d);
    ASSERT_GE(res.ground_epoch, res.decision_epoch);
    if (res.dropped()) {
      ++drops;
      ASSERT_TRUE(res.stale())
          << "trial " << t << ": a drop with ground == decision epoch";
    }
    ASSERT_NE(res.status, ServeStatus::kStuck);
  }
  EXPECT_GT(drops, 0u) << "churn never killed a route; weak test";
}

// Guarantee 1 under real concurrency — the TSan target. Readers verify
// every acquired snapshot against a from-scratch run_egs of the
// snapshot's own configuration while the writer churns.
TEST(SnapshotOracle, ConcurrentReadersSeeOnlyFixedPointSnapshots) {
  const topo::Hypercube q(4);
  SnapshotOracle oracle(q);
  constexpr int kReaders = 3;
  constexpr int kAcquiresPerReader = 120;
  constexpr int kWriterOps = 150;
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::atomic<std::uint64_t> max_seen_epoch{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256ss rng(0xBEEF00 + static_cast<std::uint64_t>(r));
      for (int i = 0; i < kAcquiresPerReader; ++i) {
        const SnapshotPtr snap = oracle.acquire();
        const core::EgsResult scratch =
            core::run_egs(q, snap->faults, snap->links);
        if (!(snap->public_view == scratch.public_view &&
              snap->self_view == scratch.self_view)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        // Published epochs never run backwards from a reader's view.
        std::uint64_t prev = max_seen_epoch.load(std::memory_order_relaxed);
        while (prev < snap->epoch &&
               !max_seen_epoch.compare_exchange_weak(
                   prev, snap->epoch, std::memory_order_relaxed)) {
        }
        if (const auto pair =
                workload::sample_uniform_pair(snap->faults, rng)) {
          const ServeResult res =
              serve_route(oracle, snap, pair->s, pair->d);
          if (res.dropped() && !res.stale()) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::thread writer([&] {
    Xoshiro256ss rng(0xFEED);
    for (int op = 0; op < kWriterOps && !stop.load(); ++op) {
      const auto faults = oracle.writer_oracle().faults();
      if (faults.count() > 4 || (faults.count() > 0 && rng.chance(0.4))) {
        const auto faulty = faults.faulty_nodes();
        oracle.remove_fault(faulty[rng.below(faulty.size())]);
      } else if (rng.chance(0.6)) {
        const auto healthy = faults.healthy_nodes();
        oracle.add_fault(healthy[rng.below(healthy.size())]);
      } else {
        const auto a = static_cast<NodeId>(rng.below(q.num_nodes()));
        const auto d = static_cast<Dim>(rng.below(q.dimension()));
        if (oracle.writer_oracle().links().is_faulty(a, d)) {
          oracle.recover_link(a, d);
        } else {
          oracle.fail_link(a, d);
        }
      }
    }
  });
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(max_seen_epoch.load(), oracle.epoch());
  expect_snapshot_matches_scratch(*oracle.acquire(), "final epoch");
}

// The serving path's trace dialect satisfies the paper auditor even
// while routes race publications: delivered routes pass the strict hop
// checks, staleness drops pass the in-flight-death rules, and the
// writer's fail/recover events land in its own audit lane.
TEST(Serve, AuditCleanUnderChurn) {
  const topo::Hypercube q(4);
  SnapshotOracle oracle(q);
  obs::AuditConfig config;
  config.dimension = q.dimension();
  obs::AuditSink audit(config);
  constexpr int kReaders = 2;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  std::atomic<bool> stop{false};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256ss rng(0xA0D17 + static_cast<std::uint64_t>(r));
      ServeOptions opts;
      opts.trace = &audit;
      for (int i = 0; i < 300; ++i) {
        const SnapshotPtr snap = oracle.acquire();
        const auto pair = workload::sample_uniform_pair(snap->faults, rng);
        if (!pair) continue;
        (void)serve_route(oracle, snap, pair->s, pair->d, opts);
      }
    });
  }
  std::thread writer([&] {
    Xoshiro256ss rng(0x217E5);
    while (!stop.load()) {
      const auto faults = oracle.writer_oracle().faults();
      if (faults.count() > 3 || (faults.count() > 0 && rng.chance(0.4))) {
        const auto faulty = faults.faulty_nodes();
        const NodeId back = faulty[rng.below(faulty.size())];
        oracle.remove_fault(back);
        obs::NodeRecoverEvent ev;
        ev.time = oracle.epoch();
        ev.node = back;
        audit.on_event(ev);
      } else {
        const auto healthy = faults.healthy_nodes();
        const NodeId victim = healthy[rng.below(healthy.size())];
        oracle.add_fault(victim);
        obs::NodeFailEvent ev;
        ev.time = oracle.epoch();
        ev.node = victim;
        audit.on_event(ev);
      }
      std::this_thread::yield();
    }
  });
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
  audit.finish();
  const obs::AuditReport report = audit.report();
  EXPECT_TRUE(report.clean()) << report.violations_total << " violation(s)"
                              << (report.details.empty()
                                      ? ""
                                      : ": " + report.details.front().detail);
  EXPECT_GT(report.routes, 0u);
}

// --- epoch lineage ---------------------------------------------------------

TEST(SnapshotOracle, LineageLinksEveryEpochToItsParentAndChurn) {
  const topo::Hypercube q(4);
  SnapshotOracle oracle(q);
  EXPECT_EQ(oracle.acquire()->parent_epoch, 0u);
  EXPECT_TRUE(oracle.acquire()->lineage.empty());

  oracle.add_fault(3);
  {
    const SnapshotPtr snap = oracle.acquire();
    EXPECT_EQ(snap->epoch, 1u);
    EXPECT_EQ(snap->parent_epoch, 0u);
    ASSERT_EQ(snap->lineage.size(), 1u);
    EXPECT_EQ(snap->lineage[0].kind, ChurnRecord::Kind::kNodeFail);
    EXPECT_EQ(snap->lineage[0].node, 3u);
  }
  oracle.fail_link(0, 2);
  {
    const SnapshotPtr snap = oracle.acquire();
    EXPECT_EQ(snap->epoch, 2u);
    EXPECT_EQ(snap->parent_epoch, 1u);
    ASSERT_EQ(snap->lineage.size(), 1u);
    EXPECT_EQ(snap->lineage[0].kind, ChurnRecord::Kind::kLinkFail);
    EXPECT_EQ(snap->lineage[0].node, 0u);
    EXPECT_EQ(snap->lineage[0].dim, 2u);
  }
  // Batched churn folds the whole batch into one epoch's lineage.
  const NodeId toggles[] = {5, 6};
  oracle.apply(toggles, {});
  {
    const SnapshotPtr snap = oracle.acquire();
    EXPECT_EQ(snap->epoch, 3u);
    EXPECT_EQ(snap->parent_epoch, 2u);
    EXPECT_EQ(snap->lineage.size(), 2u);
  }
}

TEST(SnapshotOracle, MakeEpochEventDerivesTheCause) {
  const topo::Hypercube q(4);
  SnapshotOracle oracle(q);
  {
    const obs::EpochPublishEvent ev = make_epoch_event(*oracle.acquire());
    EXPECT_EQ(ev.epoch, 0u);
    EXPECT_EQ(ev.parent, 0u);
    EXPECT_STREQ(ev.cause, "init");
    EXPECT_EQ(ev.churn, 0u);
    EXPECT_EQ(ev.ts, 0u);
  }
  oracle.add_fault(7);
  {
    const obs::EpochPublishEvent ev = make_epoch_event(*oracle.acquire());
    EXPECT_EQ(ev.epoch, 1u);
    EXPECT_EQ(ev.parent, 0u);
    EXPECT_STREQ(ev.cause, "node-fail");
    EXPECT_EQ(ev.node, 7);
    EXPECT_EQ(ev.dim, -1);  // node churn has no link dimension
    EXPECT_EQ(ev.churn, 1u);
    EXPECT_EQ(ev.faults, 1u);
    EXPECT_EQ(ev.ts, 1u);  // stamped with the epoch number by default
  }
  oracle.fail_link(1, 3);
  {
    const obs::EpochPublishEvent ev = make_epoch_event(*oracle.acquire());
    EXPECT_STREQ(ev.cause, "link-fail");
    EXPECT_EQ(ev.node, 1);
    EXPECT_EQ(ev.dim, 3);
    EXPECT_EQ(ev.links, 1u);
  }
  const NodeId toggles[] = {2, 5};
  oracle.apply(toggles, {});
  {
    const obs::EpochPublishEvent ev = make_epoch_event(*oracle.acquire());
    EXPECT_STREQ(ev.cause, "batch");
    EXPECT_EQ(ev.node, -1);  // several records: no single subject
    EXPECT_EQ(ev.churn, 2u);
  }
}

TEST(SnapshotOracle, SetTraceEmitsOneEpochPublishPerPublish) {
  const topo::Hypercube q(4);
  SnapshotOracle oracle(q);
  obs::RingBufferSink ring;
  oracle.set_trace(&ring);
  oracle.add_fault(1);
  oracle.remove_fault(1);
  const NodeId toggles[] = {4};
  oracle.apply(toggles, {});
  oracle.set_trace(nullptr);
  oracle.add_fault(9);  // after detach: not traced

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto* ev = std::get_if<obs::EpochPublishEvent>(&events[i]);
    ASSERT_NE(ev, nullptr) << "event " << i;
    EXPECT_EQ(ev->epoch, i + 1);
    EXPECT_EQ(ev->parent, i);
  }
  EXPECT_STREQ(
      std::get<obs::EpochPublishEvent>(events[0]).cause, "node-fail");
  EXPECT_STREQ(
      std::get<obs::EpochPublishEvent>(events[1]).cause, "node-recover");
}

}  // namespace
}  // namespace slcube::svc
