#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace slcube {
namespace {

TEST(Table, RowCountAndWidth) {
  Table t("demo", {"a", "b"});
  t.add_row({std::int64_t{1}, std::string{"x"}});
  t.add_row({std::int64_t{2}, std::string{"y"}});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(Table, RowBuilder) {
  Table t("demo", {"a", "b", "c"});
  t.row() << std::int64_t{7} << 3.14159 << std::string{"hi"};
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, PrintContainsHeaderAndValues) {
  Table t("title here", {"col1", "col2"});
  t.add_row({std::string{"abc"}, std::int64_t{42}});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("title here"), std::string::npos);
  EXPECT_NE(s.find("col1"), std::string::npos);
  EXPECT_NE(s.find("abc"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, PrecisionControlsDoubles) {
  Table t("", {"v"});
  t.set_precision(0, 1);
  t.add_row({2.71828});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("2.7"), std::string::npos);
  EXPECT_EQ(os.str().find("2.71"), std::string::npos);
}

TEST(Table, CsvPlain) {
  Table t("", {"x", "y"});
  t.add_row({std::int64_t{1}, std::string{"a"}});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,a\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t("", {"x"});
  t.add_row({std::string{"a,b"}});
  t.add_row({std::string{"say \"hi\""}});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, AlignedColumns) {
  Table t("", {"n", "value"});
  t.add_row({std::int64_t{1}, std::int64_t{100}});
  t.add_row({std::int64_t{1000}, std::int64_t{1}});
  std::ostringstream os;
  t.print(os);
  // All data lines must have equal length (alignment invariant).
  std::istringstream is(os.str());
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << line;
  }
}

}  // namespace
}  // namespace slcube
