#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace slcube {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat whole, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    whole.add(x);
    (i < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(Ratio, Basics) {
  Ratio r;
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
  r.add(true);
  r.add(true);
  r.add(false);
  r.add(true);
  EXPECT_EQ(r.hits(), 3u);
  EXPECT_EQ(r.total(), 4u);
  EXPECT_DOUBLE_EQ(r.value(), 0.75);
  EXPECT_DOUBLE_EQ(r.percent(), 75.0);
}

TEST(Ratio, Merge) {
  Ratio a, b;
  a.add(true);
  b.add(false);
  b.add(true);
  a.merge(b);
  EXPECT_EQ(a.hits(), 2u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(IntHistogram, AddAndCount) {
  IntHistogram h;
  h.add(3);
  h.add(3);
  h.add(0);
  h.add(7, 5);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 5u);
  EXPECT_EQ(h.count(100), 0u);
  EXPECT_EQ(h.total(), 8u);
  EXPECT_EQ(h.max_value(), 7u);
}

TEST(IntHistogram, Mean) {
  IntHistogram h;
  h.add(2, 2);
  h.add(4, 2);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(IntHistogram, Quantile) {
  IntHistogram h;
  for (std::size_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.5), 50u);
  EXPECT_EQ(h.quantile(0.99), 99u);
  EXPECT_EQ(h.quantile(1.0), 100u);
  EXPECT_EQ(h.quantile(0.0), 1u);  // q=0 is the smallest value observed
}

TEST(IntHistogram, QuantileEdgesAreDefinedNotTrapped) {
  // Empty histogram: every q yields 0 instead of scanning garbage.
  const IntHistogram empty;
  EXPECT_EQ(empty.quantile(0.0), 0u);
  EXPECT_EQ(empty.quantile(0.5), 0u);
  EXPECT_EQ(empty.quantile(1.0), 0u);

  IntHistogram h;
  h.add(7, 3);
  h.add(42);
  // Out-of-range q clamps into [0, 1] instead of under/overshooting the
  // cumulative scan (q > 1 used to walk off the end of the mass).
  EXPECT_EQ(h.quantile(-2.5), 7u);
  EXPECT_EQ(h.quantile(1.5), 42u);
  // NaN compares false against everything: it must clamp to 0, not fall
  // through the target computation.
  EXPECT_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()), 7u);
  // quantile(0) is the minimum observed even when low bins are empty
  // (values start at 7, not 0).
  EXPECT_EQ(h.quantile(0.0), 7u);
  EXPECT_EQ(h.quantile(1.0), 42u);
}

TEST(IntHistogram, Merge) {
  IntHistogram a, b;
  a.add(1);
  b.add(1);
  b.add(9);
  a.merge(b);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.count(9), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(IntHistogram, ToStringSkipsEmptyBins) {
  IntHistogram h;
  h.add(2);
  h.add(5, 3);
  EXPECT_EQ(h.to_string(), "2:1 5:3");
}

TEST(IntHistogram, WeightsBeyond32BitsStayExact) {
  // A 10M-route mega-cube sweep accumulates hop tallies far past 2^32;
  // bins and total are u64 and must not saturate or wrap. Weights of
  // 3e9 (> 2^31) pushed past 2^32 total keep exact counts, mean, and
  // quantiles.
  IntHistogram h;
  const std::uint64_t w = 3'000'000'000ull;
  h.add(2, w);
  h.add(5, w);
  h.add(9, 1);
  EXPECT_EQ(h.total(), 2 * w + 1);  // 6,000,000,001 > 2^32
  EXPECT_EQ(h.count(2), w);
  EXPECT_EQ(h.count(5), w);
  // Cumulative mass at 2 is exactly w < ceil(0.5 * total), so the median
  // lands on 5 — a wrapped 32-bit total would land elsewhere.
  EXPECT_EQ(h.quantile(0.5), 5u);
  EXPECT_EQ(h.quantile(0.0), 2u);
  EXPECT_EQ(h.quantile(1.0), 9u);
  const double expect_mean =
      (2.0 * static_cast<double>(w) + 5.0 * static_cast<double>(w) + 9.0) /
      static_cast<double>(2 * w + 1);
  EXPECT_DOUBLE_EQ(h.mean(), expect_mean);

  // Merging two saturation-scale histograms stays exact too.
  IntHistogram other;
  other.add(2, w);
  h.merge(other);
  EXPECT_EQ(h.total(), 3 * w + 1);
  EXPECT_EQ(h.count(2), 2 * w);
  EXPECT_EQ(h.quantile(0.5), 2u);
}

}  // namespace
}  // namespace slcube
