// The safety-vector extension: soundness against the exact oracle,
// dominance over scalar safety levels, and vector-guided routing.
#include "core/safety_vector.hpp"

#include <gtest/gtest.h>

#include "analysis/optimal_reach.hpp"
#include "core/global_status.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"

namespace slcube::core {
namespace {

TEST(SafetyVectors, FaultFreeAllBitsSet) {
  const topo::Hypercube q(5);
  const fault::FaultSet none(q.num_nodes());
  const auto v = compute_safety_vectors(q, none);
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    for (unsigned k = 1; k <= 5; ++k) EXPECT_TRUE(v.bit(a, k));
    EXPECT_EQ(v.prefix_reach(a), 5u);
  }
}

TEST(SafetyVectors, FaultyNodesAllZero) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {5});
  const auto v = compute_safety_vectors(q, f);
  EXPECT_EQ(v.raw(5), 0u);
  EXPECT_EQ(v.prefix_reach(5), 0u);
}

TEST(SafetyVectors, BitOneForEveryHealthyNode) {
  const auto sc = fault::scenario::fig3();
  const auto v = compute_safety_vectors(sc.cube, sc.faults);
  for (NodeId a = 0; a < 16; ++a) {
    if (sc.faults.is_healthy(a)) {
      EXPECT_TRUE(v.bit(a, 1));
    }
  }
}

/// Soundness against the exact oracle: V_a(k) = 1 implies an optimal
/// path to EVERY healthy node at distance exactly k. Exhaustive on Q4
/// (all <= 4-fault sets), randomized on Q5-Q7.
TEST(SafetyVectors, SoundnessExhaustiveQ4) {
  const topo::Hypercube q(4);
  for (std::uint32_t mask = 0; mask < (1u << 16); ++mask) {
    if (bits::popcount(mask) > 4) continue;
    fault::FaultSet f(q.num_nodes());
    for (NodeId a = 0; a < 16; ++a) {
      if ((mask >> a) & 1u) f.mark_faulty(a);
    }
    const auto v = compute_safety_vectors(q, f);
    const auto opt = analysis::optimal_reach_relation(q, f);
    for (NodeId a = 0; a < 16; ++a) {
      if (f.is_faulty(a)) continue;
      for (NodeId b = 0; b < 16; ++b) {
        if (b == a || f.is_faulty(b)) continue;
        const unsigned h = q.distance(a, b);
        if (v.bit(a, h)) {
          ASSERT_TRUE(opt[a][b])
              << "mask " << mask << ": " << a << " claims bit " << h
              << " but cannot optimally reach " << b;
        }
      }
    }
  }
}

class VectorSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(VectorSweep, SoundnessRandomized) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 733);
  for (int t = 0; t < 8; ++t) {
    const auto f = fault::inject_uniform(q, 2 * n, rng);
    const auto v = compute_safety_vectors(q, f);
    const auto opt = analysis::optimal_reach_relation(q, f);
    for (NodeId a = 0; a < q.num_nodes(); ++a) {
      if (f.is_faulty(a)) continue;
      for (NodeId b = 0; b < q.num_nodes(); ++b) {
        if (b == a || f.is_faulty(b)) continue;
        if (v.bit(a, q.distance(a, b))) {
          ASSERT_TRUE(opt[a][b]);
        }
      }
    }
  }
}

TEST_P(VectorSweep, DominatesScalarLevels) {
  // S(a) >= k  =>  V_a(j) = 1 for all j <= k (the vector certifies at
  // least everything the level does).
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 877);
  for (int t = 0; t < 10; ++t) {
    const auto f =
        fault::inject_uniform(q, rng.below(q.num_nodes() / 2), rng);
    const auto levels = compute_safety_levels(q, f);
    const auto v = compute_safety_vectors(q, f);
    for (NodeId a = 0; a < q.num_nodes(); ++a) {
      if (f.is_faulty(a)) continue;
      ASSERT_GE(v.prefix_reach(a), levels[a]) << "node " << a;
    }
  }
}

TEST_P(VectorSweep, RoutingGuarantees) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 997);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, 2 * n, rng);
    const auto v = compute_safety_vectors(q, f);
    for (int p = 0; p < 50; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto r = route_unicast_sv(q, f, v, s, d);
      const unsigned h = q.distance(s, d);
      switch (r.status) {
        case RouteStatus::kDeliveredOptimal:
          ASSERT_EQ(r.hops(), h);
          break;
        case RouteStatus::kDeliveredSuboptimal:
          ASSERT_EQ(r.hops(), h + 2);
          break;
        case RouteStatus::kSourceRefused:
          break;
        case RouteStatus::kStuck:
          FAIL() << "vector routing stuck with consistent vectors";
      }
      if (r.delivered()) {
        for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
          ASSERT_TRUE(f.is_healthy(r.path[i]));
          ASSERT_EQ(q.distance(r.path[i], r.path[i + 1]), 1u);
        }
      }
    }
  }
}

TEST_P(VectorSweep, FeasibilitySupersetOfLevels) {
  // Every unicast the level check accepts, the vector check accepts too
  // (both optimal conditions and the spare condition).
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 555);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, 2 * n, rng);
    const auto levels = compute_safety_levels(q, f);
    const auto v = compute_safety_vectors(q, f);
    for (int p = 0; p < 80; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto lvl = decide_at_source(q, levels, s, d);
      const auto vec = decide_at_source_sv(q, v, s, d);
      if (lvl.optimal_feasible()) {
        ASSERT_TRUE(vec.optimal_feasible())
            << "level accepted optimally but vector refused";
      }
      if (lvl.feasible()) {
        ASSERT_TRUE(vec.feasible());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims4To7, VectorSweep,
                         ::testing::Values(4u, 5u, 6u, 7u));

TEST(SafetyVectors, StrictlyMoreFeasibleSomewhere) {
  // Find at least one configuration where the vector certifies an
  // optimal unicast the scalar level refuses — the point of the
  // extension.
  const topo::Hypercube q(6);
  Xoshiro256ss rng(20240701);
  bool found = false;
  for (int t = 0; t < 200 && !found; ++t) {
    const auto f = fault::inject_uniform(q, 14, rng);
    const auto levels = compute_safety_levels(q, f);
    const auto v = compute_safety_vectors(q, f);
    for (NodeId s = 0; s < q.num_nodes() && !found; ++s) {
      if (f.is_faulty(s)) continue;
      for (NodeId d = 0; d < q.num_nodes() && !found; ++d) {
        if (d == s || f.is_faulty(d)) continue;
        const auto lvl = decide_at_source(q, levels, s, d);
        const auto vec = decide_at_source_sv(q, v, s, d);
        found = vec.optimal_feasible() && !lvl.optimal_feasible();
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(SafetyVectors, PrefixReachEdgeCases) {
  SafetyVectors v(4, 2);
  EXPECT_EQ(v.prefix_reach(0), 0u);  // no bits set
  v.set_bit(0, 1);
  v.set_bit(0, 2);
  v.set_bit(0, 4);  // gap at 3
  EXPECT_EQ(v.prefix_reach(0), 2u);
}

}  // namespace
}  // namespace slcube::core
