// Distributed unicast over the simulator: hop-for-hop agreement with the
// centralized router on stabilized networks, latency accounting, and the
// mid-flight failure semantics of Section 2.2's discussion.
#include "sim/protocol_unicast.hpp"

#include <gtest/gtest.h>

#include "core/global_status.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"
#include "sim/protocol_gs.hpp"

namespace slcube::sim {
namespace {

TEST(SimUnicast, MatchesCentralizedRouterAllPairsFig1) {
  const auto sc = fault::scenario::fig1();
  Network net(sc.cube, sc.faults);
  run_gs_synchronous(net);
  const auto levels = core::compute_safety_levels(sc.cube, sc.faults);
  for (NodeId s = 0; s < 16; ++s) {
    if (sc.faults.is_faulty(s)) continue;
    for (NodeId d = 0; d < 16; ++d) {
      if (d == s || sc.faults.is_faulty(d)) continue;
      const auto centralized =
          core::route_unicast(sc.cube, sc.faults, levels, s, d);
      const auto sim = route_unicast_sim(net, s, d);
      if (centralized.delivered()) {
        ASSERT_EQ(sim.status, SimRouteStatus::kDelivered);
        ASSERT_EQ(sim.path, centralized.path);
        ASSERT_EQ(sim.latency(), centralized.hops() * net.link_delay());
      } else {
        ASSERT_EQ(sim.status, SimRouteStatus::kRefused);
      }
    }
  }
}

TEST(SimUnicast, MatchesCentralizedOnRandomCubes) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(3001);
  for (int t = 0; t < 8; ++t) {
    const auto f = fault::inject_uniform(q, 10, rng);
    Network net(q, f);
    run_gs_synchronous(net);
    const auto levels = core::compute_safety_levels(q, f);
    for (int p = 0; p < 40; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto centralized = core::route_unicast(q, f, levels, s, d);
      const auto sim = route_unicast_sim(net, s, d);
      if (centralized.delivered()) {
        ASSERT_EQ(sim.status, SimRouteStatus::kDelivered);
        ASSERT_EQ(sim.path, centralized.path);
      } else {
        ASSERT_EQ(sim.status, SimRouteStatus::kRefused);
      }
    }
  }
}

TEST(SimUnicast, TrivialSelfDelivery) {
  const topo::Hypercube q(3);
  Network net(q, fault::FaultSet(q.num_nodes()));
  const auto r = route_unicast_sim(net, 5, 5);
  EXPECT_EQ(r.status, SimRouteStatus::kDelivered);
  EXPECT_EQ(r.latency(), 0u);
}

TEST(SimUnicast, RefusedSendsNothing) {
  const auto sc = fault::scenario::fig3();
  Network net(sc.cube, sc.faults);
  run_gs_synchronous(net);
  const auto before = net.stats().unicast_hops;
  const auto r = route_unicast_sim(net, 0b0111, 0b1110);
  EXPECT_EQ(r.status, SimRouteStatus::kRefused);
  EXPECT_EQ(net.stats().unicast_hops, before);
}

TEST(SimUnicast, MidFlightFailureOfHolderLosesPacket) {
  // Kill the first-hop node just as the packet lands on it.
  const topo::Hypercube q(4);
  Network net(q, fault::FaultSet(q.num_nodes()));
  run_gs_synchronous(net);
  // Route 0000 -> 1111; first hop (lowest dim tie-break) is 0001.
  const auto r = route_unicast_sim(net, 0b0000, 0b1111,
                                   {{net.now() + 1, 0b0001}});
  EXPECT_EQ(r.status, SimRouteStatus::kLost);
  EXPECT_EQ(r.path, (analysis::Path{0b0000}));
}

TEST(SimUnicast, SenderSeesFreshDeathAndReroutes) {
  // Kill a node two hops ahead before the packet reaches its sender:
  // the intermediate holder sees the death (assumption 2) and picks a
  // different preferred neighbor — delivery still succeeds.
  const topo::Hypercube q(4);
  Network net(q, fault::FaultSet(q.num_nodes()));
  run_gs_synchronous(net);
  // Path would be 0000 -> 0001 -> 0011 -> 0111 -> 1111; kill 0011 at
  // t=1 (while the packet flies toward 0001).
  const auto r = route_unicast_sim(net, 0b0000, 0b1111,
                                   {{net.now() + 1, 0b0011}});
  EXPECT_EQ(r.status, SimRouteStatus::kDelivered);
  EXPECT_EQ(r.path.size(), 5u);  // still an optimal 4-hop route
  for (const NodeId hop : r.path) EXPECT_NE(hop, 0b0011u);
}

TEST(SimUnicast, StuckWhenEveryPreferredDies) {
  // Destination's entire neighborhood dies mid-flight: the last holder
  // cannot forward and aborts (paper: "this unicast might either be
  // aborted or be re-routed ... after all the safety levels are
  // stabilized").
  const topo::Hypercube q(3);
  Network net(q, fault::FaultSet(q.num_nodes()));
  run_gs_synchronous(net);
  // 000 -> 011. First hop lands on 001 at t=1. At that moment kill 011's
  // other approaches AND the destination's neighbor set except through
  // dead nodes: kill 011's neighbors 010, 111 and... the holder must be
  // stuck: kill 011 itself is not allowed (destination). Kill 010 and
  // 111 leaves path 001->011 intact; instead kill the forward neighbor
  // 011's predecessors from 001: preferred of 001 toward 011 is {011}
  // (dim 1). Destination adjacent: delivers. So force stuck earlier:
  // route 000 -> 111, kill 011 and 101 at t=1; holder 001 has preferred
  // {011, 101} both dead -> stuck.
  const auto r = route_unicast_sim(net, 0b000, 0b111,
                                   {{net.now() + 1, 0b011},
                                    {net.now() + 1, 0b101}});
  EXPECT_EQ(r.status, SimRouteStatus::kStuck);
  EXPECT_EQ(r.path.back(), 0b001u);
}

TEST(SimUnicast, ReRouteAfterStabilizationRecovers) {
  // The paper's recovery recipe: after an abort, stabilize levels and
  // re-issue from the stuck node.
  const topo::Hypercube q(3);
  Network net(q, fault::FaultSet(q.num_nodes()));
  run_gs_synchronous(net);
  const auto r1 = route_unicast_sim(net, 0b000, 0b111,
                                    {{net.now() + 1, 0b011},
                                     {net.now() + 1, 0b101}});
  ASSERT_EQ(r1.status, SimRouteStatus::kStuck);
  // Levels are stale; stabilize (no NEW failures, the two deaths already
  // happened — re-announce by recomputing neighbors of the dead).
  stabilize_after_failures(net, {});
  // Trigger cascades from the dead nodes' neighborhoods explicitly: the
  // deaths occurred inside the unicast, so run a full synchronous sweep.
  run_gs_synchronous(net);
  const auto r2 = route_unicast_sim(net, r1.path.back(), 0b111);
  EXPECT_EQ(r2.status, SimRouteStatus::kDelivered);
  EXPECT_EQ(r2.path.back(), 0b111u);
}

TEST(SimUnicast, LatencyEqualsHopsTimesDelay) {
  const topo::Hypercube q(5);
  Network net(q, fault::FaultSet(q.num_nodes()), /*link_delay=*/3);
  const auto r = route_unicast_sim(net, 0, 0b11111);
  EXPECT_EQ(r.status, SimRouteStatus::kDelivered);
  EXPECT_EQ(r.latency(), 5u * 3u);
}

TEST(SimUnicast, StatusNames) {
  EXPECT_STREQ(to_string(SimRouteStatus::kDelivered), "delivered");
  EXPECT_STREQ(to_string(SimRouteStatus::kRefused), "refused");
  EXPECT_STREQ(to_string(SimRouteStatus::kStuck), "stuck");
  EXPECT_STREQ(to_string(SimRouteStatus::kLost), "lost");
}

}  // namespace
}  // namespace slcube::sim
