// The Chiu-Wu reconstruction on Wu-Fernandez safe nodes: the H+4 bound,
// WF-safe-source optimality, and disconnected-cube inapplicability.
#include "baselines/chiu_wu.hpp"

#include <gtest/gtest.h>

#include "fault/injection.hpp"
#include "fault/scenario.hpp"

namespace slcube::baselines {
namespace {

TEST(ChiuWu, FaultFreeOptimalAllPairs) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  ChiuWuRouter router;
  router.prepare(q, none);
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      const auto a = router.route(s, d);
      ASSERT_TRUE(a.delivered);
      ASSERT_EQ(a.hops(), q.distance(s, d));
    }
  }
}

TEST(ChiuWu, BoundHPlus4WheneverDelivered) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(63);
  ChiuWuRouter router;
  for (int t = 0; t < 20; ++t) {
    const auto f = fault::inject_uniform(q, 5, rng);
    router.prepare(q, f);
    for (int p = 0; p < 50; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto a = router.route(s, d);
      if (a.delivered) {
        ASSERT_LE(a.hops(), q.distance(s, d) + 4)
            << "Chiu-Wu promises <= H + 4";
        for (std::size_t i = 0; i + 1 < a.walk.size(); ++i) {
          ASSERT_TRUE(f.is_healthy(a.walk[i]));
          ASSERT_EQ(q.distance(a.walk[i], a.walk[i + 1]), 1u);
        }
      }
    }
  }
}

TEST(ChiuWu, WfSafeSourceIsOptimal) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(64);
  ChiuWuRouter router;
  for (int t = 0; t < 15; ++t) {
    const auto f = fault::inject_uniform(q, 4, rng);
    router.prepare(q, f);
    const auto safe =
        core::compute_safe_nodes(q, f, core::SafeNodeRule::kWuFernandez);
    for (NodeId s = 0; s < q.num_nodes(); ++s) {
      if (!safe.safe[s]) continue;
      for (NodeId d = 0; d < q.num_nodes(); ++d) {
        if (d == s || f.is_faulty(d)) continue;
        const auto a = router.route(s, d);
        ASSERT_TRUE(a.delivered);
        ASSERT_EQ(a.hops(), q.distance(s, d));
      }
    }
  }
}

TEST(ChiuWu, DeliversMoreThanLeeHayesOnSec23) {
  // The WF safe set of the Section 2.3 cube has 8 nodes (vs LH's none),
  // so Chiu-Wu keeps working where Lee-Hayes refuses.
  const auto sc = fault::scenario::sec23();
  ChiuWuRouter router;
  router.prepare(sc.cube, sc.faults);
  unsigned delivered = 0, total = 0;
  for (NodeId s = 0; s < 16; ++s) {
    if (sc.faults.is_faulty(s)) continue;
    for (NodeId d = 0; d < 16; ++d) {
      if (d == s || sc.faults.is_faulty(d)) continue;
      ++total;
      delivered += router.route(s, d).delivered ? 1u : 0u;
    }
  }
  EXPECT_EQ(delivered, total);  // everything is reachable here
}

TEST(ChiuWu, RefusesInDisconnectedCube) {
  const auto sc = fault::scenario::fig3();
  ChiuWuRouter router;
  router.prepare(sc.cube, sc.faults);
  // Unicasts from the isolated node 1110 (distance >= 2 targets) must be
  // refused: the WF safe set is empty by Theorem 4.
  for (NodeId d = 0; d < 16; ++d) {
    if (d == 0b1110 || sc.faults.is_faulty(d)) continue;
    if (sc.cube.distance(0b1110, d) == 1) continue;
    EXPECT_TRUE(router.route(0b1110, d).refused);
  }
}

TEST(ChiuWu, AdjacentDestinationAlwaysDirect) {
  const topo::Hypercube q(4);
  Xoshiro256ss rng(65);
  const auto f = fault::inject_uniform(q, 6, rng);
  ChiuWuRouter router;
  router.prepare(q, f);
  for (NodeId s = 0; s < 16; ++s) {
    if (f.is_faulty(s)) continue;
    q.for_each_neighbor(s, [&](Dim, NodeId d) {
      if (f.is_faulty(d)) return;
      const auto a = router.route(s, d);
      EXPECT_TRUE(a.delivered);
      EXPECT_EQ(a.hops(), 1u);
    });
  }
}

}  // namespace
}  // namespace slcube::baselines
