#include "analysis/disjoint_paths.hpp"

#include <gtest/gtest.h>

#include <set>

namespace slcube::analysis {
namespace {

TEST(DisjointPaths, CountEqualsHamming) {
  const topo::Hypercube q(5);
  EXPECT_EQ(disjoint_optimal_paths(q, 0b00000, 0b10110).size(), 3u);
  EXPECT_EQ(disjoint_optimal_paths(q, 0b00000, 0b11111).size(), 5u);
  EXPECT_TRUE(disjoint_optimal_paths(q, 7, 7).empty());
}

TEST(DisjointPaths, EveryPathIsOptimalAndValid) {
  const topo::Hypercube q(6);
  const topo::HypercubeView view(q);
  const fault::FaultSet none(q.num_nodes());
  const NodeId s = 0b010101, d = 0b101010;
  for (const Path& p : disjoint_optimal_paths(q, s, d)) {
    EXPECT_EQ(p.front(), s);
    EXPECT_EQ(p.back(), d);
    EXPECT_EQ(check_path(view, none, p).cls, PathClass::kOptimal);
  }
}

TEST(DisjointPaths, InteriorNodesDisjoint) {
  const topo::Hypercube q(6);
  for (const NodeId d : {0b000111u, 0b111111u, 0b100001u}) {
    const auto paths = disjoint_optimal_paths(q, 0, d);
    std::set<NodeId> interior;
    std::size_t count = 0;
    for (const Path& p : paths) {
      for (std::size_t i = 1; i + 1 < p.size(); ++i) {
        interior.insert(p[i]);
        ++count;
      }
    }
    EXPECT_EQ(interior.size(), count) << "interior nodes repeat";
  }
}

/// Exhaustive node-disjointness check over every pair of a small cube —
/// this is the combinatorial fact Theorem 2's proof invokes.
class DisjointAllPairs : public ::testing::TestWithParam<unsigned> {};

TEST_P(DisjointAllPairs, AllPairsDisjointAndOptimal) {
  const topo::Hypercube q(GetParam());
  const topo::HypercubeView view(q);
  const fault::FaultSet none(q.num_nodes());
  for (NodeId s = 0; s < q.num_nodes(); ++s) {
    for (NodeId d = 0; d < q.num_nodes(); ++d) {
      if (s == d) continue;
      const auto paths = disjoint_optimal_paths(q, s, d);
      ASSERT_EQ(paths.size(), q.distance(s, d));
      std::set<NodeId> interior;
      std::size_t count = 0;
      for (const Path& p : paths) {
        ASSERT_EQ(check_path(view, none, p).cls, PathClass::kOptimal);
        for (std::size_t i = 1; i + 1 < p.size(); ++i) {
          interior.insert(p[i]);
          ++count;
        }
      }
      ASSERT_EQ(interior.size(), count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims2To5, DisjointAllPairs,
                         ::testing::Values(2u, 3u, 4u, 5u));

}  // namespace
}  // namespace slcube::analysis
