#include "common/bitops.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace slcube::bits {
namespace {

TEST(Bitops, PopcountBasics) {
  EXPECT_EQ(popcount(0u), 0u);
  EXPECT_EQ(popcount(1u), 1u);
  EXPECT_EQ(popcount(0b1011u), 3u);
  EXPECT_EQ(popcount(~0u), 32u);
}

TEST(Bitops, HammingIsPopcountOfXor) {
  EXPECT_EQ(hamming(0b1101, 0b1001), 1u);
  EXPECT_EQ(hamming(0b0000, 0b1111), 4u);
  EXPECT_EQ(hamming(0b1010, 0b1010), 0u);
}

TEST(Bitops, HammingSymmetric) {
  for (NodeId a = 0; a < 32; ++a) {
    for (NodeId b = 0; b < 32; ++b) {
      EXPECT_EQ(hamming(a, b), hamming(b, a));
    }
  }
}

TEST(Bitops, HammingTriangleInequality) {
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      for (NodeId c = 0; c < 16; ++c) {
        EXPECT_LE(hamming(a, c), hamming(a, b) + hamming(b, c));
      }
    }
  }
}

TEST(Bitops, UnitMatchesPaperNotation) {
  // e^2 = 0100; 1101 ⊕ e^2 = 1001 (the paper's Section 2.1 example).
  EXPECT_EQ(unit(2), 0b0100u);
  EXPECT_EQ(0b1101u ^ unit(2), 0b1001u);
}

TEST(Bitops, FlipIsInvolution) {
  for (NodeId a = 0; a < 64; ++a) {
    for (Dim d = 0; d < 6; ++d) {
      EXPECT_EQ(flip(flip(a, d), d), a);
      EXPECT_EQ(hamming(a, flip(a, d)), 1u);
    }
  }
}

TEST(Bitops, TestBit) {
  EXPECT_TRUE(test(0b0100, 2));
  EXPECT_FALSE(test(0b0100, 1));
  EXPECT_FALSE(test(0b0100, 3));
}

TEST(Bitops, LowestAndHighestSet) {
  EXPECT_EQ(lowest_set(0b1000u), 3u);
  EXPECT_EQ(lowest_set(0b1010u), 1u);
  EXPECT_EQ(highest_set(0b1010u), 3u);
  EXPECT_EQ(lowest_set(1u), 0u);
  EXPECT_EQ(highest_set(0x80000000u), 31u);
}

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(4), 0b1111u);
  EXPECT_EQ(low_mask(32), ~0u);
}

TEST(Bitops, ForEachSetVisitsAscending) {
  std::vector<Dim> seen;
  for_each_set(0b101101u, [&](Dim d) { seen.push_back(d); });
  EXPECT_EQ(seen, (std::vector<Dim>{0, 2, 3, 5}));
}

TEST(Bitops, ForEachSetEmptyMask) {
  bool called = false;
  for_each_set(0u, [&](Dim) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Bitops, ForEachClearComplementsForEachSet) {
  const std::uint32_t mask = 0b0110;
  std::vector<Dim> clear;
  for_each_clear(mask, 4, [&](Dim d) { clear.push_back(d); });
  EXPECT_EQ(clear, (std::vector<Dim>{0, 3}));
}

TEST(Bitops, SetAndClearPartitionDimensions) {
  for (std::uint32_t mask = 0; mask < 64; ++mask) {
    std::vector<bool> seen(6, false);
    for_each_set(mask, [&](Dim d) { seen[d] = true; });
    for_each_clear(mask, 6, [&](Dim d) {
      EXPECT_FALSE(seen[d]);
      seen[d] = true;
    });
    for (const bool s : seen) EXPECT_TRUE(s);
  }
}

}  // namespace
}  // namespace slcube::bits
