#include "workload/patterns.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fault/injection.hpp"

namespace slcube::workload {
namespace {

TEST(Patterns, BitComplementIsAntipodal) {
  const topo::Hypercube q(5);
  for (NodeId s = 0; s < q.num_nodes(); ++s) {
    const auto d = pattern_destination(q, Pattern::kBitComplement, s);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(q.distance(s, *d), 5u);
  }
}

TEST(Patterns, BitReversalIsInvolution) {
  const topo::Hypercube q(6);
  for (NodeId s = 0; s < q.num_nodes(); ++s) {
    const auto d = *pattern_destination(q, Pattern::kBitReversal, s);
    EXPECT_EQ(*pattern_destination(q, Pattern::kBitReversal, d), s);
  }
}

TEST(Patterns, BitReversalKnownValues) {
  const topo::Hypercube q(4);
  EXPECT_EQ(*pattern_destination(q, Pattern::kBitReversal, 0b0001), 0b1000u);
  EXPECT_EQ(*pattern_destination(q, Pattern::kBitReversal, 0b1100), 0b0011u);
  EXPECT_EQ(*pattern_destination(q, Pattern::kBitReversal, 0b1001), 0b1001u);
}

TEST(Patterns, TransposeRotatesHalf) {
  const topo::Hypercube q(4);
  EXPECT_EQ(*pattern_destination(q, Pattern::kTranspose, 0b0001), 0b0100u);
  EXPECT_EQ(*pattern_destination(q, Pattern::kTranspose, 0b0110), 0b1001u);
}

TEST(Patterns, ShuffleRotatesOne) {
  const topo::Hypercube q(4);
  EXPECT_EQ(*pattern_destination(q, Pattern::kShuffle, 0b0001), 0b0010u);
  EXPECT_EQ(*pattern_destination(q, Pattern::kShuffle, 0b1000), 0b0001u);
}

TEST(Patterns, PureBitPatternsArePermutations) {
  const topo::Hypercube q(6);
  for (const Pattern p : {Pattern::kBitComplement, Pattern::kBitReversal,
                          Pattern::kTranspose, Pattern::kShuffle}) {
    std::set<NodeId> image;
    for (NodeId s = 0; s < q.num_nodes(); ++s) {
      image.insert(*pattern_destination(q, p, s));
    }
    EXPECT_EQ(image.size(), q.num_nodes()) << to_string(p);
  }
}

TEST(Patterns, GenerateSkipsFaultyEndpointsAndSelfLoops) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(77);
  const auto f = fault::inject_uniform(q, 6, rng);
  for (const Pattern p : kAllPatterns) {
    const auto pairs = generate_pattern(q, f, p, rng);
    for (const auto& pr : pairs) {
      EXPECT_TRUE(f.is_healthy(pr.s)) << to_string(p);
      EXPECT_TRUE(f.is_healthy(pr.d)) << to_string(p);
      EXPECT_NE(pr.s, pr.d) << to_string(p);
    }
  }
}

TEST(Patterns, DimensionExchangeIsSingleHop) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(78);
  const fault::FaultSet none(q.num_nodes());
  const auto pairs = generate_pattern(q, none, Pattern::kDimensionExchange,
                                      rng);
  ASSERT_EQ(pairs.size(), q.num_nodes());
  for (const auto& pr : pairs) EXPECT_EQ(q.distance(pr.s, pr.d), 1u);
}

TEST(Patterns, RandomPermutationCoversHealthyNodes) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(79);
  const auto f = fault::inject_uniform(q, 4, rng);
  const auto pairs = generate_pattern(q, f, Pattern::kRandomPermutation,
                                      rng);
  std::set<NodeId> sources, dests;
  for (const auto& pr : pairs) {
    sources.insert(pr.s);
    dests.insert(pr.d);
  }
  // A permutation: distinct sources map to distinct destinations.
  EXPECT_EQ(sources.size(), pairs.size());
  EXPECT_EQ(dests.size(), pairs.size());
  // At most |healthy| pairs (fixed points are dropped).
  EXPECT_LE(pairs.size(), f.healthy_count());
}

TEST(Patterns, FaultFreeGenerateMatchesDestinationFn) {
  const topo::Hypercube q(4);
  Xoshiro256ss rng(80);
  const fault::FaultSet none(q.num_nodes());
  const auto pairs = generate_pattern(q, none, Pattern::kTranspose, rng);
  for (const auto& pr : pairs) {
    EXPECT_EQ(pr.d, *pattern_destination(q, Pattern::kTranspose, pr.s));
  }
}

TEST(Patterns, Names) {
  EXPECT_EQ(to_string(Pattern::kBitComplement), "bit-complement");
  EXPECT_EQ(to_string(Pattern::kRandomPermutation), "random-perm");
}

}  // namespace
}  // namespace slcube::workload
