// The multicast extension: delivery guarantees, tree validity, and
// traffic savings versus per-destination unicasts.
#include "core/multicast.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/global_status.hpp"
#include "core/unicast.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"

namespace slcube::core {
namespace {

TEST(Multicast, FaultFreeBroadlikeSet) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  const auto lv = compute_safety_levels(q, none);
  std::vector<NodeId> dests;
  for (NodeId a = 1; a < q.num_nodes(); ++a) dests.push_back(a);
  const auto r = multicast(q, none, lv, 0, dests);
  EXPECT_EQ(r.delivered_count(), dests.size());
  // Reaching all 15 other nodes takes at least 15 edges; the greedy
  // packing must not exceed one edge per destination.
  EXPECT_GE(r.traffic, 15u);
  EXPECT_LE(r.traffic, 15u);
}

TEST(Multicast, SingleDestinationEqualsUnicastLength) {
  const auto sc = fault::scenario::fig1();
  const auto lv = compute_safety_levels(sc.cube, sc.faults);
  for (NodeId s = 0; s < 16; ++s) {
    if (sc.faults.is_faulty(s)) continue;
    for (NodeId d = 0; d < 16; ++d) {
      if (d == s || sc.faults.is_faulty(d)) continue;
      const auto uni = route_unicast(sc.cube, sc.faults, lv, s, d);
      const auto multi = multicast(sc.cube, sc.faults, lv, s, {d});
      if (uni.status == RouteStatus::kDeliveredOptimal) {
        EXPECT_TRUE(multi.delivered[0]);
        EXPECT_EQ(multi.traffic, sc.cube.distance(s, d));
      }
    }
  }
}

TEST(Multicast, SourceInDestinationList) {
  const topo::Hypercube q(3);
  const fault::FaultSet none(q.num_nodes());
  const auto lv = compute_safety_levels(q, none);
  const auto r = multicast(q, none, lv, 5, {5, 2});
  EXPECT_TRUE(r.delivered[0]);
  EXPECT_TRUE(r.delivered[1]);
}

TEST(Multicast, RefusedDestinationsGenerateNoTraffic) {
  // Fig. 3: everything addressed to the isolated node 1110 is refused.
  const auto sc = fault::scenario::fig3();
  const auto lv = compute_safety_levels(sc.cube, sc.faults);
  const auto r = multicast(sc.cube, sc.faults, lv, 0b0101, {0b1110});
  EXPECT_TRUE(r.refused[0]);
  EXPECT_FALSE(r.delivered[0]);
  EXPECT_EQ(r.traffic, 0u);
}

TEST(Multicast, MixedFeasibleAndRefused) {
  const auto sc = fault::scenario::fig3();
  const auto lv = compute_safety_levels(sc.cube, sc.faults);
  const auto r =
      multicast(sc.cube, sc.faults, lv, 0b0101, {0b0000, 0b1110, 0b0001});
  EXPECT_TRUE(r.delivered[0]);
  EXPECT_TRUE(r.refused[1]);
  EXPECT_TRUE(r.delivered[2]);
}

TEST(Multicast, TreeEdgesAreValidAndHealthy) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(606);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, 5, rng);
    const auto lv = compute_safety_levels(q, f);
    NodeId src = 0;
    while (f.is_faulty(src)) ++src;
    std::vector<NodeId> dests;
    for (int i = 0; i < 10; ++i) {
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (f.is_healthy(d) && d != src) dests.push_back(d);
    }
    const auto r = multicast(q, f, lv, src, dests);
    EXPECT_EQ(r.traffic, r.edges.size());
    for (const auto& [from, to] : r.edges) {
      EXPECT_EQ(q.distance(from, to), 1u);
      EXPECT_TRUE(f.is_healthy(from));
      // `to` may be a destination; interior healthiness is implied by
      // the level > 0 forwarding rule, destinations are healthy by
      // precondition.
      EXPECT_TRUE(f.is_healthy(to));
    }
  }
}

class MulticastSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(MulticastSweep, AcceptedAlwaysDeliveredOnOptimalDepth) {
  // Every accepted destination is delivered, and the tree depth to it is
  // exactly its Hamming distance (per-destination optimality).
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 4041);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, n, rng);
    const auto lv = compute_safety_levels(q, f);
    NodeId src = 0;
    while (f.is_faulty(src)) ++src;
    std::vector<NodeId> dests;
    for (unsigned i = 0; i < 3 * n; ++i) {
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (f.is_healthy(d) && d != src) dests.push_back(d);
    }
    const auto r = multicast(q, f, lv, src, dests);
    for (std::size_t i = 0; i < dests.size(); ++i) {
      ASSERT_TRUE(r.delivered[i] || r.refused[i]);
      ASSERT_FALSE(r.delivered[i] && r.refused[i]);
    }
    // Depth check: reconstruct per-node depth from the edge list.
    std::map<NodeId, unsigned> depth{{src, 0}};
    for (const auto& [from, to] : r.edges) {
      ASSERT_TRUE(depth.contains(from)) << "edge from unvisited node";
      // A node can be reached on several branches; optimality only needs
      // SOME visit at Hamming depth, so keep the minimum.
      const unsigned cand = depth[from] + 1;
      auto [it, inserted] = depth.emplace(to, cand);
      if (!inserted) it->second = std::min(it->second, cand);
    }
    for (std::size_t i = 0; i < dests.size(); ++i) {
      if (!r.delivered[i] || dests[i] == src) continue;
      ASSERT_TRUE(depth.contains(dests[i]));
      ASSERT_EQ(depth[dests[i]], q.distance(src, dests[i]))
          << "destination reached off its optimal depth";
    }
  }
}

TEST_P(MulticastSweep, TrafficNeverExceedsUnicastSum) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 8081);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, n - 1, rng);
    const auto lv = compute_safety_levels(q, f);
    NodeId src = 0;
    while (f.is_faulty(src)) ++src;
    std::vector<NodeId> dests;
    for (unsigned i = 0; i < 2 * n; ++i) {
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (f.is_healthy(d) && d != src) dests.push_back(d);
    }
    const auto r = multicast(q, f, lv, src, dests);
    std::uint64_t unicast_sum = 0;
    for (std::size_t i = 0; i < dests.size(); ++i) {
      if (!r.delivered[i]) continue;
      unicast_sum += q.distance(src, dests[i]);
    }
    ASSERT_LE(r.traffic, unicast_sum + 1)  // +1 guards the all-refused edge
        << "multicast tree more expensive than separate unicasts";
  }
}

INSTANTIATE_TEST_SUITE_P(Dims4To7, MulticastSweep,
                         ::testing::Values(4u, 5u, 6u, 7u));

}  // namespace
}  // namespace slcube::core
