// Section 4.2: Definition 4 safety levels in generalized hypercubes,
// Theorem 2', and GH routing — including the Fig. 5 walk-through (with
// the documented erratum about node 001's annotated level).
#include "core/gh_safety.hpp"

#include <gtest/gtest.h>

#include <array>

#include "analysis/bfs.hpp"
#include "core/global_status.hpp"
#include "core/properties.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"

namespace slcube::core {
namespace {

class Fig5Test : public ::testing::Test {
 protected:
  Fig5Test() : sc_(fault::scenario::fig5()), gs_(run_gs_gh(sc_.gh, sc_.faults)) {}

  NodeId enc(std::uint32_t a2, std::uint32_t a1, std::uint32_t a0) const {
    return sc_.gh.encode({a0, a1, a2});
  }

  fault::scenario::GhScenario sc_;
  GhGsResult gs_;
};

TEST_F(Fig5Test, FixedPointIsConsistent) {
  EXPECT_TRUE(is_consistent_gh(sc_.gh, sc_.faults, gs_.levels));
}

TEST_F(Fig5Test, LevelsMatchDefinition4FixedPoint) {
  // Prose-consistent values: S(110) = 1 (stated), faulty nodes 0. The
  // full fixed point of Definition 4 (documented erratum: the paper
  // annotates 001 with 1 and claims exactly four 3-safe nodes, but the
  // forced fault set {011, 100, 111, 120} yields FIVE 3-safe nodes
  // including 001; Theorem 2' holds for these values, see below).
  EXPECT_EQ(gs_.levels[enc(1, 1, 0)], 1);  // 110 — stated by the prose
  EXPECT_EQ(gs_.levels[enc(1, 0, 1)], 1);  // 101
  EXPECT_EQ(gs_.levels[enc(1, 2, 1)], 1);  // 121
  for (auto [a2, a1, a0] :
       {std::array<std::uint32_t, 3>{0, 0, 0}, {0, 0, 1}, {0, 1, 0},
        {0, 2, 0}, {0, 2, 1}}) {
    EXPECT_EQ(gs_.levels[enc(a2, a1, a0)], 3)
        << a2 << a1 << a0 << " should be safe";
  }
  for (auto [a2, a1, a0] :
       {std::array<std::uint32_t, 3>{0, 1, 1}, {1, 0, 0}, {1, 1, 1},
        {1, 2, 0}}) {
    EXPECT_EQ(gs_.levels[enc(a2, a1, a0)], 0) << "faulty node";
  }
}

TEST_F(Fig5Test, UnsafeNodesHaveSafeNeighbors) {
  // "Because each unsafe but nonfaulty node has a safe neighbor, routing
  // from any of these nodes is at least suboptimal."
  for (NodeId a = 0; a < sc_.gh.num_nodes(); ++a) {
    if (sc_.faults.is_faulty(a) || gs_.levels[a] == 3) continue;
    bool has_safe = false;
    sc_.gh.for_each_neighbor(a, [&](Dim, NodeId b) {
      has_safe |= gs_.levels[b] == 3;
    });
    EXPECT_TRUE(has_safe) << "node " << a;
  }
}

TEST_F(Fig5Test, PaperRoute010To101) {
  // The paper's optimal route 010 -> 000 -> 001 -> 101.
  const auto r = route_unicast_gh(sc_.gh, sc_.faults, gs_.levels,
                                  enc(0, 1, 0), enc(1, 0, 1));
  EXPECT_EQ(r.status, RouteStatus::kDeliveredOptimal);
  EXPECT_EQ(r.path, (analysis::Path{enc(0, 1, 0), enc(0, 0, 0),
                                    enc(0, 0, 1), enc(1, 0, 1)}));
}

TEST_F(Fig5Test, DecisionAtSource010) {
  const auto dec = decide_at_source_gh(sc_.gh, gs_.levels, enc(0, 1, 0),
                                       enc(1, 0, 1));
  EXPECT_EQ(dec.hamming, 3u);
  EXPECT_TRUE(dec.c1);  // S(010) = 3 >= 3
}

TEST_F(Fig5Test, AllPairsDeliverOrRefuseHonestly) {
  const topo::GeneralizedHypercubeView view(sc_.gh);
  for (NodeId s = 0; s < sc_.gh.num_nodes(); ++s) {
    if (sc_.faults.is_faulty(s)) continue;
    const auto dist = analysis::bfs_distances(view, sc_.faults, s);
    for (NodeId d = 0; d < sc_.gh.num_nodes(); ++d) {
      if (d == s || sc_.faults.is_faulty(d)) continue;
      const auto r = route_unicast_gh(sc_.gh, sc_.faults, gs_.levels, s, d);
      if (r.delivered()) {
        const unsigned h = sc_.gh.distance(s, d);
        EXPECT_TRUE(r.hops() == h || r.hops() == h + 2);
      } else {
        EXPECT_EQ(r.status, RouteStatus::kSourceRefused);
        // Honest refusal: no optimal or +2 guarantee was available; the
        // node pair may still be connected (GH refusals are about level
        // shortfall, same as the hypercube).
      }
    }
  }
}

TEST(GhGs, BinaryGhMatchesHypercubeGs) {
  // With all radices 2, Definition 4 degenerates to Definition 1: the GH
  // fixed point must equal the plain hypercube fixed point node-by-node.
  const topo::GeneralizedHypercube gh({2, 2, 2, 2});
  const topo::Hypercube q(4);
  Xoshiro256ss rng(1212);
  for (int t = 0; t < 20; ++t) {
    const auto f = fault::inject_uniform(q, rng.below(8), rng);
    fault::FaultSet fgh(gh.num_nodes());
    for (const NodeId a : f.faulty_nodes()) fgh.mark_faulty(a);
    const auto gh_levels = run_gs_gh(gh, fgh).levels;
    const auto q_levels = compute_safety_levels(q, f);
    for (NodeId a = 0; a < 16; ++a) {
      ASSERT_EQ(gh_levels[a], q_levels[a]) << "node " << a;
    }
  }
}

class GhShapeSweep
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(GhShapeSweep, Theorem2PrimeHolds) {
  const topo::GeneralizedHypercube gh(GetParam());
  Xoshiro256ss rng(99);
  for (int t = 0; t < 12; ++t) {
    const auto f =
        fault::inject_uniform_gh(gh, rng.below(gh.num_nodes() / 2), rng);
    const auto levels = run_gs_gh(gh, f).levels;
    ASSERT_EQ(check_theorem2_gh(gh, f, levels), "");
  }
}

TEST_P(GhShapeSweep, RoutingDeliversWithinClassBounds) {
  const topo::GeneralizedHypercube gh(GetParam());
  Xoshiro256ss rng(98);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform_gh(gh, 3, rng);
    const auto levels = run_gs_gh(gh, f).levels;
    for (int p = 0; p < 50; ++p) {
      const auto s = static_cast<NodeId>(rng.below(gh.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(gh.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto r = route_unicast_gh(gh, f, levels, s, d);
      const unsigned h = gh.distance(s, d);
      switch (r.status) {
        case RouteStatus::kDeliveredOptimal:
          ASSERT_EQ(r.hops(), h);
          break;
        case RouteStatus::kDeliveredSuboptimal:
          ASSERT_EQ(r.hops(), h + 2);
          break;
        case RouteStatus::kSourceRefused:
          break;
        case RouteStatus::kStuck:
          FAIL() << "stuck with stabilized GH levels";
      }
      if (r.delivered()) {
        // Path validity: healthy interior, adjacency in GH.
        for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
          ASSERT_TRUE(f.is_healthy(r.path[i]));
          ASSERT_TRUE(gh.adjacent(r.path[i], r.path[i + 1]));
        }
      }
    }
  }
}

TEST_P(GhShapeSweep, RoundsBoundedByDimensionMinusOne) {
  // The paper: "it still requires a total of (n - 1) steps to obtain the
  // safety status of each node in GH_n".
  const topo::GeneralizedHypercube gh(GetParam());
  Xoshiro256ss rng(97);
  for (int t = 0; t < 12; ++t) {
    const auto f =
        fault::inject_uniform_gh(gh, rng.below(gh.num_nodes() / 3), rng);
    const auto gs = run_gs_gh(gh, f);
    ASSERT_LE(gs.rounds_to_stabilize,
              std::max(1u, gh.dimension() - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GhShapeSweep,
    ::testing::Values(std::vector<std::uint32_t>{2, 3, 2},
                      std::vector<std::uint32_t>{3, 3, 3},
                      std::vector<std::uint32_t>{4, 4},
                      std::vector<std::uint32_t>{2, 2, 3, 2},
                      std::vector<std::uint32_t>{5, 2, 2}));

TEST(GhUnicast, DeterministicSuboptimalDetour) {
  // GH(3,3,2), faults exactly on both preferred candidates of the pair
  // (0,0,0) -> (1,1,0): C1 fails (the source's dim-0 and dim-1 minima are
  // 0, so S(source) = 1 < H = 2), C2 fails (both candidates faulty), and
  // the spare (0,0,1) along the matching dimension is 3-safe, giving the
  // H + 2 detour.
  const topo::GeneralizedHypercube gh({3, 3, 2});
  fault::FaultSet f(gh.num_nodes());
  f.mark_faulty(gh.encode({1, 0, 0}));
  f.mark_faulty(gh.encode({0, 1, 0}));
  const auto levels = run_gs_gh(gh, f).levels;
  const NodeId s = gh.encode({0, 0, 0});
  const NodeId d = gh.encode({1, 1, 0});
  const NodeId spare = gh.encode({0, 0, 1});
  ASSERT_EQ(levels[s], 1);
  ASSERT_EQ(levels[spare], 3);

  const auto dec = decide_at_source_gh(gh, levels, s, d);
  EXPECT_FALSE(dec.c1);
  EXPECT_FALSE(dec.c2);
  EXPECT_TRUE(dec.c3);

  const auto r = route_unicast_gh(gh, f, levels, s, d);
  ASSERT_EQ(r.status, RouteStatus::kDeliveredSuboptimal);
  EXPECT_EQ(r.hops(), 4u);
  EXPECT_EQ(r.path[1], spare);
  EXPECT_EQ(r.path.back(), d);
}

TEST(GhUnicast, SafeSourceOptimalEverywhere) {
  const auto sc = fault::scenario::fig5();
  const auto levels = run_gs_gh(sc.gh, sc.faults).levels;
  for (NodeId s = 0; s < sc.gh.num_nodes(); ++s) {
    if (sc.faults.is_faulty(s) || levels[s] != sc.gh.dimension()) continue;
    for (NodeId d = 0; d < sc.gh.num_nodes(); ++d) {
      if (d == s || sc.faults.is_faulty(d)) continue;
      const auto r = route_unicast_gh(sc.gh, sc.faults, levels, s, d);
      ASSERT_EQ(r.status, RouteStatus::kDeliveredOptimal);
    }
  }
}

}  // namespace
}  // namespace slcube::core
