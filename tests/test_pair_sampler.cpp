#include "workload/pair_sampler.hpp"

#include <gtest/gtest.h>

#include <set>

#include "fault/injection.hpp"

namespace slcube::workload {
namespace {

TEST(PairSampler, UniformPairsAreHealthyAndDistinct) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(1);
  const auto f = fault::inject_uniform(q, 10, rng);
  for (int t = 0; t < 500; ++t) {
    const auto p = sample_uniform_pair(f, rng);
    ASSERT_TRUE(p.has_value());
    EXPECT_NE(p->s, p->d);
    EXPECT_TRUE(f.is_healthy(p->s));
    EXPECT_TRUE(f.is_healthy(p->d));
  }
}

TEST(PairSampler, UniformNulloptWhenTooFewHealthy) {
  fault::FaultSet f(4, {0, 1, 2});
  Xoshiro256ss rng(2);
  EXPECT_FALSE(sample_uniform_pair(f, rng).has_value());
}

TEST(PairSampler, UniformCoversAllHealthySources) {
  const topo::Hypercube q(3);
  fault::FaultSet f(q.num_nodes(), {0});
  Xoshiro256ss rng(3);
  std::set<NodeId> sources;
  for (int t = 0; t < 500; ++t) {
    sources.insert(sample_uniform_pair(f, rng)->s);
  }
  EXPECT_EQ(sources.size(), 7u);
}

TEST(PairSampler, AtDistanceRespectsDistance) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(4);
  const fault::FaultSet none(q.num_nodes());
  for (unsigned h = 1; h <= 6; ++h) {
    for (int t = 0; t < 50; ++t) {
      const auto p = sample_pair_at_distance(q, none, h, rng);
      ASSERT_TRUE(p.has_value());
      EXPECT_EQ(q.distance(p->s, p->d), h);
    }
  }
}

TEST(PairSampler, AtDistanceGivesUpGracefully) {
  // Healthy nodes are 00 and 10 (distance 1): each one's antipode is
  // faulty, so no healthy pair at distance 2 exists.
  const topo::Hypercube q(2);
  fault::FaultSet f(q.num_nodes(), {0b01, 0b11});
  Xoshiro256ss rng(5);
  EXPECT_FALSE(sample_pair_at_distance(q, f, 2, rng, 64).has_value());
}

TEST(PairSampler, AllHealthyPairsCountAndContent) {
  fault::FaultSet f(8, {0, 5});
  const auto pairs = all_healthy_pairs(f);
  EXPECT_EQ(pairs.size(), 6u * 5u);
  for (const auto& p : pairs) {
    EXPECT_NE(p.s, p.d);
    EXPECT_TRUE(f.is_healthy(p.s));
    EXPECT_TRUE(f.is_healthy(p.d));
  }
}

}  // namespace
}  // namespace slcube::workload
