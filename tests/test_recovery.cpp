// Node recovery (Section 2.2 mentions failure AND recovery as the events
// that trigger level updates): the rejoin protocol, convergence of the
// rising cascade to the oracle, and the paper's remark that recovery
// never disrupts an in-flight unicast.
#include <gtest/gtest.h>

#include <span>

#include "core/global_status.hpp"
#include "fault/injection.hpp"
#include "sim/protocol_gs.hpp"
#include "sim/protocol_unicast.hpp"

namespace slcube::sim {
namespace {

void expect_levels_match_oracle(const Network& net,
                                const fault::FaultSet& faults) {
  const auto oracle = core::compute_safety_levels(net.cube(), faults);
  for (NodeId a = 0; a < net.cube().num_nodes(); ++a) {
    ASSERT_EQ(net.level_of(a), oracle[a]) << "node " << a;
  }
}

TEST(Recovery, SingleRecoveryReachesOracle) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(9001);
  for (int t = 0; t < 10; ++t) {
    auto base = fault::inject_uniform(q, 8, rng);
    Network net(q, base);
    run_gs_synchronous(net);
    const auto faulty = base.faulty_nodes();
    const NodeId back = faulty[rng.below(faulty.size())];
    stabilize_after_recoveries(net, {back});
    base.mark_healthy(back);
    expect_levels_match_oracle(net, base);
  }
}

TEST(Recovery, FullHealScansToAllSafe) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(9002);
  auto base = fault::inject_uniform(q, 6, rng);
  Network net(q, base);
  run_gs_synchronous(net);
  // Recover everything, one node at a time.
  for (const NodeId back : base.faulty_nodes()) {
    stabilize_after_recoveries(net, {back});
  }
  const fault::FaultSet none(q.num_nodes());
  expect_levels_match_oracle(net, none);
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    EXPECT_EQ(net.level_of(a), 5);
  }
}

TEST(Recovery, SimultaneousBatchRecovery) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(9003);
  auto base = fault::inject_uniform(q, 12, rng);
  Network net(q, base);
  run_gs_synchronous(net);
  std::vector<NodeId> batch;
  for (const NodeId f : base.faulty_nodes()) {
    if (batch.size() < 5) batch.push_back(f);
  }
  stabilize_after_recoveries(net, batch);
  for (const NodeId f : batch) base.mark_healthy(f);
  expect_levels_match_oracle(net, base);
}

TEST(Recovery, InterleavedFailAndRecover) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(9004);
  fault::FaultSet base(q.num_nodes());
  Network net(q, base);
  run_gs_synchronous(net);
  for (int step = 0; step < 20; ++step) {
    if (base.count() > 0 && rng.chance(0.4)) {
      const auto faulty = base.faulty_nodes();
      const NodeId back = faulty[rng.below(faulty.size())];
      stabilize_after_recoveries(net, {back});
      base.mark_healthy(back);
    } else {
      NodeId victim;
      do {
        victim = static_cast<NodeId>(rng.below(q.num_nodes()));
      } while (base.is_faulty(victim));
      stabilize_after_failures(net, {victim});
      base.mark_faulty(victim);
    }
    expect_levels_match_oracle(net, base);
  }
}

TEST(Recovery, LevelsStaySoundThroughoutCascade) {
  // At every intermediate moment of the rising cascade, each node's
  // level must be <= its final (oracle) level: a sound
  // under-approximation, which is why in-flight unicasts are never
  // disrupted. We sample the invariant by single-stepping the cascade.
  const topo::Hypercube q(5);
  Xoshiro256ss rng(9005);
  auto base = fault::inject_uniform(q, 8, rng);
  Network net(q, base);
  run_gs_synchronous(net);
  const auto faulty = base.faulty_nodes();
  const NodeId back = faulty.front();
  base.mark_healthy(back);
  const auto oracle = core::compute_safety_levels(q, base);

  // Re-implement the cascade loop with an invariant probe per event.
  net.recover_node(back);
  auto recompute = [&](NodeId a) {
    const auto sorted = net.sorted_registers(a);
    const auto lvl = core::node_status(
        std::span<const core::Level>(sorted.data(), sorted.size()),
        q.dimension());
    if (lvl != net.level_of(a)) {
      net.set_level(a, lvl);
      net.cube().for_each_neighbor(a, [&](Dim, NodeId b) {
        if (net.faults().is_healthy(b)) {
          net.send(a, b, LevelUpdate{a, net.level_of(a)});
        }
      });
    }
  };
  q.for_each_neighbor(back, [&](Dim, NodeId b) {
    if (net.faults().is_healthy(b)) {
      net.send(b, back, LevelUpdate{b, net.level_of(b)});
    }
  });
  recompute(back);
  q.for_each_neighbor(back, [&](Dim, NodeId b) {
    if (net.faults().is_healthy(b)) recompute(b);
  });
  net.run([&](const Scheduled& ev) {
    const auto& update = std::get<LevelUpdate>(ev.envelope.body);
    const NodeId a = ev.envelope.to;
    net.set_neighbor_register(a, bits::lowest_set(a ^ update.from),
                              update.level);
    recompute(a);
    for (NodeId x = 0; x < q.num_nodes(); ++x) {
      if (net.faults().is_healthy(x)) {
        EXPECT_LE(net.level_of(x), oracle[x]) << "unsound mid-cascade";
      }
    }
    return true;
  });
  expect_levels_match_oracle(net, base);
}

TEST(Recovery, InFlightUnicastSurvivesRecovery) {
  // "The recovery of a faulty node will not cause disruption of a
  // unicasting": inject a unicast, recover a node mid-flight (no
  // stabilization yet), and the packet still arrives — stale-low levels
  // only under-estimate.
  const topo::Hypercube q(4);
  fault::FaultSet base(q.num_nodes(), {0b0011});
  Network net(q, base);
  run_gs_synchronous(net);
  // Route 0000 -> 1111 and recover 0011 at t+1 (mid-flight), without
  // running any GS: the walk continues on the old sound levels.
  // route_unicast_sim's failure hook only kills nodes, so emulate the
  // recovery between two sub-routes instead: first leg to 0101, recover,
  // second leg onward — both legs must deliver.
  const auto leg1 = route_unicast_sim(net, 0b0000, 0b0101);
  ASSERT_EQ(leg1.status, SimRouteStatus::kDelivered);
  net.recover_node(0b0011);
  const auto leg2 = route_unicast_sim(net, 0b0101, 0b1111);
  EXPECT_EQ(leg2.status, SimRouteStatus::kDelivered);
}

TEST(Recovery, PessimisticRejoinStateRegression) {
  // Regression for a doc/impl mismatch: recover_node rejoins the node
  // PESSIMISTICALLY at level 0 with all-zero registers in both
  // directions — not the optimistic level-n start an old comment
  // claimed. A level-n rejoin would sit ABOVE the new fixed point and
  // the rising recovery cascade could never correct it downward.
  const topo::Hypercube q(4);
  fault::FaultSet base(q.num_nodes(), {0b0110, 0b1011});
  Network net(q, base);
  run_gs_synchronous(net);
  net.recover_node(0b0110);

  // The rejoined node itself: level 0, every register 0.
  EXPECT_EQ(net.level_of(0b0110), 0);
  for (Dim d = 0; d < q.dimension(); ++d) {
    EXPECT_EQ(net.neighbor_register(0b0110, d), 0) << "dim " << d;
  }
  // Each healthy neighbor's cached register for the newcomer is reset
  // to 0 as well.
  q.for_each_neighbor(0b0110, [&](Dim, NodeId b) {
    if (net.faults().is_healthy(b)) {
      EXPECT_EQ(net.neighbor_register(b, bits::lowest_set(b ^ 0b0110)), 0)
          << "neighbor " << b;
    }
  });
  // That puts the whole state pointwise BELOW the new fixed point (the
  // monotonicity precondition of the rising cascade) ...
  base.mark_healthy(0b0110);
  const auto oracle = core::compute_safety_levels(q, base);
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    EXPECT_LE(net.level_of(a), oracle[a]) << "node " << a;
  }
  // ... so the next GS activity converges exactly to the oracle.
  run_gs_synchronous(net);
  expect_levels_match_oracle(net, base);
}

TEST(Recovery, RecoveredIsolatedNodeGetsLevelOne) {
  const topo::Hypercube q(3);
  fault::FaultSet base(q.num_nodes(), {0b001, 0b010, 0b100, 0b000});
  Network net(q, base);
  run_gs_synchronous(net);
  stabilize_after_recoveries(net, {0b000});
  base.mark_healthy(0b000);
  // 000's neighbors are all still faulty: the oracle gives it level 1.
  EXPECT_EQ(net.level_of(0b000), 1);
  expect_levels_match_oracle(net, base);
}

}  // namespace
}  // namespace slcube::sim
