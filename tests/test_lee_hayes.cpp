// The Lee-Hayes safe-node routing reconstruction: optimality from safe
// sources, the H+2 bound, and Theorem-4 inapplicability in disconnected
// cubes.
#include "baselines/lee_hayes.hpp"

#include <gtest/gtest.h>

#include "analysis/bfs.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"
#include "topology/topology_view.hpp"

namespace slcube::baselines {
namespace {

TEST(LeeHayes, FaultFreeOptimalAllPairs) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  LeeHayesRouter router;
  router.prepare(q, none);
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      const auto a = router.route(s, d);
      ASSERT_TRUE(a.delivered);
      ASSERT_EQ(a.hops(), q.distance(s, d));
    }
  }
}

TEST(LeeHayes, BoundHPlus2WheneverDelivered) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(61);
  LeeHayesRouter router;
  for (int t = 0; t < 20; ++t) {
    const auto f = fault::inject_uniform(q, 5, rng);
    router.prepare(q, f);
    for (int p = 0; p < 50; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto a = router.route(s, d);
      if (a.delivered) {
        ASSERT_LE(a.hops(), q.distance(s, d) + 2)
            << "Lee-Hayes promises <= H + 2";
        // Walk validity: healthy nodes, edges only.
        for (std::size_t i = 0; i + 1 < a.walk.size(); ++i) {
          ASSERT_TRUE(f.is_healthy(a.walk[i]));
          ASSERT_EQ(q.distance(a.walk[i], a.walk[i + 1]), 1u);
        }
      }
    }
  }
}

TEST(LeeHayes, SafeSourceIsOptimal) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(62);
  LeeHayesRouter router;
  for (int t = 0; t < 15; ++t) {
    const auto f = fault::inject_uniform(q, 3, rng);
    router.prepare(q, f);
    const auto safe =
        core::compute_safe_nodes(q, f, core::SafeNodeRule::kLeeHayes);
    for (NodeId s = 0; s < q.num_nodes(); ++s) {
      if (!safe.safe[s]) continue;
      for (NodeId d = 0; d < q.num_nodes(); ++d) {
        if (d == s || f.is_faulty(d)) continue;
        const auto a = router.route(s, d);
        ASSERT_TRUE(a.delivered);
        ASSERT_EQ(a.hops(), q.distance(s, d));
      }
    }
  }
}

TEST(LeeHayes, RefusesEverythingInDisconnectedCube) {
  // Theorem 4: the LH safe set is empty in any disconnected cube, so our
  // reconstruction refuses every unicast — the inapplicability the paper
  // proves.
  const auto sc = fault::scenario::fig3();
  LeeHayesRouter router;
  router.prepare(sc.cube, sc.faults);
  for (NodeId s = 0; s < 16; ++s) {
    if (sc.faults.is_faulty(s)) continue;
    for (NodeId d = 0; d < 16; ++d) {
      if (d == s || sc.faults.is_faulty(d)) continue;
      const auto a = router.route(s, d);
      if (sc.cube.distance(s, d) == 1) {
        EXPECT_TRUE(a.delivered);  // direct neighbor delivery still works
      } else {
        EXPECT_TRUE(a.refused)
            << "no safe nodes exist, routing must refuse";
      }
    }
  }
}

TEST(LeeHayes, RefusesWhenFullyUnsafeEvenIfConnected) {
  // Section 2.3's example: faults {0000, 0110, 1111} keep Q4 connected
  // but empty the LH safe set; the scheme refuses all non-neighbor pairs
  // although destinations are reachable — exactly the conservatism the
  // safety-level scheme fixes.
  const auto sc = fault::scenario::sec23();
  const topo::HypercubeView view(sc.cube);
  LeeHayesRouter router;
  router.prepare(sc.cube, sc.faults);
  unsigned refusals = 0, reachable_refusals = 0;
  for (NodeId s = 0; s < 16; ++s) {
    if (sc.faults.is_faulty(s)) continue;
    const auto dist = analysis::bfs_distances(view, sc.faults, s);
    for (NodeId d = 0; d < 16; ++d) {
      if (d == s || sc.faults.is_faulty(d)) continue;
      if (sc.cube.distance(s, d) == 1) continue;
      const auto a = router.route(s, d);
      if (a.refused) {
        ++refusals;
        reachable_refusals += dist[d] != analysis::kUnreachable ? 1u : 0u;
      }
    }
  }
  EXPECT_GT(refusals, 0u);
  EXPECT_GT(reachable_refusals, 0u);  // wrong refusals: LH's weakness
}

TEST(LeeHayes, PrepareRoundsReported) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0000, 0b0110, 0b1111});
  LeeHayesRouter router;
  router.prepare(q, f);
  EXPECT_GT(router.prepare_rounds(), 0u);  // the safe set shrank
}

}  // namespace
}  // namespace slcube::baselines
