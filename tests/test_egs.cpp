// Section 4.1: EGS (node + link faults), two-view levels, and routing
// including the footnote-3 deliver-to-treated-as-faulty rule.
#include "core/egs.hpp"

#include <gtest/gtest.h>

#include <variant>

#include "analysis/bfs.hpp"
#include "analysis/path.hpp"
#include "common/format.hpp"
#include "core/global_status.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"
#include "obs/trace.hpp"

namespace slcube::core {
namespace {

TEST(Egs, NoLinkFaultsReducesToGs) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(50);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, 6, rng);
    const fault::LinkFaultSet lf(q);
    const auto egs = run_egs(q, f, lf);
    const auto plain = compute_safety_levels(q, f);
    EXPECT_EQ(egs.public_view, plain);
    EXPECT_EQ(egs.self_view, plain);
    for (NodeId a = 0; a < q.num_nodes(); ++a) EXPECT_FALSE(egs.in_n2[a]);
  }
}

TEST(Egs, BothEndsOfFaultyLinkInN2) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(0b0000, 2);
  const auto egs = run_egs(q, none, lf);
  EXPECT_TRUE(egs.in_n2[0b0000]);
  EXPECT_TRUE(egs.in_n2[0b0100]);
  EXPECT_EQ(egs.public_view[0b0000], 0);
  EXPECT_EQ(egs.public_view[0b0100], 0);
  // Self views treat only the dead link's far end as faulty: one
  // 0-neighbor, everything else healthy -> still reasonably safe.
  EXPECT_GT(egs.self_view[0b0000], 0);
  EXPECT_GT(egs.self_view[0b0100], 0);
}

TEST(Egs, FaultyNodeStaysZeroInBothViews) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b1111});
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(0b0000, 0);
  const auto egs = run_egs(q, f, lf);
  EXPECT_EQ(egs.public_view[0b1111], 0);
  EXPECT_EQ(egs.self_view[0b1111], 0);
  EXPECT_FALSE(egs.in_n2[0b1111]);  // N2 is for *nonfaulty* nodes only
}

TEST(Egs, RoutingAvoidsFaultyLink) {
  // Fault-free nodes, one dead link (0000, 0001): unicast 0000 -> 0001
  // must go around with an H + 2 route, never crossing the dead link.
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(0b0000, 0);
  const auto egs = run_egs(q, none, lf);
  const auto r = route_unicast_egs(q, none, lf, egs, 0b0000, 0b0001);
  EXPECT_EQ(r.status, RouteStatus::kDeliveredSuboptimal);
  EXPECT_EQ(r.hops(), 3u);  // H = 1, detour = +2
  const auto chk = analysis::check_path_with_links(q, none, lf, r.path);
  EXPECT_EQ(chk.cls, analysis::PathClass::kSuboptimal) << chk.error;
}

TEST(Egs, DeliveryToN2DestinationViaHealthyLink) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(0b0000, 0);  // 0001 is in N2
  const auto egs = run_egs(q, none, lf);
  // 1001 -> 0001: the final hop crosses the healthy link (1001, 0001).
  const auto r = route_unicast_egs(q, none, lf, egs, 0b1001, 0b0001);
  EXPECT_TRUE(r.delivered());
  const auto chk = analysis::check_path_with_links(q, none, lf, r.path);
  EXPECT_NE(chk.cls, analysis::PathClass::kInvalid) << chk.error;
}

TEST(Egs, SelfViewGuaranteeTheorem2Style) {
  // The Section 4.1 rule: from an N2 node with self level k there is a
  // Hamming path to any node within k, except its faulty-link far ends.
  // Verify against link-aware BFS over random mixed fault patterns.
  const topo::Hypercube q(5);
  Xoshiro256ss rng(51);
  for (int t = 0; t < 15; ++t) {
    const auto f = fault::inject_uniform(q, 3, rng);
    auto lf = fault::inject_links_uniform(q, 3, rng);
    const auto egs = run_egs(q, f, lf);
    for (NodeId a = 0; a < q.num_nodes(); ++a) {
      if (f.is_faulty(a) || egs.self_view[a] == 0) continue;
      const auto dist = analysis::bfs_distances_with_links(q, f, lf, a);
      for (NodeId b = 0; b < q.num_nodes(); ++b) {
        if (b == a || f.is_faulty(b)) continue;
        const unsigned h = q.distance(a, b);
        if (h > egs.self_view[a]) continue;
        // Exception: far end of one of a's own faulty links.
        if (h == 1 && lf.is_faulty(a, bits::lowest_set(a ^ b))) continue;
        // Exception (footnote 3 in reverse): guarantee is about paths
        // whose INTERIOR lies in N1; if the destination is N2 the last
        // link needs to be healthy, which it is whenever the penultimate
        // node is in N1. BFS over healthy links is exactly that ground
        // truth.
        ASSERT_EQ(dist[b], h)
            << to_bits(a, 5) << " (self level "
            << int{egs.self_view[a]} << ") cannot optimally reach "
            << to_bits(b, 5);
      }
    }
  }
}

TEST(Egs, RouteSweepDeliversWithinBounds) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(52);
  for (int t = 0; t < 15; ++t) {
    const auto f = fault::inject_uniform(q, 4, rng);
    const auto lf = fault::inject_links_uniform(q, 4, rng);
    const auto egs = run_egs(q, f, lf);
    for (int p = 0; p < 40; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto r = route_unicast_egs(q, f, lf, egs, s, d);
      const unsigned h = q.distance(s, d);
      if (r.status == RouteStatus::kDeliveredOptimal) {
        ASSERT_EQ(r.hops(), h);
      } else if (r.status == RouteStatus::kDeliveredSuboptimal) {
        ASSERT_EQ(r.hops(), h + 2);
      }
      if (r.delivered()) {
        const auto chk = analysis::check_path_with_links(q, f, lf, r.path);
        ASSERT_NE(chk.cls, analysis::PathClass::kInvalid)
            << chk.error << ": " << analysis::format_path(r.path, 6);
      }
    }
  }
}

TEST(Egs, SourceRefusalsAreHonest) {
  // When the EGS source refuses, no H or H+2 path through N1 interiors
  // should exist... the cheap verifiable claim: the destination is not
  // reachable at Hamming distance via healthy links, or every qualifying
  // neighbor fails the level test. At minimum the refusal must never
  // happen when the source is safe in its own view.
  const topo::Hypercube q(5);
  Xoshiro256ss rng(53);
  for (int t = 0; t < 20; ++t) {
    const auto f = fault::inject_uniform(q, 3, rng);
    const auto lf = fault::inject_links_uniform(q, 2, rng);
    const auto egs = run_egs(q, f, lf);
    for (NodeId s = 0; s < q.num_nodes(); ++s) {
      if (f.is_faulty(s)) continue;
      if (egs.self_view[s] != q.dimension()) continue;  // safe self view
      for (NodeId d = 0; d < q.num_nodes(); ++d) {
        if (d == s || f.is_faulty(d)) continue;
        if (q.distance(s, d) == 1 &&
            lf.is_faulty(s, bits::lowest_set(s ^ d))) {
          continue;  // dead-link destination: refusal is legitimate
        }
        const auto r = route_unicast_egs(q, f, lf, egs, s, d);
        ASSERT_NE(r.status, RouteStatus::kSourceRefused)
            << to_bits(s, 5) << " -> " << to_bits(d, 5);
      }
    }
  }
}

TEST(Egs, EgsViewsOverloadMatchesEgsResultOverload) {
  // The EgsViews entry points (what EgsOracle drives) must agree with
  // the EgsResult convenience overloads on every decision field and hop.
  const topo::Hypercube q(5);
  Xoshiro256ss rng(54);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, 4, rng);
    const auto lf = fault::inject_links_uniform(q, 4, rng);
    const auto egs = run_egs(q, f, lf);
    const EgsViews views{egs.public_view, egs.self_view};
    for (int p = 0; p < 30; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto dec_a = decide_at_source_egs(q, lf, egs, s, d);
      const auto dec_b = decide_at_source_egs(q, lf, views, s, d);
      ASSERT_EQ(dec_a.c1, dec_b.c1);
      ASSERT_EQ(dec_a.c2, dec_b.c2);
      ASSERT_EQ(dec_a.c3, dec_b.c3);
      ASSERT_EQ(dec_a.hamming, dec_b.hamming);
      ASSERT_EQ(dec_a.dest_link_faulty, dec_b.dest_link_faulty);
      const auto r_a = route_unicast_egs(q, f, lf, egs, s, d);
      const auto r_b = route_unicast_egs(q, f, lf, views, s, d);
      ASSERT_EQ(r_a.status, r_b.status);
      ASSERT_EQ(r_a.path, r_b.path);
    }
  }
}

TEST(Egs, DestAcrossDeadLinkForcesC1Off) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(0b0000, 0);
  const auto egs = run_egs(q, none, lf);
  const auto dec = decide_at_source_egs(q, lf, egs, 0b0000, 0b0001);
  EXPECT_TRUE(dec.dest_link_faulty);
  EXPECT_FALSE(dec.c1);  // footnote 3: the self-view guarantee excludes it
  // A neighbor at distance 2 across healthy links is not affected.
  const auto dec2 = decide_at_source_egs(q, lf, egs, 0b0000, 0b0110);
  EXPECT_FALSE(dec2.dest_link_faulty);
}

TEST(Egs, TracedRouteMatchesUntracedAndCarriesTwoViewContext) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(0b0000, 0);
  const auto egs = run_egs(q, none, lf);

  // The H + 2 detour around the source's own dead link, traced.
  obs::RingBufferSink ring;
  UnicastOptions traced;
  traced.trace = &ring;
  const auto r = route_unicast_egs(q, none, lf, egs, 0b0000, 0b0001, traced);
  const auto r_plain = route_unicast_egs(q, none, lf, egs, 0b0000, 0b0001);
  EXPECT_EQ(r.status, r_plain.status);
  EXPECT_EQ(r.path, r_plain.path);
  ASSERT_EQ(r.status, RouteStatus::kDeliveredSuboptimal);

  const auto events = ring.snapshot();
  // source_decision + one hop per edge + route_done.
  ASSERT_EQ(events.size(), 2 + r.hops());
  const auto* src = std::get_if<obs::SourceDecisionEvent>(&events.front());
  ASSERT_NE(src, nullptr);
  EXPECT_TRUE(src->egs);
  EXPECT_EQ(src->self_level, egs.self_view[0b0000]);
  EXPECT_TRUE(src->dest_link_faulty);
  EXPECT_FALSE(src->c1);
  EXPECT_TRUE(src->spare);  // first hop is the spare detour
  const auto* hop1 = std::get_if<obs::HopEvent>(&events[1]);
  ASSERT_NE(hop1, nullptr);
  EXPECT_FALSE(hop1->preferred);
  const auto* done = std::get_if<obs::RouteDoneEvent>(&events.back());
  ASSERT_NE(done, nullptr);
  EXPECT_EQ(done->hops, r.hops());

  // An optimal route into an N2 destination: final hop is the forced
  // delivery across the healthy connecting link.
  ring.clear();
  const auto r2 = route_unicast_egs(q, none, lf, egs, 0b1001, 0b0001, traced);
  ASSERT_TRUE(r2.delivered());
  const auto ev2 = ring.snapshot();
  const auto* src2 = std::get_if<obs::SourceDecisionEvent>(&ev2.front());
  ASSERT_NE(src2, nullptr);
  EXPECT_TRUE(src2->egs);
  EXPECT_FALSE(src2->dest_link_faulty);
  const auto* last_hop = std::get_if<obs::HopEvent>(&ev2[ev2.size() - 2]);
  ASSERT_NE(last_hop, nullptr);
  EXPECT_EQ(last_hop->to, NodeId{0b0001});
  EXPECT_TRUE(last_hop->preferred);
}

TEST(Egs, EndToEndFig4AlternateUnicasts)  {
  // More routes in the Fig. 4 machine: N2 source 1001 reaching across
  // the cube, and a unicast INTO 1000 from far away.
  const auto sc = fault::scenario::fig4();
  const auto egs = run_egs(sc.cube, sc.faults, sc.link_faults);
  // 1001 -> 1111 (H=2): self view of 1001 is 2 -> C1 optimal.
  const auto r1 = route_unicast_egs(sc.cube, sc.faults, sc.link_faults, egs,
                                    from_bits("1001"), from_bits("1111"));
  EXPECT_EQ(r1.status, RouteStatus::kDeliveredOptimal);
  // 1011 -> 1000 (H=2): via 1010 then the healthy link into 1000.
  const auto r2 = route_unicast_egs(sc.cube, sc.faults, sc.link_faults, egs,
                                    from_bits("1011"), from_bits("1000"));
  EXPECT_TRUE(r2.delivered());
  const auto chk = analysis::check_path_with_links(sc.cube, sc.faults,
                                                   sc.link_faults, r2.path);
  EXPECT_NE(chk.cls, analysis::PathClass::kInvalid) << chk.error;
}

}  // namespace
}  // namespace slcube::core
