#include "analysis/components.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fault/injection.hpp"
#include "topology/topology_view.hpp"

namespace slcube::analysis {
namespace {

TEST(Components, FaultFreeCubeIsOneComponent) {
  const topo::Hypercube q(5);
  const topo::HypercubeView view(q);
  const fault::FaultSet none(q.num_nodes());
  const auto comps = connected_components(view, none);
  EXPECT_EQ(comps.count(), 1u);
  EXPECT_FALSE(comps.disconnected());
  EXPECT_EQ(comps.size[0], q.num_nodes());
}

TEST(Components, FaultyNodesGetSentinel) {
  const topo::Hypercube q(3);
  const topo::HypercubeView view(q);
  const fault::FaultSet f(q.num_nodes(), {3});
  const auto comps = connected_components(view, f);
  EXPECT_EQ(comps.component[3], Components::kFaulty);
  EXPECT_EQ(comps.count(), 1u);
}

TEST(Components, Fig3IsDisconnected) {
  const topo::Hypercube q(4);
  const topo::HypercubeView view(q);
  const fault::FaultSet f(q.num_nodes(), {0b0110, 0b1010, 0b1100, 0b1111});
  const auto comps = connected_components(view, f);
  EXPECT_TRUE(comps.disconnected());
  EXPECT_EQ(comps.count(), 2u);
  // 1110 is isolated.
  EXPECT_EQ(comps.size[comps.component[0b1110]], 1u);
  EXPECT_EQ(comps.size[comps.component[0b0000]], 11u);
  EXPECT_FALSE(comps.same_component(0b1110, 0b0000));
  EXPECT_TRUE(comps.same_component(0b0000, 0b0001));
}

TEST(Components, SameComponentRejectsFaulty) {
  const topo::Hypercube q(3);
  const topo::HypercubeView view(q);
  const fault::FaultSet f(q.num_nodes(), {0});
  const auto comps = connected_components(view, f);
  EXPECT_FALSE(comps.same_component(0, 1));
}

TEST(Components, SizesSumToHealthyCount) {
  const topo::Hypercube q(7);
  const topo::HypercubeView view(q);
  Xoshiro256ss rng(55);
  for (int t = 0; t < 20; ++t) {
    const auto f = fault::inject_uniform(q, 30, rng);
    const auto comps = connected_components(view, f);
    std::uint64_t total = 0;
    for (const auto s : comps.size) total += s;
    EXPECT_EQ(total, f.healthy_count());
  }
}

TEST(Components, ComponentsAreClosedUnderAdjacency) {
  const topo::Hypercube q(6);
  const topo::HypercubeView view(q);
  Xoshiro256ss rng(56);
  const auto f = fault::inject_uniform(q, 20, rng);
  const auto comps = connected_components(view, f);
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    if (f.is_faulty(a)) continue;
    q.for_each_neighbor(a, [&](Dim, NodeId b) {
      if (f.is_healthy(b)) {
        EXPECT_EQ(comps.component[a], comps.component[b]);
      }
    });
  }
}

TEST(Components, SubcubeFaultCanSplit) {
  // Killing all nodes with bit pattern *0* on two fixed dims leaves the
  // rest connected — but isolation injection must split. Checked through
  // inject_isolation in test_injection; here verify a hand-built split:
  // Q2 with both degree-2 neighbors of 00 killed leaves {00} | {11}.
  const topo::Hypercube q(2);
  const topo::HypercubeView view(q);
  const fault::FaultSet f(q.num_nodes(), {0b01, 0b10});
  const auto comps = connected_components(view, f);
  EXPECT_EQ(comps.count(), 2u);
  EXPECT_EQ(comps.size[comps.component[0b00]], 1u);
  EXPECT_EQ(comps.size[comps.component[0b11]], 1u);
}

TEST(Components, AllFaultyMeansZeroComponents) {
  const topo::Hypercube q(2);
  const topo::HypercubeView view(q);
  const fault::FaultSet f(q.num_nodes(), {0, 1, 2, 3});
  const auto comps = connected_components(view, f);
  EXPECT_EQ(comps.count(), 0u);
  EXPECT_FALSE(comps.disconnected());
}

}  // namespace
}  // namespace slcube::analysis
