// E-cube, greedy-local, sidetracking and DFS-backtracking baselines.
#include <gtest/gtest.h>

#include "analysis/bfs.hpp"
#include "baselines/dfs_backtrack.hpp"
#include "baselines/ecube.hpp"
#include "baselines/greedy_local.hpp"
#include "baselines/sidetrack.hpp"
#include "fault/injection.hpp"
#include "topology/topology_view.hpp"

namespace slcube::baselines {
namespace {

TEST(Ecube, FaultFreeIsOptimalAndDimensionOrdered) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  EcubeRouter router;
  router.prepare(q, none);
  const auto a = router.route(0b0000, 0b1011);
  EXPECT_TRUE(a.delivered);
  EXPECT_EQ(a.walk, (analysis::Path{0b0000, 0b0001, 0b0011, 0b1011}));
}

TEST(Ecube, DiesAtFirstFaultyHop) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0001});
  EcubeRouter router;
  router.prepare(q, f);
  const auto a = router.route(0b0000, 0b0011);
  EXPECT_FALSE(a.delivered);
  EXPECT_FALSE(a.refused);  // e-cube is fault-oblivious: it just dies
  EXPECT_EQ(a.walk, (analysis::Path{0b0000}));
}

TEST(Ecube, PrepareRoundsZero) {
  EcubeRouter router;
  EXPECT_EQ(router.prepare_rounds(), 0u);
}

TEST(GreedyLocal, RoutesAroundSingleBlockedDim) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0001});
  GreedyLocalRouter router;
  router.prepare(q, f);
  // 0000 -> 0011: dim 0 neighbor faulty, takes dim 1 first instead.
  const auto a = router.route(0b0000, 0b0011);
  EXPECT_TRUE(a.delivered);
  EXPECT_EQ(a.hops(), 2u);
  EXPECT_EQ(a.walk[1], 0b0010u);
}

TEST(GreedyLocal, StuckWhenAllPreferredFaulty) {
  const topo::Hypercube q(3);
  const fault::FaultSet f(q.num_nodes(), {0b001, 0b010});
  GreedyLocalRouter router;
  router.prepare(q, f);
  const auto a = router.route(0b000, 0b011);
  EXPECT_FALSE(a.delivered);
  EXPECT_FALSE(a.refused);
  EXPECT_EQ(a.walk.size(), 1u);
}

TEST(GreedyLocal, FaultFreeOptimalAllPairs) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  GreedyLocalRouter router;
  router.prepare(q, none);
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      const auto a = router.route(s, d);
      ASSERT_TRUE(a.delivered);
      ASSERT_EQ(a.hops(), q.distance(s, d));
    }
  }
}

TEST(Sidetrack, DeliversAroundBlockade) {
  const topo::Hypercube q(3);
  const fault::FaultSet f(q.num_nodes(), {0b001, 0b010});
  SidetrackRouter router(/*seed=*/7);
  router.prepare(q, f);
  // 000 -> 011 requires a derail via 100; random walk finds it with high
  // probability within TTL; run several attempts and require one success.
  bool delivered = false;
  for (int i = 0; i < 10 && !delivered; ++i) {
    delivered = router.route(0b000, 0b011).delivered;
  }
  EXPECT_TRUE(delivered);
}

TEST(Sidetrack, WalkNeverExceedsTtl) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(11);
  const auto f = fault::inject_uniform(q, 10, rng);
  SidetrackRouter router(3, /*ttl_factor=*/4);
  router.prepare(q, f);
  for (int t = 0; t < 100; ++t) {
    NodeId s = static_cast<NodeId>(rng.below(32));
    NodeId d = static_cast<NodeId>(rng.below(32));
    if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
    const auto a = router.route(s, d);
    EXPECT_LE(a.hops(), 4u * 5u + q.distance(s, d));
  }
}

TEST(Sidetrack, FaultFreeIsOptimal) {
  const topo::Hypercube q(5);
  const fault::FaultSet none(q.num_nodes());
  SidetrackRouter router(13);
  router.prepare(q, none);
  for (int t = 0; t < 50; ++t) {
    const auto a = router.route(3, 28);
    ASSERT_TRUE(a.delivered);
    ASSERT_EQ(a.hops(), q.distance(3, 28));  // always some preferred hop
  }
}

TEST(DfsBacktrack, CompleteOnConnectedPairs) {
  const topo::Hypercube q(5);
  const topo::HypercubeView view(q);
  Xoshiro256ss rng(17);
  DfsBacktrackRouter router;
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, 10, rng);
    router.prepare(q, f);
    NodeId s = 0;
    while (f.is_faulty(s)) ++s;
    const auto dist = analysis::bfs_distances(view, f, s);
    for (NodeId d = 0; d < q.num_nodes(); ++d) {
      if (d == s || f.is_faulty(d)) continue;
      const auto a = router.route(s, d);
      if (dist[d] != analysis::kUnreachable) {
        ASSERT_TRUE(a.delivered) << "DFS must be complete";
      } else {
        ASSERT_FALSE(a.delivered);
        ASSERT_FALSE(a.refused);  // it exhausts, it does not predict
      }
    }
  }
}

TEST(DfsBacktrack, FaultFreeIsOptimal) {
  // With no faults the first preferred dim always works: no backtracking.
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  DfsBacktrackRouter router;
  router.prepare(q, none);
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      const auto a = router.route(s, d);
      ASSERT_TRUE(a.delivered);
      ASSERT_EQ(a.hops(), q.distance(s, d));
    }
  }
}

TEST(DfsBacktrack, BacktrackWalkIsContiguous) {
  const topo::Hypercube q(4);
  Xoshiro256ss rng(23);
  DfsBacktrackRouter router;
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, 5, rng);
    router.prepare(q, f);
    NodeId s = 0;
    while (f.is_faulty(s)) ++s;
    for (NodeId d = 0; d < 16; ++d) {
      if (d == s || f.is_faulty(d)) continue;
      const auto a = router.route(s, d);
      for (std::size_t i = 0; i + 1 < a.walk.size(); ++i) {
        ASSERT_EQ(q.distance(a.walk[i], a.walk[i + 1]), 1u)
            << "the physical walk must move along edges";
      }
    }
  }
}

TEST(Names, AreStable) {
  EXPECT_EQ(EcubeRouter().name(), "e-cube");
  EXPECT_EQ(GreedyLocalRouter().name(), "greedy-local");
  EXPECT_EQ(SidetrackRouter(1).name(), "sidetrack");
  EXPECT_EQ(DfsBacktrackRouter().name(), "dfs-backtrack");
}

}  // namespace
}  // namespace slcube::baselines
