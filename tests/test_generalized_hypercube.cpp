#include "topology/generalized_hypercube.hpp"

#include <gtest/gtest.h>

#include <set>

namespace slcube::topo {
namespace {

GeneralizedHypercube fig5_gh() { return GeneralizedHypercube({2, 3, 2}); }

TEST(GH, SizeAndDegree) {
  const auto gh = fig5_gh();  // 2 x 3 x 2, the paper's Fig. 5 machine
  EXPECT_EQ(gh.dimension(), 3u);
  EXPECT_EQ(gh.num_nodes(), 12u);
  // Degree: (2-1) + (3-1) + (2-1) = 4.
  EXPECT_EQ(gh.degree(), 4u);
}

TEST(GH, BinaryRadicesReduceToHypercube) {
  const GeneralizedHypercube gh({2, 2, 2, 2});
  EXPECT_EQ(gh.num_nodes(), 16u);
  EXPECT_EQ(gh.degree(), 4u);
  // Coordinates must equal the bits of the id.
  for (NodeId a = 0; a < 16; ++a) {
    for (Dim i = 0; i < 4; ++i) {
      EXPECT_EQ(gh.coordinate(a, i), (a >> i) & 1u);
    }
  }
}

TEST(GH, EncodeDecodeRoundTrip) {
  const auto gh = fig5_gh();
  for (NodeId a = 0; a < gh.num_nodes(); ++a) {
    EXPECT_EQ(gh.encode(gh.coordinates(a)), a);
  }
}

TEST(GH, CoordinateValuesInRange) {
  const GeneralizedHypercube gh({3, 4, 2});
  for (NodeId a = 0; a < gh.num_nodes(); ++a) {
    for (Dim i = 0; i < gh.dimension(); ++i) {
      EXPECT_LT(gh.coordinate(a, i), gh.radix(i));
    }
  }
}

TEST(GH, WithCoordinate) {
  const auto gh = fig5_gh();
  const NodeId a = gh.encode({0, 1, 0});  // "010"
  const NodeId b = gh.with_coordinate(a, 1, 2);
  EXPECT_EQ(gh.coordinates(b), (std::vector<std::uint32_t>{0, 2, 0}));
  EXPECT_EQ(gh.with_coordinate(b, 1, 1), a);
}

TEST(GH, DistanceCountsDifferingCoordinates) {
  const auto gh = fig5_gh();
  const NodeId x = gh.encode({0, 1, 0});  // 010
  const NodeId y = gh.encode({1, 0, 1});  // 101
  EXPECT_EQ(gh.distance(x, y), 3u);
  EXPECT_EQ(gh.distance(x, x), 0u);
  EXPECT_EQ(gh.distance(x, gh.encode({0, 2, 0})), 1u);
}

TEST(GH, NeighborsDifferInExactlyOneCoordinate) {
  const GeneralizedHypercube gh({3, 3, 2});
  for (NodeId a = 0; a < gh.num_nodes(); ++a) {
    unsigned count = 0;
    gh.for_each_neighbor(a, [&](Dim i, NodeId b) {
      EXPECT_EQ(gh.distance(a, b), 1u);
      EXPECT_NE(gh.coordinate(a, i), gh.coordinate(b, i));
      ++count;
    });
    EXPECT_EQ(count, gh.degree());
  }
}

TEST(GH, NeighborsAreDistinct) {
  const GeneralizedHypercube gh({4, 2, 3});
  for (NodeId a = 0; a < gh.num_nodes(); ++a) {
    std::set<NodeId> nbrs;
    gh.for_each_neighbor(a, [&](Dim, NodeId b) { nbrs.insert(b); });
    EXPECT_EQ(nbrs.size(), gh.degree());
    EXPECT_FALSE(nbrs.contains(a));
  }
}

TEST(GH, DimensionsAreCompleteGraphs) {
  // All nodes sharing every coordinate but one are pairwise adjacent.
  const GeneralizedHypercube gh({2, 4, 2});
  for (NodeId a = 0; a < gh.num_nodes(); ++a) {
    for (std::uint32_t c1 = 0; c1 < gh.radix(1); ++c1) {
      for (std::uint32_t c2 = 0; c2 < gh.radix(1); ++c2) {
        if (c1 == c2) continue;
        EXPECT_TRUE(gh.adjacent(gh.with_coordinate(a, 1, c1),
                                gh.with_coordinate(a, 1, c2)));
      }
    }
  }
}

TEST(GH, AllNodes) {
  const auto gh = fig5_gh();
  EXPECT_EQ(gh.all_nodes().size(), 12u);
}

TEST(GH, Equality) {
  EXPECT_EQ(fig5_gh(), fig5_gh());
  EXPECT_FALSE(fig5_gh() == GeneralizedHypercube({3, 2, 2}));
}

/// Distance is a metric on GH (triangle inequality), checked exhaustively
/// over several shapes.
class GhShapes
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(GhShapes, TriangleInequality) {
  const GeneralizedHypercube gh(GetParam());
  for (NodeId a = 0; a < gh.num_nodes(); ++a) {
    for (NodeId b = 0; b < gh.num_nodes(); ++b) {
      for (NodeId c = 0; c < gh.num_nodes(); ++c) {
        EXPECT_LE(gh.distance(a, c), gh.distance(a, b) + gh.distance(b, c));
      }
    }
  }
}

TEST_P(GhShapes, NodeCountIsRadixProduct) {
  const GeneralizedHypercube gh(GetParam());
  std::uint64_t prod = 1;
  for (const auto m : GetParam()) prod *= m;
  EXPECT_EQ(gh.num_nodes(), prod);
}

INSTANTIATE_TEST_SUITE_P(
    SmallShapes, GhShapes,
    ::testing::Values(std::vector<std::uint32_t>{2, 3, 2},
                      std::vector<std::uint32_t>{3, 3},
                      std::vector<std::uint32_t>{4, 2},
                      std::vector<std::uint32_t>{2, 2, 2},
                      std::vector<std::uint32_t>{5, 3}));

}  // namespace
}  // namespace slcube::topo
