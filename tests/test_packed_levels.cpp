// The bit-packed safety-table storage (PackedLevels) and its two hard
// guarantees:
//
//  * Representation — 5 bits per level, 12 per u64 word, spare and tail
//    bits always zero, so word-wise operator== is content equality and
//    packed_digest() covers the exact stored bytes.
//
//  * Bit-identity — the packed table threaded through compute_safety_levels
//    and the incremental SafetyOracle is word-for-word identical to a
//    from-scratch fixed point on every previously supported dim (3–12),
//    across randomized fault sets and add/remove/retarget interleavings,
//    and across GS thread counts {1, 4, 8} including the per-round change
//    counts (the parallel rounds are deterministic, not just convergent).
#include "core/packed_levels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/global_status.hpp"
#include "core/safety.hpp"
#include "core/safety_oracle.hpp"
#include "exp/sweep_engine.hpp"
#include "fault/fault_set.hpp"

namespace slcube::core {
namespace {

TEST(PackedLevels, GetSetRoundTripAcrossWordBoundaries) {
  PackedLevels p(40, 0);
  // 40 slots span 4 words; write a distinct 5-bit pattern everywhere.
  for (NodeId i = 0; i < 40; ++i) p.set(i, (i * 7 + 3) % 21);
  for (NodeId i = 0; i < 40; ++i) EXPECT_EQ(p.get(i), (i * 7 + 3) % 21);
  // Word-boundary slots specifically (11|12 and 23|24).
  p.set(11, 31);
  p.set(12, 1);
  EXPECT_EQ(p.get(11), 31u);
  EXPECT_EQ(p.get(12), 1u);
  EXPECT_EQ(p.get(10), (10 * 7 + 3) % 21);
  EXPECT_EQ(p.get(13), (13 * 7 + 3) % 21);
}

TEST(PackedLevels, SpareAndTailBitsStayZero) {
  // 13 slots = 1 full word + 1 slot of the second; fill with the max
  // level and check the invariant bits directly.
  PackedLevels p(13, 31);
  ASSERT_EQ(p.words().size(), 2u);
  // Word 0: 12 slots of 0b11111 = low 60 bits set, top 4 zero.
  EXPECT_EQ(p.words()[0], (std::uint64_t{1} << 60) - 1);
  // Word 1: slot 12 only; slots 13.. are tail and must be zero.
  EXPECT_EQ(p.words()[1], std::uint64_t{31});
  p.set(12, 5);
  EXPECT_EQ(p.words()[1], std::uint64_t{5});
}

TEST(PackedLevels, WordEqualityIsContentEquality) {
  PackedLevels a(30, 7);
  PackedLevels b(30, 7);
  EXPECT_TRUE(a == b);
  b.set(29, 8);
  EXPECT_FALSE(a == b);
  b.set(29, 7);
  EXPECT_TRUE(a == b);
}

TEST(PackedLevels, DigestSeesEverySlotAndTheSize) {
  PackedLevels a(24, 3);
  const std::uint64_t base = packed_digest(a);
  for (NodeId i = 0; i < 24; ++i) {
    PackedLevels c = a;
    c.set(i, 4);
    EXPECT_NE(packed_digest(c), base) << "slot " << i << " not covered";
  }
  EXPECT_NE(packed_digest(PackedLevels(23, 3)), base);
}

TEST(PackedLevels, StorageIsFiveBitsPerLevel) {
  const PackedLevels p(1u << 20, 0);
  // ceil(2^20 / 12) words * 8 bytes ≈ 0.667 bytes/node.
  EXPECT_EQ(p.storage_bytes(), ((1u << 20) + 11) / 12 * 8);
  EXPECT_LT(static_cast<double>(p.storage_bytes()) / (1u << 20), 0.67);
}

/// A randomized fault set of `count` distinct victims.
fault::FaultSet random_faults(const topo::Hypercube& cube, std::uint64_t count,
                              Xoshiro256ss& rng) {
  fault::FaultSet f(cube.num_nodes());
  while (f.count() < count) {
    const auto v = static_cast<NodeId>(rng.below(cube.num_nodes()));
    if (f.is_healthy(v)) f.mark_faulty(v);
  }
  return f;
}

TEST(PackedBitIdentity, ScratchTablesMatchUnpackedKernelDims3To12) {
  // The packed fixed point must agree, level by level, with what the
  // unpacked NODE_STATUS kernel implies at every healthy node — and the
  // unpack() of the table must be the same sequence the packed getters
  // return.
  for (unsigned dim = 3; dim <= 12; ++dim) {
    const topo::Hypercube cube(dim);
    auto rng = exp::substream(0xB17'1DE27, dim, 0);
    for (int rep = 0; rep < 3; ++rep) {
      const auto faults =
          random_faults(cube, rng.below(cube.num_nodes() / 4), rng);
      const SafetyLevels levels = compute_safety_levels(cube, faults);
      ASSERT_TRUE(is_consistent(cube, faults, levels));
      const std::vector<Level> flat = levels.unpack();
      ASSERT_EQ(flat.size(), cube.num_nodes());
      for (NodeId a = 0; a < cube.num_nodes(); ++a) {
        EXPECT_EQ(flat[a], levels[a]);
        EXPECT_EQ(levels.packed().get(a), levels[a]);
      }
    }
  }
}

TEST(PackedBitIdentity, OracleInterleavingsMatchScratchDims3To12) {
  // Randomized add/remove/retarget interleavings: after every operation
  // the oracle's packed words must equal a from-scratch fixed point —
  // not just level-equal, word-for-word equal (tail invariant included).
  for (unsigned dim = 3; dim <= 12; ++dim) {
    const topo::Hypercube cube(dim);
    auto rng = exp::substream(0x0'0AC1E, dim, 1);
    fault::FaultSet f(cube.num_nodes());
    SafetyOracle oracle(cube);
    const unsigned ops = dim <= 8 ? 40 : 16;
    for (unsigned op = 0; op < ops; ++op) {
      const std::uint64_t roll = rng.below(10);
      if (roll < 5 || f.count() == 0) {
        NodeId v;
        do {
          v = static_cast<NodeId>(rng.below(cube.num_nodes()));
        } while (f.is_faulty(v));
        f.mark_faulty(v);
        oracle.add_fault(v);
      } else if (roll < 8) {
        const auto faulty = f.faulty_nodes();
        const NodeId back = faulty[rng.below(faulty.size())];
        f.mark_healthy(back);
        oracle.remove_fault(back);
      } else {
        // Jump to an unrelated fault set (exercises both the word-wise
        // delta path and the rebuild fallback, depending on distance).
        f = random_faults(cube, rng.below(cube.num_nodes() / 8), rng);
        oracle.retarget(f);
      }
      const SafetyLevels scratch = compute_safety_levels(cube, f);
      ASSERT_TRUE(oracle.levels().packed() == scratch.packed())
          << "dim " << dim << " op " << op << " faults " << f.count();
      ASSERT_EQ(packed_digest(oracle.levels().packed()),
                packed_digest(scratch.packed()));
    }
  }
}

TEST(PackedBitIdentity, ParallelGsThreadCountInvariance) {
  // {1, 4, 8} threads: the full GsResult must match — levels, rounds,
  // and the per-round change counts. The chunk boundaries move with the
  // thread count; the results must not.
  for (unsigned dim : {6u, 9u, 11u}) {
    const topo::Hypercube cube(dim);
    auto rng = exp::substream(0x7C0'117, dim, 2);
    const auto faults =
        random_faults(cube, rng.below(cube.num_nodes() / 4) + 1, rng);
    GsOptions serial;
    serial.threads = 1;
    const GsResult reference = run_gs(cube, faults, serial);
    for (unsigned threads : {4u, 8u}) {
      GsOptions opt;
      opt.threads = threads;
      const GsResult parallel = run_gs(cube, faults, opt);
      EXPECT_TRUE(parallel.levels.packed() == reference.levels.packed())
          << "dim " << dim << " threads " << threads;
      EXPECT_EQ(parallel.rounds_to_stabilize, reference.rounds_to_stabilize);
      EXPECT_EQ(parallel.changes_per_round, reference.changes_per_round);
      EXPECT_EQ(parallel.stabilized, reference.stabilized);
    }
    // And through the public convenience + oracle build paths.
    const SafetyLevels via_helper = compute_safety_levels(cube, faults, 8);
    EXPECT_TRUE(via_helper.packed() == reference.levels.packed());
    const SafetyOracle oracle(cube, faults, /*build_threads=*/4);
    EXPECT_TRUE(oracle.levels().packed() == reference.levels.packed());
  }
}

TEST(PackedBitIdentity, CountingKernelMatchesSortedNodeStatus) {
  // implied_level() now counts level occurrences instead of sorting the
  // neighborhood; both must realize the same NODE_STATUS map. Compare
  // against an explicit gather-sort-scan reference on random tables.
  const topo::Hypercube cube(7);
  auto rng = exp::substream(0x5057A7, 7, 3);
  for (int rep = 0; rep < 50; ++rep) {
    const auto faults = random_faults(cube, rng.below(40), rng);
    SafetyLevels table(cube.dimension(), cube.num_nodes(), 0);
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      table.set(a, faults.is_faulty(a)
                       ? 0
                       : static_cast<Level>(rng.below(cube.dimension() + 1)));
    }
    for (NodeId a = 0; a < cube.num_nodes(); ++a) {
      if (faults.is_faulty(a)) continue;
      std::vector<Level> sorted;
      cube.for_each_neighbor(
          a, [&](Dim, NodeId b) { sorted.push_back(table[b]); });
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(implied_level(cube, faults, table, a),
                node_status({sorted.data(), sorted.size()},
                            cube.dimension()));
    }
  }
}

}  // namespace
}  // namespace slcube::core
