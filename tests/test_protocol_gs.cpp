// Distributed GS over the simulator: bit-equality with the centralized
// oracle for all three Section 2.2 update disciplines, and the message
// accounting the paper's cost argument rests on.
#include "sim/protocol_gs.hpp"

#include <gtest/gtest.h>

#include "core/global_status.hpp"
#include "fault/injection.hpp"

namespace slcube::sim {
namespace {

void expect_levels_match_oracle(const Network& net,
                                const fault::FaultSet& faults) {
  const auto oracle = core::compute_safety_levels(net.cube(), faults);
  for (NodeId a = 0; a < net.cube().num_nodes(); ++a) {
    ASSERT_EQ(net.level_of(a), oracle[a]) << "node " << a;
  }
}

TEST(SyncGs, FaultFreeZeroRounds) {
  const topo::Hypercube q(5);
  const fault::FaultSet none(q.num_nodes());
  Network net(q, none);
  const auto r = run_gs_synchronous(net);
  EXPECT_EQ(r.rounds, 0u);
  expect_levels_match_oracle(net, none);
}

class SyncGsSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SyncGsSweep, MatchesOracleAndRoundBound) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 1001);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, rng.below(q.num_nodes() / 2),
                                         rng);
    Network net(q, f);
    const auto r = run_gs_synchronous(net);
    EXPECT_LE(r.rounds, n - 1);
    expect_levels_match_oracle(net, f);
    // Message count: every changing round plus the final quiet round send
    // one update per directed healthy-healthy edge.
    std::uint64_t healthy_edges = 0;
    for (NodeId a = 0; a < q.num_nodes(); ++a) {
      if (f.is_faulty(a)) continue;
      q.for_each_neighbor(a, [&](Dim, NodeId b) {
        healthy_edges += f.is_healthy(b) ? 1u : 0u;
      });
    }
    EXPECT_EQ(r.messages, (r.rounds + 1) * healthy_edges);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims2To7, SyncGsSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u));

TEST(SyncGs, RoundsMatchCentralizedGs) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0011, 0b0100, 0b0110, 0b1001});
  Network net(q, f);
  const auto sim_r = run_gs_synchronous(net);
  const auto oracle = core::run_gs(q, f);
  EXPECT_EQ(sim_r.rounds, oracle.rounds_to_stabilize);
  EXPECT_EQ(sim_r.rounds, 2u);  // Fig. 1
}

TEST(AsyncGs, SingleFailureCascadesToOracle) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(2002);
  for (int t = 0; t < 10; ++t) {
    auto base = fault::inject_uniform(q, 4, rng);
    Network net(q, base);
    run_gs_synchronous(net);
    // Pick a healthy node to kill.
    NodeId victim;
    do {
      victim = static_cast<NodeId>(rng.below(q.num_nodes()));
    } while (base.is_faulty(victim));
    stabilize_after_failures(net, {victim});
    base.mark_faulty(victim);
    expect_levels_match_oracle(net, base);
  }
}

TEST(AsyncGs, MultipleSimultaneousFailures) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(2003);
  auto base = fault::inject_uniform(q, 6, rng);
  Network net(q, base);
  run_gs_synchronous(net);
  std::vector<NodeId> victims;
  for (NodeId a = 0; victims.size() < 4 && a < q.num_nodes(); ++a) {
    if (base.is_healthy(a)) victims.push_back(a);
  }
  stabilize_after_failures(net, victims);
  for (const NodeId v : victims) base.mark_faulty(v);
  expect_levels_match_oracle(net, base);
}

TEST(AsyncGs, NoChangeNoMessages) {
  // Killing a node whose neighbors' levels don't change (a corner of the
  // cube far from everything in a large fault-free cube... levels DO
  // change for its neighbors only if they drop below n. One fault in a
  // fault-free cube leaves every healthy node at level n, so the cascade
  // is silent).
  const topo::Hypercube q(6);
  const fault::FaultSet none(q.num_nodes());
  Network net(q, none);
  run_gs_synchronous(net);
  const auto r = stabilize_after_failures(net, {0});
  EXPECT_EQ(r.messages, 0u);
  fault::FaultSet f(q.num_nodes(), {0});
  expect_levels_match_oracle(net, f);
}

TEST(AsyncGs, FailureSequenceMatchesOracleEachStep) {
  // Kill nodes one at a time, stabilizing in between: the state must
  // track the oracle after every step (the demand-driven usage pattern).
  const topo::Hypercube q(5);
  Xoshiro256ss rng(2004);
  fault::FaultSet base(q.num_nodes());
  Network net(q, base);
  run_gs_synchronous(net);
  for (int step = 0; step < 8; ++step) {
    NodeId victim;
    do {
      victim = static_cast<NodeId>(rng.below(q.num_nodes()));
    } while (base.is_faulty(victim));
    stabilize_after_failures(net, {victim});
    base.mark_faulty(victim);
    expect_levels_match_oracle(net, base);
  }
}

TEST(PeriodicGs, ConvergesWithinDimensionPeriods) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(2005);
  const auto f = fault::inject_uniform(q, 8, rng);
  Network net(q, f);
  const auto r = run_gs_periodic(net, /*period=*/4, /*periods=*/5);
  EXPECT_EQ(r.periods, 5u);
  expect_levels_match_oracle(net, f);
}

TEST(PeriodicGs, WasteDominatesWhenStable) {
  // The paper: "all (or most) exchanges are wasted when all (or most) of
  // nodes' status remain stable". After stabilization, further periods
  // produce zero useful messages.
  const topo::Hypercube q(5);
  Xoshiro256ss rng(2006);
  const auto f = fault::inject_uniform(q, 6, rng);
  Network net(q, f);
  run_gs_periodic(net, 4, 5);  // stabilize
  const auto r = run_gs_periodic(net, 4, 10);  // pure waste
  EXPECT_GT(r.messages, 0u);
  EXPECT_EQ(r.useful, 0u);
}

TEST(Comparison, StateChangeDrivenCheaperThanPeriodic) {
  // One extra failure: the state-change cascade sends far fewer messages
  // than even a single periodic wave (the Section 2.2 trade-off).
  const topo::Hypercube q(6);
  Xoshiro256ss rng(2007);
  const auto f = fault::inject_uniform(q, 5, rng);

  Network net(q, f);
  run_gs_synchronous(net);
  NodeId victim = 0;
  while (f.is_faulty(victim)) ++victim;
  const auto cascade = stabilize_after_failures(net, {victim});

  const std::uint64_t one_wave =
      (f.healthy_count() - 1) * q.dimension();  // upper bound per wave
  EXPECT_LT(cascade.messages, one_wave);
}

}  // namespace
}  // namespace slcube::sim
