// exp::SweepEngine — the determinism contract: per-trial substreams are
// pure functions of (seed, stream, trial), map() results are indexed by
// trial, and trial-order folds make every aggregate bit-identical at any
// worker count. Plus the engine's sharded metrics and timing profile.
#include "exp/sweep_engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "baselines/ecube.hpp"
#include "baselines/safety_level_router.hpp"
#include "obs/trace.hpp"
#include "workload/experiment.hpp"

namespace slcube::exp {
namespace {

TEST(Substream, PureFunctionOfSeedStreamTrial) {
  auto a = substream(42, 7, 1001);
  auto b = substream(42, 7, 1001);
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(a(), b()) << "same (seed, stream, trial) must replay";
  }
}

TEST(Substream, NeighboringTrialsDecorrelate) {
  // Counter-based derivation: adjacent trials and adjacent streams land
  // in unrelated states — their first draws must all differ.
  auto base = substream(42, 7, 1001)();
  EXPECT_NE(base, substream(42, 7, 1002)());
  EXPECT_NE(base, substream(42, 8, 1001)());
  EXPECT_NE(base, substream(43, 7, 1001)());
}

TEST(SweepEngine, MapReturnsResultsInTrialOrder) {
  SweepEngine engine({.threads = 4, .seed = 99});
  const auto out = engine.map<std::size_t>(
      0, 100, [](TrialContext& ctx) { return ctx.trial; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t t = 0; t < out.size(); ++t) {
    EXPECT_EQ(out[t], t);
  }
}

TEST(SweepEngine, MapIsBitIdenticalAtAnyWorkerCount) {
  // The tentpole guarantee: the trial body below consumes randomness,
  // so any leakage of scheduling into the substreams would show up in
  // the per-trial draws. Serial and 4-worker runs must agree exactly.
  const auto body = [](TrialContext& ctx) {
    std::uint64_t acc = 0;
    const int draws = 1 + static_cast<int>(ctx.rng.below(8));
    for (int i = 0; i < draws; ++i) acc = mix64(acc ^ ctx.rng());
    return acc;
  };
  SweepEngine serial({.threads = 1, .seed = 0xD00D});
  SweepEngine wide({.threads = 4, .seed = 0xD00D});
  for (std::uint64_t stream = 0; stream < 3; ++stream) {
    const auto a = serial.map<std::uint64_t>(stream, 500, body);
    const auto b = wide.map<std::uint64_t>(stream, 500, body);
    ASSERT_EQ(a, b) << "stream " << stream;
  }
}

TEST(SweepEngine, BatchedMapWithOffsetMatchesOneShot) {
  // trial_offset shifts the substream and TrialContext::trial by a
  // constant, so a run split into batches (ticking telemetry between
  // them) concatenates to exactly the one-shot result vector.
  const auto body = [](TrialContext& ctx) {
    return mix64(ctx.rng() ^ static_cast<std::uint64_t>(ctx.trial));
  };
  SweepEngine engine({.threads = 4, .seed = 0xBA7C4});
  const auto whole = engine.map<std::uint64_t>(3, 100, body);
  std::vector<std::uint64_t> stitched;
  for (std::size_t off = 0; off < 100; off += 33) {
    const std::size_t n = std::min<std::size_t>(33, 100 - off);
    const auto batch = engine.map<std::uint64_t>(3, n, body, nullptr, off);
    stitched.insert(stitched.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(whole, stitched);
}

TEST(SweepEngine, ExternalRegistryReceivesEngineCounters) {
  obs::Registry reg;
  EngineOptions eo;
  eo.threads = 2;
  eo.seed = 7;
  eo.registry = &reg;
  SweepEngine engine(eo);
  EXPECT_EQ(&engine.metrics(), &reg);
  (void)engine.map<int>(0, 40, [](TrialContext&) { return 0; });
  EXPECT_EQ(reg.scrape().counter("exp.trials_run"), 40u);
}

TEST(SweepEngine, ProfiledMapMatchesUnprofiledResults) {
  // Installing a profiler changes attribution, never results.
  const auto body = [](TrialContext& ctx) { return ctx.rng(); };
  SweepEngine plain({.threads = 4, .seed = 0xFEED});
  obs::Profiler prof;
  EngineOptions eo;
  eo.threads = 4;
  eo.seed = 0xFEED;
  eo.profiler = &prof;
  SweepEngine profiled(eo);
  EXPECT_EQ(plain.map<std::uint64_t>(1, 200, body),
            profiled.map<std::uint64_t>(1, 200, body));
  EXPECT_FALSE(prof.report().empty());
}

TEST(SweepEngine, TrialsRunCounterAggregatesAcrossShards) {
  SweepEngine engine({.threads = 4, .seed = 1});
  (void)engine.map<int>(0, 137, [](TrialContext&) { return 0; });
  (void)engine.map<int>(1, 63, [](TrialContext&) { return 0; });
  EXPECT_EQ(engine.metrics().scrape().counter("exp.trials_run"), 200u);
}

TEST(SweepEngine, BodiesCanCountIntoShardedRegistry) {
  SweepEngine engine({.threads = 4, .seed = 1});
  auto hits = engine.metrics().counter("test.hits");
  (void)engine.map<int>(0, 256, [&](TrialContext& ctx) {
    if (ctx.trial % 2 == 0) hits.inc();
    return 0;
  });
  EXPECT_EQ(engine.metrics().scrape().counter("test.hits"), 128u);
}

TEST(SweepEngine, TimingProfilePopulated) {
  SweepEngine engine({.threads = 2, .seed = 5});
  EngineTiming timing;
  (void)engine.map<std::uint64_t>(
      0, 64,
      [](TrialContext& ctx) {
        std::uint64_t acc = 0;
        for (int i = 0; i < 1000; ++i) acc += ctx.rng();
        return acc;
      },
      &timing);
  EXPECT_GT(timing.wall_ms, 0.0);
  EXPECT_GT(timing.utilization, 0.0);
  EXPECT_LE(timing.utilization, 1.0);
  EXPECT_EQ(timing.trial_latency_us.count, 64u);
}

TEST(SweepEngine, FoldReducesInTrialOrder) {
  SweepEngine engine({.threads = 4, .seed = 9});
  const auto out = engine.map<std::uint64_t>(
      0, 50, [](TrialContext& ctx) { return ctx.trial + 1; });
  // An order-sensitive fold: hash-chaining detects any permutation.
  const auto digest =
      fold(out, std::uint64_t{0},
           [](std::uint64_t& acc, std::uint64_t r) { acc = mix64(acc ^ r); });
  std::uint64_t expected = 0;
  for (std::uint64_t t = 1; t <= 50; ++t) expected = mix64(expected ^ t);
  EXPECT_EQ(digest, expected);
}

// --- the engine under its real client: workload sweeps ---

workload::RouterFactory random_tie_break_factory() {
  return [](std::uint64_t seed) {
    std::vector<std::unique_ptr<routing::Router>> v;
    v.push_back(std::make_unique<baselines::SafetyLevelRouter>(
        baselines::SafetyLevelRouter::with_random_tie_break(seed)));
    v.push_back(std::make_unique<baselines::EcubeRouter>());
    return v;
  };
}

workload::SweepConfig small_sweep(unsigned threads) {
  workload::SweepConfig cfg;
  cfg.dimension = 6;
  cfg.fault_counts = {0, 4, 9};
  cfg.trials = 24;
  cfg.pairs = 12;
  cfg.seed = 0xC0DE;
  cfg.threads = threads;
  return cfg;
}

void expect_same_points(const std::vector<workload::SweepPoint>& a,
                        const std::vector<workload::SweepPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].per_router.size(), b[i].per_router.size());
    EXPECT_EQ(a[i].disconnected.hits(), b[i].disconnected.hits());
    for (std::size_t r = 0; r < a[i].per_router.size(); ++r) {
      EXPECT_EQ(a[i].per_router[r].first, b[i].per_router[r].first);
      const auto& ma = a[i].per_router[r].second;
      const auto& mb = b[i].per_router[r].second;
      EXPECT_EQ(ma.delivered.hits(), mb.delivered.hits());
      EXPECT_EQ(ma.optimal.hits(), mb.optimal.hits());
      EXPECT_DOUBLE_EQ(ma.traffic.mean(), mb.traffic.mean());
      EXPECT_DOUBLE_EQ(ma.overhead.mean(), mb.overhead.mean());
    }
  }
}

TEST(SweepEngine, RoutingSweepIdenticalAcrossThreadCounts) {
  // Even with TieBreak::kRandom in play, the router's generator is
  // seeded from the trial substream, so worker count cannot leak in.
  const auto serial = run_routing_sweep(small_sweep(1),
                                        random_tie_break_factory());
  const auto wide = run_routing_sweep(small_sweep(4),
                                      random_tie_break_factory());
  expect_same_points(serial, wide);
}

TEST(SweepEngine, TracedAndUntracedSweepsIdenticalUnderRandomTieBreak) {
  // Observability must be free: attaching a sink perturbs no RNG draw,
  // even on the random-tie-break path where any stray draw would cascade
  // into different routes.
  const auto untraced = run_routing_sweep(small_sweep(2),
                                          random_tie_break_factory());
  obs::RingBufferSink ring;
  auto cfg = small_sweep(2);
  cfg.trace = &ring;
  const auto traced = run_routing_sweep(cfg, random_tie_break_factory());
  expect_same_points(untraced, traced);
  EXPECT_EQ(ring.total_seen(), cfg.fault_counts.size());
}

}  // namespace
}  // namespace slcube::exp
