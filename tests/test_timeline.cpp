// obs::write_chrome_trace — the Chrome-trace / Perfetto exporter. The
// tests run the real pipeline end to end: TraceEvents are serialized by
// write_json (the JSONL dialect bench_service --jsonl writes), parsed
// back with parse_jsonl_line, and rendered; assertions then check both
// the TimelineStats accounting and the Trace Event Format shape that
// chrome://tracing actually requires (ph/pid/tid/ts/dur, "s":"t"
// instants, metadata rows).
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/jsonl.hpp"
#include "obs/trace.hpp"

namespace slcube::obs {
namespace {

std::vector<ParsedEvent> parse_events(const std::vector<TraceEvent>& events) {
  std::vector<ParsedEvent> out;
  for (const TraceEvent& ev : events) {
    std::ostringstream line;
    write_json(line, ev);
    const auto parsed = parse_jsonl_line(line.str());
    EXPECT_TRUE(parsed.has_value()) << line.str();
    if (parsed.has_value()) out.push_back(*parsed);
  }
  return out;
}

EpochPublishEvent epoch(std::uint64_t number, std::uint64_t parent,
                        const char* cause, std::uint64_t churn,
                        std::uint64_t ts) {
  EpochPublishEvent ev;
  ev.epoch = number;
  ev.parent = parent;
  ev.cause = cause;
  ev.churn = churn;
  ev.ts = ts;
  return ev;
}

RouteSummaryEvent route(std::uint64_t id, std::uint64_t decision,
                        std::uint64_t ground, bool promoted,
                        const char* reason) {
  RouteSummaryEvent ev;
  ev.route_id = id;
  ev.decision_epoch = decision;
  ev.ground_epoch = ground;
  ev.status = "delivered-optimal";
  ev.hops = 3;
  ev.promoted = promoted;
  ev.reason = reason;
  return ev;
}

std::vector<TraceEvent> sample_stream() {
  std::vector<TraceEvent> events;
  events.push_back(epoch(0, 0, "init", 0, 0));
  events.push_back(epoch(1, 0, "node-fail", 1, 10));
  events.push_back(epoch(2, 1, "batch", 3, 40));
  events.push_back(route(12, 1, 1, true, "head"));
  events.push_back(route(25, 1, 2, true, "stale"));
  events.push_back(route(30, 2, 2, false, "none"));
  events.push_back(HopEvent{});  // no timeline shape: counted as skipped
  return events;
}

TEST(Timeline, RendersAllThreeTracksAndCountsThem) {
  std::ostringstream os;
  const TimelineStats stats =
      write_chrome_trace(os, parse_events(sample_stream()));
  EXPECT_EQ(stats.epoch_slices, 3u);
  EXPECT_EQ(stats.churn_instants, 2u);  // init carries no churn
  EXPECT_EQ(stats.route_slices, 2u);
  EXPECT_EQ(stats.breadcrumb_instants, 1u);
  EXPECT_EQ(stats.events_skipped, 1u);

  const std::string json = os.str();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Metadata rows: process name + one thread_name per track.
  EXPECT_NE(json.find("\"slcube serving\""), std::string::npos);
  EXPECT_NE(json.find("\"epochs\""), std::string::npos);
  EXPECT_NE(json.find("\"routes (promoted)\""), std::string::npos);
  EXPECT_NE(json.find("\"routes (breadcrumb)\""), std::string::npos);
  // Promoted routes are duration slices; breadcrumbs thread-scoped ticks.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"route 12 (delivered-optimal)\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"churn: node-fail\""), std::string::npos);
  // Route 25 decided on epoch 1, whose lineage names the churn cause.
  EXPECT_NE(json.find("\"decision_churn\":\"node-fail\""), std::string::npos);
  // Stale flag is computed from the epoch pair, not trusted from input.
  EXPECT_NE(json.find("\"stale\":1"), std::string::npos);
  // The object closes properly (parseable by the UIs).
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
}

TEST(Timeline, EpochSliceSpansToItsSuccessor) {
  std::ostringstream os;
  (void)write_chrome_trace(os, parse_events(sample_stream()));
  const std::string json = os.str();
  // epoch 0 activates at 0 and epoch 1 at 10: dur = 10.
  EXPECT_NE(json.find("\"name\":\"epoch 0\",\"ts\":0,\"dur\":10"),
            std::string::npos);
  // epoch 1 spans to epoch 2's activation: 40 - 10 = 30.
  EXPECT_NE(json.find("\"name\":\"epoch 1\",\"ts\":10,\"dur\":30"),
            std::string::npos);
}

TEST(Timeline, BreadcrumbTrackCanBeDisabled) {
  std::ostringstream os;
  TimelineOptions options;
  options.include_breadcrumbs = false;
  const TimelineStats stats =
      write_chrome_trace(os, parse_events(sample_stream()), options);
  EXPECT_EQ(stats.route_slices, 2u);
  EXPECT_EQ(stats.breadcrumb_instants, 0u);
  const std::string json = os.str();
  EXPECT_EQ(json.find("\"routes (breadcrumb)\""), std::string::npos);
  EXPECT_EQ(json.find("route 30"), std::string::npos);
}

TEST(Timeline, CustomProcessNameIsEscapedIntoMetadata) {
  std::ostringstream os;
  TimelineOptions options;
  options.process_name = "bench \"sample\" run";
  (void)write_chrome_trace(os, parse_events(sample_stream()), options);
  EXPECT_NE(os.str().find("\"bench \\\"sample\\\" run\""), std::string::npos);
}

TEST(Timeline, EmptyInputStillEmitsAValidSkeleton) {
  std::ostringstream os;
  const TimelineStats stats = write_chrome_trace(os, {});
  EXPECT_EQ(stats.epoch_slices, 0u);
  EXPECT_EQ(stats.route_slices, 0u);
  EXPECT_EQ(stats.breadcrumb_instants, 0u);
  EXPECT_EQ(stats.events_skipped, 0u);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
}

}  // namespace
}  // namespace slcube::obs
