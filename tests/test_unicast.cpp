// The Section 3 unicast algorithm: the paper's two Fig. 1 walk-throughs
// and three Fig. 3 cases, Theorem 3's guarantees under randomized fault
// sweeps, the fewer-than-n-faults never-fails guarantee (Property 2),
// and the tie-break ablation.
#include "core/unicast.hpp"

#include <gtest/gtest.h>

#include "analysis/bfs.hpp"
#include "analysis/path.hpp"
#include "common/format.hpp"
#include "core/global_status.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"
#include "topology/topology_view.hpp"

namespace slcube::core {
namespace {

analysis::Path bits_path(std::initializer_list<const char*> hops) {
  analysis::Path p;
  for (const char* h : hops) p.push_back(from_bits(h));
  return p;
}

class Fig1Unicast : public ::testing::Test {
 protected:
  Fig1Unicast()
      : sc_(fault::scenario::fig1()),
        levels_(compute_safety_levels(sc_.cube, sc_.faults)) {}
  fault::scenario::CubeScenario sc_;
  SafetyLevels levels_;
};

TEST_F(Fig1Unicast, WalkThroughOne) {
  // s1 = 1110, d1 = 0001: C1 holds (S = 4 = H); the paper's route is
  // 1110 -> 1111 -> 1101 -> 0101 -> 0001 (its final "node 1100" is the
  // documented typo for 0001).
  const auto r = route_unicast(sc_.cube, sc_.faults, levels_,
                               from_bits("1110"), from_bits("0001"));
  EXPECT_EQ(r.status, RouteStatus::kDeliveredOptimal);
  EXPECT_TRUE(r.decision.c1);
  EXPECT_EQ(r.decision.hamming, 4u);
  EXPECT_EQ(r.path, bits_path({"1110", "1111", "1101", "0101", "0001"}));
}

TEST_F(Fig1Unicast, WalkThroughTwo) {
  // s2 = 0001, d2 = 1100: S(source) = 1 < H = 3, but preferred neighbors
  // 0000 and 0101 have level 2 = H - 1, so C2 gives an optimal route; the
  // paper picks 0000 and shows 0001 -> 0000 -> 1000 -> 1100.
  const auto r = route_unicast(sc_.cube, sc_.faults, levels_,
                               from_bits("0001"), from_bits("1100"));
  EXPECT_EQ(r.status, RouteStatus::kDeliveredOptimal);
  EXPECT_FALSE(r.decision.c1);
  EXPECT_TRUE(r.decision.c2);
  EXPECT_EQ(r.path, bits_path({"0001", "0000", "1000", "1100"}));
}

TEST_F(Fig1Unicast, SafeSourceAlwaysOptimal) {
  // "if the source node is safe ... optimality is automatically
  // guaranteed for any unicasting."
  for (NodeId s = 0; s < 16; ++s) {
    if (!levels_.is_safe(s)) continue;
    for (NodeId d = 0; d < 16; ++d) {
      if (d == s || sc_.faults.is_faulty(d)) continue;
      const auto r = route_unicast(sc_.cube, sc_.faults, levels_, s, d);
      EXPECT_EQ(r.status, RouteStatus::kDeliveredOptimal)
          << to_bits(s, 4) << " -> " << to_bits(d, 4);
      EXPECT_EQ(r.hops(), sc_.cube.distance(s, d));
    }
  }
}

class Fig3Unicast : public ::testing::Test {
 protected:
  Fig3Unicast()
      : sc_(fault::scenario::fig3()),
        levels_(compute_safety_levels(sc_.cube, sc_.faults)) {}
  fault::scenario::CubeScenario sc_;
  SafetyLevels levels_;
};

TEST_F(Fig3Unicast, OptimalInsideBigComponent) {
  // s1 = 0101, d1 = 0000: H = 2 = S(source), C1 optimal.
  const auto r = route_unicast(sc_.cube, sc_.faults, levels_,
                               from_bits("0101"), from_bits("0000"));
  EXPECT_EQ(r.status, RouteStatus::kDeliveredOptimal);
  EXPECT_TRUE(r.decision.c1);
  EXPECT_EQ(r.hops(), 2u);
}

TEST_F(Fig3Unicast, OptimalViaC2) {
  // s2 = 0111, d2 = 1011: S(source) = 1 < H = 2, but preferred neighbor
  // 0011 has level 2 >= H - 1.
  const auto r = route_unicast(sc_.cube, sc_.faults, levels_,
                               from_bits("0111"), from_bits("1011"));
  EXPECT_EQ(r.status, RouteStatus::kDeliveredOptimal);
  EXPECT_FALSE(r.decision.c1);
  EXPECT_TRUE(r.decision.c2);
  EXPECT_EQ(r.path, bits_path({"0111", "0011", "1011"}));
}

TEST_F(Fig3Unicast, RefusedAcrossThePartition) {
  // 0111 -> 1110: C1 (1 < 2), C2 (preferred 0110, 1111 faulty) and C3
  // (spares 0101, 0011 at level 2 < 3) all fail -> abort AT THE SOURCE.
  const auto r = route_unicast(sc_.cube, sc_.faults, levels_,
                               from_bits("0111"), from_bits("1110"));
  EXPECT_EQ(r.status, RouteStatus::kSourceRefused);
  EXPECT_FALSE(r.decision.c1);
  EXPECT_FALSE(r.decision.c2);
  EXPECT_FALSE(r.decision.c3);
  EXPECT_EQ(r.path.size(), 1u);  // nothing was sent
}

TEST_F(Fig3Unicast, IsolatedSourceAlwaysRefused) {
  // "any unicasting initiated at node 1110 will fail" — and the source
  // detects it.
  for (NodeId d = 0; d < 16; ++d) {
    if (d == from_bits("1110") || sc_.faults.is_faulty(d)) continue;
    const auto r = route_unicast(sc_.cube, sc_.faults, levels_,
                                 from_bits("1110"), d);
    EXPECT_EQ(r.status, RouteStatus::kSourceRefused) << to_bits(d, 4);
  }
}

TEST_F(Fig3Unicast, UnreachableAlwaysRefusedReachableOftenDelivered) {
  // The guaranteed direction (Theorem 2 makes C1/C2/C3 sufficient for
  // reachability): every cross-partition pair is refused AT THE SOURCE.
  // The converse does not hold — refusals are conservative: a reachable
  // destination may be refused when no optimal/H+2 guarantee exists
  // (e.g. 1000 -> 0111 here: H = 4 but S(1000) = 1 and no neighbor
  // qualifies). Exhaustive all-pairs check of both facts.
  const topo::HypercubeView view(sc_.cube);
  unsigned conservative_refusals = 0;
  for (NodeId s = 0; s < 16; ++s) {
    if (sc_.faults.is_faulty(s)) continue;
    const auto dist = analysis::bfs_distances(view, sc_.faults, s);
    for (NodeId d = 0; d < 16; ++d) {
      if (d == s || sc_.faults.is_faulty(d)) continue;
      const auto r = route_unicast(sc_.cube, sc_.faults, levels_, s, d);
      if (dist[d] == analysis::kUnreachable) {
        EXPECT_EQ(r.status, RouteStatus::kSourceRefused)
            << to_bits(s, 4) << " -> " << to_bits(d, 4)
            << " unreachable but not refused";
      } else if (r.status == RouteStatus::kSourceRefused) {
        ++conservative_refusals;
      } else {
        EXPECT_TRUE(r.delivered());
      }
    }
  }
  // The conservative case genuinely occurs in this scenario.
  EXPECT_GT(conservative_refusals, 0u);
}

TEST(Unicast, SourceEqualsDestination) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  const auto lv = compute_safety_levels(q, none);
  const auto r = route_unicast(q, none, lv, 5, 5);
  EXPECT_EQ(r.status, RouteStatus::kDeliveredOptimal);
  EXPECT_EQ(r.hops(), 0u);
}

TEST(Unicast, FaultFreeAlwaysOptimalEveryPair) {
  const topo::Hypercube q(5);
  const fault::FaultSet none(q.num_nodes());
  const auto lv = compute_safety_levels(q, none);
  for (NodeId s = 0; s < q.num_nodes(); ++s) {
    for (NodeId d = 0; d < q.num_nodes(); ++d) {
      const auto r = route_unicast(q, none, lv, s, d);
      ASSERT_EQ(r.status, RouteStatus::kDeliveredOptimal);
      ASSERT_EQ(r.hops(), q.distance(s, d));
    }
  }
}

TEST(Unicast, SuboptimalPathTakesSpareDetour) {
  // Build a case where C1/C2 fail but C3 holds: the Fig. 4 node-fault
  // pattern without the link fault. Source 1101 has faulty preferred
  // neighbors toward 1000's neighbor... use scenario fig4's node faults,
  // s = 1101, d = 1001: preferred dims {2} (H=1)? Use a crafted case:
  // faults {0100, 0111}: source 0101 (level 1), dest 0110 (H = 2).
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0100, 0b0111});
  const auto lv = compute_safety_levels(q, f);
  const NodeId s = 0b0101, d = 0b0110;
  ASSERT_EQ(q.distance(s, d), 2u);
  const auto dec = decide_at_source(q, lv, s, d);
  if (!dec.c1 && !dec.c2 && dec.c3) {
    const auto r = route_unicast(q, f, lv, s, d);
    EXPECT_EQ(r.status, RouteStatus::kDeliveredSuboptimal);
    EXPECT_EQ(r.hops(), 4u);
  } else {
    // If the level pattern routes optimally, that is fine too — but it
    // must deliver.
    EXPECT_TRUE(route_unicast(q, f, lv, s, d).delivered());
  }
}

/// Theorem 3 sweep: whenever the algorithm delivers, path length honors
/// the promised class; whenever C1/C2 hold at the source the path is
/// exactly H; whenever only C3 holds it is exactly H + 2 — verified with
/// full path validity against the real fault set.
class Theorem3Sweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(Theorem3Sweep, GuaranteesHold) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  const topo::HypercubeView view(q);
  Xoshiro256ss rng(n * 12345);
  for (int t = 0; t < 20; ++t) {
    const auto f = fault::inject_uniform(q, rng.below(q.num_nodes() / 2),
                                         rng);
    const auto lv = compute_safety_levels(q, f);
    for (int p = 0; p < 60; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto r = route_unicast(q, f, lv, s, d);
      const unsigned h = q.distance(s, d);
      switch (r.status) {
        case RouteStatus::kDeliveredOptimal: {
          ASSERT_EQ(r.hops(), h);
          const auto chk = analysis::check_path(view, f, r.path);
          ASSERT_EQ(chk.cls, analysis::PathClass::kOptimal) << chk.error;
          break;
        }
        case RouteStatus::kDeliveredSuboptimal: {
          ASSERT_EQ(r.hops(), h + 2);
          ASSERT_FALSE(r.decision.c1 || r.decision.c2);
          ASSERT_TRUE(r.decision.c3);
          const auto chk = analysis::check_path(view, f, r.path);
          ASSERT_EQ(chk.cls, analysis::PathClass::kSuboptimal) << chk.error;
          break;
        }
        case RouteStatus::kSourceRefused:
          ASSERT_FALSE(r.decision.feasible());
          break;
        case RouteStatus::kStuck:
          FAIL() << "stuck with consistent levels: "
                 << analysis::format_path(r.path, n);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims3To9, Theorem3Sweep,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u, 9u));

/// Property 2 corollary: with fewer than n faults the algorithm NEVER
/// refuses — every unicast is optimal or suboptimal.
class NeverFailsSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(NeverFailsSweep, FewerThanNFaultsAlwaysDelivers) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 999);
  for (int t = 0; t < 15; ++t) {
    const auto f = fault::inject_uniform(q, n - 1, rng);
    const auto lv = compute_safety_levels(q, f);
    for (int p = 0; p < 60; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto r = route_unicast(q, f, lv, s, d);
      ASSERT_TRUE(r.delivered())
          << n << "-cube with " << n - 1 << " faults refused "
          << to_bits(s, n) << " -> " << to_bits(d, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims3To9, NeverFailsSweep,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u, 9u));

TEST(Unicast, RandomTieBreakStillMeetsGuarantees) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(4242);
  Xoshiro256ss tie_rng(777);
  UnicastOptions opts;
  opts.tie_break = TieBreak::kRandom;
  opts.rng = &tie_rng;
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, 5, rng);
    const auto lv = compute_safety_levels(q, f);
    for (int p = 0; p < 40; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto r = route_unicast(q, f, lv, s, d, opts);
      ASSERT_TRUE(r.delivered());
      ASSERT_LE(r.hops(), q.distance(s, d) + 2);
    }
  }
}

TEST(Unicast, StaleLevelsCanGetStuckButNeverLoop) {
  // Feed deliberately unstabilized levels (GS capped at one round): the
  // route may get stuck, but the navigation-vector discipline still
  // bounds the walk by H + 2 hops.
  const topo::Hypercube q(6);
  Xoshiro256ss rng(31337);
  for (int t = 0; t < 20; ++t) {
    const auto f = fault::inject_uniform(q, 20, rng);
    GsOptions capped;
    capped.max_rounds = 1;
    const auto stale = run_gs(q, f, capped);
    for (int p = 0; p < 30; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto r = route_unicast(q, f, stale.levels, s, d);
      ASSERT_LE(r.hops(), q.distance(s, d) + 2);
    }
  }
}

TEST(SourceDecision, ConditionsMatchDefinition) {
  const auto sc = fault::scenario::fig1();
  const auto lv = compute_safety_levels(sc.cube, sc.faults);
  // 1110 -> 0001: C1 (4 >= 4).
  auto dec = decide_at_source(sc.cube, lv, from_bits("1110"),
                              from_bits("0001"));
  EXPECT_TRUE(dec.c1);
  EXPECT_TRUE(dec.optimal_feasible());
  // 0001 -> 1100: C2 only.
  dec = decide_at_source(sc.cube, lv, from_bits("0001"), from_bits("1100"));
  EXPECT_FALSE(dec.c1);
  EXPECT_TRUE(dec.c2);
}

TEST(GreedyAblation, FaultFreeMatchesChecked) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  const auto lv = compute_safety_levels(q, none);
  for (NodeId s = 0; s < 16; ++s) {
    for (NodeId d = 0; d < 16; ++d) {
      if (s == d) continue;
      const auto checked = route_unicast(q, none, lv, s, d);
      const auto greedy = route_unicast_greedy(q, none, lv, s, d);
      ASSERT_EQ(greedy.path, checked.path);
    }
  }
}

TEST(GreedyAblation, DeliveriesAreAlwaysOptimal) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(616);
  for (int t = 0; t < 15; ++t) {
    const auto f = fault::inject_uniform(q, 16, rng);
    const auto lv = compute_safety_levels(q, f);
    for (int p = 0; p < 40; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto r = route_unicast_greedy(q, f, lv, s, d);
      if (r.status == RouteStatus::kDeliveredOptimal) {
        ASSERT_EQ(r.hops(), q.distance(s, d));
      } else {
        ASSERT_EQ(r.status, RouteStatus::kStuck);
      }
    }
  }
}

TEST(GreedyAblation, NeverStuckWhenCheckedSaysOptimalFeasible) {
  // When C1 or C2 holds, the greedy walk IS the checked optimal walk:
  // same selections, same delivery.
  const topo::Hypercube q(6);
  Xoshiro256ss rng(617);
  for (int t = 0; t < 15; ++t) {
    const auto f = fault::inject_uniform(q, 10, rng);
    const auto lv = compute_safety_levels(q, f);
    for (int p = 0; p < 40; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      if (!decide_at_source(q, lv, s, d).optimal_feasible()) continue;
      const auto r = route_unicast_greedy(q, f, lv, s, d);
      ASSERT_EQ(r.status, RouteStatus::kDeliveredOptimal);
    }
  }
}

TEST(GreedyAblation, CanSalvageSomeRefusedPairs) {
  // The point of the ablation: some refused pairs ARE optimally
  // reachable, and the greedy walk finds a fraction of them — at the
  // cost of mid-route death on others (traffic the checked scheme never
  // wastes).
  const topo::Hypercube q(6);
  Xoshiro256ss rng(618);
  unsigned salvaged = 0, died = 0;
  for (int t = 0; t < 60; ++t) {
    const auto f = fault::inject_uniform(q, 20, rng);
    const auto lv = compute_safety_levels(q, f);
    for (int p = 0; p < 40; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      const auto checked = route_unicast(q, f, lv, s, d);
      if (checked.status != RouteStatus::kSourceRefused) continue;
      const auto greedy = route_unicast_greedy(q, f, lv, s, d);
      if (greedy.delivered()) {
        ++salvaged;
      } else {
        ++died;
      }
    }
  }
  EXPECT_GT(salvaged, 0u);
  EXPECT_GT(died, 0u);
}

TEST(RouteStatusNames, ToString) {
  EXPECT_STREQ(to_string(RouteStatus::kDeliveredOptimal),
               "delivered-optimal");
  EXPECT_STREQ(to_string(RouteStatus::kDeliveredSuboptimal),
               "delivered-suboptimal");
  EXPECT_STREQ(to_string(RouteStatus::kSourceRefused), "source-refused");
  EXPECT_STREQ(to_string(RouteStatus::kStuck), "stuck");
}

}  // namespace
}  // namespace slcube::core
