#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

namespace slcube {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, SizeRespectsRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_chunks(pool, hits.size(),
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) {
                          hits[i].fetch_add(1);
                        }
                      });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeNoCalls) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for_chunks(pool, 0, [&](std::size_t, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, ChunksAreContiguousAndOrdered) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  parallel_for_chunks(pool, 103,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        std::lock_guard lock(m);
                        ranges.emplace_back(begin, end);
                      });
  std::sort(ranges.begin(), ranges.end());
  std::size_t expect_begin = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, expect_begin);
    EXPECT_GT(e, b);
    expect_begin = e;
  }
  EXPECT_EQ(expect_begin, 103u);
}

TEST(ParallelFor, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  int sum = 0;  // no atomics needed: single chunk runs on caller thread
  parallel_for_chunks(pool, 10,
                      [&](std::size_t chunk, std::size_t b, std::size_t e) {
                        EXPECT_EQ(chunk, 0u);
                        for (std::size_t i = b; i < e; ++i) {
                          sum += static_cast<int>(i);
                        }
                      });
  EXPECT_EQ(sum, 45);
}

TEST(DefaultPool, IsSingleton) {
  EXPECT_EQ(&default_pool(), &default_pool());
  EXPECT_GE(default_pool().size(), 1u);
}

}  // namespace
}  // namespace slcube
