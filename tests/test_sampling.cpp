// obs::SamplingSink + obs::TraceBudget — the tail-sampling layer's
// load-bearing guarantees:
//
//  1. Promotion is a pure function of the route summary (ticks mode):
//     the promoted set — and therefore the order-independent digest —
//     is bit-identical across thread counts and across the two
//     integration modes (buffered begin/end vs offer/replay).
//  2. Anomalous routes (drop / detour / stale / misroute) are always
//     retained as full chains while the budget admits; an exhausted
//     budget sheds to breadcrumbs-only and counts exactly what it shed.
//  3. The breadcrumb ring is a bounded flight recorder: eviction keeps
//     the newest crumbs and counts the loss.
#include "obs/sampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <variant>
#include <vector>

#include "obs/trace.hpp"
#include "workload/service_script.hpp"

namespace slcube::obs {
namespace {

/// Collects everything forwarded downstream, in arrival order.
class CollectSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& ev) override { events.push_back(ev); }
  std::vector<TraceEvent> events;
};

RouteSummary make_summary(std::uint64_t route_id, bool dropped = false,
                          bool detour = false, std::uint64_t lag = 0,
                          bool misroute = false) {
  RouteSummary s;
  s.route_id = route_id;
  s.decision_epoch = 10;
  s.ground_epoch = 10 + lag;
  s.status = dropped ? "dropped-stale" : "delivered-optimal";
  s.status_code = dropped ? 3 : 0;
  s.hops = 4;
  s.dropped = dropped;
  s.detour = detour;
  s.misroute = misroute;
  return s;
}

TraceEvent filler_hop(std::uint64_t i) {
  HopEvent hop;
  hop.from = static_cast<NodeId>(i);
  hop.to = static_cast<NodeId>(i + 1);
  return hop;
}

// --- classification --------------------------------------------------------

TEST(Sampling, ClassifyMostSpecificAnomalyWins) {
  const SamplingConfig cfg;
  EXPECT_EQ(SamplingSink::classify(make_summary(1, true, true, 2, true), cfg),
            PromoteReason::kMisroute);
  EXPECT_EQ(SamplingSink::classify(make_summary(1, true, true, 2), cfg),
            PromoteReason::kDrop);
  EXPECT_EQ(SamplingSink::classify(make_summary(1, false, true, 2), cfg),
            PromoteReason::kDetour);
  EXPECT_EQ(SamplingSink::classify(make_summary(1, false, false, 2), cfg),
            PromoteReason::kStale);
  EXPECT_EQ(SamplingSink::classify(make_summary(1), cfg),
            PromoteReason::kNone);
}

TEST(Sampling, ClassifyHeadSampleIsDeterministicModulo) {
  SamplingConfig cfg;
  cfg.head_every = 4;
  for (std::uint64_t id = 0; id < 12; ++id) {
    const PromoteReason want =
        id % 4 == 0 ? PromoteReason::kHead : PromoteReason::kNone;
    EXPECT_EQ(SamplingSink::classify(make_summary(id), cfg), want) << id;
  }
}

TEST(Sampling, ClassifyRespectsDisabledReasons) {
  SamplingConfig cfg;
  cfg.promote_drops = false;
  cfg.promote_detours = false;
  cfg.promote_stale = false;
  cfg.promote_misroutes = false;
  cfg.head_every = 0;
  EXPECT_EQ(SamplingSink::classify(make_summary(0, true, true, 3, true), cfg),
            PromoteReason::kNone);
}

// --- buffered mode ---------------------------------------------------------

TEST(Sampling, PromotedRouteForwardsChainThenSummary) {
  CollectSink sink;
  SamplingConfig cfg;
  cfg.head_every = 0;
  SamplingSink sampler(&sink, cfg);

  sampler.begin_route(7);
  sampler.on_event(filler_hop(0));
  sampler.on_event(filler_hop(1));
  const PromoteReason reason = sampler.end_route(make_summary(7, true));
  EXPECT_EQ(reason, PromoteReason::kDrop);

  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<HopEvent>(sink.events[0]));
  EXPECT_TRUE(std::holds_alternative<HopEvent>(sink.events[1]));
  const auto* summary = std::get_if<RouteSummaryEvent>(&sink.events[2]);
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->route_id, 7u);
  EXPECT_TRUE(summary->promoted);
  EXPECT_STREQ(summary->reason, "drop");

  const SamplingSink::Stats stats = sampler.stats();
  EXPECT_EQ(stats.routes, 1u);
  EXPECT_EQ(stats.promoted, 1u);
  EXPECT_EQ(stats.breadcrumb_only, 0u);
  EXPECT_EQ(stats.buffered_events, 2u);
  EXPECT_EQ(
      stats.promoted_by_reason[static_cast<std::size_t>(PromoteReason::kDrop)],
      1u);

  const std::vector<Breadcrumb> crumbs = sampler.breadcrumbs();
  ASSERT_EQ(crumbs.size(), 1u);
  EXPECT_EQ(crumbs[0].route_id_lo, 7u);
  EXPECT_NE(crumbs[0].flags & Breadcrumb::kFlagPromoted, 0);
  EXPECT_EQ(crumbs[0].chain_events, 2u);
}

TEST(Sampling, UnpromotedRouteLeavesOnlyABreadcrumb) {
  CollectSink sink;
  SamplingConfig cfg;
  cfg.head_every = 0;
  SamplingSink sampler(&sink, cfg);

  sampler.begin_route(3);
  sampler.on_event(filler_hop(0));
  EXPECT_EQ(sampler.end_route(make_summary(3)), PromoteReason::kNone);

  EXPECT_TRUE(sink.events.empty());
  const SamplingSink::Stats stats = sampler.stats();
  EXPECT_EQ(stats.routes, 1u);
  EXPECT_EQ(stats.promoted, 0u);
  EXPECT_EQ(stats.breadcrumb_only, 1u);
  const std::vector<Breadcrumb> crumbs = sampler.breadcrumbs();
  ASSERT_EQ(crumbs.size(), 1u);
  EXPECT_EQ(crumbs[0].flags & Breadcrumb::kFlagPromoted, 0);
  EXPECT_EQ(sampler.promoted_digest(), 0u);
}

TEST(Sampling, ChainOverflowDemotesToBreadcrumbAndCounts) {
  CollectSink sink;
  SamplingConfig cfg;
  cfg.head_every = 0;
  cfg.max_chain_events = 2;
  SamplingSink sampler(&sink, cfg);

  sampler.begin_route(1);
  for (std::uint64_t i = 0; i < 5; ++i) sampler.on_event(filler_hop(i));
  EXPECT_EQ(sampler.end_route(make_summary(1, true)), PromoteReason::kDrop);

  // A truncated chain must not be forwarded (it would audit as broken).
  EXPECT_TRUE(sink.events.empty());
  const SamplingSink::Stats stats = sampler.stats();
  EXPECT_EQ(stats.overflow_routes, 1u);
  EXPECT_EQ(stats.promoted, 0u);
  EXPECT_EQ(stats.breadcrumb_only, 1u);
  const std::vector<Breadcrumb> crumbs = sampler.breadcrumbs();
  ASSERT_EQ(crumbs.size(), 1u);
  EXPECT_NE(crumbs[0].flags & Breadcrumb::kFlagShed, 0);
  EXPECT_EQ(crumbs[0].chain_events, 5u);
}

TEST(Sampling, PassthroughOutsideRoutesForwardsDirectly) {
  CollectSink sink;
  SamplingSink sampler(&sink, SamplingConfig{});
  EpochPublishEvent epoch;
  epoch.epoch = 42;
  sampler.on_event(epoch);
  ASSERT_EQ(sink.events.size(), 1u);
  EXPECT_EQ(sampler.stats().passthrough_events, 1u);
}

// --- replay mode -----------------------------------------------------------

TEST(Sampling, ReplayModeMatchesBufferedModeExactly) {
  // The same 64-route synthetic workload through both integration
  // modes: digest, promoted set, and counters must agree; replay-mode
  // crumbs record chain_events = 0 (nothing was buffered).
  const auto route = [](std::uint64_t id) {
    const bool dropped = id % 16 == 5;
    const bool detour = id % 16 == 9;
    const std::uint64_t lag = id % 16 == 13 ? 2 : 0;
    return make_summary(id, dropped, detour, lag);
  };
  SamplingConfig cfg;
  cfg.head_every = 32;

  CollectSink buffered_sink;
  SamplingSink buffered(&buffered_sink, cfg);
  for (std::uint64_t id = 0; id < 64; ++id) {
    buffered.begin_route(id);
    buffered.on_event(filler_hop(id));
    buffered.end_route(route(id));
  }

  CollectSink replay_sink;
  SamplingSink replayed(&replay_sink, cfg);
  for (std::uint64_t id = 0; id < 64; ++id) {
    const RouteSummary summary = route(id);
    const SamplingSink::Offer offer = replayed.offer(summary);
    EXPECT_EQ(offer.reason, SamplingSink::classify(summary, cfg));
    if (offer.promoted) {
      const std::vector<TraceEvent> chain{filler_hop(id)};
      replayed.replay_chain(summary, offer.reason, chain);
    }
  }

  EXPECT_EQ(buffered.promoted_digest(), replayed.promoted_digest());
  EXPECT_NE(buffered.promoted_digest(), 0u);
  const SamplingSink::Stats b = buffered.stats();
  const SamplingSink::Stats r = replayed.stats();
  EXPECT_EQ(b.routes, r.routes);
  EXPECT_EQ(b.promoted, r.promoted);
  EXPECT_EQ(b.breadcrumb_only, r.breadcrumb_only);
  // Buffered mode pays event buffering for every route; replay mode only
  // for the chains it actually regenerated — the point of the mode.
  EXPECT_EQ(b.buffered_events, 64u);
  EXPECT_EQ(r.buffered_events, r.promoted);
  for (std::size_t i = 0; i < kNumPromoteReasons; ++i) {
    EXPECT_EQ(b.promoted_by_reason[i], r.promoted_by_reason[i]) << i;
  }
  EXPECT_EQ(buffered_sink.events.size(), replay_sink.events.size());

  const std::vector<Breadcrumb> crumbs = replayed.breadcrumbs();
  ASSERT_EQ(crumbs.size(), 64u);
  for (const Breadcrumb& crumb : crumbs) {
    EXPECT_EQ(crumb.chain_events, 0u);
  }
}

// --- thread-count invariance (the gated digest property) -------------------

std::uint64_t scripted_digest(const workload::ServiceScript& script,
                              std::uint64_t requests, unsigned nthreads,
                              SamplingSink::Stats* stats_out = nullptr) {
  NullSink null;
  SamplingConfig cfg;
  cfg.head_every = 64;
  SamplingSink sampler(&null, cfg);
  std::vector<std::thread> pool;
  std::uint64_t start = 0;
  for (unsigned t = 0; t < nthreads; ++t) {
    const std::uint64_t share =
        requests / nthreads + (t < requests % nthreads ? 1 : 0);
    pool.emplace_back([&, start, share] {
      std::vector<TraceEvent> chain;
      for (std::uint64_t i = start; i < start + share; ++i) {
        const auto req = script.request(i, requests);
        if (!req.has_pair) continue;
        const svc::ServeResult res = script.serve(req);
        const RouteSummary summary =
            workload::ServiceScript::summarize(req, res);
        const SamplingSink::Offer offer = sampler.offer(summary);
        if (offer.promoted) {
          chain.clear();
          class ChainSink final : public TraceSink {
           public:
            explicit ChainSink(std::vector<TraceEvent>& out) : out_(out) {}
            void on_event(const TraceEvent& ev) override {
              out_.push_back(ev);
            }

           private:
            std::vector<TraceEvent>& out_;
          } collector(chain);
          svc::ServeOptions opts;
          opts.trace = &collector;
          (void)script.serve(req, opts);
          sampler.replay_chain(summary, offer.reason, chain);
        }
      }
    });
    start += share;
  }
  for (auto& t : pool) t.join();
  if (stats_out != nullptr) *stats_out = sampler.stats();
  return sampler.promoted_digest();
}

TEST(Sampling, PromotedDigestIsThreadCountInvariant) {
  workload::ServiceScriptConfig cfg;
  cfg.dim = 7;
  cfg.epochs = 16;
  cfg.stale_chance = 0.05;
  const workload::ServiceScript script(cfg);
  const std::uint64_t requests = 4000;

  SamplingSink::Stats stats1;
  const std::uint64_t digest1 = scripted_digest(script, requests, 1, &stats1);
  ASSERT_NE(digest1, 0u);
  ASSERT_GT(stats1.promoted, 0u);

  for (const unsigned nthreads : {4u, 8u}) {
    SamplingSink::Stats stats;
    const std::uint64_t digest =
        scripted_digest(script, requests, nthreads, &stats);
    EXPECT_EQ(digest, digest1) << nthreads << " threads";
    EXPECT_EQ(stats.promoted, stats1.promoted) << nthreads << " threads";
    EXPECT_EQ(stats.routes, stats1.routes) << nthreads << " threads";
    EXPECT_EQ(stats.breadcrumb_only, stats1.breadcrumb_only)
        << nthreads << " threads";
  }
}

// --- budget ----------------------------------------------------------------

TEST(TraceBudget, UnlimitedAlwaysAdmits) {
  TraceBudget budget;  // default: unlimited
  EXPECT_TRUE(budget.unlimited());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(budget.try_admit());
  EXPECT_EQ(budget.stats().admitted, 100u);
  EXPECT_EQ(budget.stats().shed, 0u);
}

TEST(TraceBudget, ExhaustedBudgetSheds) {
  TraceBudget::Options opt;
  opt.unlimited = false;
  opt.overhead_fraction = 0.0;  // no refill: spend-down only
  opt.burst_ns = 10;
  TraceBudget budget(opt);
  EXPECT_TRUE(budget.try_admit());
  budget.settle(1'000'000);  // overdraw
  EXPECT_FALSE(budget.try_admit());
  EXPECT_FALSE(budget.try_admit());
  const TraceBudget::Stats stats = budget.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.shed, 2u);
  EXPECT_EQ(stats.spent_ns, 1'000'000u);
  budget.credit_ns(10'000'000);
  EXPECT_TRUE(budget.try_admit());
}

TEST(Sampling, BudgetShedsToBreadcrumbsAndCountsTheLoss) {
  CollectSink sink;
  SamplingConfig cfg;
  cfg.head_every = 0;
  cfg.budget.unlimited = false;
  cfg.budget.overhead_fraction = 0.0;
  cfg.budget.burst_ns = 1;  // one admission, then dry
  SamplingSink sampler(&sink, cfg);

  sampler.begin_route(0);
  sampler.on_event(filler_hop(0));
  EXPECT_EQ(sampler.end_route(make_summary(0, true)), PromoteReason::kDrop);
  ASSERT_EQ(sink.events.size(), 2u);  // chain + summary

  // Overdrawn now (settle charged the forward wall time plus our help).
  sampler.budget().settle(1'000'000);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    sampler.begin_route(id);
    sampler.on_event(filler_hop(id));
    sampler.on_event(filler_hop(id + 1));
    EXPECT_EQ(sampler.end_route(make_summary(id, true)), PromoteReason::kDrop);
  }
  EXPECT_EQ(sink.events.size(), 2u) << "shed routes must forward nothing";

  const SamplingSink::Stats stats = sampler.stats();
  EXPECT_EQ(stats.promoted, 1u);
  EXPECT_EQ(stats.shed_routes, 3u);
  EXPECT_EQ(stats.shed_events, 6u);  // 3 shed chains x 2 buffered events
  EXPECT_EQ(
      stats.shed_by_reason[static_cast<std::size_t>(PromoteReason::kDrop)],
      3u);
  const std::vector<Breadcrumb> crumbs = sampler.breadcrumbs();
  ASSERT_EQ(crumbs.size(), 4u);
  int shed_flags = 0;
  for (const Breadcrumb& crumb : crumbs) {
    if ((crumb.flags & Breadcrumb::kFlagShed) != 0) ++shed_flags;
  }
  EXPECT_EQ(shed_flags, 3);
}

// --- breadcrumb ring -------------------------------------------------------

TEST(Sampling, BreadcrumbRingEvictsOldestAndCountsDrops) {
  CollectSink sink;
  SamplingConfig cfg;
  cfg.head_every = 0;
  cfg.breadcrumb_capacity = 4;
  SamplingSink sampler(&sink, cfg);
  for (std::uint64_t id = 0; id < 10; ++id) {
    (void)sampler.offer(make_summary(id));
  }
  EXPECT_EQ(sampler.stats().breadcrumbs_dropped, 6u);
  const std::vector<Breadcrumb> crumbs = sampler.breadcrumbs();
  ASSERT_EQ(crumbs.size(), 4u);
  // Oldest-first snapshot of the newest four.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(crumbs[i].route_id_lo, 6u + i);
  }
}

TEST(Sampling, BreadcrumbRecordsStaleFlagAndEpoch) {
  CollectSink sink;
  SamplingConfig cfg;
  cfg.head_every = 0;
  cfg.promote_stale = false;  // keep it breadcrumb-only
  SamplingSink sampler(&sink, cfg);
  (void)sampler.offer(make_summary(9, false, false, 3));
  const std::vector<Breadcrumb> crumbs = sampler.breadcrumbs();
  ASSERT_EQ(crumbs.size(), 1u);
  EXPECT_NE(crumbs[0].flags & Breadcrumb::kFlagStale, 0);
  EXPECT_EQ(crumbs[0].decision_epoch_lo, 10u);
  EXPECT_EQ(crumbs[0].route_id_lo, 9u);
}

// --- latency outliers (live mode) ------------------------------------------

TEST(Sampling, LatencyOutlierPastQuantilePromotes) {
  CollectSink sink;
  SamplingConfig cfg;
  cfg.head_every = 0;
  cfg.latency_quantile = 0.9;
  cfg.latency_warmup = 16;
  SamplingSink sampler(&sink, cfg);

  const auto timed = [](std::uint64_t id, double latency_us) {
    RouteSummary s = make_summary(id);
    s.latency_us = latency_us;
    return s;
  };
  // Warm the histogram with uniform ~1us routes.
  for (std::uint64_t id = 0; id < 32; ++id) {
    EXPECT_EQ(sampler.offer(timed(id, 1.0)).reason, PromoteReason::kNone);
  }
  // A 4ms route is far past the p90 of that history.
  const SamplingSink::Offer offer = sampler.offer(timed(99, 4000.0));
  EXPECT_EQ(offer.reason, PromoteReason::kLatency);
  EXPECT_TRUE(offer.promoted);
}

}  // namespace
}  // namespace slcube::obs
