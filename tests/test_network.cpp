#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace slcube::sim {
namespace {

Network make_net(unsigned n, std::initializer_list<NodeId> faulty) {
  const topo::Hypercube q(n);
  return Network(q, fault::FaultSet(q.num_nodes(), faulty));
}

TEST(Network, InitialLevelsPerPaper) {
  auto net = make_net(4, {3});
  EXPECT_EQ(net.level_of(3), 0);
  EXPECT_EQ(net.level_of(0), 4);
  EXPECT_EQ(net.level_of(15), 4);
}

TEST(Network, InitialRegistersReflectLiveness) {
  auto net = make_net(3, {0b001});
  // 000 sees its dim-0 neighbor (001) as 0 and others as n.
  EXPECT_EQ(net.neighbor_register(0b000, 0), 0);
  EXPECT_EQ(net.neighbor_register(0b000, 1), 3);
  EXPECT_EQ(net.neighbor_register(0b000, 2), 3);
}

TEST(Network, SortedRegisters) {
  auto net = make_net(3, {0b001, 0b010});
  const auto sorted = net.sorted_registers(0b000);
  EXPECT_EQ(sorted, (std::vector<core::Level>{0, 0, 3}));
}

TEST(Network, SendDeliversAfterDelay) {
  auto net = make_net(3, {});
  net.send(0, 1, LevelUpdate{0, 2});
  bool got = false;
  net.run([&](const Scheduled& ev) {
    EXPECT_EQ(ev.time, 1u);  // default link delay 1
    EXPECT_EQ(ev.envelope.to, 1u);
    got = true;
    return true;
  });
  EXPECT_TRUE(got);
  EXPECT_EQ(net.now(), 1u);
  EXPECT_EQ(net.stats().level_updates_sent, 1u);
}

TEST(Network, CustomLinkDelay) {
  const topo::Hypercube q(3);
  Network net(q, fault::FaultSet(q.num_nodes()), /*link_delay=*/5);
  net.send(0, 4, LevelUpdate{0, 1});
  net.run([&](const Scheduled& ev) {
    EXPECT_EQ(ev.time, 5u);
    return true;
  });
}

TEST(Network, MessageToDeadNodeDropped) {
  auto net = make_net(3, {});
  net.send(0, 1, LevelUpdate{0, 2});
  net.fail_node(1);
  unsigned handled = 0;
  net.run([&](const Scheduled&) {
    ++handled;
    return true;
  });
  EXPECT_EQ(handled, 0u);
  EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(Network, FailNodeUpdatesNeighborView) {
  auto net = make_net(3, {});
  EXPECT_EQ(net.neighbor_register(0b000, 0), 3);
  net.fail_node(0b001);
  EXPECT_EQ(net.neighbor_register(0b000, 0), 0);  // immediate detection
  EXPECT_EQ(net.level_of(0b001), 0);
  EXPECT_TRUE(net.faults().is_faulty(0b001));
}

TEST(Network, UnicastHopsCounted) {
  auto net = make_net(3, {});
  net.send(0, 1, UnicastPacket{1, 0, 1, 0, false});
  net.run([](const Scheduled&) { return true; });
  EXPECT_EQ(net.stats().unicast_hops, 1u);
  EXPECT_EQ(net.stats().level_updates_sent, 0u);
}

TEST(Network, HandlerCanStopEarly) {
  auto net = make_net(3, {});
  net.send(0, 1, LevelUpdate{0, 1});
  net.send(0, 2, LevelUpdate{0, 1});
  unsigned handled = 0;
  net.run([&](const Scheduled&) {
    ++handled;
    return false;
  });
  EXPECT_EQ(handled, 1u);
  EXPECT_FALSE(net.idle());
}

TEST(Network, AdvanceTo) {
  auto net = make_net(2, {});
  net.advance_to(100);
  EXPECT_EQ(net.now(), 100u);
  net.send(0, 1, LevelUpdate{0, 1});
  net.run([&](const Scheduled& ev) {
    EXPECT_EQ(ev.time, 101u);
    return true;
  });
}

TEST(Network, FaultyLinkDropCounted) {
  const topo::Hypercube q(3);
  fault::LinkFaultSet links(q);
  links.mark_faulty(0, 0);  // kills the 000 <-> 001 link
  Network net(q, fault::FaultSet(q.num_nodes()), std::move(links));
  net.send(0, 1, LevelUpdate{0, 2});   // dropped at the faulty link
  net.send(0, 2, LevelUpdate{0, 2});   // healthy dim-1 link
  unsigned handled = 0;
  net.run([&](const Scheduled&) {
    ++handled;
    return true;
  });
  EXPECT_EQ(handled, 1u);
  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.dropped_faulty_link, 1u);
  EXPECT_EQ(stats.dropped_dead_node, 0u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.level_updates_sent, 2u);  // both sends counted
}

TEST(Network, FailRecoverCountsAndDeadDropBreakdown) {
  auto net = make_net(3, {});
  net.send(0, 1, LevelUpdate{0, 2});
  net.fail_node(1);
  net.run([](const Scheduled&) { return true; });
  net.recover_node(1);
  net.fail_node(2);
  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.node_failures, 2u);
  EXPECT_EQ(stats.node_recoveries, 1u);
  EXPECT_EQ(stats.dropped_dead_node, 1u);
  EXPECT_EQ(stats.dropped_faulty_link, 0u);
  EXPECT_EQ(stats.dropped, 1u);
}

TEST(Network, StatsAreAScrapeOfTheMetricsRegistry) {
  auto net = make_net(3, {});
  net.send(0, 1, LevelUpdate{0, 2});
  net.send(0, 1, UnicastPacket{1, 0, 1, 0, false});
  const auto snap = net.metrics().scrape();
  EXPECT_EQ(snap.counter("net.sent.level_update"), 1u);
  EXPECT_EQ(snap.counter("net.sent.unicast_hop"), 1u);
  EXPECT_EQ(net.stats().level_updates_sent, 1u);
  EXPECT_EQ(net.stats().unicast_hops, 1u);
}

TEST(Network, TraceSinkSeesSendsDropsFailuresAndRecoveries) {
  obs::RingBufferSink ring;
  auto net = make_net(3, {});
  net.set_trace(&ring);
  net.send(0, 1, LevelUpdate{0, 2});
  net.fail_node(1);
  net.run([](const Scheduled&) { return true; });
  net.recover_node(1);

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(obs::event_name(events[0]), "send");
  EXPECT_STREQ(obs::event_name(events[1]), "node_fail");
  EXPECT_STREQ(obs::event_name(events[2]), "drop");
  EXPECT_STREQ(obs::event_name(events[3]), "node_recover");
  const auto& drop = std::get<obs::MessageDropEvent>(events[2]);
  EXPECT_EQ(drop.to, 1u);
  EXPECT_STREQ(drop.reason, "dead-node");
  EXPECT_EQ(drop.kind, obs::MsgKind::kLevelUpdate);
}

TEST(Network, FaultyLinkDropTraceReason) {
  obs::RingBufferSink ring;
  const topo::Hypercube q(3);
  fault::LinkFaultSet links(q);
  links.mark_faulty(0, 0);
  Network net(q, fault::FaultSet(q.num_nodes()), std::move(links));
  net.set_trace(&ring);
  net.send(1, 0, UnicastPacket{1, 1, 0, 0, false});
  net.run([](const Scheduled&) { return true; });
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);  // send, then the drop at delivery time
  const auto& drop = std::get<obs::MessageDropEvent>(events[1]);
  EXPECT_STREQ(drop.reason, "faulty-link");
  EXPECT_EQ(drop.kind, obs::MsgKind::kUnicast);
  EXPECT_EQ(drop.time, 1u);  // judged when the message would arrive
}

TEST(Network, LinkFailingMidFlightDropsTheMessage) {
  // Send-time check would deliver this message: the wire is healthy when
  // the packet leaves. Delivery-time semantics lose it.
  auto net = make_net(3, {});
  net.send(0, 1, LevelUpdate{0, 2});
  net.fail_link(0, 0);  // the wire dies while the message is in flight
  unsigned handled = 0;
  net.run([&](const Scheduled&) {
    ++handled;
    return true;
  });
  EXPECT_EQ(handled, 0u);
  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.dropped_faulty_link, 1u);
  EXPECT_EQ(stats.dropped_dead_node, 0u);
  EXPECT_EQ(stats.level_updates_sent, 1u);  // the send itself counted

  // After the wire recovers, traffic flows again.
  net.recover_link(0, 0);
  net.send(0, 1, LevelUpdate{0, 2});
  net.run([&](const Scheduled&) {
    ++handled;
    return true;
  });
  EXPECT_EQ(handled, 1u);
  EXPECT_EQ(net.stats().dropped_faulty_link, 1u);
}

TEST(Network, DroppedBreakdownSumsAfterMixedFaults) {
  // The invariant the stats scrape promises: dropped is exactly the sum
  // of its two reasons, under node faults, link faults, and both at once
  // (wire checked first, so a dead wire to a dead node counts as a link
  // drop, never double-counts).
  auto net = make_net(3, {});
  net.send(0, 1, LevelUpdate{0, 2});  // -> dead-node drop
  net.fail_node(1);
  net.send(2, 3, LevelUpdate{2, 2});  // -> faulty-link drop
  net.fail_link(2, 0);
  net.send(4, 5, LevelUpdate{4, 2});  // -> link drop (wire checked first)
  net.fail_link(4, 0);
  net.fail_node(5);
  net.send(0, 2, LevelUpdate{0, 2});  // delivered
  unsigned handled = 0;
  net.run([&](const Scheduled&) {
    ++handled;
    return true;
  });
  EXPECT_EQ(handled, 1u);
  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.dropped_dead_node, 1u);
  EXPECT_EQ(stats.dropped_faulty_link, 2u);
  EXPECT_EQ(stats.dropped, stats.dropped_dead_node + stats.dropped_faulty_link);
  EXPECT_EQ(stats.dropped, 3u);
}

}  // namespace
}  // namespace slcube::sim
