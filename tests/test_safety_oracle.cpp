// core::SafetyOracle — the incremental safety-level table must be
// bit-identical to a from-scratch compute_safety_levels() after ANY
// interleaving of add_fault / remove_fault / apply / retarget. Theorem 1
// (uniqueness of the consistent assignment) is what makes this a fair
// oracle test: there is exactly one right answer per fault set, so a
// randomized sweep over >=10^4 operation sequences across dimensions
// 3..10 leaves the cascade logic nowhere to hide.
#include "core/safety_oracle.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/global_status.hpp"
#include "fault/injection.hpp"

namespace slcube::core {
namespace {

void expect_matches_scratch(const SafetyOracle& oracle, const char* what) {
  const auto scratch = compute_safety_levels(oracle.cube(), oracle.faults());
  ASSERT_EQ(oracle.levels(), scratch)
      << what << " diverged from compute_safety_levels (dim "
      << oracle.cube().dimension() << ", " << oracle.faults().count()
      << " faults)";
}

TEST(SafetyOracle, FaultFreeStartIsAllSafe) {
  const topo::Hypercube q(5);
  const SafetyOracle oracle(q);
  EXPECT_EQ(oracle.faults().count(), 0u);
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    EXPECT_EQ(oracle.levels()[a], 5);
  }
}

TEST(SafetyOracle, ConstructionAtArbitraryFaultSetMatchesScratch) {
  Xoshiro256ss rng(0xAB1E);
  for (unsigned dim = 3; dim <= 8; ++dim) {
    const topo::Hypercube q(dim);
    for (int t = 0; t < 20; ++t) {
      const auto faults =
          fault::inject_uniform(q, rng.below(q.num_nodes() / 2), rng);
      const SafetyOracle oracle(q, faults);
      expect_matches_scratch(oracle, "constructor");
    }
  }
}

TEST(SafetyOracle, SingleAddThenRemoveRoundTrips) {
  const topo::Hypercube q(4);
  SafetyOracle oracle(q);
  oracle.add_fault(0b0101);
  expect_matches_scratch(oracle, "add_fault");
  EXPECT_EQ(oracle.levels()[0b0101], 0);
  oracle.remove_fault(0b0101);
  expect_matches_scratch(oracle, "remove_fault");
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    EXPECT_EQ(oracle.levels()[a], 4) << "node " << a;
  }
}

TEST(SafetyOracle, ApplyMixedBatchMatchesScratch) {
  const topo::Hypercube q(6);
  fault::FaultSet start(q.num_nodes(), {1, 2, 8, 33});
  SafetyOracle oracle(q, start);
  // One batch that simultaneously adds {4, 5, 20} and removes {2, 33}.
  fault::FaultSet delta(q.num_nodes(), {4, 5, 20, 2, 33});
  oracle.apply(delta);
  expect_matches_scratch(oracle, "apply");
  EXPECT_TRUE(oracle.faults().is_faulty(4));
  EXPECT_TRUE(oracle.faults().is_healthy(2));
  EXPECT_TRUE(oracle.faults().is_healthy(33));
  EXPECT_EQ(oracle.faults().count(), 5u);
}

TEST(SafetyOracle, RetargetSmallDeltaCascadesWithoutRebuild) {
  const topo::Hypercube q(8);
  Xoshiro256ss rng(0x5E7);
  SafetyOracle oracle(q, fault::inject_uniform(q, 10, rng));
  // Evolve the fault set by one node at a time: always below the
  // rebuild crossover, so the fallback must never fire.
  fault::FaultSet target = oracle.faults();
  for (int step = 0; step < 30; ++step) {
    if (target.count() > 0 && rng.chance(0.4)) {
      const auto f = target.faulty_nodes();
      target.mark_healthy(f[rng.below(f.size())]);
    } else {
      const auto h = target.healthy_nodes();
      target.mark_faulty(h[rng.below(h.size())]);
    }
    oracle.retarget(target);
    expect_matches_scratch(oracle, "retarget(small delta)");
  }
  EXPECT_EQ(oracle.stats().rebuilds, 0u);
  EXPECT_GT(oracle.stats().cascades, 0u);
}

TEST(SafetyOracle, RetargetLargeDeltaFallsBackToRebuild) {
  const topo::Hypercube q(8);
  Xoshiro256ss rng(0xFA11BACC);
  SafetyOracle oracle(q, fault::inject_uniform(q, 40, rng));
  // An independent random sample shares almost nothing with the current
  // set: the symmetric difference is far past num_nodes/48, so retarget
  // must take the from-scratch path — and still land on the fixed point.
  const auto target = fault::inject_uniform(q, 40, rng);
  oracle.retarget(target);
  EXPECT_EQ(oracle.stats().rebuilds, 1u);
  EXPECT_EQ(oracle.faults(), target);
  expect_matches_scratch(oracle, "retarget(rebuild fallback)");
}

// The shared fallback predicate is the contract both oracles key off:
// pin its boundary so a drive-by constant change cannot silently move
// one caller and not the other.
TEST(SafetyOracle, RetargetPredicateBoundary) {
  constexpr std::uint64_t n = 1024;  // Q10
  constexpr std::uint64_t crossover =
      (n + kRetargetRebuildFactor - 1) / kRetargetRebuildFactor;
  static_assert(!retarget_prefers_rebuild(0, n));
  EXPECT_FALSE(retarget_prefers_rebuild(crossover - 1, n));
  EXPECT_TRUE(retarget_prefers_rebuild(crossover, n));
  EXPECT_TRUE(retarget_prefers_rebuild(n, n));
}

// The Stats accounting contract: the rebuild fallback bumps `rebuilds`
// and nothing else (cascade counters keep counting incremental work
// exclusively), the change log reports every node after a rebuild, and
// a retarget to the current fault set is a free no-op.
TEST(SafetyOracle, RetargetAccountingContract) {
  const topo::Hypercube q(7);
  Xoshiro256ss rng(0xACC7);
  SafetyOracle oracle(q, fault::inject_uniform(q, 8, rng));
  std::vector<NodeId> log;
  oracle.set_change_log(&log);

  // Empty delta: no counters move, no log entries appear.
  const SafetyOracle::Stats before_noop = oracle.stats();
  oracle.retarget(oracle.faults());
  EXPECT_EQ(oracle.stats().recomputes, before_noop.recomputes);
  EXPECT_EQ(oracle.stats().level_changes, before_noop.level_changes);
  EXPECT_EQ(oracle.stats().cascades, before_noop.cascades);
  EXPECT_EQ(oracle.stats().rebuilds, before_noop.rebuilds);
  EXPECT_TRUE(log.empty());

  // Rebuild fallback: exactly one `rebuilds` bump, cascade counters
  // untouched, and the log covers the whole (rewritten) table.
  const auto far_target = fault::inject_uniform(q, 30, rng);
  const SafetyOracle::Stats before_rebuild = oracle.stats();
  oracle.retarget(far_target);
  EXPECT_EQ(oracle.stats().rebuilds, before_rebuild.rebuilds + 1);
  EXPECT_EQ(oracle.stats().recomputes, before_rebuild.recomputes);
  EXPECT_EQ(oracle.stats().level_changes, before_rebuild.level_changes);
  EXPECT_EQ(oracle.stats().cascades, before_rebuild.cascades);
  EXPECT_EQ(log.size(), q.num_nodes());
  std::vector<bool> seen(q.num_nodes(), false);
  for (const NodeId a : log) seen[a] = true;
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    ASSERT_TRUE(seen[a]) << "rebuild change log missed node " << a;
  }
  expect_matches_scratch(oracle, "rebuild accounting");

  // Incremental path: cascade counters move, `rebuilds` stays put.
  log.clear();
  fault::FaultSet near_target = oracle.faults();
  near_target.mark_faulty(near_target.healthy_nodes().front());
  const SafetyOracle::Stats before_cascade = oracle.stats();
  oracle.retarget(near_target);
  EXPECT_EQ(oracle.stats().rebuilds, before_cascade.rebuilds);
  EXPECT_GT(oracle.stats().recomputes, before_cascade.recomputes);
  EXPECT_GT(oracle.stats().cascades, before_cascade.cascades);
  expect_matches_scratch(oracle, "cascade accounting");
  oracle.set_change_log(nullptr);
}

// The headline property test: >=10^4 randomized operation sequences.
// Each sequence starts from a random fault set and performs a random
// interleaving of single adds, single removes, mixed batches, and
// retargets, checking bit-identity with the from-scratch fixed point
// after EVERY operation. The budget is weighted toward small dimensions
// (cheap scratch recomputation) while still exercising dim 10.
TEST(SafetyOracle, RandomizedInterleavingsMatchScratch) {
  struct Budget {
    unsigned dim;
    int sequences;
  };
  constexpr Budget kBudget[] = {{3, 2000}, {4, 2000}, {5, 2000}, {6, 2000},
                                {7, 1000}, {8, 600},  {9, 300},  {10, 150}};
  int total = 0;
  for (const auto& [dim, sequences] : kBudget) total += sequences;
  ASSERT_GE(total, 10000) << "budget fell below the 10^4-sequence bar";

  Xoshiro256ss rng(0x0C0FFEE);
  for (const auto& [dim, sequences] : kBudget) {
    const topo::Hypercube q(dim);
    const std::uint64_t num = q.num_nodes();
    for (int s = 0; s < sequences; ++s) {
      auto mirror = fault::inject_uniform(q, rng.below(num / 2), rng);
      SafetyOracle oracle(q, mirror);
      const int ops = 3 + static_cast<int>(rng.below(6));
      for (int op = 0; op < ops; ++op) {
        switch (rng.below(4)) {
          case 0: {  // single failure
            const auto healthy = mirror.healthy_nodes();
            if (healthy.empty()) break;
            const NodeId a = healthy[rng.below(healthy.size())];
            mirror.mark_faulty(a);
            oracle.add_fault(a);
            break;
          }
          case 1: {  // single recovery
            const auto faulty = mirror.faulty_nodes();
            if (faulty.empty()) break;
            const NodeId a = faulty[rng.below(faulty.size())];
            mirror.mark_healthy(a);
            oracle.remove_fault(a);
            break;
          }
          case 2: {  // mixed batch toggle
            fault::FaultSet delta(num);
            const int k = 1 + static_cast<int>(rng.below(4));
            for (int i = 0; i < k; ++i) {
              delta.mark_faulty(static_cast<NodeId>(rng.below(num)));
            }
            for (const NodeId a : delta.faulty_nodes()) {
              if (mirror.is_faulty(a)) {
                mirror.mark_healthy(a);
              } else {
                mirror.mark_faulty(a);
              }
            }
            oracle.apply(delta);
            break;
          }
          default: {  // retarget (occasionally big enough to rebuild)
            mirror = fault::inject_uniform(q, rng.below(num / 2), rng);
            oracle.retarget(mirror);
            break;
          }
        }
        ASSERT_EQ(oracle.faults(), mirror);
        const auto scratch = compute_safety_levels(q, mirror);
        ASSERT_EQ(oracle.levels(), scratch)
            << "dim " << dim << " sequence " << s << " op " << op;
      }
    }
  }
}

}  // namespace
}  // namespace slcube::core
