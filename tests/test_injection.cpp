#include "fault/injection.hpp"

#include <gtest/gtest.h>

#include "analysis/components.hpp"
#include "topology/topology_view.hpp"

namespace slcube::fault {
namespace {

TEST(Injection, UniformExactCount) {
  const topo::Hypercube q(7);
  Xoshiro256ss rng(1);
  for (const std::uint64_t count : {0ull, 1ull, 7ull, 50ull, 128ull}) {
    const FaultSet f = inject_uniform(q, count, rng);
    EXPECT_EQ(f.count(), count);
    EXPECT_EQ(f.num_nodes(), q.num_nodes());
  }
}

TEST(Injection, UniformDeterministicPerSeed) {
  const topo::Hypercube q(6);
  Xoshiro256ss a(99), b(99);
  EXPECT_EQ(inject_uniform(q, 10, a), inject_uniform(q, 10, b));
}

TEST(Injection, UniformCoversAllNodesOverManyDraws) {
  const topo::Hypercube q(4);
  Xoshiro256ss rng(5);
  FaultSet seen(q.num_nodes());
  for (int i = 0; i < 200; ++i) {
    for (const NodeId a : inject_uniform(q, 4, rng).faulty_nodes()) {
      seen.mark_faulty(a);
    }
  }
  EXPECT_EQ(seen.count(), q.num_nodes());
}

TEST(Injection, ClusteredExactCountAndTightness) {
  const topo::Hypercube q(8);
  Xoshiro256ss rng(7);
  const FaultSet f = inject_clustered(q, 12, rng);
  EXPECT_EQ(f.count(), 12u);
  // Clustered faults must be mutually closer than uniform ones on
  // average: max pairwise distance well below the diameter in most draws.
  const auto nodes = f.faulty_nodes();
  unsigned max_pair = 0;
  for (const NodeId a : nodes) {
    for (const NodeId b : nodes) max_pair = std::max(max_pair, q.distance(a, b));
  }
  EXPECT_LE(max_pair, q.dimension());  // sanity: bounded by diameter
}

TEST(Injection, ClusteredIsTighterThanUniformOnAverage) {
  const topo::Hypercube q(9);
  Xoshiro256ss rng(11);
  double clustered_spread = 0, uniform_spread = 0;
  const int trials = 30;
  auto mean_pairwise = [&](const FaultSet& f) {
    const auto nodes = f.faulty_nodes();
    double sum = 0;
    int pairs = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        sum += q.distance(nodes[i], nodes[j]);
        ++pairs;
      }
    }
    return sum / pairs;
  };
  for (int t = 0; t < trials; ++t) {
    clustered_spread += mean_pairwise(inject_clustered(q, 10, rng));
    uniform_spread += mean_pairwise(inject_uniform(q, 10, rng));
  }
  EXPECT_LT(clustered_spread, uniform_spread);
}

TEST(Injection, IsolationDisconnectsTheVictim) {
  const topo::Hypercube q(5);
  const topo::HypercubeView view(q);
  Xoshiro256ss rng(13);
  for (int t = 0; t < 20; ++t) {
    NodeId victim = 0;
    const FaultSet f = inject_isolation(q, 0, rng, victim);
    EXPECT_EQ(f.count(), q.dimension());
    EXPECT_TRUE(f.is_healthy(victim));
    q.for_each_neighbor(victim, [&](Dim, NodeId b) {
      EXPECT_TRUE(f.is_faulty(b));
    });
    const auto comps = analysis::connected_components(view, f);
    EXPECT_TRUE(comps.disconnected());
    // The victim is a singleton component.
    EXPECT_EQ(comps.size[comps.component[victim]], 1u);
  }
}

TEST(Injection, IsolationExtraBudget) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(17);
  NodeId victim = 0;
  const FaultSet f = inject_isolation(q, 4, rng, victim);
  EXPECT_EQ(f.count(), q.dimension() + 4);
  EXPECT_TRUE(f.is_healthy(victim));
}

TEST(Injection, SubcubeKillsExactSubcube) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(19);
  for (const unsigned k : {0u, 1u, 3u, 6u}) {
    const FaultSet f = inject_subcube(q, k, rng);
    EXPECT_EQ(f.count(), std::uint64_t{1} << k);
  }
}

TEST(Injection, SubcubeNodesAgreeOnFixedDims) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(23);
  const FaultSet f = inject_subcube(q, 2, rng);
  const auto nodes = f.faulty_nodes();
  ASSERT_EQ(nodes.size(), 4u);
  // The XOR of all faulty nodes spans exactly the k free dimensions, so
  // pairwise XORs live in a 2-dimensional subspace.
  std::uint32_t span = 0;
  for (const NodeId a : nodes) span |= a ^ nodes[0];
  EXPECT_EQ(bits::popcount(span), 2u);
}

TEST(Injection, StarShapeInvariants) {
  for (const unsigned dim : {4u, 6u}) {
    const topo::Hypercube q(dim);
    Xoshiro256ss rng(41);
    for (const unsigned leaves : {0u, 1u, dim}) {
      NodeId center = 0;
      const FaultSet f = inject_star(q, leaves, rng, &center);
      EXPECT_EQ(f.count(), leaves + 1u);
      EXPECT_TRUE(f.is_faulty(center));
      for (const NodeId a : f.faulty_nodes()) {
        if (a != center) {
          EXPECT_EQ(q.distance(a, center), 1u);
        }
      }
    }
  }
}

TEST(Injection, StarDeterministicPerSeedAcrossDims) {
  for (const unsigned dim : {3u, 5u, 7u}) {
    const topo::Hypercube q(dim);
    Xoshiro256ss a(43), b(43);
    EXPECT_EQ(inject_star(q, dim - 1, a), inject_star(q, dim - 1, b));
  }
}

TEST(Injection, PathShapeInvariants) {
  for (const unsigned dim : {4u, 6u}) {
    const topo::Hypercube q(dim);
    Xoshiro256ss rng(47);
    for (const std::uint64_t length :
         {std::uint64_t{1}, std::uint64_t{5}, q.num_nodes()}) {
      std::vector<NodeId> path;
      const FaultSet f = inject_path(q, length, rng, &path);
      EXPECT_EQ(f.count(), length);
      ASSERT_EQ(path.size(), length);
      FaultSet seen(q.num_nodes());
      for (std::size_t i = 0; i < path.size(); ++i) {
        EXPECT_TRUE(f.is_faulty(path[i]));
        EXPECT_TRUE(seen.is_healthy(path[i])) << "revisited node";
        seen.mark_faulty(path[i]);
        if (i > 0) {
          EXPECT_EQ(q.distance(path[i - 1], path[i]), 1u);
        }
      }
    }
  }
}

TEST(Injection, PathDeterministicPerSeedAcrossDims) {
  for (const unsigned dim : {3u, 5u, 7u}) {
    const topo::Hypercube q(dim);
    Xoshiro256ss a(53), b(53);
    EXPECT_EQ(inject_path(q, dim + 2, a), inject_path(q, dim + 2, b));
  }
}

// Regression: the rejection-sampling loop used to make near-full-cube
// clustered draws effectively non-terminating (every draw hits an
// already-faulty node). The bounded-retry fallback must fill the exact
// count for the worst cases: all nodes, and all nodes but one.
TEST(Injection, ClusteredFillsNearFullCube) {
  const topo::Hypercube q(5);
  for (const std::uint64_t count : {q.num_nodes() - 1, q.num_nodes()}) {
    Xoshiro256ss rng(59);
    const FaultSet f = inject_clustered(q, count, rng);
    EXPECT_EQ(f.count(), count);
  }
}

TEST(Injection, SubcubeCountInvariantForEveryK) {
  for (const unsigned dim : {4u, 6u}) {
    const topo::Hypercube q(dim);
    Xoshiro256ss rng(61);
    for (unsigned k = 0; k <= dim; ++k) {
      const FaultSet f = inject_subcube(q, k, rng);
      EXPECT_EQ(f.count(), std::uint64_t{1} << k)
          << "dim " << dim << " k " << k;
    }
  }
}

TEST(Injection, EveryGeneratorDeterministicPerSeedAcrossDims) {
  for (const unsigned dim : {4u, 6u}) {
    const topo::Hypercube q(dim);
    const auto draw = [&](std::uint64_t seed) {
      Xoshiro256ss rng(seed);
      NodeId victim = 0;
      std::vector<FaultSet> sets;
      sets.push_back(inject_uniform(q, dim, rng));
      sets.push_back(inject_clustered(q, dim, rng));
      sets.push_back(inject_isolation(q, 2, rng, victim));
      sets.push_back(inject_subcube(q, 2, rng));
      sets.push_back(inject_star(q, dim / 2, rng));
      sets.push_back(inject_path(q, dim, rng));
      return sets;
    };
    EXPECT_EQ(draw(67), draw(67));
    EXPECT_NE(draw(67), draw(71));  // and the seed actually matters
  }
}

TEST(Injection, LinksExactCount) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(29);
  const LinkFaultSet lf = inject_links_uniform(q, 9, rng);
  EXPECT_EQ(lf.count(), 9u);
}

TEST(Injection, LinksZero) {
  const topo::Hypercube q(4);
  Xoshiro256ss rng(31);
  EXPECT_TRUE(inject_links_uniform(q, 0, rng).empty());
}

}  // namespace
}  // namespace slcube::fault
