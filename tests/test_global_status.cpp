// Algorithm GS: convergence, the Corollary's n-1 round bound, the
// optimistic/pessimistic initialization ablation, and round-capping.
#include "core/global_status.hpp"

#include <gtest/gtest.h>

#include "fault/injection.hpp"

namespace slcube::core {
namespace {

TEST(Gs, FaultFreeNeedsZeroRounds) {
  // "in the absence of faulty nodes ... no extra overhead is introduced".
  const topo::Hypercube q(6);
  const fault::FaultSet none(q.num_nodes());
  const auto gs = run_gs(q, none);
  EXPECT_EQ(gs.rounds_to_stabilize, 0u);
  EXPECT_TRUE(gs.stabilized);
  for (NodeId a = 0; a < q.num_nodes(); ++a) EXPECT_EQ(gs.levels[a], 6);
}

TEST(Gs, Fig1TakesTwoRounds) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0011, 0b0100, 0b0110, 0b1001});
  const auto gs = run_gs(q, f);
  EXPECT_EQ(gs.rounds_to_stabilize, 2u);
  EXPECT_TRUE(gs.stabilized);
  ASSERT_EQ(gs.changes_per_round.size(), 2u);
  // Round 1 lowers exactly the four nodes with two faulty neighbors.
  EXPECT_EQ(gs.changes_per_round[0], 4u);
  // Round 2 lowers 0000 and 0101 to level 2.
  EXPECT_EQ(gs.changes_per_round[1], 2u);
}

class GsDims : public ::testing::TestWithParam<unsigned> {};

TEST_P(GsDims, CorollaryRoundBound) {
  // The Corollary: n-1 rounds always suffice, whatever the fault count
  // or distribution — including heavily disconnected cubes.
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 101);
  for (int t = 0; t < 30; ++t) {
    const auto count = rng.below(q.num_nodes());
    const auto f = fault::inject_uniform(q, count, rng);
    const auto gs = run_gs(q, f);
    EXPECT_TRUE(gs.stabilized);
    EXPECT_LE(gs.rounds_to_stabilize, n - 1)
        << "n=" << n << " faults=" << count;
  }
}

TEST_P(GsDims, PessimisticStartReachesSameFixedPoint) {
  // DESIGN.md ablation #2: the all-0 start converges to the same unique
  // fixed point (Theorem 1), merely needing different round counts.
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 777);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, rng.below(q.num_nodes() / 2),
                                         rng);
    GsOptions pess;
    pess.pessimistic_start = true;
    const auto up = run_gs(q, f, pess);
    const auto down = run_gs(q, f);
    EXPECT_TRUE(up.stabilized);
    EXPECT_EQ(up.levels, down.levels);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims2To8, GsDims,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Gs, PessimisticFaultFreeNeedsNRounds) {
  // From all-0 the fault-free cube climbs one level per round: n rounds —
  // worse than the paper's optimistic start, which needs zero. This is
  // exactly why the paper initializes at n.
  const unsigned n = 5;
  const topo::Hypercube q(n);
  const fault::FaultSet none(q.num_nodes());
  GsOptions pess;
  pess.pessimistic_start = true;
  const auto gs = run_gs(q, none, pess);
  EXPECT_EQ(gs.rounds_to_stabilize, n);
  for (NodeId a = 0; a < q.num_nodes(); ++a) EXPECT_EQ(gs.levels[a], n);
}

TEST(Gs, RoundCapProducesUnstabilizedLevels) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0011, 0b0100, 0b0110, 0b1001});
  GsOptions capped;
  capped.max_rounds = 1;
  const auto gs = run_gs(q, f, capped);
  EXPECT_FALSE(gs.stabilized);
  EXPECT_EQ(gs.rounds_to_stabilize, 1u);
  // After one round node 0101 still shows the round-1 value 4, not the
  // final 2.
  EXPECT_EQ(gs.levels[0b0101], 4);
}

TEST(Gs, RoundCapAboveNeedIsHarmless) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0011, 0b0100, 0b0110, 0b1001});
  GsOptions opts;
  opts.max_rounds = 50;
  const auto gs = run_gs(q, f, opts);
  EXPECT_TRUE(gs.stabilized);
  EXPECT_EQ(gs.levels, compute_safety_levels(q, f));
}

TEST(Gs, MonotoneDecreaseFromOptimisticStart) {
  // From the n start, a node's level never increases across rounds; the
  // change counts must therefore sum to at most healthy_count * n.
  const topo::Hypercube q(6);
  Xoshiro256ss rng(9);
  const auto f = fault::inject_uniform(q, 20, rng);
  const auto gs = run_gs(q, f);
  std::uint64_t total_changes = 0;
  for (const auto c : gs.changes_per_round) total_changes += c;
  EXPECT_LE(total_changes, f.healthy_count() * q.dimension());
}

TEST(Gs, AllNodesFaulty) {
  const topo::Hypercube q(3);
  fault::FaultSet f(q.num_nodes());
  for (NodeId a = 0; a < 8; ++a) f.mark_faulty(a);
  const auto gs = run_gs(q, f);
  EXPECT_EQ(gs.rounds_to_stabilize, 0u);
  for (NodeId a = 0; a < 8; ++a) EXPECT_EQ(gs.levels[a], 0);
}

TEST(Gs, IsolatedNodeGetsLevelOne) {
  // Fig. 3's isolated node 1110: all neighbors faulty -> sorted (0,0,0,0)
  // -> level 1 (it can still "reach" its dead neighbors vacuously, which
  // is why unicasts from it to live nodes are refused by H >= 2 > 1).
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0110, 0b1010, 0b1100, 0b1111});
  EXPECT_EQ(compute_safety_levels(q, f)[0b1110], 1);
}

}  // namespace
}  // namespace slcube::core
