// exp::adversarial_search: probe/score correctness, thread-count
// determinism, and the built-in random-placement control arm.
#include <gtest/gtest.h>

#include "core/global_status.hpp"
#include "exp/adversarial.hpp"

namespace slcube::exp {
namespace {

TEST(AdversarialSearch, ProbesAreDeterministicAndEndpointDistinct) {
  const topo::Hypercube q(5);
  const auto a = make_probes(q, 0xFEED, 64);
  const auto b = make_probes(q, 0xFEED, 64);
  ASSERT_EQ(a.size(), 64u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].s, b[i].s);
    EXPECT_EQ(a[i].d, b[i].d);
    EXPECT_NE(a[i].s, a[i].d);
    EXPECT_LT(a[i].s, q.num_nodes());
    EXPECT_LT(a[i].d, q.num_nodes());
  }
}

TEST(AdversarialSearch, ScorePlacementMatchesHandCount) {
  const topo::Hypercube q(3);
  // Surround node 0: every probe sourced (or sunk) at 0 must be refused.
  fault::FaultSet faults(q.num_nodes());
  faults.mark_faulty(1);
  faults.mark_faulty(2);
  faults.mark_faulty(4);
  const core::SafetyLevels levels = core::compute_safety_levels(q, faults);
  const std::vector<ProbePair> probes = {{0, 7}, {7, 0}, {3, 5}, {0, 1}};
  // {0,7}: source isolated -> reject. {7,0}: dest unreachable, every
  // C-condition needs safe levels toward 0 -> reject. {3,5}: healthy
  // corner pair. {0,1}: faulty endpoint, skipped entirely.
  const std::uint64_t rejects = score_placement(
      q, levels, faults, probes, Objective::kSourceRejects);
  EXPECT_GE(rejects, 2u);
  EXPECT_LE(rejects, 3u);
  // A fault-free cube refuses nothing and detours nothing.
  const fault::FaultSet none(q.num_nodes());
  const core::SafetyLevels clean = core::compute_safety_levels(q, none);
  for (const Objective obj :
       {Objective::kSourceRejects, Objective::kDetours}) {
    EXPECT_EQ(score_placement(q, clean, none, probes, obj), 0u);
  }
}

TEST(AdversarialSearch, ResultIsThreadCountInvariant) {
  const topo::Hypercube q(4);
  AdversarialConfig config;
  config.fault_count = 6;
  config.probes = 48;
  config.restarts = 5;
  config.greedy_moves = 12;
  config.sa_moves = 24;
  config.threads = 1;
  const AdversarialResult serial = adversarial_search(q, config);
  config.threads = 4;
  const AdversarialResult parallel = adversarial_search(q, config);
  EXPECT_EQ(serial.best_score, parallel.best_score);
  EXPECT_EQ(serial.best_restart, parallel.best_restart);
  EXPECT_EQ(serial.restart_scores, parallel.restart_scores);
  EXPECT_EQ(serial.random_best, parallel.random_best);
  EXPECT_EQ(serial.random_mean, parallel.random_mean);
  EXPECT_EQ(serial.evals, parallel.evals);
  EXPECT_EQ(serial.best.faulty_nodes(), parallel.best.faulty_nodes());
}

TEST(AdversarialSearch, NeverLosesToItsOwnControlArm) {
  const topo::Hypercube q(5);
  for (const Objective obj :
       {Objective::kSourceRejects, Objective::kDetours}) {
    AdversarialConfig config;
    config.fault_count = 8;
    config.objective = obj;
    config.probes = 64;
    config.restarts = 4;
    config.greedy_moves = 24;
    config.sa_moves = 48;
    const AdversarialResult r = adversarial_search(q, config);
    // best is the max over restarts, each of which starts at its own
    // random placement — the search can tie the control but never lose.
    EXPECT_GE(r.best_score, r.random_best);
    EXPECT_GE(static_cast<double>(r.best_score), r.random_mean);
    for (const std::uint64_t s : r.restart_scores) {
      EXPECT_GE(r.best_score, s);
    }
    EXPECT_EQ(r.best.count(), config.fault_count);
    EXPECT_EQ(r.evals,
              config.restarts *
                  (1 + config.greedy_moves + config.sa_moves));
  }
}

TEST(AdversarialSearch, FindsTheIsolationPatternOnASmallCube) {
  // On Q3 with a 3-fault budget and rejects objective, the global
  // optimum is to surround one probe-heavy corner; the search must at
  // least strictly improve on its random starts.
  const topo::Hypercube q(3);
  AdversarialConfig config;
  config.fault_count = 3;
  config.probes = 32;
  config.restarts = 6;
  config.greedy_moves = 32;
  config.sa_moves = 32;
  const AdversarialResult r = adversarial_search(q, config);
  EXPECT_GT(r.best_score, 0u);
  EXPECT_GE(r.best_score, r.random_best);
}

}  // namespace
}  // namespace slcube::exp
