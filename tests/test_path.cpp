#include "analysis/path.hpp"

#include <gtest/gtest.h>

#include "common/format.hpp"

namespace slcube::analysis {
namespace {

class PathCheckTest : public ::testing::Test {
 protected:
  topo::Hypercube q{4};
  topo::HypercubeView view{q};
  fault::FaultSet none{16};
};

TEST_F(PathCheckTest, OptimalPath) {
  const Path p{0b0000, 0b0001, 0b0011};
  const auto r = check_path(view, none, p);
  EXPECT_EQ(r.cls, PathClass::kOptimal);
  EXPECT_TRUE(r.error.empty());
}

TEST_F(PathCheckTest, SingleNodePathIsOptimal) {
  EXPECT_EQ(check_path(view, none, Path{5}).cls, PathClass::kOptimal);
}

TEST_F(PathCheckTest, SuboptimalIsHammingPlusTwo) {
  // 0000 -> 0100 -> 0101 -> 0001: H(0000,0001)=1, length 3 = H+2.
  const Path p{0b0000, 0b0100, 0b0101, 0b0001};
  EXPECT_EQ(check_path(view, none, p).cls, PathClass::kSuboptimal);
}

TEST_F(PathCheckTest, LongerThanHammingPlusTwo) {
  const Path p{0b0000, 0b0100, 0b0110, 0b0111, 0b0101, 0b0001};
  EXPECT_EQ(check_path(view, none, p).cls, PathClass::kLonger);
}

TEST_F(PathCheckTest, EmptyPathInvalid) {
  EXPECT_EQ(check_path(view, none, Path{}).cls, PathClass::kInvalid);
}

TEST_F(PathCheckTest, NonAdjacentHopInvalid) {
  const Path p{0b0000, 0b0011};
  const auto r = check_path(view, none, p);
  EXPECT_EQ(r.cls, PathClass::kInvalid);
  EXPECT_NE(r.error.find("adjacent"), std::string::npos);
}

TEST_F(PathCheckTest, RepeatedNodeInvalid) {
  const Path p{0b0000, 0b0001, 0b0000};
  const auto r = check_path(view, none, p);
  EXPECT_EQ(r.cls, PathClass::kInvalid);
  EXPECT_NE(r.error.find("repeated"), std::string::npos);
}

TEST_F(PathCheckTest, FaultyIntermediateInvalid) {
  fault::FaultSet f(16, {0b0001});
  const Path p{0b0000, 0b0001, 0b0011};
  EXPECT_EQ(check_path(view, f, p).cls, PathClass::kInvalid);
}

TEST_F(PathCheckTest, FaultySourceInvalid) {
  fault::FaultSet f(16, {0b0000});
  const Path p{0b0000, 0b0001};
  EXPECT_EQ(check_path(view, f, p).cls, PathClass::kInvalid);
}

TEST_F(PathCheckTest, Footnote3AllowsTreatedFaultyDestination) {
  // The final node may be "treated as faulty" (Section 4.1 footnote 3):
  // check_path only rejects faulty interior nodes.
  fault::FaultSet f(16, {0b0011});
  const Path p{0b0000, 0b0001, 0b0011};
  EXPECT_EQ(check_path(view, f, p).cls, PathClass::kOptimal);
}

TEST_F(PathCheckTest, LinkFaultVariantRejectsCutLink) {
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(0b0000, 0);
  const Path p{0b0000, 0b0001};
  const auto r = check_path_with_links(q, none, lf, p);
  EXPECT_EQ(r.cls, PathClass::kInvalid);
  EXPECT_NE(r.error.find("link"), std::string::npos);
}

TEST_F(PathCheckTest, LinkFaultVariantAcceptsDetour) {
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(0b0000, 0);
  const Path p{0b0000, 0b0010, 0b0011, 0b0001};
  EXPECT_EQ(check_path_with_links(q, none, lf, p).cls,
            PathClass::kSuboptimal);
}

TEST(PathClassNames, ToString) {
  EXPECT_EQ(to_string(PathClass::kOptimal), "optimal");
  EXPECT_EQ(to_string(PathClass::kSuboptimal), "suboptimal");
  EXPECT_EQ(to_string(PathClass::kLonger), "longer");
  EXPECT_EQ(to_string(PathClass::kInvalid), "invalid");
}

TEST(PathFormat, FormatPath) {
  EXPECT_EQ(format_path(Path{0b0101, 0b0001, 0b0000}, 4),
            "0101 -> 0001 -> 0000");
  EXPECT_EQ(format_path(Path{3}, 2), "11");
}

}  // namespace
}  // namespace slcube::analysis
