// The Router-interface adapter over the paper's algorithm.
#include "baselines/safety_level_router.hpp"

#include <gtest/gtest.h>

#include "fault/injection.hpp"
#include "fault/scenario.hpp"

namespace slcube::baselines {
namespace {

TEST(SafetyLevelRouter, MatchesCoreRoutesExactly) {
  const auto sc = fault::scenario::fig1();
  SafetyLevelRouter router;
  router.prepare(sc.cube, sc.faults);
  const auto levels = core::compute_safety_levels(sc.cube, sc.faults);
  EXPECT_EQ(router.levels(), levels);
  for (NodeId s = 0; s < 16; ++s) {
    if (sc.faults.is_faulty(s)) continue;
    for (NodeId d = 0; d < 16; ++d) {
      if (d == s || sc.faults.is_faulty(d)) continue;
      const auto expect =
          core::route_unicast(sc.cube, sc.faults, levels, s, d);
      const auto got = router.route(s, d);
      ASSERT_EQ(got.delivered, expect.delivered());
      ASSERT_EQ(got.walk, expect.path);
    }
  }
}

TEST(SafetyLevelRouter, RefusedMapsToRefused) {
  const auto sc = fault::scenario::fig3();
  SafetyLevelRouter router;
  router.prepare(sc.cube, sc.faults);
  const auto a = router.route(0b0111, 0b1110);
  EXPECT_TRUE(a.refused);
  EXPECT_FALSE(a.delivered);
  EXPECT_EQ(a.hops(), 0u);
}

TEST(SafetyLevelRouter, PrepareRoundsMatchGs) {
  const auto sc = fault::scenario::fig1();
  SafetyLevelRouter router;
  router.prepare(sc.cube, sc.faults);
  EXPECT_EQ(router.prepare_rounds(), 2u);
}

TEST(SafetyLevelRouter, ReprepareAfterFaultChange) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(5005);
  SafetyLevelRouter router;
  const auto f1 = fault::inject_uniform(q, 3, rng);
  router.prepare(q, f1);
  const auto l1 = router.levels();
  const auto f2 = fault::inject_uniform(q, 8, rng);
  router.prepare(q, f2);
  EXPECT_EQ(router.levels(), core::compute_safety_levels(q, f2));
  EXPECT_NE(router.levels(), l1);
}

TEST(SafetyLevelRouter, Name) {
  EXPECT_EQ(SafetyLevelRouter().name(), "safety-level");
}

}  // namespace
}  // namespace slcube::baselines
