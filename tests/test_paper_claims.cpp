// End-to-end integration tests of the paper's headline claims, combining
// several modules at once (GS + routing + analysis + baselines + sim).
#include <gtest/gtest.h>

#include "analysis/bfs.hpp"
#include "analysis/components.hpp"
#include "baselines/chiu_wu.hpp"
#include "baselines/lee_hayes.hpp"
#include "baselines/safety_level_router.hpp"
#include "common/stats.hpp"
#include "core/global_status.hpp"
#include "core/properties.hpp"
#include "core/unicast.hpp"
#include "fault/injection.hpp"
#include "sim/protocol_gs.hpp"
#include "sim/protocol_unicast.hpp"
#include "topology/topology_view.hpp"
#include "workload/pair_sampler.hpp"

namespace slcube {
namespace {

/// Headline 1: "Optimal unicasting between two nodes is guaranteed if the
/// safety level of the source node is no less than the Hamming distance."
TEST(PaperClaims, AbstractOptimalityGuarantee) {
  const topo::Hypercube q(7);
  Xoshiro256ss rng(42);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, 20, rng);
    const auto lv = core::compute_safety_levels(q, f);
    for (int p = 0; p < 200; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      const auto d = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (s == d || f.is_faulty(s) || f.is_faulty(d)) continue;
      if (lv[s] < q.distance(s, d)) continue;
      const auto r = core::route_unicast(q, f, lv, s, d);
      ASSERT_EQ(r.status, core::RouteStatus::kDeliveredOptimal);
      ASSERT_EQ(r.hops(), q.distance(s, d));
    }
  }
}

/// Headline 2: with fewer than n faults the scheme is never worse than
/// H + 2, while Lee-Hayes/Chiu-Wu keep their weaker bounds and the
/// safety-level scheme never refuses.
TEST(PaperClaims, FewerThanNFaultsComparison) {
  const topo::Hypercube q(7);
  Xoshiro256ss rng(43);
  baselines::SafetyLevelRouter sl;
  baselines::LeeHayesRouter lh;
  baselines::ChiuWuRouter cw;
  for (int t = 0; t < 8; ++t) {
    const auto f = fault::inject_uniform(q, 6, rng);
    sl.prepare(q, f);
    lh.prepare(q, f);
    cw.prepare(q, f);
    for (int p = 0; p < 60; ++p) {
      const auto pair = workload::sample_uniform_pair(f, rng);
      ASSERT_TRUE(pair.has_value());
      const unsigned h = q.distance(pair->s, pair->d);
      const auto a = sl.route(pair->s, pair->d);
      ASSERT_TRUE(a.delivered);
      ASSERT_LE(a.hops(), h + 2);
      const auto b = lh.route(pair->s, pair->d);
      if (b.delivered) {
        ASSERT_LE(b.hops(), h + 2);
      }
      const auto c = cw.route(pair->s, pair->d);
      if (c.delivered) {
        ASSERT_LE(c.hops(), h + 4);
      }
    }
  }
}

/// Headline 3 (the novelty): in disconnected hypercubes the safety-level
/// scheme still unicasts within components and detects cross-partition
/// unicasts at the source, while both safe-node schemes are inapplicable.
TEST(PaperClaims, DisconnectedCubeHeadline) {
  const topo::Hypercube q(6);
  const topo::HypercubeView view(q);
  Xoshiro256ss rng(44);
  for (int t = 0; t < 6; ++t) {
    NodeId victim = 0;
    const auto f = fault::inject_isolation(q, 2, rng, victim);
    const auto comps = analysis::connected_components(view, f);
    ASSERT_TRUE(comps.disconnected());

    // Theorem 4: both safe-node schemes are dead.
    ASSERT_EQ(core::check_theorem4(q, f), "");

    baselines::SafetyLevelRouter sl;
    sl.prepare(q, f);

    // Every unicast toward the isolated victim is refused at the source.
    for (int p = 0; p < 30; ++p) {
      const auto s = static_cast<NodeId>(rng.below(q.num_nodes()));
      if (f.is_faulty(s) || s == victim) continue;
      const auto a = sl.route(s, victim);
      ASSERT_TRUE(a.refused);
      ASSERT_EQ(a.hops(), 0u) << "failure must be detected without traffic";
    }

    // Unicasts inside the big component still work when feasibility
    // holds; count that a healthy fraction does.
    unsigned feasible = 0, total = 0;
    for (int p = 0; p < 100; ++p) {
      const auto pair = workload::sample_uniform_pair(f, rng);
      if (!pair || pair->s == victim || pair->d == victim) continue;
      ++total;
      feasible += sl.route(pair->s, pair->d).delivered ? 1u : 0u;
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(feasible) / total, 0.5);
  }
}

/// Headline 4: rounds — GS needs at most n-1 rounds; the distributed
/// execution agrees with the centralized one; with few faults the average
/// is far below the bound (Fig. 2's claim: < 2 rounds when faults < n).
TEST(PaperClaims, RoundsClaimSevenCube) {
  const topo::Hypercube q(7);
  Xoshiro256ss rng(45);
  RunningStat rounds;
  for (int t = 0; t < 60; ++t) {
    const auto f = fault::inject_uniform(q, 6, rng);  // < n = 7 faults
    const auto gs = core::run_gs(q, f);
    ASSERT_LE(gs.rounds_to_stabilize, 6u);
    rounds.add(gs.rounds_to_stabilize);
  }
  EXPECT_LT(rounds.mean(), 2.0)
      << "Fig. 2: average rounds < 2 for fewer than 7 faults";
}

/// Headline 5: the fully distributed pipeline — message-level GS then
/// message-level unicasts — delivers with optimal latency whenever the
/// source check passes, end to end in the simulator.
TEST(PaperClaims, DistributedEndToEnd) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(46);
  for (int t = 0; t < 5; ++t) {
    const auto f = fault::inject_uniform(q, 5, rng);
    sim::Network net(q, f);
    const auto gs = sim::run_gs_synchronous(net);
    ASSERT_LE(gs.rounds, 5u);
    for (int p = 0; p < 30; ++p) {
      const auto pair = workload::sample_uniform_pair(f, rng);
      ASSERT_TRUE(pair.has_value());
      const auto r = sim::route_unicast_sim(net, pair->s, pair->d);
      ASSERT_EQ(r.status, sim::SimRouteStatus::kDelivered);
      ASSERT_LE(r.latency(),
                (q.distance(pair->s, pair->d) + 2) * net.link_delay());
    }
  }
}

/// Headline 6: safety levels are strictly more permissive than safe-node
/// classifications — whenever Lee-Hayes or Chiu-Wu delivers, the
/// safety-level scheme delivers too (on the same fault set), and there
/// exist cases where only the safety-level scheme delivers.
TEST(PaperClaims, StrictlyMorePermissive) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(47);
  baselines::SafetyLevelRouter sl;
  baselines::LeeHayesRouter lh;
  bool sl_only = false;
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, 8, rng);
    sl.prepare(q, f);
    lh.prepare(q, f);
    for (int p = 0; p < 60; ++p) {
      const auto pair = workload::sample_uniform_pair(f, rng);
      ASSERT_TRUE(pair.has_value());
      const auto a = sl.route(pair->s, pair->d);
      const auto b = lh.route(pair->s, pair->d);
      if (b.delivered) {
        ASSERT_TRUE(a.delivered)
            << "LH delivered but safety-level refused: impossible";
      }
      sl_only |= a.delivered && !b.delivered;
    }
  }
  EXPECT_TRUE(sl_only);
}

}  // namespace
}  // namespace slcube
