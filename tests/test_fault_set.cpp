#include "fault/fault_set.hpp"

#include <gtest/gtest.h>

namespace slcube::fault {
namespace {

TEST(FaultSet, StartsAllHealthy) {
  FaultSet f(128);
  EXPECT_EQ(f.count(), 0u);
  EXPECT_EQ(f.healthy_count(), 128u);
  EXPECT_TRUE(f.empty());
  for (NodeId a = 0; a < 128; ++a) EXPECT_TRUE(f.is_healthy(a));
}

TEST(FaultSet, MarkFaulty) {
  FaultSet f(16);
  f.mark_faulty(3);
  f.mark_faulty(11);
  EXPECT_TRUE(f.is_faulty(3));
  EXPECT_TRUE(f.is_faulty(11));
  EXPECT_FALSE(f.is_faulty(4));
  EXPECT_EQ(f.count(), 2u);
  EXPECT_EQ(f.healthy_count(), 14u);
}

TEST(FaultSet, MarkFaultyIdempotent) {
  FaultSet f(16);
  f.mark_faulty(5);
  f.mark_faulty(5);
  EXPECT_EQ(f.count(), 1u);
}

TEST(FaultSet, Recovery) {
  FaultSet f(16);
  f.mark_faulty(5);
  f.mark_healthy(5);
  EXPECT_TRUE(f.is_healthy(5));
  EXPECT_EQ(f.count(), 0u);
  f.mark_healthy(5);  // idempotent
  EXPECT_EQ(f.count(), 0u);
}

TEST(FaultSet, InitializerList) {
  FaultSet f(16, {1, 2, 3});
  EXPECT_EQ(f.count(), 3u);
  EXPECT_TRUE(f.is_faulty(1));
  EXPECT_TRUE(f.is_faulty(2));
  EXPECT_TRUE(f.is_faulty(3));
}

TEST(FaultSet, FaultyNodesSorted) {
  FaultSet f(100, {77, 3, 42});
  EXPECT_EQ(f.faulty_nodes(), (std::vector<NodeId>{3, 42, 77}));
}

TEST(FaultSet, HealthyNodesComplement) {
  FaultSet f(8, {0, 7});
  EXPECT_EQ(f.healthy_nodes(), (std::vector<NodeId>{1, 2, 3, 4, 5, 6}));
}

TEST(FaultSet, WordBoundaries) {
  FaultSet f(130);
  f.mark_faulty(63);
  f.mark_faulty(64);
  f.mark_faulty(129);
  EXPECT_TRUE(f.is_faulty(63));
  EXPECT_TRUE(f.is_faulty(64));
  EXPECT_TRUE(f.is_faulty(129));
  EXPECT_FALSE(f.is_faulty(65));
  EXPECT_EQ(f.faulty_nodes(), (std::vector<NodeId>{63, 64, 129}));
}

TEST(FaultSet, Clear) {
  FaultSet f(32, {1, 30});
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.is_healthy(30));
}

TEST(FaultSet, Equality) {
  FaultSet a(16, {2, 4}), b(16, {4, 2}), c(16, {2});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace slcube::fault
