#include "workload/metrics.hpp"

#include <gtest/gtest.h>

namespace slcube::workload {
namespace {

routing::RouteAttempt delivered_walk(std::initializer_list<NodeId> walk) {
  routing::RouteAttempt a;
  a.delivered = true;
  a.walk = walk;
  return a;
}

TEST(Metrics, DeliveredOptimal) {
  RoutingMetrics m;
  m.record(delivered_walk({0, 1, 3}), /*hamming=*/2, /*bfs=*/2);
  EXPECT_EQ(m.delivered.hits(), 1u);
  EXPECT_EQ(m.optimal.hits(), 1u);
  EXPECT_EQ(m.suboptimal.hits(), 0u);
  EXPECT_EQ(m.bound_h2.hits(), 1u);
  EXPECT_EQ(m.true_shortest.hits(), 1u);
  EXPECT_DOUBLE_EQ(m.overhead.mean(), 0.0);
}

TEST(Metrics, DeliveredSuboptimal) {
  RoutingMetrics m;
  m.record(delivered_walk({0, 4, 5, 7, 3}), /*hamming=*/2, /*bfs=*/2);
  EXPECT_EQ(m.suboptimal.hits(), 1u);
  EXPECT_EQ(m.bound_h2.hits(), 1u);
  EXPECT_EQ(m.true_shortest.hits(), 0u);
  EXPECT_DOUBLE_EQ(m.overhead.mean(), 2.0);
}

TEST(Metrics, DeliveredLongerThanH2) {
  RoutingMetrics m;
  routing::RouteAttempt a;
  a.delivered = true;
  a.walk = {0, 1, 3, 2, 6, 7, 5};  // 6 hops for hamming 2
  m.record(a, 2, 4);
  EXPECT_EQ(m.bound_h2.hits(), 0u);
  EXPECT_EQ(m.optimal.hits(), 0u);
  EXPECT_EQ(m.suboptimal.hits(), 0u);
}

TEST(Metrics, CorrectRefusal) {
  RoutingMetrics m;
  routing::RouteAttempt a;
  a.refused = true;
  a.walk = {0};
  m.record(a, 3, analysis::kUnreachable);
  EXPECT_EQ(m.refused.hits(), 1u);
  EXPECT_EQ(m.refusal_correct.hits(), 1u);
  EXPECT_EQ(m.refusal_correct.total(), 1u);
  EXPECT_EQ(m.delivered_when_reachable.total(), 0u);
}

TEST(Metrics, WrongRefusal) {
  RoutingMetrics m;
  routing::RouteAttempt a;
  a.refused = true;
  a.walk = {0};
  m.record(a, 3, 3);  // destination was reachable!
  EXPECT_EQ(m.refusal_correct.hits(), 0u);
  EXPECT_EQ(m.refusal_correct.total(), 1u);
  EXPECT_EQ(m.delivered_when_reachable.hits(), 0u);
  EXPECT_EQ(m.delivered_when_reachable.total(), 1u);
}

TEST(Metrics, StuckCountsTraffic) {
  RoutingMetrics m;
  routing::RouteAttempt a;  // neither delivered nor refused
  a.walk = {0, 1, 5};
  m.record(a, 4, 4);
  EXPECT_EQ(m.stuck.hits(), 1u);
  EXPECT_EQ(m.traffic.count(), 1u);
  EXPECT_DOUBLE_EQ(m.traffic.mean(), 2.0);
  EXPECT_EQ(m.hops_histogram.total(), 0u);  // histogram is deliveries only
}

TEST(Metrics, MergeAddsUp) {
  RoutingMetrics a, b;
  a.record(delivered_walk({0, 1}), 1, 1);
  routing::RouteAttempt refused;
  refused.refused = true;
  refused.walk = {0};
  b.record(refused, 2, analysis::kUnreachable);
  a.merge(b);
  EXPECT_EQ(a.delivered.total(), 2u);
  EXPECT_EQ(a.delivered.hits(), 1u);
  EXPECT_EQ(a.refused.hits(), 1u);
  EXPECT_EQ(a.refusal_correct.hits(), 1u);
}

}  // namespace
}  // namespace slcube::workload
