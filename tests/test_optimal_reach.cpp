// The exact optimal-reachability oracle, and its relationship to the
// safety level (Theorem 2 says S(a) <= reach(a) — the level is a SOUND
// under-approximation).
#include "analysis/optimal_reach.hpp"

#include <gtest/gtest.h>

#include "analysis/bfs.hpp"
#include "core/global_status.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"
#include "topology/topology_view.hpp"

namespace slcube::analysis {
namespace {

TEST(OptimalReach, FaultFreeIsFullDiameter) {
  const topo::Hypercube q(5);
  const fault::FaultSet none(q.num_nodes());
  for (const unsigned r : optimal_reach(q, none)) EXPECT_EQ(r, 5u);
}

TEST(OptimalReach, RelationMatchesBfsOnHammingPairs) {
  // opt[a][b] == (BFS distance through healthy interiors == H(a,b)) for
  // healthy b; checked on random fault sets. For the interior-only
  // subtlety (faulty b allowed as final hop) the relation is checked
  // against a BFS that treats b as temporarily healthy.
  const topo::Hypercube q(5);
  const topo::HypercubeView view(q);
  Xoshiro256ss rng(11);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, 6, rng);
    const auto opt = optimal_reach_relation(q, f);
    for (NodeId a = 0; a < q.num_nodes(); ++a) {
      if (f.is_faulty(a)) continue;
      const auto dist = bfs_distances(view, f, a);
      for (NodeId b = 0; b < q.num_nodes(); ++b) {
        if (f.is_faulty(b) || a == b) continue;
        ASSERT_EQ(opt[a][b], dist[b] == q.distance(a, b))
            << a << " -> " << b;
      }
    }
  }
}

TEST(OptimalReach, FaultyDestinationReachableAsFinalHop) {
  // Theorem 2's base case: a faulty NEIGHBOR counts as reachable.
  const topo::Hypercube q(3);
  const fault::FaultSet f(q.num_nodes(), {0b001});
  const auto opt = optimal_reach_relation(q, f);
  EXPECT_TRUE(opt[0b000][0b001]);   // direct hop
  EXPECT_TRUE(opt[0b011][0b001]);   // direct hop from the other side
  EXPECT_TRUE(opt[0b101][0b001]);
  // At distance 2 the interior must be healthy: 010 -> 001 would go via
  // 000 or 011, both healthy -> reachable.
  EXPECT_TRUE(opt[0b010][0b001]);
}

TEST(OptimalReach, Fig3IsolatedNodeReachesOnlyNeighbors) {
  const auto sc = fault::scenario::fig3();
  const auto reach = optimal_reach(sc.cube, sc.faults);
  // 1110's healthy "within k" sets are empty up to k = 1 (its neighbors
  // are all faulty, hence vacuous), so reach is at least 1; at distance
  // 2 healthy nodes exist and are unreachable.
  EXPECT_EQ(reach[0b1110], 1u);
}

TEST(OptimalReach, SafetyLevelIsSoundEverywhereQ4Exhaustive) {
  // Theorem 2 as an inequality, exhaustively over all <= 4-fault sets.
  const topo::Hypercube q(4);
  for (std::uint32_t mask = 0; mask < (1u << 16); ++mask) {
    if (bits::popcount(mask) > 4) continue;
    fault::FaultSet f(q.num_nodes());
    for (NodeId a = 0; a < 16; ++a) {
      if ((mask >> a) & 1u) f.mark_faulty(a);
    }
    const auto levels = core::compute_safety_levels(q, f);
    const auto reach = optimal_reach(q, f);
    for (NodeId a = 0; a < 16; ++a) {
      if (f.is_faulty(a)) continue;
      ASSERT_LE(levels[a], reach[a]) << "mask " << mask << " node " << a;
    }
  }
}

class ReachSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReachSweep, LevelSoundAndSometimesTight) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 131);
  for (int t = 0; t < 8; ++t) {
    const auto f = fault::inject_uniform(q, 2 * n, rng);
    const auto levels = core::compute_safety_levels(q, f);
    const auto reach = optimal_reach(q, f);
    std::vector<unsigned> estimate(q.num_nodes());
    for (NodeId a = 0; a < q.num_nodes(); ++a) estimate[a] = levels[a];
    const auto summary = compare_to_exact(q, f, reach, estimate);
    ASSERT_EQ(summary.healthy_nodes, f.healthy_count());
    ASSERT_LE(summary.estimate_total, summary.exact_total);
    ASSERT_GT(summary.tightness(), 0.3) << "level absurdly conservative";
  }
}

INSTANTIATE_TEST_SUITE_P(Dims4To7, ReachSweep,
                         ::testing::Values(4u, 5u, 6u, 7u));

TEST(CompareToExact, CountsMatches) {
  const topo::Hypercube q(3);
  const fault::FaultSet none(q.num_nodes());
  const auto reach = optimal_reach(q, none);
  std::vector<unsigned> estimate(8, 3);
  estimate[0] = 1;  // deliberately conservative at one node
  const auto s = compare_to_exact(q, none, reach, estimate);
  EXPECT_EQ(s.healthy_nodes, 8u);
  EXPECT_EQ(s.exact_matches, 7u);
  EXPECT_EQ(s.exact_total, 24u);
  EXPECT_EQ(s.estimate_total, 22u);
}

}  // namespace
}  // namespace slcube::analysis
