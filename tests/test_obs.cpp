// slcube::obs — registry sharding/merging, histogram quantiles, trace
// sinks (ring buffer + JSONL round trip), span timers, and the traced
// unicast event stream (source decision, every hop, spare detours).
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/global_status.hpp"
#include "core/unicast.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace slcube::obs {
namespace {

// --- metrics registry ------------------------------------------------------

TEST(Metrics, CounterCountsAndScrapes) {
  Registry reg;
  const Counter c = reg.counter("test.count");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(reg.scrape().counter("test.count"), 5u);
  EXPECT_EQ(reg.scrape().counter("absent"), 0u);
}

TEST(Metrics, RegistrationIsIdempotent) {
  Registry reg;
  const Counter a = reg.counter("shared");
  const Counter b = reg.counter("shared");
  a.inc();
  b.inc();
  EXPECT_EQ(reg.scrape().counter("shared"), 2u);
  EXPECT_EQ(reg.scrape().counters.size(), 1u);
}

TEST(Metrics, DefaultConstructedHandlesAreNullSafe) {
  const Counter c;
  const Gauge g;
  const Histogram h;
  c.inc();
  g.set(7);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(Metrics, GaugeSetAndAdd) {
  Registry reg;
  const Gauge g = reg.gauge("test.gauge");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  EXPECT_EQ(reg.scrape().gauge("test.gauge"), 7);
}

TEST(Metrics, ScrapeMergesThreadShards) {
  Registry reg;
  const Counter c = reg.counter("mt.count");
  const Histogram h = reg.histogram("mt.hist", exponential_bounds(1, 2, 8));
  constexpr unsigned kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(2.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.scrape().counter("mt.count"), kThreads * kPerThread);
  EXPECT_EQ(h.snapshot().count, kThreads * kPerThread);
}

TEST(Metrics, TwoRegistriesDoNotShareShards) {
  Registry a, b;
  const Counter ca = a.counter("x");
  const Counter cb = b.counter("x");
  ca.inc(3);
  cb.inc(5);
  EXPECT_EQ(a.scrape().counter("x"), 3u);
  EXPECT_EQ(b.scrape().counter("x"), 5u);
}

TEST(Metrics, HistogramDataQuantilesAndMerge) {
  HistogramData h(exponential_bounds(1, 2, 10));  // 1, 2, 4, ... 512
  for (int i = 0; i < 90; ++i) h.observe(3.0);   // bucket <= 4
  for (int i = 0; i < 10; ++i) h.observe(100.0);  // bucket <= 128
  EXPECT_EQ(h.count, 100u);
  // Interpolated within the target bucket, clamped by the exact extremes:
  // p50 lands 50/90 of the way through [min_seen=3, 4]; p99 lands 9/10 of
  // the way through [64, max_seen=100].
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0 + (50.0 / 90.0) * 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 64.0 + 0.9 * 36.0);
  EXPECT_DOUBLE_EQ(h.min_seen, 3.0);
  EXPECT_DOUBLE_EQ(h.max_seen, 100.0);

  HistogramData other(exponential_bounds(1, 2, 10));
  other.observe(1000.0);  // overflow bucket — exact max still tracked
  h.merge(other);
  EXPECT_EQ(h.count, 101u);
  EXPECT_DOUBLE_EQ(h.max_seen, 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(Metrics, HistogramDataCountsBeyond32BitsStayExact) {
  // Mega-cube sweeps (10M+ routes x repeated merges across engines and
  // telemetry batches) push bucket counts past 2^32. Buckets and count
  // are u64; doubling a two-bucket histogram 33 times reaches 2^34
  // observations and every derived statistic must stay exact (the sums
  // involved are exact dyadic doubles, well under 2^53).
  HistogramData acc(exponential_bounds(1, 10, 2));  // bounds 1, 10
  acc.observe(0.5);
  acc.observe(5.5);
  for (int i = 0; i < 33; ++i) {
    const HistogramData snapshot = acc;
    acc.merge(snapshot);
  }
  const std::uint64_t half = std::uint64_t{1} << 33;
  EXPECT_EQ(acc.count, std::uint64_t{1} << 34);
  ASSERT_EQ(acc.buckets.size(), 3u);
  EXPECT_EQ(acc.buckets[0], half);  // <= 1
  EXPECT_EQ(acc.buckets[1], half);  // <= 10
  EXPECT_EQ(acc.buckets[2], 0u);    // overflow untouched
  EXPECT_DOUBLE_EQ(acc.sum, 6.0 * static_cast<double>(half));
  EXPECT_DOUBLE_EQ(acc.mean(), 3.0);
  EXPECT_DOUBLE_EQ(acc.min_seen, 0.5);
  EXPECT_DOUBLE_EQ(acc.max_seen, 5.5);
  EXPECT_DOUBLE_EQ(acc.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(acc.quantile(1.0), 5.5);
}

TEST(Metrics, QuantileEdgeCases) {
  // Empty histogram: every quantile is 0 by definition.
  HistogramData empty(exponential_bounds(1, 2, 4));
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);

  // q = 0 and q = 1 are the exact observed extremes, not bucket bounds.
  HistogramData h(exponential_bounds(1, 2, 4));  // 1, 2, 4, 8
  h.observe(1.5);   // bucket <= 2
  h.observe(7.0);   // bucket <= 8
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);

  // Overflow-bucket values are no longer clamped to the last bound: the
  // running max keeps p100 (and p999 on a big tail) honest.
  HistogramData over(exponential_bounds(1, 2, 4));
  over.observe(100.0);
  over.observe(1e9);
  EXPECT_DOUBLE_EQ(over.quantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(over.quantile(1.0), 1e9);

  // A single-bound ladder still answers sanely on both sides.
  HistogramData one(exponential_bounds(5, 3, 1));  // bounds = {5}
  one.observe(2.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.5), 2.0);
  one.observe(50.0);  // overflow
  EXPECT_DOUBLE_EQ(one.quantile(1.0), 50.0);

  // q outside [0, 1] clamps to the observed extremes, and NaN — which
  // compares false against everything — clamps to the min instead of
  // falling through to max_seen (the old behavior).
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()), 1.5);
  EXPECT_DOUBLE_EQ(
      empty.quantile(std::numeric_limits<double>::quiet_NaN()), 0.0);
}

TEST(Metrics, WriteJsonAgreesWithQuantileEdges) {
  // A registered-but-never-observed histogram must serialize the same
  // defined zeros that quantile() now returns — no NaNs, no garbage.
  Registry reg;
  (void)reg.histogram("edge.hist", exponential_bounds(1, 2, 4));
  std::ostringstream os;
  reg.scrape().write_json(os);
  EXPECT_NE(os.str().find("\"edge.hist\":{\"count\":0,\"mean\":0,\"p50\":0,"
                          "\"p90\":0,\"p99\":0,\"p999\":0,\"max\":0}"),
            std::string::npos)
      << os.str();
}

TEST(Metrics, LinearBoundsHelper) {
  const auto bounds = linear_bounds(1.0, 1.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 4.0);
}

TEST(Metrics, SnapshotJsonIsParseable) {
  Registry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("a.gauge").set(-2);
  reg.histogram("a.hist", exponential_bounds(1, 10, 4)).observe(50.0);
  std::ostringstream os;
  reg.scrape().write_json(os);
  const auto parsed = parse_jsonl_line(os.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->integer("a.count"), 3);
  EXPECT_EQ(parsed->integer("a.gauge"), -2);
  EXPECT_EQ(parsed->integer("a.hist.count"), 1);
  // The tail fields ride along: p999 interpolated, max exact.
  EXPECT_TRUE(parsed->has("a.hist.p999"));
  EXPECT_DOUBLE_EQ(parsed->num("a.hist.max"), 50.0);
}

TEST(Metrics, GaugeSurvivesConcurrentAddAndSet) {
  // Gauges are documented thread-safe; hammer add() against set() from
  // several threads and require exact accounting of the adds afterwards
  // (the final set() re-baselines, so only the post-set adds remain).
  Registry reg;
  const Gauge g = reg.gauge("mt.gauge");
  g.set(0);
  constexpr unsigned kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        g.add(1);
        g.add(-1);
        g.add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(g.value(), kThreads * kPerThread);
  EXPECT_EQ(reg.scrape().gauge("mt.gauge"), kThreads * kPerThread);
}

TEST(Metrics, DeadThreadShardsFoldIntoRetiredAccumulator) {
  // Regression for the per-thread shard leak: a registry that outlives
  // many short-lived writer threads must not grow its shard map without
  // bound, and no count may be lost when a shard retires.
  Registry reg;
  const Counter c = reg.counter("retire.count");
  const Histogram h = reg.histogram("retire.hist", exponential_bounds(1, 2, 8));
  constexpr unsigned kRuns = 100;
  for (unsigned run = 0; run < kRuns; ++run) {
    std::thread worker([&] {
      c.inc(3);
      h.observe(2.0);
    });
    worker.join();
    // Totals survive the writer thread's death...
    EXPECT_EQ(c.value(), 3u * (run + 1));
    EXPECT_EQ(reg.scrape().counter("retire.count"), 3u * (run + 1));
  }
  EXPECT_EQ(h.snapshot().count, kRuns);
  // ...and scrape() folded the dead shards away instead of hoarding one
  // map entry per ever-seen thread (this thread's own shard may remain).
  EXPECT_LE(reg.live_shards(), 2u);
}

// --- trace sinks -----------------------------------------------------------

TEST(Trace, RingBufferKeepsNewestAfterWrap) {
  RingBufferSink ring(/*capacity=*/3);
  for (std::uint32_t i = 0; i < 5; ++i) {
    ring.on_event(NodeFailEvent{/*time=*/i, /*node=*/i});
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.total_seen(), 5u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Oldest-first: failures 2, 3, 4 survive.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(std::get<NodeFailEvent>(events[i]).node, i + 2);
  }
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total_seen(), 0u);
}

TEST(Trace, JsonlRoundTripPreservesEveryEventKind) {
  std::ostringstream os;
  {
    JsonlSink sink(os);
    SourceDecisionEvent src;
    src.source = 5;
    src.dest = 6;
    src.hamming = 2;
    src.c1 = true;
    src.chosen_dim = 1;
    src.ties = 2;
    sink.on_event(src);
    HopEvent hop;
    hop.from = 5;
    hop.to = 7;
    hop.dim = 1;
    hop.level = 3;
    hop.nav_before = 3;
    hop.nav_after = 1;
    hop.preferred = false;
    sink.on_event(hop);
    sink.on_event(RouteDoneEvent{5, 6, "delivered-optimal", 2});
    sink.on_event(GsRoundEvent{1, 4, 32, 9, true});
    sink.on_event(MessageSendEvent{7, 5, 7, MsgKind::kUnicast});
    sink.on_event(MessageDropEvent{8, 5, 7, MsgKind::kLevelUpdate,
                                   "faulty-link"});
    sink.on_event(NodeFailEvent{2, 9});
    sink.on_event(NodeRecoverEvent{3, 9});
    sink.on_event(SpanEvent{"point", 123.5, 7});
    SweepPointEvent sp;
    sp.sweep = "routing";
    sp.fault_count = 12;
    sp.wall_ms = 1.5;
    sp.values = {{"delivered_pct", 99.5}};
    sink.on_event(sp);
  }

  std::istringstream is(os.str());
  std::vector<ParsedEvent> events;
  for (std::string line; std::getline(is, line);) {
    auto parsed = parse_jsonl_line(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    events.push_back(std::move(*parsed));
  }
  ASSERT_EQ(events.size(), 10u);
  EXPECT_EQ(events[0].kind(), "source_decision");
  EXPECT_EQ(events[0].integer("source"), 5);
  EXPECT_TRUE(events[0].boolean("c1"));
  EXPECT_FALSE(events[0].boolean("c2"));
  EXPECT_EQ(events[0].integer("chosen_dim"), 1);
  EXPECT_EQ(events[1].kind(), "hop");
  EXPECT_FALSE(events[1].boolean("preferred"));
  EXPECT_EQ(events[1].integer("nav_after"), 1);
  EXPECT_EQ(events[2].str("status"), "delivered-optimal");
  EXPECT_TRUE(events[3].boolean("egs"));
  EXPECT_EQ(events[4].str("kind"), "unicast");
  EXPECT_EQ(events[5].str("reason"), "faulty-link");
  EXPECT_EQ(events[6].kind(), "node_fail");
  EXPECT_EQ(events[7].kind(), "node_recover");
  EXPECT_DOUBLE_EQ(events[8].num("micros"), 123.5);
  EXPECT_EQ(events[9].str("sweep"), "routing");
  EXPECT_DOUBLE_EQ(events[9].num("values.delivered_pct"), 99.5);
}

TEST(Trace, ParserRejectsMalformedLines) {
  EXPECT_FALSE(parse_jsonl_line("not json").has_value());
  EXPECT_FALSE(parse_jsonl_line("{\"unterminated\":").has_value());
  EXPECT_FALSE(parse_jsonl_line("{\"arr\":[1,2]}").has_value());
  EXPECT_TRUE(parse_jsonl_line("{}").has_value());
  EXPECT_TRUE(parse_jsonl_line(" {\"k\":null} ").has_value());
}

TEST(Trace, ParserSurvivesTruncationFuzz) {
  // Every prefix of a valid line must either parse or be rejected —
  // never crash, never hang. Also try a few byte-level mutations.
  std::ostringstream os;
  {
    JsonlSink sink(os);
    SweepPointEvent sp;
    sp.sweep = "routing \"q\" \\ fuzz";
    sp.fault_count = 3;
    sp.wall_ms = 0.25;
    sp.values = {{"delivered_pct", 50.0}};
    sink.on_event(sp);
    sink.on_event(MessageDropEvent{1, 2, 3, MsgKind::kUnicast, "dead-node"});
  }
  std::istringstream is(os.str());
  for (std::string line; std::getline(is, line);) {
    ASSERT_TRUE(parse_jsonl_line(line).has_value()) << line;
    for (std::size_t cut = 0; cut < line.size(); ++cut) {
      (void)parse_jsonl_line(line.substr(0, cut));
    }
    for (std::size_t i = 0; i < line.size(); i += 3) {
      std::string mutated = line;
      mutated[i] = static_cast<char>(mutated[i] ^ 0x15);
      (void)parse_jsonl_line(mutated);
    }
  }
}

TEST(Trace, EscapedStringsRoundTrip) {
  std::ostringstream os;
  {
    JsonlSink sink(os);
    sink.on_event(SpanEvent{"quote \" backslash \\ done", 1.0, 0});
  }
  std::string line = os.str();
  ASSERT_FALSE(line.empty());
  line.pop_back();  // the sink terminates the line; the parser is line-scoped
  const auto parsed = parse_jsonl_line(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(parsed->str("name"), "quote \" backslash \\ done");
}

TEST(Trace, RingBufferSurvivesConcurrentWriters) {
  // The ring is documented thread-safe: hammer it from several threads
  // and require exact accounting afterwards (TSan covers the rest).
  RingBufferSink ring(/*capacity=*/64);
  constexpr unsigned kThreads = 4, kPerThread = 2500;
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        ring.on_event(NodeFailEvent{i, t});
        if (i % 97 == 0) (void)ring.snapshot();
        if (i % 131 == 0) (void)ring.size();
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(ring.total_seen(), kThreads * kPerThread);
  EXPECT_EQ(ring.size(), 64u);
  EXPECT_EQ(ring.snapshot().size(), 64u);
}

TEST(Trace, JsonlFileSinkAndReader) {
  const std::string path = ::testing::TempDir() + "slcube_obs_trace.jsonl";
  {
    JsonlSink sink(path);
    sink.on_event(NodeFailEvent{1, 2});
    sink.on_event(NodeRecoverEvent{5, 2});
  }
  std::size_t malformed = 0;
  const auto events = read_jsonl_file(path, &malformed);
  EXPECT_EQ(malformed, 0u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind(), "node_fail");
  EXPECT_EQ(events[1].integer("time"), 5);
  std::remove(path.c_str());
}

TEST(Trace, TeeSinkFansOut) {
  RingBufferSink a, b;
  TeeSink tee({&a, &b});
  tee.on_event(NodeFailEvent{0, 1});
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(Trace, RingBufferCountsEvictionsExactly) {
  // dropped() is what audit_ring folds into events_lost: it must be
  // exactly total_seen - retained, zero before the first wrap, and reset
  // by clear() along with the rest of the accounting.
  RingBufferSink ring(/*capacity=*/3);
  ring.on_event(NodeFailEvent{0, 0});
  ring.on_event(NodeFailEvent{1, 1});
  EXPECT_EQ(ring.dropped(), 0u);
  for (std::uint32_t i = 2; i < 7; ++i) {
    ring.on_event(NodeFailEvent{i, i});
  }
  EXPECT_EQ(ring.total_seen(), 7u);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 4u);
  EXPECT_EQ(ring.total_seen() - ring.size(), ring.dropped());
  ring.clear();
  EXPECT_EQ(ring.dropped(), 0u);
  ring.on_event(NodeFailEvent{9, 9});
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.total_seen(), 1u);
}

TEST(Trace, LockedJsonlSinkKeepsLinesWholeUnderContention) {
  // The documented contract: whole lines are written atomically, so a
  // shared stream fed by several threads still yields one parseable JSON
  // object per line. (TSan runs this test too — the lock is the point.)
  std::ostringstream os;
  constexpr unsigned kThreads = 4, kPerThread = 500;
  {
    LockedJsonlSink sink(os);
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kThreads; ++t) {
      writers.emplace_back([&sink, t] {
        for (unsigned i = 0; i < kPerThread; ++i) {
          sink.on_event(SpanEvent{"locked-writer", double(t) + i, i});
        }
      });
    }
    for (auto& w : writers) w.join();
  }
  std::istringstream is(os.str());
  std::size_t lines = 0;
  for (std::string line; std::getline(is, line); ++lines) {
    const auto parsed = parse_jsonl_line(line);
    ASSERT_TRUE(parsed.has_value()) << "interleaved line: " << line;
    EXPECT_EQ(parsed->str("name"), "locked-writer");
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
}

TEST(Trace, TeeSinkFansOutConcurrently) {
  // TeeSink adds no locking of its own; with thread-safe children (ring +
  // locked JSONL) concurrent producers must land every event in both.
  RingBufferSink ring(/*capacity=*/128);
  std::ostringstream os;
  constexpr unsigned kThreads = 4, kPerThread = 500;
  {
    LockedJsonlSink jsonl(os);
    TeeSink tee({&ring, &jsonl});
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < kThreads; ++t) {
      writers.emplace_back([&tee, t] {
        for (unsigned i = 0; i < kPerThread; ++i) {
          tee.on_event(NodeFailEvent{i, t});
        }
      });
    }
    for (auto& w : writers) w.join();
  }
  EXPECT_EQ(ring.total_seen(), kThreads * kPerThread);
  EXPECT_EQ(ring.dropped(), kThreads * kPerThread - 128);
  std::istringstream is(os.str());
  std::size_t lines = 0;
  for (std::string line; std::getline(is, line); ++lines) {
    ASSERT_TRUE(parse_jsonl_line(line).has_value()) << line;
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
}

// --- span timers -----------------------------------------------------------

TEST(Span, EmitsEventAndObservesHistogram) {
  RingBufferSink ring;
  HistogramData hist(exponential_bounds(1, 10, 10));
  {
    SpanTimer span("unit-test", &ring, &hist);
    span.set_items(42);
  }
  ASSERT_EQ(ring.size(), 1u);
  const auto events = ring.snapshot();
  const auto& ev = std::get<SpanEvent>(events[0]);
  EXPECT_STREQ(ev.name, "unit-test");
  EXPECT_EQ(ev.items, 42u);
  EXPECT_GE(ev.micros, 0.0);
  EXPECT_EQ(hist.count, 1u);
}

// --- traced unicast --------------------------------------------------------

TEST(TracedUnicast, OptimalRouteEmitsFullReplayableStream) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  const auto lv = core::compute_safety_levels(q, none);
  RingBufferSink ring;
  core::UnicastOptions uo;
  uo.trace = &ring;
  const NodeId s = 0b1110, d = 0b0001;
  const auto r = core::route_unicast(q, none, lv, s, d, uo);
  ASSERT_EQ(r.status, core::RouteStatus::kDeliveredOptimal);

  const auto events = ring.snapshot();
  // source decision + one hop per edge + route done.
  ASSERT_EQ(events.size(), 2u + r.hops());
  const auto& src = std::get<SourceDecisionEvent>(events[0]);
  EXPECT_EQ(src.source, s);
  EXPECT_EQ(src.dest, d);
  EXPECT_EQ(src.hamming, 4u);
  EXPECT_TRUE(src.c1);
  EXPECT_FALSE(src.spare);
  // Hops chain along the returned path, and navigation shrinks to zero.
  for (std::size_t i = 0; i < r.hops(); ++i) {
    const auto& hop = std::get<HopEvent>(events[i + 1]);
    EXPECT_EQ(hop.from, r.path[i]);
    EXPECT_EQ(hop.to, r.path[i + 1]);
    EXPECT_TRUE(hop.preferred);
    EXPECT_EQ(hop.nav_after, hop.nav_before & ~bits::unit(hop.dim));
  }
  EXPECT_EQ(std::get<HopEvent>(events[events.size() - 2]).nav_after, 0u);
  const auto& done = std::get<RouteDoneEvent>(events.back());
  EXPECT_STREQ(done.status, "delivered-optimal");
  EXPECT_EQ(done.hops, r.hops());
}

TEST(TracedUnicast, SpareDetourMarkedInStream) {
  // The C3-only scenario from test_unicast: faults {0100, 0111} force
  // source 0101 -> 0110 (H = 2) onto the spare-dimension detour.
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0100, 0b0111});
  const auto lv = core::compute_safety_levels(q, f);
  const NodeId s = 0b0101, d = 0b0110;
  const auto dec = core::decide_at_source(q, lv, s, d);
  ASSERT_TRUE(!dec.c1 && !dec.c2 && dec.c3)
      << "scenario no longer exercises the spare branch";

  RingBufferSink ring;
  core::UnicastOptions uo;
  uo.trace = &ring;
  const auto r = core::route_unicast(q, f, lv, s, d, uo);
  ASSERT_EQ(r.status, core::RouteStatus::kDeliveredSuboptimal);
  ASSERT_EQ(r.hops(), 4u);

  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 6u);  // source + 4 hops + done
  const auto& src = std::get<SourceDecisionEvent>(events[0]);
  EXPECT_TRUE(src.spare);
  EXPECT_GE(src.chosen_dim, 0);
  const auto& first_hop = std::get<HopEvent>(events[1]);
  EXPECT_FALSE(first_hop.preferred);  // the detour leaves the preferred set
  // The detour *adds* the spare dimension to the navigation vector.
  EXPECT_EQ(bits::popcount(first_hop.nav_after), 3u);
  for (std::size_t i = 2; i <= 4; ++i) {
    EXPECT_TRUE(std::get<HopEvent>(events[i]).preferred);
  }
  EXPECT_STREQ(std::get<RouteDoneEvent>(events.back()).status,
               "delivered-suboptimal");
}

TEST(TracedUnicast, TracingDoesNotPerturbRandomTieBreaks) {
  const topo::Hypercube q(5);
  const fault::FaultSet f(q.num_nodes(), {1, 2, 20});
  const auto lv = core::compute_safety_levels(q, f);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Xoshiro256ss rng_a(seed), rng_b(seed);
    core::UnicastOptions plain;
    plain.tie_break = core::TieBreak::kRandom;
    plain.rng = &rng_a;
    RingBufferSink ring;
    core::UnicastOptions traced = plain;
    traced.rng = &rng_b;
    traced.trace = &ring;
    const auto ra = core::route_unicast(q, f, lv, 0, 31, plain);
    const auto rb = core::route_unicast(q, f, lv, 0, 31, traced);
    ASSERT_EQ(ra.path, rb.path) << "tracing changed the routed path";
    ASSERT_EQ(ra.status, rb.status);
  }
}

// --- recorder lifecycle (TSan regression) ----------------------------------

// Regression for the unlocked start()/stop() window: two concurrent
// start() calls could both observe sampler_ as non-joinable and the
// second assignment to a running std::thread calls std::terminate; a
// stop() racing a start() (or another stop(), or the destructor) was a
// data race on sampler_ itself. With lifecycle_mutex_ every
// interleaving below must be terminate-free and TSan-clean, with ticks
// and scrapes running through the middle of the transitions.
TEST(Telemetry, LifecycleTransitionsRaceFreely) {
  for (int round = 0; round < 8; ++round) {
    Registry reg;
    const Counter c = reg.counter("life.count");
    RecorderOptions opts;
    opts.sample_interval_ms = 1;
    auto rec = std::make_unique<TimeSeriesRecorder>(reg, opts);
    std::vector<std::thread> callers;
    callers.reserve(6);
    // Double start: exactly one may spawn, the other must no-op.
    callers.emplace_back([&] { rec->start(); });
    callers.emplace_back([&] { rec->start(); });
    // Stop racing the starts and a full start/stop cycle.
    callers.emplace_back([&] { rec->stop(); });
    callers.emplace_back([&] {
      rec->start();
      rec->stop();
    });
    // Explicit ticks and scrapes racing the sampler thread's own ticks.
    callers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        c.inc();
        rec->tick();
      }
    });
    callers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        (void)rec->samples();
        (void)rec->total_ticks();
      }
    });
    for (auto& t : callers) t.join();
    rec->stop();
    rec->stop();  // idempotent after everything settled
    // Destructor path: must join a still-running sampler cleanly.
    rec->start();
    rec.reset();
  }
}

}  // namespace
}  // namespace slcube::obs
