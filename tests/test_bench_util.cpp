// bench::Options::try_parse — the testable core of the experiment
// binaries' flag parsing: valid flag sets fill the struct, unknown flags
// and trailing flags with a missing value are rejected with an error
// message that names the offending flag.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/jsonl.hpp"

namespace slcube::bench {
namespace {

/// argv-style scratch: gtest owns the strings, try_parse sees char**.
struct Argv {
  explicit Argv(std::vector<std::string> words) : strings(std::move(words)) {
    strings.insert(strings.begin(), "bench_test");
    pointers.reserve(strings.size());
    for (auto& s : strings) pointers.push_back(s.data());
  }
  [[nodiscard]] int argc() { return static_cast<int>(pointers.size()); }
  [[nodiscard]] char** argv() { return pointers.data(); }

  std::vector<std::string> strings;
  std::vector<char*> pointers;
};

TEST(BenchUtil, ParsesEveryFlag) {
  Argv a({"--csv", "--audit", "--csv-file", "out.csv", "--jsonl", "t.jsonl",
          "--dim", "9", "--trials", "77", "--seed", "12345", "--threads",
          "3", "--bench-json", "b.json", "--telemetry", "tele.jsonl",
          "--sample-ms", "25"});
  Options o;
  std::string error;
  ASSERT_TRUE(Options::try_parse(a.argc(), a.argv(), o, error)) << error;
  EXPECT_TRUE(o.csv);
  EXPECT_TRUE(o.audit);
  EXPECT_EQ(o.csv_file, "out.csv");
  EXPECT_EQ(o.jsonl_file, "t.jsonl");
  EXPECT_EQ(o.dim, 9u);
  EXPECT_EQ(o.trials, 77u);
  EXPECT_EQ(o.seed, 12345u);
  EXPECT_EQ(o.threads, 3u);
  EXPECT_EQ(o.bench_json, "b.json");
  EXPECT_EQ(o.telemetry_file, "tele.jsonl");
  EXPECT_EQ(o.sample_ms, 25u);
}

TEST(BenchUtil, EmptyCommandLineKeepsDefaults) {
  Argv a({});
  Options o;
  std::string error;
  ASSERT_TRUE(Options::try_parse(a.argc(), a.argv(), o, error));
  EXPECT_FALSE(o.csv);
  EXPECT_FALSE(o.audit);
  EXPECT_EQ(o.trials, 0u);
  EXPECT_EQ(o.dim, 0u);
  EXPECT_EQ(o.seed, 0u);
  EXPECT_EQ(o.threads, 0u);
  EXPECT_TRUE(o.csv_file.empty());
  EXPECT_TRUE(o.jsonl_file.empty());
  EXPECT_TRUE(o.bench_json.empty());
  EXPECT_TRUE(o.telemetry_file.empty());
  EXPECT_EQ(o.sample_ms, 0u);
}

TEST(BenchUtil, RejectsUnknownFlagByName) {
  Argv a({"--trials", "5", "--missions", "6"});
  Options o;
  std::string error;
  EXPECT_FALSE(Options::try_parse(a.argc(), a.argv(), o, error));
  EXPECT_NE(error.find("--missions"), std::string::npos) << error;
  EXPECT_NE(error.find("unknown"), std::string::npos) << error;
}

TEST(BenchUtil, RejectsTrailingFlagMissingItsValue) {
  for (const char* flag : {"--csv-file", "--jsonl", "--dim", "--trials",
                           "--seed", "--threads", "--bench-json",
                           "--telemetry", "--sample-ms"}) {
    Argv a({flag});
    Options o;
    std::string error;
    EXPECT_FALSE(Options::try_parse(a.argc(), a.argv(), o, error)) << flag;
    EXPECT_NE(error.find(flag), std::string::npos) << error;
    EXPECT_NE(error.find("missing its value"), std::string::npos) << error;
  }
}

TEST(BenchUtil, TelemetrySessionIsGatedOnTheFlag) {
  const Options off;
  TelemetrySession none(off);
  EXPECT_FALSE(none.enabled());
  EXPECT_EQ(none.hooks().registry, nullptr);
  EXPECT_EQ(none.hooks().profiler, nullptr);
  EXPECT_EQ(none.hooks().recorder, nullptr);
  none.tick();                         // no-op, not a crash
  EXPECT_TRUE(none.finish(6, 1));      // nothing to write, still OK

  Options on;
  on.telemetry_file = ::testing::TempDir() + "slcube_bench_tele.jsonl";
  TelemetrySession session(on);
  EXPECT_TRUE(session.enabled());
  ASSERT_NE(session.hooks().registry, nullptr);
  session.hooks().registry->counter("gate.count").inc(3);
  session.tick();
  ASSERT_TRUE(session.finish(6, 2));
  std::size_t malformed = 0;
  const auto events = obs::read_jsonl_file(on.telemetry_file, &malformed);
  EXPECT_EQ(malformed, 0u);
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].kind(), "telemetry_meta");
  EXPECT_EQ(events[0].integer("dim"), 6);
  EXPECT_EQ(events[0].integer("threads"), 2);
  EXPECT_EQ(events[0].str("mode"), "ticks");
  EXPECT_EQ(events[1].kind(), "ts_sample");
  EXPECT_EQ(events[1].integer("c.gate.count"), 3);
  std::remove(on.telemetry_file.c_str());
  std::remove((on.telemetry_file + ".prom").c_str());
}

TEST(BenchUtil, AuditSinkIsGatedOnTheFlag) {
  Options off;
  EXPECT_EQ(off.make_audit_sink(6), nullptr);
  Options on;
  on.audit = true;
  const auto sink = on.make_audit_sink(6);
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(finish_audit(sink.get()), 0);  // empty stream audits clean
  EXPECT_EQ(finish_audit(nullptr), 0);
}

}  // namespace
}  // namespace slcube::bench
