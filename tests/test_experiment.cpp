#include "workload/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/ecube.hpp"
#include "baselines/safety_level_router.hpp"
#include "obs/audit.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace slcube::workload {
namespace {

RouterFactory two_router_factory() {
  return [](std::uint64_t) {
    std::vector<std::unique_ptr<routing::Router>> v;
    v.push_back(std::make_unique<baselines::SafetyLevelRouter>());
    v.push_back(std::make_unique<baselines::EcubeRouter>());
    return v;
  };
}

TEST(RoutingSweep, ProducesOnePointPerFaultCount) {
  SweepConfig cfg;
  cfg.dimension = 5;
  cfg.fault_counts = {0, 2, 4};
  cfg.trials = 8;
  cfg.pairs = 8;
  const auto points = run_routing_sweep(cfg, two_router_factory());
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].fault_count, cfg.fault_counts[i]);
    ASSERT_EQ(points[i].per_router.size(), 2u);
    EXPECT_EQ(points[i].per_router[0].first, "safety-level");
    EXPECT_EQ(points[i].per_router[1].first, "e-cube");
  }
}

TEST(RoutingSweep, FaultFreeEveryoneDeliversOptimally) {
  SweepConfig cfg;
  cfg.dimension = 5;
  cfg.fault_counts = {0};
  cfg.trials = 4;
  cfg.pairs = 16;
  const auto points = run_routing_sweep(cfg, two_router_factory());
  for (const auto& [name, metrics] : points[0].per_router) {
    EXPECT_DOUBLE_EQ(metrics.delivered.value(), 1.0) << name;
    EXPECT_DOUBLE_EQ(metrics.optimal.value(), 1.0) << name;
  }
  EXPECT_DOUBLE_EQ(points[0].disconnected.value(), 0.0);
}

TEST(RoutingSweep, SafetyLevelBeatsEcubeUnderFaults) {
  SweepConfig cfg;
  cfg.dimension = 6;
  cfg.fault_counts = {5};
  cfg.trials = 20;
  cfg.pairs = 16;
  const auto points = run_routing_sweep(cfg, two_router_factory());
  const auto& sl = points[0].per_router[0].second;
  const auto& ec = points[0].per_router[1].second;
  EXPECT_DOUBLE_EQ(sl.delivered.value(), 1.0)
      << "fewer than n faults: never fails";
  EXPECT_LT(ec.delivered.value(), 1.0) << "e-cube must lose messages";
}

TEST(RoutingSweep, DeterministicForSeed) {
  SweepConfig cfg;
  cfg.dimension = 5;
  cfg.fault_counts = {3};
  cfg.trials = 6;
  cfg.pairs = 8;
  cfg.seed = 777;
  const auto a = run_routing_sweep(cfg, two_router_factory());
  const auto b = run_routing_sweep(cfg, two_router_factory());
  EXPECT_EQ(a[0].per_router[0].second.delivered.hits(),
            b[0].per_router[0].second.delivered.hits());
  EXPECT_EQ(a[0].per_router[1].second.optimal.hits(),
            b[0].per_router[1].second.optimal.hits());
}

TEST(RoutingSweep, IsolationInjectionDisconnects) {
  SweepConfig cfg;
  cfg.dimension = 5;
  cfg.fault_counts = {5};
  cfg.trials = 6;
  cfg.pairs = 4;
  cfg.injection = InjectionKind::kIsolation;
  const auto points = run_routing_sweep(cfg, two_router_factory());
  EXPECT_DOUBLE_EQ(points[0].disconnected.value(), 1.0);
}

TEST(RoundsSweep, FaultFreePointIsZeroRounds) {
  const auto points = run_rounds_sweep(5, {0}, 5, 1);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].gs_rounds.mean(), 0.0);
  EXPECT_DOUBLE_EQ(points[0].safe_level_n.mean(), 32.0);
}

TEST(RoundsSweep, MoreFaultsFewerSafeNodes) {
  const auto points = run_rounds_sweep(6, {1, 16}, 10, 2);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GT(points[0].safe_level_n.mean(), points[1].safe_level_n.mean());
}

TEST(RoundsSweep, ContainmentVisibleInAverages) {
  const auto points = run_rounds_sweep(6, {6}, 10, 3);
  EXPECT_LE(points[0].safe_lh.mean(), points[0].safe_wf.mean() + 1e-9);
  EXPECT_LE(points[0].safe_wf.mean(), points[0].safe_level_n.mean() + 1e-9);
}

TEST(RoundsSweep, GsRoundsWithinCorollaryBound) {
  const auto points = run_rounds_sweep(7, {3, 10, 30}, 10, 4);
  for (const auto& p : points) {
    EXPECT_LE(p.gs_rounds.max(), 6.0);
  }
}

TEST(RoutingSweep, TimingProfilePopulated) {
  SweepConfig cfg;
  cfg.dimension = 5;
  cfg.fault_counts = {3};
  cfg.trials = 8;
  cfg.pairs = 8;
  const auto points = run_routing_sweep(cfg, two_router_factory());
  const SweepTiming& t = points[0].timing;
  EXPECT_GT(t.wall_ms, 0.0);
  EXPECT_GT(t.utilization, 0.0);
  EXPECT_LE(t.utilization, 1.05);  // headroom for clock granularity
  EXPECT_EQ(t.trial_latency_us.count, cfg.trials);
  EXPECT_GT(t.p50_us(), 0.0);
  EXPECT_LE(t.p50_us(), t.p99_us());
}

TEST(RoutingSweep, EmitsOneSweepPointEventPerPoint) {
  obs::RingBufferSink ring;
  SweepConfig cfg;
  cfg.dimension = 5;
  cfg.fault_counts = {0, 3};
  cfg.trials = 4;
  cfg.pairs = 4;
  cfg.trace = &ring;
  const auto points = run_routing_sweep(cfg, two_router_factory());
  ASSERT_EQ(points.size(), 2u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = std::get<obs::SweepPointEvent>(events[i]);
    EXPECT_STREQ(ev.sweep, "routing");
    EXPECT_EQ(ev.fault_count, cfg.fault_counts[i]);
    EXPECT_GT(ev.wall_ms, 0.0);
    // Per-router metrics flattened as "<router>.<metric>".
    bool found = false;
    for (const auto& [key, value] : ev.values) {
      if (key == "safety-level.delivered_pct") {
        found = true;
        EXPECT_GT(value, 0.0);
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(RoundsSweep, EmitsSweepPointEventsAndTiming) {
  obs::RingBufferSink ring;
  const auto points = run_rounds_sweep(5, {0, 2}, 4, 9, &ring);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GT(points[0].timing.wall_ms, 0.0);
  EXPECT_EQ(points[0].timing.trial_latency_us.count, 4u);
  EXPECT_GT(points[0].timing.utilization, 0.0);
  EXPECT_LE(points[0].timing.utilization, 1.0);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  const auto& ev = std::get<obs::SweepPointEvent>(events[1]);
  EXPECT_STREQ(ev.sweep, "rounds");
  EXPECT_EQ(ev.fault_count, 2u);
  EXPECT_GT(ev.threads, 0u);
  bool found = false;
  for (const auto& [key, value] : ev.values) {
    if (key == "gs_rounds_mean") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(LinkRoutingSweep, ProducesOnePointPerMixAndValidPaths) {
  LinkSweepConfig cfg;
  cfg.dimension = 5;
  cfg.points = {{0, 2}, {2, 2}, {3, 0}};
  cfg.trials = 8;
  cfg.pairs = 8;
  const auto points = run_link_routing_sweep(cfg);
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].node_faults, cfg.points[i].first);
    EXPECT_EQ(points[i].link_faults, cfg.points[i].second);
    EXPECT_GT(points[i].delivered.total(), 0u);
    EXPECT_GT(points[i].delivered.value(), 0.0);
    // Every delivered route must re-verify as a valid fault-free path.
    if (points[i].valid_paths.total() > 0) {
      EXPECT_DOUBLE_EQ(points[i].valid_paths.value(), 1.0);
    }
    EXPECT_EQ(points[i].timing.trial_latency_us.count, cfg.trials);
  }
  // Link faults put both endpoints in N2.
  EXPECT_GT(points[0].n2_nodes.mean(), 0.0);
}

TEST(LinkRoutingSweep, ThreadInvariantAcrossWorkerCounts) {
  LinkSweepConfig cfg;
  cfg.dimension = 6;
  cfg.points = {{2, 3}, {4, 4}};
  cfg.trials = 12;
  cfg.pairs = 8;
  cfg.seed = 4242;
  cfg.threads = 1;
  const auto serial = run_link_routing_sweep(cfg);
  cfg.threads = 4;
  const auto parallel = run_link_routing_sweep(cfg);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].delivered.hits(), parallel[i].delivered.hits());
    EXPECT_EQ(serial[i].delivered.total(), parallel[i].delivered.total());
    EXPECT_EQ(serial[i].optimal.hits(), parallel[i].optimal.hits());
    EXPECT_EQ(serial[i].refused.hits(), parallel[i].refused.hits());
    EXPECT_EQ(serial[i].stuck.hits(), parallel[i].stuck.hits());
    EXPECT_EQ(serial[i].valid_paths.hits(), parallel[i].valid_paths.hits());
    EXPECT_DOUBLE_EQ(serial[i].n2_nodes.mean(), parallel[i].n2_nodes.mean());
  }
}

TEST(LinkRoutingSweep, AuditCleanWithRouteTrace) {
  LinkSweepConfig cfg;
  cfg.dimension = 5;
  cfg.points = {{2, 2}, {3, 4}};
  cfg.trials = 10;
  cfg.pairs = 8;
  obs::AuditSink audit{obs::AuditConfig{cfg.dimension}};
  cfg.route_trace = &audit;  // AuditSink synchronizes internally
  const auto points = run_link_routing_sweep(cfg);
  ASSERT_EQ(points.size(), 2u);
  audit.finish();
  const auto report = audit.report();
  EXPECT_GT(report.routes, 0u);
  EXPECT_TRUE(report.clean()) << [&report] {
    std::ostringstream os;
    report.render_text(os);
    return os.str();
  }();
}

TEST(LinkRoutingSweep, EmitsSweepPointEventsWithLinkValues) {
  obs::RingBufferSink ring;
  LinkSweepConfig cfg;
  cfg.dimension = 5;
  cfg.points = {{1, 2}, {2, 1}};
  cfg.trials = 4;
  cfg.pairs = 4;
  cfg.trace = &ring;
  const auto points = run_link_routing_sweep(cfg);
  ASSERT_EQ(points.size(), 2u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = std::get<obs::SweepPointEvent>(events[i]);
    EXPECT_STREQ(ev.sweep, "links");
    EXPECT_EQ(ev.fault_count, cfg.points[i].first);
    bool link_faults = false;
    bool delivered = false;
    for (const auto& [key, value] : ev.values) {
      if (key == "link_faults") {
        link_faults = true;
        EXPECT_DOUBLE_EQ(value, double(cfg.points[i].second));
      }
      if (key == "delivered_pct") delivered = true;
    }
    EXPECT_TRUE(link_faults);
    EXPECT_TRUE(delivered);
  }
}

TEST(RoutingSweep, TracingDoesNotChangeResults) {
  SweepConfig cfg;
  cfg.dimension = 5;
  cfg.fault_counts = {4};
  cfg.trials = 6;
  cfg.pairs = 8;
  cfg.seed = 99;
  const auto plain = run_routing_sweep(cfg, two_router_factory());
  obs::RingBufferSink ring;
  cfg.trace = &ring;
  const auto traced = run_routing_sweep(cfg, two_router_factory());
  EXPECT_EQ(plain[0].per_router[0].second.delivered.hits(),
            traced[0].per_router[0].second.delivered.hits());
  EXPECT_EQ(plain[0].per_router[1].second.optimal.hits(),
            traced[0].per_router[1].second.optimal.hits());
}

TEST(RoutingSweep, InstrumentationRecordsWithoutChangingResults) {
  SweepConfig cfg;
  cfg.dimension = 5;
  cfg.fault_counts = {0, 3};
  cfg.trials = 6;
  cfg.pairs = 8;
  cfg.seed = 77;
  cfg.threads = 2;
  const auto plain = run_routing_sweep(cfg, two_router_factory());

  obs::Registry reg;
  obs::Profiler prof;
  obs::TimeSeriesRecorder rec(reg);
  cfg.instrumentation = {&reg, &prof, &rec};
  const auto instrumented = run_routing_sweep(cfg, two_router_factory());

  // Telemetry is free: identical aggregates.
  ASSERT_EQ(instrumented.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].per_router[0].second.delivered.hits(),
              instrumented[i].per_router[0].second.delivered.hits());
    EXPECT_EQ(plain[i].per_router[0].second.optimal.hits(),
              instrumented[i].per_router[0].second.optimal.hits());
  }

  // One sample per sweep point, workload counters in the shared registry,
  // and stage attribution from the workers.
  EXPECT_EQ(rec.total_ticks(), cfg.fault_counts.size());
  const auto snap = reg.scrape();
  EXPECT_EQ(snap.counter("exp.trials_run"),
            cfg.fault_counts.size() * cfg.trials);
  EXPECT_GT(snap.counter("route.requests"), 0u);
  const obs::StageReport stages = prof.report();
  ASSERT_FALSE(stages.empty());
  EXPECT_EQ(stages.roots[0].name, "trial");
}

}  // namespace
}  // namespace slcube::workload
