// Distributed EGS over the simulator with faulty links: agreement with
// the centralized core::run_egs oracle, link-level message dropping, and
// end-to-end unicasts on the two-view levels.
#include <gtest/gtest.h>

#include "core/egs.hpp"
#include "fault/injection.hpp"
#include "fault/scenario.hpp"
#include "sim/protocol_gs.hpp"
#include "sim/protocol_unicast.hpp"

namespace slcube::sim {
namespace {

TEST(NetworkLinks, FaultyLinkDropsMessages) {
  const topo::Hypercube q(3);
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(0b000, 0);
  Network net(q, fault::FaultSet(q.num_nodes()), lf);
  net.send(0b000, 0b001, LevelUpdate{0b000, 2});
  unsigned handled = 0;
  net.run([&](const Scheduled&) {
    ++handled;
    return true;
  });
  EXPECT_EQ(handled, 0u);
  EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(NetworkLinks, RegisterBehindFaultyLinkReadsZero) {
  const topo::Hypercube q(3);
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(0b000, 1);
  Network net(q, fault::FaultSet(q.num_nodes()), lf);
  EXPECT_EQ(net.neighbor_register(0b000, 1), 0);
  EXPECT_EQ(net.neighbor_register(0b010, 1), 0);  // other end, same link
  EXPECT_EQ(net.neighbor_register(0b000, 0), 3);  // healthy link
}

TEST(NetworkLinks, InN2Classification) {
  const topo::Hypercube q(4);
  fault::FaultSet f(q.num_nodes(), {0b1111});
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(0b0000, 2);
  Network net(q, f, lf);
  EXPECT_TRUE(net.in_n2(0b0000));
  EXPECT_TRUE(net.in_n2(0b0100));
  EXPECT_FALSE(net.in_n2(0b0001));
  EXPECT_FALSE(net.in_n2(0b1111));  // faulty, not N2
}

void expect_matches_egs_oracle(Network& net) {
  const auto egs =
      core::run_egs(net.cube(), net.faults(), net.link_faults());
  const auto sim = run_egs_synchronous(net);
  for (NodeId a = 0; a < net.cube().num_nodes(); ++a) {
    // level_of == self view for everyone (N1's self view == public).
    ASSERT_EQ(net.level_of(a), egs.self_view[a]) << "node " << a;
    // Neighbors' registers hold the public view.
    net.cube().for_each_neighbor(a, [&](Dim, NodeId b) {
      if (net.faults().is_faulty(b)) return;
      const Dim back = bits::lowest_set(a ^ b);
      ASSERT_EQ(net.neighbor_register(b, back), egs.public_view[a])
          << "register at " << b << " for " << a;
    });
  }
  (void)sim;
}

TEST(DistributedEgs, Fig4MatchesOracle) {
  const auto sc = fault::scenario::fig4();
  Network net(sc.cube, sc.faults, sc.link_faults);
  expect_matches_egs_oracle(net);
}

TEST(DistributedEgs, RandomMixedFaultsMatchOracle) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(515);
  for (int t = 0; t < 15; ++t) {
    const auto f = fault::inject_uniform(q, 4, rng);
    const auto lf = fault::inject_links_uniform(q, 4, rng);
    Network net(q, f, lf);
    expect_matches_egs_oracle(net);
  }
}

TEST(DistributedEgs, NoLinkFaultsReducesToPlainGs) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(516);
  const auto f = fault::inject_uniform(q, 6, rng);
  Network a(q, f);
  Network b(q, f, fault::LinkFaultSet(q));
  const auto ra = run_gs_synchronous(a);
  const auto rb = run_egs_synchronous(b);
  EXPECT_EQ(ra.rounds, rb.rounds);
  for (NodeId x = 0; x < q.num_nodes(); ++x) {
    EXPECT_EQ(a.level_of(x), b.level_of(x));
  }
}

TEST(DistributedEgs, UnicastOnTwoViewLevelsDelivers) {
  // After distributed EGS, route a unicast whose source is in N1 and
  // whose path the centralized EGS router would accept: the simulated
  // hop-by-hop forwarding (which reads public-view registers) delivers
  // on the same route.
  const auto sc = fault::scenario::fig4();
  Network net(sc.cube, sc.faults, sc.link_faults);
  run_egs_synchronous(net);
  const auto egs = core::run_egs(sc.cube, sc.faults, sc.link_faults);
  // 1011 -> 1111: pure N1 traffic.
  const auto oracle = core::route_unicast_egs(
      sc.cube, sc.faults, sc.link_faults, egs, 0b1011, 0b1111);
  ASSERT_TRUE(oracle.delivered());
  const auto sim = route_unicast_sim(net, 0b1011, 0b1111);
  EXPECT_EQ(sim.status, SimRouteStatus::kDelivered);
  EXPECT_EQ(sim.path, oracle.path);
}

TEST(DistributedEgs, Fig4PaperRouteHopByHop) {
  // The full Fig. 4 story executed as messages: distributed EGS, then the
  // suboptimal unicast 1101 -> 1000 whose destination is an N2 node that
  // every register reports as level 0 — the footnote-3 final hop across
  // the healthy (1010, 1000) link delivers it.
  const auto sc = fault::scenario::fig4();
  Network net(sc.cube, sc.faults, sc.link_faults);
  run_egs_synchronous(net);
  const auto r = route_unicast_sim(net, 0b1101, 0b1000);
  ASSERT_EQ(r.status, SimRouteStatus::kDelivered);
  EXPECT_EQ(r.path, (analysis::Path{0b1101, 0b1111, 0b1011, 0b1010,
                                    0b1000}));
  EXPECT_EQ(r.latency(), 4u);
}

TEST(DistributedEgs, DeadLinkDestinationRoutedAroundSuboptimally) {
  // 1001 -> 1000 across the dead link itself: the source's local decision
  // voids C1/C2 (the only preferred dimension is its own dead wire) and
  // falls back to C3 via the level-4 spare 1011 — delivery in H + 2 = 3
  // hops around the dead link, matching the centralized oracle.
  const auto sc = fault::scenario::fig4();
  Network net(sc.cube, sc.faults, sc.link_faults);
  run_egs_synchronous(net);
  const auto egs = core::run_egs(sc.cube, sc.faults, sc.link_faults);
  const auto oracle = core::route_unicast_egs(
      sc.cube, sc.faults, sc.link_faults, egs, 0b1001, 0b1000);
  ASSERT_EQ(oracle.status, core::RouteStatus::kDeliveredSuboptimal);
  const auto r = route_unicast_sim(net, 0b1001, 0b1000);
  ASSERT_EQ(r.status, SimRouteStatus::kDelivered);
  EXPECT_EQ(r.path.size(), 4u);  // 3 hops
  EXPECT_EQ(r.path, oracle.path);
}

}  // namespace
}  // namespace slcube::sim
