// Definitions 2 (Lee-Hayes) and 3 (Wu-Fernandez), their fixed points,
// round counts, and the Section 2.3 containment chain
// LH-safe ⊆ WF-safe ⊆ {level-n nodes}.
#include "core/safe_node.hpp"

#include <gtest/gtest.h>

#include "core/global_status.hpp"
#include "core/properties.hpp"
#include "fault/injection.hpp"

namespace slcube::core {
namespace {

TEST(SafeNode, FaultFreeEverythingSafeBothRules) {
  const topo::Hypercube q(5);
  const fault::FaultSet none(q.num_nodes());
  for (const auto rule :
       {SafeNodeRule::kLeeHayes, SafeNodeRule::kWuFernandez}) {
    const auto r = compute_safe_nodes(q, none, rule);
    EXPECT_EQ(r.safe_count(), q.num_nodes());
    EXPECT_EQ(r.rounds_to_stabilize, 0u);
  }
}

TEST(SafeNode, FaultyNodesNeverSafe) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {3, 7});
  for (const auto rule :
       {SafeNodeRule::kLeeHayes, SafeNodeRule::kWuFernandez}) {
    const auto r = compute_safe_nodes(q, f, rule);
    EXPECT_FALSE(r.safe[3]);
    EXPECT_FALSE(r.safe[7]);
  }
}

TEST(SafeNode, LeeHayesTwoFaultyNeighborsUnsafe) {
  // Node 0001 in Q3 with faulty 0000 and 0011 has two faulty neighbors.
  const topo::Hypercube q(3);
  const fault::FaultSet f(q.num_nodes(), {0b000, 0b011});
  const auto lh = compute_safe_nodes(q, f, SafeNodeRule::kLeeHayes);
  EXPECT_FALSE(lh.safe[0b001]);
  // Wu-Fernandez agrees here (two FAULTY neighbors).
  const auto wf = compute_safe_nodes(q, f, SafeNodeRule::kWuFernandez);
  EXPECT_FALSE(wf.safe[0b001]);
}

TEST(SafeNode, WuFernandezToleratesOneFaultTwoUnsafe) {
  // Definition 3 needs THREE unsafe-or-faulty neighbors (or two faulty);
  // Definition 2 already trips at two unsafe-or-faulty. On the Section
  // 2.3 example the gap is dramatic: LH empties out, WF keeps 9 nodes.
  // (The paper's prose says WF keeps 8, excluding 1100 — but 1100 has no
  // faulty neighbor and only two unsafe ones, so the printed Definition 3
  // keeps it safe; DESIGN.md erratum #4.)
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0000, 0b0110, 0b1111});
  const auto lh = compute_safe_nodes(q, f, SafeNodeRule::kLeeHayes);
  const auto wf = compute_safe_nodes(q, f, SafeNodeRule::kWuFernandez);
  EXPECT_EQ(lh.safe_count(), 0u);
  EXPECT_EQ(wf.safe_count(), 9u);
  EXPECT_TRUE(wf.safe[0b1100]);
  // The safety-level definition also keeps 1100 at level 4.
  EXPECT_TRUE(compute_safety_levels(q, f).is_safe(0b1100));
}

class ContainmentSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ContainmentSweep, ChainHoldsUnderRandomFaults) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 31 + 1);
  for (int t = 0; t < 25; ++t) {
    const auto f = fault::inject_uniform(q, rng.below(q.num_nodes() / 2),
                                         rng);
    EXPECT_EQ(check_safe_set_containment(q, f), "");
  }
}

INSTANTIATE_TEST_SUITE_P(Dims3To8, ContainmentSweep,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u));

TEST(Containment, ExhaustiveQ4UpTo3Faults) {
  const topo::Hypercube q(4);
  for (std::uint32_t mask = 0; mask < (1u << 16); ++mask) {
    if (bits::popcount(mask) > 3) continue;
    fault::FaultSet f(q.num_nodes());
    for (NodeId a = 0; a < 16; ++a) {
      if ((mask >> a) & 1u) f.mark_faulty(a);
    }
    ASSERT_EQ(check_safe_set_containment(q, f), "") << "mask " << mask;
  }
}

TEST(SafeNode, RoundsComparisonGsNeverSlower) {
  // Section 2.3: the safety level needs at most n-1 rounds; the safe-node
  // definitions can need many more. Verify GS's bound holds while
  // tracking that the LH/WF rounds stay within their O(n^2)-ish envelope.
  const topo::Hypercube q(7);
  Xoshiro256ss rng(71);
  for (int t = 0; t < 15; ++t) {
    const auto f = fault::inject_uniform(q, 10, rng);
    const auto gs = run_gs(q, f);
    EXPECT_LE(gs.rounds_to_stabilize, q.dimension() - 1);
    const auto lh = compute_safe_nodes(q, f, SafeNodeRule::kLeeHayes);
    const auto wf = compute_safe_nodes(q, f, SafeNodeRule::kWuFernandez);
    // Monotone shrink bounds every rule by the healthy node count.
    EXPECT_LE(lh.rounds_to_stabilize, f.healthy_count());
    EXPECT_LE(wf.rounds_to_stabilize, f.healthy_count());
  }
}

TEST(SafeNode, LeeHayesCascadeCanExceedGsBound) {
  // A "staircase" fault pattern makes the LH unsafe classification cascade
  // farther than n-1 rounds, demonstrating why the paper calls safety
  // levels cheaper to compute. Two adjacent faults in Q2 unsafe-ify
  // everything in a chain.
  const topo::Hypercube q(2);
  const fault::FaultSet f(q.num_nodes(), {0b00});
  // Q2, one fault: nodes 01 and 10 have 1 faulty neighbor (safe under
  // LH); node 11 has none. All healthy nodes stay safe.
  const auto lh = compute_safe_nodes(q, f, SafeNodeRule::kLeeHayes);
  EXPECT_EQ(lh.safe_count(), 3u);
}

TEST(SafeNode, SafeNodesListMatchesFlags) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0000, 0b0110, 0b1111});
  const auto wf = compute_safe_nodes(q, f, SafeNodeRule::kWuFernandez);
  const auto list = wf.safe_nodes();
  EXPECT_EQ(list.size(), wf.safe_count());
  for (const NodeId a : list) EXPECT_TRUE(wf.safe[a]);
}

}  // namespace
}  // namespace slcube::core
