// core::EgsOracle — the incremental two-view EGS table must be
// bit-identical to a from-scratch run_egs() after ANY interleaving of
// node add/remove, link fail/recover, mixed batches, and retargets.
// Theorem 1 pins the public view (the pseudo-fault fixed point is
// unique) and the self view is a pure function of the public view plus
// the link set, so there is exactly one right answer per configuration
// and a randomized sweep leaves the cascade + dirty-set logic nowhere
// to hide.
#include "core/egs_oracle.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "fault/injection.hpp"

namespace slcube::core {
namespace {

void expect_matches_scratch(const EgsOracle& oracle, const char* what) {
  const EgsResult scratch =
      run_egs(oracle.cube(), oracle.faults(), oracle.links());
  ASSERT_EQ(oracle.public_view(), scratch.public_view)
      << what << ": public view diverged from run_egs (dim "
      << oracle.cube().dimension() << ", " << oracle.faults().count()
      << " node faults, " << oracle.links().count() << " link faults)";
  ASSERT_EQ(oracle.self_view(), scratch.self_view)
      << what << ": self view diverged from run_egs (dim "
      << oracle.cube().dimension() << ")";
  for (NodeId a = 0; a < oracle.cube().num_nodes(); ++a) {
    ASSERT_EQ(oracle.in_n2(a), static_cast<bool>(scratch.in_n2[a]))
        << what << ": N2 membership diverged at node " << a;
  }
}

TEST(EgsOracle, FaultFreeStartIsAllSafe) {
  const topo::Hypercube q(5);
  const EgsOracle oracle(q);
  EXPECT_EQ(oracle.faults().count(), 0u);
  EXPECT_EQ(oracle.links().count(), 0u);
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    EXPECT_EQ(oracle.public_view()[a], 5);
    EXPECT_EQ(oracle.self_view()[a], 5);
    EXPECT_FALSE(oracle.in_n2(a));
  }
}

TEST(EgsOracle, ConstructionAtArbitraryConfigurationMatchesScratch) {
  Xoshiro256ss rng(0xE65AB1E);
  for (unsigned dim = 3; dim <= 8; ++dim) {
    const topo::Hypercube q(dim);
    for (int t = 0; t < 20; ++t) {
      const auto faults =
          fault::inject_uniform(q, rng.below(q.num_nodes() / 2), rng);
      const auto links = fault::inject_links_uniform(q, rng.below(2 * dim), rng);
      const EgsOracle oracle(q, faults, links);
      expect_matches_scratch(oracle, "constructor");
    }
  }
}

TEST(EgsOracle, SingleLinkFailThenRecoverRoundTrips) {
  const topo::Hypercube q(4);
  EgsOracle oracle(q);
  oracle.fail_link(0b0000, 1);
  expect_matches_scratch(oracle, "fail_link");
  // Both (healthy) endpoints enter N2 and self-declare 0 publicly.
  EXPECT_TRUE(oracle.in_n2(0b0000));
  EXPECT_TRUE(oracle.in_n2(0b0010));
  EXPECT_EQ(oracle.public_view()[0b0000], 0);
  EXPECT_EQ(oracle.public_view()[0b0010], 0);
  EXPECT_GT(oracle.self_view()[0b0000], 0);
  oracle.recover_link(0b0000, 1);
  expect_matches_scratch(oracle, "recover_link");
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    EXPECT_EQ(oracle.public_view()[a], 4) << "node " << a;
    EXPECT_EQ(oracle.self_view()[a], 4) << "node " << a;
    EXPECT_FALSE(oracle.in_n2(a)) << "node " << a;
  }
}

TEST(EgsOracle, NodeEventsAcrossN2Membership) {
  const topo::Hypercube q(5);
  EgsOracle oracle(q);
  oracle.fail_link(7, 0);
  ASSERT_TRUE(oracle.in_n2(7));
  // An N2 node dying is a pure bookkeeping move: it was already
  // pseudo-faulty, so the public view must not change at all.
  const SafetyLevels before = oracle.public_view();
  oracle.add_fault(7);
  EXPECT_FALSE(oracle.in_n2(7));
  EXPECT_EQ(oracle.public_view(), before);
  expect_matches_scratch(oracle, "add_fault on N2 node");
  // Recovery drops it straight back into N2 (the link is still dead).
  oracle.remove_fault(7);
  EXPECT_TRUE(oracle.in_n2(7));
  EXPECT_EQ(oracle.public_view(), before);
  expect_matches_scratch(oracle, "remove_fault into N2");
}

TEST(EgsOracle, ApplyMixedBatchMatchesScratch) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(0xBA7C4);
  EgsOracle oracle(q, fault::inject_uniform(q, 4, rng),
                   fault::inject_links_uniform(q, 4, rng));
  // One batch mixing node toggles with link toggles, including a link
  // incident to a toggled node.
  std::vector<NodeId> node_toggles;
  for (const NodeId a : oracle.faults().faulty_nodes()) {
    node_toggles.push_back(a);  // recover...
    if (node_toggles.size() == 2) break;
  }
  node_toggles.push_back(oracle.faults().healthy_nodes().front());  // ...kill
  const std::vector<EgsOracle::LinkToggle> link_toggles = {
      {node_toggles.back(), 0}, {node_toggles.front(), 3}};
  oracle.apply(node_toggles, link_toggles);
  expect_matches_scratch(oracle, "apply(mixed batch)");
}

TEST(EgsOracle, RetargetSmallDeltaCascadesWithoutRebuild) {
  const topo::Hypercube q(8);
  Xoshiro256ss rng(0x5E7E65);
  EgsOracle oracle(q, fault::inject_uniform(q, 10, rng),
                   fault::inject_links_uniform(q, 6, rng));
  fault::FaultSet target_f = oracle.faults();
  fault::LinkFaultSet target_l = oracle.links();
  // Evolve one event at a time: always below the rebuild crossover.
  for (int step = 0; step < 30; ++step) {
    if (rng.chance(0.5)) {
      if (target_f.count() > 0 && rng.chance(0.4)) {
        const auto f = target_f.faulty_nodes();
        target_f.mark_healthy(f[rng.below(f.size())]);
      } else {
        const auto h = target_f.healthy_nodes();
        target_f.mark_faulty(h[rng.below(h.size())]);
      }
    } else {
      const auto faulty = target_l.faulty_links();
      if (!faulty.empty() && rng.chance(0.4)) {
        const auto [a, d] = faulty[rng.below(faulty.size())];
        target_l.mark_healthy(a, d);
      } else {
        target_l.mark_faulty(static_cast<NodeId>(rng.below(q.num_nodes())),
                             static_cast<Dim>(rng.below(q.dimension())));
      }
    }
    oracle.retarget(target_f, target_l);
    expect_matches_scratch(oracle, "retarget(small delta)");
  }
  EXPECT_EQ(oracle.pseudo_stats().rebuilds, 0u);
  EXPECT_GT(oracle.pseudo_stats().cascades, 0u);
}

TEST(EgsOracle, RetargetLargeDeltaFallsBackToRebuild) {
  const topo::Hypercube q(8);
  Xoshiro256ss rng(0xFA11BACC);
  EgsOracle oracle(q, fault::inject_uniform(q, 40, rng),
                   fault::inject_links_uniform(q, 10, rng));
  // Independent samples share almost nothing: the pseudo symmetric
  // difference is far past num_nodes/48, so the rebuild fallback must
  // fire — and the views must still land on the fixed point.
  const auto target_f = fault::inject_uniform(q, 40, rng);
  const auto target_l = fault::inject_links_uniform(q, 10, rng);
  oracle.retarget(target_f, target_l);
  EXPECT_EQ(oracle.pseudo_stats().rebuilds, 1u);
  EXPECT_EQ(oracle.faults(), target_f);
  expect_matches_scratch(oracle, "retarget(rebuild fallback)");
}

// Same accounting contract as SafetyOracle: retargeting to the current
// configuration (and apply with empty spans) is a free no-op — no
// events counted, no cascade work, no self-view refreshes.
TEST(EgsOracle, RetargetToCurrentConfigurationIsFree) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(0x40F);
  EgsOracle oracle(q, fault::inject_uniform(q, 5, rng),
                   fault::inject_links_uniform(q, 3, rng));
  const EgsOracle::Stats before = oracle.stats();
  const std::uint64_t rebuilds_before = oracle.pseudo_stats().rebuilds;
  oracle.retarget(oracle.faults(), oracle.links());
  oracle.apply({}, {});
  EXPECT_EQ(oracle.stats().node_events, before.node_events);
  EXPECT_EQ(oracle.stats().link_events, before.link_events);
  EXPECT_EQ(oracle.stats().self_refreshes, before.self_refreshes);
  EXPECT_EQ(oracle.pseudo_stats().rebuilds, rebuilds_before);
  expect_matches_scratch(oracle, "retarget to current");
}

// EgsOracle hands its rebuild decision to the shared predicate on the
// *pseudo* delta, which is exactly the delta the inner
// SafetyOracle::retarget recomputes — so whenever the outer threshold
// fires, the inner one must fire too (one rebuild, never a monster
// cascade). A batch of node kills just past the crossover pins it.
TEST(EgsOracle, PseudoDeltaThresholdAlignsWithInnerRetarget) {
  const topo::Hypercube q(8);  // 256 nodes: crossover at ceil(256/48) = 6
  EgsOracle oracle(q);
  const std::uint64_t crossover =
      (q.num_nodes() + core::kRetargetRebuildFactor - 1) /
      core::kRetargetRebuildFactor;
  ASSERT_TRUE(core::retarget_prefers_rebuild(crossover, q.num_nodes()));
  std::vector<NodeId> kills;
  for (NodeId a = 0; kills.size() < crossover; ++a) kills.push_back(a);
  oracle.apply(kills, {});
  EXPECT_EQ(oracle.pseudo_stats().rebuilds, 1u)
      << "outer threshold fired but the inner retarget cascaded";
  expect_matches_scratch(oracle, "threshold-aligned batch");
  // One node short of the crossover must cascade, not rebuild.
  EgsOracle below(q);
  std::vector<NodeId> fewer(kills.begin(), kills.end() - 1);
  below.apply(fewer, {});
  EXPECT_EQ(below.pseudo_stats().rebuilds, 0u);
  expect_matches_scratch(below, "below-threshold batch");
}

TEST(EgsOracle, StatsAccountForEventsAndCascades) {
  const topo::Hypercube q(6);
  EgsOracle oracle(q);
  oracle.fail_link(0, 0);
  EXPECT_EQ(oracle.stats().link_events, 1u);
  EXPECT_EQ(oracle.stats().node_events, 0u);
  EXPECT_EQ(oracle.stats().n2_enters, 2u);  // both endpoints were healthy
  // Both endpoints' self views need a NODE_STATUS evaluation.
  EXPECT_GE(oracle.stats().self_recomputes, 2u);
  EXPECT_GE(oracle.stats().self_refreshes, oracle.stats().self_recomputes);
  oracle.add_fault(1);  // the dim-0 neighbor of node 0 dies
  EXPECT_EQ(oracle.stats().node_events, 1u);
  EXPECT_EQ(oracle.stats().n2_exits, 1u);  // node 1 left N2 by dying
  oracle.recover_link(0, 0);
  EXPECT_EQ(oracle.stats().link_events, 2u);
  // Node 0 left N2; node 1 is faulty, so only one exit is new.
  EXPECT_EQ(oracle.stats().n2_exits, 2u);
  // Accounting invariant: enters - exits == current |N2|.
  std::uint64_t n2_now = 0;
  for (NodeId a = 0; a < q.num_nodes(); ++a) n2_now += oracle.in_n2(a);
  EXPECT_EQ(oracle.stats().n2_enters - oracle.stats().n2_exits, n2_now);
  expect_matches_scratch(oracle, "stats scenario");
}

// The headline property test: randomized operation sequences across
// dimensions 3..8, mixing single node add/remove, single link
// fail/recover, mixed batches, and retargets, checking bit-identity of
// BOTH views (and N2 membership) with from-scratch run_egs after EVERY
// operation, plus the enter/exit accounting invariant.
TEST(EgsOracle, RandomizedInterleavingsMatchScratch) {
  struct Budget {
    unsigned dim;
    int sequences;
  };
  constexpr Budget kBudget[] = {{3, 800}, {4, 800}, {5, 600},
                                {6, 400}, {7, 200}, {8, 100}};
  Xoshiro256ss rng(0xE6C0FFEE);
  for (const auto& [dim, sequences] : kBudget) {
    const topo::Hypercube q(dim);
    const std::uint64_t num = q.num_nodes();
    for (int s = 0; s < sequences; ++s) {
      auto mirror_f = fault::inject_uniform(q, rng.below(num / 4), rng);
      auto mirror_l = fault::inject_links_uniform(q, rng.below(dim), rng);
      EgsOracle oracle(q, mirror_f, mirror_l);
      std::uint64_t initial_n2 = 0;
      for (NodeId a = 0; a < num; ++a) initial_n2 += oracle.in_n2(a);
      const int ops = 3 + static_cast<int>(rng.below(6));
      for (int op = 0; op < ops; ++op) {
        switch (rng.below(6)) {
          case 0: {  // single node failure
            const auto healthy = mirror_f.healthy_nodes();
            if (healthy.empty()) break;
            const NodeId a = healthy[rng.below(healthy.size())];
            mirror_f.mark_faulty(a);
            oracle.add_fault(a);
            break;
          }
          case 1: {  // single node recovery
            const auto faulty = mirror_f.faulty_nodes();
            if (faulty.empty()) break;
            const NodeId a = faulty[rng.below(faulty.size())];
            mirror_f.mark_healthy(a);
            oracle.remove_fault(a);
            break;
          }
          case 2: {  // single link failure
            const auto a = static_cast<NodeId>(rng.below(num));
            const auto d = static_cast<Dim>(rng.below(dim));
            if (mirror_l.is_faulty(a, d)) break;
            mirror_l.mark_faulty(a, d);
            oracle.fail_link(a, d);
            break;
          }
          case 3: {  // single link recovery
            const auto faulty = mirror_l.faulty_links();
            if (faulty.empty()) break;
            const auto [a, d] = faulty[rng.below(faulty.size())];
            mirror_l.mark_healthy(a, d);
            oracle.recover_link(a, d);
            break;
          }
          case 4: {  // mixed batch toggle
            std::vector<NodeId> nodes;
            std::vector<EgsOracle::LinkToggle> links;
            const int k = 1 + static_cast<int>(rng.below(4));
            for (int i = 0; i < k; ++i) {
              if (rng.chance(0.5)) {
                const auto a = static_cast<NodeId>(rng.below(num));
                // A batch may not toggle the same node twice (that
                // would be a net no-op the mirror can't express).
                if (std::find(nodes.begin(), nodes.end(), a) != nodes.end())
                  continue;
                nodes.push_back(a);
                if (mirror_f.is_faulty(a)) {
                  mirror_f.mark_healthy(a);
                } else {
                  mirror_f.mark_faulty(a);
                }
              } else {
                const auto a = static_cast<NodeId>(rng.below(num));
                const auto d = static_cast<Dim>(rng.below(dim));
                bool dup = false;
                for (const auto& lt : links) {
                  if (lt.dim == d &&
                      (lt.node == a || lt.node == q.neighbor(a, d))) {
                    dup = true;
                  }
                }
                if (dup) continue;
                links.push_back({a, d});
                if (mirror_l.is_faulty(a, d)) {
                  mirror_l.mark_healthy(a, d);
                } else {
                  mirror_l.mark_faulty(a, d);
                }
              }
            }
            oracle.apply(nodes, links);
            break;
          }
          default: {  // retarget (occasionally big enough to rebuild)
            mirror_f = fault::inject_uniform(q, rng.below(num / 4), rng);
            mirror_l = fault::inject_links_uniform(q, rng.below(2 * dim), rng);
            oracle.retarget(mirror_f, mirror_l);
            break;
          }
        }
        ASSERT_EQ(oracle.faults(), mirror_f);
        const EgsResult scratch = run_egs(q, mirror_f, mirror_l);
        ASSERT_EQ(oracle.public_view(), scratch.public_view)
            << "dim " << dim << " sequence " << s << " op " << op;
        ASSERT_EQ(oracle.self_view(), scratch.self_view)
            << "dim " << dim << " sequence " << s << " op " << op;
        for (NodeId a = 0; a < num; ++a) {
          ASSERT_EQ(oracle.in_n2(a), static_cast<bool>(scratch.in_n2[a]))
              << "dim " << dim << " sequence " << s << " op " << op
              << " node " << a;
        }
        // Enter/exit accounting: the counters track post-construction
        // moves only, so initial + enters must equal current + exits.
        std::uint64_t n2_now = 0;
        for (NodeId a = 0; a < num; ++a) n2_now += oracle.in_n2(a);
        ASSERT_EQ(initial_n2 + oracle.stats().n2_enters,
                  n2_now + oracle.stats().n2_exits)
            << "dim " << dim << " sequence " << s << " op " << op;
      }
    }
  }
}

}  // namespace
}  // namespace slcube::core
