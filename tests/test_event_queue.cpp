#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace slcube::sim {
namespace {

Envelope env(NodeId from, NodeId to) {
  return Envelope{from, to, LevelUpdate{from, 1}};
}

TEST(EventQueue, EmptyByDefault) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.schedule(30, env(0, 1));
  q.schedule(10, env(0, 2));
  q.schedule(20, env(0, 3));
  EXPECT_EQ(q.pop()->envelope.to, 2u);
  EXPECT_EQ(q.pop()->envelope.to, 3u);
  EXPECT_EQ(q.pop()->envelope.to, 1u);
}

TEST(EventQueue, FifoWithinSameTime) {
  EventQueue q;
  for (NodeId i = 0; i < 10; ++i) q.schedule(5, env(0, i));
  for (NodeId i = 0; i < 10; ++i) {
    EXPECT_EQ(q.pop()->envelope.to, i) << "FIFO tie-break broken";
  }
}

TEST(EventQueue, NextTime) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), 0u);
  q.schedule(42, env(0, 1));
  q.schedule(17, env(0, 2));
  EXPECT_EQ(q.next_time(), 17u);
}

TEST(EventQueue, SizeTracksContents) {
  EventQueue q;
  q.schedule(1, env(0, 1));
  q.schedule(2, env(0, 2));
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue q;
  q.schedule(10, env(0, 1));
  q.schedule(5, env(0, 2));
  EXPECT_EQ(q.pop()->envelope.to, 2u);
  q.schedule(7, env(0, 3));
  EXPECT_EQ(q.pop()->envelope.to, 3u);
  EXPECT_EQ(q.pop()->envelope.to, 1u);
}

TEST(EventQueue, CarriesBodyVariant) {
  EventQueue q;
  q.schedule(1, Envelope{4, 5, UnicastPacket{9, 4, 7, 0b11, false}});
  const auto ev = q.pop();
  const auto& pkt = std::get<UnicastPacket>(ev->envelope.body);
  EXPECT_EQ(pkt.id, 9u);
  EXPECT_EQ(pkt.dest, 7u);
  EXPECT_EQ(pkt.nav, 0b11u);
}

}  // namespace
}  // namespace slcube::sim
