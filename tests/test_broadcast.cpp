// The broadcast extension (safety levels' original application, [9]).
#include "core/broadcast.hpp"

#include <gtest/gtest.h>

#include "core/global_status.hpp"
#include "fault/injection.hpp"

namespace slcube::core {
namespace {

TEST(Broadcast, FaultFreeIsExactBinomial) {
  for (unsigned n = 1; n <= 8; ++n) {
    const topo::Hypercube q(n);
    const fault::FaultSet none(q.num_nodes());
    const auto lv = compute_safety_levels(q, none);
    const auto r = broadcast(q, none, lv, 0);
    EXPECT_EQ(r.reached_count(), q.num_nodes());
    EXPECT_EQ(r.messages, q.num_nodes() - 1);  // one receive per node
    EXPECT_EQ(r.missed, 0u);
  }
}

TEST(Broadcast, FaultFreeFromAnySource) {
  const topo::Hypercube q(5);
  const fault::FaultSet none(q.num_nodes());
  const auto lv = compute_safety_levels(q, none);
  for (NodeId s = 0; s < q.num_nodes(); ++s) {
    const auto r = broadcast(q, none, lv, s);
    EXPECT_EQ(r.reached_count(), q.num_nodes());
    EXPECT_EQ(r.messages, q.num_nodes() - 1);
  }
}

TEST(Broadcast, SingleFaultFullHealthyCoverage) {
  const topo::Hypercube q(5);
  for (NodeId dead = 0; dead < q.num_nodes(); ++dead) {
    fault::FaultSet f(q.num_nodes(), {dead});
    const auto lv = compute_safety_levels(q, f);
    const NodeId src = dead == 0 ? 1 : 0;
    const auto r = broadcast(q, f, lv, src);
    EXPECT_EQ(r.missed, 0u) << "dead " << dead;
    EXPECT_EQ(r.reached_count(), q.num_nodes() - 1);
    EXPECT_FALSE(r.reached[dead]);
  }
}

class BroadcastSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(BroadcastSweep, FewFaultsFromSafeSourceCoversEverything) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 271);
  for (int t = 0; t < 15; ++t) {
    const auto f = fault::inject_uniform(q, n - 1, rng);
    const auto lv = compute_safety_levels(q, f);
    // Pick a safe source (exists: Property 2 implies safe nodes exist
    // with < n faults).
    const auto safe = lv.safe_nodes();
    ASSERT_FALSE(safe.empty());
    const auto r = broadcast(q, f, lv, safe.front());
    EXPECT_EQ(r.missed, 0u) << n << "-cube trial " << t;
  }
}

TEST_P(BroadcastSweep, HeavyFaultsDegradeGracefully) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 373);
  for (int t = 0; t < 8; ++t) {
    const auto f = fault::inject_uniform(q, q.num_nodes() / 4, rng);
    const auto lv = compute_safety_levels(q, f);
    NodeId src = 0;
    while (f.is_faulty(src)) ++src;
    const auto r = broadcast(q, f, lv, src);
    // Every reached node is healthy and every healthy node is reached or
    // counted missed.
    std::uint64_t reached = 0;
    for (NodeId a = 0; a < q.num_nodes(); ++a) {
      if (r.reached[a]) {
        EXPECT_TRUE(f.is_healthy(a));
        ++reached;
      }
    }
    EXPECT_EQ(reached + r.missed, f.healthy_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Dims3To8, BroadcastSweep,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u, 8u));

TEST(Broadcast, SourceCountsAsReached) {
  const topo::Hypercube q(3);
  const fault::FaultSet none(q.num_nodes());
  const auto lv = compute_safety_levels(q, none);
  const auto r = broadcast(q, none, lv, 5);
  EXPECT_TRUE(r.reached[5]);
}

}  // namespace
}  // namespace slcube::core
