// slcube::obs telemetry — the time-series recorder (explicit ticks and
// cadence mode, ring bound, concurrent writers), the JSONL / Prometheus
// exporters, the stage profiler (tree shape, self/total attribution,
// cross-thread merge, guard nesting), and the dashboard renderer.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/sweep_engine.hpp"
#include "obs/dashboard.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"

namespace slcube::obs {
namespace {

std::vector<ParsedEvent> parse_lines(const std::string& text) {
  std::istringstream is(text);
  std::vector<ParsedEvent> out;
  for (std::string line; std::getline(is, line);) {
    auto parsed = parse_jsonl_line(line);
    EXPECT_TRUE(parsed.has_value()) << line;
    if (parsed) out.push_back(std::move(*parsed));
  }
  return out;
}

// --- recorder --------------------------------------------------------------

TEST(Telemetry, ExplicitTicksRecordOrderedSamples) {
  Registry reg;
  const Counter c = reg.counter("t.count");
  TimeSeriesRecorder rec(reg);
  EXPECT_FALSE(rec.timed());
  c.inc(2);
  rec.tick();
  c.inc(3);
  rec.tick();
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.total_ticks(), 2u);
  const auto samples = rec.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].tick, 0u);
  EXPECT_EQ(samples[1].tick, 1u);
  EXPECT_EQ(samples[0].snapshot.counter("t.count"), 2u);
  EXPECT_EQ(samples[1].snapshot.counter("t.count"), 5u);
}

TEST(Telemetry, RingDropsOldestPastCapacity) {
  Registry reg;
  RecorderOptions opts;
  opts.capacity = 4;
  TimeSeriesRecorder rec(reg, opts);
  for (int i = 0; i < 10; ++i) rec.tick();
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_ticks(), 10u);
  const auto samples = rec.samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().tick, 6u);  // oldest surviving
  EXPECT_EQ(samples.back().tick, 9u);
}

TEST(Telemetry, CadenceThreadSamplesOnItsOwn) {
  Registry reg;
  reg.counter("cad.count").inc();
  RecorderOptions opts;
  opts.sample_interval_ms = 1;
  TimeSeriesRecorder rec(reg, opts);
  EXPECT_TRUE(rec.timed());
  rec.start();
  // Wait for at least one sample rather than a fixed sleep (slow CI).
  for (int spin = 0; spin < 2000 && rec.total_ticks() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rec.stop();
  rec.stop();  // idempotent
  EXPECT_GT(rec.total_ticks(), 0u);
  const auto samples = rec.samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_GE(samples.back().t_ms, 0.0);
}

TEST(Telemetry, RecorderSurvivesConcurrentWritersAndTicks) {
  Registry reg;
  const Counter c = reg.counter("mt.count");
  const Histogram h = reg.histogram("mt.hist", exponential_bounds(1, 2, 8));
  TimeSeriesRecorder rec(reg);
  constexpr unsigned kThreads = 4, kPerThread = 2000;
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(2.0);
      }
    });
  }
  for (int i = 0; i < 50; ++i) rec.tick();
  for (auto& w : writers) w.join();
  rec.tick();  // final sample sees every write
  const auto samples = rec.samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(samples.back().snapshot.counter("mt.count"),
            kThreads * kPerThread);
  // Monotone counter across samples: ticks are totally ordered.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].snapshot.counter("mt.count"),
              samples[i - 1].snapshot.counter("mt.count"));
  }
}

TEST(Telemetry, HooksAreNullSafe) {
  const InstrumentationHooks none;
  EXPECT_FALSE(none.enabled());
  none.tick();  // must be a no-op, not a crash
  Registry reg;
  InstrumentationHooks some;
  some.registry = &reg;
  EXPECT_TRUE(some.enabled());
}

// --- exporters -------------------------------------------------------------

TEST(Telemetry, TimeseriesJsonlDeltasAndIntervalStats) {
  Registry reg;
  const Counter c = reg.counter("x.count");
  const Histogram h = reg.histogram("lat", exponential_bounds(1, 2, 10));
  TimeSeriesRecorder rec(reg);
  c.inc(10);
  h.observe(3.0);
  rec.tick();
  c.inc(5);
  h.observe(3.0);
  h.observe(3.0);
  rec.tick();
  std::ostringstream os;
  write_timeseries_jsonl(os, rec.samples(), /*include_wall_time=*/false);
  const auto events = parse_lines(os.str());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind(), "ts_sample");
  EXPECT_FALSE(events[0].has("t_ms"));  // deterministic dialect
  EXPECT_EQ(events[0].integer("c.x.count"), 10);
  EXPECT_EQ(events[0].integer("d.x.count"), 10);  // first delta = absolute
  EXPECT_EQ(events[1].integer("c.x.count"), 15);
  EXPECT_EQ(events[1].integer("d.x.count"), 5);
  EXPECT_EQ(events[0].integer("h.lat.count"), 1);
  EXPECT_EQ(events[1].integer("h.lat.count"), 3);
  EXPECT_EQ(events[1].integer("h.lat.d_count"), 2);  // interval count
  EXPECT_TRUE(events[1].has("h.lat.p50"));
  EXPECT_TRUE(events[1].has("h.lat.p999"));
  EXPECT_DOUBLE_EQ(events[1].num("h.lat.max"), 3.0);
}

TEST(Telemetry, TimeseriesIncludesWallTimeWhenAsked) {
  Registry reg;
  TimeSeriesRecorder rec(reg);
  rec.tick();
  std::ostringstream os;
  write_timeseries_jsonl(os, rec.samples(), /*include_wall_time=*/true);
  const auto events = parse_lines(os.str());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].has("t_ms"));
}

TEST(Telemetry, ByteIdenticalAcrossEngineThreadCounts) {
  // The acceptance property: an explicit-tick recording of the same
  // engine-driven run serializes to the same bytes at any worker count.
  const auto record = [](unsigned threads) {
    Registry reg;
    TimeSeriesRecorder rec(reg);
    exp::EngineOptions eo;
    eo.threads = threads;
    eo.seed = 42;
    eo.registry = &reg;
    exp::SweepEngine engine(eo);
    const Counter work = reg.counter("work.done");
    rec.tick();
    for (int batch = 0; batch < 3; ++batch) {
      (void)engine.map<std::uint64_t>(
          7, 32,
          [&](exp::TrialContext& ctx) {
            work.inc();
            return ctx.rng();
          },
          nullptr, static_cast<std::size_t>(batch) * 32);
      rec.tick();
    }
    std::ostringstream os;
    write_timeseries_jsonl(os, rec.samples(), /*include_wall_time=*/false);
    return os.str();
  };
  const std::string serial = record(1);
  EXPECT_EQ(serial, record(4));
  EXPECT_NE(serial.find("\"d.work.done\":32"), std::string::npos);
}

TEST(Telemetry, PrometheusExposition) {
  Registry reg;
  reg.counter("route.requests").inc(7);
  reg.gauge("pool.size").set(4);
  const Histogram h = reg.histogram("lat.us", exponential_bounds(1, 2, 3));
  h.observe(1.5);
  h.observe(100.0);  // overflow bucket
  std::ostringstream os;
  write_prometheus(os, reg.scrape());
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE slcube_route_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("slcube_route_requests 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE slcube_pool_size gauge"), std::string::npos);
  EXPECT_NE(text.find("slcube_pool_size 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE slcube_lat_us histogram"), std::string::npos);
  // Buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(text.find("slcube_lat_us_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("slcube_lat_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("slcube_lat_us_count 2"), std::string::npos);
}

// --- stage profiler --------------------------------------------------------

TEST(Profiler, ScopesBuildSelfTotalTree) {
  Profiler prof;
  {
    ProfilerThreadGuard guard(&prof);
    for (int i = 0; i < 3; ++i) {
      StageScope outer("outer");
      StageScope inner("inner");
    }
  }
  const StageReport report = prof.report();
  EXPECT_EQ(report.threads, 1u);
  ASSERT_EQ(report.roots.size(), 1u);
  const StageNode& outer = report.roots[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 3u);
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0].name, "inner");
  EXPECT_EQ(outer.children[0].count, 3u);
  // self = total - child totals, never negative.
  EXPECT_GE(outer.total_us, outer.children[0].total_us);
  EXPECT_GE(outer.self_us, 0.0);
  EXPECT_LE(outer.self_us, outer.total_us);
  EXPECT_DOUBLE_EQ(report.total_us(), outer.total_us);
}

TEST(Profiler, ScopeWithoutGuardIsNoOp) {
  Profiler prof;
  {
    StageScope s("unattributed");  // no guard installed on this thread
  }
  EXPECT_TRUE(prof.report().empty());
  EXPECT_EQ(Profiler::current(), nullptr);
}

TEST(Profiler, GuardsNestAndRestore) {
  Profiler a, b;
  ProfilerThreadGuard ga(&a);
  EXPECT_EQ(Profiler::current(), &a);
  {
    ProfilerThreadGuard gb(&b);
    EXPECT_EQ(Profiler::current(), &b);
    StageScope s("inner-profiler");
  }
  EXPECT_EQ(Profiler::current(), &a);
  { StageScope s("outer-profiler"); }
  ASSERT_EQ(b.report().roots.size(), 1u);
  EXPECT_EQ(b.report().roots[0].name, "inner-profiler");
  ASSERT_EQ(a.report().roots.size(), 1u);
  EXPECT_EQ(a.report().roots[0].name, "outer-profiler");
}

TEST(Profiler, MergesArenasAcrossThreads) {
  Profiler prof;
  constexpr unsigned kThreads = 4, kIters = 100;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&prof] {
      ProfilerThreadGuard guard(&prof);
      for (unsigned i = 0; i < kIters; ++i) {
        StageScope work("work");
        StageScope step("step");
      }
    });
  }
  for (auto& w : workers) w.join();
  const StageReport report = prof.report();
  EXPECT_EQ(report.threads, kThreads);
  ASSERT_EQ(report.roots.size(), 1u);
  EXPECT_EQ(report.roots[0].count, kThreads * kIters);
  ASSERT_EQ(report.roots[0].children.size(), 1u);
  EXPECT_EQ(report.roots[0].children[0].count, kThreads * kIters);
}

TEST(Profiler, ResetDropsRecordedStages) {
  Profiler prof;
  {
    ProfilerThreadGuard guard(&prof);
    StageScope s("gone");
  }
  EXPECT_FALSE(prof.report().empty());
  prof.reset();
  EXPECT_TRUE(prof.report().empty());
}

TEST(Profiler, StageJsonlRoundTrips) {
  Profiler prof;
  {
    ProfilerThreadGuard guard(&prof);
    StageScope trial("trial");
    StageScope route("route");
  }
  std::ostringstream os;
  write_stage_jsonl(os, prof.report());
  const auto events = parse_lines(os.str());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind(), "stage");
  EXPECT_EQ(events[0].str("path"), "trial");
  EXPECT_EQ(events[0].integer("depth"), 0);
  EXPECT_EQ(events[1].str("path"), "trial/route");
  EXPECT_EQ(events[1].str("name"), "route");
  EXPECT_EQ(events[1].integer("depth"), 1);
  EXPECT_EQ(events[1].integer("count"), 1);
  EXPECT_EQ(events[1].integer("threads"), 1);

  std::ostringstream text;
  write_stage_text(text, prof.report());
  EXPECT_NE(text.str().find("trial"), std::string::npos);
  EXPECT_NE(text.str().find("route"), std::string::npos);
}

TEST(Profiler, EngineMarksTrialStagesOnlyWhenInstalled) {
  // EngineOptions::profiler == nullptr must record nothing; installing
  // one yields a "trial" root with the engine.rng child per trial.
  Profiler prof;
  exp::EngineOptions eo;
  eo.threads = 2;
  {
    exp::SweepEngine plain(eo);
    (void)plain.map<int>(0, 8, [](exp::TrialContext&) { return 0; });
  }
  EXPECT_TRUE(prof.report().empty());
  eo.profiler = &prof;
  exp::SweepEngine profiled(eo);
  (void)profiled.map<int>(0, 8, [](exp::TrialContext&) { return 0; });
  const StageReport report = prof.report();
  ASSERT_EQ(report.roots.size(), 1u);
  EXPECT_EQ(report.roots[0].name, "trial");
  EXPECT_EQ(report.roots[0].count, 8u);
  ASSERT_EQ(report.roots[0].children.size(), 1u);
  EXPECT_EQ(report.roots[0].children[0].name, "engine.rng");
}

// --- dashboard -------------------------------------------------------------

TEST(Telemetry, DashboardRendersEverySection) {
  Registry reg;
  const Counter trials = reg.counter("exp.trials_run");
  const Counter d0 = reg.counter("hops.dim.0");
  const Counter d1 = reg.counter("hops.dim.1");
  const Histogram h = reg.histogram("route.hops", linear_bounds(1, 1, 8));
  Profiler prof;
  TimeSeriesRecorder rec(reg);
  {
    ProfilerThreadGuard guard(&prof);
    rec.tick();
    for (int i = 0; i < 4; ++i) {
      StageScope trial("trial");
      StageScope route("route");
      trials.inc();
      d0.inc(2);
      d1.inc();
      h.observe(3.0);
    }
    rec.tick();
  }
  std::ostringstream file;
  file << "{\"event\":\"telemetry_meta\",\"dim\":6,\"threads\":2,"
          "\"mode\":\"ticks\",\"samples\":2,\"ticks\":2}\n";
  write_timeseries_jsonl(file, rec.samples(), false);
  write_stage_jsonl(file, prof.report());

  const auto events = parse_lines(file.str());
  std::ostringstream dash;
  const std::size_t samples = render_dashboard(dash, events);
  EXPECT_EQ(samples, 2u);
  const std::string out = dash.str();
  EXPECT_NE(out.find("dim=6"), std::string::npos);   // meta header
  EXPECT_NE(out.find("trial"), std::string::npos);   // stage section
  EXPECT_NE(out.find("route.hops"), std::string::npos);  // percentiles
  EXPECT_NE(out.find("throughput"), std::string::npos);  // sparkline
  EXPECT_NE(out.find("dimension utilization"), std::string::npos) << out;
}

TEST(Telemetry, DashboardHandlesEmptyInput) {
  std::ostringstream dash;
  EXPECT_EQ(render_dashboard(dash, {}), 0u);
}

}  // namespace
}  // namespace slcube::obs
