// Definition 1 and Theorem 1: the NODE_STATUS kernel, consistency
// checking, and existence + uniqueness of the safety-level assignment
// (uniqueness is verified exhaustively over ALL fault sets of small
// cubes by comparing the constructive proof algorithm with the GS fixed
// point — per Theorem 1 they must agree everywhere).
#include "core/safety.hpp"

#include <gtest/gtest.h>

#include <array>

#include "core/global_status.hpp"
#include "fault/injection.hpp"

namespace slcube::core {
namespace {

Level kernel(std::initializer_list<Level> sorted, unsigned n) {
  std::vector<Level> v(sorted);
  return node_status(std::span<const Level>(v.data(), v.size()), n);
}

TEST(NodeStatus, AllHighIsSafe) {
  EXPECT_EQ(kernel({4, 4, 4, 4}, 4), 4);
  EXPECT_EQ(kernel({0, 1, 2, 3}, 4), 4);  // boundary of the >= condition
}

TEST(NodeStatus, TwoZerosGiveLevelOne) {
  EXPECT_EQ(kernel({0, 0, 4, 4}, 4), 1);
  EXPECT_EQ(kernel({0, 0, 0, 0}, 4), 1);
}

TEST(NodeStatus, SingleZeroTolerated) {
  EXPECT_EQ(kernel({0, 4, 4, 4}, 4), 4);
  EXPECT_EQ(kernel({0, 1, 4, 4}, 4), 4);
}

TEST(NodeStatus, MidSequenceFailure) {
  // (0, 1, 1, 4): S_2 = 1 < 2 -> level 2 (paper's node 0101 in Fig. 1).
  EXPECT_EQ(kernel({0, 1, 1, 4}, 4), 2);
  // (1, 1, 1, 4): S_2 = 1 < 2 -> level 2.
  EXPECT_EQ(kernel({1, 1, 1, 4}, 4), 2);
  // (0, 1, 2, 2): S_3 = 2 < 3 -> level 3.
  EXPECT_EQ(kernel({0, 1, 2, 2}, 4), 3);
}

TEST(NodeStatus, DimensionOne) {
  EXPECT_EQ(kernel({0}, 1), 1);  // lone faulty neighbor: still 1-safe
  EXPECT_EQ(kernel({1}, 1), 1);
}

TEST(NodeStatus, NeverZeroForHealthyInput) {
  // A healthy node's level is >= 1 whatever its neighbors look like
  // (S_0 >= 0 always holds), a fact the router relies on: level 0 <=>
  // faulty. Exhaustive over all sorted level vectors for n = 3.
  for (Level a = 0; a <= 3; ++a) {
    for (Level b = a; b <= 3; ++b) {
      for (Level c = b; c <= 3; ++c) {
        EXPECT_GE(kernel({a, b, c}, 3), 1);
        EXPECT_LE(kernel({a, b, c}, 3), 3);
      }
    }
  }
}

TEST(SafetyLevels, Accessors) {
  SafetyLevels lv(3, 8, 3);
  EXPECT_EQ(lv.dimension(), 3u);
  EXPECT_EQ(lv.size(), 8u);
  EXPECT_TRUE(lv.is_safe(0));
  lv[5] = 1;
  EXPECT_EQ(lv[5], 1);
  EXPECT_FALSE(lv.is_safe(5));
  EXPECT_EQ(lv.safe_nodes().size(), 7u);
}

TEST(ImpliedLevel, MatchesHandComputedFig1Node) {
  // Node 0101 of Fig. 1 with neighbor levels (0100: 0, 0111: 1, 0001: 1,
  // 1101: 4) implies level 2.
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0011, 0b0100, 0b0110, 0b1001});
  SafetyLevels lv(4, 16, 4);
  lv[0b0100] = 0;
  lv[0b0011] = 0;
  lv[0b0110] = 0;
  lv[0b1001] = 0;
  lv[0b0111] = 1;
  lv[0b0001] = 1;
  EXPECT_EQ(implied_level(q, f, lv, 0b0101), 2);
}

TEST(Consistency, FixedPointIsConsistent) {
  const topo::Hypercube q(5);
  Xoshiro256ss rng(5);
  for (int t = 0; t < 25; ++t) {
    const auto f = fault::inject_uniform(q, 8, rng);
    EXPECT_TRUE(is_consistent(q, f, compute_safety_levels(q, f)));
  }
}

TEST(Consistency, PerturbedAssignmentIsInconsistent) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {0b0011, 0b0100, 0b0110, 0b1001});
  auto lv = compute_safety_levels(q, f);
  lv[0b0101] = 4;  // truth is 2
  EXPECT_FALSE(is_consistent(q, f, lv));
}

TEST(Consistency, FaultyNodeMustBeZero) {
  const topo::Hypercube q(3);
  const fault::FaultSet f(q.num_nodes(), {0});
  auto lv = compute_safety_levels(q, f);
  lv[0] = 1;
  EXPECT_FALSE(is_consistent(q, f, lv));
}

TEST(Constructive, FaultFreeAllSafe) {
  const topo::Hypercube q(4);
  const fault::FaultSet none(q.num_nodes());
  const auto lv = constructive_assignment(q, none);
  for (NodeId a = 0; a < q.num_nodes(); ++a) EXPECT_EQ(lv[a], 4);
}

/// Theorem 1 (uniqueness), exhaustively: for EVERY fault subset of Q_3
/// (2^8 = 256 of them) and every fault subset of size <= 3 of Q_4, the
/// constructive existence algorithm and the GS fixed point agree.
TEST(Theorem1, UniquenessExhaustiveQ3) {
  const topo::Hypercube q(3);
  for (std::uint32_t mask = 0; mask < 256; ++mask) {
    fault::FaultSet f(q.num_nodes());
    for (NodeId a = 0; a < 8; ++a) {
      if ((mask >> a) & 1u) f.mark_faulty(a);
    }
    const auto constructive = constructive_assignment(q, f);
    const auto fixed_point = compute_safety_levels(q, f);
    ASSERT_EQ(constructive, fixed_point) << "fault mask " << mask;
  }
}

class Q4FaultCount : public ::testing::TestWithParam<unsigned> {};

TEST_P(Q4FaultCount, UniquenessExhaustive) {
  const unsigned k = GetParam();
  const topo::Hypercube q(4);
  // All k-subsets of 16 nodes via bitmask enumeration.
  for (std::uint32_t mask = 0; mask < (1u << 16); ++mask) {
    if (bits::popcount(mask) != k) continue;
    fault::FaultSet f(q.num_nodes());
    for (NodeId a = 0; a < 16; ++a) {
      if ((mask >> a) & 1u) f.mark_faulty(a);
    }
    ASSERT_EQ(constructive_assignment(q, f), compute_safety_levels(q, f))
        << "fault mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(UpTo3Faults, Q4FaultCount,
                         ::testing::Values(0u, 1u, 2u, 3u));

TEST(Theorem1, UniquenessRandomizedQ6) {
  const topo::Hypercube q(6);
  Xoshiro256ss rng(123);
  for (int t = 0; t < 40; ++t) {
    const auto f =
        fault::inject_uniform(q, rng.below(q.num_nodes() / 2), rng);
    ASSERT_EQ(constructive_assignment(q, f), compute_safety_levels(q, f));
  }
}

TEST(SafetyLevels, SingleFaultMakesNeighborsStaySafe) {
  // One fault in Q_n: every other node still has at most one 0-neighbor,
  // so everyone healthy remains n-safe.
  for (unsigned n = 2; n <= 7; ++n) {
    const topo::Hypercube q(n);
    const fault::FaultSet f(q.num_nodes(), {0});
    const auto lv = compute_safety_levels(q, f);
    for (NodeId a = 1; a < q.num_nodes(); ++a) {
      EXPECT_EQ(lv[a], static_cast<Level>(n)) << "n=" << n << " a=" << a;
    }
  }
}

}  // namespace
}  // namespace slcube::core
