#include "analysis/fault_metrics.hpp"

#include <gtest/gtest.h>

#include "fault/injection.hpp"
#include "fault/scenario.hpp"

namespace slcube::analysis {
namespace {

TEST(HealthMetrics, FaultFreeCubeIsHamming) {
  const topo::Hypercube q(4);
  const topo::HypercubeView view(q);
  const fault::FaultSet none(q.num_nodes());
  const auto m = compute_health_metrics(view, none);
  EXPECT_EQ(m.diameter, 4u);
  EXPECT_DOUBLE_EQ(m.avg_stretch, 0.0);
  EXPECT_DOUBLE_EQ(m.connectivity, 1.0);
  EXPECT_EQ(m.beyond_h2_pairs, 0u);
  // Average Hamming distance over ordered distinct pairs of Q_n is
  // n * 2^(n-1) / (2^n - 1) = 32/15 for n = 4.
  EXPECT_NEAR(m.avg_distance, 32.0 / 15.0, 1e-12);
}

TEST(HealthMetrics, Fig3DisconnectedScenario) {
  const auto sc = fault::scenario::fig3();
  const topo::HypercubeView view(sc.cube);
  const auto m = compute_health_metrics(view, sc.faults);
  // 12 healthy nodes, one isolated: 11*10 + 0 connected ordered pairs out
  // of 12*11.
  EXPECT_NEAR(m.connectivity, 110.0 / 132.0, 1e-12);
  EXPECT_GE(m.avg_stretch, 0.0);
}

TEST(HealthMetrics, StretchGrowsWithFaults) {
  const topo::Hypercube q(6);
  const topo::HypercubeView view(q);
  Xoshiro256ss rng(33);
  double light = 0, heavy = 0;
  for (int t = 0; t < 10; ++t) {
    light += compute_health_metrics(
                 view, fault::inject_uniform(q, 3, rng))
                 .avg_stretch;
    heavy += compute_health_metrics(
                 view, fault::inject_uniform(q, 16, rng))
                 .avg_stretch;
  }
  EXPECT_LE(light, heavy);
}

TEST(HealthMetrics, DiameterGrowsWhenNeighborhoodDies) {
  // Q4 with three of 0000's neighbors dead: its traffic funnels through
  // 1000, e.g. 0000 -> 0111 takes 5 hops (H = 3), pushing the healthy
  // diameter past the fault-free value 4.
  const topo::Hypercube q(4);
  fault::FaultSet f(q.num_nodes(), {0b0001, 0b0010, 0b0100});
  const topo::HypercubeView view(q);
  const auto m = compute_health_metrics(view, f);
  EXPECT_GT(m.diameter, 4u);
  EXPECT_GT(m.avg_stretch, 0.0);
}

TEST(HealthMetrics, SingleHealthyNode) {
  const topo::Hypercube q(2);
  fault::FaultSet f(q.num_nodes(), {1, 2, 3});
  const topo::HypercubeView view(q);
  const auto m = compute_health_metrics(view, f);
  EXPECT_EQ(m.diameter, 0u);
  EXPECT_DOUBLE_EQ(m.connectivity, 1.0);  // zero pairs: vacuous
}

}  // namespace
}  // namespace slcube::analysis
