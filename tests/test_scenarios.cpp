// Pins every fact the paper's prose states about its worked examples
// (Figs. 1, 3, 4, 5 and the Section 2.3 comparison) against our encoded
// scenarios and our algorithms. This file is the ground truth linking the
// repository to the paper text; see DESIGN.md "Paper errata" for the two
// places where the paper contradicts itself.
#include "fault/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/format.hpp"
#include "core/egs.hpp"
#include "core/global_status.hpp"
#include "core/safe_node.hpp"
#include "core/unicast.hpp"

namespace slcube {
namespace {

using fault::scenario::CubeScenario;

TEST(Fig1, FaultSetMatchesPaper) {
  const CubeScenario sc = fault::scenario::fig1();
  EXPECT_EQ(sc.faults.faulty_nodes(),
            (std::vector<NodeId>{from_bits("0011"), from_bits("0100"),
                                 from_bits("0110"), from_bits("1001")}));
}

TEST(Fig1, AllStatedLevelsMatchGs) {
  const CubeScenario sc = fault::scenario::fig1();
  const auto levels = core::compute_safety_levels(sc.cube, sc.faults);
  for (NodeId a = 0; a < sc.cube.num_nodes(); ++a) {
    ASSERT_NE(sc.expected_levels[a], CubeScenario::kUnstated);
    EXPECT_EQ(levels[a], sc.expected_levels[a])
        << "node " << to_bits(a, 4);
  }
}

TEST(Fig1, StabilizesAfterTwoRounds) {
  // "The safety level of each node remains stable after two rounds."
  const CubeScenario sc = fault::scenario::fig1();
  const auto gs = core::run_gs(sc.cube, sc.faults);
  EXPECT_EQ(gs.rounds_to_stabilize, 2u);
}

TEST(Fig3, StatedLevelsMatchGs) {
  const CubeScenario sc = fault::scenario::fig3();
  const auto levels = core::compute_safety_levels(sc.cube, sc.faults);
  for (NodeId a = 0; a < sc.cube.num_nodes(); ++a) {
    ASSERT_NE(sc.expected_levels[a], CubeScenario::kUnstated);
    EXPECT_EQ(levels[a], sc.expected_levels[a])
        << "node " << to_bits(a, 4);
  }
}

TEST(Sec23, SafeSetsUnderAllThreeDefinitions) {
  const CubeScenario sc = fault::scenario::sec23();
  const auto levels = core::compute_safety_levels(sc.cube, sc.faults);

  // Safety-level safe set (paper): {0001, 0011, 0101, 1000, 1001, 1010,
  // 1011, 1100, 1101} — 9 nodes.
  std::vector<NodeId> expected_sl;
  for (const char* s : {"0001", "0011", "0101", "1000", "1001", "1010",
                        "1011", "1100", "1101"}) {
    expected_sl.push_back(from_bits(s));
  }
  std::sort(expected_sl.begin(), expected_sl.end());
  EXPECT_EQ(levels.safe_nodes(), expected_sl);

  // Wu-Fernandez set: the paper claims the same set minus 1100 (8 nodes),
  // but that contradicts Definition 3 as the paper itself prints it:
  // 1100 has ZERO faulty neighbors and only two unsafe neighbors (1110
  // and 0100, the nodes with two faulty neighbors each), so neither
  // clause of Definition 3 fires and 1100 is WF-safe. We pin the literal
  // Definition-3 fixed point — 9 nodes, equal to the safety-level safe
  // set here — and record the discrepancy as DESIGN.md erratum #4.
  const auto wf = core::compute_safe_nodes(sc.cube, sc.faults,
                                           core::SafeNodeRule::kWuFernandez);
  EXPECT_EQ(wf.safe_nodes(), expected_sl);
  EXPECT_TRUE(wf.safe[from_bits("1100")]);

  // Lee-Hayes set (paper): empty.
  const auto lh = core::compute_safe_nodes(sc.cube, sc.faults,
                                           core::SafeNodeRule::kLeeHayes);
  EXPECT_EQ(lh.safe_count(), 0u);
}

TEST(Fig4, ScenarioSatisfiesEveryStatedFact) {
  const CubeScenario sc = fault::scenario::fig4();
  ASSERT_EQ(sc.faults.count(), 4u);
  ASSERT_EQ(sc.link_faults.count(), 1u);
  EXPECT_TRUE(sc.link_faults.is_faulty(from_bits("1000"), 0));

  const auto egs = core::run_egs(sc.cube, sc.faults, sc.link_faults);
  // "Node 1000 is 1-safe and node 1001 is 2-safe" (their self views) ...
  EXPECT_EQ(egs.self_view[from_bits("1000")], 1);
  EXPECT_EQ(egs.self_view[from_bits("1001")], 2);
  // ... "However, both are treated as faulty by all the other nodes."
  EXPECT_EQ(egs.public_view[from_bits("1000")], 0);
  EXPECT_EQ(egs.public_view[from_bits("1001")], 0);
  EXPECT_TRUE(egs.in_n2[from_bits("1000")]);
  EXPECT_TRUE(egs.in_n2[from_bits("1001")]);
  // "the spare neighbor 1111 has a safety level of 4".
  EXPECT_EQ(egs.public_view[from_bits("1111")], 4);
}

TEST(Fig4, ReproducesThePaperRoute) {
  // "suboptimal routing is possible and the routing path is
  //  1101 -> 1111 -> 1011 -> 1010 -> 1000".
  const CubeScenario sc = fault::scenario::fig4();
  const auto egs = core::run_egs(sc.cube, sc.faults, sc.link_faults);
  const NodeId s = from_bits("1101"), d = from_bits("1000");

  const auto dec = core::decide_at_source_egs(sc.cube, sc.link_faults, egs,
                                              s, d);
  EXPECT_EQ(dec.hamming, 2u);
  // "Because both preferred neighbors of node 1101 are faulty, there is no
  //  Hamming distance path": C1 and C2 fail, C3 holds (4 >= 2 + 1).
  EXPECT_FALSE(dec.c1);
  EXPECT_FALSE(dec.c2);
  EXPECT_TRUE(dec.c3);

  const auto r = core::route_unicast_egs(sc.cube, sc.faults, sc.link_faults,
                                         egs, s, d);
  EXPECT_EQ(r.status, core::RouteStatus::kDeliveredSuboptimal);
  std::vector<NodeId> expected;
  for (const char* hop : {"1101", "1111", "1011", "1010", "1000"}) {
    expected.push_back(from_bits(hop));
  }
  EXPECT_EQ(r.path, expected);
}

TEST(Fig4, ExhaustiveSearchConfirmsScenarioFamily) {
  // Independent check that our reconstructed fault set is not a fluke:
  // enumerate all 4-node fault sets containing 1100 (forced by the prose)
  // and avoiding the nodes the prose shows nonfaulty; count those
  // satisfying every stated fact. Ours must be among them.
  const topo::Hypercube q(4);
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(from_bits("1000"), 0);

  const std::vector<NodeId> candidates = {
      from_bits("0000"), from_bits("0001"), from_bits("0010"),
      from_bits("0011"), from_bits("0100"), from_bits("0101"),
      from_bits("0110"), from_bits("0111"), from_bits("1110")};
  const std::vector<NodeId> paper_route = {
      from_bits("1101"), from_bits("1111"), from_bits("1011"),
      from_bits("1010"), from_bits("1000")};

  unsigned consistent = 0;
  bool ours_found = false;
  const auto our_faults = fault::scenario::fig4().faults;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      for (std::size_t k = j + 1; k < candidates.size(); ++k) {
        fault::FaultSet f(q.num_nodes(), {from_bits("1100")});
        f.mark_faulty(candidates[i]);
        f.mark_faulty(candidates[j]);
        f.mark_faulty(candidates[k]);
        const auto egs = core::run_egs(q, f, lf);
        if (egs.self_view[from_bits("1000")] != 1) continue;
        if (egs.self_view[from_bits("1001")] != 2) continue;
        if (egs.public_view[from_bits("1111")] != 4) continue;
        const auto r = core::route_unicast_egs(q, f, lf, egs,
                                               from_bits("1101"),
                                               from_bits("1000"));
        if (r.status != core::RouteStatus::kDeliveredSuboptimal) continue;
        if (r.path != paper_route) continue;
        ++consistent;
        ours_found |= f == our_faults;
      }
    }
  }
  EXPECT_GE(consistent, 1u);
  EXPECT_TRUE(ours_found);
}

TEST(Fig5, FaultSetIsTheForcedOne) {
  const auto sc = fault::scenario::fig5();
  EXPECT_EQ(sc.gh.radices(), (std::vector<std::uint32_t>{2, 3, 2}));
  EXPECT_EQ(sc.faults.count(), 4u);
  auto enc = [&](std::uint32_t a2, std::uint32_t a1, std::uint32_t a0) {
    return sc.gh.encode({a0, a1, a2});
  };
  EXPECT_TRUE(sc.faults.is_faulty(enc(0, 1, 1)));  // 011
  EXPECT_TRUE(sc.faults.is_faulty(enc(1, 0, 0)));  // 100
  EXPECT_TRUE(sc.faults.is_faulty(enc(1, 1, 1)));  // 111
  EXPECT_TRUE(sc.faults.is_faulty(enc(1, 2, 0)));  // 120
}

}  // namespace
}  // namespace slcube
