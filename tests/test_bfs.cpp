#include "analysis/bfs.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fault/injection.hpp"

namespace slcube::analysis {
namespace {

TEST(Bfs, FaultFreeEqualsHamming) {
  const topo::Hypercube q(6);
  const topo::HypercubeView view(q);
  const fault::FaultSet none(q.num_nodes());
  const auto dist = bfs_distances(view, none, 0);
  for (NodeId b = 0; b < q.num_nodes(); ++b) {
    EXPECT_EQ(dist[b], q.distance(0, b));
  }
}

TEST(Bfs, FaultyNodesUnreachable) {
  const topo::Hypercube q(4);
  const topo::HypercubeView view(q);
  const fault::FaultSet f(q.num_nodes(), {5, 9});
  const auto dist = bfs_distances(view, f, 0);
  EXPECT_EQ(dist[5], kUnreachable);
  EXPECT_EQ(dist[9], kUnreachable);
}

TEST(Bfs, RoutesAroundFaults) {
  const topo::Hypercube q(3);
  const topo::HypercubeView view(q);
  // Kill 001 and 010: 011 is still reachable from 000 via 100-101-111-011
  // (length 4) or 100-110-111-011; shortest is 4.
  const fault::FaultSet f(q.num_nodes(), {0b001, 0b010});
  const auto dist = bfs_distances(view, f, 0b000);
  EXPECT_EQ(dist[0b011], 4u);
  EXPECT_EQ(dist[0b100], 1u);
  EXPECT_EQ(dist[0b111], 3u);
}

TEST(Bfs, DisconnectedComponentUnreachable) {
  // Fig. 3: node 1110 is isolated by faults {0110, 1010, 1100, 1111}.
  const topo::Hypercube q(4);
  const topo::HypercubeView view(q);
  const fault::FaultSet f(q.num_nodes(),
                          {0b0110, 0b1010, 0b1100, 0b1111});
  const auto dist = bfs_distances(view, f, 0b0000);
  EXPECT_EQ(dist[0b1110], kUnreachable);
  EXPECT_NE(dist[0b0001], kUnreachable);
}

TEST(Bfs, DistanceNeverBelowHamming) {
  const topo::Hypercube q(7);
  const topo::HypercubeView view(q);
  Xoshiro256ss rng(77);
  for (int t = 0; t < 10; ++t) {
    const auto f = fault::inject_uniform(q, 12, rng);
    NodeId s = 0;
    while (f.is_faulty(s)) ++s;
    const auto dist = bfs_distances(view, f, s);
    for (NodeId b = 0; b < q.num_nodes(); ++b) {
      if (dist[b] == kUnreachable) continue;
      EXPECT_GE(dist[b], q.distance(s, b));
      // Parity: any walk between s and b has length ≡ H(s,b) mod 2.
      EXPECT_EQ(dist[b] % 2, q.distance(s, b) % 2);
    }
  }
}

TEST(Bfs, WithLinksRefusesFaultyLink) {
  const topo::Hypercube q(3);
  fault::FaultSet none(q.num_nodes());
  fault::LinkFaultSet lf(q);
  lf.mark_faulty(0b000, 0);  // cut (000, 001)
  const auto dist = bfs_distances_with_links(q, none, lf, 0b000);
  EXPECT_EQ(dist[0b001], 3u);  // must go around, e.g. 000-010-011-001
  EXPECT_EQ(dist[0b010], 1u);
}

TEST(Bfs, WithLinksMatchesPlainWhenNoLinkFaults) {
  const topo::Hypercube q(5);
  const topo::HypercubeView view(q);
  Xoshiro256ss rng(3);
  const auto f = fault::inject_uniform(q, 5, rng);
  NodeId s = 0;
  while (f.is_faulty(s)) ++s;
  const fault::LinkFaultSet lf(q);
  EXPECT_EQ(bfs_distances(view, f, s), bfs_distances_with_links(q, f, lf, s));
}

TEST(Bfs, ShortestDistanceHelper) {
  const topo::Hypercube q(4);
  const topo::HypercubeView view(q);
  const fault::FaultSet f(q.num_nodes(), {0b0001});
  EXPECT_EQ(shortest_distance(view, f, 0b0000, 0b1111), 4u);
  EXPECT_EQ(shortest_distance(view, f, 0b0000, 0b0001), kUnreachable);
}

TEST(Bfs, GhViewAgreesWithCoordinateDistanceWhenFaultFree) {
  const topo::GeneralizedHypercube gh({2, 3, 2});
  const topo::GeneralizedHypercubeView view(gh);
  const fault::FaultSet none(gh.num_nodes());
  for (NodeId s = 0; s < gh.num_nodes(); ++s) {
    const auto dist = bfs_distances(view, none, s);
    for (NodeId b = 0; b < gh.num_nodes(); ++b) {
      EXPECT_EQ(dist[b], gh.distance(s, b));
    }
  }
}

}  // namespace
}  // namespace slcube::analysis
