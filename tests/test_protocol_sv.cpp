// Distributed safety-vector computation vs the centralized oracle.
#include "sim/protocol_sv.hpp"

#include <gtest/gtest.h>

#include "fault/injection.hpp"

namespace slcube::sim {
namespace {

TEST(SvProtocol, MatchesOracleFaultFree) {
  const topo::Hypercube q(5);
  Network net(q, fault::FaultSet(q.num_nodes()));
  const auto r = run_sv_synchronous(net);
  EXPECT_EQ(r.rounds, 4u);
  EXPECT_EQ(r.vectors,
            core::compute_safety_vectors(q, fault::FaultSet(q.num_nodes())));
}

class SvProtocolSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SvProtocolSweep, MatchesOracleUnderRandomFaults) {
  const unsigned n = GetParam();
  const topo::Hypercube q(n);
  Xoshiro256ss rng(n * 4099);
  for (int t = 0; t < 12; ++t) {
    const auto f =
        fault::inject_uniform(q, rng.below(q.num_nodes() / 2), rng);
    Network net(q, f);
    const auto r = run_sv_synchronous(net);
    ASSERT_EQ(r.rounds, n - 1);
    ASSERT_EQ(r.vectors, core::compute_safety_vectors(q, f));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims2To7, SvProtocolSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u));

TEST(SvProtocol, MessageCountIsStatic) {
  // Exactly (n-1) waves over all healthy directed edges, independent of
  // the fault pattern's shape.
  const topo::Hypercube q(4);
  Xoshiro256ss rng(4100);
  const auto f = fault::inject_uniform(q, 3, rng);
  Network net(q, f);
  std::uint64_t healthy_edges = 0;
  for (NodeId a = 0; a < q.num_nodes(); ++a) {
    if (f.is_faulty(a)) continue;
    q.for_each_neighbor(a, [&](Dim, NodeId b) {
      healthy_edges += f.is_healthy(b) ? 1u : 0u;
    });
  }
  const auto r = run_sv_synchronous(net);
  EXPECT_EQ(r.messages, 3u * healthy_edges);
}

TEST(SvProtocol, DoesNotDisturbLevelState) {
  const topo::Hypercube q(4);
  const fault::FaultSet f(q.num_nodes(), {3});
  Network net(q, f);
  const auto before = net.level_of(0);
  run_sv_synchronous(net);
  EXPECT_EQ(net.level_of(0), before);
}

}  // namespace
}  // namespace slcube::sim
