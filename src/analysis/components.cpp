#include "analysis/components.hpp"

#include <deque>

namespace slcube::analysis {

Components connected_components(const topo::TopologyView& view,
                                const fault::FaultSet& faults) {
  const auto n = static_cast<std::size_t>(view.num_nodes());
  Components out;
  out.component.assign(n, Components::kFaulty);
  std::vector<NodeId> nbrs;
  for (NodeId start = 0; start < n; ++start) {
    if (faults.is_faulty(start) ||
        out.component[start] != Components::kFaulty) {
      continue;
    }
    const auto id = static_cast<std::uint32_t>(out.size.size());
    out.size.push_back(0);
    std::deque<NodeId> queue{start};
    out.component[start] = id;
    while (!queue.empty()) {
      const NodeId a = queue.front();
      queue.pop_front();
      ++out.size[id];
      view.neighbors(a, nbrs);
      for (const NodeId b : nbrs) {
        if (faults.is_faulty(b) ||
            out.component[b] != Components::kFaulty) {
          continue;
        }
        out.component[b] = id;
        queue.push_back(b);
      }
    }
  }
  return out;
}

}  // namespace slcube::analysis
