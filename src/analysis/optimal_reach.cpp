#include "analysis/optimal_reach.hpp"

#include <algorithm>

namespace slcube::analysis {

std::vector<std::vector<bool>> optimal_reach_relation(
    const topo::Hypercube& cube, const fault::FaultSet& faults) {
  const auto num = static_cast<std::size_t>(cube.num_nodes());
  const unsigned n = cube.dimension();
  std::vector<std::vector<bool>> opt(num, std::vector<bool>(num, false));

  // Pairs grouped by Hamming distance: distance-h reachability only
  // depends on distance-(h-1) reachability of healthy preferred
  // neighbors, so one ascending pass is exact.
  for (NodeId a = 0; a < num; ++a) {
    if (faults.is_healthy(a)) opt[a][a] = true;
  }
  for (unsigned h = 1; h <= n; ++h) {
    for (NodeId a = 0; a < num; ++a) {
      if (faults.is_faulty(a)) continue;
      // Enumerate destinations at distance exactly h: a ^ mask over all
      // masks of popcount h. Iterating all masks and filtering keeps the
      // code simple; the filter costs one popcount per pair. The loop
      // counter is 64-bit: num_nodes() is a u64 and a 32-bit counter
      // compared against it never terminates once dim reaches 32.
      for (std::uint64_t m = 1; m < cube.num_nodes(); ++m) {
        const auto mask = static_cast<std::uint32_t>(m);
        if (bits::popcount(mask) != h) continue;
        const NodeId b = a ^ mask;
        bool reachable = false;
        bits::for_each_set(mask, [&](Dim d) {
          if (reachable) return;
          const NodeId c = cube.neighbor(a, d);
          // The last hop may land on any destination (Theorem 2's base
          // case); interior nodes must be healthy.
          if (h == 1) {
            reachable = true;
          } else if (faults.is_healthy(c) && opt[c][b]) {
            reachable = true;
          }
        });
        opt[a][b] = reachable;
      }
    }
  }
  return opt;
}

std::vector<unsigned> optimal_reach(const topo::Hypercube& cube,
                                    const fault::FaultSet& faults) {
  const auto opt = optimal_reach_relation(cube, faults);
  const auto num = static_cast<std::size_t>(cube.num_nodes());
  const unsigned n = cube.dimension();
  std::vector<unsigned> reach(num, 0);
  for (NodeId a = 0; a < num; ++a) {
    if (faults.is_faulty(a)) continue;
    unsigned k = n;
    for (NodeId b = 0; b < num; ++b) {
      if (faults.is_faulty(b) || opt[a][b]) continue;
      // b is a healthy node a cannot reach optimally: reach(a) stops
      // just below its distance.
      k = std::min(k, cube.distance(a, b) - 1);
    }
    reach[a] = k;
  }
  return reach;
}

TightnessSummary compare_to_exact(const topo::Hypercube& cube,
                                  const fault::FaultSet& faults,
                                  const std::vector<unsigned>& exact,
                                  const std::vector<unsigned>& estimate) {
  SLC_EXPECT(exact.size() == cube.num_nodes());
  SLC_EXPECT(estimate.size() == cube.num_nodes());
  TightnessSummary s;
  for (NodeId a = 0; a < cube.num_nodes(); ++a) {
    if (faults.is_faulty(a)) continue;
    SLC_EXPECT_MSG(estimate[a] <= exact[a],
                   "estimate claims reach beyond the exact oracle");
    ++s.healthy_nodes;
    s.estimate_total += estimate[a];
    s.exact_total += exact[a];
    s.exact_matches += estimate[a] == exact[a] ? 1u : 0u;
  }
  return s;
}

}  // namespace slcube::analysis
