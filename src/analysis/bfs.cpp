#include "analysis/bfs.hpp"

#include <deque>

namespace slcube::analysis {

std::vector<std::uint32_t> bfs_distances(const topo::TopologyView& view,
                                         const fault::FaultSet& faults,
                                         NodeId source) {
  SLC_EXPECT(source < view.num_nodes());
  SLC_EXPECT_MSG(faults.is_healthy(source), "BFS source must be healthy");
  std::vector<std::uint32_t> dist(
      static_cast<std::size_t>(view.num_nodes()), kUnreachable);
  std::deque<NodeId> queue;
  std::vector<NodeId> nbrs;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId a = queue.front();
    queue.pop_front();
    view.neighbors(a, nbrs);
    for (const NodeId b : nbrs) {
      if (faults.is_faulty(b) || dist[b] != kUnreachable) continue;
      dist[b] = dist[a] + 1;
      queue.push_back(b);
    }
  }
  return dist;
}

std::vector<std::uint32_t> bfs_distances_with_links(
    const topo::Hypercube& cube, const fault::FaultSet& faults,
    const fault::LinkFaultSet& link_faults, NodeId source) {
  SLC_EXPECT(cube.contains(source));
  SLC_EXPECT_MSG(faults.is_healthy(source), "BFS source must be healthy");
  std::vector<std::uint32_t> dist(
      static_cast<std::size_t>(cube.num_nodes()), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId a = queue.front();
    queue.pop_front();
    cube.for_each_neighbor(a, [&](Dim d, NodeId b) {
      if (faults.is_faulty(b) || link_faults.is_faulty(a, d) ||
          dist[b] != kUnreachable) {
        return;
      }
      dist[b] = dist[a] + 1;
      queue.push_back(b);
    });
  }
  return dist;
}

std::uint32_t shortest_distance(const topo::TopologyView& view,
                                const fault::FaultSet& faults, NodeId source,
                                NodeId dest) {
  if (faults.is_faulty(dest)) return kUnreachable;
  return bfs_distances(view, faults, source)[dest];
}

}  // namespace slcube::analysis
