#include "analysis/fault_metrics.hpp"

#include "analysis/bfs.hpp"

namespace slcube::analysis {

HealthMetrics compute_health_metrics(const topo::TopologyView& view,
                                     const fault::FaultSet& faults) {
  HealthMetrics m;
  const auto num = static_cast<NodeId>(view.num_nodes());
  std::uint64_t connected_pairs = 0;
  std::uint64_t all_pairs = 0;
  double dist_sum = 0.0;
  double stretch_sum = 0.0;
  for (NodeId a = 0; a < num; ++a) {
    if (faults.is_faulty(a)) continue;
    const auto dist = bfs_distances(view, faults, a);
    for (NodeId b = 0; b < num; ++b) {
      if (b == a || faults.is_faulty(b)) continue;
      ++all_pairs;
      if (dist[b] == kUnreachable) continue;
      ++connected_pairs;
      dist_sum += dist[b];
      const unsigned hamming = view.distance(a, b);
      stretch_sum += dist[b] - hamming;
      if (dist[b] > hamming + 2) ++m.beyond_h2_pairs;
      if (dist[b] > m.diameter) m.diameter = dist[b];
    }
  }
  if (connected_pairs > 0) {
    m.avg_distance = dist_sum / static_cast<double>(connected_pairs);
    m.avg_stretch = stretch_sum / static_cast<double>(connected_pairs);
  }
  m.connectivity = all_pairs ? static_cast<double>(connected_pairs) /
                                   static_cast<double>(all_pairs)
                             : 1.0;
  return m;
}

}  // namespace slcube::analysis
