// Exact optimal-reachability oracle — the ground truth the safety level
// approximates.
//
// For each healthy node a let reach(a) be the largest k such that a has a
// Hamming-distance path to EVERY healthy node within distance k (faulty
// "destinations" are vacuous, matching Theorem 2's reading). Safety
// levels are a *conservative* estimate: Theorem 2 gives
//
//     S(a) <= reach(a)        for every healthy a,
//
// and the gap measures optimal unicasts the level-based feasibility check
// forgoes. bench_tightness quantifies that gap (together with the safety
// VECTOR estimate of core/safety_vector.hpp, which sits between the two).
//
// Computed by dynamic programming on the "optimal-reachability relation"
// opt(a, b) = 1 iff a healthy path of length H(a, b) exists: opt(a, b)
// holds iff b == a, or some preferred neighbor c of a toward b is healthy
// with opt(c, b). Processing pairs in increasing Hamming distance makes
// one pass exact; total O(N^2 * n) per fault set — meant for n <= 10.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_set.hpp"
#include "topology/hypercube.hpp"

namespace slcube::analysis {

/// reach(a) for every node (0 for faulty nodes).
[[nodiscard]] std::vector<unsigned> optimal_reach(
    const topo::Hypercube& cube, const fault::FaultSet& faults);

/// The full relation: result[a] is a bitset over destinations b (as a
/// vector<bool>) with true iff an optimal a->b path through healthy
/// interior nodes exists. Exposed for tests; optimal_reach() derives
/// from it.
[[nodiscard]] std::vector<std::vector<bool>> optimal_reach_relation(
    const topo::Hypercube& cube, const fault::FaultSet& faults);

/// Summary of how conservative an estimate is versus the exact oracle.
struct TightnessSummary {
  std::uint64_t healthy_nodes = 0;
  /// Σ_a estimate(a) and Σ_a reach(a): the ratio is the headline number.
  std::uint64_t estimate_total = 0;
  std::uint64_t exact_total = 0;
  /// Nodes where the estimate equals the exact value.
  std::uint64_t exact_matches = 0;

  [[nodiscard]] double tightness() const noexcept {
    return exact_total ? static_cast<double>(estimate_total) /
                             static_cast<double>(exact_total)
                       : 1.0;
  }
};

/// Compare a per-node estimate (e.g. safety levels) against the oracle.
/// Precondition: estimate[a] <= reach(a) for healthy a — the function
/// SLC_EXPECTs soundness, because an unsound estimate would break the
/// routing guarantees.
[[nodiscard]] TightnessSummary compare_to_exact(
    const topo::Hypercube& cube, const fault::FaultSet& faults,
    const std::vector<unsigned>& exact,
    const std::vector<unsigned>& estimate);

}  // namespace slcube::analysis
