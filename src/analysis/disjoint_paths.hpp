// The classic hypercube fact Theorem 2's proof leans on: between any two
// nodes at Hamming distance j there are j node-disjoint optimal paths.
// The standard rotation construction builds them explicitly: if the
// preferred dimensions (set bits of s ⊕ d) in ascending order are
// d_0, d_1, ..., d_{j-1}, then path p (0 <= p < j) corrects them in the
// rotated order d_p, d_{p+1}, ..., d_{j-1}, d_0, ..., d_{p-1}.
//
// Interior nodes of distinct rotations differ (each interior node of path
// p has corrected a *cyclic window* starting at d_p, and nonempty proper
// windows with distinct starts are distinct subsets), so the paths share
// only the endpoints. Tests verify this exhaustively for small cubes.
#pragma once

#include <vector>

#include "analysis/path.hpp"
#include "topology/hypercube.hpp"

namespace slcube::analysis {

/// The H(s,d) node-disjoint optimal paths between s and d in the
/// fault-free cube (empty when s == d).
[[nodiscard]] std::vector<Path> disjoint_optimal_paths(
    const topo::Hypercube& cube, NodeId s, NodeId d);

}  // namespace slcube::analysis
