// Global health metrics of a faulty cube: the diameter and average
// shortest-path length of the healthy subgraph, and how far they stray
// from the fault-free Hamming values. Complements the per-route overhead
// metrics: when the healthy diameter exceeds n, some pairs *cannot* be
// served within the paper's H + 2 class by any algorithm, bounding what
// routing schemes can be blamed for.
#pragma once

#include <cstdint>

#include "fault/fault_set.hpp"
#include "topology/topology_view.hpp"

namespace slcube::analysis {

struct HealthMetrics {
  /// Largest finite healthy-path distance (0 when < 2 healthy nodes).
  unsigned diameter = 0;
  /// Mean healthy-path distance over connected healthy ordered pairs.
  double avg_distance = 0.0;
  /// Mean (healthy distance - Hamming distance) over the same pairs:
  /// the detour the fault pattern forces on a perfect router.
  double avg_stretch = 0.0;
  /// Connected ordered healthy pairs / all ordered healthy pairs.
  double connectivity = 1.0;
  /// Ordered healthy pairs whose healthy distance exceeds Hamming + 2 —
  /// pairs no optimal-or-H+2 scheme can possibly serve.
  std::uint64_t beyond_h2_pairs = 0;
};

/// All-pairs BFS over the healthy subgraph: O(N^2) — dimensions <= 10.
[[nodiscard]] HealthMetrics compute_health_metrics(
    const topo::TopologyView& view, const fault::FaultSet& faults);

}  // namespace slcube::analysis
