// Connected components of the healthy subgraph. Section 3.3 of the paper
// is about *disconnected* hypercubes — faulty cubes whose healthy nodes
// split into two or more components; this module is the oracle that
// detects and labels that situation.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_set.hpp"
#include "topology/topology_view.hpp"

namespace slcube::analysis {

struct Components {
  /// component[a] = component index of healthy node a, or kFaulty.
  std::vector<std::uint32_t> component;
  /// size[c] = number of healthy nodes in component c.
  std::vector<std::uint64_t> size;

  static constexpr std::uint32_t kFaulty = 0xFFFFFFFFu;

  [[nodiscard]] std::size_t count() const noexcept { return size.size(); }
  /// True iff the healthy nodes form 2+ disjoint parts (the paper's
  /// "disconnected hypercube"). A cube with no healthy nodes is trivially
  /// not disconnected.
  [[nodiscard]] bool disconnected() const noexcept { return count() >= 2; }
  /// True iff a and b are both healthy and in the same component.
  [[nodiscard]] bool same_component(NodeId a, NodeId b) const noexcept {
    return component[a] != kFaulty && component[a] == component[b];
  }
};

[[nodiscard]] Components connected_components(const topo::TopologyView& view,
                                              const fault::FaultSet& faults);

}  // namespace slcube::analysis
