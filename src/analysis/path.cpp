#include "analysis/path.hpp"

#include <unordered_set>

#include "common/format.hpp"

namespace slcube::analysis {

std::string to_string(PathClass c) {
  switch (c) {
    case PathClass::kOptimal:
      return "optimal";
    case PathClass::kSuboptimal:
      return "suboptimal";
    case PathClass::kLonger:
      return "longer";
    case PathClass::kInvalid:
      return "invalid";
  }
  SLC_UNREACHABLE("bad PathClass");
}

namespace {

PathClass classify_length(unsigned distance, std::size_t hops) {
  if (hops == distance) return PathClass::kOptimal;
  if (hops == distance + 2) return PathClass::kSuboptimal;
  return PathClass::kLonger;
}

template <typename AdjacentFn>
PathCheck check_impl(const fault::FaultSet& faults, const Path& path,
                     unsigned distance, AdjacentFn&& adjacent) {
  if (path.empty()) return {PathClass::kInvalid, "empty path"};
  std::unordered_set<NodeId> seen;
  for (std::size_t i = 0; i < path.size(); ++i) {
    const NodeId a = path[i];
    if (!seen.insert(a).second) {
      return {PathClass::kInvalid, "repeated node in path"};
    }
    const bool is_final = (i + 1 == path.size());
    if (!is_final && faults.is_faulty(a)) {
      return {PathClass::kInvalid, "faulty node used as source/intermediate"};
    }
    if (i > 0) {
      if (auto err = adjacent(path[i - 1], a); !err.empty()) {
        return {PathClass::kInvalid, std::move(err)};
      }
    }
  }
  return {classify_length(distance, path.size() - 1), ""};
}

}  // namespace

PathCheck check_path(const topo::TopologyView& view,
                     const fault::FaultSet& faults, const Path& path) {
  if (path.empty()) return {PathClass::kInvalid, "empty path"};
  const unsigned distance = view.distance(path.front(), path.back());
  return check_impl(faults, path, distance,
                    [&](NodeId a, NodeId b) -> std::string {
                      return view.distance(a, b) == 1
                                 ? std::string{}
                                 : "consecutive nodes not adjacent";
                    });
}

PathCheck check_path_with_links(const topo::Hypercube& cube,
                                const fault::FaultSet& faults,
                                const fault::LinkFaultSet& link_faults,
                                const Path& path) {
  if (path.empty()) return {PathClass::kInvalid, "empty path"};
  const unsigned distance = cube.distance(path.front(), path.back());
  return check_impl(
      faults, path, distance, [&](NodeId a, NodeId b) -> std::string {
        if (cube.distance(a, b) != 1) return "consecutive nodes not adjacent";
        const Dim d = bits::lowest_set(a ^ b);
        if (link_faults.is_faulty(a, d)) return "path crosses faulty link";
        return {};
      });
}

std::string format_path(const Path& path, unsigned n) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) out += " -> ";
    out += to_bits(path[i], n);
  }
  return out;
}

}  // namespace slcube::analysis
