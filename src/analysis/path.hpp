// Route-quality vocabulary. The paper's central claims are about path
// *length class*: a unicast is optimal when the route length equals the
// Hamming distance, suboptimal when it equals Hamming distance + 2 (one
// spare-dimension detour), and anything longer is merely delivered.
// This module validates raw node sequences against a topology + fault set
// and classifies them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_set.hpp"
#include "fault/link_fault_set.hpp"
#include "topology/topology_view.hpp"

namespace slcube::analysis {

/// A route as the sequence of visited nodes, source first. A single-node
/// path means source == destination. Length (in hops) = size() - 1.
using Path = std::vector<NodeId>;

enum class PathClass : std::uint8_t {
  kOptimal,     ///< length == fault-free distance(s, d)
  kSuboptimal,  ///< length == distance + 2 (the paper's "suboptimal")
  kLonger,      ///< delivered, but longer than distance + 2
  kInvalid,     ///< not a path: broken edge, faulty interior node, ...
};

[[nodiscard]] std::string to_string(PathClass c);

struct PathCheck {
  PathClass cls = PathClass::kInvalid;
  std::string error;  ///< human-readable reason when kInvalid
};

/// Validate `path` as a route from its front to its back:
///  * consecutive nodes must be adjacent in `view`;
///  * no node may repeat;
///  * every node except possibly the final destination must be healthy
///    (the paper's footnote 3 allows delivering to an endpoint that other
///    nodes treat as faulty, so the check is on interior nodes + source);
/// then classify the length against the fault-free distance.
[[nodiscard]] PathCheck check_path(const topo::TopologyView& view,
                                   const fault::FaultSet& faults,
                                   const Path& path);

/// Hypercube variant that also rejects traversal of faulty links.
[[nodiscard]] PathCheck check_path_with_links(
    const topo::Hypercube& cube, const fault::FaultSet& faults,
    const fault::LinkFaultSet& link_faults, const Path& path);

/// Format a path as "0101 -> 0001 -> 0000" using n-bit labels.
[[nodiscard]] std::string format_path(const Path& path, unsigned n);

}  // namespace slcube::analysis
