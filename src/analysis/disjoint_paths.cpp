#include "analysis/disjoint_paths.hpp"

namespace slcube::analysis {

std::vector<Path> disjoint_optimal_paths(const topo::Hypercube& cube,
                                         NodeId s, NodeId d) {
  SLC_EXPECT(cube.contains(s) && cube.contains(d));
  std::vector<Dim> dims;
  bits::for_each_set(cube.navigation_vector(s, d),
                     [&](Dim dim) { dims.push_back(dim); });
  const std::size_t j = dims.size();
  std::vector<Path> paths;
  paths.reserve(j);
  for (std::size_t p = 0; p < j; ++p) {
    Path path{s};
    NodeId cur = s;
    for (std::size_t i = 0; i < j; ++i) {
      cur = cube.neighbor(cur, dims[(p + i) % j]);
      path.push_back(cur);
    }
    SLC_ENSURE(cur == d);
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace slcube::analysis
