// Breadth-first search over the *healthy* subgraph — the ground truth the
// routing algorithms are judged against. A destination is reachable iff
// BFS reaches it; a route is a true shortest path iff its length equals
// the BFS distance.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "fault/fault_set.hpp"
#include "fault/link_fault_set.hpp"
#include "topology/topology_view.hpp"

namespace slcube::analysis {

/// Sentinel distance for unreachable (or faulty) nodes.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// Distances from `source` through healthy nodes only. `source` must be
/// healthy. Faulty nodes get kUnreachable.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(
    const topo::TopologyView& view, const fault::FaultSet& faults,
    NodeId source);

/// Same, but additionally refusing to traverse faulty links (hypercube
/// only, Section 4.1 model).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances_with_links(
    const topo::Hypercube& cube, const fault::FaultSet& faults,
    const fault::LinkFaultSet& link_faults, NodeId source);

/// Shortest-path distance between two healthy nodes, or kUnreachable.
[[nodiscard]] std::uint32_t shortest_distance(const topo::TopologyView& view,
                                              const fault::FaultSet& faults,
                                              NodeId source, NodeId dest);

}  // namespace slcube::analysis
