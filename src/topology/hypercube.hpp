// The binary n-cube Q_n (Section 2.1 of the paper).
//
// Nodes are labeled 0 .. 2^n - 1; two nodes are adjacent iff their labels
// differ in exactly one bit. Bit i is "dimension i", and a ⊕ e^i — here
// `neighbor(a, i)` — is a's neighbor along dimension i. The Hamming
// distance H(s, d) = |s ⊕ d| is the graph distance, the bits set in s ⊕ d
// are the *preferred dimensions*, and the clear bits are the *spare
// dimensions* of the pair (s, d).
//
// The class is a trivially copyable value holding only the dimension; all
// queries are O(1) bit operations.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/bitops.hpp"
#include "common/contracts.hpp"

namespace slcube::topo {

class Hypercube {
 public:
  /// Dimensions 1..20 are supported (2^20 = 1M nodes; the analysis code
  /// allocates per-node arrays, so we bound n to keep memory sane).
  static constexpr unsigned kMaxDimension = 20;

  // Compile-time width guard (the mega-cube bugfix sweep's tripwire):
  // node ids and navigation vectors are 32-bit words, so every
  // `1 << dim`-style mask in the routing code is only safe while the
  // dimension stays strictly below 32 — and num_nodes() must be computed
  // in 64 bits regardless, because 2^31 node *counts* already overflow
  // int. Raising kMaxDimension past 31 requires widening NodeId first;
  // this assert turns that latent truncation into a build failure.
  static_assert(kMaxDimension < std::numeric_limits<NodeId>::digits,
                "node labels must fit NodeId with room for 1 << dim masks");
  static_assert(kMaxDimension < 32,
                "navigation vectors / bitops masks are 32-bit words");

  explicit constexpr Hypercube(unsigned dimension) : n_(dimension) {
    SLC_EXPECT(dimension >= 1 && dimension <= kMaxDimension);
  }

  [[nodiscard]] constexpr unsigned dimension() const noexcept { return n_; }
  [[nodiscard]] constexpr std::uint64_t num_nodes() const noexcept {
    return std::uint64_t{1} << n_;
  }
  /// Every node of Q_n has exactly n neighbors.
  [[nodiscard]] constexpr unsigned degree() const noexcept { return n_; }

  [[nodiscard]] constexpr bool contains(NodeId a) const noexcept {
    return a < num_nodes();
  }

  /// a ⊕ e^d — the neighbor of `a` along dimension `d`.
  [[nodiscard]] constexpr NodeId neighbor(NodeId a, Dim d) const noexcept {
    SLC_ASSERT(contains(a) && d < n_);
    return bits::flip(a, d);
  }

  /// Graph distance == Hamming distance of labels.
  [[nodiscard]] constexpr unsigned distance(NodeId a, NodeId b) const noexcept {
    SLC_ASSERT(contains(a) && contains(b));
    return bits::hamming(a, b);
  }

  [[nodiscard]] constexpr bool adjacent(NodeId a, NodeId b) const noexcept {
    return distance(a, b) == 1;
  }

  /// Bit mask of the preferred dimensions of the pair (s, d): the paper's
  /// navigation vector N = s ⊕ d.
  [[nodiscard]] constexpr std::uint32_t navigation_vector(
      NodeId s, NodeId d) const noexcept {
    SLC_ASSERT(contains(s) && contains(d));
    return s ^ d;
  }

  /// Call f(dim, neighbor) for every neighbor of `a`, low dimension first.
  template <typename F>
  constexpr void for_each_neighbor(NodeId a, F&& f) const {
    for (Dim d = 0; d < n_; ++d) f(d, neighbor(a, d));
  }

  /// Preferred neighbors of `a` w.r.t. navigation vector `nav`
  /// (neighbors that reduce the distance to the destination).
  template <typename F>
  constexpr void for_each_preferred(NodeId a, std::uint32_t nav, F&& f) const {
    bits::for_each_set(nav, [&](Dim d) { f(d, neighbor(a, d)); });
  }

  /// Spare neighbors of `a` w.r.t. navigation vector `nav`
  /// (neighbors that increase the distance to the destination by one).
  template <typename F>
  constexpr void for_each_spare(NodeId a, std::uint32_t nav, F&& f) const {
    bits::for_each_clear(nav, n_, [&](Dim d) { f(d, neighbor(a, d)); });
  }

  /// All node labels, 0..2^n-1 (for exhaustive sweeps in tests).
  [[nodiscard]] std::vector<NodeId> all_nodes() const;

  friend constexpr bool operator==(const Hypercube&, const Hypercube&) =
      default;

 private:
  unsigned n_;
};

}  // namespace slcube::topo
