#include "topology/generalized_hypercube.hpp"

namespace slcube::topo {

GeneralizedHypercube::GeneralizedHypercube(std::vector<std::uint32_t> radices)
    : radices_(std::move(radices)) {
  SLC_EXPECT_MSG(!radices_.empty(), "GH needs at least one dimension");
  strides_.reserve(radices_.size());
  for (const std::uint32_t m : radices_) {
    SLC_EXPECT_MSG(m >= 2, "every GH radix must be >= 2");
    strides_.push_back(static_cast<std::uint32_t>(total_));
    total_ *= m;
    SLC_EXPECT_MSG(total_ <= (std::uint64_t{1} << 24),
                   "GH node count capped at 2^24");
    degree_ += m - 1;
  }
}

std::vector<std::uint32_t> GeneralizedHypercube::coordinates(NodeId a) const {
  SLC_EXPECT(contains(a));
  std::vector<std::uint32_t> c(radices_.size());
  for (Dim i = 0; i < radices_.size(); ++i) c[i] = coordinate(a, i);
  return c;
}

NodeId GeneralizedHypercube::encode(
    const std::vector<std::uint32_t>& coords) const {
  SLC_EXPECT(coords.size() == radices_.size());
  std::uint64_t id = 0;
  for (Dim i = 0; i < radices_.size(); ++i) {
    SLC_EXPECT(coords[i] < radices_[i]);
    id += static_cast<std::uint64_t>(coords[i]) * strides_[i];
  }
  return static_cast<NodeId>(id);
}

unsigned GeneralizedHypercube::distance(NodeId a, NodeId b) const noexcept {
  SLC_ASSERT(contains(a) && contains(b));
  unsigned diff = 0;
  for (Dim i = 0; i < radices_.size(); ++i) {
    diff += coordinate(a, i) != coordinate(b, i) ? 1u : 0u;
  }
  return diff;
}

std::vector<NodeId> GeneralizedHypercube::all_nodes() const {
  std::vector<NodeId> v(static_cast<std::size_t>(total_));
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<NodeId>(i);
  return v;
}

}  // namespace slcube::topo
