// The generalized hypercube GH_n of Bhuyan & Agrawal (reference [1] of the
// paper), used by Section 4.2.
//
// N = m_{n-1} × ... × m_1 × m_0 nodes; a node is an n-vector
// (a_{n-1}, ..., a_0) with 0 <= a_i < m_i. Two nodes are adjacent iff they
// differ in exactly one coordinate — i.e. the m_i nodes that agree on all
// coordinates but i form a complete graph K_{m_i} along dimension i. The
// binary hypercube is the special case m_i = 2 for all i.
//
// Node ids are the mixed-radix linearization: id = Σ a_i · stride_i with
// stride_0 = 1, stride_{i+1} = stride_i · m_i. Distance between two nodes
// is the number of differing coordinates (one hop fixes one coordinate,
// since each dimension is fully connected).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/contracts.hpp"

namespace slcube::topo {

class GeneralizedHypercube {
 public:
  /// `radices[i]` is m_i, the size of dimension i (index 0 = least
  /// significant coordinate, matching the paper's (a_{n-1},...,a_0)).
  /// Every radix must be >= 2; total node count must fit comfortably.
  explicit GeneralizedHypercube(std::vector<std::uint32_t> radices);

  [[nodiscard]] unsigned dimension() const noexcept {
    return static_cast<unsigned>(radices_.size());
  }
  [[nodiscard]] std::uint64_t num_nodes() const noexcept { return total_; }
  [[nodiscard]] std::uint32_t radix(Dim i) const noexcept {
    SLC_ASSERT(i < radices_.size());
    return radices_[i];
  }
  [[nodiscard]] const std::vector<std::uint32_t>& radices() const noexcept {
    return radices_;
  }

  /// Node degree: Σ_i (m_i - 1).
  [[nodiscard]] unsigned degree() const noexcept { return degree_; }

  [[nodiscard]] bool contains(NodeId a) const noexcept { return a < total_; }

  /// Coordinate of node `a` along dimension `i`.
  [[nodiscard]] std::uint32_t coordinate(NodeId a, Dim i) const noexcept {
    SLC_ASSERT(contains(a) && i < radices_.size());
    return (a / strides_[i]) % radices_[i];
  }

  /// Decode a node id into its coordinate vector (index = dimension).
  [[nodiscard]] std::vector<std::uint32_t> coordinates(NodeId a) const;

  /// Encode a coordinate vector into a node id.
  [[nodiscard]] NodeId encode(const std::vector<std::uint32_t>& coords) const;

  /// The node equal to `a` except coordinate `i` replaced by `value`.
  [[nodiscard]] NodeId with_coordinate(NodeId a, Dim i,
                                       std::uint32_t value) const noexcept {
    SLC_ASSERT(contains(a) && i < radices_.size() && value < radices_[i]);
    const std::uint32_t old = coordinate(a, i);
    return a + (value - old) * strides_[i];
  }

  /// Number of differing coordinates — the graph distance.
  [[nodiscard]] unsigned distance(NodeId a, NodeId b) const noexcept;

  [[nodiscard]] bool adjacent(NodeId a, NodeId b) const noexcept {
    return distance(a, b) == 1;
  }

  /// Call f(dim, neighbor) for every neighbor of `a`: for each dimension i,
  /// the m_i - 1 nodes differing from `a` only at coordinate i, in
  /// increasing coordinate order; dimensions low-to-high.
  template <typename F>
  void for_each_neighbor(NodeId a, F&& f) const {
    for (Dim i = 0; i < dimension(); ++i) {
      const std::uint32_t own = coordinate(a, i);
      for (std::uint32_t c = 0; c < radices_[i]; ++c) {
        if (c != own) f(i, with_coordinate(a, i, c));
      }
    }
  }

  [[nodiscard]] std::vector<NodeId> all_nodes() const;

  friend bool operator==(const GeneralizedHypercube& a,
                         const GeneralizedHypercube& b) {
    return a.radices_ == b.radices_;
  }

 private:
  std::vector<std::uint32_t> radices_;
  std::vector<std::uint32_t> strides_;
  std::uint64_t total_ = 1;
  unsigned degree_ = 0;
};

}  // namespace slcube::topo
