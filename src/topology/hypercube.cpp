#include "topology/hypercube.hpp"

namespace slcube::topo {

std::vector<NodeId> Hypercube::all_nodes() const {
  std::vector<NodeId> v(static_cast<std::size_t>(num_nodes()));
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<NodeId>(i);
  return v;
}

}  // namespace slcube::topo
