// A type-erased, read-only graph view over any of our topologies.
//
// The graph algorithms in src/analysis (BFS distances, connected
// components) and the discrete-event simulator in src/sim operate on this
// interface so a single implementation serves Q_n, GH_n, and any test
// topology. Hot routing code in src/core stays templated on the concrete
// topology type; the virtual dispatch here is confined to setup-time and
// verification-time code (Core Guidelines Per.3: don't optimize what is
// not performance critical).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitops.hpp"
#include "topology/generalized_hypercube.hpp"
#include "topology/hypercube.hpp"

namespace slcube::topo {

class TopologyView {
 public:
  virtual ~TopologyView() = default;

  [[nodiscard]] virtual std::uint64_t num_nodes() const = 0;
  [[nodiscard]] virtual unsigned degree(NodeId a) const = 0;
  /// Append all neighbors of `a` to `out` (cleared first).
  virtual void neighbors(NodeId a, std::vector<NodeId>& out) const = 0;
  /// Graph distance in the fault-free topology.
  [[nodiscard]] virtual unsigned distance(NodeId a, NodeId b) const = 0;
};

/// View over a binary hypercube.
class HypercubeView final : public TopologyView {
 public:
  explicit HypercubeView(Hypercube q) : q_(q) {}

  [[nodiscard]] std::uint64_t num_nodes() const override {
    return q_.num_nodes();
  }
  [[nodiscard]] unsigned degree(NodeId) const override { return q_.degree(); }
  void neighbors(NodeId a, std::vector<NodeId>& out) const override {
    out.clear();
    q_.for_each_neighbor(a, [&](Dim, NodeId b) { out.push_back(b); });
  }
  [[nodiscard]] unsigned distance(NodeId a, NodeId b) const override {
    return q_.distance(a, b);
  }
  [[nodiscard]] const Hypercube& cube() const noexcept { return q_; }

 private:
  Hypercube q_;
};

/// View over a generalized hypercube.
class GeneralizedHypercubeView final : public TopologyView {
 public:
  explicit GeneralizedHypercubeView(GeneralizedHypercube g)
      : g_(std::move(g)) {}

  [[nodiscard]] std::uint64_t num_nodes() const override {
    return g_.num_nodes();
  }
  [[nodiscard]] unsigned degree(NodeId) const override { return g_.degree(); }
  void neighbors(NodeId a, std::vector<NodeId>& out) const override {
    out.clear();
    g_.for_each_neighbor(a, [&](Dim, NodeId b) { out.push_back(b); });
  }
  [[nodiscard]] unsigned distance(NodeId a, NodeId b) const override {
    return g_.distance(a, b);
  }
  [[nodiscard]] const GeneralizedHypercube& cube() const noexcept {
    return g_;
  }

 private:
  GeneralizedHypercube g_;
};

}  // namespace slcube::topo
