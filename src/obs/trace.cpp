#include "obs/trace.hpp"

#include <fstream>
#include <ostream>

#include "common/contracts.hpp"

namespace slcube::obs {

const char* to_string(MsgKind k) {
  switch (k) {
    case MsgKind::kLevelUpdate:
      return "level_update";
    case MsgKind::kUnicast:
      return "unicast";
  }
  SLC_UNREACHABLE("bad MsgKind");
}

namespace {

struct NameVisitor {
  const char* operator()(const SourceDecisionEvent&) const {
    return "source_decision";
  }
  const char* operator()(const HopEvent&) const { return "hop"; }
  const char* operator()(const RouteDoneEvent&) const { return "route_done"; }
  const char* operator()(const GsRoundEvent&) const { return "gs_round"; }
  const char* operator()(const MessageSendEvent&) const { return "send"; }
  const char* operator()(const MessageDropEvent&) const { return "drop"; }
  const char* operator()(const NodeFailEvent&) const { return "node_fail"; }
  const char* operator()(const NodeRecoverEvent&) const {
    return "node_recover";
  }
  const char* operator()(const MisrouteEvent&) const { return "misroute"; }
  const char* operator()(const EpochPublishEvent&) const {
    return "epoch_publish";
  }
  const char* operator()(const RouteSummaryEvent&) const {
    return "route_summary";
  }
  const char* operator()(const SpanEvent&) const { return "span"; }
  const char* operator()(const SweepPointEvent&) const { return "sweep_point"; }
};

/// Comma-managed field emitter for one JSON object.
class Fields {
 public:
  explicit Fields(std::ostream& os, const char* event) : os_(os) {
    os_ << "{\"event\":\"" << event << '"';
  }
  ~Fields() { os_ << '}'; }
  Fields(const Fields&) = delete;
  Fields& operator=(const Fields&) = delete;

  void num(const char* key, double v) { prefix(key) << v; }
  void num(const char* key, std::uint64_t v) { prefix(key) << v; }
  void num(const char* key, unsigned v) { prefix(key) << v; }
  void num(const char* key, int v) { prefix(key) << v; }
  void boolean(const char* key, bool v) {
    prefix(key) << (v ? "true" : "false");
  }
  void str(const char* key, std::string_view v) {
    auto& os = prefix(key);
    os << '"';
    for (const char c : v) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << '"';
  }

  std::ostream& raw(const char* key) { return prefix(key); }

 private:
  std::ostream& prefix(const char* key) {
    os_ << ",\"" << key << "\":";
    return os_;
  }
  std::ostream& os_;
};

struct JsonVisitor {
  std::ostream& os;

  void operator()(const SourceDecisionEvent& e) const {
    Fields f(os, "source_decision");
    f.num("source", e.source);
    f.num("dest", e.dest);
    f.num("h", e.hamming);
    f.boolean("c1", e.c1);
    f.boolean("c2", e.c2);
    f.boolean("c3", e.c3);
    f.num("chosen_dim", e.chosen_dim);
    f.num("ties", e.ties);
    f.boolean("spare", e.spare);
    f.boolean("egs", e.egs);
    f.num("self_level", e.self_level);
    f.boolean("dest_link_faulty", e.dest_link_faulty);
  }
  void operator()(const HopEvent& e) const {
    Fields f(os, "hop");
    f.num("from", e.from);
    f.num("to", e.to);
    f.num("dim", e.dim);
    f.num("level", e.level);
    f.num("nav_before", e.nav_before);
    f.num("nav_after", e.nav_after);
    f.boolean("preferred", e.preferred);
    f.num("ties", e.ties);
  }
  void operator()(const RouteDoneEvent& e) const {
    Fields f(os, "route_done");
    f.num("source", e.source);
    f.num("dest", e.dest);
    f.str("status", e.status);
    f.num("hops", e.hops);
  }
  void operator()(const GsRoundEvent& e) const {
    Fields f(os, "gs_round");
    f.num("round", e.round);
    f.num("changed", e.changed);
    f.num("messages", e.messages);
    f.num("time", e.sim_time);
    f.boolean("egs", e.egs);
    f.boolean("periodic", e.periodic);
  }
  void operator()(const MessageSendEvent& e) const {
    Fields f(os, "send");
    f.num("time", e.time);
    f.num("from", e.from);
    f.num("to", e.to);
    f.str("kind", to_string(e.kind));
  }
  void operator()(const MessageDropEvent& e) const {
    Fields f(os, "drop");
    f.num("time", e.time);
    f.num("from", e.from);
    f.num("to", e.to);
    f.str("kind", to_string(e.kind));
    f.str("reason", e.reason);
  }
  void operator()(const NodeFailEvent& e) const {
    Fields f(os, "node_fail");
    f.num("time", e.time);
    f.num("node", e.node);
  }
  void operator()(const NodeRecoverEvent& e) const {
    Fields f(os, "node_recover");
    f.num("time", e.time);
    f.num("node", e.node);
  }
  void operator()(const MisrouteEvent& e) const {
    Fields f(os, "misroute");
    f.num("source", e.source);
    f.num("dest", e.dest);
    f.str("cls", e.cls);
    f.num("drop_node", e.drop_node);
    f.num("hops_taken", e.hops_taken);
    f.boolean("ground_feasible", e.ground_feasible);
  }
  void operator()(const EpochPublishEvent& e) const {
    Fields f(os, "epoch_publish");
    f.num("epoch", e.epoch);
    f.num("parent", e.parent);
    f.str("cause", e.cause);
    f.num("node", static_cast<int>(e.node));
    f.num("dim", e.dim);
    f.num("churn", e.churn);
    f.num("faults", e.faults);
    f.num("links", e.links);
    f.num("ts", e.ts);
  }
  void operator()(const RouteSummaryEvent& e) const {
    Fields f(os, "route_summary");
    f.num("route_id", e.route_id);
    f.num("decision_epoch", e.decision_epoch);
    f.num("ground_epoch", e.ground_epoch);
    f.str("status", e.status);
    f.num("hops", e.hops);
    f.num("latency_us", e.latency_us);
    f.boolean("promoted", e.promoted);
    f.str("reason", e.reason);
  }
  void operator()(const SpanEvent& e) const {
    Fields f(os, "span");
    f.str("name", e.name);
    f.num("micros", e.micros);
    f.num("items", e.items);
  }
  void operator()(const SweepPointEvent& e) const {
    Fields f(os, "sweep_point");
    f.str("sweep", e.sweep);
    f.num("fault_count", e.fault_count);
    f.num("wall_ms", e.wall_ms);
    f.num("utilization", e.utilization);
    f.num("threads", e.threads);
    f.num("trial_p50_us", e.trial_p50_us);
    f.num("trial_p90_us", e.trial_p90_us);
    f.num("trial_p99_us", e.trial_p99_us);
    auto& raw = f.raw("values");
    raw << '{';
    bool first = true;
    for (const auto& [key, value] : e.values) {
      if (!first) raw << ',';
      first = false;
      raw << '"';
      for (const char c : key) {
        if (c == '"' || c == '\\') raw << '\\';
        raw << c;
      }
      raw << "\":" << value;
    }
    raw << '}';
  }
};

}  // namespace

const char* event_name(const TraceEvent& ev) {
  return std::visit(NameVisitor{}, ev);
}

void write_json(std::ostream& os, const TraceEvent& ev) {
  std::visit(JsonVisitor{os}, ev);
}

// --- RingBufferSink --------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  SLC_EXPECT(capacity_ > 0);
  ring_.reserve(capacity_);
}

void RingBufferSink::on_event(const TraceEvent& ev) {
  const std::scoped_lock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[seen_ % capacity_] = ev;
    ++dropped_;
  }
  ++seen_;
}

std::uint64_t RingBufferSink::dropped() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

std::size_t RingBufferSink::size() const {
  const std::scoped_lock lock(mutex_);
  return ring_.size();
}

std::uint64_t RingBufferSink::total_seen() const {
  const std::scoped_lock lock(mutex_);
  return seen_;
}

std::vector<TraceEvent> RingBufferSink::snapshot() const {
  const std::scoped_lock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (seen_ <= capacity_) {
    out = ring_;
  } else {
    const std::size_t head = seen_ % capacity_;  // oldest retained event
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

void RingBufferSink::clear() {
  const std::scoped_lock lock(mutex_);
  ring_.clear();
  seen_ = 0;
  dropped_ = 0;
}

// --- JsonlSink -------------------------------------------------------------

JsonlSink::JsonlSink(std::ostream& os) : os_(&os) {}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path, std::ios::trunc)),
      os_(owned_.get()) {
  SLC_EXPECT_MSG(static_cast<std::ofstream&>(*owned_).is_open(),
                 "cannot open JSONL trace file");
}

JsonlSink::~JsonlSink() { os_->flush(); }

void JsonlSink::on_event(const TraceEvent& ev) {
  write_json(*os_, ev);
  *os_ << '\n';
}

}  // namespace slcube::obs
