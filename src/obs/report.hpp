// slcube::obs — the audit report: structured violations plus the derived
// diagnostics the audit pass aggregates while it checks (per-dimension
// hop heatmap, spare-detour attribution, GS convergence profile, drop
// forensics, hop-count histogram). Renderable two ways: as human text
// tables (common/table) and as one stable flat JSON object that
// obs::parse_jsonl_line can read back (documented in EXPERIMENTS.md
// under AUDIT).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace slcube::obs {

/// Every invariant class the audit engine checks. Keep in sync with
/// to_string() and the per-kind counters in AuditReport.
enum class ViolationKind : std::uint8_t {
  kHopCountMismatch,   ///< delivered route not exactly H (or H+2) hops
  kNavBitNotToggled,   ///< nav_after != nav_before with dim toggled
  kBrokenChain,        ///< hop/done without source, dangling chain, bad from
  kFlagsInconsistent,  ///< C1/C2/C3 vs chosen first hop / terminal status
  kSpareMisuse,        ///< spare hop not first / wrong preferred flag / >1
  kHopLevelTooLow,     ///< preferred hop below the Theorem-2 level floor
  kStuckRoute,         ///< "stuck" terminal status (needs stale levels)
  kGsRoundOrder,       ///< non-monotone round sequence within a wave
  kGsBoundExceeded,    ///< quiesced wave took > n-1 rounds, no fault churn
  kDropWithoutSend,    ///< MessageDrop with no matching prior MessageSend
  kTruncatedRoute,     ///< stream ended with the route still open
  kMisrouteUnattributed,  ///< misroute event with no class or no route
  /// Sampled-stream reconciliation failed: a promoted RouteSummary does
  /// not match the chain it follows (status class / hop count / no
  /// chain at all), or the sampler's counters disagree with the audited
  /// stream (reconcile_sampling).
  kSummaryMismatch,
};
inline constexpr std::size_t kNumViolationKinds = 13;

[[nodiscard]] const char* to_string(ViolationKind k);

struct AuditViolation {
  ViolationKind kind = ViolationKind::kBrokenChain;
  std::string detail;  ///< human-readable specifics (nodes, navs, rounds)
};

struct AuditReport {
  /// Starts empty with the standard hop-count / wall-ms bucket ladders.
  AuditReport();

  // --- stream totals ---
  std::uint64_t events = 0;
  std::uint64_t routes = 0;
  std::uint64_t hops = 0;
  std::uint64_t spare_hops = 0;
  std::map<std::string, std::uint64_t> routes_by_status;

  // --- violations ---
  std::uint64_t violations_total = 0;
  std::uint64_t violations_by_kind[kNumViolationKinds] = {};
  /// First AuditConfig::max_violation_details violations, with detail.
  std::vector<AuditViolation> details;

  // --- per-dimension hop heatmap + detour attribution ---
  std::map<unsigned, std::uint64_t> preferred_by_dim;
  std::map<unsigned, std::uint64_t> spare_by_dim;
  /// Spare detours by the source decision's Hamming distance H.
  std::map<unsigned, std::uint64_t> spare_by_hamming;

  // --- GS convergence profile ---
  std::uint64_t gs_waves = 0;
  unsigned gs_max_round = 0;
  /// round index -> (sum of `changed` over waves, waves reaching round).
  std::map<unsigned, std::pair<std::uint64_t, std::uint64_t>> gs_curve;

  // --- diagnosed-routing misroute attribution ---
  /// Misroute postmortems by class ("none" | "false-reject-source" |
  /// "optimism-drop" | "pessimism-detour"); `misroutes` counts the
  /// non-"none" ones.
  std::uint64_t misroutes = 0;
  std::map<std::string, std::uint64_t> misroutes_by_class;

  // --- message forensics ---
  std::uint64_t sends = 0;
  std::uint64_t drops = 0;
  std::map<std::string, std::uint64_t> drops_by_reason;

  // --- sampled-stream accounting (SamplingSink upstream) ---
  /// RouteSummaryEvents seen, split by the promoted flag. A sampled
  /// stream has `routes == promoted_routes`; the breadcrumb-only
  /// remainder is reconciled by count, never flagged as truncated.
  std::uint64_t promoted_routes = 0;
  std::uint64_t breadcrumb_routes = 0;
  std::map<std::string, std::uint64_t> promoted_by_reason;
  /// Epoch lineage seen in-stream (epoch_publish events).
  std::uint64_t epochs_published = 0;
  /// Producer-reported losses folded in from outside the stream:
  /// RingBufferSink evictions (audit_ring) and sampler sheds
  /// (reconcile_sampling). Nonzero means missing chains are explained
  /// truncation, not producer bugs.
  std::uint64_t events_lost = 0;

  // --- distributions ---
  HistogramData hops_per_route;   ///< delivered routes only
  std::uint64_t sweep_points = 0;
  HistogramData sweep_wall_ms;

  [[nodiscard]] bool clean() const noexcept { return violations_total == 0; }

  /// Merge another report into this one (lane/shard reduction).
  void merge(const AuditReport& o);

  /// Human rendering: summary + violations + heatmap + GS profile +
  /// drop forensics as common/table tables (plus the first violation
  /// details verbatim).
  void render_text(std::ostream& os) const;

  /// One flat JSON object (single line, no trailing newline) in the
  /// dialect obs::parse_jsonl_line reads: scalars plus one level of
  /// nesting. Schema documented in EXPERIMENTS.md (AUDIT).
  void write_json(std::ostream& os) const;
};

/// Bucket ladder for hops_per_route: one bucket per hop count 0..32.
[[nodiscard]] std::vector<double> hop_count_bounds();

/// Bucket ladder for sweep_wall_ms (0.01 ms .. ~160 s, doubling).
[[nodiscard]] std::vector<double> sweep_wall_bounds();

}  // namespace slcube::obs
