#include "obs/dashboard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace slcube::obs {

namespace {

constexpr const char* kSparkLevels[] = {"▁", "▂", "▃",
                                        "▄", "▅", "▆",
                                        "▇", "█"};
constexpr const char* kHeatLevels[] = {" ", "░", "▒", "▓",
                                       "█"};

/// Downsample a series to at most `width` cells (bucket means), then map
/// each cell onto the glyph ramp against the series maximum.
template <std::size_t N>
std::string ramp_row(const std::vector<double>& series, double max_value,
                     std::size_t width, const char* const (&levels)[N]) {
  std::string out;
  if (series.empty()) return out;
  const std::size_t cells = std::min(width, series.size());
  for (std::size_t c = 0; c < cells; ++c) {
    const std::size_t lo = c * series.size() / cells;
    const std::size_t hi = std::max(lo + 1, (c + 1) * series.size() / cells);
    double acc = 0.0;
    for (std::size_t i = lo; i < hi; ++i) acc += series[i];
    const double v = acc / static_cast<double>(hi - lo);
    std::size_t level = 0;
    if (max_value > 0.0 && v > 0.0) {
      level = static_cast<std::size_t>(std::ceil(v / max_value * (N - 1)));
      level = std::min(level, N - 1);
    }
    out += levels[level];
  }
  return out;
}

std::string sparkline(const std::vector<double>& series, std::size_t width) {
  const double max_value =
      series.empty() ? 0.0 : *std::max_element(series.begin(), series.end());
  return ramp_row(series, max_value, width, kSparkLevels);
}

std::string fmt(double v) {
  char buf[32];
  if (v >= 1000.0 || v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

/// Pull one numeric field out of every ts_sample, in file order.
std::vector<double> series_of(const std::vector<const ParsedEvent*>& samples,
                              std::string_view key) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const ParsedEvent* s : samples) out.push_back(s->num(key));
  return out;
}

void render_stages(std::ostream& os,
                   const std::vector<const ParsedEvent*>& stages,
                   std::size_t width) {
  if (stages.empty()) return;
  double total = 0.0;
  for (const ParsedEvent* s : stages) {
    if (s->integer("depth") == 0) total += s->num("total_us");
  }
  os << "stages (total " << fmt(total / 1000.0) << " ms across "
     << stages.front()->integer("threads") << " thread arenas)\n";
  const std::size_t bar_width = std::min<std::size_t>(width / 2, 30);
  for (const ParsedEvent* s : stages) {
    const auto depth = static_cast<std::size_t>(s->integer("depth"));
    const double total_us = s->num("total_us");
    const double share = total > 0.0 ? total_us / total : 0.0;
    const auto filled = static_cast<std::size_t>(
        std::lround(share * static_cast<double>(bar_width)));
    std::string bar;
    for (std::size_t i = 0; i < bar_width; ++i) {
      bar += i < filled ? "█" : "·";
    }
    char line[256];
    std::snprintf(line, sizeof(line), "  %-28s %s %6.1f%% %10.1f ms  x%lld\n",
                  (std::string(depth * 2, ' ') + std::string(s->str("name")))
                      .c_str(),
                  bar.c_str(), 100.0 * share, total_us / 1000.0,
                  static_cast<long long>(s->integer("count")));
    os << line;
  }
  os << '\n';
}

void render_throughput(std::ostream& os,
                       const std::vector<const ParsedEvent*>& samples,
                       std::size_t width) {
  const std::vector<double> d = series_of(samples, "d.exp.trials_run");
  const double peak =
      d.empty() ? 0.0 : *std::max_element(d.begin(), d.end());
  if (peak <= 0.0) return;
  double total = 0.0;
  for (const double v : d) total += v;
  os << "throughput (trials per sample, " << samples.size() << " samples, "
     << fmt(total) << " trials total)\n";
  os << "  " << sparkline(d, width) << "  peak " << fmt(peak) << "\n\n";
}

void render_histograms(std::ostream& os,
                       const std::vector<const ParsedEvent*>& samples,
                       std::size_t width) {
  if (samples.empty()) return;
  // Histogram base names: every "h.<name>.p50" key in the last sample.
  std::vector<std::string> names;
  const ParsedEvent* last = samples.back();
  for (const auto& [key, value] : last->fields) {
    if (key.rfind("h.", 0) == 0 && key.size() > 6 &&
        key.compare(key.size() - 4, 4, ".p50") == 0) {
      names.push_back(key.substr(2, key.size() - 6));
    }
  }
  if (names.empty()) return;
  os << "interval latency percentiles (last sample | p50 over time)\n";
  for (const std::string& name : names) {
    const std::string base = "h." + name + ".";
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-24s p50 %-8s p99 %-8s p999 %-8s max %-8s\n",
                  name.c_str(), fmt(last->num(base + "p50")).c_str(),
                  fmt(last->num(base + "p99")).c_str(),
                  fmt(last->num(base + "p999")).c_str(),
                  fmt(last->num(base + "max")).c_str());
    os << line;
    os << "    " << sparkline(series_of(samples, base + "p50"), width)
       << '\n';
  }
  os << '\n';
}

void render_heatmap(std::ostream& os,
                    const std::vector<const ParsedEvent*>& samples,
                    std::size_t width) {
  if (samples.empty()) return;
  // Dimension utilization: "d.hops.dim.<k>" counter deltas per sample.
  std::set<int> dims;
  for (const auto& [key, value] : samples.back()->fields) {
    if (key.rfind("d.hops.dim.", 0) == 0) {
      dims.insert(std::stoi(key.substr(11)));
    }
  }
  if (dims.empty()) return;
  double max_value = 0.0;
  std::map<int, std::vector<double>> rows;
  for (const int k : dims) {
    rows[k] = series_of(samples, "d.hops.dim." + std::to_string(k));
    for (const double v : rows[k]) max_value = std::max(max_value, v);
  }
  if (max_value <= 0.0) return;
  os << "dimension utilization (hops per sample, dark = busy)\n";
  for (const int k : dims) {
    char label[32];
    std::snprintf(label, sizeof(label), "  dim %2d ", k);
    os << label << ramp_row(rows[k], max_value, width, kHeatLevels) << '\n';
  }
  os << '\n';
}

}  // namespace

std::size_t render_dashboard(std::ostream& os,
                             const std::vector<ParsedEvent>& events,
                             const DashboardOptions& opts) {
  std::vector<const ParsedEvent*> samples;
  std::vector<const ParsedEvent*> stages;
  const ParsedEvent* meta = nullptr;
  for (const ParsedEvent& e : events) {
    if (e.kind() == "ts_sample") {
      samples.push_back(&e);
    } else if (e.kind() == "stage") {
      stages.push_back(&e);
    } else if (e.kind() == "telemetry_meta") {
      meta = &e;
    }
  }
  os << "== telemetry dashboard ==\n";
  if (meta != nullptr) {
    os << "run: dim=" << meta->integer("dim")
       << " threads=" << meta->integer("threads") << " mode="
       << meta->str("mode") << " ticks=" << meta->integer("ticks") << "\n";
  }
  os << '\n';
  render_stages(os, stages, opts.width);
  render_throughput(os, samples, opts.width);
  render_histograms(os, samples, opts.width);
  render_heatmap(os, samples, opts.width);
  if (samples.empty()) os << "(no ts_sample events in input)\n";
  return samples.size();
}

}  // namespace slcube::obs
