// slcube::obs — the telemetry flight recorder: samples a metrics
// Registry over time into a bounded ring of snapshots, so a bench can
// report throughput and latency percentiles *over time* instead of one
// end-of-run scrape. Two sampling modes:
//
//  - explicit ticks (sample_interval_ms == 0): the driver calls tick() at
//    barriers it controls (after map() returns, per sweep point). No
//    thread is spawned and no wall-clock enters the exported time series,
//    so the JSONL output is byte-identical across --threads values.
//  - cadence (sample_interval_ms > 0): start() spawns one sampler thread
//    that ticks every interval until stop()/destruction. Samples carry
//    wall time and are inherently non-deterministic.
//
// Exporters: a JSONL time-series dialect ("ts_sample" lines, flat dotted
// keys — the schema lives in EXPERIMENTS.md next to the trace-event
// table) and Prometheus text exposition for the final snapshot.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace slcube::obs {

class Profiler;

struct RecorderOptions {
  std::size_t capacity = 4096;       ///< ring size; oldest samples drop
  unsigned sample_interval_ms = 0;   ///< 0 = explicit ticks only
};

/// One scrape with its position in the recording. `t_ms` is wall time
/// since recorder construction; meaningful only in cadence mode (explicit
/// ticks record it too, but the deterministic exporter omits it).
struct TimeSample {
  std::uint64_t tick = 0;
  double t_ms = 0.0;
  MetricsSnapshot snapshot;
};

class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(Registry& registry, RecorderOptions opts = {});
  ~TimeSeriesRecorder();
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  /// Scrape the registry into the ring now. Thread-safe; explicit ticks
  /// and the cadence thread may interleave (ticks stay totally ordered).
  void tick();

  /// Spawn the cadence sampler (no-op unless sample_interval_ms > 0, or
  /// when one is already running). Thread-safe against concurrent
  /// start()/stop() calls and against the sampler's own ticks.
  void start();
  /// Stop and join the cadence sampler (idempotent and thread-safe; the
  /// destructor calls it). Concurrent stop() calls serialize — the loser
  /// observes the sampler already joined and returns.
  void stop();

  [[nodiscard]] bool timed() const { return opts_.sample_interval_ms > 0; }
  /// Ring contents, oldest first.
  [[nodiscard]] std::vector<TimeSample> samples() const;
  /// Ticks ever taken (≥ size(); the ring may have dropped early ones).
  [[nodiscard]] std::uint64_t total_ticks() const;
  [[nodiscard]] std::size_t size() const;

 private:
  Registry& registry_;
  const RecorderOptions opts_;
  const std::chrono::steady_clock::time_point start_time_;

  mutable std::mutex mutex_;  ///< guards ring_ and total_ticks_
  std::deque<TimeSample> ring_;
  std::uint64_t total_ticks_ = 0;

  std::mutex cv_mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  /// Serializes start()/stop() lifecycle transitions: sampler_ may only
  /// be inspected, assigned, or joined under this lock. Never taken by
  /// the sampler thread itself.
  std::mutex lifecycle_mutex_;
  std::thread sampler_;
};

/// The bundle a driver threads through sweep configs to turn telemetry
/// on: all pointers optional and non-owning. Cost when disabled is one
/// null check at each hook site.
struct InstrumentationHooks {
  Registry* registry = nullptr;
  Profiler* profiler = nullptr;
  TimeSeriesRecorder* recorder = nullptr;

  [[nodiscard]] bool enabled() const {
    return registry != nullptr || profiler != nullptr || recorder != nullptr;
  }
  /// Record a sample at a deterministic barrier (no-op without recorder).
  void tick() const;
};

/// One "ts_sample" JSONL line per sample, flat dotted keys:
/// {"event":"ts_sample","tick":N[,"t_ms":X],"c.<name>":V,"d.<name>":D,
///  "g.<name>":V,"h.<name>.count":C,"h.<name>.d_count":DC,
///  "h.<name>.mean":M,"h.<name>.p50":..,"h.<name>.p90":..,
///  "h.<name>.p99":..,"h.<name>.p999":..,"h.<name>.max":..}
/// where "d." is the counter delta since the previous sample, "d_count"/
/// "mean"/percentiles describe the *interval* between samples, and "max"
/// is the running maximum. With include_wall_time false the t_ms field is
/// omitted, making the output deterministic for explicit-tick recordings.
void write_timeseries_jsonl(std::ostream& os,
                            const std::vector<TimeSample>& samples,
                            bool include_wall_time);

/// Prometheus text exposition of one snapshot: names are sanitized
/// ('.' -> '_') and prefixed "slcube_"; histograms emit cumulative
/// _bucket{le="..."} series plus +Inf, _sum, and _count.
void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace slcube::obs
