// slcube::obs — terminal dashboard for a recorded telemetry file: takes
// the parsed "telemetry_meta" / "ts_sample" / "stage" JSONL events (the
// dialect written by write_timeseries_jsonl and write_stage_jsonl, see
// EXPERIMENTS.md TELEMETRY) and renders a per-stage time breakdown,
// throughput-over-time sparklines, interval latency percentiles, and a
// per-dimension hop-utilization heatmap. Shared by `inspect --dash` and
// examples/telemetry_report.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "obs/jsonl.hpp"

namespace slcube::obs {

struct DashboardOptions {
  std::size_t width = 60;  ///< max cells in sparklines / heatmap rows
};

/// Render every section the events support; sections with no matching
/// events are skipped. Returns the number of ts_sample events seen (0
/// means the file held no time series — the caller may want to warn).
std::size_t render_dashboard(std::ostream& os,
                             const std::vector<ParsedEvent>& events,
                             const DashboardOptions& opts = {});

}  // namespace slcube::obs
