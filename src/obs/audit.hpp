// slcube::obs — the trace audit engine: a streaming TraceSink that turns
// the event stream from a write-only log into a runtime correctness
// oracle. It reconstructs per-route causal chains (SourceDecision ->
// Hop* -> RouteDone) and checks the paper's trace-shaped invariants
// online:
//
//   * an optimal route takes exactly H hops, each a preferred hop that
//     clears one navigation-vector bit (Theorem 2);
//   * a spare first hop *sets* one bit and the route repays it, landing
//     in exactly H + 2 hops (SUBOPTIMAL_UNICASTING);
//   * every HopEvent's nav_after equals nav_before with dim toggled, and
//     hop.to == hop.from with dim toggled;
//   * C1/C2/C3 are mutually consistent with the chosen first hop and the
//     terminal status (strictly for core route statuses; the sim's
//     local-view statuses get the weaker checks its footnote-3 final-hop
//     rule allows);
//   * every preferred hop's advertised level covers the remaining
//     distance (level >= popcount(nav_after), the Theorem-2 floor);
//   * GS/EGS round sequences are monotone (+1 per round) and a wave that
//     quiesces with no mid-wave fault churn stabilizes within n - 1
//     rounds (Corollary to Property 1) — checked when the dimension is
//     configured;
//   * every MessageDrop has a matching prior MessageSend;
//   * every diagnosed-routing misroute postmortem follows the closed
//     route it judges, carries a known class, and is internally
//     consistent (drop node, ground feasibility, delivered hop count).
//
// Violations are collected as structured AuditViolation records, never
// asserts: the auditor is wired into live benches and must report, not
// abort. The same pass aggregates the derived diagnostics (hop heatmap,
// detour attribution, GS convergence profile, drop forensics, hop-count
// histogram) into an AuditReport (see report.hpp for rendering).
//
// Concurrency contract: on_event() is safe to call from any number of
// threads (one mutex; per-thread chain lanes keyed by thread id), so a
// single AuditSink can be tee'd into every worker of an exp::SweepEngine
// sweep. Events of one route must be emitted by one thread without
// interleaving another route on that thread — which is how every
// producer in this repository behaves (a route is traced synchronously
// by the thread that runs it).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/jsonl.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace slcube::obs {

struct AuditConfig {
  /// Cube dimension n; enables the GS "<= n-1 rounds" bound and the
  /// nav-vector width check. 0 = unknown (those checks are skipped).
  unsigned dimension = 0;
  /// Check the Theorem-2 floor level >= popcount(nav_after) on every
  /// preferred hop of a delivered route. True for stabilized tables;
  /// turn off when auditing deliberately stale-table robustness runs.
  bool check_hop_levels = true;
  /// Treat a "stuck" terminal status as a violation (it is impossible
  /// with a consistent level table — Theorem 2). Automatically suspended
  /// after fault churn until the stream shows a quiesced synchronous GS
  /// wave, since churn leaves the tables stale.
  bool stuck_is_violation = true;
  /// Detailed violation records kept (the counters in the report are
  /// always exact; this only bounds the per-violation detail strings).
  std::size_t max_violation_details = 64;
};

/// A streaming auditor; see the file comment for the invariants.
class AuditSink final : public TraceSink {
 public:
  explicit AuditSink(AuditConfig config = {});

  /// Thread-safe; see the concurrency contract above.
  void on_event(const TraceEvent& ev) override;

  /// Declare the stream complete: routes and GS waves still open become
  /// kTruncatedRoute / dangling-wave violations. Idempotent.
  void finish();

  /// Reconcile a sampled stream against the upstream SamplingSink's
  /// counters (the breadcrumb-only routes never reached this sink, so
  /// they are checked by count, not flagged as truncated): every
  /// promoted route must have arrived as a full audited chain with its
  /// summary, and the breadcrumb remainder is recorded in the report.
  /// `shed_events` (chain events the budget shed) land in events_lost.
  /// Call once, after the stream ends and before report().
  void reconcile_sampling(std::uint64_t promoted,
                          std::uint64_t breadcrumb_only,
                          std::uint64_t shed_events = 0);

  /// Fold a producer-reported loss count (e.g. RingBufferSink::dropped)
  /// into the report, marking missing chains as explained truncation.
  void note_events_lost(std::uint64_t lost);

  /// Snapshot of everything audited so far (violations + diagnostics).
  /// Call finish() first when the stream has ended.
  [[nodiscard]] AuditReport report() const;

  /// Total violations recorded so far (cheap; for assertion loops).
  [[nodiscard]] std::uint64_t violation_count() const;

 private:
  /// Per-thread audit lane: the in-flight route chain plus this thread's
  /// GS-wave and send/drop trackers. Threads never share a lane, so all
  /// per-route state is interleaving-free by construction.
  struct Lane {
    // --- in-flight route chain ---
    bool route_open = false;
    bool route_saw_fault_churn = false;  ///< node died/recovered mid-route
    /// Fault churn seen since the last quiesced synchronous GS wave:
    /// level tables may be stale, so "stuck is impossible" is suspended
    /// until the stream shows a full re-stabilization.
    bool stale_tables = false;
    SourceDecisionEvent source;
    std::vector<HopEvent> hops;
    // --- last closed route, kept for misroute attribution ---
    // MisrouteEvents arrive AFTER their route_done (the router emits the
    // terminal event internally, then the diagnosed wrapper judges it
    // against ground truth), so the summary of the just-closed route is
    // retained until the next route opens or a misroute consumes it.
    bool last_route_valid = false;
    NodeId last_route_source = 0;
    NodeId last_route_dest = 0;
    const char* last_route_status = "";
    unsigned last_route_hops = 0;
    /// RouteSummaryEvents use their own consumption flag (parallel to
    /// last_route_valid, which misroute postmortems consume) so a
    /// sampled diagnosed stream can carry both postmortems.
    bool last_route_exists = false;
    bool last_route_summarized = false;
    // --- GS wave tracker ---
    bool wave_open = false;
    unsigned wave_next_round = 0;
    bool wave_egs = false;
    bool wave_periodic = false;
    bool wave_saw_fault_churn = false;
    // --- drop matching: prior sends by (from << 32 | to), per MsgKind ---
    std::map<std::uint64_t, std::uint64_t> sends[2];
  };

  Lane& lane_locked();

  void violation(ViolationKind kind, std::string detail);
  void handle(Lane& lane, const SourceDecisionEvent& ev);
  void handle(Lane& lane, const HopEvent& ev);
  void handle(Lane& lane, const RouteDoneEvent& ev);
  void handle(Lane& lane, const GsRoundEvent& ev);
  void handle(Lane& lane, const MisrouteEvent& ev);
  void handle(Lane& lane, const RouteSummaryEvent& ev);
  void close_route(Lane& lane, const RouteDoneEvent& done);
  void close_wave(Lane& lane, unsigned final_round, bool quiesced);

  AuditConfig config_;
  mutable std::mutex mutex_;
  std::map<std::thread::id, Lane> lanes_;
  AuditReport report_;
  bool finished_ = false;
};

/// Reconstruct a typed TraceEvent from one parsed JSONL line (the
/// inverse of write_json for the dialect JsonlSink writes). Returns
/// false when the "event" discriminator is missing or unknown. String
/// fields are interned in a process-lifetime pool so the const char*
/// members stay valid.
[[nodiscard]] bool to_trace_event(const ParsedEvent& parsed, TraceEvent& out);

/// Audit a whole JSONL trace file offline: parse, reconstruct, stream
/// through an AuditSink, finish. `malformed` / `unknown` (optional)
/// receive counts of unparseable lines / unknown event kinds.
[[nodiscard]] AuditReport audit_jsonl_file(const std::string& path,
                                           const AuditConfig& config = {},
                                           std::size_t* malformed = nullptr,
                                           std::size_t* unknown = nullptr);

/// Post-mortem audit of a flight recorder: replay the retained events
/// through a fresh AuditSink and fold the ring's eviction count into
/// AuditReport::events_lost, so chain violations in a clipped recording
/// are distinguishable from real producer bugs (events_lost > 0 means
/// the oldest chains were truncated by the ring).
[[nodiscard]] AuditReport audit_ring(const RingBufferSink& ring,
                                     const AuditConfig& config = {});

}  // namespace slcube::obs
