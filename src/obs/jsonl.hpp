// slcube::obs — a deliberately small JSONL reader for trace replay. It
// parses exactly the dialect JsonlSink writes: one flat JSON object per
// line whose values are numbers, booleans, strings, null, or one level of
// nested object (flattened into dotted keys, e.g. "values.delivered").
// Not a general JSON library — arrays and deeper nesting are rejected.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace slcube::obs {

using JsonValue = std::variant<std::nullptr_t, bool, double, std::string>;

/// One parsed trace line: flattened key -> value.
struct ParsedEvent {
  std::map<std::string, JsonValue, std::less<>> fields;

  [[nodiscard]] bool has(std::string_view key) const;
  /// The "event" discriminator ("" when absent).
  [[nodiscard]] std::string_view kind() const { return str("event"); }
  [[nodiscard]] double num(std::string_view key, double fallback = 0.0) const;
  [[nodiscard]] std::int64_t integer(std::string_view key,
                                     std::int64_t fallback = 0) const;
  [[nodiscard]] bool boolean(std::string_view key,
                             bool fallback = false) const;
  [[nodiscard]] std::string_view str(std::string_view key,
                                     std::string_view fallback = "") const;
};

/// Parse one line; nullopt on malformed input.
[[nodiscard]] std::optional<ParsedEvent> parse_jsonl_line(
    std::string_view line);

/// Parse a whole file, skipping blank lines. `malformed` (optional)
/// receives the count of lines that failed to parse.
[[nodiscard]] std::vector<ParsedEvent> read_jsonl_file(
    const std::string& path, std::size_t* malformed = nullptr);

}  // namespace slcube::obs
