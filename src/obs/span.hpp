// slcube::obs — span timers: a monotonic stopwatch plus an RAII span that
// reports its duration to a TraceSink (as a SpanEvent) and/or a
// HistogramData accumulator on scope exit. Used by the sweep drivers to
// report per-point wall time and per-trial latency percentiles.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace slcube::obs {

/// Monotonic stopwatch (steady_clock).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }
  [[nodiscard]] double micros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }
  [[nodiscard]] double millis() const { return micros() / 1000.0; }
  [[nodiscard]] double seconds() const { return micros() / 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII span: on destruction, emits SpanEvent{name, µs, items} to `sink`
/// (when non-null) and observes the µs duration into `hist` (when
/// non-null). Both targets must outlive the span.
class SpanTimer {
 public:
  explicit SpanTimer(const char* name, TraceSink* sink = nullptr,
                     HistogramData* hist = nullptr)
      : name_(name), sink_(sink), hist_(hist) {}

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  ~SpanTimer() {
    const double us = watch_.micros();
    if (hist_ != nullptr) hist_->observe(us);
    if (sink_ != nullptr) sink_->on_event(SpanEvent{name_, us, items_});
  }

  /// Record how many work units the span covered (shows up in the event).
  void set_items(std::uint64_t items) noexcept { items_ = items; }

  [[nodiscard]] double elapsed_micros() const { return watch_.micros(); }

 private:
  const char* name_;
  TraceSink* sink_;
  HistogramData* hist_;
  Stopwatch watch_;
  std::uint64_t items_ = 0;
};

}  // namespace slcube::obs
