#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <ostream>

namespace slcube::obs {

// --- HistogramData ---------------------------------------------------------

HistogramData::HistogramData(std::vector<double> upper_bounds)
    : bounds(std::move(upper_bounds)), buckets(bounds.size() + 1, 0) {
  SLC_EXPECT_MSG(std::is_sorted(bounds.begin(), bounds.end()),
                 "histogram bounds must be ascending");
}

void HistogramData::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  ++buckets[static_cast<std::size_t>(it - bounds.begin())];
  if (count == 0) {
    min_seen = max_seen = v;
  } else {
    min_seen = std::min(min_seen, v);
    max_seen = std::max(max_seen, v);
  }
  ++count;
  sum += v;
}

void HistogramData::merge(const HistogramData& o) {
  if (o.count == 0) return;
  if (count == 0) {
    *this = o;
    return;
  }
  SLC_EXPECT_MSG(bounds == o.bounds,
                 "cannot merge histograms with different bucket bounds");
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += o.buckets[i];
  count += o.count;
  sum += o.sum;
  min_seen = std::min(min_seen, o.min_seen);
  max_seen = std::max(max_seen, o.max_seen);
}

double HistogramData::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  // !(q > 0) catches NaN as well as q <= 0 — same clamped edge contract
  // as IntHistogram::quantile (NaN must not fall through to max_seen).
  if (!(q > 0.0)) return min_seen;
  if (q >= 1.0) return max_seen;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t next = cum + buckets[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the bucket, clamping its edges to the exact
      // extremes so the first/last (and overflow) buckets never report
      // a bound nothing ever reached.
      double lo = i == 0 ? min_seen : std::max(bounds[i - 1], min_seen);
      double hi = i < bounds.size() ? std::min(bounds[i], max_seen) : max_seen;
      if (hi < lo) hi = lo;
      double f = (target - static_cast<double>(cum)) /
                 static_cast<double>(buckets[i]);
      f = std::clamp(f, 0.0, 1.0);
      return lo + f * (hi - lo);
    }
    cum = next;
  }
  return max_seen;
}

std::vector<double> exponential_bounds(double base, double growth,
                                       std::size_t n) {
  SLC_EXPECT(base > 0.0 && growth > 1.0);
  std::vector<double> b(n);
  double v = base;
  for (std::size_t i = 0; i < n; ++i, v *= growth) b[i] = v;
  return b;
}

std::vector<double> linear_bounds(double start, double step, std::size_t n) {
  SLC_EXPECT(step > 0.0);
  std::vector<double> b(n);
  double v = start;
  for (std::size_t i = 0; i < n; ++i, v += step) b[i] = v;
  return b;
}

// --- Registry shard routing ------------------------------------------------

namespace detail {

struct MetricsShard {
  mutable std::mutex mutex;  ///< per-thread, so virtually uncontended
  std::vector<std::uint64_t> counters;
  std::vector<HistogramData> histograms;
  /// Set by the owning thread's exit hook; scrape() folds flagged shards
  /// into the registry's retired accumulators and drops them from the map.
  std::atomic<bool> retired{false};
};

}  // namespace detail

namespace {

std::atomic<std::uint64_t> next_registry_id{1};

/// Single-entry thread-local cache: the registry a thread used last. A
/// miss (different registry, or first touch) falls back to the locked
/// per-thread map in the registry itself. Keyed by the never-reused id so
/// a dangling pointer from a destroyed registry can never false-hit.
struct ShardCache {
  std::uint64_t registry_id = 0;
  void* shard = nullptr;
};
thread_local ShardCache tl_shard_cache;

/// Flags every shard this thread created as retired when the thread
/// exits. Holding shared_ptrs keeps the flag write valid whichever of
/// thread and registry dies first; a registry that is already gone just
/// never reads the flag.
struct ShardRetirer {
  std::vector<std::shared_ptr<detail::MetricsShard>> shards;
  ~ShardRetirer() {
    for (const auto& s : shards) s->retired.store(true);
  }
};
thread_local ShardRetirer tl_shard_retirer;

}  // namespace

Registry::Registry() : id_(next_registry_id.fetch_add(1)) {}

Registry::~Registry() {
  // Invalidate this thread's cache if it points into us; other threads'
  // caches die harmlessly (the id is never reused, so they can only miss).
  if (tl_shard_cache.registry_id == id_) tl_shard_cache = {};
}

detail::MetricsShard& Registry::local_shard() const {
  if (tl_shard_cache.registry_id == id_) {
    return *static_cast<detail::MetricsShard*>(tl_shard_cache.shard);
  }
  std::lock_guard lock(mutex_);
  auto& slot = shards_[std::this_thread::get_id()];
  if (slot && slot->retired.load()) {
    // The OS reused a dead thread's id. Preserve the dead shard's data,
    // then hand the new thread a fresh shard under the same key.
    fold_shard_locked(*slot);
    slot.reset();
  }
  if (!slot) {
    slot = std::make_shared<detail::MetricsShard>();
    slot->counters.resize(counter_names_.size(), 0);
    for (const auto& bounds : histogram_bounds_) {
      slot->histograms.emplace_back(bounds);
    }
    tl_shard_retirer.shards.push_back(slot);
  }
  tl_shard_cache = {id_, slot.get()};
  return *slot;
}

void Registry::fold_shard_locked(const detail::MetricsShard& shard) const {
  std::lock_guard shard_lock(shard.mutex);
  if (retired_counters_.size() < shard.counters.size()) {
    retired_counters_.resize(shard.counters.size(), 0);
  }
  for (std::size_t i = 0; i < shard.counters.size(); ++i) {
    retired_counters_[i] += shard.counters[i];
  }
  for (std::size_t i = 0; i < shard.histograms.size(); ++i) {
    if (i >= retired_histograms_.size()) {
      retired_histograms_.emplace_back(histogram_bounds_[i]);
    }
    retired_histograms_[i].merge(shard.histograms[i]);
  }
}

std::size_t Registry::live_shards() const {
  std::lock_guard lock(mutex_);
  return shards_.size();
}

// --- registration ----------------------------------------------------------

namespace {

std::uint32_t find_or_append(std::vector<std::string>& names,
                             std::string_view name) {
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

}  // namespace

Counter Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  return Counter(this, find_or_append(counter_names_, name));
}

Gauge Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  const std::uint32_t idx = find_or_append(gauge_names_, name);
  if (idx == gauge_values_.size()) gauge_values_.push_back(0);
  return Gauge(this, idx);
}

Histogram Registry::histogram(std::string_view name,
                              std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  const std::uint32_t idx = find_or_append(histogram_names_, name);
  if (idx == histogram_bounds_.size()) {
    histogram_bounds_.push_back(std::move(bounds));
  }
  return Histogram(this, idx);
}

// --- handle operations -----------------------------------------------------

void Counter::inc(std::uint64_t n) const noexcept {
  if (reg_ == nullptr) return;
  detail::MetricsShard& shard = reg_->local_shard();
  std::lock_guard lock(shard.mutex);
  if (idx_ >= shard.counters.size()) shard.counters.resize(idx_ + 1, 0);
  shard.counters[idx_] += n;
}

std::uint64_t Counter::value() const {
  if (reg_ == nullptr) return 0;
  std::uint64_t total = 0;
  std::lock_guard lock(reg_->mutex_);
  if (idx_ < reg_->retired_counters_.size()) {
    total += reg_->retired_counters_[idx_];
  }
  for (const auto& [tid, shard] : reg_->shards_) {
    std::lock_guard shard_lock(shard->mutex);
    if (idx_ < shard->counters.size()) total += shard->counters[idx_];
  }
  return total;
}

void Gauge::set(std::int64_t v) const noexcept {
  if (reg_ == nullptr) return;
  std::lock_guard lock(reg_->mutex_);
  reg_->gauge_values_[idx_] = v;
}

void Gauge::add(std::int64_t delta) const noexcept {
  if (reg_ == nullptr) return;
  std::lock_guard lock(reg_->mutex_);
  reg_->gauge_values_[idx_] += delta;
}

std::int64_t Gauge::value() const {
  if (reg_ == nullptr) return 0;
  std::lock_guard lock(reg_->mutex_);
  return reg_->gauge_values_[idx_];
}

void Histogram::observe(double v) const noexcept {
  if (reg_ == nullptr) return;
  detail::MetricsShard& shard = reg_->local_shard();
  {
    std::lock_guard lock(shard.mutex);
    if (idx_ < shard.histograms.size()) {
      shard.histograms[idx_].observe(v);
      return;
    }
  }
  // Slow path: the shard predates this histogram's registration. Lock
  // order is registry before shard everywhere (scrape does the same).
  std::lock_guard reg_lock(reg_->mutex_);
  std::lock_guard lock(shard.mutex);
  for (std::size_t i = shard.histograms.size();
       i < reg_->histogram_bounds_.size(); ++i) {
    shard.histograms.emplace_back(reg_->histogram_bounds_[i]);
  }
  shard.histograms[idx_].observe(v);
}

HistogramData Histogram::snapshot() const {
  HistogramData out;
  if (reg_ == nullptr) return out;
  std::lock_guard lock(reg_->mutex_);
  out = HistogramData(reg_->histogram_bounds_[idx_]);
  if (idx_ < reg_->retired_histograms_.size()) {
    out.merge(reg_->retired_histograms_[idx_]);
  }
  for (const auto& [tid, shard] : reg_->shards_) {
    std::lock_guard shard_lock(shard->mutex);
    if (idx_ < shard->histograms.size()) out.merge(shard->histograms[idx_]);
  }
  return out;
}

// --- scrape ----------------------------------------------------------------

MetricsSnapshot Registry::scrape() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  // Dead threads can't write again: fold their shards into the retired
  // accumulators so shards_ stays bounded by the live thread count.
  for (auto it = shards_.begin(); it != shards_.end();) {
    if (it->second->retired.load()) {
      fold_shard_locked(*it->second);
      it = shards_.erase(it);
    } else {
      ++it;
    }
  }
  snap.counters.reserve(counter_names_.size());
  for (const auto& name : counter_names_) snap.counters.emplace_back(name, 0);
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges.emplace_back(gauge_names_[i], gauge_values_[i]);
  }
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    snap.histograms.emplace_back(histogram_names_[i],
                                 HistogramData(histogram_bounds_[i]));
  }
  for (std::size_t i = 0; i < retired_counters_.size(); ++i) {
    snap.counters[i].second += retired_counters_[i];
  }
  for (std::size_t i = 0; i < retired_histograms_.size(); ++i) {
    snap.histograms[i].second.merge(retired_histograms_[i]);
  }
  for (const auto& [tid, shard] : shards_) {
    std::lock_guard shard_lock(shard->mutex);
    for (std::size_t i = 0; i < shard->counters.size(); ++i) {
      snap.counters[i].second += shard->counters[i];
    }
    for (std::size_t i = 0; i < shard->histograms.size(); ++i) {
      snap.histograms[i].second.merge(shard->histograms[i]);
    }
  }
  return snap;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

// --- snapshot lookups ------------------------------------------------------

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramData* MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const auto& [name, v] : counters) {
    sep();
    write_json_string(os, name);
    os << ':' << v;
  }
  for (const auto& [name, v] : gauges) {
    sep();
    write_json_string(os, name);
    os << ':' << v;
  }
  for (const auto& [name, h] : histograms) {
    sep();
    write_json_string(os, name);
    os << ":{\"count\":" << h.count << ",\"mean\":" << h.mean()
       << ",\"p50\":" << h.quantile(0.50) << ",\"p90\":" << h.quantile(0.90)
       << ",\"p99\":" << h.quantile(0.99) << ",\"p999\":" << h.quantile(0.999)
       << ",\"max\":" << (h.count ? h.max_seen : 0.0) << '}';
  }
  os << '}';
}

}  // namespace slcube::obs
