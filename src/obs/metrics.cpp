#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <ostream>

namespace slcube::obs {

// --- HistogramData ---------------------------------------------------------

HistogramData::HistogramData(std::vector<double> upper_bounds)
    : bounds(std::move(upper_bounds)), buckets(bounds.size() + 1, 0) {
  SLC_EXPECT_MSG(std::is_sorted(bounds.begin(), bounds.end()),
                 "histogram bounds must be ascending");
}

void HistogramData::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  ++buckets[static_cast<std::size_t>(it - bounds.begin())];
  ++count;
  sum += v;
}

void HistogramData::merge(const HistogramData& o) {
  if (o.count == 0) return;
  if (count == 0) {
    *this = o;
    return;
  }
  SLC_EXPECT_MSG(bounds == o.bounds,
                 "cannot merge histograms with different bucket bounds");
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += o.buckets[i];
  count += o.count;
  sum += o.sum;
}

double HistogramData::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (static_cast<double>(cum) >= target && buckets[i] > 0) {
      return i < bounds.size() ? bounds[i] : bounds.empty() ? 0.0
                                                            : bounds.back();
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> exponential_bounds(double base, double growth,
                                       std::size_t n) {
  SLC_EXPECT(base > 0.0 && growth > 1.0);
  std::vector<double> b(n);
  double v = base;
  for (std::size_t i = 0; i < n; ++i, v *= growth) b[i] = v;
  return b;
}

// --- Registry shard routing ------------------------------------------------

namespace {

std::atomic<std::uint64_t> next_registry_id{1};

/// Single-entry thread-local cache: the registry a thread used last. A
/// miss (different registry, or first touch) falls back to the locked
/// per-thread map in the registry itself. Keyed by the never-reused id so
/// a dangling pointer from a destroyed registry can never false-hit.
struct ShardCache {
  std::uint64_t registry_id = 0;
  void* shard = nullptr;
};
thread_local ShardCache tl_shard_cache;

}  // namespace

Registry::Registry() : id_(next_registry_id.fetch_add(1)) {}

Registry::~Registry() {
  // Invalidate this thread's cache if it points into us; other threads'
  // caches die harmlessly (the id is never reused, so they can only miss).
  if (tl_shard_cache.registry_id == id_) tl_shard_cache = {};
}

Registry::Shard& Registry::local_shard() const {
  if (tl_shard_cache.registry_id == id_) {
    return *static_cast<Shard*>(tl_shard_cache.shard);
  }
  std::lock_guard lock(mutex_);
  auto& slot = shards_[std::this_thread::get_id()];
  if (!slot) {
    slot = std::make_unique<Shard>();
    slot->counters.resize(counter_names_.size(), 0);
    for (const auto& bounds : histogram_bounds_) {
      slot->histograms.emplace_back(bounds);
    }
  }
  tl_shard_cache = {id_, slot.get()};
  return *slot;
}

// --- registration ----------------------------------------------------------

namespace {

std::uint32_t find_or_append(std::vector<std::string>& names,
                             std::string_view name) {
  for (std::uint32_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

}  // namespace

Counter Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  return Counter(this, find_or_append(counter_names_, name));
}

Gauge Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  const std::uint32_t idx = find_or_append(gauge_names_, name);
  if (idx == gauge_values_.size()) gauge_values_.push_back(0);
  return Gauge(this, idx);
}

Histogram Registry::histogram(std::string_view name,
                              std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  const std::uint32_t idx = find_or_append(histogram_names_, name);
  if (idx == histogram_bounds_.size()) {
    histogram_bounds_.push_back(std::move(bounds));
  }
  return Histogram(this, idx);
}

// --- handle operations -----------------------------------------------------

void Counter::inc(std::uint64_t n) const noexcept {
  if (reg_ == nullptr) return;
  Registry::Shard& shard = reg_->local_shard();
  std::lock_guard lock(shard.mutex);
  if (idx_ >= shard.counters.size()) shard.counters.resize(idx_ + 1, 0);
  shard.counters[idx_] += n;
}

std::uint64_t Counter::value() const {
  if (reg_ == nullptr) return 0;
  std::uint64_t total = 0;
  std::lock_guard lock(reg_->mutex_);
  for (const auto& [tid, shard] : reg_->shards_) {
    std::lock_guard shard_lock(shard->mutex);
    if (idx_ < shard->counters.size()) total += shard->counters[idx_];
  }
  return total;
}

void Gauge::set(std::int64_t v) const noexcept {
  if (reg_ == nullptr) return;
  std::lock_guard lock(reg_->mutex_);
  reg_->gauge_values_[idx_] = v;
}

void Gauge::add(std::int64_t delta) const noexcept {
  if (reg_ == nullptr) return;
  std::lock_guard lock(reg_->mutex_);
  reg_->gauge_values_[idx_] += delta;
}

std::int64_t Gauge::value() const {
  if (reg_ == nullptr) return 0;
  std::lock_guard lock(reg_->mutex_);
  return reg_->gauge_values_[idx_];
}

void Histogram::observe(double v) const noexcept {
  if (reg_ == nullptr) return;
  Registry::Shard& shard = reg_->local_shard();
  {
    std::lock_guard lock(shard.mutex);
    if (idx_ < shard.histograms.size()) {
      shard.histograms[idx_].observe(v);
      return;
    }
  }
  // Slow path: the shard predates this histogram's registration. Lock
  // order is registry before shard everywhere (scrape does the same).
  std::lock_guard reg_lock(reg_->mutex_);
  std::lock_guard lock(shard.mutex);
  for (std::size_t i = shard.histograms.size();
       i < reg_->histogram_bounds_.size(); ++i) {
    shard.histograms.emplace_back(reg_->histogram_bounds_[i]);
  }
  shard.histograms[idx_].observe(v);
}

HistogramData Histogram::snapshot() const {
  HistogramData out;
  if (reg_ == nullptr) return out;
  std::lock_guard lock(reg_->mutex_);
  out = HistogramData(reg_->histogram_bounds_[idx_]);
  for (const auto& [tid, shard] : reg_->shards_) {
    std::lock_guard shard_lock(shard->mutex);
    if (idx_ < shard->histograms.size()) out.merge(shard->histograms[idx_]);
  }
  return out;
}

// --- scrape ----------------------------------------------------------------

MetricsSnapshot Registry::scrape() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  snap.counters.reserve(counter_names_.size());
  for (const auto& name : counter_names_) snap.counters.emplace_back(name, 0);
  for (std::size_t i = 0; i < gauge_names_.size(); ++i) {
    snap.gauges.emplace_back(gauge_names_[i], gauge_values_[i]);
  }
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    snap.histograms.emplace_back(histogram_names_[i],
                                 HistogramData(histogram_bounds_[i]));
  }
  for (const auto& [tid, shard] : shards_) {
    std::lock_guard shard_lock(shard->mutex);
    for (std::size_t i = 0; i < shard->counters.size(); ++i) {
      snap.counters[i].second += shard->counters[i];
    }
    for (std::size_t i = 0; i < shard->histograms.size(); ++i) {
      snap.histograms[i].second.merge(shard->histograms[i]);
    }
  }
  return snap;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

// --- snapshot lookups ------------------------------------------------------

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramData* MetricsSnapshot::histogram(std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  auto sep = [&] {
    if (!first) os << ',';
    first = false;
  };
  for (const auto& [name, v] : counters) {
    sep();
    write_json_string(os, name);
    os << ':' << v;
  }
  for (const auto& [name, v] : gauges) {
    sep();
    write_json_string(os, name);
    os << ':' << v;
  }
  for (const auto& [name, h] : histograms) {
    sep();
    write_json_string(os, name);
    os << ":{\"count\":" << h.count << ",\"mean\":" << h.mean()
       << ",\"p50\":" << h.quantile(0.50) << ",\"p90\":" << h.quantile(0.90)
       << ",\"p99\":" << h.quantile(0.99) << '}';
  }
  os << '}';
}

}  // namespace slcube::obs
