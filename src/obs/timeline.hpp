// slcube::obs — Chrome-trace / Perfetto timeline export for sampled
// serving traces. Consumes the JSONL dialect the serving layer writes
// (epoch_publish lineage, promoted route chains, route_summary records)
// and renders one self-contained Trace Event Format object that
// chrome://tracing and ui.perfetto.dev open directly:
//
//   * each published epoch becomes a duration slice ("X") on the
//     "epochs" track, spanning from its activation timestamp to its
//     successor's, with the lineage (parent, cause, churn, fault/link
//     census) as args;
//   * each churn-bearing publish additionally drops an instant ("i") at
//     the activation point, so fault/recovery bursts read as ticks;
//   * each promoted route becomes a duration slice on the "routes"
//     track at ts = its route id (scripted traces use the request index
//     as the time axis) with dur = hop count, carrying decision/ground
//     epochs, status, promotion reason, and staleness as args;
//   * breadcrumb-only route summaries (when the producer emitted them)
//     become instants on a third track, so the sampled remainder is
//     visible without pretending it has a chain.
//
// Timestamps are already in the trace's own unit (request index for
// scripted runs, epoch ordinal for live runs); they are passed through
// as microseconds, which Perfetto treats as an opaque linear axis.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/jsonl.hpp"

namespace slcube::obs {

struct TimelineOptions {
  /// Render breadcrumb-only route_summary records (promoted=false) as
  /// instants on their own track.
  bool include_breadcrumbs = true;
  /// Label for the process row in the timeline UI.
  const char* process_name = "slcube serving";
};

/// What write_chrome_trace emitted (for tests and report footers).
struct TimelineStats {
  std::uint64_t epoch_slices = 0;
  std::uint64_t churn_instants = 0;
  std::uint64_t route_slices = 0;
  std::uint64_t breadcrumb_instants = 0;
  std::uint64_t events_skipped = 0;  ///< parsed lines with no timeline shape
};

/// Render `events` (as parsed by read_jsonl_file / parse_jsonl_line)
/// into one Chrome Trace Event Format JSON object on `os`. Events that
/// have no timeline shape (hops, sends, gs rounds, ...) are counted in
/// events_skipped, not errors — the exporter is meant to run over the
/// same JSONL file the audit reads.
TimelineStats write_chrome_trace(std::ostream& os,
                                 const std::vector<ParsedEvent>& events,
                                 const TimelineOptions& options = {});

}  // namespace slcube::obs
