#include "obs/jsonl.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>

namespace slcube::obs {

bool ParsedEvent::has(std::string_view key) const {
  return fields.find(key) != fields.end();
}

double ParsedEvent::num(std::string_view key, double fallback) const {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  if (const double* d = std::get_if<double>(&it->second)) return *d;
  return fallback;
}

std::int64_t ParsedEvent::integer(std::string_view key,
                                  std::int64_t fallback) const {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  if (const double* d = std::get_if<double>(&it->second)) {
    return static_cast<std::int64_t>(*d);
  }
  return fallback;
}

bool ParsedEvent::boolean(std::string_view key, bool fallback) const {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  if (const bool* b = std::get_if<bool>(&it->second)) return *b;
  return fallback;
}

std::string_view ParsedEvent::str(std::string_view key,
                                  std::string_view fallback) const {
  const auto it = fields.find(key);
  if (it == fields.end()) return fallback;
  if (const std::string* s = std::get_if<std::string>(&it->second)) return *s;
  return fallback;
}

namespace {

/// Cursor over one line; every parse_* advances past what it consumed and
/// returns false on malformed input.
struct Cursor {
  std::string_view s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\r')) {
      ++pos;
    }
  }
  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos < s.size() && s[pos] == c;
  }
};

bool parse_string(Cursor& c, std::string& out) {
  if (!c.eat('"')) return false;
  out.clear();
  while (c.pos < c.s.size()) {
    const char ch = c.s[c.pos++];
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.pos >= c.s.size()) return false;
      const char esc = c.s[c.pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        default: return false;  // \uXXXX etc. — not emitted by our writer
      }
    } else {
      out += ch;
    }
  }
  return false;  // unterminated
}

bool parse_scalar(Cursor& c, JsonValue& out) {
  c.skip_ws();
  if (c.peek('"')) {
    std::string s;
    if (!parse_string(c, s)) return false;
    out = std::move(s);
    return true;
  }
  const std::string_view rest = c.s.substr(c.pos);
  if (rest.starts_with("true")) {
    c.pos += 4;
    out = true;
    return true;
  }
  if (rest.starts_with("false")) {
    c.pos += 5;
    out = false;
    return true;
  }
  if (rest.starts_with("null")) {
    c.pos += 4;
    out = nullptr;
    return true;
  }
  // Copy the numeric token out first: the view is not null-terminated.
  std::size_t end = c.pos;
  while (end < c.s.size() &&
         (std::isdigit(static_cast<unsigned char>(c.s[end])) != 0 ||
          c.s[end] == '-' || c.s[end] == '+' || c.s[end] == '.' ||
          c.s[end] == 'e' || c.s[end] == 'E')) {
    ++end;
  }
  if (end == c.pos) return false;
  const std::string token(c.s.substr(c.pos, end - c.pos));
  char* parsed_end = nullptr;
  const double d = std::strtod(token.c_str(), &parsed_end);
  if (parsed_end != token.c_str() + token.size()) return false;
  c.pos = end;
  out = d;
  return true;
}

bool parse_object(Cursor& c, const std::string& prefix, int depth,
                  ParsedEvent& out) {
  if (depth > 1) return false;  // one level of nesting is the whole dialect
  if (!c.eat('{')) return false;
  if (c.eat('}')) return true;
  for (;;) {
    std::string key;
    if (!parse_string(c, key)) return false;
    if (!c.eat(':')) return false;
    const std::string full =
        prefix.empty() ? std::move(key) : prefix + '.' + key;
    if (c.peek('{')) {
      if (!parse_object(c, full, depth + 1, out)) return false;
    } else {
      JsonValue v;
      if (!parse_scalar(c, v)) return false;
      out.fields.emplace(full, std::move(v));
    }
    if (c.eat('}')) return true;
    if (!c.eat(',')) return false;
  }
}

}  // namespace

std::optional<ParsedEvent> parse_jsonl_line(std::string_view line) {
  ParsedEvent ev;
  Cursor c{line};
  if (!parse_object(c, "", 0, ev)) return std::nullopt;
  c.skip_ws();
  if (c.pos != line.size()) return std::nullopt;  // trailing garbage
  return ev;
}

std::vector<ParsedEvent> read_jsonl_file(const std::string& path,
                                         std::size_t* malformed) {
  std::vector<ParsedEvent> out;
  if (malformed != nullptr) *malformed = 0;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (auto ev = parse_jsonl_line(line)) {
      out.push_back(std::move(*ev));
    } else if (malformed != nullptr) {
      ++*malformed;
    }
  }
  return out;
}

}  // namespace slcube::obs
