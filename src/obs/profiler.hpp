// slcube::obs — the stage profiler: cheap scoped RAII stage markers
// aggregated per-thread into a self/total stage tree, so a bench can say
// where the wall time of a sweep went (oracle cascade vs route loop vs
// engine overhead) without a sampling profiler.
//
// Cost model: a StageScope costs one thread-local load plus a null check
// when no profiler is installed on the thread — the same discipline as
// the nullable TraceSink* guards in trace.hpp. Profiling turns on per
// thread via ProfilerThreadGuard (the sweep engine installs one per
// worker chunk when EngineOptions::profiler is set), never globally, so
// untelemetered code paths pay nothing else.
//
// Aggregation: each attached thread owns an arena holding its private
// stage tree (nodes keyed by name under their parent). report() merges
// every arena into one StageReport by stage-name path and derives self
// time (total minus the sum of child totals). Arena updates take the
// arena's own (virtually uncontended) mutex, so report() may run from
// another thread — but a stage's time is only added when its scope
// *closes*, so call report() after the profiled region finished (the
// engine guarantees this: map() has returned before anyone reports).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace slcube::obs {

/// One merged stage: wall time of every entry into this stage (total),
/// the part not attributed to a child stage (self), and the entry count.
struct StageNode {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
  std::vector<StageNode> children;  ///< sorted by name (stable output)
};

struct StageReport {
  std::vector<StageNode> roots;  ///< sorted by name
  unsigned threads = 0;          ///< arenas that recorded at least one stage

  [[nodiscard]] bool empty() const { return roots.empty(); }
  /// Sum of root totals — the profiled wall time across all threads.
  [[nodiscard]] double total_us() const;
};

/// One "stage" JSONL line per node, depth-first ("path" joins names with
/// '/'): {"event":"stage","path":"trial/route","name":"route","depth":1,
/// "count":N,"total_us":X,"self_us":Y,"threads":T}. The telemetry dialect
/// is documented in EXPERIMENTS.md (TELEMETRY).
void write_stage_jsonl(std::ostream& os, const StageReport& report);

/// Indented human rendering: count, total, self, share of the report.
void write_stage_text(std::ostream& os, const StageReport& report);

class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Merge every thread arena into one tree. Safe to call while attached
  /// threads are alive, but only stages that already *closed* are
  /// counted — call it after the profiled region completed.
  [[nodiscard]] StageReport report() const;

  /// Drop all recorded stages (arenas stay registered).
  void reset();

  /// The profiler installed on the calling thread, or null.
  [[nodiscard]] static Profiler* current() noexcept;

 private:
  friend class StageScope;
  friend class ProfilerThreadGuard;

  struct Arena;
  [[nodiscard]] Arena& arena_for_current_thread();

  const std::uint64_t id_;    ///< never-reused identity (cache safety)
  mutable std::mutex mutex_;  ///< guards arenas_ (the map, not contents)
  std::map<std::thread::id, std::unique_ptr<Arena>> arenas_;
};

/// Installs a profiler as Profiler::current() for the calling thread for
/// the guard's lifetime; restores the previous value on destruction, so
/// guards nest. A null profiler is a supported no-op (profiling off).
class ProfilerThreadGuard {
 public:
  explicit ProfilerThreadGuard(Profiler* profiler) noexcept;
  ~ProfilerThreadGuard();
  ProfilerThreadGuard(const ProfilerThreadGuard&) = delete;
  ProfilerThreadGuard& operator=(const ProfilerThreadGuard&) = delete;

 private:
  Profiler* previous_;
};

/// RAII stage marker: when a profiler is installed on this thread, opens
/// a stage named `name` nested under the innermost open stage and closes
/// it on destruction. `name` must outlive the profiler (string literals
/// throughout the tree); equal *contents* merge, so the same stage name
/// used from different translation units is one stage.
class StageScope {
 public:
  explicit StageScope(const char* name) noexcept;
  ~StageScope();
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  Profiler::Arena* arena_ = nullptr;  ///< null = profiling off, full no-op
};

}  // namespace slcube::obs
