#include "obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ostream>

namespace slcube::obs {

using Clock = std::chrono::steady_clock;

/// One thread's private stage tree. Node 0 is a synthetic root whose
/// children are the thread's top-level stages. The open-stage stack keeps
/// (node index, entry time); only closed stages contribute time.
struct Profiler::Arena {
  struct Node {
    const char* name = nullptr;
    int parent = -1;
    int first_child = -1;
    int next_sibling = -1;
    std::uint64_t count = 0;
    std::uint64_t ns = 0;
  };

  mutable std::mutex mutex;  ///< owner-thread writes, report() reads
  std::vector<Node> nodes{Node{}};
  int current = 0;
  std::vector<std::pair<int, Clock::time_point>> stack;

  void enter(const char* name) {
    std::lock_guard lock(mutex);
    int child = nodes[static_cast<std::size_t>(current)].first_child;
    int prev = -1;
    while (child != -1) {
      if (std::strcmp(nodes[static_cast<std::size_t>(child)].name, name) ==
          0) {
        break;
      }
      prev = child;
      child = nodes[static_cast<std::size_t>(child)].next_sibling;
    }
    if (child == -1) {
      child = static_cast<int>(nodes.size());
      Node n;
      n.name = name;
      n.parent = current;
      nodes.push_back(n);
      if (prev == -1) {
        nodes[static_cast<std::size_t>(current)].first_child = child;
      } else {
        nodes[static_cast<std::size_t>(prev)].next_sibling = child;
      }
    }
    stack.emplace_back(child, Clock::now());
    current = child;
  }

  void exit() {
    const auto now = Clock::now();
    std::lock_guard lock(mutex);
    const auto [idx, start] = stack.back();
    stack.pop_back();
    Node& n = nodes[static_cast<std::size_t>(idx)];
    n.ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start)
            .count());
    ++n.count;
    current = n.parent;
  }
};

namespace {

thread_local Profiler* tl_profiler = nullptr;

std::atomic<std::uint64_t> next_profiler_id{1};

}  // namespace

Profiler::Profiler() : id_(next_profiler_id.fetch_add(1)) {}

Profiler::~Profiler() {
  // Threads attached via ProfilerThreadGuard must have detached (guard
  // destroyed) before the profiler dies; arenas are owned here.
  if (tl_profiler == this) tl_profiler = nullptr;
}

Profiler* Profiler::current() noexcept { return tl_profiler; }

Profiler::Arena& Profiler::arena_for_current_thread() {
  // One-entry thread-local cache, same shape as the metrics shard cache;
  // keyed by the never-reused id so a dangling pointer from a destroyed
  // profiler can never false-hit.
  thread_local std::uint64_t cached_owner = 0;
  thread_local Arena* cached_arena = nullptr;
  if (cached_owner == id_) return *cached_arena;
  std::lock_guard lock(mutex_);
  auto& slot = arenas_[std::this_thread::get_id()];
  if (!slot) slot = std::make_unique<Arena>();
  cached_owner = id_;
  cached_arena = slot.get();
  return *cached_arena;
}

void Profiler::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [tid, arena] : arenas_) {
    std::lock_guard arena_lock(arena->mutex);
    arena->nodes.assign(1, Arena::Node{});
    arena->current = 0;
    arena->stack.clear();
  }
}

namespace {

// Template so the (private) arena node type is deduced, never named.
template <typename ArenaNode>
void merge_node(const std::vector<ArenaNode>& nodes, int idx,
                std::vector<StageNode>& siblings) {
  const auto& n = nodes[static_cast<std::size_t>(idx)];
  auto it = std::find_if(siblings.begin(), siblings.end(),
                         [&](const StageNode& s) { return s.name == n.name; });
  if (it == siblings.end()) {
    StageNode fresh;
    fresh.name = n.name;
    it = siblings.insert(
        std::upper_bound(siblings.begin(), siblings.end(), fresh,
                         [](const StageNode& a, const StageNode& b) {
                           return a.name < b.name;
                         }),
        std::move(fresh));
  }
  it->count += n.count;
  it->total_us += static_cast<double>(n.ns) / 1000.0;
  for (int c = n.first_child; c != -1;
       c = nodes[static_cast<std::size_t>(c)].next_sibling) {
    merge_node(nodes, c, it->children);
  }
}

void derive_self(StageNode& node) {
  double child_total = 0.0;
  for (StageNode& c : node.children) {
    derive_self(c);
    child_total += c.total_us;
  }
  node.self_us = std::max(0.0, node.total_us - child_total);
}

}  // namespace

StageReport Profiler::report() const {
  StageReport out;
  std::lock_guard lock(mutex_);
  for (const auto& [tid, arena] : arenas_) {
    std::lock_guard arena_lock(arena->mutex);
    if (arena->nodes.size() <= 1) continue;
    ++out.threads;
    for (int c = arena->nodes[0].first_child; c != -1;
         c = arena->nodes[static_cast<std::size_t>(c)].next_sibling) {
      merge_node(arena->nodes, c, out.roots);
    }
  }
  for (StageNode& root : out.roots) derive_self(root);
  return out;
}

double StageReport::total_us() const {
  double sum = 0.0;
  for (const StageNode& r : roots) sum += r.total_us;
  return sum;
}

ProfilerThreadGuard::ProfilerThreadGuard(Profiler* profiler) noexcept
    : previous_(tl_profiler) {
  tl_profiler = profiler;
}

ProfilerThreadGuard::~ProfilerThreadGuard() { tl_profiler = previous_; }

StageScope::StageScope(const char* name) noexcept {
  Profiler* prof = tl_profiler;
  if (prof == nullptr) return;
  arena_ = &prof->arena_for_current_thread();
  arena_->enter(name);
}

StageScope::~StageScope() {
  if (arena_ != nullptr) arena_->exit();
}

// --- rendering -------------------------------------------------------------

namespace {

void write_stage_lines(std::ostream& os, const StageNode& node,
                       const std::string& prefix, unsigned depth,
                       unsigned threads) {
  const std::string path = prefix.empty() ? node.name : prefix + "/" + node.name;
  os << "{\"event\":\"stage\",\"path\":\"" << path << "\",\"name\":\""
     << node.name << "\",\"depth\":" << depth << ",\"count\":" << node.count
     << ",\"total_us\":" << node.total_us << ",\"self_us\":" << node.self_us
     << ",\"threads\":" << threads << "}\n";
  for (const StageNode& c : node.children) {
    write_stage_lines(os, c, path, depth + 1, threads);
  }
}

void write_text_lines(std::ostream& os, const StageNode& node, double scale,
                      unsigned depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s%-*s %10.1f ms total  %10.1f ms self  %5.1f%%  x%llu\n",
                indent.c_str(), static_cast<int>(24 - indent.size()),
                node.name.c_str(), node.total_us / 1000.0,
                node.self_us / 1000.0,
                scale > 0.0 ? 100.0 * node.total_us / scale : 0.0,
                static_cast<unsigned long long>(node.count));
  os << buf;
  for (const StageNode& c : node.children) {
    write_text_lines(os, c, scale, depth + 1);
  }
}

}  // namespace

void write_stage_jsonl(std::ostream& os, const StageReport& report) {
  for (const StageNode& r : report.roots) {
    write_stage_lines(os, r, "", 0, report.threads);
  }
}

void write_stage_text(std::ostream& os, const StageReport& report) {
  const double scale = report.total_us();
  for (const StageNode& r : report.roots) {
    write_text_lines(os, r, scale, 0);
  }
}

}  // namespace slcube::obs
