#include "obs/telemetry.hpp"

#include <algorithm>
#include <ostream>

namespace slcube::obs {

using Clock = std::chrono::steady_clock;

TimeSeriesRecorder::TimeSeriesRecorder(Registry& registry,
                                       RecorderOptions opts)
    : registry_(registry), opts_(opts), start_time_(Clock::now()) {}

TimeSeriesRecorder::~TimeSeriesRecorder() { stop(); }

void TimeSeriesRecorder::tick() {
  // Scrape outside the ring lock: scrape() takes the registry's own locks
  // and may be slow relative to a deque push.
  MetricsSnapshot snap = registry_.scrape();
  const double t_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start_time_)
          .count();
  std::lock_guard lock(mutex_);
  TimeSample sample;
  sample.tick = total_ticks_++;
  sample.t_ms = t_ms;
  sample.snapshot = std::move(snap);
  ring_.push_back(std::move(sample));
  while (ring_.size() > opts_.capacity) ring_.pop_front();
}

void TimeSeriesRecorder::start() {
  // lifecycle_mutex_ serializes the joinable-check/assign (and the
  // joinable-check/join in stop()): without it two concurrent start()
  // calls can both see a non-joinable sampler_ and the second assignment
  // to a running std::thread calls std::terminate, and a start() racing
  // a stop() is a data race on sampler_ itself. The sampler thread never
  // takes this mutex, so holding it across spawn/join cannot deadlock.
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (!timed() || sampler_.joinable()) return;
  {
    std::lock_guard lock(cv_mutex_);
    stopping_ = false;
  }
  sampler_ = std::thread([this] {
    const auto interval = std::chrono::milliseconds(opts_.sample_interval_ms);
    std::unique_lock lock(cv_mutex_);
    while (!cv_.wait_for(lock, interval, [this] { return stopping_; })) {
      lock.unlock();
      tick();
      lock.lock();
    }
  });
}

void TimeSeriesRecorder::stop() {
  std::lock_guard lifecycle(lifecycle_mutex_);
  if (!sampler_.joinable()) return;
  {
    std::lock_guard lock(cv_mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  sampler_.join();
}

std::vector<TimeSample> TimeSeriesRecorder::samples() const {
  std::lock_guard lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t TimeSeriesRecorder::total_ticks() const {
  std::lock_guard lock(mutex_);
  return total_ticks_;
}

std::size_t TimeSeriesRecorder::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

void InstrumentationHooks::tick() const {
  if (recorder != nullptr) recorder->tick();
}

// --- JSONL time-series exporter --------------------------------------------

namespace {

void write_key(std::ostream& os, std::string_view prefix,
               std::string_view name, std::string_view suffix = {}) {
  os << ",\"" << prefix << name;
  if (!suffix.empty()) os << '.' << suffix;
  os << "\":";
}

/// The histogram of activity between two samples: bucketwise difference.
/// The interval extremes are unknowable from cumulative buckets, so the
/// running extremes clamp the interpolation instead (still exact bounds
/// on anything observed in the interval).
HistogramData interval_histogram(const HistogramData& cur,
                                 const HistogramData* prev) {
  HistogramData d = cur;
  if (prev != nullptr && prev->count > 0 && prev->bounds == cur.bounds) {
    for (std::size_t i = 0; i < d.buckets.size(); ++i) {
      d.buckets[i] -= std::min(d.buckets[i], prev->buckets[i]);
    }
    d.count -= std::min(d.count, prev->count);
    d.sum -= prev->sum;
  }
  return d;
}

}  // namespace

void write_timeseries_jsonl(std::ostream& os,
                            const std::vector<TimeSample>& samples,
                            bool include_wall_time) {
  const TimeSample* prev = nullptr;
  for (const TimeSample& s : samples) {
    os << "{\"event\":\"ts_sample\",\"tick\":" << s.tick;
    if (include_wall_time) os << ",\"t_ms\":" << s.t_ms;
    for (const auto& [name, v] : s.snapshot.counters) {
      write_key(os, "c.", name);
      os << v;
      const std::uint64_t before = prev ? prev->snapshot.counter(name) : 0;
      write_key(os, "d.", name);
      os << (v >= before ? v - before : 0);
    }
    for (const auto& [name, v] : s.snapshot.gauges) {
      write_key(os, "g.", name);
      os << v;
    }
    for (const auto& [name, h] : s.snapshot.histograms) {
      const HistogramData* before =
          prev ? prev->snapshot.histogram(name) : nullptr;
      const HistogramData d = interval_histogram(h, before);
      write_key(os, "h.", name, "count");
      os << h.count;
      write_key(os, "h.", name, "d_count");
      os << d.count;
      write_key(os, "h.", name, "mean");
      os << d.mean();
      write_key(os, "h.", name, "p50");
      os << d.quantile(0.50);
      write_key(os, "h.", name, "p90");
      os << d.quantile(0.90);
      write_key(os, "h.", name, "p99");
      os << d.quantile(0.99);
      write_key(os, "h.", name, "p999");
      os << d.quantile(0.999);
      write_key(os, "h.", name, "max");
      os << (h.count ? h.max_seen : 0.0);
    }
    os << "}\n";
    prev = &s;
  }
}

// --- Prometheus text exposition --------------------------------------------

namespace {

std::string prometheus_name(std::string_view name) {
  std::string out = "slcube_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricsSnapshot& snapshot) {
  for (const auto& [name, v] : snapshot.counters) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " counter\n" << n << ' ' << v << '\n';
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " gauge\n" << n << ' ' << v << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = prometheus_name(name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += i < h.buckets.size() ? h.buckets[i] : 0;
      os << n << "_bucket{le=\"" << h.bounds[i] << "\"} " << cum << '\n';
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    os << n << "_sum " << h.sum << '\n';
    os << n << "_count " << h.count << '\n';
  }
}

}  // namespace slcube::obs
