// slcube::obs — structured trace events: typed records for everything the
// paper's argument turns on (which of C1/C2/C3 fired at the source, which
// preferred/spare neighbor was chosen per hop, how many GS rounds
// stabilization took, message sends/drops, node failures/recoveries) plus
// sweep-level span and per-point summary events.
//
// Cost model: producers hold a nullable `TraceSink*` and construct events
// only inside an `if (sink)` guard, so the untraced hot path pays one
// predictable branch. Three sinks ship: NullSink (explicit no-op),
// RingBufferSink (bounded in-memory flight recorder for post-mortems),
// and JsonlSink (one JSON object per line, stable field names — the
// schema is documented in EXPERIMENTS.md and consumed by
// examples/inspect --replay).
//
// Locking contract: TraceSink::on_event makes no thread-safety promise
// by itself — each concrete sink documents its own. NullSink is
// stateless and trivially safe. RingBufferSink synchronizes internally
// (one mutex around the ring), so SweepEngine workers may tee into a
// shared instance. JsonlSink is NOT synchronized: give it to one thread,
// or serialize calls externally (interleaved writes would corrupt the
// line structure); LockedJsonlSink is the synchronized wrapper for
// multi-worker shared files. TeeSink adds no locking of its own — it is
// exactly as safe as the least safe sink it fans out to. AuditSink
// (audit.hpp) and SamplingSink (sampling.hpp) synchronize internally.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "common/bitops.hpp"

namespace slcube::obs {

/// What kind of payload a simulated message carried.
enum class MsgKind : std::uint8_t { kLevelUpdate, kUnicast };
[[nodiscard]] const char* to_string(MsgKind k);

/// The source-side feasibility decision of UNICASTING_AT_SOURCE_NODE.
struct SourceDecisionEvent {
  NodeId source = 0;
  NodeId dest = 0;
  unsigned hamming = 0;  ///< H(s, d)
  bool c1 = false;
  bool c2 = false;
  bool c3 = false;
  int chosen_dim = -1;  ///< first-hop dimension; -1 when the source refused
  unsigned ties = 0;    ///< equally-maximal candidates at that choice
  bool spare = false;   ///< first hop is the one suboptimal spare detour
  // Section-4.1 two-view context; all zero/false for plain GS routes.
  bool egs = false;          ///< decided under the EGS two-view tables
  unsigned self_level = 0;   ///< source's self-view level — C1's input
  bool dest_link_faulty = false;  ///< footnote 3: dest across a dead link
};

/// One forwarding step (preferred hop, or the single spare detour hop).
struct HopEvent {
  NodeId from = 0;
  NodeId to = 0;
  unsigned dim = 0;
  unsigned level = 0;  ///< safety level of `to` as seen by the decider
  std::uint32_t nav_before = 0;  ///< navigation vector at `from`
  std::uint32_t nav_after = 0;   ///< navigation vector carried to `to`
  bool preferred = true;         ///< false for the spare detour
  unsigned ties = 0;
};

/// Terminal outcome of one unicast.
struct RouteDoneEvent {
  NodeId source = 0;
  NodeId dest = 0;
  const char* status = "";  ///< to_string of the route status
  unsigned hops = 0;
};

/// One completed GS/EGS stabilization round (or periodic wave).
struct GsRoundEvent {
  unsigned round = 0;
  std::uint64_t changed = 0;   ///< nodes whose level moved this round
  std::uint64_t messages = 0;  ///< LevelUpdates sent this round
  std::uint64_t sim_time = 0;
  bool egs = false;
  /// True for run_gs_periodic waves: `round` is the period index and
  /// `changed` counts useful register refreshes, so the paper's "n-1
  /// rounds to stabilize" bound does not apply.
  bool periodic = false;
};

/// A message entered the wire.
struct MessageSendEvent {
  std::uint64_t time = 0;
  NodeId from = 0;
  NodeId to = 0;
  MsgKind kind = MsgKind::kLevelUpdate;
};

/// A message died at delivery time (faulty link, or dead recipient).
struct MessageDropEvent {
  std::uint64_t time = 0;
  NodeId from = 0;
  NodeId to = 0;
  MsgKind kind = MsgKind::kLevelUpdate;
  const char* reason = "";  ///< "dead-node" | "faulty-link"
};

struct NodeFailEvent {
  std::uint64_t time = 0;
  NodeId node = 0;
};

struct NodeRecoverEvent {
  std::uint64_t time = 0;
  NodeId node = 0;
};

/// Diagnosed-routing postmortem: how a route planned on the *presumed*
/// fault set fared against the ground truth (diag/routing.hpp). Emitted
/// once per diagnosed route, after its route_done, including the benign
/// case (`cls == "none"`), so auditors can cross-check every route.
struct MisrouteEvent {
  NodeId source = 0;
  NodeId dest = 0;
  const char* cls = "";  ///< to_string of the MisrouteClass
  int drop_node = -1;    ///< ground-faulty node the route died at, or -1
  unsigned hops_taken = 0;      ///< hops actually traversed before the end
  bool ground_feasible = false; ///< ground-truth source decision was feasible
};

/// A new safety-table epoch was published by svc::SnapshotOracle,
/// carrying its lineage: which churn produced it from its parent. This
/// is what lets a promoted trace link a stale route decision to the
/// exact fault event that made it stale.
struct EpochPublishEvent {
  std::uint64_t epoch = 0;
  std::uint64_t parent = 0;  ///< previous published epoch (== epoch at 0)
  /// "node-fail" | "node-recover" | "link-fail" | "link-recover" |
  /// "retarget" | "batch" (several churn records) | "init" (epoch 0).
  const char* cause = "";
  std::int64_t node = -1;  ///< churned node / link endpoint; -1 for batch
  int dim = -1;            ///< link dimension; -1 for node churn
  std::uint64_t churn = 0;   ///< lineage records folded into this epoch
  std::uint64_t faults = 0;  ///< node faults after publish
  std::uint64_t links = 0;   ///< link faults after publish
  /// Timeline position. SnapshotOracle stamps the epoch number; scripted
  /// workloads re-stamp the request index at which the epoch activates,
  /// so epochs and route ids share one axis in timeline exports.
  std::uint64_t ts = 0;
};

/// Per-route verdict from obs::SamplingSink: emitted after the full
/// chain for promoted routes, and (optionally) alone for breadcrumb-only
/// routes. `status` is the serving-layer status string (svc::ServeStatus
/// for the service benches), which refines the chain's route_done status
/// ("lost" chains carry the precise dropped-source/node/link cause here).
struct RouteSummaryEvent {
  std::uint64_t route_id = 0;
  std::uint64_t decision_epoch = 0;
  std::uint64_t ground_epoch = 0;  ///< >= decision_epoch; > means stale
  const char* status = "";
  unsigned hops = 0;
  double latency_us = -1.0;  ///< < 0 = not measured (ticks mode)
  bool promoted = false;     ///< full chain retained (precedes this event)
  const char* reason = "";   ///< promotion reason, "none" for breadcrumbs
};

/// A timed region finished (sweep point, bench phase, ...).
struct SpanEvent {
  const char* name = "";
  double micros = 0.0;
  std::uint64_t items = 0;  ///< work units inside the span (0 = unset)
};

/// Per-point summary of an experiment sweep: timing, worker utilization,
/// per-trial latency percentiles, and flattened result metrics.
struct SweepPointEvent {
  const char* sweep = "";  ///< "routing" | "rounds"
  std::uint64_t fault_count = 0;
  double wall_ms = 0.0;
  double utilization = 0.0;  ///< busy worker time / (wall * workers)
  unsigned threads = 0;      ///< sweep-engine workers that ran the point
  double trial_p50_us = 0.0;
  double trial_p90_us = 0.0;
  double trial_p99_us = 0.0;
  std::vector<std::pair<std::string, double>> values;
};

using TraceEvent =
    std::variant<SourceDecisionEvent, HopEvent, RouteDoneEvent, GsRoundEvent,
                 MessageSendEvent, MessageDropEvent, NodeFailEvent,
                 NodeRecoverEvent, MisrouteEvent, EpochPublishEvent,
                 RouteSummaryEvent, SpanEvent, SweepPointEvent>;

/// The stable "event" field value each alternative serializes under.
[[nodiscard]] const char* event_name(const TraceEvent& ev);

/// Serialize one event as a single-line JSON object (no trailing newline).
void write_json(std::ostream& os, const TraceEvent& ev);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
};

/// Explicit stand-in for "no tracing" when a non-null sink is required.
class NullSink final : public TraceSink {
 public:
  void on_event(const TraceEvent&) override {}
};

/// Flight recorder: keeps the most recent `capacity` events in memory so
/// a failure can be explained after the fact without paying for a file.
/// Thread-safe: on_event / size / total_seen / snapshot / clear all take
/// one internal mutex, so any number of producers (e.g. SweepEngine
/// workers behind a TeeSink) may write concurrently.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 4096);
  void on_event(const TraceEvent& ev) override;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t total_seen() const;
  /// Events evicted to make room (total_seen - retained). Post-mortems
  /// must check this: a nonzero count means the oldest chains in
  /// snapshot() are truncated by the ring, not by a producer bug.
  /// audit_ring (audit.hpp) folds it into AuditReport::events_lost.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::uint64_t dropped_ = 0;
};

/// One JSON object per event per line, flushed on destruction.
class JsonlSink final : public TraceSink {
 public:
  /// Borrow a stream (caller keeps it alive).
  explicit JsonlSink(std::ostream& os);
  /// Own a file (truncates).
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;

  void on_event(const TraceEvent& ev) override;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
};

/// JsonlSink behind a mutex: whole lines are written atomically, so any
/// number of worker threads may share one JSONL file. Lines from
/// different threads interleave at event granularity — fine for
/// independent events (churn, spans, promoted summaries) and for
/// SamplingSink output (which forwards each promoted chain as one
/// locked burst), but a multi-threaded producer emitting raw route
/// chains will still interleave *chains*; keep those per-thread or
/// sample them.
class LockedJsonlSink final : public TraceSink {
 public:
  explicit LockedJsonlSink(std::ostream& os) : inner_(os) {}
  explicit LockedJsonlSink(const std::string& path) : inner_(path) {}

  void on_event(const TraceEvent& ev) override {
    const std::scoped_lock lock(mutex_);
    inner_.on_event(ev);
  }

 private:
  std::mutex mutex_;
  JsonlSink inner_;
};

/// Fan out to several sinks (e.g. flight recorder + JSONL file).
///
/// Locking contract (tested under TSan in test_obs): TeeSink itself is
/// immutable after construction — on_event touches only the const sink
/// list — so concurrent calls are safe exactly when every child sink's
/// on_event is safe (RingBufferSink, LockedJsonlSink, AuditSink: yes;
/// JsonlSink: no). TeeSink adds no ordering either: events from
/// different threads reach the children in whatever order the children's
/// own locks admit them.
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}
  void on_event(const TraceEvent& ev) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->on_event(ev);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace slcube::obs
