// slcube::obs — structured trace events: typed records for everything the
// paper's argument turns on (which of C1/C2/C3 fired at the source, which
// preferred/spare neighbor was chosen per hop, how many GS rounds
// stabilization took, message sends/drops, node failures/recoveries) plus
// sweep-level span and per-point summary events.
//
// Cost model: producers hold a nullable `TraceSink*` and construct events
// only inside an `if (sink)` guard, so the untraced hot path pays one
// predictable branch. Three sinks ship: NullSink (explicit no-op),
// RingBufferSink (bounded in-memory flight recorder for post-mortems),
// and JsonlSink (one JSON object per line, stable field names — the
// schema is documented in EXPERIMENTS.md and consumed by
// examples/inspect --replay).
//
// Locking contract: TraceSink::on_event makes no thread-safety promise
// by itself — each concrete sink documents its own. NullSink is
// stateless and trivially safe. RingBufferSink synchronizes internally
// (one mutex around the ring), so SweepEngine workers may tee into a
// shared instance. JsonlSink is NOT synchronized: give it to one thread,
// or serialize calls externally (interleaved writes would corrupt the
// line structure). TeeSink adds no locking of its own — it is exactly as
// safe as the least safe sink it fans out to. AuditSink (audit.hpp)
// synchronizes internally.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "common/bitops.hpp"

namespace slcube::obs {

/// What kind of payload a simulated message carried.
enum class MsgKind : std::uint8_t { kLevelUpdate, kUnicast };
[[nodiscard]] const char* to_string(MsgKind k);

/// The source-side feasibility decision of UNICASTING_AT_SOURCE_NODE.
struct SourceDecisionEvent {
  NodeId source = 0;
  NodeId dest = 0;
  unsigned hamming = 0;  ///< H(s, d)
  bool c1 = false;
  bool c2 = false;
  bool c3 = false;
  int chosen_dim = -1;  ///< first-hop dimension; -1 when the source refused
  unsigned ties = 0;    ///< equally-maximal candidates at that choice
  bool spare = false;   ///< first hop is the one suboptimal spare detour
  // Section-4.1 two-view context; all zero/false for plain GS routes.
  bool egs = false;          ///< decided under the EGS two-view tables
  unsigned self_level = 0;   ///< source's self-view level — C1's input
  bool dest_link_faulty = false;  ///< footnote 3: dest across a dead link
};

/// One forwarding step (preferred hop, or the single spare detour hop).
struct HopEvent {
  NodeId from = 0;
  NodeId to = 0;
  unsigned dim = 0;
  unsigned level = 0;  ///< safety level of `to` as seen by the decider
  std::uint32_t nav_before = 0;  ///< navigation vector at `from`
  std::uint32_t nav_after = 0;   ///< navigation vector carried to `to`
  bool preferred = true;         ///< false for the spare detour
  unsigned ties = 0;
};

/// Terminal outcome of one unicast.
struct RouteDoneEvent {
  NodeId source = 0;
  NodeId dest = 0;
  const char* status = "";  ///< to_string of the route status
  unsigned hops = 0;
};

/// One completed GS/EGS stabilization round (or periodic wave).
struct GsRoundEvent {
  unsigned round = 0;
  std::uint64_t changed = 0;   ///< nodes whose level moved this round
  std::uint64_t messages = 0;  ///< LevelUpdates sent this round
  std::uint64_t sim_time = 0;
  bool egs = false;
  /// True for run_gs_periodic waves: `round` is the period index and
  /// `changed` counts useful register refreshes, so the paper's "n-1
  /// rounds to stabilize" bound does not apply.
  bool periodic = false;
};

/// A message entered the wire.
struct MessageSendEvent {
  std::uint64_t time = 0;
  NodeId from = 0;
  NodeId to = 0;
  MsgKind kind = MsgKind::kLevelUpdate;
};

/// A message died at delivery time (faulty link, or dead recipient).
struct MessageDropEvent {
  std::uint64_t time = 0;
  NodeId from = 0;
  NodeId to = 0;
  MsgKind kind = MsgKind::kLevelUpdate;
  const char* reason = "";  ///< "dead-node" | "faulty-link"
};

struct NodeFailEvent {
  std::uint64_t time = 0;
  NodeId node = 0;
};

struct NodeRecoverEvent {
  std::uint64_t time = 0;
  NodeId node = 0;
};

/// Diagnosed-routing postmortem: how a route planned on the *presumed*
/// fault set fared against the ground truth (diag/routing.hpp). Emitted
/// once per diagnosed route, after its route_done, including the benign
/// case (`cls == "none"`), so auditors can cross-check every route.
struct MisrouteEvent {
  NodeId source = 0;
  NodeId dest = 0;
  const char* cls = "";  ///< to_string of the MisrouteClass
  int drop_node = -1;    ///< ground-faulty node the route died at, or -1
  unsigned hops_taken = 0;      ///< hops actually traversed before the end
  bool ground_feasible = false; ///< ground-truth source decision was feasible
};

/// A timed region finished (sweep point, bench phase, ...).
struct SpanEvent {
  const char* name = "";
  double micros = 0.0;
  std::uint64_t items = 0;  ///< work units inside the span (0 = unset)
};

/// Per-point summary of an experiment sweep: timing, worker utilization,
/// per-trial latency percentiles, and flattened result metrics.
struct SweepPointEvent {
  const char* sweep = "";  ///< "routing" | "rounds"
  std::uint64_t fault_count = 0;
  double wall_ms = 0.0;
  double utilization = 0.0;  ///< busy worker time / (wall * workers)
  unsigned threads = 0;      ///< sweep-engine workers that ran the point
  double trial_p50_us = 0.0;
  double trial_p90_us = 0.0;
  double trial_p99_us = 0.0;
  std::vector<std::pair<std::string, double>> values;
};

using TraceEvent =
    std::variant<SourceDecisionEvent, HopEvent, RouteDoneEvent, GsRoundEvent,
                 MessageSendEvent, MessageDropEvent, NodeFailEvent,
                 NodeRecoverEvent, MisrouteEvent, SpanEvent, SweepPointEvent>;

/// The stable "event" field value each alternative serializes under.
[[nodiscard]] const char* event_name(const TraceEvent& ev);

/// Serialize one event as a single-line JSON object (no trailing newline).
void write_json(std::ostream& os, const TraceEvent& ev);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
};

/// Explicit stand-in for "no tracing" when a non-null sink is required.
class NullSink final : public TraceSink {
 public:
  void on_event(const TraceEvent&) override {}
};

/// Flight recorder: keeps the most recent `capacity` events in memory so
/// a failure can be explained after the fact without paying for a file.
/// Thread-safe: on_event / size / total_seen / snapshot / clear all take
/// one internal mutex, so any number of producers (e.g. SweepEngine
/// workers behind a TeeSink) may write concurrently.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 4096);
  void on_event(const TraceEvent& ev) override;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t total_seen() const;
  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
};

/// One JSON object per event per line, flushed on destruction.
class JsonlSink final : public TraceSink {
 public:
  /// Borrow a stream (caller keeps it alive).
  explicit JsonlSink(std::ostream& os);
  /// Own a file (truncates).
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;

  void on_event(const TraceEvent& ev) override;

 private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* os_;
};

/// Fan out to several sinks (e.g. flight recorder + JSONL file).
class TeeSink final : public TraceSink {
 public:
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}
  void on_event(const TraceEvent& ev) override {
    for (TraceSink* s : sinks_) {
      if (s != nullptr) s->on_event(ev);
    }
  }

 private:
  std::vector<TraceSink*> sinks_;
};

}  // namespace slcube::obs
