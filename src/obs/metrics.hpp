// slcube::obs — a process-wide (or per-object) metrics registry: named
// counters, gauges, and fixed-bucket histograms. Writes go to cheap
// thread-local shards (one uncontended mutex per thread); scrape() merges
// every shard into an immutable snapshot. This replaces the ad-hoc
// counter structs that used to live inside individual subsystems
// (sim::NetworkStats is now a scrape view over one of these).
//
// Lifetime contract: handles (Counter/Gauge/Histogram) are thin
// {registry, index} pairs and must not outlive their Registry. Metric
// names are registered idempotently — asking twice for the same name
// returns the same slot, so independent modules can share a metric.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/contracts.hpp"

namespace slcube::obs {

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// one extra overflow bucket catches everything above the last bound.
/// A plain value type so it can be used standalone (per-chunk latency
/// accumulators in the sweep driver) as well as inside the registry.
/// The exact min/max observed are tracked alongside the buckets so
/// quantiles interpolate instead of snapping to bucket bounds — in
/// particular the overflow bucket reports real values, not the last bound.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 slots
  std::uint64_t count = 0;
  double sum = 0.0;
  double min_seen = 0.0;  ///< meaningful only when count > 0
  double max_seen = 0.0;  ///< meaningful only when count > 0

  HistogramData() = default;
  explicit HistogramData(std::vector<double> upper_bounds);

  void observe(double v) noexcept;
  void merge(const HistogramData& o);

  [[nodiscard]] double mean() const noexcept {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
  /// Interpolated q-quantile: linear within the target bucket, with the
  /// bucket edges clamped to the exact min/max observed, so q=0 is the
  /// min, q=1 is the max, and the overflow bucket never reports an
  /// invented bound. Edges are defined, never trapped: an empty
  /// histogram yields 0, and q is clamped into [0, 1] (NaN to 0).
  [[nodiscard]] double quantile(double q) const noexcept;
};

/// `n` exponentially growing upper bounds: base, base*growth, ... —
/// the standard ladder for latency histograms.
[[nodiscard]] std::vector<double> exponential_bounds(double base,
                                                     double growth,
                                                     std::size_t n);

/// `n` evenly spaced upper bounds: start, start+step, ... — for small
/// integral domains like hop counts.
[[nodiscard]] std::vector<double> linear_bounds(double start, double step,
                                                std::size_t n);

class Registry;

/// Monotonically increasing counter.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const noexcept;
  [[nodiscard]] std::uint64_t value() const;  ///< summed over all shards

 private:
  friend class Registry;
  Counter(Registry* reg, std::uint32_t idx) : reg_(reg), idx_(idx) {}
  Registry* reg_ = nullptr;
  std::uint32_t idx_ = 0;
};

/// Point-in-time value (not sharded: set() wants last-write-wins).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const noexcept;
  void add(std::int64_t delta) const noexcept;
  [[nodiscard]] std::int64_t value() const;

 private:
  friend class Registry;
  Gauge(Registry* reg, std::uint32_t idx) : reg_(reg), idx_(idx) {}
  Registry* reg_ = nullptr;
  std::uint32_t idx_ = 0;
};

/// Sharded fixed-bucket histogram.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const noexcept;
  [[nodiscard]] HistogramData snapshot() const;  ///< merged over shards

 private:
  friend class Registry;
  Histogram(Registry* reg, std::uint32_t idx) : reg_(reg), idx_(idx) {}
  Registry* reg_ = nullptr;
  std::uint32_t idx_ = 0;
};

/// Everything a registry knew at one scrape, by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;

  [[nodiscard]] std::uint64_t counter(std::string_view name) const;
  [[nodiscard]] std::int64_t gauge(std::string_view name) const;
  [[nodiscard]] const HistogramData* histogram(std::string_view name) const;

  /// One flat JSON object: counters/gauges by name, histograms as
  /// {"count":..,"mean":..,"p50":..,"p90":..,"p99":..,"p999":..,"max":..}.
  /// No newline.
  void write_json(std::ostream& os) const;
};

namespace detail {
struct MetricsShard;  ///< one thread's private slice of a Registry
}  // namespace detail

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Idempotent registration: the same name always maps to one slot.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    std::vector<double> bounds);

  [[nodiscard]] MetricsSnapshot scrape() const;

  /// Shards still owned by the per-thread map (dead-thread shards are
  /// folded into a retired accumulator by scrape(), so this stays bounded
  /// by the number of *live* writer threads, not the historical total).
  [[nodiscard]] std::size_t live_shards() const;

  /// Process-wide default registry (for code without a natural owner).
  static Registry& global();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  [[nodiscard]] detail::MetricsShard& local_shard() const;
  /// Merge one shard's data into the retired accumulators. Caller holds
  /// mutex_; takes the shard's own mutex.
  void fold_shard_locked(const detail::MetricsShard& shard) const;

  const std::uint64_t id_;  ///< never-reused registry identity
  mutable std::mutex mutex_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::int64_t> gauge_values_;
  std::vector<std::string> histogram_names_;
  std::vector<std::vector<double>> histogram_bounds_;
  /// shared_ptr so a thread-exit retirer can keep its shard alive past
  /// registry teardown (either side may die first).
  mutable std::map<std::thread::id, std::shared_ptr<detail::MetricsShard>>
      shards_;
  /// Data from dead-thread shards, folded in by scrape().
  mutable std::vector<std::uint64_t> retired_counters_;
  mutable std::vector<HistogramData> retired_histograms_;
};

}  // namespace slcube::obs
