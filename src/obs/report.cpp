#include "obs/report.hpp"

#include <algorithm>
#include <ostream>

#include "common/contracts.hpp"
#include "common/table.hpp"

namespace slcube::obs {

const char* to_string(ViolationKind k) {
  switch (k) {
    case ViolationKind::kHopCountMismatch:
      return "hop-count-mismatch";
    case ViolationKind::kNavBitNotToggled:
      return "nav-bit-not-toggled";
    case ViolationKind::kBrokenChain:
      return "broken-chain";
    case ViolationKind::kFlagsInconsistent:
      return "flags-inconsistent";
    case ViolationKind::kSpareMisuse:
      return "spare-misuse";
    case ViolationKind::kHopLevelTooLow:
      return "hop-level-too-low";
    case ViolationKind::kStuckRoute:
      return "stuck-route";
    case ViolationKind::kGsRoundOrder:
      return "gs-round-order";
    case ViolationKind::kGsBoundExceeded:
      return "gs-bound-exceeded";
    case ViolationKind::kDropWithoutSend:
      return "drop-without-send";
    case ViolationKind::kTruncatedRoute:
      return "truncated-route";
    case ViolationKind::kMisrouteUnattributed:
      return "misroute-unattributed";
    case ViolationKind::kSummaryMismatch:
      return "summary-mismatch";
  }
  SLC_UNREACHABLE("bad ViolationKind");
}

std::vector<double> hop_count_bounds() {
  std::vector<double> bounds(33);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    bounds[i] = static_cast<double>(i);
  }
  return bounds;
}

std::vector<double> sweep_wall_bounds() {
  return exponential_bounds(0.01, 2.0, 24);  // 0.01 ms .. ~84 s
}

AuditReport::AuditReport()
    : hops_per_route(hop_count_bounds()), sweep_wall_ms(sweep_wall_bounds()) {}

void AuditReport::merge(const AuditReport& o) {
  events += o.events;
  routes += o.routes;
  hops += o.hops;
  spare_hops += o.spare_hops;
  for (const auto& [k, v] : o.routes_by_status) routes_by_status[k] += v;
  violations_total += o.violations_total;
  for (std::size_t i = 0; i < kNumViolationKinds; ++i) {
    violations_by_kind[i] += o.violations_by_kind[i];
  }
  details.insert(details.end(), o.details.begin(), o.details.end());
  for (const auto& [k, v] : o.preferred_by_dim) preferred_by_dim[k] += v;
  for (const auto& [k, v] : o.spare_by_dim) spare_by_dim[k] += v;
  for (const auto& [k, v] : o.spare_by_hamming) spare_by_hamming[k] += v;
  gs_waves += o.gs_waves;
  gs_max_round = std::max(gs_max_round, o.gs_max_round);
  for (const auto& [round, acc] : o.gs_curve) {
    gs_curve[round].first += acc.first;
    gs_curve[round].second += acc.second;
  }
  misroutes += o.misroutes;
  for (const auto& [k, v] : o.misroutes_by_class) misroutes_by_class[k] += v;
  sends += o.sends;
  drops += o.drops;
  for (const auto& [k, v] : o.drops_by_reason) drops_by_reason[k] += v;
  promoted_routes += o.promoted_routes;
  breadcrumb_routes += o.breadcrumb_routes;
  for (const auto& [k, v] : o.promoted_by_reason) promoted_by_reason[k] += v;
  epochs_published += o.epochs_published;
  events_lost += o.events_lost;
  hops_per_route.merge(o.hops_per_route);
  sweep_points += o.sweep_points;
  sweep_wall_ms.merge(o.sweep_wall_ms);
}

namespace {

void print_hist_row(Table& t, const char* name, const HistogramData& h) {
  t.row() << std::string(name) << static_cast<std::int64_t>(h.count)
          << h.mean() << h.quantile(0.5) << h.quantile(0.9)
          << h.quantile(0.99);
}

}  // namespace

void AuditReport::render_text(std::ostream& os) const {
  {
    Table t("AUDIT SUMMARY", {"metric", "value"});
    t.row() << "events" << static_cast<std::int64_t>(events);
    t.row() << "routes" << static_cast<std::int64_t>(routes);
    t.row() << "hops" << static_cast<std::int64_t>(hops);
    t.row() << "spare hops" << static_cast<std::int64_t>(spare_hops);
    t.row() << "gs waves" << static_cast<std::int64_t>(gs_waves);
    t.row() << "gs max round" << static_cast<std::int64_t>(gs_max_round);
    t.row() << "misroutes" << static_cast<std::int64_t>(misroutes);
    t.row() << "sends" << static_cast<std::int64_t>(sends);
    t.row() << "drops" << static_cast<std::int64_t>(drops);
    t.row() << "sweep points" << static_cast<std::int64_t>(sweep_points);
    if (promoted_routes != 0 || breadcrumb_routes != 0) {
      t.row() << "promoted routes" << static_cast<std::int64_t>(promoted_routes);
      t.row() << "breadcrumb routes"
              << static_cast<std::int64_t>(breadcrumb_routes);
    }
    if (epochs_published != 0) {
      t.row() << "epochs published"
              << static_cast<std::int64_t>(epochs_published);
    }
    if (events_lost != 0) {
      t.row() << "events lost (truncation)"
              << static_cast<std::int64_t>(events_lost);
    }
    t.row() << "VIOLATIONS" << static_cast<std::int64_t>(violations_total);
    t.print(os);
  }

  if (!routes_by_status.empty()) {
    Table t("ROUTES BY STATUS", {"status", "routes"});
    for (const auto& [status, n] : routes_by_status) {
      t.row() << status << static_cast<std::int64_t>(n);
    }
    t.print(os);
  }

  {
    Table t("VIOLATIONS", {"kind", "count"});
    for (std::size_t i = 0; i < kNumViolationKinds; ++i) {
      if (violations_by_kind[i] == 0) continue;
      t.row() << to_string(static_cast<ViolationKind>(i))
              << static_cast<std::int64_t>(violations_by_kind[i]);
    }
    if (t.num_rows() == 0) t.row() << "(none)" << std::int64_t{0};
    t.print(os);
    for (const auto& v : details) {
      os << "  [" << to_string(v.kind) << "] " << v.detail << '\n';
    }
    if (!details.empty()) os << '\n';
  }

  if (!preferred_by_dim.empty() || !spare_by_dim.empty()) {
    Table t("HOP HEATMAP", {"dim", "preferred", "spare"});
    std::map<unsigned, std::pair<std::uint64_t, std::uint64_t>> by_dim;
    for (const auto& [d, n] : preferred_by_dim) by_dim[d].first = n;
    for (const auto& [d, n] : spare_by_dim) by_dim[d].second = n;
    for (const auto& [d, n] : by_dim) {
      t.row() << static_cast<std::int64_t>(d)
              << static_cast<std::int64_t>(n.first)
              << static_cast<std::int64_t>(n.second);
    }
    t.print(os);
  }

  if (!spare_by_hamming.empty()) {
    Table t("SPARE DETOURS BY DISTANCE", {"H", "spares"});
    for (const auto& [h, n] : spare_by_hamming) {
      t.row() << static_cast<std::int64_t>(h) << static_cast<std::int64_t>(n);
    }
    t.print(os);
  }

  if (!gs_curve.empty()) {
    Table t("GS CONVERGENCE", {"round", "waves", "mean changed"});
    for (const auto& [round, acc] : gs_curve) {
      const double mean =
          acc.second != 0 ? static_cast<double>(acc.first) /
                                static_cast<double>(acc.second)
                          : 0.0;
      t.row() << static_cast<std::int64_t>(round)
              << static_cast<std::int64_t>(acc.second) << mean;
    }
    t.print(os);
  }

  if (!misroutes_by_class.empty()) {
    Table t("MISROUTE ATTRIBUTION", {"class", "routes"});
    for (const auto& [cls, n] : misroutes_by_class) {
      t.row() << cls << static_cast<std::int64_t>(n);
    }
    t.print(os);
  }

  if (!drops_by_reason.empty()) {
    Table t("DROP FORENSICS", {"reason", "drops"});
    for (const auto& [reason, n] : drops_by_reason) {
      t.row() << reason << static_cast<std::int64_t>(n);
    }
    t.print(os);
  }

  if (!promoted_by_reason.empty()) {
    Table t("PROMOTED ROUTES BY REASON", {"reason", "routes"});
    for (const auto& [reason, n] : promoted_by_reason) {
      t.row() << reason << static_cast<std::int64_t>(n);
    }
    t.print(os);
  }

  if (hops_per_route.count != 0 || sweep_wall_ms.count != 0) {
    Table t("DISTRIBUTIONS", {"series", "count", "mean", "p50", "p90", "p99"});
    if (hops_per_route.count != 0) {
      print_hist_row(t, "hops/route", hops_per_route);
    }
    if (sweep_wall_ms.count != 0) {
      print_hist_row(t, "sweep wall ms", sweep_wall_ms);
    }
    t.print(os);
  }
}

namespace {

/// Comma-managed emitter matching the trace writer's dialect (flat
/// object, at most one level of nesting) so parse_jsonl_line reads the
/// report back.
class JsonObject {
 public:
  explicit JsonObject(std::ostream& os, char open = '{') : os_(os) {
    os_ << open;
  }
  void close() { os_ << '}'; }

  std::ostream& key(const std::string& k) {
    if (!first_) os_ << ',';
    first_ = false;
    os_ << '"';
    for (const char c : k) {
      if (c == '"' || c == '\\') os_ << '\\';
      os_ << c;
    }
    os_ << "\":";
    return os_;
  }
  void num(const std::string& k, std::uint64_t v) { key(k) << v; }
  void num(const std::string& k, double v) { key(k) << v; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

}  // namespace

void AuditReport::write_json(std::ostream& os) const {
  JsonObject top(os);
  top.key("event") << "\"audit_report\"";
  top.num("events", events);
  top.num("routes", routes);
  top.num("hops", hops);
  top.num("spare_hops", spare_hops);
  top.num("violations_total", violations_total);

  const auto nested = [&](const std::string& name, auto&& fill) {
    std::ostream& out = top.key(name);
    JsonObject obj(out);
    fill(obj);
    obj.close();
  };

  nested("violations", [&](JsonObject& o) {
    for (std::size_t i = 0; i < kNumViolationKinds; ++i) {
      o.num(to_string(static_cast<ViolationKind>(i)), violations_by_kind[i]);
    }
  });
  nested("status", [&](JsonObject& o) {
    for (const auto& [status, n] : routes_by_status) o.num(status, n);
  });
  nested("preferred_by_dim", [&](JsonObject& o) {
    for (const auto& [d, n] : preferred_by_dim) o.num(std::to_string(d), n);
  });
  nested("spare_by_dim", [&](JsonObject& o) {
    for (const auto& [d, n] : spare_by_dim) o.num(std::to_string(d), n);
  });
  nested("spare_by_h", [&](JsonObject& o) {
    for (const auto& [h, n] : spare_by_hamming) o.num(std::to_string(h), n);
  });
  top.num("gs_waves", gs_waves);
  top.num("gs_max_round", static_cast<std::uint64_t>(gs_max_round));
  nested("gs_changed", [&](JsonObject& o) {
    for (const auto& [round, acc] : gs_curve) {
      o.num(std::to_string(round), acc.first);
    }
  });
  nested("gs_waves_at", [&](JsonObject& o) {
    for (const auto& [round, acc] : gs_curve) {
      o.num(std::to_string(round), acc.second);
    }
  });
  top.num("misroutes", misroutes);
  nested("misroutes_by_class", [&](JsonObject& o) {
    for (const auto& [cls, n] : misroutes_by_class) o.num(cls, n);
  });
  top.num("sends", sends);
  top.num("drops", drops);
  nested("drops_by_reason", [&](JsonObject& o) {
    for (const auto& [reason, n] : drops_by_reason) o.num(reason, n);
  });
  top.num("promoted_routes", promoted_routes);
  top.num("breadcrumb_routes", breadcrumb_routes);
  nested("promoted_by_reason", [&](JsonObject& o) {
    for (const auto& [reason, n] : promoted_by_reason) o.num(reason, n);
  });
  top.num("epochs_published", epochs_published);
  top.num("events_lost", events_lost);
  const auto hist = [&](const std::string& name, const HistogramData& h) {
    nested(name, [&](JsonObject& o) {
      o.num("count", h.count);
      o.num("mean", h.mean());
      o.num("p50", h.quantile(0.5));
      o.num("p90", h.quantile(0.9));
      o.num("p99", h.quantile(0.99));
    });
  };
  hist("hops_hist", hops_per_route);
  top.num("sweep_points", sweep_points);
  hist("sweep_wall_ms", sweep_wall_ms);
  top.close();
}

}  // namespace slcube::obs
