#include "obs/timeline.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

namespace slcube::obs {

namespace {

constexpr int kPid = 1;
constexpr int kTidEpochs = 1;
constexpr int kTidRoutes = 2;
constexpr int kTidBreadcrumbs = 3;

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Comma-managed emitter for one trace event object inside the
/// traceEvents array.
class Event {
 public:
  Event(std::ostream& os, bool& first, const char* phase, int tid) : os_(os) {
    if (!first) os_ << ",\n";
    first = false;
    os_ << "{\"ph\":\"" << phase << "\",\"pid\":" << kPid
        << ",\"tid\":" << tid;
  }
  ~Event() {
    if (in_args_) os_ << '}';
    os_ << '}';
  }

  Event& name(std::string_view v) {
    os_ << ",\"name\":";
    write_escaped(os_, v);
    return *this;
  }
  Event& ts(double v) {
    os_ << ",\"ts\":" << v;
    return *this;
  }
  Event& dur(double v) {
    os_ << ",\"dur\":" << v;
    return *this;
  }
  Event& scope_thread() {  // instant scope: thread-local tick
    os_ << ",\"s\":\"t\"";
    return *this;
  }
  Event& arg(const char* key, double v) {
    open_args();
    os_ << '"' << key << "\":" << v;
    return *this;
  }
  Event& arg(const char* key, std::string_view v) {
    open_args();
    os_ << '"' << key << "\":";
    write_escaped(os_, v);
    return *this;
  }

 private:
  void open_args() {
    if (!in_args_) {
      os_ << ",\"args\":{";
      in_args_ = true;
    } else {
      os_ << ',';
    }
  }
  std::ostream& os_;
  bool in_args_ = false;
};

struct EpochRow {
  double ts = 0;
  double parent = 0;
  std::string cause;
  double node = -1;
  double dim = -1;
  double churn = 0;
  double faults = 0;
  double links = 0;
};

void write_thread_name(std::ostream& os, bool& first, int tid,
                       const char* label) {
  Event ev(os, first, "M", tid);
  ev.name("thread_name").arg("name", std::string_view(label));
}

}  // namespace

TimelineStats write_chrome_trace(std::ostream& os,
                                 const std::vector<ParsedEvent>& events,
                                 const TimelineOptions& options) {
  TimelineStats stats;

  // Pass 1: collect the epoch lineage so slices can span to their
  // successor and routes can name the churn that produced their epoch.
  std::map<double, EpochRow> epochs;  // epoch number -> row
  double max_ts = 0;
  for (const ParsedEvent& ev : events) {
    if (ev.kind() == "epoch_publish") {
      EpochRow row;
      row.ts = ev.num("ts");
      row.parent = ev.num("parent");
      row.cause = std::string(ev.str("cause"));
      row.node = ev.num("node", -1);
      row.dim = ev.num("dim", -1);
      row.churn = ev.num("churn");
      row.faults = ev.num("faults");
      row.links = ev.num("links");
      epochs[ev.num("epoch")] = row;
      max_ts = std::max(max_ts, row.ts);
    } else if (ev.kind() == "route_summary") {
      max_ts = std::max(max_ts, ev.num("route_id") + ev.num("hops") + 1);
    }
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;

  {
    Event ev(os, first, "M", kTidEpochs);
    ev.name("process_name").arg("name", std::string_view(options.process_name));
  }
  write_thread_name(os, first, kTidEpochs, "epochs");
  write_thread_name(os, first, kTidRoutes, "routes (promoted)");
  if (options.include_breadcrumbs) {
    write_thread_name(os, first, kTidBreadcrumbs, "routes (breadcrumb)");
  }

  // Epoch slices: each spans to the next epoch's activation (the last
  // one extends to the end of the observed axis).
  for (auto it = epochs.begin(); it != epochs.end(); ++it) {
    auto next = std::next(it);
    const EpochRow& row = it->second;
    double end = next != epochs.end() ? next->second.ts : max_ts + 1;
    double dur = std::max(end - row.ts, 1.0);
    {
      Event ev(os, first, "X", kTidEpochs);
      ev.name("epoch " + std::to_string(static_cast<std::int64_t>(it->first)))
          .ts(row.ts)
          .dur(dur)
          .arg("epoch", it->first)
          .arg("parent", row.parent)
          .arg("cause", std::string_view(row.cause))
          .arg("churn", row.churn)
          .arg("faults", row.faults)
          .arg("links", row.links);
      if (row.node >= 0) ev.arg("node", row.node);
      if (row.dim >= 0) ev.arg("dim", row.dim);
    }
    ++stats.epoch_slices;
    if (row.churn > 0) {
      Event ev(os, first, "i", kTidEpochs);
      ev.name("churn: " + row.cause).ts(row.ts).scope_thread().arg(
          "records", row.churn);
      ++stats.churn_instants;
    }
  }

  // Route slices and breadcrumb instants.
  for (const ParsedEvent& ev : events) {
    if (ev.kind() != "route_summary") {
      if (ev.kind() != "epoch_publish") ++stats.events_skipped;
      continue;
    }
    double route_id = ev.num("route_id");
    double decision = ev.num("decision_epoch");
    double ground = ev.num("ground_epoch");
    std::string_view status = ev.str("status");
    bool promoted = ev.boolean("promoted");
    bool stale = ground > decision;
    if (!promoted && !options.include_breadcrumbs) continue;

    Event out(os, first, promoted ? "X" : "i",
              promoted ? kTidRoutes : kTidBreadcrumbs);
    out.name("route " + std::to_string(static_cast<std::int64_t>(route_id)) +
             " (" + std::string(status) + ")");
    out.ts(route_id);
    if (promoted) {
      out.dur(std::max(ev.num("hops"), 1.0));
    } else {
      out.scope_thread();
    }
    out.arg("decision_epoch", decision)
        .arg("ground_epoch", ground)
        .arg("status", status)
        .arg("reason", ev.str("reason"))
        .arg("hops", ev.num("hops"))
        .arg("stale", stale ? 1.0 : 0.0);
    if (ev.num("latency_us", -1.0) >= 0) {
      out.arg("latency_us", ev.num("latency_us"));
    }
    auto it = epochs.find(decision);
    if (it != epochs.end()) {
      out.arg("decision_churn", std::string_view(it->second.cause));
    }
    if (promoted) {
      ++stats.route_slices;
    } else {
      ++stats.breadcrumb_instants;
    }
  }

  os << "\n]}\n";
  return stats;
}

}  // namespace slcube::obs
