#include "obs/audit.hpp"
#include "obs/profiler.hpp"

#include <set>
#include <sstream>
#include <string_view>

#include "common/bitops.hpp"

namespace slcube::obs {

namespace {

/// The route-status dialects the two unicast producers emit. Core
/// statuses come from a global-view router over a consistent table and
/// get the strict flag checks; sim statuses are local-view (registers
/// can be stale, links can hide neighbors) and get only the checks the
/// protocol actually guarantees.
enum class StatusClass {
  kCoreOptimal,     // "delivered-optimal"
  kCoreSuboptimal,  // "delivered-suboptimal"
  kCoreRefused,     // "source-refused"
  kStuck,           // "stuck" (both dialects)
  kSimDelivered,    // "delivered"
  kSimRefused,      // "refused"
  kSimLost,         // "lost"
  kUnknown,
};

StatusClass classify(std::string_view status) {
  if (status == "delivered-optimal") return StatusClass::kCoreOptimal;
  if (status == "delivered-suboptimal") return StatusClass::kCoreSuboptimal;
  if (status == "source-refused") return StatusClass::kCoreRefused;
  if (status == "stuck") return StatusClass::kStuck;
  if (status == "delivered") return StatusClass::kSimDelivered;
  if (status == "refused") return StatusClass::kSimRefused;
  if (status == "lost") return StatusClass::kSimLost;
  return StatusClass::kUnknown;
}

bool is_delivered(StatusClass c) {
  return c == StatusClass::kCoreOptimal || c == StatusClass::kCoreSuboptimal ||
         c == StatusClass::kSimDelivered;
}

std::uint64_t pair_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

std::size_t kind_slot(MsgKind k) {
  return k == MsgKind::kUnicast ? 1 : 0;
}

}  // namespace

AuditSink::AuditSink(AuditConfig config) : config_(config) {}

AuditSink::Lane& AuditSink::lane_locked() {
  return lanes_[std::this_thread::get_id()];
}

void AuditSink::violation(ViolationKind kind, std::string detail) {
  ++report_.violations_total;
  ++report_.violations_by_kind[static_cast<std::size_t>(kind)];
  if (report_.details.size() < config_.max_violation_details) {
    report_.details.push_back({kind, std::move(detail)});
  }
}

void AuditSink::on_event(const TraceEvent& ev) {
  const obs::StageScope stage("audit");
  const std::scoped_lock lock(mutex_);
  ++report_.events;
  Lane& lane = lane_locked();
  if (const auto* src = std::get_if<SourceDecisionEvent>(&ev)) {
    handle(lane, *src);
  } else if (const auto* hop = std::get_if<HopEvent>(&ev)) {
    handle(lane, *hop);
  } else if (const auto* done = std::get_if<RouteDoneEvent>(&ev)) {
    handle(lane, *done);
  } else if (const auto* round = std::get_if<GsRoundEvent>(&ev)) {
    handle(lane, *round);
  } else if (const auto* mis = std::get_if<MisrouteEvent>(&ev)) {
    handle(lane, *mis);
  } else if (const auto* summary = std::get_if<RouteSummaryEvent>(&ev)) {
    handle(lane, *summary);
  } else if (const auto* epoch = std::get_if<EpochPublishEvent>(&ev)) {
    ++report_.epochs_published;
    // An epoch publish IS fault churn (unless it carries no lineage —
    // epoch 0 or a no-op retarget barrier): tables decided on older
    // epochs are stale from here on, same as a node_fail event.
    if (epoch->churn != 0) {
      if (lane.wave_open) lane.wave_saw_fault_churn = true;
      if (lane.route_open) lane.route_saw_fault_churn = true;
      lane.stale_tables = true;
    }
  } else if (const auto* send = std::get_if<MessageSendEvent>(&ev)) {
    ++report_.sends;
    ++lane.sends[kind_slot(send->kind)][pair_key(send->from, send->to)];
  } else if (const auto* drop = std::get_if<MessageDropEvent>(&ev)) {
    ++report_.drops;
    ++report_.drops_by_reason[drop->reason];
    auto& outstanding =
        lane.sends[kind_slot(drop->kind)][pair_key(drop->from, drop->to)];
    if (outstanding > 0) {
      --outstanding;
    } else {
      std::ostringstream ss;
      ss << "drop of " << to_string(drop->kind) << ' ' << drop->from << "->"
         << drop->to << " (" << drop->reason
         << ") with no matching prior send";
      violation(ViolationKind::kDropWithoutSend, ss.str());
    }
  } else if (std::holds_alternative<NodeFailEvent>(ev) ||
             std::holds_alternative<NodeRecoverEvent>(ev)) {
    // Fault churn relaxes the checks that assume a quiet network: the
    // GS round bound and the "stuck is impossible" rule — the latter
    // stays suspended until a quiesced GS wave proves re-stabilization
    // (asynchronous cascades leave no marker in the stream).
    if (lane.wave_open) lane.wave_saw_fault_churn = true;
    if (lane.route_open) lane.route_saw_fault_churn = true;
    lane.stale_tables = true;
  } else if (const auto* point = std::get_if<SweepPointEvent>(&ev)) {
    ++report_.sweep_points;
    report_.sweep_wall_ms.observe(point->wall_ms);
  }
  // SpanEvent: counted in `events`, nothing to check.
}

void AuditSink::handle(Lane& lane, const SourceDecisionEvent& ev) {
  if (lane.route_open) {
    std::ostringstream ss;
    ss << "source_decision " << ev.source << "->" << ev.dest
       << " while route " << lane.source.source << "->" << lane.source.dest
       << " is still open";
    violation(ViolationKind::kBrokenChain, ss.str());
  }
  const std::uint32_t nav = ev.source ^ ev.dest;
  if (ev.hamming != bits::popcount(nav)) {
    std::ostringstream ss;
    ss << "source_decision " << ev.source << "->" << ev.dest << " claims H="
       << ev.hamming << " but H(s,d)=" << bits::popcount(nav);
    violation(ViolationKind::kFlagsInconsistent, ss.str());
  }
  if (config_.dimension > 0 && config_.dimension < 32 &&
      (nav >> config_.dimension) != 0) {
    std::ostringstream ss;
    ss << "source_decision " << ev.source << "->" << ev.dest
       << " outside the " << config_.dimension << "-cube";
    violation(ViolationKind::kBrokenChain, ss.str());
  }
  if (ev.spare) {
    if (!ev.c3) {
      std::ostringstream ss;
      ss << "spare launch " << ev.source << "->" << ev.dest << " without C3";
      violation(ViolationKind::kFlagsInconsistent, ss.str());
    }
    if (ev.chosen_dim < 0) {
      std::ostringstream ss;
      ss << "spare launch " << ev.source << "->" << ev.dest
         << " with no chosen dimension";
      violation(ViolationKind::kSpareMisuse, ss.str());
    }
  }
  if (ev.egs && ev.hamming > 0) {
    // Two-view consistency (Section 4.1). The footnote-3 caveat: the
    // self-view guarantee excludes the far ends of the source's own
    // faulty links, so C1 must be forced off for such a destination;
    // otherwise C1 is exactly "self-view level covers the distance".
    if (ev.dest_link_faulty && ev.hamming != 1) {
      std::ostringstream ss;
      ss << "EGS source " << ev.source << "->" << ev.dest
         << " claims the destination is across an adjacent faulty link "
         << "but H=" << ev.hamming << " (an adjacent node has H=1)";
      violation(ViolationKind::kFlagsInconsistent, ss.str());
    }
    if (ev.dest_link_faulty && ev.c1) {
      std::ostringstream ss;
      ss << "EGS source " << ev.source << "->" << ev.dest
         << " asserts C1 for a dead-link destination (footnote 3 forces "
         << "the optimal guarantee off)";
      violation(ViolationKind::kFlagsInconsistent, ss.str());
    }
    if (!ev.dest_link_faulty && ev.c1 != (ev.self_level >= ev.hamming)) {
      std::ostringstream ss;
      ss << "EGS source " << ev.source << "->" << ev.dest << " reports C1="
         << (ev.c1 ? "true" : "false") << " but self-view level "
         << ev.self_level << " vs H=" << ev.hamming << " implies "
         << (ev.self_level >= ev.hamming ? "true" : "false");
      violation(ViolationKind::kFlagsInconsistent, ss.str());
    }
  }
  lane.route_open = true;
  lane.route_saw_fault_churn = false;
  lane.source = ev;
  lane.hops.clear();
}

void AuditSink::handle(Lane& lane, const HopEvent& ev) {
  // Status-independent aggregation + structural checks first, so even
  // orphan hops land in the heatmap.
  ++report_.hops;
  if (ev.preferred) {
    ++report_.preferred_by_dim[ev.dim];
  } else {
    ++report_.spare_hops;
    ++report_.spare_by_dim[ev.dim];
  }
  if (ev.to != bits::flip(ev.from, ev.dim)) {
    std::ostringstream ss;
    ss << "hop " << ev.from << "->" << ev.to
       << " endpoints do not differ in dim " << ev.dim;
    violation(ViolationKind::kBrokenChain, ss.str());
  }
  if (config_.dimension > 0 && ev.dim >= config_.dimension) {
    std::ostringstream ss;
    ss << "hop " << ev.from << "->" << ev.to << " along dim " << ev.dim
       << " outside the " << config_.dimension << "-cube";
    violation(ViolationKind::kBrokenChain, ss.str());
  }
  if (ev.nav_after != (ev.nav_before ^ bits::unit(ev.dim))) {
    std::ostringstream ss;
    ss << "hop " << ev.from << "->" << ev.to << " dim " << ev.dim
       << ": nav_after " << ev.nav_after << " != nav_before " << ev.nav_before
       << " with bit " << ev.dim << " toggled";
    violation(ViolationKind::kNavBitNotToggled, ss.str());
  } else if (ev.preferred == bits::test(ev.nav_before, ev.dim)) {
    // Toggle is consistent; direction must match the hop kind: preferred
    // clears a navigation bit, the spare detour sets one.
  } else if (ev.preferred) {
    std::ostringstream ss;
    ss << "preferred hop " << ev.from << "->" << ev.to << " dim " << ev.dim
       << " does not clear a navigation bit (nav_before " << ev.nav_before
       << ')';
    violation(ViolationKind::kNavBitNotToggled, ss.str());
  } else {
    std::ostringstream ss;
    ss << "spare hop " << ev.from << "->" << ev.to << " dim " << ev.dim
       << " re-sets an already-pending navigation bit (nav_before "
       << ev.nav_before << ')';
    violation(ViolationKind::kSpareMisuse, ss.str());
  }

  if (!lane.route_open) {
    std::ostringstream ss;
    ss << "hop " << ev.from << "->" << ev.to
       << " with no open route (missing source_decision)";
    violation(ViolationKind::kBrokenChain, ss.str());
    return;
  }

  if (lane.hops.empty()) {
    if (ev.from != lane.source.source) {
      std::ostringstream ss;
      ss << "first hop starts at " << ev.from << ", route source is "
         << lane.source.source;
      violation(ViolationKind::kBrokenChain, ss.str());
    }
    const std::uint32_t nav0 = lane.source.source ^ lane.source.dest;
    if (ev.nav_before != nav0) {
      std::ostringstream ss;
      ss << "first hop nav_before " << ev.nav_before
         << " != source navigation vector " << nav0;
      violation(ViolationKind::kNavBitNotToggled, ss.str());
    }
    if (lane.source.chosen_dim >= 0 &&
        ev.dim != static_cast<Dim>(lane.source.chosen_dim)) {
      std::ostringstream ss;
      ss << "first hop dim " << ev.dim << " != source chosen_dim "
         << lane.source.chosen_dim;
      violation(ViolationKind::kFlagsInconsistent, ss.str());
    }
    if (ev.preferred == lane.source.spare) {
      std::ostringstream ss;
      ss << "first hop preferred=" << (ev.preferred ? "true" : "false")
         << " contradicts source spare="
         << (lane.source.spare ? "true" : "false");
      violation(ViolationKind::kSpareMisuse, ss.str());
    }
    if (!ev.preferred) ++report_.spare_by_hamming[lane.source.hamming];
  } else {
    const HopEvent& prev = lane.hops.back();
    if (ev.from != prev.to) {
      std::ostringstream ss;
      ss << "hop chain broken: hop from " << ev.from
         << " but previous hop landed at " << prev.to;
      violation(ViolationKind::kBrokenChain, ss.str());
    }
    if (ev.nav_before != prev.nav_after) {
      std::ostringstream ss;
      ss << "navigation vector not carried: nav_before " << ev.nav_before
         << " != previous nav_after " << prev.nav_after;
      violation(ViolationKind::kNavBitNotToggled, ss.str());
    }
    if (!ev.preferred) {
      std::ostringstream ss;
      ss << "spare hop " << ev.from << "->" << ev.to
         << " beyond the first hop (only the source may take the detour)";
      violation(ViolationKind::kSpareMisuse, ss.str());
    }
  }
  lane.hops.push_back(ev);
}

void AuditSink::handle(Lane& lane, const RouteDoneEvent& ev) {
  ++report_.routes;
  ++report_.routes_by_status[ev.status];
  if (!lane.route_open) {
    std::ostringstream ss;
    ss << "route_done " << ev.source << "->" << ev.dest << " (" << ev.status
       << ") with no open route";
    violation(ViolationKind::kBrokenChain, ss.str());
    return;
  }
  close_route(lane, ev);
}

void AuditSink::close_route(Lane& lane, const RouteDoneEvent& done) {
  const SourceDecisionEvent& src = lane.source;
  const unsigned h = src.hamming;
  const auto nhops = static_cast<unsigned>(lane.hops.size());
  const StatusClass cls = classify(done.status);

  if (done.source != src.source || done.dest != src.dest) {
    std::ostringstream ss;
    ss << "route_done " << done.source << "->" << done.dest
       << " does not match open route " << src.source << "->" << src.dest;
    violation(ViolationKind::kBrokenChain, ss.str());
  }

  if (is_delivered(cls)) {
    if (done.hops != nhops) {
      std::ostringstream ss;
      ss << "route " << src.source << "->" << src.dest << " reports "
         << done.hops << " hops but " << nhops << " hop events were seen";
      violation(ViolationKind::kHopCountMismatch, ss.str());
    }
    const bool spare = src.spare;
    const unsigned expected = h + (spare ? 2u : 0u);
    if (cls == StatusClass::kCoreOptimal && spare) {
      violation(ViolationKind::kSpareMisuse,
                "delivered-optimal route launched on the spare detour");
    }
    if (src.egs && src.dest_link_faulty && !spare) {
      // Footnote 3, delivery side: the direct link to the destination is
      // dead, so the only way home is the H + 2 spare detour around it —
      // a delivery without the spare first hop crossed the dead link.
      std::ostringstream ss;
      ss << "EGS route " << src.source << "->" << src.dest
         << " delivered to a dead-link destination without the H+2 "
         << "spare detour";
      violation(ViolationKind::kSpareMisuse, ss.str());
    }
    if (cls == StatusClass::kCoreSuboptimal && !spare) {
      violation(ViolationKind::kSpareMisuse,
                "delivered-suboptimal route without a spare first hop");
    }
    if (done.hops != expected) {
      std::ostringstream ss;
      ss << "route " << src.source << "->" << src.dest << " (H=" << h
         << (spare ? ", spare" : "") << ") delivered in " << done.hops
         << " hops, expected exactly " << expected;
      violation(ViolationKind::kHopCountMismatch, ss.str());
    }
    if (nhops > 0) {
      const HopEvent& last = lane.hops.back();
      if (last.to != done.dest) {
        std::ostringstream ss;
        ss << "delivered route ends at " << last.to << ", destination is "
           << done.dest;
        violation(ViolationKind::kBrokenChain, ss.str());
      }
      if (last.nav_after != 0) {
        std::ostringstream ss;
        ss << "delivered route " << src.source << "->" << src.dest
           << " ends with non-empty navigation vector " << last.nav_after;
        violation(ViolationKind::kNavBitNotToggled, ss.str());
      }
    }
    if (spare) {
      // C3 was checked at the source event; core additionally promises
      // the detour is taken only when no optimal first hop existed.
      if (cls == StatusClass::kCoreSuboptimal && (src.c1 || src.c2)) {
        std::ostringstream ss;
        ss << "core spare detour " << src.source << "->" << src.dest
           << " taken although C1/C2 offered an optimal first hop";
        violation(ViolationKind::kFlagsInconsistent, ss.str());
      }
    } else if (h > 0 && !(src.c1 || src.c2)) {
      std::ostringstream ss;
      ss << "optimal delivery " << src.source << "->" << src.dest
         << " although neither C1 nor C2 held";
      violation(ViolationKind::kFlagsInconsistent, ss.str());
    }
    if (config_.check_hop_levels) {
      for (const HopEvent& hop : lane.hops) {
        // Theorem-2 floor: the chosen neighbor's advertised level covers
        // the distance that remains after the hop (holds for spare hops
        // too — their threshold is H+1 = |nav_after|).
        const unsigned remaining = bits::popcount(hop.nav_after);
        if (hop.level < remaining) {
          std::ostringstream ss;
          ss << "hop " << hop.from << "->" << hop.to << " advertised level "
             << hop.level << " below remaining distance " << remaining;
          violation(ViolationKind::kHopLevelTooLow, ss.str());
        }
      }
    }
    report_.hops_per_route.observe(static_cast<double>(done.hops));
  } else if (cls == StatusClass::kCoreRefused ||
             cls == StatusClass::kSimRefused) {
    if (nhops != 0 || done.hops != 0) {
      std::ostringstream ss;
      ss << "refused route " << src.source << "->" << src.dest
         << " has hops (" << done.hops << " reported, " << nhops
         << " hop events)";
      violation(ViolationKind::kHopCountMismatch, ss.str());
    }
    if (src.chosen_dim != -1) {
      std::ostringstream ss;
      ss << "refused route " << src.source << "->" << src.dest
         << " records chosen_dim " << src.chosen_dim;
      violation(ViolationKind::kFlagsInconsistent, ss.str());
    }
    // Strict flag check only for the global-view router: it refuses iff
    // none of C1/C2/C3 holds. The sim can refuse with flags set (a
    // feasible-looking register can sit behind a link it cannot use).
    if (cls == StatusClass::kCoreRefused && (src.c1 || src.c2 || src.c3)) {
      std::ostringstream ss;
      ss << "source refused " << src.source << "->" << src.dest
         << " although C1/C2/C3 offered a move (c1=" << src.c1
         << " c2=" << src.c2 << " c3=" << src.c3 << ')';
      violation(ViolationKind::kFlagsInconsistent, ss.str());
    }
  } else if (cls == StatusClass::kStuck) {
    if (done.hops != nhops) {
      std::ostringstream ss;
      ss << "stuck route " << src.source << "->" << src.dest << " reports "
         << done.hops << " hops but " << nhops << " hop events were seen";
      violation(ViolationKind::kHopCountMismatch, ss.str());
    }
    if (config_.stuck_is_violation && !lane.route_saw_fault_churn &&
        !lane.stale_tables) {
      std::ostringstream ss;
      ss << "route " << src.source << "->" << src.dest << " stuck after "
         << done.hops << " hops with no mid-route fault churn (impossible "
         << "over a consistent level table)";
      violation(ViolationKind::kStuckRoute, ss.str());
    }
  } else if (cls == StatusClass::kSimLost) {
    // A lost packet may die in flight: the hop that sent it was traced
    // but the landing never happened, so one extra hop event is legal.
    if (nhops != done.hops && nhops != done.hops + 1) {
      std::ostringstream ss;
      ss << "lost route " << src.source << "->" << src.dest << " reports "
         << done.hops << " hops but " << nhops << " hop events were seen";
      violation(ViolationKind::kHopCountMismatch, ss.str());
    }
  }
  // Unknown statuses are counted in routes_by_status and left unchecked.

  lane.last_route_valid = true;
  lane.last_route_source = done.source;
  lane.last_route_dest = done.dest;
  lane.last_route_status = done.status;
  lane.last_route_hops = done.hops;
  lane.last_route_exists = true;
  lane.last_route_summarized = false;
  lane.route_open = false;
  lane.hops.clear();
}

void AuditSink::handle(Lane& lane, const MisrouteEvent& ev) {
  const std::string_view cls = ev.cls;
  ++report_.misroutes_by_class[std::string(cls)];
  if (cls != "none") ++report_.misroutes;

  const bool known = cls == "none" || cls == "false-reject-source" ||
                     cls == "optimism-drop" || cls == "pessimism-detour";
  if (!known) {
    std::ostringstream ss;
    ss << "misroute " << ev.source << "->" << ev.dest
       << " with unknown class \"" << cls << '"';
    violation(ViolationKind::kMisrouteUnattributed, ss.str());
  }
  if (!lane.last_route_valid || ev.source != lane.last_route_source ||
      ev.dest != lane.last_route_dest) {
    std::ostringstream ss;
    ss << "misroute " << ev.source << "->" << ev.dest << " (" << cls
       << ") does not follow a closed route for that pair";
    violation(ViolationKind::kMisrouteUnattributed, ss.str());
    return;
  }
  lane.last_route_valid = false;  // one postmortem per route

  // Class-internal consistency: only a ground-truth drop explains an
  // optimism-drop, and a false reject presupposes ground feasibility.
  if ((cls == "optimism-drop") != (ev.drop_node >= 0)) {
    std::ostringstream ss;
    ss << "misroute " << ev.source << "->" << ev.dest << " class " << cls
       << " inconsistent with drop_node " << ev.drop_node;
    violation(ViolationKind::kFlagsInconsistent, ss.str());
  }
  if (cls == "false-reject-source" && !ev.ground_feasible) {
    std::ostringstream ss;
    ss << "misroute " << ev.source << "->" << ev.dest
       << " claims a false reject but ground truth was infeasible";
    violation(ViolationKind::kFlagsInconsistent, ss.str());
  }
  // Cross-check against the closed route. The traced route is the PLAN
  // (diagnosed tables); the postmortem is the ground truth. A plan that
  // delivered and survived replay must agree on the hop count; a drop
  // mid-replay (the optimism-drop signature) must have died strictly
  // before the planned end.
  if (is_delivered(classify(lane.last_route_status))) {
    if (ev.drop_node < 0 && ev.hops_taken != lane.last_route_hops) {
      std::ostringstream ss;
      ss << "misroute " << ev.source << "->" << ev.dest << " walked "
         << ev.hops_taken << " hops but the route reported "
         << lane.last_route_hops;
      violation(ViolationKind::kHopCountMismatch, ss.str());
    }
    if (ev.drop_node >= 0 && ev.hops_taken >= lane.last_route_hops) {
      std::ostringstream ss;
      ss << "misroute " << ev.source << "->" << ev.dest << " dropped at "
         << ev.drop_node << " after " << ev.hops_taken
         << " hops, not strictly inside the " << lane.last_route_hops
         << "-hop plan";
      violation(ViolationKind::kHopCountMismatch, ss.str());
    }
  }
}

namespace {

/// Does a sampled-stream summary status agree with the chain's terminal
/// status? The serving path's chain dialect reports every in-flight
/// death as "lost"; the summary refines it with the precise drop cause.
bool summary_status_matches(std::string_view chain, std::string_view summary) {
  if (chain == summary) return true;
  return chain == "lost" && summary.substr(0, 7) == "dropped";
}

}  // namespace

void AuditSink::handle(Lane& lane, const RouteSummaryEvent& ev) {
  if (!ev.promoted) {
    // Breadcrumb-only: no chain exists by design. Counted, reconciled
    // against the sampler's counters, never flagged as truncated.
    ++report_.breadcrumb_routes;
    return;
  }
  ++report_.promoted_routes;
  ++report_.promoted_by_reason[ev.reason];
  if (ev.ground_epoch < ev.decision_epoch) {
    std::ostringstream ss;
    ss << "route_summary " << ev.route_id << " ground epoch "
       << ev.ground_epoch << " older than decision epoch "
       << ev.decision_epoch;
    violation(ViolationKind::kSummaryMismatch, ss.str());
  }
  if (!lane.last_route_exists || lane.last_route_summarized) {
    std::ostringstream ss;
    ss << "promoted route_summary " << ev.route_id << " (" << ev.status
       << ") does not follow a full route chain";
    violation(ViolationKind::kSummaryMismatch, ss.str());
    return;
  }
  lane.last_route_summarized = true;
  if (!summary_status_matches(lane.last_route_status, ev.status)) {
    std::ostringstream ss;
    ss << "route_summary " << ev.route_id << " status \"" << ev.status
       << "\" contradicts the chain's \"" << lane.last_route_status << '"';
    violation(ViolationKind::kSummaryMismatch, ss.str());
  }
  if (ev.hops != lane.last_route_hops) {
    std::ostringstream ss;
    ss << "route_summary " << ev.route_id << " reports " << ev.hops
       << " hops but the chain closed with " << lane.last_route_hops;
    violation(ViolationKind::kSummaryMismatch, ss.str());
  }
}

void AuditSink::handle(Lane& lane, const GsRoundEvent& ev) {
  if (lane.wave_open && ev.round == 0 && lane.wave_next_round != 0) {
    // A new wave began without the previous one quiescing — normal for
    // back-to-back periodic schedules; close the old wave unchecked.
    close_wave(lane, lane.wave_next_round - 1, /*quiesced=*/false);
  }
  if (!lane.wave_open) {
    lane.wave_open = true;
    lane.wave_egs = ev.egs;
    lane.wave_periodic = ev.periodic;
    lane.wave_saw_fault_churn = false;
    lane.wave_next_round = ev.round + 1;
    if (ev.round != 0) {
      std::ostringstream ss;
      ss << "GS wave starts at round " << ev.round << " (expected 0)";
      violation(ViolationKind::kGsRoundOrder, ss.str());
    }
  } else {
    if (ev.round != lane.wave_next_round) {
      std::ostringstream ss;
      ss << "GS round " << ev.round << " out of order (expected "
         << lane.wave_next_round << ')';
      violation(ViolationKind::kGsRoundOrder, ss.str());
    }
    if (ev.egs != lane.wave_egs || ev.periodic != lane.wave_periodic) {
      std::ostringstream ss;
      ss << "GS round " << ev.round
         << " flips the wave's egs/periodic identity mid-sequence";
      violation(ViolationKind::kGsRoundOrder, ss.str());
    }
    lane.wave_next_round = ev.round + 1;
  }

  auto& acc = report_.gs_curve[ev.round];
  acc.first += ev.changed;
  acc.second += 1;
  if (ev.round > report_.gs_max_round) report_.gs_max_round = ev.round;

  // A quiet round closes a stabilization wave; periodic waves keep
  // running (useful-update counts can legitimately rebound after churn).
  if (ev.changed == 0 && !lane.wave_periodic) {
    close_wave(lane, ev.round, /*quiesced=*/true);
  }
}

void AuditSink::close_wave(Lane& lane, unsigned final_round, bool quiesced) {
  ++report_.gs_waves;
  // Corollary to Property 1: with a quiet network, GS stabilizes within
  // n-1 rounds. `final_round` is the index of the quiet round, which
  // equals the number of changing rounds, so > n-1 means the bound broke.
  if (quiesced && !lane.wave_periodic && !lane.wave_saw_fault_churn &&
      config_.dimension > 0 && final_round >= config_.dimension) {
    std::ostringstream ss;
    ss << (lane.wave_egs ? "EGS" : "GS") << " wave took " << final_round
       << " changing rounds, above the n-1 = " << (config_.dimension - 1)
       << " bound with no mid-wave fault churn";
    violation(ViolationKind::kGsBoundExceeded, ss.str());
  }
  // A quiesced synchronous wave recomputed every level from live state:
  // tables are consistent again and the stuck rule re-arms.
  if (quiesced && !lane.wave_periodic) lane.stale_tables = false;
  lane.wave_open = false;
}

void AuditSink::finish() {
  const std::scoped_lock lock(mutex_);
  if (finished_) return;
  finished_ = true;
  for (auto& [tid, lane] : lanes_) {
    (void)tid;
    if (lane.route_open) {
      std::ostringstream ss;
      ss << "stream ended with route " << lane.source.source << "->"
         << lane.source.dest << " still open after " << lane.hops.size()
         << " hops";
      violation(ViolationKind::kTruncatedRoute, ss.str());
      lane.route_open = false;
      lane.hops.clear();
    }
    if (lane.wave_open) {
      // Mid-wave truncation: close it unchecked (periodic schedules end
      // this way by design; a cut synchronous wave is a producer crash,
      // which the route-level truncation reporting already surfaces).
      close_wave(lane, lane.wave_next_round, /*quiesced=*/false);
    }
  }
}

void AuditSink::reconcile_sampling(std::uint64_t promoted,
                                   std::uint64_t breadcrumb_only,
                                   std::uint64_t shed_events) {
  const std::scoped_lock lock(mutex_);
  if (report_.promoted_routes != promoted) {
    std::ostringstream ss;
    ss << "sampler promoted " << promoted << " routes but the stream shows "
       << report_.promoted_routes << " promoted summaries";
    violation(ViolationKind::kSummaryMismatch, ss.str());
  }
  if (report_.routes != promoted) {
    std::ostringstream ss;
    ss << "sampled stream carries " << report_.routes
       << " full chains, sampler promoted " << promoted;
    violation(ViolationKind::kSummaryMismatch, ss.str());
  }
  // Breadcrumb-only routes may or may not have emitted summaries
  // (emit_breadcrumb_summaries); when they did, the counts must agree.
  if (report_.breadcrumb_routes != 0 &&
      report_.breadcrumb_routes != breadcrumb_only) {
    std::ostringstream ss;
    ss << "sampler kept " << breadcrumb_only
       << " breadcrumb-only routes but the stream shows "
       << report_.breadcrumb_routes << " unpromoted summaries";
    violation(ViolationKind::kSummaryMismatch, ss.str());
  }
  report_.breadcrumb_routes = breadcrumb_only;
  report_.events_lost += shed_events;
}

void AuditSink::note_events_lost(std::uint64_t lost) {
  const std::scoped_lock lock(mutex_);
  report_.events_lost += lost;
}

AuditReport AuditSink::report() const {
  const std::scoped_lock lock(mutex_);
  return report_;
}

std::uint64_t AuditSink::violation_count() const {
  const std::scoped_lock lock(mutex_);
  return report_.violations_total;
}

// --- JSONL reconstruction --------------------------------------------------

namespace {

/// Process-lifetime string pool backing the const char* fields of
/// reconstructed events (status/reason/name strings normally point at
/// string literals in the producers).
const char* intern(std::string_view s) {
  static std::mutex mutex;
  static std::set<std::string, std::less<>> pool;
  const std::scoped_lock lock(mutex);
  auto it = pool.find(s);
  if (it == pool.end()) it = pool.emplace(s).first;
  return it->c_str();
}

MsgKind parse_kind(std::string_view s) {
  return s == "unicast" ? MsgKind::kUnicast : MsgKind::kLevelUpdate;
}

template <typename T>
T as(const ParsedEvent& p, std::string_view key) {
  return static_cast<T>(p.integer(key));
}

}  // namespace

bool to_trace_event(const ParsedEvent& parsed, TraceEvent& out) {
  const std::string_view kind = parsed.kind();
  if (kind == "source_decision") {
    SourceDecisionEvent ev;
    ev.source = as<NodeId>(parsed, "source");
    ev.dest = as<NodeId>(parsed, "dest");
    ev.hamming = as<unsigned>(parsed, "h");
    ev.c1 = parsed.boolean("c1");
    ev.c2 = parsed.boolean("c2");
    ev.c3 = parsed.boolean("c3");
    ev.chosen_dim = as<int>(parsed, "chosen_dim");
    ev.ties = as<unsigned>(parsed, "ties");
    ev.spare = parsed.boolean("spare");
    ev.egs = parsed.boolean("egs");
    ev.self_level = as<unsigned>(parsed, "self_level");
    ev.dest_link_faulty = parsed.boolean("dest_link_faulty");
    out = ev;
  } else if (kind == "hop") {
    HopEvent ev;
    ev.from = as<NodeId>(parsed, "from");
    ev.to = as<NodeId>(parsed, "to");
    ev.dim = as<unsigned>(parsed, "dim");
    ev.level = as<unsigned>(parsed, "level");
    ev.nav_before = as<std::uint32_t>(parsed, "nav_before");
    ev.nav_after = as<std::uint32_t>(parsed, "nav_after");
    ev.preferred = parsed.boolean("preferred");
    ev.ties = as<unsigned>(parsed, "ties");
    out = ev;
  } else if (kind == "route_done") {
    RouteDoneEvent ev;
    ev.source = as<NodeId>(parsed, "source");
    ev.dest = as<NodeId>(parsed, "dest");
    ev.status = intern(parsed.str("status"));
    ev.hops = as<unsigned>(parsed, "hops");
    out = ev;
  } else if (kind == "gs_round") {
    GsRoundEvent ev;
    ev.round = as<unsigned>(parsed, "round");
    ev.changed = as<std::uint64_t>(parsed, "changed");
    ev.messages = as<std::uint64_t>(parsed, "messages");
    ev.sim_time = as<std::uint64_t>(parsed, "time");
    ev.egs = parsed.boolean("egs");
    ev.periodic = parsed.boolean("periodic");
    out = ev;
  } else if (kind == "send") {
    MessageSendEvent ev;
    ev.time = as<std::uint64_t>(parsed, "time");
    ev.from = as<NodeId>(parsed, "from");
    ev.to = as<NodeId>(parsed, "to");
    ev.kind = parse_kind(parsed.str("kind"));
    out = ev;
  } else if (kind == "drop") {
    MessageDropEvent ev;
    ev.time = as<std::uint64_t>(parsed, "time");
    ev.from = as<NodeId>(parsed, "from");
    ev.to = as<NodeId>(parsed, "to");
    ev.kind = parse_kind(parsed.str("kind"));
    ev.reason = intern(parsed.str("reason"));
    out = ev;
  } else if (kind == "node_fail") {
    NodeFailEvent ev;
    ev.time = as<std::uint64_t>(parsed, "time");
    ev.node = as<NodeId>(parsed, "node");
    out = ev;
  } else if (kind == "node_recover") {
    NodeRecoverEvent ev;
    ev.time = as<std::uint64_t>(parsed, "time");
    ev.node = as<NodeId>(parsed, "node");
    out = ev;
  } else if (kind == "misroute") {
    MisrouteEvent ev;
    ev.source = as<NodeId>(parsed, "source");
    ev.dest = as<NodeId>(parsed, "dest");
    ev.cls = intern(parsed.str("cls"));
    ev.drop_node = as<int>(parsed, "drop_node");
    ev.hops_taken = as<unsigned>(parsed, "hops_taken");
    ev.ground_feasible = parsed.boolean("ground_feasible");
    out = ev;
  } else if (kind == "epoch_publish") {
    EpochPublishEvent ev;
    ev.epoch = as<std::uint64_t>(parsed, "epoch");
    ev.parent = as<std::uint64_t>(parsed, "parent");
    ev.cause = intern(parsed.str("cause"));
    ev.node = as<std::int64_t>(parsed, "node");
    ev.dim = as<int>(parsed, "dim");
    ev.churn = as<std::uint64_t>(parsed, "churn");
    ev.faults = as<std::uint64_t>(parsed, "faults");
    ev.links = as<std::uint64_t>(parsed, "links");
    ev.ts = as<std::uint64_t>(parsed, "ts");
    out = ev;
  } else if (kind == "route_summary") {
    RouteSummaryEvent ev;
    ev.route_id = as<std::uint64_t>(parsed, "route_id");
    ev.decision_epoch = as<std::uint64_t>(parsed, "decision_epoch");
    ev.ground_epoch = as<std::uint64_t>(parsed, "ground_epoch");
    ev.status = intern(parsed.str("status"));
    ev.hops = as<unsigned>(parsed, "hops");
    ev.latency_us = parsed.num("latency_us");
    ev.promoted = parsed.boolean("promoted");
    ev.reason = intern(parsed.str("reason"));
    out = ev;
  } else if (kind == "span") {
    SpanEvent ev;
    ev.name = intern(parsed.str("name"));
    ev.micros = parsed.num("micros");
    ev.items = as<std::uint64_t>(parsed, "items");
    out = ev;
  } else if (kind == "sweep_point") {
    SweepPointEvent ev;
    ev.sweep = intern(parsed.str("sweep"));
    ev.fault_count = as<std::uint64_t>(parsed, "fault_count");
    ev.wall_ms = parsed.num("wall_ms");
    ev.utilization = parsed.num("utilization");
    ev.threads = as<unsigned>(parsed, "threads");
    ev.trial_p50_us = parsed.num("trial_p50_us");
    ev.trial_p90_us = parsed.num("trial_p90_us");
    ev.trial_p99_us = parsed.num("trial_p99_us");
    constexpr std::string_view kPrefix = "values.";
    for (const auto& [key, value] : parsed.fields) {
      if (key.size() > kPrefix.size() &&
          std::string_view(key).substr(0, kPrefix.size()) == kPrefix) {
        const double* d = std::get_if<double>(&value);
        ev.values.emplace_back(key.substr(kPrefix.size()),
                               d != nullptr ? *d : 0.0);
      }
    }
    out = ev;
  } else {
    return false;
  }
  return true;
}

AuditReport audit_jsonl_file(const std::string& path,
                             const AuditConfig& config, std::size_t* malformed,
                             std::size_t* unknown) {
  if (unknown != nullptr) *unknown = 0;
  AuditSink sink(config);
  for (const ParsedEvent& parsed : read_jsonl_file(path, malformed)) {
    TraceEvent ev;
    if (to_trace_event(parsed, ev)) {
      sink.on_event(ev);
    } else if (unknown != nullptr) {
      ++*unknown;
    }
  }
  sink.finish();
  return sink.report();
}

AuditReport audit_ring(const RingBufferSink& ring, const AuditConfig& config) {
  AuditSink sink(config);
  for (const TraceEvent& ev : ring.snapshot()) sink.on_event(ev);
  sink.note_events_lost(ring.dropped());
  sink.finish();
  return sink.report();
}

}  // namespace slcube::obs
