#include "obs/sampling.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace slcube::obs {

const char* to_string(PromoteReason r) {
  switch (r) {
    case PromoteReason::kNone:
      return "none";
    case PromoteReason::kHead:
      return "head";
    case PromoteReason::kDrop:
      return "drop";
    case PromoteReason::kDetour:
      return "detour";
    case PromoteReason::kStale:
      return "stale";
    case PromoteReason::kMisroute:
      return "misroute";
    case PromoteReason::kLatency:
      return "latency";
  }
  SLC_UNREACHABLE("bad PromoteReason");
}

// --- TraceBudget -----------------------------------------------------------

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TraceBudget::TraceBudget(Options opt) : opt_(opt) {
  SLC_EXPECT(opt_.overhead_fraction >= 0.0);
  tokens_ns_ = static_cast<std::int64_t>(opt_.burst_ns);
  last_refill_ns_ = steady_ns();
}

void TraceBudget::refill() {
  const std::uint64_t now = steady_ns();
  if (now <= last_refill_ns_) return;
  const auto add = static_cast<std::int64_t>(
      static_cast<double>(now - last_refill_ns_) * opt_.overhead_fraction);
  last_refill_ns_ = now;
  const auto cap =
      std::max(tokens_ns_, static_cast<std::int64_t>(opt_.burst_ns));
  tokens_ns_ = std::min(tokens_ns_ + add, cap);
}

bool TraceBudget::try_admit() {
  const std::scoped_lock lock(mutex_);
  if (opt_.unlimited) {
    ++admitted_;
    return true;
  }
  refill();
  if (tokens_ns_ > 0) {
    ++admitted_;
    return true;
  }
  ++shed_;
  return false;
}

void TraceBudget::settle(std::uint64_t spent_ns) {
  const std::scoped_lock lock(mutex_);
  spent_ns_ += spent_ns;
  if (!opt_.unlimited) tokens_ns_ -= static_cast<std::int64_t>(spent_ns);
}

void TraceBudget::credit_ns(std::uint64_t ns) {
  const std::scoped_lock lock(mutex_);
  tokens_ns_ += static_cast<std::int64_t>(ns);
}

TraceBudget::Stats TraceBudget::stats() const {
  const std::scoped_lock lock(mutex_);
  return Stats{admitted_, shed_, spent_ns_};
}

// --- SamplingSink ----------------------------------------------------------

namespace {

std::atomic<std::uint64_t> next_sampler_id{1};

/// 4-byte test-and-test-and-set lock. Shard state is owner-written on
/// every route and only briefly inspected by collector threads (stats(),
/// breadcrumbs(), promoted_digest()), so the uncontended path — one
/// acquire exchange in, one release store out — is what the hot path
/// pays; std::mutex's 40 bytes and second RMW on unlock are measurable
/// at the per-route scale the overhead budget is written in.
class ShardLock {
 public:
  void lock() noexcept {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
      }
    }
  }
  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Single-entry thread-local cache, keyed by the sink's never-reused id
/// so a pointer into a destroyed sampler can only miss (same idiom as
/// the metrics registry's shard cache).
struct SamplerCache {
  std::uint64_t sink_id = 0;
  void* shard = nullptr;
};
thread_local SamplerCache tl_sampler_cache;

std::uint8_t latency_bucket_of(double latency_us) {
  if (latency_us < 0) return 0xFF;
  const double ns = latency_us * 1000.0;
  if (ns < 1.0) return 0;
  const int b = std::min(63, static_cast<int>(std::log2(ns)));
  return static_cast<std::uint8_t>(b);
}

std::uint64_t digest_mix(std::uint64_t route_id, std::uint8_t status_code,
                         unsigned hops, PromoteReason reason) {
  const std::uint64_t key =
      route_id * 0x9e3779b97f4a7c15ull ^
      (static_cast<std::uint64_t>(status_code) << 32) ^
      (static_cast<std::uint64_t>(hops & 0xFFFFu) << 40) ^
      (static_cast<std::uint64_t>(reason) << 56);
  return SplitMix64(key).next();
}

}  // namespace

struct SamplingSink::Shard {
  explicit Shard(std::size_t crumb_capacity) : ring(2 * crumb_capacity) {}

  // Single-writer hot state: the owner thread updates these with relaxed
  // atomic stores on every route (no RMW — the owner is the only
  // writer); collector threads (stats(), breadcrumbs()) read them
  // concurrently without taking `lock`. A concurrent reader gets a
  // racy-but-bounded snapshot — each 8-byte half of a crumb is atomic,
  // so a slot being overwritten can at worst mix two real crumbs, never
  // expose garbage — and a quiescent read (post-join, as in tests and
  // the bench collectors) is exact.
  std::atomic<std::uint64_t> routes{0};
  std::atomic<std::uint64_t> breadcrumb_only{0};
  std::atomic<std::uint64_t> ring_seen{0};
  std::uint64_t ring_pos = 0;  ///< owner-only wrap cursor (== ring_seen % cap)
  std::vector<std::atomic<std::uint64_t>> ring;  ///< two words per crumb
  // Guarded by `lock`: promotion-path and latency state (owner writes on
  // the rare promoted/latency-tracked routes; collectors read). The
  // routes / breadcrumb_only / breadcrumbs_dropped fields of `stats` are
  // unused here — they live in the atomics above and are derived at
  // collection time.
  mutable ShardLock lock;
  std::uint64_t digest = 0;
  Stats stats;
  std::uint64_t latency_counts[64] = {};
  std::uint64_t latency_total = 0;
  // Owner-thread-only route state: touched without locking on the
  // buffering hot path, never read by other threads (cold in replay
  // mode, where routes are offered rather than buffered).
  bool route_open = false;
  bool route_overflow = false;
  std::uint64_t route_id = 0;
  std::uint64_t route_events = 0;
  std::vector<TraceEvent> chain;
};

namespace {

/// Owner-only increment of a single-writer relaxed counter: a plain
/// load+store pair, not a fetch_add — there is nothing to contend with.
inline void bump(std::atomic<std::uint64_t>& counter) {
  counter.store(counter.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
}

}  // namespace

SamplingSink::SamplingSink(TraceSink* downstream, SamplingConfig config)
    : config_(config),
      downstream_(downstream),
      budget_(config.budget),
      id_(next_sampler_id.fetch_add(1)) {
  SLC_EXPECT(downstream_ != nullptr);
  SLC_EXPECT(config_.breadcrumb_capacity > 0);
  SLC_EXPECT(config_.max_chain_events > 0);
}

SamplingSink::~SamplingSink() {
  if (tl_sampler_cache.sink_id == id_) tl_sampler_cache = {};
}

SamplingSink::Shard& SamplingSink::local_shard() {
  if (tl_sampler_cache.sink_id == id_) {
    return *static_cast<Shard*>(tl_sampler_cache.shard);
  }
  const std::scoped_lock lock(mutex_);
  auto& slot = shards_[std::this_thread::get_id()];
  if (!slot) {
    slot = std::make_unique<Shard>(config_.breadcrumb_capacity);
    slot->chain.reserve(config_.max_chain_events);
  }
  tl_sampler_cache = {id_, slot.get()};
  return *slot;
}

void SamplingSink::on_event(const TraceEvent& ev) {
  Shard& shard = local_shard();
  if (shard.route_open) {
    ++shard.route_events;
    if (shard.chain.size() < config_.max_chain_events) {
      shard.chain.push_back(ev);
    } else {
      shard.route_overflow = true;
    }
    return;
  }
  {
    const std::scoped_lock lock(shard.lock);
    ++shard.stats.passthrough_events;
  }
  downstream_->on_event(ev);
}

void SamplingSink::begin_route(std::uint64_t route_id) {
  Shard& shard = local_shard();
  SLC_EXPECT_MSG(!shard.route_open, "sampled routes must not nest");
  shard.route_open = true;
  shard.route_overflow = false;
  shard.route_id = route_id;
  shard.route_events = 0;
  shard.chain.clear();
}

namespace {

/// Build the 16-byte per-route record (shared by both modes).
Breadcrumb make_breadcrumb(const RouteSummary& summary, std::uint8_t bucket,
                           PromoteReason reason, bool promoted, bool shed,
                           std::uint64_t chain_events) {
  Breadcrumb crumb;
  crumb.route_id_lo = static_cast<std::uint32_t>(summary.route_id);
  crumb.decision_epoch_lo = static_cast<std::uint32_t>(summary.decision_epoch);
  crumb.hops = static_cast<std::uint16_t>(std::min(summary.hops, 0xFFFFu));
  crumb.status = summary.status_code;
  crumb.latency_bucket = bucket;
  crumb.reason = static_cast<std::uint8_t>(reason);
  crumb.flags = static_cast<std::uint8_t>(
      (summary.stale() ? Breadcrumb::kFlagStale : 0) |
      (promoted ? Breadcrumb::kFlagPromoted : 0) |
      (shed ? Breadcrumb::kFlagShed : 0));
  crumb.chain_events =
      static_cast<std::uint16_t>(std::min<std::uint64_t>(chain_events, 0xFFFF));
  return crumb;
}

}  // namespace

/// Latency-outlier escalation + histogram update; call under shard.lock.
/// Only reachable in live mode (bucket != 0xFF); ticks mode passes
/// latency_us < 0 so the promotion set stays interleaving-free.
PromoteReason SamplingSink::apply_latency(Shard& shard, PromoteReason reason,
                                          std::uint8_t bucket) const {
  if (bucket == 0xFF) return reason;
  if (reason == PromoteReason::kNone && config_.latency_quantile > 0.0 &&
      shard.latency_total >= config_.latency_warmup) {
    const auto want = static_cast<std::uint64_t>(
        config_.latency_quantile * static_cast<double>(shard.latency_total));
    std::uint64_t seen = 0;
    int threshold = 63;
    for (int b = 0; b < 64; ++b) {
      seen += shard.latency_counts[b];
      if (seen >= want) {
        threshold = b;
        break;
      }
    }
    if (bucket > threshold) reason = PromoteReason::kLatency;
  }
  ++shard.latency_counts[bucket];
  ++shard.latency_total;
  return reason;
}

/// Ring write; owner thread only, no lock — the slot's two words are
/// relaxed atomic stores and ring_seen's release publish lets readers
/// see a complete prefix. The wrap cursor is maintained incrementally;
/// a 64-bit modulo per route is measurable against the overhead budget.
void SamplingSink::push_breadcrumb(Shard& shard, const Breadcrumb& crumb) {
  std::uint64_t words[2];
  static_assert(sizeof(words) == sizeof(Breadcrumb));
  std::memcpy(words, &crumb, sizeof(words));
  shard.ring[2 * shard.ring_pos].store(words[0], std::memory_order_relaxed);
  shard.ring[2 * shard.ring_pos + 1].store(words[1],
                                           std::memory_order_relaxed);
  if (++shard.ring_pos == config_.breadcrumb_capacity) shard.ring_pos = 0;
  shard.ring_seen.store(shard.ring_seen.load(std::memory_order_relaxed) + 1,
                        std::memory_order_release);
}

PromoteReason SamplingSink::end_route(const RouteSummary& summary) {
  Shard& shard = local_shard();
  SLC_EXPECT_MSG(shard.route_open, "end_route without begin_route");
  SLC_EXPECT(shard.route_id == summary.route_id);
  shard.route_open = false;

  const std::uint8_t bucket = latency_bucket_of(summary.latency_us);
  PromoteReason reason = classify(summary, config_);

  bump(shard.routes);
  const std::scoped_lock lock(shard.lock);
  Stats& st = shard.stats;
  st.buffered_events += shard.route_events;

  // Latency outlier: past the configured quantile of this shard's own
  // history (approximate by design — each shard judges against the
  // traffic it served).
  reason = apply_latency(shard, reason, bucket);

  bool promoted = false;
  bool shed = false;
  if (reason != PromoteReason::kNone) {
    if (shard.route_overflow) {
      // A truncated chain downstream would read as a producer bug; keep
      // the breadcrumb, count the demotion.
      ++st.overflow_routes;
      ++st.shed_by_reason[static_cast<std::size_t>(reason)];
      st.shed_events += shard.chain.size();
      shed = true;
    } else if (budget_.try_admit()) {
      promoted = true;
      const std::uint64_t t0 = budget_.unlimited() ? 0 : steady_ns();
      {
        // One burst per promotion: downstream sees whole chains even
        // when several threads promote at once.
        const std::scoped_lock burst(mutex_);
        for (const TraceEvent& ev : shard.chain) downstream_->on_event(ev);
        downstream_->on_event(RouteSummaryEvent{
            summary.route_id, summary.decision_epoch, summary.ground_epoch,
            summary.status, summary.hops, summary.latency_us, true,
            to_string(reason)});
      }
      if (!budget_.unlimited()) budget_.settle(steady_ns() - t0);
      ++st.promoted;
      ++st.promoted_by_reason[static_cast<std::size_t>(reason)];
      shard.digest ^= digest_mix(summary.route_id, summary.status_code,
                                 summary.hops, reason);
    } else {
      ++st.shed_routes;
      ++st.shed_by_reason[static_cast<std::size_t>(reason)];
      st.shed_events += shard.chain.size();
      shed = true;
    }
  }
  if (!promoted) {
    bump(shard.breadcrumb_only);
    if (config_.emit_breadcrumb_summaries) {
      downstream_->on_event(RouteSummaryEvent{
          summary.route_id, summary.decision_epoch, summary.ground_epoch,
          summary.status, summary.hops, summary.latency_us, false,
          to_string(reason)});
    }
  }

  push_breadcrumb(shard, make_breadcrumb(summary, bucket, reason, promoted,
                                         shed, shard.route_events));
  shard.chain.clear();
  return reason;
}

SamplingSink::Offer SamplingSink::offer(const RouteSummary& summary) {
  Shard& shard = local_shard();
  SLC_EXPECT_MSG(!shard.route_open, "offer() inside a buffered route");
  const std::uint8_t bucket = latency_bucket_of(summary.latency_us);
  PromoteReason reason = classify(summary, config_);

  // Fast path — nothing anomalous, no latency history to maintain, no
  // summary to forward. This is what ~99% of routes pay in replay mode:
  // two single-writer counter bumps and an atomic ring write, no lock.
  if (reason == PromoteReason::kNone && bucket == 0xFF &&
      !config_.emit_breadcrumb_summaries) {
    bump(shard.routes);
    bump(shard.breadcrumb_only);
    push_breadcrumb(shard, make_breadcrumb(summary, bucket, reason,
                                           /*promoted=*/false,
                                           /*shed=*/false,
                                           /*chain_events=*/0));
    return Offer{reason, false};
  }

  bump(shard.routes);
  const std::scoped_lock lock(shard.lock);
  Stats& st = shard.stats;
  reason = apply_latency(shard, reason, bucket);

  bool promoted = false;
  bool shed = false;
  if (reason != PromoteReason::kNone) {
    if (budget_.try_admit()) {
      promoted = true;
      ++st.promoted;
      ++st.promoted_by_reason[static_cast<std::size_t>(reason)];
      shard.digest ^= digest_mix(summary.route_id, summary.status_code,
                                 summary.hops, reason);
    } else {
      // Nothing was buffered, so a replay-mode shed loses the chain it
      // never generated — approximate the loss as the hop chain's size
      // (source decision + hops + terminal) for events_lost accounting.
      ++st.shed_routes;
      ++st.shed_by_reason[static_cast<std::size_t>(reason)];
      st.shed_events += summary.hops + 2;
      shed = true;
    }
  }
  if (!promoted) {
    bump(shard.breadcrumb_only);
    if (config_.emit_breadcrumb_summaries) {
      downstream_->on_event(RouteSummaryEvent{
          summary.route_id, summary.decision_epoch, summary.ground_epoch,
          summary.status, summary.hops, summary.latency_us, false,
          to_string(reason)});
    }
  }
  push_breadcrumb(shard,
                  make_breadcrumb(summary, bucket, reason, promoted, shed,
                                  /*chain_events=*/0));
  return Offer{reason, promoted};
}

void SamplingSink::replay_chain(const RouteSummary& summary,
                                PromoteReason reason,
                                std::span<const TraceEvent> chain) {
  Shard& shard = local_shard();
  const std::uint64_t t0 = budget_.unlimited() ? 0 : steady_ns();
  {
    const std::scoped_lock burst(mutex_);
    for (const TraceEvent& ev : chain) downstream_->on_event(ev);
    downstream_->on_event(RouteSummaryEvent{
        summary.route_id, summary.decision_epoch, summary.ground_epoch,
        summary.status, summary.hops, summary.latency_us, true,
        to_string(reason)});
  }
  if (!budget_.unlimited()) budget_.settle(steady_ns() - t0);
  const std::scoped_lock lock(shard.lock);
  shard.stats.buffered_events += chain.size();
}

PromoteReason SamplingSink::classify(const RouteSummary& s,
                                     const SamplingConfig& config) {
  // Most-specific anomaly wins: a misroute is usually also a drop, and a
  // drop under churn is usually also stale — the reason names the
  // sharpest cause so per-reason tallies stay interpretable.
  if (s.misroute && config.promote_misroutes) return PromoteReason::kMisroute;
  if (s.dropped && config.promote_drops) return PromoteReason::kDrop;
  if (s.detour && config.promote_detours) return PromoteReason::kDetour;
  if (s.stale() && config.promote_stale) return PromoteReason::kStale;
  if (config.head_every != 0 && s.route_id % config.head_every == 0) {
    return PromoteReason::kHead;
  }
  return PromoteReason::kNone;
}

SamplingSink::Stats SamplingSink::stats() const {
  std::vector<const Shard*> shards;
  {
    const std::scoped_lock lock(mutex_);
    shards.reserve(shards_.size());
    for (const auto& [tid, shard] : shards_) shards.push_back(shard.get());
  }
  Stats out;
  const std::uint64_t cap = config_.breadcrumb_capacity;
  for (const Shard* shard : shards) {
    out.routes += shard->routes.load(std::memory_order_relaxed);
    out.breadcrumb_only +=
        shard->breadcrumb_only.load(std::memory_order_relaxed);
    const std::uint64_t seen = shard->ring_seen.load(std::memory_order_acquire);
    out.breadcrumbs_dropped += seen > cap ? seen - cap : 0;
    const std::scoped_lock lock(shard->lock);
    const Stats& st = shard->stats;
    out.promoted += st.promoted;
    out.shed_routes += st.shed_routes;
    out.shed_events += st.shed_events;
    out.overflow_routes += st.overflow_routes;
    out.buffered_events += st.buffered_events;
    out.passthrough_events += st.passthrough_events;
    for (std::size_t r = 0; r < kNumPromoteReasons; ++r) {
      out.promoted_by_reason[r] += st.promoted_by_reason[r];
      out.shed_by_reason[r] += st.shed_by_reason[r];
    }
  }
  return out;
}

std::uint64_t SamplingSink::promoted_digest() const {
  std::vector<const Shard*> shards;
  {
    const std::scoped_lock lock(mutex_);
    shards.reserve(shards_.size());
    for (const auto& [tid, shard] : shards_) shards.push_back(shard.get());
  }
  std::uint64_t digest = 0;
  for (const Shard* shard : shards) {
    const std::scoped_lock lock(shard->lock);
    digest ^= shard->digest;
  }
  return digest;
}

std::vector<Breadcrumb> SamplingSink::breadcrumbs() const {
  std::vector<const Shard*> shards;
  {
    const std::scoped_lock lock(mutex_);
    shards.reserve(shards_.size());
    for (const auto& [tid, shard] : shards_) shards.push_back(shard.get());
  }
  std::vector<Breadcrumb> out;
  const std::uint64_t cap = config_.breadcrumb_capacity;
  for (const Shard* shard : shards) {
    // Lock-free snapshot: acquire on ring_seen pairs with the owner's
    // release publish, so the first min(seen, cap) slots are complete.
    // Reading concurrently with an owner that is still writing yields a
    // racy-but-bounded view (see the Shard comment); quiescent reads —
    // the supported mode — are exact.
    const std::uint64_t seen = shard->ring_seen.load(std::memory_order_acquire);
    const std::uint64_t count = std::min(seen, cap);
    const std::uint64_t head = seen <= cap ? 0 : seen % cap;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t slot = (head + i) % cap;
      std::uint64_t words[2] = {
          shard->ring[2 * slot].load(std::memory_order_relaxed),
          shard->ring[2 * slot + 1].load(std::memory_order_relaxed)};
      Breadcrumb crumb;
      std::memcpy(&crumb, words, sizeof(crumb));
      out.push_back(crumb);
    }
  }
  return out;
}

}  // namespace slcube::obs
