// slcube::obs — tail-sampled tracing for the serving layer: SamplingSink
// keeps full-fidelity tracing "always on" at a cost the hot path can
// afford. Every route pays for one fixed-size breadcrumb in a per-thread
// ring; the full causal event chain is retained (forwarded downstream)
// only when the route turns out to be interesting:
//
//   * anomalies — drops, H+2 detours, misroutes, stale-epoch decisions,
//     latency outliers past a configurable quantile (tail-based: the
//     decision is made at end_route, when the outcome is known);
//   * a deterministic 1-in-N head sample (route_id % head_every == 0) as
//     the unbiased control against which the anomalous tail is read.
//
// Promotion is bounded by TraceBudget, a self-measuring token bucket:
// the sink times its own downstream forwarding and spends those measured
// nanoseconds against a refill of wall-elapsed-time x overhead_fraction.
// When the bucket is empty the route sheds to breadcrumb-only — and the
// shed is *counted* (per promotion reason), never silent, so audit
// reconciliation can state exactly what the trace does not contain.
//
// Determinism contract (mirrors the telemetry/sweep-engine contract):
// with an unlimited budget and latency promotion off — the ticks-mode
// configuration — the promotion decision is a pure function of the
// route summary, so the promoted route *set* (promoted_digest(), an
// order-independent fold) is bit-identical at any thread count. The
// wall-clock budget and the latency quantile trade that invariance for
// live-overhead control; benches gate the deterministic configuration.
//
// Concurrency contract: begin_route / end_route / on_event may be called
// from any number of threads; routes are per-thread (begin and end on
// the same thread, chains never interleave on one thread — the same
// producer contract AuditSink relies on). Route events buffer in a
// thread-owned shard without locking; non-route events (epoch_publish,
// churn, gs rounds) pass straight through. Promoted chains are forwarded
// under one internal mutex as an atomic burst, so the downstream sink
// sees whole chains even when it is a shared LockedJsonlSink; the
// downstream sink must itself be thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace slcube::obs {

/// Why a route's full chain was (or would have been) retained.
enum class PromoteReason : std::uint8_t {
  kNone = 0,  ///< breadcrumb only
  kHead,      ///< deterministic 1-in-N control sample
  kDrop,      ///< route dropped (lost to a ground fault)
  kDetour,    ///< delivered on the H+2 spare path
  kStale,     ///< decision epoch older than ground epoch
  kMisroute,  ///< diagnosis-attributed misroute
  kLatency,   ///< past the configured latency quantile
};
inline constexpr std::size_t kNumPromoteReasons = 7;
[[nodiscard]] const char* to_string(PromoteReason r);

/// Self-measuring token bucket bounding promotion overhead. Tokens are
/// nanoseconds of downstream forwarding; refill accrues at
/// overhead_fraction of wall time elapsed since the last refill, capped
/// at burst_ns so idle periods cannot bank unbounded credit.
class TraceBudget {
 public:
  struct Options {
    /// Always admit (still counts admissions): the deterministic mode
    /// used when promotion decisions must be interleaving-free.
    bool unlimited = true;
    /// Fraction of wall time promotion may consume (0.05 = 5%).
    double overhead_fraction = 0.05;
    /// Token cap and initial credit, in nanoseconds.
    std::uint64_t burst_ns = 2'000'000;
  };

  TraceBudget() : TraceBudget(Options()) {}
  explicit TraceBudget(Options opt);

  /// True when the route may promote. Admit-then-settle: one oversized
  /// chain may overdraw the bucket by a single route; the debt is repaid
  /// before the next admission.
  [[nodiscard]] bool try_admit();
  /// Record the measured cost of an admitted promotion.
  void settle(std::uint64_t spent_ns);
  /// Test/tuning hook: grant extra credit without waiting on the clock.
  void credit_ns(std::uint64_t ns);

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;      ///< admissions refused
    std::uint64_t spent_ns = 0;  ///< settled forwarding time
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] bool unlimited() const { return opt_.unlimited; }

 private:
  void refill();

  Options opt_;
  mutable std::mutex mutex_;  ///< promotion-rate path; never on breadcrumbs
  std::int64_t tokens_ns_ = 0;
  std::uint64_t last_refill_ns_ = 0;  ///< steady-clock ns at last refill
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t spent_ns_ = 0;
};

/// The fixed-size per-route record every route writes. 16 bytes.
struct Breadcrumb {
  std::uint32_t route_id_lo = 0;  ///< low 32 bits of the route id
  std::uint32_t decision_epoch_lo = 0;
  std::uint16_t hops = 0;
  std::uint8_t status = 0;  ///< caller's status code (svc::ServeStatus)
  /// log2 bucket of latency in nanoseconds; 0xFF = not measured.
  std::uint8_t latency_bucket = 0xFF;
  std::uint8_t reason = 0;  ///< PromoteReason decided for this route
  std::uint8_t flags = 0;   ///< kFlagStale | kFlagPromoted | kFlagShed
  std::uint16_t chain_events = 0;  ///< events buffered while open
  static constexpr std::uint8_t kFlagStale = 1;
  static constexpr std::uint8_t kFlagPromoted = 2;
  static constexpr std::uint8_t kFlagShed = 4;  ///< wanted promotion, no budget
};
static_assert(sizeof(Breadcrumb) == 16);

/// What the caller knows about a finished route; the sampler's entire
/// promotion decision is a pure function of this struct (plus the head
/// modulus and, in live mode, the latency history).
struct RouteSummary {
  std::uint64_t route_id = 0;
  std::uint64_t decision_epoch = 0;
  std::uint64_t ground_epoch = 0;
  const char* status = "";       ///< e.g. to_string(svc::ServeStatus)
  std::uint8_t status_code = 0;  ///< small code for breadcrumbs/digest
  unsigned hops = 0;
  bool dropped = false;
  bool detour = false;
  bool misroute = false;
  double latency_us = -1.0;  ///< < 0 = not measured (ticks mode)
  [[nodiscard]] bool stale() const { return ground_epoch > decision_epoch; }
};

struct SamplingConfig {
  /// Promote route ids divisible by this as the unbiased control;
  /// 0 disables head sampling.
  std::uint32_t head_every = 1024;
  bool promote_drops = true;
  bool promote_detours = true;
  bool promote_misroutes = true;
  bool promote_stale = true;
  /// Promote latencies past this quantile of the shard-local history
  /// (0 disables; only meaningful in live mode where latency_us >= 0).
  double latency_quantile = 0.0;
  /// Latency samples a shard must see before the quantile applies.
  std::uint64_t latency_warmup = 512;
  /// Per-thread breadcrumb ring capacity (oldest evicted, counted). The
  /// default keeps each shard's ring at 128 KiB so steady-state crumb
  /// writes stay cache-resident instead of streaming through LLC and
  /// evicting the serving layer's routing tables — measurably cheaper
  /// per route than a larger ring despite wrapping sooner.
  std::size_t breadcrumb_capacity = 8192;
  /// Per-route chain buffer bound; a route that exceeds it is demoted to
  /// breadcrumb-only (counted as overflow) rather than forwarded
  /// truncated, which would read as a producer bug downstream.
  std::size_t max_chain_events = 512;
  /// Also forward a RouteSummaryEvent (promoted=false) for routes that
  /// stay breadcrumb-only, making the downstream stream self-describing
  /// at one event per route. Off for the <5%-overhead configuration.
  bool emit_breadcrumb_summaries = false;
  TraceBudget::Options budget;
};

/// See the file comment. `downstream` receives passthrough events,
/// promoted chains, and RouteSummaryEvents; it must be thread-safe when
/// the sampler is shared across threads.
class SamplingSink final : public TraceSink {
 public:
  explicit SamplingSink(TraceSink* downstream, SamplingConfig config = {});
  ~SamplingSink() override;

  /// Route events between begin_route and end_route (on the calling
  /// thread) buffer into the route's chain; everything else forwards
  /// straight downstream.
  void on_event(const TraceEvent& ev) override;

  // --- buffered mode (live producers) --------------------------------
  // The route's events are buffered as they happen and forwarded at
  // end_route if the route promotes. Works for any producer; every
  // route pays event construction + one copy per event.

  /// Open a route on the calling thread. Routes must not nest.
  void begin_route(std::uint64_t route_id);
  /// Close the route: decide promotion, write the breadcrumb, forward
  /// the chain + summary if promoted and the budget admits. Returns the
  /// decided reason (kNone = breadcrumb only) — callers use it to tally
  /// retention without re-deriving the classification.
  PromoteReason end_route(const RouteSummary& summary);

  // --- replay mode (deterministic producers) --------------------------
  // When re-running a route reproduces its event chain bit-for-bit
  // (e.g. workload::ServiceScript, or any serve against two immutable
  // snapshots), the chain need not be buffered at all: serve untraced,
  // offer() the summary, and only when it promotes re-serve traced and
  // hand the regenerated chain to replay_chain(). Unpromoted routes —
  // the overwhelming majority — then pay only the breadcrumb
  // accounting, which is how the sampled path stays within a few
  // percent of untraced throughput. Promotion decisions, counters,
  // digest, and breadcrumbs are identical to buffered mode (the
  // breadcrumb's chain_events is 0: nothing was buffered). Do not mix
  // the modes mid-route on one thread.

  struct Offer {
    PromoteReason reason = PromoteReason::kNone;
    /// True when the route promoted (budget admitted): the caller must
    /// regenerate the chain and call replay_chain().
    bool promoted = false;
  };
  [[nodiscard]] Offer offer(const RouteSummary& summary);

  /// Forward a regenerated chain + its summary downstream as one atomic
  /// burst (and settle the budget with the measured cost). Only for
  /// routes offer() promoted.
  void replay_chain(const RouteSummary& summary, PromoteReason reason,
                    std::span<const TraceEvent> chain);

  struct Stats {
    std::uint64_t routes = 0;
    std::uint64_t promoted = 0;         ///< full chains forwarded
    std::uint64_t breadcrumb_only = 0;  ///< routes with no chain forwarded
    std::uint64_t shed_routes = 0;      ///< wanted promotion, budget refused
    std::uint64_t shed_events = 0;      ///< chain events those sheds dropped
    std::uint64_t overflow_routes = 0;  ///< demoted by max_chain_events
    std::uint64_t buffered_events = 0;  ///< route events seen
    std::uint64_t passthrough_events = 0;
    std::uint64_t breadcrumbs_dropped = 0;  ///< ring evictions
    std::uint64_t promoted_by_reason[kNumPromoteReasons] = {};
    std::uint64_t shed_by_reason[kNumPromoteReasons] = {};
  };
  /// Merged over all thread shards. Safe to call concurrently with
  /// serving; counters for a route become visible at its end_route.
  [[nodiscard]] Stats stats() const;

  /// Order-independent fold (xor of a mix of id/status/hops/reason) over
  /// the promoted route set — the thread-invariance fingerprint gated in
  /// BENCH_SAMPLING.json. Deterministic-mode runs must produce the same
  /// digest at any thread count.
  [[nodiscard]] std::uint64_t promoted_digest() const;

  /// All retained breadcrumbs, grouped by shard in ring order.
  [[nodiscard]] std::vector<Breadcrumb> breadcrumbs() const;

  [[nodiscard]] TraceBudget& budget() { return budget_; }
  [[nodiscard]] const SamplingConfig& config() const { return config_; }

  /// The promotion rule as a pure function (exposed for tests): why
  /// would `s` promote, ignoring budget and latency history?
  [[nodiscard]] static PromoteReason classify(const RouteSummary& s,
                                              const SamplingConfig& config);

 private:
  struct Shard;
  Shard& local_shard();
  PromoteReason apply_latency(Shard& shard, PromoteReason reason,
                              std::uint8_t bucket) const;
  void push_breadcrumb(Shard& shard, const Breadcrumb& crumb);

  SamplingConfig config_;
  TraceSink* downstream_;
  TraceBudget budget_;
  const std::uint64_t id_;  ///< never-reused, keys the thread-local cache
  mutable std::mutex mutex_;  ///< shard map + promotion burst ordering
  mutable std::map<std::thread::id, std::unique_ptr<Shard>> shards_;
};

}  // namespace slcube::obs
