// Classic hypercube communication kernels — the "efficient interprocessor
// communication" workloads the paper's introduction motivates. Each
// pattern maps every source to one destination; parallel algorithms on
// hypercube machines (FFT, transpose, sorting networks, dimension-ordered
// collectives) generate exactly these shapes, which stress routing very
// differently from uniform random pairs (bit-complement forces H = n on
// every packet; dimension-exchange forces H = 1; bit-reversal/shuffle sit
// in between with highly correlated paths).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_set.hpp"
#include "topology/hypercube.hpp"
#include "workload/pair_sampler.hpp"

namespace slcube::workload {

enum class Pattern : std::uint8_t {
  kBitComplement,      ///< d = ~s  (antipodal: H = n for every pair)
  kBitReversal,        ///< d = reverse of s's n-bit address
  kTranspose,          ///< d = s rotated by n/2 (matrix transpose layout)
  kShuffle,            ///< d = s rotated left by 1 (perfect shuffle)
  kDimensionExchange,  ///< d = s ^ e^k for a round-robin k (H = 1)
  kRandomPermutation,  ///< seeded permutation of the healthy nodes
};

[[nodiscard]] std::string_view to_string(Pattern p);

/// All patterns, for sweep loops.
inline constexpr Pattern kAllPatterns[] = {
    Pattern::kBitComplement,  Pattern::kBitReversal,
    Pattern::kTranspose,      Pattern::kShuffle,
    Pattern::kDimensionExchange, Pattern::kRandomPermutation,
};

/// Destination of `s` under the pattern in the fault-free address space
/// (kRandomPermutation and kDimensionExchange need the generation call
/// below because they carry state; for them this returns nullopt).
[[nodiscard]] std::optional<NodeId> pattern_destination(
    const topo::Hypercube& cube, Pattern p, NodeId s);

/// Generate the pattern's traffic on a faulty cube: one pair per healthy
/// source whose destination is also healthy and differs from it.
/// `rng` seeds kRandomPermutation and the round-robin dimension of
/// kDimensionExchange; it is untouched by the pure bit patterns.
[[nodiscard]] std::vector<Pair> generate_pattern(
    const topo::Hypercube& cube, const fault::FaultSet& faults, Pattern p,
    Xoshiro256ss& rng);

}  // namespace slcube::workload
