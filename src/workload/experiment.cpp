#include "workload/experiment.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "analysis/components.hpp"
#include "analysis/path.hpp"
#include "core/egs_oracle.hpp"
#include "core/safety_oracle.hpp"
#include "diag/routing.hpp"
#include "core/global_status.hpp"
#include "core/safe_node.hpp"
#include "exp/sweep_engine.hpp"
#include "fault/injection.hpp"
#include "topology/topology_view.hpp"
#include "workload/pair_sampler.hpp"

namespace slcube::workload {

namespace {

void emit_sweep_point(obs::TraceSink* trace, const char* sweep,
                      std::uint64_t fault_count, const SweepTiming& timing,
                      unsigned threads,
                      std::vector<std::pair<std::string, double>> values) {
  if (trace == nullptr) return;
  obs::SweepPointEvent ev;
  ev.sweep = sweep;
  ev.fault_count = fault_count;
  ev.wall_ms = timing.wall_ms;
  ev.utilization = timing.utilization;
  ev.threads = threads;
  ev.trial_p50_us = timing.p50_us();
  ev.trial_p90_us = timing.p90_us();
  ev.trial_p99_us = timing.p99_us();
  ev.values = std::move(values);
  trace->on_event(ev);
}

fault::FaultSet inject(const topo::Hypercube& cube, InjectionKind kind,
                       std::uint64_t count, Xoshiro256ss& rng) {
  switch (kind) {
    case InjectionKind::kUniform:
      return fault::inject_uniform(cube, count, rng);
    case InjectionKind::kClustered:
      return fault::inject_clustered(cube, count, rng);
    case InjectionKind::kIsolation: {
      NodeId victim = 0;
      const std::uint64_t extra =
          count > cube.dimension() ? count - cube.dimension() : 0;
      return fault::inject_isolation(cube, extra, rng, victim);
    }
    case InjectionKind::kStar: {
      // A star is bounded by its center's degree: at most n + 1 faults.
      const unsigned leaves = static_cast<unsigned>(std::min<std::uint64_t>(
          count > 0 ? count - 1 : 0, cube.dimension()));
      return fault::inject_star(cube, leaves, rng);
    }
    case InjectionKind::kPath:
      return fault::inject_path(cube, count, rng);
  }
  SLC_UNREACHABLE("bad InjectionKind");
}

/// Fold `hits` successes out of `total` attempts into a Ratio (totals
/// per trial are tiny — at most the pair count).
void add_many(Ratio& r, std::uint64_t hits, std::uint64_t total) {
  for (std::uint64_t i = 0; i < total; ++i) r.add(i < hits);
}

void adopt_timing(SweepTiming& out, exp::EngineTiming&& in) {
  out.wall_ms = in.wall_ms;
  out.utilization = in.utilization;
  out.trial_latency_us = std::move(in.trial_latency_us);
}

/// Per-route metrics a sweep registers when a telemetry registry is
/// attached: request/delivery counters, a delivered-hop histogram, and
/// one counter per dimension feeding the utilization heatmap. Handles are
/// value types writing to per-thread shards, so record_walk is safe from
/// any worker; when no registry is attached, record_walk is one branch.
struct RouteInstruments {
  bool enabled = false;
  obs::Counter requests;
  obs::Counter delivered;
  obs::Histogram hops;
  std::vector<obs::Counter> hop_dims;

  RouteInstruments(obs::Registry* reg, unsigned dimension) {
    if (reg == nullptr) return;
    enabled = true;
    requests = reg->counter("route.requests");
    delivered = reg->counter("route.delivered");
    hops = reg->histogram("route.hops",
                          obs::linear_bounds(1.0, 1.0, 2 * dimension));
    hop_dims.reserve(dimension);
    for (unsigned k = 0; k < dimension; ++k) {
      hop_dims.push_back(reg->counter("hops.dim." + std::to_string(k)));
    }
  }

  void record_walk(const std::vector<NodeId>& walk, bool was_delivered) {
    if (!enabled) return;
    requests.inc();
    if (was_delivered && walk.size() > 1) {
      delivered.inc();
      hops.observe(static_cast<double>(walk.size() - 1));
    }
    for (std::size_t i = 1; i < walk.size(); ++i) {
      const auto dim =
          static_cast<std::size_t>(std::countr_zero(walk[i - 1] ^ walk[i]));
      if (dim < hop_dims.size()) hop_dims[dim].inc();
    }
  }
};

}  // namespace

std::vector<SweepPoint> run_routing_sweep(const SweepConfig& config,
                                          const RouterFactory& factory) {
  const topo::Hypercube cube(config.dimension);
  const topo::HypercubeView view(cube);
  std::vector<SweepPoint> points;
  points.reserve(config.fault_counts.size());

  exp::SweepEngine engine({config.threads, config.seed,
                           config.instrumentation.registry,
                           config.instrumentation.profiler});
  RouteInstruments instruments(config.instrumentation.registry,
                               config.dimension);

  // Router names come from one probe instantiation; the trial bodies
  // rebuild their own instances with trial-local seeds so that random
  // tie-break routers draw identically at any worker count.
  std::vector<std::string> names;
  for (const auto& r : factory(config.seed)) names.emplace_back(r->name());

  /// Everything one trial contributes; merged into the point in trial
  /// order, which is what makes the sweep --threads-invariant.
  struct TrialOut {
    bool valid = false;
    bool disconnected = false;
    double prepare_rounds = 0.0;
    std::vector<RoutingMetrics> per_router;
  };

  for (std::size_t pi = 0; pi < config.fault_counts.size(); ++pi) {
    const std::uint64_t fault_count = config.fault_counts[pi];
    SweepPoint point;
    point.fault_count = fault_count;

    exp::EngineTiming timing;
    const auto trials = engine.map<TrialOut>(
        pi, config.trials,
        [&](exp::TrialContext& ctx) {
          TrialOut out;
          const std::uint64_t router_seed = ctx.rng();
          const fault::FaultSet faults =
              inject(cube, config.injection, fault_count, ctx.rng);
          if (faults.healthy_count() < 2) return out;
          out.valid = true;
          out.disconnected =
              analysis::connected_components(view, faults).disconnected();

          auto routers = factory(router_seed);
          out.per_router.resize(routers.size());
          for (auto& r : routers) r->prepare(cube, faults);
          out.prepare_rounds =
              static_cast<double>(routers.front()->prepare_rounds());

          for (unsigned p = 0; p < config.pairs; ++p) {
            const auto pair = sample_uniform_pair(faults, ctx.rng);
            if (!pair) break;
            const auto dist = analysis::bfs_distances(view, faults, pair->s);
            const unsigned hamming = cube.distance(pair->s, pair->d);
            for (std::size_t i = 0; i < routers.size(); ++i) {
              const routing::RouteAttempt attempt =
                  routers[i]->route(pair->s, pair->d);
              // Only the first router feeds the telemetry heatmap, so
              // the per-dimension series describe one routing policy.
              if (i == 0) instruments.record_walk(attempt.walk,
                                                  attempt.delivered);
              out.per_router[i].record(attempt, hamming, dist[pair->d]);
            }
          }
          return out;
        },
        &timing);
    adopt_timing(point.timing, std::move(timing));

    for (const auto& name : names) {
      point.per_router.emplace_back(name, RoutingMetrics{});
    }
    for (const TrialOut& t : trials) {
      if (!t.valid) continue;
      SLC_ASSERT(t.per_router.size() == point.per_router.size());
      for (std::size_t i = 0; i < t.per_router.size(); ++i) {
        point.per_router[i].second.merge(t.per_router[i]);
      }
      point.disconnected.add(t.disconnected);
      point.prepare_rounds.add(t.prepare_rounds);
    }

    if (config.trace != nullptr) {
      std::vector<std::pair<std::string, double>> values;
      // Router names may repeat (e.g. two configurations of the same
      // router in an ablation); suffix #k so the JSON keys stay unique.
      std::map<std::string, unsigned> seen;
      for (const auto& [name, metrics] : point.per_router) {
        const unsigned k = seen[name]++;
        const std::string key = k == 0 ? name : name + "#" + std::to_string(k);
        values.emplace_back(key + ".delivered_pct",
                            metrics.delivered.percent());
        values.emplace_back(key + ".optimal_pct", metrics.optimal.percent());
        values.emplace_back(key + ".refused_pct", metrics.refused.percent());
        values.emplace_back(key + ".traffic_mean", metrics.traffic.mean());
      }
      values.emplace_back("disconnected_pct", point.disconnected.percent());
      values.emplace_back("prepare_rounds_mean", point.prepare_rounds.mean());
      emit_sweep_point(config.trace, "routing", fault_count, point.timing,
                       static_cast<unsigned>(engine.workers()),
                       std::move(values));
    }
    config.instrumentation.tick();
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<RoundsPoint> run_rounds_sweep(
    unsigned dimension, const std::vector<std::uint64_t>& fault_counts,
    unsigned trials, std::uint64_t seed, obs::TraceSink* trace,
    unsigned threads, obs::InstrumentationHooks instrumentation) {
  const topo::Hypercube cube(dimension);
  const topo::HypercubeView view(cube);
  std::vector<RoundsPoint> points;
  points.reserve(fault_counts.size());

  exp::SweepEngine engine(
      {threads, seed, instrumentation.registry, instrumentation.profiler});

  struct TrialOut {
    double gs_rounds = 0.0;
    double lh_rounds = 0.0;
    double wf_rounds = 0.0;
    double safe_level_n = 0.0;
    double safe_lh = 0.0;
    double safe_wf = 0.0;
    bool disconnected = false;
  };

  for (std::size_t pi = 0; pi < fault_counts.size(); ++pi) {
    const std::uint64_t fault_count = fault_counts[pi];
    RoundsPoint point;
    point.fault_count = fault_count;

    exp::EngineTiming timing;
    const auto results = engine.map<TrialOut>(
        pi, trials,
        [&](exp::TrialContext& ctx) {
          const fault::FaultSet faults =
              fault::inject_uniform(cube, fault_count, ctx.rng);
          const core::GsResult gs = core::run_gs(cube, faults);
          const auto lh = core::compute_safe_nodes(
              cube, faults, core::SafeNodeRule::kLeeHayes);
          const auto wf = core::compute_safe_nodes(
              cube, faults, core::SafeNodeRule::kWuFernandez);
          TrialOut out;
          out.gs_rounds = gs.rounds_to_stabilize;
          out.lh_rounds = lh.rounds_to_stabilize;
          out.wf_rounds = wf.rounds_to_stabilize;
          out.safe_level_n =
              static_cast<double>(gs.levels.safe_nodes().size());
          out.safe_lh = static_cast<double>(lh.safe_count());
          out.safe_wf = static_cast<double>(wf.safe_count());
          out.disconnected =
              analysis::connected_components(view, faults).disconnected();
          return out;
        },
        &timing);
    adopt_timing(point.timing, std::move(timing));

    for (const TrialOut& t : results) {
      point.gs_rounds.add(t.gs_rounds);
      point.lh_rounds.add(t.lh_rounds);
      point.wf_rounds.add(t.wf_rounds);
      point.safe_level_n.add(t.safe_level_n);
      point.safe_lh.add(t.safe_lh);
      point.safe_wf.add(t.safe_wf);
      point.disconnected.add(t.disconnected);
    }

    emit_sweep_point(
        trace, "rounds", fault_count, point.timing,
        static_cast<unsigned>(engine.workers()),
        {{"gs_rounds_mean", point.gs_rounds.mean()},
         {"lh_rounds_mean", point.lh_rounds.mean()},
         {"wf_rounds_mean", point.wf_rounds.mean()},
         {"safe_level_n_mean", point.safe_level_n.mean()},
         {"safe_lh_mean", point.safe_lh.mean()},
         {"safe_wf_mean", point.safe_wf.mean()},
         {"disconnected_pct", point.disconnected.percent()}});
    instrumentation.tick();
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<LinkSweepPoint> run_link_routing_sweep(
    const LinkSweepConfig& config) {
  const topo::Hypercube cube(config.dimension);
  std::vector<LinkSweepPoint> points;
  points.reserve(config.points.size());

  exp::SweepEngine engine({config.threads, config.seed,
                           config.instrumentation.registry,
                           config.instrumentation.profiler});
  RouteInstruments instruments(config.instrumentation.registry,
                               config.dimension);

  // One incremental two-view oracle per worker, retargeted between
  // trials. Caching across trials cannot perturb results: the oracle's
  // tables are bit-identical to run_egs on each trial's configuration.
  const std::size_t slots = std::max<std::size_t>(1, engine.workers());
  std::vector<std::unique_ptr<core::EgsOracle>> oracles(slots);

  struct TrialOut {
    bool valid = false;
    Ratio delivered;
    Ratio refused;
    Ratio stuck;
    Ratio optimal;
    Ratio suboptimal;
    Ratio valid_paths;
    double n2_nodes = 0.0;
  };

  core::UnicastOptions route_options;
  route_options.trace = config.route_trace;

  for (std::size_t pi = 0; pi < config.points.size(); ++pi) {
    const auto [nf, lf] = config.points[pi];
    LinkSweepPoint point;
    point.node_faults = nf;
    point.link_faults = lf;

    exp::EngineTiming timing;
    const auto trials = engine.map<TrialOut>(
        pi, config.trials,
        [&](exp::TrialContext& ctx) {
          TrialOut out;
          const fault::FaultSet faults =
              fault::inject_uniform(cube, nf, ctx.rng);
          const fault::LinkFaultSet links =
              fault::inject_links_uniform(cube, lf, ctx.rng);
          if (faults.healthy_count() < 2) return out;
          out.valid = true;

          auto& oracle = oracles[ctx.worker];
          if (!oracle) {
            oracle = std::make_unique<core::EgsOracle>(cube, faults, links);
          } else {
            oracle->retarget(faults, links);
          }
          const core::EgsViews views = oracle->views();
          for (NodeId a = 0; a < cube.num_nodes(); ++a) {
            if (oracle->in_n2(a)) out.n2_nodes += 1.0;
          }

          for (unsigned p = 0; p < config.pairs; ++p) {
            const auto pair = sample_uniform_pair(faults, ctx.rng);
            if (!pair) break;
            const auto r = core::route_unicast_egs(
                cube, faults, links, views, pair->s, pair->d, route_options);
            out.delivered.add(r.delivered());
            out.refused.add(r.status == core::RouteStatus::kSourceRefused);
            out.stuck.add(r.status == core::RouteStatus::kStuck);
            if (r.delivered()) {
              out.optimal.add(r.status ==
                              core::RouteStatus::kDeliveredOptimal);
              out.suboptimal.add(r.status ==
                                 core::RouteStatus::kDeliveredSuboptimal);
              out.valid_paths.add(
                  analysis::check_path_with_links(cube, faults, links, r.path)
                      .cls != analysis::PathClass::kInvalid);
            }
          }
          return out;
        },
        &timing);
    adopt_timing(point.timing, std::move(timing));

    for (const TrialOut& t : trials) {
      if (!t.valid) continue;
      point.delivered.merge(t.delivered);
      point.refused.merge(t.refused);
      point.stuck.merge(t.stuck);
      point.optimal.merge(t.optimal);
      point.suboptimal.merge(t.suboptimal);
      point.valid_paths.merge(t.valid_paths);
      point.n2_nodes.add(t.n2_nodes);
    }

    emit_sweep_point(
        config.trace, "links", nf, point.timing,
        static_cast<unsigned>(engine.workers()),
        {{"link_faults", static_cast<double>(lf)},
         {"delivered_pct", point.delivered.percent()},
         {"optimal_pct", point.optimal.percent()},
         {"suboptimal_pct", point.suboptimal.percent()},
         {"refused_pct", point.refused.percent()},
         {"stuck_pct", point.stuck.percent()},
         {"valid_paths_pct", point.valid_paths.percent()},
         {"n2_nodes_mean", point.n2_nodes.mean()}});
    config.instrumentation.tick();
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<DiagSweepPoint> run_diagnosis_sweep(const DiagSweepConfig& config) {
  const topo::Hypercube cube(config.dimension);
  std::vector<DiagSweepPoint> points;
  points.reserve(config.fault_counts.size());

  exp::SweepEngine engine({config.threads, config.seed,
                           config.instrumentation.registry,
                           config.instrumentation.profiler});
  RouteInstruments instruments(config.instrumentation.registry,
                               config.dimension);

  // Two level tables per worker — the ground world and the believed one.
  // Retargeting between trials is sound (Theorem-1 uniqueness makes the
  // oracle bit-identical to a from-scratch GS), so trial results cannot
  // depend on which worker ran them.
  const std::size_t slots = std::max<std::size_t>(1, engine.workers());
  std::vector<std::unique_ptr<core::SafetyOracle>> ground_oracles(slots);
  std::vector<std::unique_ptr<core::SafetyOracle>> diag_oracles(slots);

  struct TrialOut {
    bool valid = false;
    std::uint64_t missed = 0;
    std::uint64_t false_accusations = 0;
    bool exact = false;
    std::uint64_t attempts = 0;
    std::uint64_t delivered = 0;
    std::uint64_t refused = 0;
    std::uint64_t dropped = 0;
    std::uint64_t planned_optimal = 0;  ///< of ground deliveries
    std::uint64_t misrouted = 0;
    std::uint64_t false_rejects = 0;
    std::uint64_t optimism_drops = 0;
    std::uint64_t pessimism_detours = 0;
  };

  core::UnicastOptions route_options;
  route_options.trace = config.route_trace;

  for (std::size_t pi = 0; pi < config.fault_counts.size(); ++pi) {
    const std::uint64_t fault_count = config.fault_counts[pi];
    DiagSweepPoint point;
    point.fault_count = config.fixed_faults != nullptr
                            ? config.fixed_faults->count()
                            : fault_count;

    exp::EngineTiming timing;
    const auto trials = engine.map<TrialOut>(
        pi, config.trials,
        [&](exp::TrialContext& ctx) {
          TrialOut out;
          const fault::FaultSet ground =
              config.fixed_faults != nullptr
                  ? *config.fixed_faults
                  : inject(cube, config.injection, fault_count, ctx.rng);
          if (ground.healthy_count() < 2) return out;
          out.valid = true;

          auto& ground_oracle = ground_oracles[ctx.worker];
          if (!ground_oracle) {
            ground_oracle = std::make_unique<core::SafetyOracle>(cube, ground);
          } else {
            ground_oracle->retarget(ground);
          }

          diag::Diagnosis diagnosis;
          if (config.ground_truth_arm) {
            diagnosis.presumed = ground;
          } else {
            diagnosis = diag::diagnose(cube, ground, config.syndrome,
                                       config.decoder, ctx.rng);
          }
          out.missed = diagnosis.missed.size();
          out.false_accusations = diagnosis.false_accusations.size();
          out.exact = diagnosis.exact();

          auto& diag_oracle = diag_oracles[ctx.worker];
          if (!diag_oracle) {
            diag_oracle =
                std::make_unique<core::SafetyOracle>(cube, diagnosis.presumed);
          } else {
            diag_oracle->retarget(diagnosis.presumed);
          }

          for (unsigned p = 0; p < config.pairs; ++p) {
            const auto pair = sample_uniform_pair(ground, ctx.rng);
            if (!pair) break;
            const diag::DiagnosedRouteResult r = diag::route_diagnosed(
                cube, ground, ground_oracle->levels(), diagnosis.presumed,
                diag_oracle->levels(), pair->s, pair->d, route_options);
            instruments.record_walk(r.planned.path, r.delivered);
            ++out.attempts;
            out.delivered += r.delivered ? 1 : 0;
            out.refused +=
                r.planned.status == core::RouteStatus::kSourceRefused ? 1 : 0;
            out.dropped += r.dropped ? 1 : 0;
            if (r.delivered) {
              out.planned_optimal +=
                  r.planned.status == core::RouteStatus::kDeliveredOptimal
                      ? 1
                      : 0;
            }
            switch (r.misroute) {
              case diag::MisrouteClass::kNone:
                break;
              case diag::MisrouteClass::kFalseRejectAtSource:
                ++out.false_rejects;
                break;
              case diag::MisrouteClass::kOptimismDrop:
                ++out.optimism_drops;
                break;
              case diag::MisrouteClass::kPessimismDetour:
                ++out.pessimism_detours;
                break;
            }
            out.misrouted += r.misroute != diag::MisrouteClass::kNone ? 1 : 0;
          }
          return out;
        },
        &timing);
    adopt_timing(point.timing, std::move(timing));

    for (const TrialOut& t : trials) {
      if (!t.valid) {
        point.digest = exp::mix64(point.digest ^ 0x1D1E);
        continue;
      }
      point.missed.add(static_cast<double>(t.missed));
      point.false_accusations.add(static_cast<double>(t.false_accusations));
      point.exact_diagnosis.add(t.exact);
      add_many(point.delivered, t.delivered, t.attempts);
      add_many(point.refused, t.refused, t.attempts);
      add_many(point.dropped, t.dropped, t.attempts);
      add_many(point.optimal, t.planned_optimal, t.delivered);
      add_many(point.misrouted, t.misrouted, t.attempts);
      point.false_rejects += t.false_rejects;
      point.optimism_drops += t.optimism_drops;
      point.pessimism_detours += t.pessimism_detours;
      // Trial-order digest over every integer tally: bit-identical runs
      // and only bit-identical runs agree.
      point.digest = exp::mix64(point.digest ^ t.missed);
      point.digest = exp::mix64(point.digest ^ t.false_accusations);
      point.digest = exp::mix64(point.digest ^ t.delivered);
      point.digest = exp::mix64(point.digest ^ t.refused);
      point.digest = exp::mix64(point.digest ^ t.dropped);
      point.digest = exp::mix64(point.digest ^ t.false_rejects);
      point.digest = exp::mix64(point.digest ^ t.optimism_drops);
      point.digest = exp::mix64(point.digest ^ t.pessimism_detours);
    }

    emit_sweep_point(
        config.trace, "diag", point.fault_count, point.timing,
        static_cast<unsigned>(engine.workers()),
        {{"missed_mean", point.missed.mean()},
         {"false_accusations_mean", point.false_accusations.mean()},
         {"exact_diagnosis_pct", point.exact_diagnosis.percent()},
         {"delivered_pct", point.delivered.percent()},
         {"refused_pct", point.refused.percent()},
         {"dropped_pct", point.dropped.percent()},
         {"optimal_pct", point.optimal.percent()},
         {"misrouted_pct", point.misrouted.percent()},
         {"false_rejects", static_cast<double>(point.false_rejects)},
         {"optimism_drops", static_cast<double>(point.optimism_drops)},
         {"pessimism_detours", static_cast<double>(point.pessimism_detours)}});
    config.instrumentation.tick();
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace slcube::workload
