#include "workload/experiment.hpp"

#include <map>
#include <mutex>

#include "analysis/components.hpp"
#include "common/thread_pool.hpp"
#include "core/global_status.hpp"
#include "core/safe_node.hpp"
#include "fault/injection.hpp"
#include "obs/span.hpp"
#include "topology/topology_view.hpp"
#include "workload/pair_sampler.hpp"

namespace slcube::workload {

namespace {

/// 1µs .. ~34s in doubling buckets — wide enough for any trial we run.
std::vector<double> trial_latency_bounds() {
  return obs::exponential_bounds(1.0, 2.0, 26);
}

void emit_sweep_point(obs::TraceSink* trace, const char* sweep,
                      std::uint64_t fault_count, const SweepTiming& timing,
                      std::vector<std::pair<std::string, double>> values) {
  if (trace == nullptr) return;
  obs::SweepPointEvent ev;
  ev.sweep = sweep;
  ev.fault_count = fault_count;
  ev.wall_ms = timing.wall_ms;
  ev.utilization = timing.utilization;
  ev.trial_p50_us = timing.p50_us();
  ev.trial_p90_us = timing.p90_us();
  ev.trial_p99_us = timing.p99_us();
  ev.values = std::move(values);
  trace->on_event(ev);
}

fault::FaultSet inject(const topo::Hypercube& cube, InjectionKind kind,
                       std::uint64_t count, Xoshiro256ss& rng) {
  switch (kind) {
    case InjectionKind::kUniform:
      return fault::inject_uniform(cube, count, rng);
    case InjectionKind::kClustered:
      return fault::inject_clustered(cube, count, rng);
    case InjectionKind::kIsolation: {
      NodeId victim = 0;
      const std::uint64_t extra =
          count > cube.dimension() ? count - cube.dimension() : 0;
      return fault::inject_isolation(cube, extra, rng, victim);
    }
  }
  SLC_UNREACHABLE("bad InjectionKind");
}

}  // namespace

std::vector<SweepPoint> run_routing_sweep(const SweepConfig& config,
                                          const RouterFactory& factory) {
  const topo::Hypercube cube(config.dimension);
  const topo::HypercubeView view(cube);
  std::vector<SweepPoint> points;
  points.reserve(config.fault_counts.size());

  Xoshiro256ss master(config.seed);
  for (const std::uint64_t fault_count : config.fault_counts) {
    SweepPoint point;
    point.fault_count = fault_count;
    point.timing.trial_latency_us = obs::HistogramData(trial_latency_bounds());
    const std::uint64_t point_seed = master();

    struct ChunkAcc {
      std::vector<RoutingMetrics> per_router;
      Ratio disconnected;
      RunningStat prepare_rounds;
      std::vector<std::string> names;
      double busy_ms = 0.0;
      obs::HistogramData trial_latency_us;
    };
    std::vector<ChunkAcc> chunks(
        std::max<std::size_t>(1, default_pool().size()));
    for (ChunkAcc& acc : chunks) {
      acc.trial_latency_us = obs::HistogramData(trial_latency_bounds());
    }

    obs::Stopwatch point_wall;
    parallel_for_chunks(
        default_pool(), config.trials,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          ChunkAcc& acc = chunks[chunk];
          const obs::Stopwatch chunk_busy;
          auto routers = factory(point_seed ^ (0x9E37u + chunk));
          acc.per_router.resize(routers.size());
          for (const auto& r : routers) acc.names.emplace_back(r->name());

          for (std::size_t trial = begin; trial < end; ++trial) {
            const obs::Stopwatch trial_clock;
            // Per-trial RNG derived from (point, trial) only, so results
            // are identical however trials are chunked over threads.
            Xoshiro256ss rng(point_seed ^ (trial * 0x9E3779B97F4A7C15ull));
            const fault::FaultSet faults =
                inject(cube, config.injection, fault_count, rng);
            if (faults.healthy_count() < 2) continue;
            acc.disconnected.add(
                analysis::connected_components(view, faults).disconnected());

            for (auto& r : routers) r->prepare(cube, faults);
            acc.prepare_rounds.add(
                static_cast<double>(routers.front()->prepare_rounds()));

            for (unsigned p = 0; p < config.pairs; ++p) {
              const auto pair = sample_uniform_pair(faults, rng);
              if (!pair) break;
              const auto dist =
                  analysis::bfs_distances(view, faults, pair->s);
              const unsigned hamming = cube.distance(pair->s, pair->d);
              for (std::size_t i = 0; i < routers.size(); ++i) {
                acc.per_router[i].record(routers[i]->route(pair->s, pair->d),
                                         hamming, dist[pair->d]);
              }
            }
            acc.trial_latency_us.observe(trial_clock.micros());
          }
          acc.busy_ms = chunk_busy.millis();
        });
    point.timing.wall_ms = point_wall.millis();

    // Merge chunk accumulators in chunk order (deterministic).
    double busy_ms = 0.0;
    for (const ChunkAcc& acc : chunks) {
      busy_ms += acc.busy_ms;
      point.timing.trial_latency_us.merge(acc.trial_latency_us);
      if (acc.names.empty()) continue;
      if (point.per_router.empty()) {
        for (const auto& name : acc.names) {
          point.per_router.emplace_back(name, RoutingMetrics{});
        }
      }
      SLC_ASSERT(acc.per_router.size() == point.per_router.size());
      for (std::size_t i = 0; i < acc.per_router.size(); ++i) {
        point.per_router[i].second.merge(acc.per_router[i]);
      }
      point.disconnected.merge(acc.disconnected);
      point.prepare_rounds.merge(acc.prepare_rounds);
    }
    const double capacity_ms =
        point.timing.wall_ms *
        static_cast<double>(std::max<std::size_t>(1, default_pool().size()));
    point.timing.utilization = capacity_ms > 0.0 ? busy_ms / capacity_ms : 0.0;

    if (config.trace != nullptr) {
      std::vector<std::pair<std::string, double>> values;
      // Router names may repeat (e.g. two configurations of the same
      // router in an ablation); suffix #k so the JSON keys stay unique.
      std::map<std::string, unsigned> seen;
      for (const auto& [name, metrics] : point.per_router) {
        const unsigned k = seen[name]++;
        const std::string key = k == 0 ? name : name + "#" + std::to_string(k);
        values.emplace_back(key + ".delivered_pct",
                            metrics.delivered.percent());
        values.emplace_back(key + ".optimal_pct", metrics.optimal.percent());
        values.emplace_back(key + ".refused_pct", metrics.refused.percent());
        values.emplace_back(key + ".traffic_mean", metrics.traffic.mean());
      }
      values.emplace_back("disconnected_pct", point.disconnected.percent());
      values.emplace_back("prepare_rounds_mean", point.prepare_rounds.mean());
      emit_sweep_point(config.trace, "routing", fault_count, point.timing,
                       std::move(values));
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<RoundsPoint> run_rounds_sweep(
    unsigned dimension, const std::vector<std::uint64_t>& fault_counts,
    unsigned trials, std::uint64_t seed, obs::TraceSink* trace) {
  const topo::Hypercube cube(dimension);
  const topo::HypercubeView view(cube);
  std::vector<RoundsPoint> points;
  points.reserve(fault_counts.size());

  Xoshiro256ss master(seed);
  for (const std::uint64_t fault_count : fault_counts) {
    RoundsPoint point;
    point.fault_count = fault_count;
    point.timing.trial_latency_us = obs::HistogramData(trial_latency_bounds());
    const std::uint64_t point_seed = master();
    const obs::Stopwatch point_wall;
    for (unsigned trial = 0; trial < trials; ++trial) {
      const obs::Stopwatch trial_clock;
      Xoshiro256ss rng(point_seed ^ (trial * 0x9E3779B97F4A7C15ull));
      const fault::FaultSet faults =
          fault::inject_uniform(cube, fault_count, rng);
      const core::GsResult gs = core::run_gs(cube, faults);
      const auto lh = core::compute_safe_nodes(cube, faults,
                                               core::SafeNodeRule::kLeeHayes);
      const auto wf = core::compute_safe_nodes(
          cube, faults, core::SafeNodeRule::kWuFernandez);
      point.gs_rounds.add(gs.rounds_to_stabilize);
      point.lh_rounds.add(lh.rounds_to_stabilize);
      point.wf_rounds.add(wf.rounds_to_stabilize);
      point.safe_level_n.add(
          static_cast<double>(gs.levels.safe_nodes().size()));
      point.safe_lh.add(static_cast<double>(lh.safe_count()));
      point.safe_wf.add(static_cast<double>(wf.safe_count()));
      point.disconnected.add(
          analysis::connected_components(view, faults).disconnected());
      point.timing.trial_latency_us.observe(trial_clock.micros());
    }
    point.timing.wall_ms = point_wall.millis();
    point.timing.utilization = 1.0;  // serial driver: the one thread is busy

    if (trace != nullptr) {
      emit_sweep_point(
          trace, "rounds", fault_count, point.timing,
          {{"gs_rounds_mean", point.gs_rounds.mean()},
           {"lh_rounds_mean", point.lh_rounds.mean()},
           {"wf_rounds_mean", point.wf_rounds.mean()},
           {"safe_level_n_mean", point.safe_level_n.mean()},
           {"safe_lh_mean", point.safe_lh.mean()},
           {"safe_wf_mean", point.safe_wf.mean()},
           {"disconnected_pct", point.disconnected.percent()}});
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace slcube::workload
