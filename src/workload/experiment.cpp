#include "workload/experiment.hpp"

#include <mutex>

#include "analysis/components.hpp"
#include "common/thread_pool.hpp"
#include "core/global_status.hpp"
#include "core/safe_node.hpp"
#include "fault/injection.hpp"
#include "topology/topology_view.hpp"
#include "workload/pair_sampler.hpp"

namespace slcube::workload {

namespace {

fault::FaultSet inject(const topo::Hypercube& cube, InjectionKind kind,
                       std::uint64_t count, Xoshiro256ss& rng) {
  switch (kind) {
    case InjectionKind::kUniform:
      return fault::inject_uniform(cube, count, rng);
    case InjectionKind::kClustered:
      return fault::inject_clustered(cube, count, rng);
    case InjectionKind::kIsolation: {
      NodeId victim = 0;
      const std::uint64_t extra =
          count > cube.dimension() ? count - cube.dimension() : 0;
      return fault::inject_isolation(cube, extra, rng, victim);
    }
  }
  SLC_UNREACHABLE("bad InjectionKind");
}

}  // namespace

std::vector<SweepPoint> run_routing_sweep(const SweepConfig& config,
                                          const RouterFactory& factory) {
  const topo::Hypercube cube(config.dimension);
  const topo::HypercubeView view(cube);
  std::vector<SweepPoint> points;
  points.reserve(config.fault_counts.size());

  Xoshiro256ss master(config.seed);
  for (const std::uint64_t fault_count : config.fault_counts) {
    SweepPoint point;
    point.fault_count = fault_count;
    const std::uint64_t point_seed = master();

    struct ChunkAcc {
      std::vector<RoutingMetrics> per_router;
      Ratio disconnected;
      RunningStat prepare_rounds;
      std::vector<std::string> names;
    };
    std::vector<ChunkAcc> chunks(
        std::max<std::size_t>(1, default_pool().size()));

    parallel_for_chunks(
        default_pool(), config.trials,
        [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          ChunkAcc& acc = chunks[chunk];
          auto routers = factory(point_seed ^ (0x9E37u + chunk));
          acc.per_router.resize(routers.size());
          for (const auto& r : routers) acc.names.emplace_back(r->name());

          for (std::size_t trial = begin; trial < end; ++trial) {
            // Per-trial RNG derived from (point, trial) only, so results
            // are identical however trials are chunked over threads.
            Xoshiro256ss rng(point_seed ^ (trial * 0x9E3779B97F4A7C15ull));
            const fault::FaultSet faults =
                inject(cube, config.injection, fault_count, rng);
            if (faults.healthy_count() < 2) continue;
            acc.disconnected.add(
                analysis::connected_components(view, faults).disconnected());

            for (auto& r : routers) r->prepare(cube, faults);
            acc.prepare_rounds.add(
                static_cast<double>(routers.front()->prepare_rounds()));

            for (unsigned p = 0; p < config.pairs; ++p) {
              const auto pair = sample_uniform_pair(faults, rng);
              if (!pair) break;
              const auto dist =
                  analysis::bfs_distances(view, faults, pair->s);
              const unsigned hamming = cube.distance(pair->s, pair->d);
              for (std::size_t i = 0; i < routers.size(); ++i) {
                acc.per_router[i].record(routers[i]->route(pair->s, pair->d),
                                         hamming, dist[pair->d]);
              }
            }
          }
        });

    // Merge chunk accumulators in chunk order (deterministic).
    for (const ChunkAcc& acc : chunks) {
      if (acc.names.empty()) continue;
      if (point.per_router.empty()) {
        for (const auto& name : acc.names) {
          point.per_router.emplace_back(name, RoutingMetrics{});
        }
      }
      SLC_ASSERT(acc.per_router.size() == point.per_router.size());
      for (std::size_t i = 0; i < acc.per_router.size(); ++i) {
        point.per_router[i].second.merge(acc.per_router[i]);
      }
      point.disconnected.merge(acc.disconnected);
      point.prepare_rounds.merge(acc.prepare_rounds);
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<RoundsPoint> run_rounds_sweep(
    unsigned dimension, const std::vector<std::uint64_t>& fault_counts,
    unsigned trials, std::uint64_t seed) {
  const topo::Hypercube cube(dimension);
  const topo::HypercubeView view(cube);
  std::vector<RoundsPoint> points;
  points.reserve(fault_counts.size());

  Xoshiro256ss master(seed);
  for (const std::uint64_t fault_count : fault_counts) {
    RoundsPoint point;
    point.fault_count = fault_count;
    const std::uint64_t point_seed = master();
    for (unsigned trial = 0; trial < trials; ++trial) {
      Xoshiro256ss rng(point_seed ^ (trial * 0x9E3779B97F4A7C15ull));
      const fault::FaultSet faults =
          fault::inject_uniform(cube, fault_count, rng);
      const core::GsResult gs = core::run_gs(cube, faults);
      const auto lh = core::compute_safe_nodes(cube, faults,
                                               core::SafeNodeRule::kLeeHayes);
      const auto wf = core::compute_safe_nodes(
          cube, faults, core::SafeNodeRule::kWuFernandez);
      point.gs_rounds.add(gs.rounds_to_stabilize);
      point.lh_rounds.add(lh.rounds_to_stabilize);
      point.wf_rounds.add(wf.rounds_to_stabilize);
      point.safe_level_n.add(
          static_cast<double>(gs.levels.safe_nodes().size()));
      point.safe_lh.add(static_cast<double>(lh.safe_count()));
      point.safe_wf.add(static_cast<double>(wf.safe_count()));
      point.disconnected.add(
          analysis::connected_components(view, faults).disconnected());
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace slcube::workload
