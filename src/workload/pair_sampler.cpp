#include "workload/pair_sampler.hpp"

namespace slcube::workload {

std::optional<Pair> sample_uniform_pair(const fault::FaultSet& faults,
                                        Xoshiro256ss& rng) {
  if (faults.healthy_count() < 2) return std::nullopt;
  auto draw_healthy = [&] {
    for (;;) {
      const auto a = static_cast<NodeId>(rng.below(faults.num_nodes()));
      if (faults.is_healthy(a)) return a;
    }
  };
  const NodeId s = draw_healthy();
  for (;;) {
    const NodeId d = draw_healthy();
    if (d != s) return Pair{s, d};
  }
}

std::optional<Pair> sample_pair_at_distance(const topo::Hypercube& cube,
                                            const fault::FaultSet& faults,
                                            unsigned h, Xoshiro256ss& rng,
                                            unsigned max_tries) {
  SLC_EXPECT(h >= 1 && h <= cube.dimension());
  for (unsigned t = 0; t < max_tries; ++t) {
    const auto s = static_cast<NodeId>(rng.below(cube.num_nodes()));
    if (faults.is_faulty(s)) continue;
    // Random h-subset of dimensions as the navigation vector.
    std::uint32_t nav = 0;
    while (bits::popcount(nav) < h) {
      nav |= bits::unit(static_cast<Dim>(rng.below(cube.dimension())));
    }
    const NodeId d = s ^ nav;
    if (faults.is_healthy(d)) return Pair{s, d};
  }
  return std::nullopt;
}

std::vector<Pair> all_healthy_pairs(const fault::FaultSet& faults) {
  const auto healthy = faults.healthy_nodes();
  std::vector<Pair> out;
  out.reserve(healthy.size() * (healthy.size() - 1));
  for (const NodeId s : healthy) {
    for (const NodeId d : healthy) {
      if (s != d) out.push_back(Pair{s, d});
    }
  }
  return out;
}

}  // namespace slcube::workload
