#include "workload/service_script.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "exp/sweep_engine.hpp"
#include "fault/fault_set.hpp"
#include "fault/link_fault_set.hpp"
#include "workload/pair_sampler.hpp"

namespace slcube::workload {

namespace {
// Substream families within the script's seed (disjoint from nothing
// else — the script owns its seed).
constexpr std::uint64_t kChurnStream = 0;
constexpr std::uint64_t kRequestStream = 1;
}  // namespace

ServiceScript::ServiceScript(const ServiceScriptConfig& config)
    : config_(config), cube_(config.dim) {
  svc::SnapshotOracle oracle(cube_);
  snapshots_.reserve(config_.epochs + 1);
  snapshots_.push_back(oracle.acquire());  // epoch 0, fault-free

  // The bench_service writer's repair policy, replayed deterministically:
  // coin-flip node vs link churn, ceilings at 2n, coin-flip repairs past
  // 4 standing faults.
  Xoshiro256ss rng = exp::substream(config_.seed, kChurnStream, 0);
  fault::FaultSet faults(cube_.num_nodes());
  fault::LinkFaultSet links(cube_);
  const std::uint64_t node_ceiling = 2 * cube_.dimension();
  const std::size_t link_ceiling = 2 * cube_.dimension();
  for (std::uint64_t e = 0; e < config_.epochs; ++e) {
    if (rng.chance(0.5)) {
      const bool repair = faults.count() >= node_ceiling ||
                          (faults.count() > 4 && rng.chance(0.3));
      if (repair) {
        const auto faulty = faults.faulty_nodes();
        const NodeId back = faulty[rng.below(faulty.size())];
        faults.mark_healthy(back);
        oracle.remove_fault(back);
      } else {
        NodeId victim;
        do {
          victim = static_cast<NodeId>(rng.below(cube_.num_nodes()));
        } while (faults.is_faulty(victim));
        faults.mark_faulty(victim);
        oracle.add_fault(victim);
      }
    } else {
      const bool repair = links.count() >= link_ceiling ||
                          (links.count() > 4 && rng.chance(0.3));
      if (repair) {
        const auto faulty = links.faulty_links();
        const auto [a, d] = faulty[rng.below(faulty.size())];
        links.mark_healthy(a, d);
        oracle.recover_link(a, d);
      } else {
        NodeId a;
        Dim d;
        do {
          a = static_cast<NodeId>(rng.below(cube_.num_nodes()));
          d = static_cast<Dim>(rng.below(cube_.dimension()));
        } while (links.is_faulty(a, d));
        links.mark_faulty(a, d);
        oracle.fail_link(a, d);
      }
    }
    snapshots_.push_back(oracle.acquire());
  }
  SLC_ASSERT_MSG(snapshots_.size() == config_.epochs + 1,
                 "one snapshot per churn event plus epoch 0");
}

ServiceScript::Request ServiceScript::request(std::uint64_t i,
                                              std::uint64_t total) const {
  SLC_EXPECT_MSG(total > 0 && i < total, "request index in range");
  const std::uint64_t last = num_epochs() - 1;
  Request req;
  req.route_id = i;
  // Decision epochs advance linearly across the run: request i decides
  // on epoch floor(i * num_epochs / total), so every epoch serves an
  // equal contiguous block of requests.
  req.decision_epoch = std::min((i * num_epochs()) / total, last);
  Xoshiro256ss rng = exp::substream(config_.seed, kRequestStream, i);
  std::uint64_t lag = 0;
  if (config_.stale_chance > 0.0 && config_.max_lag > 0 &&
      rng.chance(config_.stale_chance)) {
    lag = 1 + rng.below(config_.max_lag);
  }
  req.ground_epoch = std::min(req.decision_epoch + lag, last);
  const auto pair =
      sample_uniform_pair(snapshots_[req.decision_epoch]->faults, rng);
  if (pair) {
    req.has_pair = true;
    req.s = pair->s;
    req.d = pair->d;
  }
  return req;
}

svc::ServeResult ServiceScript::serve(const Request& req,
                                      const svc::ServeOptions& opts) const {
  SLC_EXPECT_MSG(req.has_pair, "serve() needs a sampled pair");
  return svc::serve_route(*snapshots_.at(req.decision_epoch),
                          *snapshots_.at(req.ground_epoch), req.s, req.d,
                          opts);
}

std::uint64_t ServiceScript::epoch_activation(std::uint64_t epoch,
                                              std::uint64_t total) const {
  // Inverse of the linear mapping in request(): the smallest i with
  // floor(i * num_epochs / total) == epoch is ceil(epoch * total / E).
  const std::uint64_t e = num_epochs();
  return (epoch * total + e - 1) / e;
}

void ServiceScript::emit_epoch_events(obs::TraceSink& sink,
                                      std::uint64_t total) const {
  for (const svc::SnapshotPtr& snap : snapshots_) {
    obs::EpochPublishEvent ev = svc::make_epoch_event(*snap);
    ev.ts = epoch_activation(snap->epoch, total);
    sink.on_event(ev);
  }
}

obs::RouteSummary ServiceScript::summarize(const Request& req,
                                           const svc::ServeResult& res) {
  obs::RouteSummary s;
  s.route_id = req.route_id;
  s.decision_epoch = res.decision_epoch;
  s.ground_epoch = res.ground_epoch;
  s.status = svc::to_string(res.status);
  s.status_code = static_cast<std::uint8_t>(res.status);
  s.hops = res.hops();
  s.dropped = res.dropped();
  s.detour = res.status == svc::ServeStatus::kDeliveredSuboptimal;
  s.misroute = false;  // no diagnosis layer in the scripted workload
  return s;
}

}  // namespace slcube::workload
