// Aggregated routing-quality metrics. One RoutingMetrics accumulates many
// RouteAttempts against ground truth (Hamming distance + BFS reachability)
// and produces the quantities the benches print: delivery rate, optimal /
// suboptimal shares, refusal correctness (the disconnected-cube headline),
// hop overhead and traffic.
#pragma once

#include <cstdint>

#include "analysis/bfs.hpp"
#include "common/stats.hpp"
#include "routing/router.hpp"

namespace slcube::workload {

struct RoutingMetrics {
  Ratio delivered;  ///< of all attempts
  Ratio refused;    ///< of all attempts
  Ratio stuck;      ///< of all attempts (not delivered, not refused)

  /// Refusal *correctness*: of refusals, how many destinations were truly
  /// unreachable. 100% = perfect source-side failure detection.
  Ratio refusal_correct;
  /// Of reachable destinations, how many were delivered.
  Ratio delivered_when_reachable;

  Ratio optimal;     ///< of deliveries: hops == Hamming distance
  Ratio suboptimal;  ///< of deliveries: hops == Hamming distance + 2
  Ratio bound_h2;    ///< of deliveries: hops <= Hamming distance + 2
  Ratio true_shortest;  ///< of deliveries: hops == BFS distance

  RunningStat overhead;  ///< hops - Hamming distance, on deliveries
  RunningStat traffic;   ///< hops physically traveled, all non-refused
  IntHistogram hops_histogram;  ///< hops on deliveries

  /// `bfs_dist` is the true shortest healthy-path distance from s to d
  /// (analysis::kUnreachable when disconnected).
  void record(const routing::RouteAttempt& attempt, unsigned hamming,
              std::uint32_t bfs_dist);

  void merge(const RoutingMetrics& other);
};

}  // namespace slcube::workload
