#include "workload/patterns.hpp"

namespace slcube::workload {

std::string_view to_string(Pattern p) {
  switch (p) {
    case Pattern::kBitComplement:
      return "bit-complement";
    case Pattern::kBitReversal:
      return "bit-reversal";
    case Pattern::kTranspose:
      return "transpose";
    case Pattern::kShuffle:
      return "shuffle";
    case Pattern::kDimensionExchange:
      return "dim-exchange";
    case Pattern::kRandomPermutation:
      return "random-perm";
  }
  SLC_UNREACHABLE("bad Pattern");
}

namespace {

NodeId reverse_bits(NodeId v, unsigned n) {
  NodeId out = 0;
  for (unsigned i = 0; i < n; ++i) {
    out = (out << 1) | ((v >> i) & 1u);
  }
  return out;
}

NodeId rotate_left(NodeId v, unsigned by, unsigned n) {
  by %= n;
  const std::uint32_t mask = bits::low_mask(n);
  return ((v << by) | (v >> (n - by))) & mask;
}

}  // namespace

std::optional<NodeId> pattern_destination(const topo::Hypercube& cube,
                                          Pattern p, NodeId s) {
  const unsigned n = cube.dimension();
  switch (p) {
    case Pattern::kBitComplement:
      return ~s & bits::low_mask(n);
    case Pattern::kBitReversal:
      return reverse_bits(s, n);
    case Pattern::kTranspose:
      return rotate_left(s, n / 2, n);
    case Pattern::kShuffle:
      return rotate_left(s, 1, n);
    case Pattern::kDimensionExchange:
    case Pattern::kRandomPermutation:
      return std::nullopt;  // stateful: use generate_pattern
  }
  SLC_UNREACHABLE("bad Pattern");
}

std::vector<Pair> generate_pattern(const topo::Hypercube& cube,
                                   const fault::FaultSet& faults, Pattern p,
                                   Xoshiro256ss& rng) {
  std::vector<Pair> out;
  const unsigned n = cube.dimension();

  if (p == Pattern::kRandomPermutation) {
    auto healthy = faults.healthy_nodes();
    auto dests = healthy;
    shuffle(dests, rng);
    for (std::size_t i = 0; i < healthy.size(); ++i) {
      if (healthy[i] != dests[i]) out.push_back({healthy[i], dests[i]});
    }
    return out;
  }

  if (p == Pattern::kDimensionExchange) {
    const auto round = static_cast<Dim>(rng.below(n));
    for (NodeId s = 0; s < cube.num_nodes(); ++s) {
      if (faults.is_faulty(s)) continue;
      const NodeId d = cube.neighbor(s, round);
      if (faults.is_healthy(d)) out.push_back({s, d});
    }
    return out;
  }

  for (NodeId s = 0; s < cube.num_nodes(); ++s) {
    if (faults.is_faulty(s)) continue;
    const NodeId d = *pattern_destination(cube, p, s);
    if (d != s && faults.is_healthy(d)) out.push_back({s, d});
  }
  return out;
}

}  // namespace slcube::workload
