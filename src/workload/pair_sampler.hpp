// Source/destination samplers for unicast experiments.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_set.hpp"
#include "topology/hypercube.hpp"

namespace slcube::workload {

struct Pair {
  NodeId s = 0;
  NodeId d = 0;
};

/// A uniformly random ordered pair of distinct healthy nodes; nullopt when
/// fewer than two healthy nodes exist.
[[nodiscard]] std::optional<Pair> sample_uniform_pair(
    const fault::FaultSet& faults, Xoshiro256ss& rng);

/// A random healthy pair at exactly Hamming distance `h` (rejection
/// sampling: a healthy source, then a random h-subset of dimensions;
/// nullopt after `max_tries` misses).
[[nodiscard]] std::optional<Pair> sample_pair_at_distance(
    const topo::Hypercube& cube, const fault::FaultSet& faults, unsigned h,
    Xoshiro256ss& rng, unsigned max_tries = 128);

/// Every ordered pair of distinct healthy nodes (exhaustive runs on small
/// cubes).
[[nodiscard]] std::vector<Pair> all_healthy_pairs(
    const fault::FaultSet& faults);

}  // namespace slcube::workload
