#include "workload/metrics.hpp"

namespace slcube::workload {

void RoutingMetrics::record(const routing::RouteAttempt& attempt,
                            unsigned hamming, std::uint32_t bfs_dist) {
  const bool reachable = bfs_dist != analysis::kUnreachable;
  delivered.add(attempt.delivered);
  refused.add(attempt.refused);
  stuck.add(!attempt.delivered && !attempt.refused);
  if (attempt.refused) refusal_correct.add(!reachable);
  if (reachable) delivered_when_reachable.add(attempt.delivered);
  if (!attempt.refused) traffic.add(static_cast<double>(attempt.hops()));
  if (attempt.delivered) {
    const auto hops = attempt.hops();
    optimal.add(hops == hamming);
    suboptimal.add(hops == hamming + 2);
    bound_h2.add(hops <= hamming + 2);
    true_shortest.add(hops == bfs_dist);
    overhead.add(static_cast<double>(hops) - hamming);
    hops_histogram.add(static_cast<std::size_t>(hops));
  }
}

void RoutingMetrics::merge(const RoutingMetrics& other) {
  delivered.merge(other.delivered);
  refused.merge(other.refused);
  stuck.merge(other.stuck);
  refusal_correct.merge(other.refusal_correct);
  delivered_when_reachable.merge(other.delivered_when_reachable);
  optimal.merge(other.optimal);
  suboptimal.merge(other.suboptimal);
  bound_h2.merge(other.bound_h2);
  true_shortest.merge(other.true_shortest);
  overhead.merge(other.overhead);
  traffic.merge(other.traffic);
  hops_histogram.merge(other.hops_histogram);
}

}  // namespace slcube::workload
