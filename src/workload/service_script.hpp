// workload::ServiceScript — a fully deterministic serving workload for
// the sampled-tracing benches and tests. The live bench_service workload
// interleaves a wall-clock churn writer with racing readers, so its
// per-route outcomes depend on scheduling; this script removes the race
// by *pre-publishing* the whole epoch chain:
//
//   * construction drives a svc::SnapshotOracle through `epochs`
//     deterministic churn events (the bench writer's repair policy,
//     seeded by exp::substream) and retains every published SnapshotPtr;
//   * each request i is a pure function of (config, i, total): its
//     decision epoch advances linearly across the run, its ground epoch
//     leads by a small seeded lag with probability `stale_chance`
//     (modeling mid-flight churn), and its endpoint pair is sampled from
//     the decision snapshot's healthy nodes with a per-request
//     substream;
//   * serving uses the deterministic serve_route(decision, ground, ...)
//     overload, so status / path / hops are interleaving-free.
//
// Identical requests at any thread count and any execution order — the
// property the SamplingSink's promoted-digest thread-invariance gate
// (BENCH_SAMPLING.json) is built on. The time axis of a scripted run is
// the request index: epoch e "activates" at the first request whose
// decision epoch is e, which is what emit_epoch_events stamps into the
// epoch_publish lineage (and what the timeline exporter plots).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/sampling.hpp"
#include "obs/trace.hpp"
#include "svc/serve.hpp"
#include "svc/snapshot_oracle.hpp"
#include "topology/hypercube.hpp"

namespace slcube::workload {

struct ServiceScriptConfig {
  unsigned dim = 10;
  std::uint64_t seed = 0x5E51CE;
  /// Churn events (= published epochs beyond epoch 0).
  std::uint64_t epochs = 64;
  /// Per-request probability that the ground epoch leads the decision
  /// epoch (the scripted form of "the writer published mid-route").
  /// The default models a heavy-churn tail: ~1% of routes anomalous.
  double stale_chance = 0.01;
  /// Ground lead is uniform in [1, max_lag] epochs (clamped to the last
  /// published epoch).
  std::uint64_t max_lag = 4;
};

class ServiceScript {
 public:
  explicit ServiceScript(const ServiceScriptConfig& config);

  [[nodiscard]] const topo::Hypercube& cube() const noexcept { return cube_; }
  [[nodiscard]] const ServiceScriptConfig& config() const noexcept {
    return config_;
  }
  /// Published epochs, including epoch 0 (== config.epochs + 1).
  [[nodiscard]] std::uint64_t num_epochs() const noexcept {
    return snapshots_.size();
  }
  [[nodiscard]] const svc::SnapshotPtr& snapshot(std::uint64_t epoch) const {
    return snapshots_.at(epoch);
  }

  /// One scripted request, decided entirely by (config, i, total).
  struct Request {
    std::uint64_t route_id = 0;
    std::uint64_t decision_epoch = 0;
    std::uint64_t ground_epoch = 0;
    NodeId s = 0;
    NodeId d = 0;
    bool has_pair = false;  ///< false when < 2 healthy nodes (never on Q10)
  };
  [[nodiscard]] Request request(std::uint64_t i, std::uint64_t total) const;

  /// Serve request i deterministically (decision and ground snapshots
  /// from the pre-published chain).
  [[nodiscard]] svc::ServeResult serve(const Request& req,
                                       const svc::ServeOptions& opts = {}) const;

  /// First request index whose decision epoch is `epoch` — the epoch's
  /// activation point on the scripted time axis.
  [[nodiscard]] std::uint64_t epoch_activation(std::uint64_t epoch,
                                               std::uint64_t total) const;

  /// Emit the whole epoch lineage as epoch_publish events with ts
  /// re-stamped to the activation request index (see the file comment).
  void emit_epoch_events(obs::TraceSink& sink, std::uint64_t total) const;

  /// Fold a served result into the sampler's route-summary shape.
  [[nodiscard]] static obs::RouteSummary summarize(const Request& req,
                                                   const svc::ServeResult& res);

 private:
  ServiceScriptConfig config_;
  topo::Hypercube cube_;
  std::vector<svc::SnapshotPtr> snapshots_;
};

}  // namespace slcube::workload
