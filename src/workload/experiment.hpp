// Sweep drivers: the machinery behind every bench binary. A sweep fixes a
// cube dimension, varies the fault count, and for each point runs many
// independent trials (fresh fault set, fresh unicast pairs), aggregating
// RoutingMetrics per router. Trials run on the shared exp::SweepEngine:
// counter-based per-trial RNG substreams and a trial-order fold make
// every aggregate bit-identical at any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "diag/decoder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "routing/router.hpp"
#include "workload/metrics.hpp"

namespace slcube::workload {

enum class InjectionKind : std::uint8_t {
  kUniform,    ///< uniform random node faults (the paper's Fig. 2 setup)
  kClustered,  ///< faults concentrated around a random center
  kIsolation,  ///< one node's full neighborhood killed (disconnects)
  kStar,       ///< a center plus min(count-1, n) of its neighbors
  kPath,       ///< `count` nodes along one Gray-code path
};

struct SweepConfig {
  unsigned dimension = 7;
  std::vector<std::uint64_t> fault_counts;
  unsigned trials = 200;  ///< fault configurations per point
  unsigned pairs = 32;    ///< unicast pairs per configuration
  std::uint64_t seed = 0x5A11CE;
  /// Sweep-engine workers (0 = one per hardware thread, 1 = serial).
  /// Results are identical for every value — only wall time changes.
  unsigned threads = 0;
  InjectionKind injection = InjectionKind::kUniform;
  /// When non-null, one obs::SweepPointEvent (timing, utilization,
  /// latency percentiles, flattened result metrics) is emitted per point
  /// — attach an obs::JsonlSink to get the machine-readable stream the
  /// bench binaries expose as --jsonl.
  obs::TraceSink* trace = nullptr;
  /// Telemetry hooks (all optional): `registry` replaces the engine's
  /// internal one and additionally receives route.requests/delivered,
  /// route.hops, and per-dimension hops.dim.<k> from the first router;
  /// `profiler` turns on stage marking in workers; `recorder` is ticked
  /// once per sweep point (a deterministic barrier).
  obs::InstrumentationHooks instrumentation;
};

/// Wall-clock profile of one sweep point, measured by the driver's span
/// timers (obs::SpanTimer over the point, a stopwatch per trial).
struct SweepTiming {
  double wall_ms = 0.0;
  /// Busy worker time / (wall time * pool threads); 1.0 = perfectly
  /// parallel, low values = workers starved (too few trials per point).
  double utilization = 0.0;
  obs::HistogramData trial_latency_us;  ///< per-trial wall time

  [[nodiscard]] double p50_us() const { return trial_latency_us.quantile(0.5); }
  [[nodiscard]] double p90_us() const { return trial_latency_us.quantile(0.9); }
  [[nodiscard]] double p99_us() const {
    return trial_latency_us.quantile(0.99);
  }
};

/// Creates one fresh instance of every router under test; called once per
/// worker chunk (routers may hold per-instance RNG state).
using RouterFactory = std::function<
    std::vector<std::unique_ptr<routing::Router>>(std::uint64_t seed)>;

struct SweepPoint {
  std::uint64_t fault_count = 0;
  /// Keyed by Router::name(), in factory order.
  std::vector<std::pair<std::string, RoutingMetrics>> per_router;
  Ratio disconnected;  ///< fraction of fault configurations that split the cube
  RunningStat prepare_rounds;  ///< info-exchange rounds of the *first* router
  SweepTiming timing;
};

/// Routing sweep: every router sees the identical fault sets and pairs.
[[nodiscard]] std::vector<SweepPoint> run_routing_sweep(
    const SweepConfig& config, const RouterFactory& factory);

/// Fig. 2 sweep: GS stabilization rounds (plus the LH/WF safe-node round
/// counts for the Section 2.3 comparison) versus fault count.
struct RoundsPoint {
  std::uint64_t fault_count = 0;
  RunningStat gs_rounds;
  RunningStat lh_rounds;
  RunningStat wf_rounds;
  RunningStat safe_level_n;  ///< |{level-n nodes}|
  RunningStat safe_lh;
  RunningStat safe_wf;
  Ratio disconnected;
  SweepTiming timing;
};

[[nodiscard]] std::vector<RoundsPoint> run_rounds_sweep(
    unsigned dimension, const std::vector<std::uint64_t>& fault_counts,
    unsigned trials, std::uint64_t seed, obs::TraceSink* trace = nullptr,
    unsigned threads = 0, obs::InstrumentationHooks instrumentation = {});

/// Section-4.1 sweep: EGS routing under mixed node + link faults. Each
/// point fixes a (node-fault, link-fault) count pair; every trial samples
/// a fresh configuration and routes `pairs` unicasts on the two-view
/// tables, which come from one worker-cached core::EgsOracle per engine
/// worker (retargeted between trials). Theorem-1 uniqueness makes the
/// oracle's tables bit-identical to a from-scratch run_egs, so the
/// aggregates are --threads-invariant like every other sweep here.
struct LinkSweepConfig {
  unsigned dimension = 7;
  /// One sweep point per (node faults, link faults) pair.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> points;
  unsigned trials = 200;  ///< fault configurations per point
  unsigned pairs = 24;    ///< unicast pairs per configuration
  std::uint64_t seed = 0xF164;
  unsigned threads = 0;  ///< sweep-engine workers (0 = hardware, 1 = serial)
  /// Per-point obs::SweepPointEvent stream (sweep = "links"); the
  /// fault_count field carries the node-fault count and the values map
  /// carries "link_faults".
  obs::TraceSink* trace = nullptr;
  /// Per-route EGS source/hop/done events. Fired from every worker
  /// concurrently — pass an internally synchronized sink (AuditSink,
  /// RingBufferSink) or run with threads = 1.
  obs::TraceSink* route_trace = nullptr;
  /// Telemetry hooks, same contract as SweepConfig::instrumentation.
  obs::InstrumentationHooks instrumentation;
};

struct LinkSweepPoint {
  std::uint64_t node_faults = 0;
  std::uint64_t link_faults = 0;
  Ratio delivered;       ///< of all attempts
  Ratio refused;         ///< of all attempts (source refused: no C held)
  Ratio stuck;           ///< of all attempts (C2/C3 optimism ran aground)
  Ratio optimal;         ///< of deliveries: hops == H
  Ratio suboptimal;      ///< of deliveries: hops == H + 2
  Ratio valid_paths;     ///< of deliveries: path avoids faulty nodes AND links
  RunningStat n2_nodes;  ///< |N2| per sampled configuration
  SweepTiming timing;
};

[[nodiscard]] std::vector<LinkSweepPoint> run_link_routing_sweep(
    const LinkSweepConfig& config);

/// Diagnosis sweep: route on what the system BELIEVES is broken. Every
/// trial samples a ground-truth fault set, runs the configured test
/// model + decoder (src/diag) to obtain the presumed set, stabilizes a
/// level table for EACH world, and routes `pairs` unicasts with
/// diag::route_diagnosed — the plan follows the diagnosed tables, the
/// verdict (delivery, drop, misroute class) follows the ground truth.
/// The ground-truth arm (`ground_truth_arm`) shorts the diagnosis out
/// (presumed == ground) through the identical code path, so arm deltas
/// measure diagnosis error and nothing else.
struct DiagSweepConfig {
  unsigned dimension = 6;
  std::vector<std::uint64_t> fault_counts;
  unsigned trials = 120;  ///< fault configurations per point
  unsigned pairs = 24;    ///< unicast pairs per configuration
  std::uint64_t seed = 0xD1A6;
  unsigned threads = 0;  ///< sweep-engine workers (0 = hardware, 1 = serial)
  InjectionKind injection = InjectionKind::kUniform;
  diag::SyndromeConfig syndrome;
  diag::DecoderConfig decoder;
  /// Skip the syndrome machinery and route on the ground truth itself —
  /// the control arm every diagnosed arm is compared against.
  bool ground_truth_arm = false;
  /// When non-null, every trial uses this exact placement instead of
  /// sampling one (the adversarial-search arm); `fault_counts` is
  /// ignored except for producing one sweep point per entry.
  const fault::FaultSet* fixed_faults = nullptr;
  /// Per-point obs::SweepPointEvent stream (sweep = "diag").
  obs::TraceSink* trace = nullptr;
  /// Per-route source/hop/done/misroute events. Fired from every worker
  /// concurrently — pass an internally synchronized sink (AuditSink,
  /// RingBufferSink) or run with threads = 1.
  obs::TraceSink* route_trace = nullptr;
  obs::InstrumentationHooks instrumentation;
};

struct DiagSweepPoint {
  std::uint64_t fault_count = 0;
  // --- diagnosis quality ---
  RunningStat missed;              ///< ground faults the decoder cleared
  RunningStat false_accusations;   ///< healthy nodes the decoder condemned
  Ratio exact_diagnosis;           ///< trials diagnosed perfectly
  // --- routing outcomes, judged against ground truth ---
  Ratio delivered;   ///< of attempts: the replay reached the destination
  Ratio refused;     ///< of attempts: the plan refused at the source
  Ratio dropped;     ///< of attempts: the replay died at a missed fault
  Ratio optimal;     ///< of ground deliveries: planned optimal (H hops)
  Ratio misrouted;   ///< of attempts: misroute class != none
  std::uint64_t false_rejects = 0;
  std::uint64_t optimism_drops = 0;
  std::uint64_t pessimism_detours = 0;
  /// Order-sensitive fold of every trial's integer tallies — two runs
  /// agree on the digest iff they agree on every trial (the --threads
  /// invariance witness benches gate on).
  std::uint64_t digest = 0;
  SweepTiming timing;
};

[[nodiscard]] std::vector<DiagSweepPoint> run_diagnosis_sweep(
    const DiagSweepConfig& config);

}  // namespace slcube::workload
