// svc::SnapshotOracle — the routing-as-a-service epoch layer.
//
// The paper's unicast algorithm is explicitly tolerant of *stale* safety
// tables: a node routes on whatever table it last stabilized, and the
// worst a newer fault can do is kill the message in flight (Section 2.2's
// state-change discipline re-converges afterwards). The incremental
// oracles (core::SafetyOracle / core::EgsOracle) made table maintenance
// cheap, but they are strictly single-writer, single-reader objects: a
// sweep worker owns its copy. This unit turns one writer-owned oracle
// into a service that any number of router threads can read while faults
// keep churning — the RCU/epoch pattern:
//
//  * The writer thread applies fault events through its private
//    core::EgsOracle (bounded cascades, bit-identical to a from-scratch
//    run_egs — that guarantee is inherited, not re-proven here), then
//    copies the resulting tables into an immutable, refcounted Snapshot
//    and publishes it with one atomic shared_ptr store. Publication is
//    the only writer/reader synchronization point.
//  * Reader threads acquire() the current Snapshot (one atomic
//    shared_ptr load) and route against it with zero further
//    coordination: the tables inside a Snapshot never change, and the
//    refcount keeps a Snapshot alive for as long as any in-flight route
//    still holds it — readers are never blocked and never see a
//    half-updated table.
//
// Epochs are published in strictly increasing order by the single
// writer, so "snapshot A is older than snapshot B" is exactly
// A->epoch < B->epoch — which is what makes staleness a measurable
// quantity (see svc/serve.hpp and bench_service).
//
// Concurrency contract: all writer-API calls must come from one thread
// at a time (the usual single-writer discipline; unsynchronized writer
// calls from two threads are a data race on the underlying oracle).
// acquire()/epoch() are safe from any thread at any time, including
// concurrently with a publish.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/egs.hpp"
#include "core/egs_oracle.hpp"
#include "obs/trace.hpp"

namespace slcube::svc {

/// One churn event in an epoch's lineage: what the writer did to the
/// fault configuration between the parent epoch and this one. Kept on
/// the Snapshot so a stale route (decision epoch d, ground epoch g > d)
/// can be attributed to the exact churn in epochs (d, g] that aged it.
struct ChurnRecord {
  enum class Kind : std::uint8_t {
    kNodeFail,
    kNodeRecover,
    kLinkFail,
    kLinkRecover,
    kRetarget,  ///< wholesale reconfiguration; node/dim not meaningful
  };
  Kind kind = Kind::kNodeFail;
  NodeId node = 0;  ///< churned node, or the link's endpoint
  Dim dim = 0;      ///< link dimension (link kinds only)
};
[[nodiscard]] const char* to_string(ChurnRecord::Kind k);

/// One immutable published epoch: the fault configuration and both EGS
/// views, frozen at publication time. Value-semantic copies of the
/// writer's tables — a reader holding this cannot be affected by any
/// later writer activity. Bit-identical to run_egs(cube, faults, links)
/// for this epoch's configuration (pinned by test_snapshot_oracle).
struct Snapshot {
  std::uint64_t epoch = 0;
  std::uint64_t parent_epoch = 0;  ///< previous published epoch (== 0 at 0)
  /// The churn folded into this epoch (empty for epoch 0). One record
  /// for the single-toggle writer calls; the whole batch for apply().
  std::vector<ChurnRecord> lineage;
  fault::FaultSet faults;        ///< real node faults (N2 nodes healthy)
  fault::LinkFaultSet links;
  core::SafetyLevels public_view;
  core::SafetyLevels self_view;

  /// Borrowed view pair for decide_at_source_egs / route_unicast_egs.
  /// The Snapshot must outlive the call — which the shared_ptr refcount
  /// guarantees for any reader that keeps its SnapshotPtr on the stack.
  [[nodiscard]] core::EgsViews views() const noexcept {
    return core::EgsViews{public_view, self_view};
  }
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// The obs::EpochPublishEvent describing `snap`'s lineage (cause derived
/// from the churn records; `ts` stamped with the epoch number). Scripted
/// workloads that serve on a different time axis re-stamp `ts`.
[[nodiscard]] obs::EpochPublishEvent make_epoch_event(const Snapshot& snap);

class SnapshotOracle {
 public:
  /// Fault-free start; epoch 0 is published immediately.
  explicit SnapshotOracle(const topo::Hypercube& cube);

  /// Start at the fixed point of an arbitrary configuration (one full
  /// run_egs worth of work), published as epoch 0.
  SnapshotOracle(const topo::Hypercube& cube, const fault::FaultSet& faults,
                 const fault::LinkFaultSet& link_faults);

  SnapshotOracle(const SnapshotOracle&) = delete;
  SnapshotOracle& operator=(const SnapshotOracle&) = delete;

  [[nodiscard]] const topo::Hypercube& cube() const noexcept {
    return oracle_.cube();
  }

  // --- reader API (any thread) ---------------------------------------

  /// The most recently published epoch's snapshot. Never null; the
  /// returned snapshot stays valid (and immutable) for as long as the
  /// caller holds the pointer, regardless of writer progress.
  [[nodiscard]] SnapshotPtr acquire() const {
    return current_.load(std::memory_order_acquire);
  }

  /// The epoch number of the latest published snapshot — a cheaper probe
  /// than acquire() when only "did anything change?" is needed.
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  // --- writer API (one thread) ---------------------------------------
  // Each call restores the two-view fixed point incrementally via the
  // underlying core::EgsOracle and publishes exactly one new epoch.

  void add_fault(NodeId a);
  void remove_fault(NodeId a);
  void fail_link(NodeId a, Dim d);
  void recover_link(NodeId a, Dim d);

  /// Batched update: one cascade pass, one published epoch — the churn
  /// writer's steady-state entry point.
  void apply(std::span<const NodeId> node_toggles,
             std::span<const core::EgsOracle::LinkToggle> link_toggles);

  /// Move to an arbitrary configuration (symmetric-difference toggles,
  /// rebuild fallback inherited from the oracles); publishes one epoch
  /// even when nothing changed, so callers can use it as a barrier.
  void retarget(const fault::FaultSet& target_faults,
                const fault::LinkFaultSet& target_links);

  /// Writer-side introspection (cascade cost model, current fault sets).
  /// Writer thread only — readers must use acquire().
  [[nodiscard]] const core::EgsOracle& writer_oracle() const noexcept {
    return oracle_;
  }

  /// Emit an obs::EpochPublishEvent on every publish (nullptr to stop).
  /// Writer thread only; the sink is invoked from publish(), so it must
  /// tolerate the writer thread (thread-safe sinks always do). The
  /// event's `ts` is stamped with the epoch number — scripted workloads
  /// that serve on a different axis re-stamp it themselves.
  void set_trace(obs::TraceSink* sink) noexcept { trace_ = sink; }

  struct Stats {
    std::uint64_t epochs_published = 0;  ///< publishes after construction
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Freeze the oracle's current tables into a Snapshot and publish it
  /// as the next epoch (release store; readers acquire).
  void publish();

  core::EgsOracle oracle_;
  std::uint64_t next_epoch_ = 0;  ///< writer-private publish counter
  std::vector<ChurnRecord> pending_;  ///< lineage for the next publish
  obs::TraceSink* trace_ = nullptr;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<SnapshotPtr> current_;
  Stats stats_;
};

}  // namespace slcube::svc
